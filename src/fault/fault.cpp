#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace rcarb::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kFsmBitFlip: return "fsm-bit-flip";
    case FaultKind::kReqStuck0: return "req-stuck-0";
    case FaultKind::kReqStuck1: return "req-stuck-1";
    case FaultKind::kGrantStuck0: return "grant-stuck-0";
    case FaultKind::kGrantDrop: return "grant-drop";
    case FaultKind::kChannelCorrupt: return "channel-corrupt";
    case FaultKind::kPermanentStuckChannel: return "permanent-stuck-channel";
    case FaultKind::kBankFailure: return "bank-failure";
    case FaultKind::kArbiterLatchup: return "arbiter-latchup";
  }
  return "?";
}

bool is_permanent(FaultKind k) {
  switch (k) {
    case FaultKind::kPermanentStuckChannel:
    case FaultKind::kBankFailure:
    case FaultKind::kArbiterLatchup:
      return true;
    case FaultKind::kFsmBitFlip:
    case FaultKind::kReqStuck0:
    case FaultKind::kReqStuck1:
    case FaultKind::kGrantStuck0:
    case FaultKind::kGrantDrop:
    case FaultKind::kChannelCorrupt:
      return false;
  }
  return false;
}

const std::vector<FaultKind>& all_fault_kinds() {
  static const std::vector<FaultKind> kinds = {
      FaultKind::kFsmBitFlip,  FaultKind::kReqStuck0,
      FaultKind::kReqStuck1,   FaultKind::kGrantStuck0,
      FaultKind::kGrantDrop,   FaultKind::kChannelCorrupt,
  };
  return kinds;
}

const std::vector<FaultKind>& permanent_fault_kinds() {
  static const std::vector<FaultKind> kinds = {
      FaultKind::kPermanentStuckChannel,
      FaultKind::kBankFailure,
      FaultKind::kArbiterLatchup,
  };
  return kinds;
}

std::string FaultEvent::describe() const {
  std::string s = std::string(to_string(kind)) + "@" + std::to_string(cycle);
  if (arbiter >= 0) s += " arbiter=" + std::to_string(arbiter);
  if (port >= 0) s += " port=" + std::to_string(port);
  if (bit >= 0) s += " bit=" + std::to_string(bit);
  if (channel >= 0) s += " channel=" + std::to_string(channel);
  if (bank >= 0) s += " bank=" + std::to_string(bank);
  if (xor_mask != 0) s += " mask=0x" + std::to_string(xor_mask);
  if (duration > 1) s += " for=" + std::to_string(duration);
  return s;
}

namespace {

bool kind_applicable(FaultKind k, const FaultTargets& targets) {
  switch (k) {
    case FaultKind::kChannelCorrupt:
    case FaultKind::kPermanentStuckChannel:
      return targets.num_phys_channels > 0;
    case FaultKind::kBankFailure:
      return targets.num_banks > 0;
    case FaultKind::kFsmBitFlip:
    case FaultKind::kReqStuck0:
    case FaultKind::kReqStuck1:
    case FaultKind::kGrantStuck0:
    case FaultKind::kGrantDrop:
    case FaultKind::kArbiterLatchup:
      return !targets.arbiter_ports.empty();
  }
  return false;
}

}  // namespace

std::vector<FaultEvent> plan_faults(const FaultTargets& targets,
                                    const FaultPlanOptions& options) {
  RCARB_CHECK(options.rate >= 0.0, "negative fault rate");
  RCARB_CHECK(options.horizon > 0, "fault horizon must be positive");
  RCARB_CHECK(targets.arbiter_ports.size() == targets.arbiter_state_bits.size(),
              "arbiter shape tables disagree");

  std::vector<FaultKind> kinds;
  for (FaultKind k : options.kinds.empty() ? all_fault_kinds() : options.kinds)
    if (kind_applicable(k, targets)) kinds.push_back(k);
  if (kinds.empty()) return {};

  const auto count = static_cast<std::uint64_t>(
      std::llround(options.rate * static_cast<double>(options.horizon)));
  Rng rng(options.seed);
  std::vector<FaultEvent> events;
  events.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    FaultEvent e;
    e.cycle = rng.next_below(options.horizon);
    e.kind = kinds[rng.next_below(kinds.size())];
    switch (e.kind) {
      case FaultKind::kChannelCorrupt: {
        e.channel = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(targets.num_phys_channels)));
        e.xor_mask = 1ull << rng.next_below(32);  // single-bit SEU
        break;
      }
      case FaultKind::kPermanentStuckChannel: {
        e.channel = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(targets.num_phys_channels)));
        e.duration = 0;  // permanent: never expires
        break;
      }
      case FaultKind::kBankFailure: {
        e.bank = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(targets.num_banks)));
        e.duration = 0;
        break;
      }
      case FaultKind::kArbiterLatchup: {
        e.arbiter = static_cast<int>(rng.next_below(targets.arbiter_ports.size()));
        e.duration = 0;
        break;
      }
      case FaultKind::kFsmBitFlip: {
        e.arbiter = static_cast<int>(rng.next_below(targets.arbiter_ports.size()));
        const int bits =
            targets.arbiter_state_bits[static_cast<std::size_t>(e.arbiter)];
        e.bit = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(std::max(1, bits))));
        break;
      }
      case FaultKind::kReqStuck0:
      case FaultKind::kReqStuck1:
      case FaultKind::kGrantStuck0:
      case FaultKind::kGrantDrop: {
        e.arbiter = static_cast<int>(rng.next_below(targets.arbiter_ports.size()));
        const int ports =
            targets.arbiter_ports[static_cast<std::size_t>(e.arbiter)];
        e.port = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(std::max(1, ports))));
        e.duration =
            e.kind == FaultKind::kGrantDrop ? 1 : options.stuck_duration;
        break;
      }
    }
    events.push_back(e);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.cycle < b.cycle;
                   });
  return events;
}

}  // namespace rcarb::fault
