// Deterministic fault injection for the arbitration stack.
//
// Real reconfigurable fabrics see single-event upsets and stuck lines; the
// paper's safety claims (Sec. 4.1: mutual exclusion, starvation freedom,
// deadlock freedom) are only meaningful if the system at least *detects*
// such faults, and ideally recovers.  This module produces deterministic,
// seeded fault schedules against a declared target shape (arbiters with
// request ports and one-hot state registers, physical channels carrying
// words).  The schedule is data: consumers (the behavioral arbiters, the
// system simulator, the netlist simulator tests) apply each event to their
// own representation, so the same campaign drives every layer identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rcarb::fault {

/// What breaks.  The one-hot Fig. 5 encoding is especially exposed to
/// kFsmBitFlip: a single upset produces a zero-hot (dead) or two-hot
/// (mutual-exclusion-violating) register.
enum class FaultKind : std::uint8_t {
  kFsmBitFlip,     // SEU in an arbiter's state register (one bit XOR)
  kReqStuck0,      // a request line reads 0 for `duration` cycles
  kReqStuck1,      // a request line reads 1 for `duration` cycles
  kGrantStuck0,    // the holder's grant line reads 0 (hung grant)
  kGrantDrop,      // one grant pulse is swallowed (1-cycle stuck-0)
  kChannelCorrupt, // the next word on a physical channel is XOR-corrupted

  // ---- Permanent faults (graceful-degradation campaigns). ----
  kPermanentStuckChannel, // a physical channel stops carrying words forever
  kBankFailure,           // a memory bank stops acknowledging accesses
  kArbiterLatchup,        // one arbiter FSM copy freezes at its state
};

[[nodiscard]] const char* to_string(FaultKind k);

/// True for the permanent kinds: the fault never clears on its own, so
/// detection must lead to quarantine + remap rather than retry.
[[nodiscard]] bool is_permanent(FaultKind k);

/// All *transient* kinds, in enum order (campaign sweeps iterate this).
/// Deliberately excludes the permanent kinds so existing resilience
/// campaigns keep their cell sets; see permanent_fault_kinds().
[[nodiscard]] const std::vector<FaultKind>& all_fault_kinds();

/// The permanent kinds, in enum order (degradation campaigns iterate this).
[[nodiscard]] const std::vector<FaultKind>& permanent_fault_kinds();

/// One scheduled fault.  Fields beyond `cycle`/`kind` are target
/// coordinates; unused ones stay -1/0.
struct FaultEvent {
  std::uint64_t cycle = 0;
  FaultKind kind = FaultKind::kFsmBitFlip;
  int arbiter = -1;            // arbiter index (FSM / line faults)
  int port = -1;               // request-line index within the arbiter
  int bit = -1;                // state-register bit (kFsmBitFlip)
  int channel = -1;            // physical channel (channel faults)
  int bank = -1;               // memory bank (kBankFailure)
  std::uint64_t xor_mask = 0;  // data corruption mask (kChannelCorrupt)
  std::uint64_t duration = 1;  // cycles a stuck-at persists

  [[nodiscard]] std::string describe() const;
};

/// The injectable surface of one system: how many arbiters exist, how wide
/// each one is, and how many physical channels carry data.
struct FaultTargets {
  std::vector<int> arbiter_ports;      // ports per arbiter
  std::vector<int> arbiter_state_bits; // state-register width per arbiter
  int num_phys_channels = 0;
  int num_banks = 0;                   // memory banks (kBankFailure)

  [[nodiscard]] bool empty() const {
    return arbiter_ports.empty() && num_phys_channels == 0 && num_banks == 0;
  }
};

struct FaultPlanOptions {
  std::uint64_t seed = 1;
  /// Cycles across which events are scattered.
  std::uint64_t horizon = 20'000;
  /// Expected number of faults per cycle (events = round(rate * horizon)).
  double rate = 1e-3;
  /// Stuck-at persistence; transient SEU-like faults stay short.
  std::uint64_t stuck_duration = 256;
  /// Kinds to draw from; empty = all kinds applicable to the targets.
  std::vector<FaultKind> kinds;
};

/// Builds a deterministic schedule: identical options + targets yield an
/// identical, cycle-sorted event list.  kChannelCorrupt masks are single-bit
/// (the SEU model), which a SECDED-protected channel can correct.
[[nodiscard]] std::vector<FaultEvent> plan_faults(const FaultTargets& targets,
                                                  const FaultPlanOptions& options);

}  // namespace rcarb::fault
