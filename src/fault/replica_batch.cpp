#include "fault/replica_batch.hpp"

#include <chrono>

#include "support/check.hpp"
#include "support/parallel.hpp"

namespace rcarb::fault {

namespace {

using netlist::NetId;
using netlist::WideLaneSimulator;

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// One batch's map() output: checksums for its active replicas plus the
/// instrumentation the reducer aggregates.
struct BatchOut {
  std::vector<std::uint64_t> checksums;
  std::uint64_t luts_evaluated = 0;
  SimdTier kernel_tier = SimdTier::kScalar;
  double kernel_seconds = 0.0;
};

BatchOut run_one_batch(const ReplicaBatchSpec& spec,
                       const ReplicaBatchOptions& options,
                       std::size_t first_replica, std::size_t active) {
  const std::size_t lanes = options.lanes;
  const std::size_t cycles = spec.requests.size();
  const std::size_t num_grants = spec.grant.size();

  // (lane, state bit) pokes by cycle, for this batch's replicas.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      seu_by_cycle(cycles);
  for (std::size_t l = 0; l < active; ++l) {
    const ReplicaSeu& seu = spec.seu[first_replica + l];
    if (seu.cycle < cycles)
      seu_by_cycle[seu.cycle].push_back(
          {static_cast<std::uint32_t>(l), seu.state_bit});
  }

  WideLaneSimulator sim(*spec.netlist, lanes, options.mode, options.tier);
  const std::size_t words = sim.words();
  // Grant rows per cycle, folded into per-replica checksums after the
  // timed loop (the fold is O(R * cycles * grants) scalar work; keeping it
  // out of the kernel time matches the scalar baseline, which also folds
  // outside its settle/clock calls).
  std::vector<std::uint64_t> grant_rows(cycles * num_grants * words);
  const std::uint64_t evals_before = sim.luts_evaluated();

  const auto t0 = std::chrono::steady_clock::now();
  sim.reset();
  for (std::size_t c = 0; c < cycles; ++c) {
    const std::uint64_t req = spec.requests[c];
    for (std::size_t i = 0; i < spec.req.size(); ++i)
      sim.set_input_all(spec.req[i], (req >> i) & 1);
    sim.settle();
    for (std::size_t i = 0; i < num_grants; ++i)
      sim.get(spec.grant[i], grant_rows.data() + (c * num_grants + i) * words);
    for (const auto& [lane, bit] : seu_by_cycle[c]) {
      const NetId net = spec.state[bit];
      sim.poke_register_lane(net, lane, !sim.get_lane(net, lane));
    }
    sim.clock();
  }
  BatchOut out;
  out.kernel_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.luts_evaluated = sim.luts_evaluated() - evals_before;
  out.kernel_tier = sim.kernel_tier();

  // Fold each active lane's grant stream exactly as the scalar replica
  // runner does.
  out.checksums.resize(active, 0);
  for (std::size_t l = 0; l < active; ++l) {
    std::uint64_t checksum = 0;
    for (std::size_t c = 0; c < cycles; ++c)
      for (std::size_t i = 0; i < num_grants; ++i) {
        const std::uint64_t row =
            grant_rows[(c * num_grants + i) * words + l / 64];
        checksum = checksum * 31 + (((row >> (l % 64)) & 1u) ? i + 1 : 0);
      }
    out.checksums[l] = checksum;
  }
  return out;
}

}  // namespace

ReplicaBatchResult run_replica_batch(const ReplicaBatchSpec& spec,
                                     const ReplicaBatchOptions& options) {
  RCARB_CHECK(spec.netlist != nullptr, "replica batch needs a netlist");
  RCARB_CHECK(!spec.seu.empty(), "replica batch needs at least one replica");
  RCARB_CHECK(spec.req.size() <= 64,
              "replica batch request streams carry <= 64 request bits");
  for (const ReplicaSeu& seu : spec.seu)
    RCARB_CHECK(seu.state_bit < spec.state.size(),
                "replica SEU targets a state bit outside the register");
  const std::size_t lanes = options.lanes;
  RCARB_CHECK(lanes >= 64 && lanes <= WideLaneSimulator::kMaxLanes &&
                  lanes % 64 == 0,
              "replica batch lanes must be a multiple of 64 in [64, 512]");

  const std::size_t replicas = spec.seu.size();
  const std::size_t batches = (replicas + lanes - 1) / lanes;

  ReplicaBatchResult result;
  result.batches = batches;
  result.lanes = lanes;
  result.checksums.reserve(replicas);
  ordered_map_reduce<BatchOut>(
      batches,
      [&](std::size_t b) {
        const std::size_t first = b * lanes;
        const std::size_t active = std::min(lanes, replicas - first);
        return run_one_batch(spec, options, first, active);
      },
      [&](std::size_t, BatchOut out) {
        for (const std::uint64_t checksum : out.checksums) {
          result.checksums.push_back(checksum);
          result.folded = result.folded * kFnvPrime + checksum;
        }
        result.luts_evaluated += out.luts_evaluated;
        result.kernel_tier = out.kernel_tier;
        result.kernel_seconds += out.kernel_seconds;
      },
      options.jobs);
  return result;
}

}  // namespace rcarb::fault
