// Threaded wide-lane SEU replica batches.
//
// The fault campaign's netlist-level inner loop is a *replica batch*: R
// replicas of one arbiter netlist replay a shared request stream, each
// replica carrying its own SEU (a register bit flipped at a
// replica-specific cycle).  This is the entry point that fans a batch out
// as (batches x lanes): replicas are packed `lanes` at a time into
// netlist::WideLaneSimulator passes (64..512 lanes per pass, SIMD kernel
// chosen at runtime), and the batches run on support/parallel.hpp's
// ordered_map_reduce worker pool.
//
// Determinism contract: every replica's grant-stream checksum is a pure
// function of (netlist, request stream, that replica's SEU) — lanes never
// interact, and batches are fixed slices of the replica index space — so
// `checksums` and `folded` are byte-identical across RCARB_JOBS=1 vs N,
// across lane widths 64/256/512, across SIMD tiers, and against R scalar
// netlist::Simulator runs.  The cross-width test suite and
// bench_sim_throughput's checksum tie pin all of this.  Only
// `kernel_seconds` (wall time) is outside the contract.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/simulator.hpp"
#include "netlist/wide_simulator.hpp"
#include "support/cpu.hpp"

namespace rcarb::fault {

/// One replica's SEU: flip `state[state_bit]` after the grants of
/// `cycle` are sampled (before the clock edge).
struct ReplicaSeu {
  std::uint32_t cycle = 0;
  std::uint32_t state_bit = 0;
};

/// A batch of SEU replicas over one netlist.  `requests[c]` carries the
/// cycle-c request pattern in its low req.size() bits, shared by every
/// replica; `seu` holds one entry per replica (its size is the replica
/// count R).
struct ReplicaBatchSpec {
  const netlist::Netlist* netlist = nullptr;
  std::vector<netlist::NetId> req;
  std::vector<netlist::NetId> grant;
  std::vector<netlist::NetId> state;
  std::vector<std::uint64_t> requests;
  std::vector<ReplicaSeu> seu;
};

struct ReplicaBatchOptions {
  /// Lanes per simulator pass: a multiple of 64 in [64, 512].
  std::size_t lanes = netlist::WideLaneSimulator::kMaxLanes;
  netlist::SettleMode mode = netlist::SettleMode::kEventDriven;
  /// Caps the SIMD kernel (default: the machine tier under $RCARB_SIMD).
  std::optional<SimdTier> tier;
  /// Worker threads for the batch fan-out: 0 = $RCARB_JOBS default,
  /// 1 = exact serial path (support/parallel.hpp semantics).
  int jobs = 0;
};

struct ReplicaBatchResult {
  /// Per-replica grant-stream checksum, replica order (the scalar
  /// Simulator fold: c = c * 31 + (grant_i ? i + 1 : 0) per grant per
  /// cycle).
  std::vector<std::uint64_t> checksums;
  /// FNV-style fold of `checksums` in replica order — one word to compare
  /// across engines, widths, tiers and job counts.
  std::uint64_t folded = 0;
  /// LUT evaluations summed over all batch simulators.
  std::uint64_t luts_evaluated = 0;
  std::size_t batches = 0;
  std::size_t lanes = 0;
  /// SIMD kernel the batches dispatched to.
  SimdTier kernel_tier = SimdTier::kScalar;
  /// Summed wall time of the timed cycle loops only (excludes simulator
  /// construction and the checksum fold) — the throughput numerator is
  /// R * requests.size() lane-cycles.  Outside the determinism contract.
  double kernel_seconds = 0.0;
};

/// Runs all R = spec.seu.size() replicas and returns their checksums.
/// See the file comment for the determinism contract.
[[nodiscard]] ReplicaBatchResult run_replica_batch(
    const ReplicaBatchSpec& spec, const ReplicaBatchOptions& options = {});

}  // namespace rcarb::fault
