#include "fault/service_faults.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace rcarb::fault {

namespace {

bool service_kind(FaultKind k) {
  return k == FaultKind::kFsmBitFlip || k == FaultKind::kArbiterLatchup ||
         k == FaultKind::kBankFailure;
}

}  // namespace

std::vector<FaultEvent> plan_service_faults(
    int resources, int ports, int copies,
    const ServiceFaultPlanOptions& options) {
  RCARB_CHECK(resources >= 1, "plan needs at least one resource");
  RCARB_CHECK(ports >= 1 && ports <= 64,
              "service fault plans target word-width arbiters (<= 64 ports)");
  RCARB_CHECK(copies >= 1 && copies <= 3, "copies must be 1 (plain), 2 or 3");
  RCARB_CHECK(options.rate >= 0.0, "negative fault rate");
  RCARB_CHECK(options.horizon > options.inject_after,
              "fault window is empty (horizon <= inject_after)");
  RCARB_CHECK(!options.kinds.empty(), "no fault kinds to draw from");
  for (const FaultKind k : options.kinds)
    RCARB_CHECK(service_kind(k),
                "kind is not service-injectable (only fsm-bit-flip, "
                "arbiter-latchup and bank-failure target the service shape)");

  const std::uint64_t span = options.horizon - options.inject_after;
  const auto count = static_cast<std::uint64_t>(
      std::llround(options.rate * static_cast<double>(span)));

  // Round-robin the kind assignment so a mixed plan's composition is
  // exact, then count the permanent events per kind for stratification.
  std::vector<FaultEvent> events;
  events.reserve(count);
  std::uint64_t per_kind[2] = {0, 0};  // latchup, bank-failure totals
  for (std::uint64_t i = 0; i < count; ++i) {
    const FaultKind k = options.kinds[i % options.kinds.size()];
    if (k == FaultKind::kArbiterLatchup) ++per_kind[0];
    if (k == FaultKind::kBankFailure) ++per_kind[1];
  }

  Rng rng(options.seed);
  std::uint64_t placed[2] = {0, 0};  // stratification index per kind
  for (std::uint64_t i = 0; i < count; ++i) {
    FaultEvent e;
    e.kind = options.kinds[i % options.kinds.size()];
    switch (e.kind) {
      case FaultKind::kFsmBitFlip: {
        e.cycle = options.inject_after + rng.next_below(span);
        e.arbiter = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(resources)));
        e.bit = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(copies) * 2u *
            static_cast<std::uint64_t>(ports)));
        break;
      }
      case FaultKind::kArbiterLatchup:
      case FaultKind::kBankFailure: {
        const std::size_t slot = e.kind == FaultKind::kArbiterLatchup ? 0 : 1;
        const std::uint64_t j = placed[slot]++;
        // Stratified cycle (event j of m lands at (j+1)/(m+1) of the
        // window) and round-robin victim: deterministic coverage.
        e.cycle = options.inject_after + span * (j + 1) / (per_kind[slot] + 1);
        const int victim =
            static_cast<int>(j % static_cast<std::uint64_t>(resources));
        if (e.kind == FaultKind::kArbiterLatchup)
          e.arbiter = victim;
        else
          e.bank = victim;
        e.duration = 0;  // permanent: never expires
        break;
      }
      default:
        RCARB_CHECK(false, "unreachable: kinds were validated");
    }
    events.push_back(e);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.cycle < b.cycle;
                   });
  return events;
}

}  // namespace rcarb::fault
