// Seeded fault plans against the arbitration *service* shape.
//
// plan_faults (fault.hpp) schedules against the rcsim shape — arbiters,
// physical channels, memory banks.  The open-loop service has a simpler
// injectable surface: R resources, each with one (possibly replicated)
// round-robin arbiter of `ports` request lines, and a datapath that either
// works or is dead.  This planner reuses the FaultEvent/FaultKind
// vocabulary against that shape, with coordinates the service engine
// interprets directly:
//
//   * kFsmBitFlip     — transient SEU.  `arbiter` = resource, `bit` in
//     [0, copies * 2 * ports): the engine maps bit / (2 * ports) to the
//     replica copy and bit % (2 * ports) into that copy's F/C register.
//   * kArbiterLatchup — permanent.  `arbiter` = resource.  Latch-up
//     wedges a register at a *corrupt* value (a cell stuck mid-flip): a
//     replicated arbiter freezes copy 0 at a corrupted state, so the
//     comparator fires persistently until the region is rewritten (DMR
//     fail-stops, TMR votes through); a plain one freezes its whole
//     register — the resource silently stops granting, the unprotected
//     failure mode nothing ever detects.
//   * kBankFailure    — permanent resource failure.  `bank` = resource;
//     the datapath stops producing valid results, so every completion
//     fails until the supervisor retires the resource.
//
// Transient events are scattered uniformly (seeded) across the window.
// Permanent events are placed deterministically: stratified cycles across
// the window and round-robin resource targets — a campaign that draws the
// same victim twice measures nothing new, and availability curves should
// not depend on a lucky collision.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"

namespace rcarb::fault {

struct ServiceFaultPlanOptions {
  std::uint64_t seed = 1;
  /// Cycle bound of the plan: events land in [inject_after, horizon).
  /// Cycle stamps count from cycle 0 of the run (warmup included), so a
  /// bench that wants every fault inside the measured window passes
  /// inject_after = warmup_cycles.
  std::uint64_t horizon = 30'000;
  std::uint64_t inject_after = 0;
  /// Expected events per cycle over the window:
  /// events = round(rate * (horizon - inject_after)).
  double rate = 1e-3;
  /// Kinds to draw from, assigned round-robin over the event count (so a
  /// mixed plan's composition is exact, not sampled).  Only the
  /// service-applicable kinds are accepted: kFsmBitFlip, kArbiterLatchup,
  /// kBankFailure.
  std::vector<FaultKind> kinds = {FaultKind::kFsmBitFlip};
};

/// Builds a deterministic, cycle-sorted schedule against a service of
/// `resources` resources with `ports`-line arbiters replicated `copies`
/// times (1 = plain, 2 = DMR, 3 = TMR; widens the SEU bit range).
/// Identical arguments yield an identical plan.
[[nodiscard]] std::vector<FaultEvent> plan_service_faults(
    int resources, int ports, int copies,
    const ServiceFaultPlanOptions& options);

}  // namespace rcarb::fault
