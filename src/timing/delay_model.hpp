// Delay model for static timing analysis.
//
// Calibrated to the Xilinx XC4000E -3 speed grade band (1998 Programmable
// Logic Data Book): function-generator combinational delay ~1.6 ns,
// clock-to-Q ~2.8 ns, setup ~2.5 ns, and routing delays that dominate and
// grow with fanout (pre-route estimate: base segment plus an increment per
// extra load).  Absolute values are a model, not silicon; what the
// reproduction relies on is that path delay grows with LUT depth and
// fanout, which these constants express.  All delays in nanoseconds.
#pragma once

#include <cstddef>

namespace rcarb::timing {

/// Per-technology delay constants (ns).
struct DelayModel {
  double lut_delay = 1.4;       // F/G function generator T_ILO
  double clk_to_q = 2.8;        // T_CKO
  double setup = 2.5;           // T_ICK (D to clock setup via logic bypass)
  double net_base = 0.9;        // routing delay of a 1-load net
  double net_per_fanout = 0.45; // additional delay per extra load
  double clock_uncertainty = 0.5;

  /// Routing delay of a net with `fanout` loads (>= 1 effective).
  [[nodiscard]] double net_delay(std::size_t fanout) const {
    const double loads = fanout == 0 ? 1.0 : static_cast<double>(fanout);
    return net_base + net_per_fanout * (loads - 1.0);
  }
};

/// The default model: XC4000E, -3 speed grade.
[[nodiscard]] inline DelayModel xc4000e_speed3() { return DelayModel{}; }

}  // namespace rcarb::timing
