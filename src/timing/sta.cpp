#include "timing/sta.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace rcarb::timing {

TimingReport analyze(const netlist::Netlist& nl, const DelayModel& model) {
  const auto fanout = nl.fanout_counts();
  const auto topo = nl.lut_topo_order();

  // arrival[net]: worst arrival at the *driver output pin* of the net.
  // from_reg[net]: true if some worst path into the net starts at a register
  // (tracked separately so reg->reg and in->reg paths are distinguished).
  const double neg_inf = -1.0;
  std::vector<double> arr_from_reg(nl.num_nets(), neg_inf);
  std::vector<double> arr_from_input(nl.num_nets(), neg_inf);
  // route_from_reg[net]: accumulated wire (routing) delay along the worst
  // register-launched path into the net, so the report can split the
  // critical period into logic vs routing.
  std::vector<double> route_from_reg(nl.num_nets(), 0.0);
  std::vector<netlist::NetId> pred(nl.num_nets(), netlist::NetId(-1));

  for (netlist::NetId in : nl.inputs()) arr_from_input[in] = 0.0;
  for (const netlist::Dff& dff : nl.dffs()) arr_from_reg[dff.q] = model.clk_to_q;

  for (std::size_t i : topo) {
    const netlist::Lut& lut = nl.luts()[i];
    double best_reg = neg_inf;
    double best_reg_route = 0.0;
    double best_in = neg_inf;
    netlist::NetId best_pred = netlist::NetId(-1);
    double best_any = neg_inf;
    for (netlist::NetId in : lut.inputs) {
      const double wire = model.net_delay(fanout[in]);
      if (arr_from_reg[in] >= 0.0 && arr_from_reg[in] + wire > best_reg) {
        best_reg = arr_from_reg[in] + wire;
        best_reg_route = route_from_reg[in] + wire;
      }
      if (arr_from_input[in] >= 0.0)
        best_in = std::max(best_in, arr_from_input[in] + wire);
      const double any = std::max(arr_from_reg[in], arr_from_input[in]);
      if (any >= 0.0 && any + wire > best_any) {
        best_any = any + wire;
        best_pred = in;
      }
    }
    if (best_reg >= 0.0) {
      arr_from_reg[lut.output] = best_reg + model.lut_delay;
      route_from_reg[lut.output] = best_reg_route;
    }
    if (best_in >= 0.0) arr_from_input[lut.output] = best_in + model.lut_delay;
    pred[lut.output] = best_pred;
  }

  TimingReport report;
  netlist::NetId critical_end = netlist::NetId(-1);
  for (const netlist::Dff& dff : nl.dffs()) {
    const double wire = model.net_delay(fanout[dff.d]);
    if (arr_from_reg[dff.d] >= 0.0) {
      const double path = arr_from_reg[dff.d] + wire + model.setup;
      if (path > report.reg_to_reg_ns) {
        report.reg_to_reg_ns = path;
        report.reg_to_reg_route_ns = route_from_reg[dff.d] + wire;
        critical_end = dff.d;
      }
    }
    if (arr_from_input[dff.d] >= 0.0)
      report.input_to_reg_ns = std::max(
          report.input_to_reg_ns, arr_from_input[dff.d] + wire + model.setup);
  }
  for (const auto& [net, name] : nl.outputs()) {
    if (arr_from_reg[net] >= 0.0)
      report.reg_to_out_ns =
          std::max(report.reg_to_out_ns,
                   arr_from_reg[net] + model.net_delay(fanout[net]));
  }

  report.critical_path_ns = std::max(
      {report.reg_to_reg_ns, report.input_to_reg_ns, report.reg_to_out_ns});
  // Fmax is constrained by every register capture path plus uncertainty.
  const double cycle = std::max(report.reg_to_reg_ns, report.input_to_reg_ns) +
                       model.clock_uncertainty;
  report.fmax_mhz = cycle > 0.0 ? 1000.0 / cycle : 0.0;

  // Walk the critical path back for the report.
  for (netlist::NetId n = critical_end; n != netlist::NetId(-1); n = pred[n])
    report.critical_nets.push_back(nl.net_name(n));
  std::reverse(report.critical_nets.begin(), report.critical_nets.end());
  return report;
}

}  // namespace rcarb::timing
