// Static timing analysis over mapped netlists.
//
// Computes arrival times in topological order and reports the worst
// register-to-register, input-to-register and register-to-output paths,
// from which the maximum clock frequency (Fig. 7's metric) follows.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "timing/delay_model.hpp"

namespace rcarb::timing {

/// Result of a timing run.
struct TimingReport {
  double reg_to_reg_ns = 0.0;   // worst launch->capture path incl. clkQ+setup
  double input_to_reg_ns = 0.0; // worst PI->register path incl. setup
  double reg_to_out_ns = 0.0;   // worst register->PO path incl. clkQ
  double critical_path_ns = 0.0;  // max of the above
  double fmax_mhz = 0.0;          // 1000 / (reg_to_reg + uncertainty)
  /// Routing share of reg_to_reg_ns: the fanout-priced net delays along the
  /// worst launch->capture path (the rest is clk-to-q + LUTs + setup).  The
  /// scaling bench reports it — wide-fanout broadcast nets show up here
  /// long before they show up in LUT depth.
  double reg_to_reg_route_ns = 0.0;
  std::vector<std::string> critical_nets;  // nets on the critical r2r path
};

/// Runs STA on `netlist` under `model`.
[[nodiscard]] TimingReport analyze(const netlist::Netlist& netlist,
                                   const DelayModel& model);

}  // namespace rcarb::timing
