// Temporal partitioning (paper Sec. 5: "temporally divide and schedule the
// tasks on the reconfigurable architecture").
//
// Tasks are grouped into a sequence of configurations; the whole board is
// reconfigured between them.  A valid partitioning never places a task
// before any of its control predecessors, and each partition must fit the
// board: task CLB area plus the pre-characterized area of the arbiters the
// partition will need, and the memory footprint of the active segments.
#pragma once

#include <cstddef>
#include <vector>

#include "board/board.hpp"
#include "core/generator.hpp"
#include "taskgraph/taskgraph.hpp"

namespace rcarb::part {

struct TemporalOptions {
  /// Fraction of board CLBs usable by tasks (routing/controller headroom).
  double utilization = 0.75;
  /// Estimates arbiter area while filling; nullptr prices arbiters at zero.
  core::PrecharCache* prechar = nullptr;
};

struct TemporalPartition {
  std::vector<tg::TaskId> tasks;
  std::size_t task_clbs = 0;
  std::size_t arbiter_clbs = 0;  // estimate at fill time
  std::size_t memory_bytes = 0;  // active-segment footprint
};

struct TemporalResult {
  std::vector<TemporalPartition> partitions;
  std::vector<int> tp_of_task;  // per TaskId
};

/// Greedy levelized list scheduling: walk tasks in topological order and
/// open a new partition whenever adding the next task would overflow CLB or
/// memory capacity.  Throws if a single task cannot fit at all.
[[nodiscard]] TemporalResult temporal_partition(const tg::TaskGraph& graph,
                                                const board::Board& board,
                                                const TemporalOptions& options);

}  // namespace rcarb::part
