#include "partition/estimate.hpp"

#include <algorithm>
#include <cmath>

namespace rcarb::part {

std::size_t estimate_task_clbs(const tg::Program& program,
                               const EstimateModel& model) {
  const tg::Program::OpCounts counts = program.op_counts();

  std::size_t clbs = model.base_control;
  clbs += static_cast<std::size_t>(
      std::ceil(model.control_per_op * static_cast<double>(counts.total)));
  if (counts.alu > 0) clbs += model.alu;
  if (counts.multiplies > 0) clbs += model.multiplier;
  if (counts.mem_accesses > 0) clbs += model.mem_interface;
  if (counts.channel_ops > 0) clbs += model.channel_interface;

  // Registers actually referenced.
  std::size_t max_reg = 0;
  for (const tg::Op& op : program.ops()) {
    max_reg = std::max({max_reg, static_cast<std::size_t>(std::max(op.a, 0)),
                        static_cast<std::size_t>(std::max(op.c, 0))});
  }
  clbs += model.regfile_per_reg * (max_reg + 1);
  return clbs;
}

void annotate_areas(tg::TaskGraph& graph, const EstimateModel& model) {
  for (tg::TaskId t = 0; t < graph.num_tasks(); ++t) {
    tg::Task& task = graph.task(t);
    if (task.area_clbs == 0)
      task.area_clbs = estimate_task_clbs(task.program, model);
  }
}

}  // namespace rcarb::part
