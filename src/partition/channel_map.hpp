// Interconnect synthesis / channel mapping (paper Secs. 1.2, 2.2).
//
// Logical channels whose endpoint tasks land on different PEs must cross
// the board on physical wires: fixed neighbor links or crossbar routes.
// While dedicated wires remain, every channel gets its own slice; once the
// pin budget between a PE pair is exhausted, the remaining channels are
// *merged* onto a shared physical channel — the paper's channel-arbitration
// case (Fig. 3).
#pragma once

#include <string>
#include <vector>

#include "board/board.hpp"
#include "taskgraph/taskgraph.hpp"

namespace rcarb::part {

/// One physical channel instance created by the mapper.
struct PhysChannel {
  std::string name;
  board::PeId pe_a = 0;
  board::PeId pe_b = 0;
  int width_bits = 0;
  bool via_crossbar = false;
  std::vector<tg::ChannelId> logical;  // channels merged onto this one
};

struct ChannelMapResult {
  /// Physical channel per ChannelId; -1 = endpoints co-located (no wires).
  std::vector<int> phys_of_channel;
  std::vector<PhysChannel> phys;
  std::size_t merged_channels = 0;  // logical channels that had to share
  std::vector<int> crossbar_pins_used;  // per PE
  std::vector<int> link_pins_used;      // per LinkId
};

/// Maps the inter-PE channels of one temporal partition.  Throws when a
/// channel cannot be routed at all (no link, no crossbar) or is wider than
/// every available resource.
[[nodiscard]] ChannelMapResult map_channels(const tg::TaskGraph& graph,
                                            const std::vector<tg::TaskId>& tasks,
                                            const board::Board& board,
                                            const std::vector<int>& pe_of_task);

}  // namespace rcarb::part
