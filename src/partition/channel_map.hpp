// Interconnect synthesis / channel mapping (paper Secs. 1.2, 2.2).
//
// Logical channels whose endpoint tasks land on different PEs must cross
// the board on physical wires: fixed neighbor links or crossbar routes.
// While dedicated wires remain, every channel gets its own slice; once the
// pin budget between a PE pair is exhausted, the remaining channels are
// *merged* onto a shared physical channel — the paper's channel-arbitration
// case (Fig. 3).
#pragma once

#include <string>
#include <vector>

#include "board/board.hpp"
#include "taskgraph/taskgraph.hpp"

namespace rcarb::part {

/// One physical channel instance created by the mapper.
struct PhysChannel {
  std::string name;
  board::PeId pe_a = 0;
  board::PeId pe_b = 0;
  int width_bits = 0;
  bool via_crossbar = false;
  std::vector<tg::ChannelId> logical;  // channels merged onto this one
};

struct ChannelMapResult {
  /// Physical channel per ChannelId; -1 = endpoints co-located (no wires).
  std::vector<int> phys_of_channel;
  std::vector<PhysChannel> phys;
  std::size_t merged_channels = 0;  // logical channels that had to share
  std::vector<int> crossbar_pins_used;  // per PE
  std::vector<int> link_pins_used;      // per LinkId
};

/// Maps the inter-PE channels of one temporal partition.  Throws when a
/// channel cannot be routed at all (no link, no crossbar) or is wider than
/// every available resource.
[[nodiscard]] ChannelMapResult map_channels(const tg::TaskGraph& graph,
                                            const std::vector<tg::TaskId>& tasks,
                                            const board::Board& board,
                                            const std::vector<int>& pe_of_task);

/// Outcome of re-merging a quarantined physical channel onto a survivor
/// (graceful degradation: the Fig. 3 merge applied online, with P-1
/// survivors instead of P).
struct ChannelRemap {
  bool feasible = false;
  int dead_phys = -1;
  /// The survivor now carrying the dead channel's logical channels.
  int target_phys = -1;
  std::vector<tg::ChannelId> moved;
};

/// Group-moves *every* logical channel of `dead_phys` onto one surviving
/// physical channel between the same PE pair that is wide enough for the
/// widest moved channel.  The group move (rather than per-channel
/// scattering) keeps "old physical channel -> live physical channel" a
/// function, which is what lets an online system translate in-flight
/// operations.  `failed` marks additionally-unusable survivors (earlier
/// quarantines); `dead_phys` itself is always excluded.  Deterministic:
/// the least-loaded (fewest logical channels, then lowest index) eligible
/// survivor wins.  On success `result`'s tables are updated in place; when
/// no survivor qualifies, `result` is left untouched and `feasible` stays
/// false.
[[nodiscard]] ChannelRemap remap_channels(const tg::TaskGraph& graph,
                                          ChannelMapResult& result,
                                          int dead_phys,
                                          const std::vector<bool>& failed);

}  // namespace rcarb::part
