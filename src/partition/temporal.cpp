#include "partition/temporal.hpp"

#include <algorithm>
#include <numeric>
#include <set>

#include "support/check.hpp"

namespace rcarb::part {

namespace {

/// Estimated arbiter CLBs for one candidate partition: every segment shared
/// by several member tasks needs an arbiter, and when the active segments
/// outnumber the physical banks the memory mapper will have to co-locate
/// the overflow — estimate one arbiter over the union of their accessors.
std::size_t estimate_arbiter_clbs(const tg::TaskGraph& graph,
                                  const std::vector<tg::TaskId>& tasks,
                                  std::size_t num_banks,
                                  core::PrecharCache* prechar) {
  if (prechar == nullptr) return 0;

  std::set<int> active;
  for (tg::TaskId t : tasks)
    for (int s : graph.task(t).program.accessed_segments()) active.insert(s);

  std::size_t clbs = 0;
  std::vector<std::size_t> per_segment_users;
  for (int s : active) {
    std::size_t users = 0;
    for (tg::TaskId t : tasks) {
      const auto segs = graph.task(t).program.accessed_segments();
      if (std::find(segs.begin(), segs.end(), s) != segs.end()) ++users;
    }
    per_segment_users.push_back(users);
    if (users >= 2)
      clbs += prechar->get(static_cast<int>(std::min<std::size_t>(users, 20)))
                  .clbs;
  }
  if (active.size() > num_banks && num_banks > 0) {
    // The overflow segments share one bank; bound the arbiter size by the
    // partition's task count.
    const std::size_t merged = active.size() - num_banks + 1;
    std::size_t users = 0;
    auto it = per_segment_users.begin();
    for (std::size_t k = 0; k < merged && it != per_segment_users.end();
         ++k, ++it)
      users += *it;
    users = std::min(users, tasks.size());
    if (users >= 2)
      clbs += prechar->get(static_cast<int>(std::min<std::size_t>(users, 20)))
                  .clbs;
  }
  return clbs;
}

std::size_t memory_footprint(const tg::TaskGraph& graph,
                             const std::vector<tg::TaskId>& tasks) {
  std::set<int> active;
  for (tg::TaskId t : tasks)
    for (int s : graph.task(t).program.accessed_segments()) active.insert(s);
  std::size_t bytes = 0;
  for (int s : active)
    bytes += graph.segment(static_cast<std::size_t>(s)).bytes;
  return bytes;
}

}  // namespace

TemporalResult temporal_partition(const tg::TaskGraph& graph,
                                  const board::Board& board,
                                  const TemporalOptions& options) {
  graph.validate();
  RCARB_CHECK(options.utilization > 0.0 && options.utilization <= 1.0,
              "utilization must be in (0, 1]");

  const auto clb_budget = static_cast<std::size_t>(
      options.utilization *
      static_cast<double>(board.total_clb_capacity()));
  const std::size_t mem_budget = board.total_memory_bytes();

  // Topological order: by level, then by task id for determinism.
  const std::vector<int> level = graph.levels();
  std::vector<tg::TaskId> order(graph.num_tasks());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](tg::TaskId a, tg::TaskId b) {
                     return level[a] < level[b];
                   });

  TemporalResult result;
  result.tp_of_task.assign(graph.num_tasks(), -1);

  std::vector<tg::TaskId> current;
  auto finalize = [&](const std::vector<tg::TaskId>& tasks) {
    TemporalPartition tp;
    tp.tasks = tasks;
    for (tg::TaskId t : tasks) tp.task_clbs += graph.task(t).area_clbs;
    tp.arbiter_clbs = estimate_arbiter_clbs(graph, tasks, board.num_banks(),
                                            options.prechar);
    tp.memory_bytes = memory_footprint(graph, tasks);
    for (tg::TaskId t : tasks)
      result.tp_of_task[t] = static_cast<int>(result.partitions.size());
    result.partitions.push_back(std::move(tp));
  };

  auto fits = [&](const std::vector<tg::TaskId>& tasks) {
    std::size_t task_clbs = 0;
    for (tg::TaskId t : tasks) task_clbs += graph.task(t).area_clbs;
    const std::size_t arb = estimate_arbiter_clbs(
        graph, tasks, board.num_banks(), options.prechar);
    return task_clbs + arb <= clb_budget &&
           memory_footprint(graph, tasks) <= mem_budget;
  };

  for (tg::TaskId t : order) {
    std::vector<tg::TaskId> candidate = current;
    candidate.push_back(t);
    if (fits(candidate)) {
      current = std::move(candidate);
      continue;
    }
    RCARB_CHECK(!current.empty(),
                "task " + graph.task(t).name + " does not fit the board");
    finalize(current);
    current = {t};
    RCARB_CHECK(fits(current),
                "task " + graph.task(t).name + " does not fit the board");
  }
  if (!current.empty()) finalize(current);
  return result;
}

}  // namespace rcarb::part
