// Assembles a core::Binding from the partitioners' results, the form the
// arbiter-insertion pass and the system simulator consume.
#pragma once

#include "board/board.hpp"
#include "core/insertion.hpp"
#include "partition/channel_map.hpp"
#include "partition/memory_map.hpp"
#include "partition/spatial.hpp"
#include "taskgraph/taskgraph.hpp"

namespace rcarb::part {

/// Builds the unified binding for one temporal partition.  Resource ids:
/// every board bank (shared or not) first, then the mapper's physical
/// channels.
[[nodiscard]] core::Binding make_binding(const tg::TaskGraph& graph,
                                         const board::Board& board,
                                         const SpatialResult& spatial,
                                         const MemoryMapResult& memory,
                                         const ChannelMapResult& channels);

}  // namespace rcarb::part
