// Spatial partitioning: tasks of one temporal partition onto the board's
// PEs (paper Sec. 5: "a spatial partitioning tool to map the tasks to
// individual FPGAs").
//
// Greedy seeding by descending area followed by Fiduccia–Mattheyses-style
// refinement passes that move single tasks between PEs to reduce the
// inter-PE communication cut (logical channel widths plus a fixed wire cost
// per remote memory access relation), subject to per-PE CLB capacity.
#pragma once

#include <cstdint>
#include <vector>

#include "board/board.hpp"
#include "taskgraph/taskgraph.hpp"

namespace rcarb::part {

struct SpatialOptions {
  double utilization = 0.85;  // per-PE CLB budget fraction
  int max_passes = 8;         // FM refinement passes
  /// Wire cost charged when a task and a segment co-accessor sit on
  /// different PEs (models the shared memory bus crossing).
  int remote_memory_cost = 8;
  std::uint64_t seed = 1;  // tie-breaking
};

struct SpatialResult {
  /// PE per TaskId; -1 for tasks outside the partitioned set.
  std::vector<int> pe_of_task;
  std::size_t cut_bits = 0;  // total width of PE-crossing relations
  std::vector<std::size_t> pe_clbs;  // area per PE
  int passes_run = 0;
};

/// Places `tasks` (one temporal partition) onto the PEs of `board`.
/// Throws if the tasks cannot fit under the utilization budget.
[[nodiscard]] SpatialResult spatial_partition(
    const tg::TaskGraph& graph, const std::vector<tg::TaskId>& tasks,
    const board::Board& board, const SpatialOptions& options);

}  // namespace rcarb::part
