// Memory synthesis / data-segment mapping (paper Secs. 1.1, 2.1).
//
// Maps the logical segments active in one temporal partition onto the
// board's physical banks.  When L (active segments) exceeds P (banks),
// several segments share a bank — the situation that makes memory
// arbitration necessary.  The mapper packs best-fit-decreasing under bank
// capacity, preferring the bank attached to the PE that hosts most of a
// segment's accessors, and otherwise minimizing the number of distinct
// tasks contending per bank.
#pragma once

#include <string>
#include <vector>

#include "board/board.hpp"
#include "taskgraph/taskgraph.hpp"

namespace rcarb::part {

struct MemoryMapOptions {
  /// Extra packing cost per distinct accessor task already on a bank
  /// (steers the packer away from building big contention groups).
  double contention_weight = 0.25;
  /// Banks the mapper must not place anything on (quarantined by the
  /// graceful-degradation supervisor).  Re-running map_memory with the
  /// failed bank listed here yields the segment assignment for the
  /// shrunken pool; throws as usual if the survivors cannot hold the
  /// active segments.
  std::vector<board::BankId> failed_banks;
};

struct MemoryMapResult {
  /// Bank per SegmentId; -1 for segments not active in this partition.
  std::vector<int> bank_of_segment;
  /// Remaining bytes per bank after mapping.
  std::vector<std::size_t> bank_free_bytes;
  /// Number of banks holding more than one segment (the L > P symptom).
  std::size_t shared_banks = 0;
};

/// Maps the segments accessed by `tasks` onto banks.  `pe_of_task` comes
/// from spatial partitioning (used for locality).  Throws if the active
/// segments cannot fit the banks at all.
[[nodiscard]] MemoryMapResult map_memory(const tg::TaskGraph& graph,
                                         const std::vector<tg::TaskId>& tasks,
                                         const board::Board& board,
                                         const std::vector<int>& pe_of_task,
                                         const MemoryMapOptions& options = {});

}  // namespace rcarb::part
