// Light-weight high-level-synthesis estimation (paper Fig. 9's
// "Light-Weight High-Level Synthesis Estimator").
//
// The temporal/spatial partitioners need per-task area before any RTL
// exists.  This estimator prices a task program in CLBs from its static
// operation mix: a datapath word for every live value class, an ALU per
// op kind, a serial multiplier, memory/channel interface logic and a
// one-hot controller proportional to program length.
#pragma once

#include <cstddef>

#include "taskgraph/taskgraph.hpp"

namespace rcarb::part {

/// Estimation knobs (CLBs per resource, 16-bit datapath by default).
struct EstimateModel {
  std::size_t base_control = 6;       // sequencer skeleton
  double control_per_op = 0.75;       // one-hot controller states
  std::size_t alu = 9;                // add/sub/shift unit
  std::size_t multiplier = 38;        // serial 16x16 multiplier
  std::size_t mem_interface = 7;      // address/data/select registers
  std::size_t channel_interface = 5;  // channel registers + handshake
  std::size_t regfile_per_reg = 1;    // register file slice
};

/// Estimated CLB cost of one task program.
[[nodiscard]] std::size_t estimate_task_clbs(const tg::Program& program,
                                             const EstimateModel& model = {});

/// Fills Task::area_clbs for every task whose estimate is still 0.
void annotate_areas(tg::TaskGraph& graph, const EstimateModel& model = {});

}  // namespace rcarb::part
