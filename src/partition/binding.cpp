#include "partition/binding.hpp"

namespace rcarb::part {

core::Binding make_binding(const tg::TaskGraph& graph,
                           const board::Board& board,
                           const SpatialResult& spatial,
                           const MemoryMapResult& memory,
                           const ChannelMapResult& channels) {
  core::Binding binding;
  binding.task_to_pe = spatial.pe_of_task;
  binding.segment_to_bank = memory.bank_of_segment;
  binding.channel_to_phys = channels.phys_of_channel;
  binding.num_banks = board.num_banks();
  binding.num_phys_channels = channels.phys.size();
  for (board::BankId b = 0; b < board.num_banks(); ++b)
    binding.bank_names.push_back(board.bank(b).name);
  for (const PhysChannel& ph : channels.phys)
    binding.phys_channel_names.push_back(ph.name);
  (void)graph;
  return binding;
}

}  // namespace rcarb::part
