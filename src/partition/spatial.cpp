#include "partition/spatial.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace rcarb::part {

namespace {

/// Connection between two tasks with a wire-width weight.
struct Edge {
  tg::TaskId a;
  tg::TaskId b;
  int weight;
};

/// Builds the weighted task-connectivity graph of one partition: logical
/// channels contribute their width; co-access of a segment contributes the
/// remote-memory cost (both tasks must reach the same bank).
std::vector<Edge> build_edges(const tg::TaskGraph& graph,
                              const std::vector<tg::TaskId>& tasks,
                              const SpatialOptions& options) {
  std::vector<bool> in_set(graph.num_tasks(), false);
  for (tg::TaskId t : tasks) in_set[t] = true;

  std::vector<Edge> edges;
  for (tg::ChannelId c = 0; c < graph.num_channels(); ++c) {
    const tg::Channel& ch = graph.channel(c);
    if (in_set[ch.source] && in_set[ch.target] && ch.source != ch.target)
      edges.push_back({ch.source, ch.target, ch.width_bits});
  }
  for (tg::SegmentId s = 0; s < graph.num_segments(); ++s) {
    const auto accessors = graph.tasks_accessing_segment(s);
    for (std::size_t i = 0; i < accessors.size(); ++i)
      for (std::size_t j = i + 1; j < accessors.size(); ++j)
        if (in_set[accessors[i]] && in_set[accessors[j]])
          edges.push_back(
              {accessors[i], accessors[j], options.remote_memory_cost});
  }
  return edges;
}

std::size_t cut_of(const std::vector<Edge>& edges,
                   const std::vector<int>& pe_of_task) {
  std::size_t cut = 0;
  for (const Edge& e : edges)
    if (pe_of_task[e.a] != pe_of_task[e.b])
      cut += static_cast<std::size_t>(e.weight);
  return cut;
}

}  // namespace

SpatialResult spatial_partition(const tg::TaskGraph& graph,
                                const std::vector<tg::TaskId>& tasks,
                                const board::Board& board,
                                const SpatialOptions& options) {
  RCARB_CHECK(!tasks.empty(), "spatial partitioning of an empty set");
  const std::size_t num_pes = board.num_pes();

  std::vector<std::size_t> budget(num_pes);
  for (board::PeId p = 0; p < num_pes; ++p)
    budget[p] = static_cast<std::size_t>(
        options.utilization * static_cast<double>(board.pe(p).clb_capacity));

  SpatialResult result;
  result.pe_of_task.assign(graph.num_tasks(), -1);
  result.pe_clbs.assign(num_pes, 0);

  // ---- Greedy seed: biggest tasks first, onto the emptiest feasible PE.
  std::vector<tg::TaskId> order = tasks;
  std::stable_sort(order.begin(), order.end(),
                   [&](tg::TaskId a, tg::TaskId b) {
                     return graph.task(a).area_clbs > graph.task(b).area_clbs;
                   });
  for (tg::TaskId t : order) {
    const std::size_t area = graph.task(t).area_clbs;
    int best_pe = -1;
    for (board::PeId p = 0; p < num_pes; ++p) {
      if (result.pe_clbs[p] + area > budget[p]) continue;
      if (best_pe < 0 ||
          result.pe_clbs[p] <
              result.pe_clbs[static_cast<std::size_t>(best_pe)])
        best_pe = static_cast<int>(p);
    }
    RCARB_CHECK(best_pe >= 0,
                "task " + graph.task(t).name + " does not fit any PE");
    result.pe_of_task[t] = best_pe;
    result.pe_clbs[static_cast<std::size_t>(best_pe)] += area;
  }

  // ---- FM-style refinement: single-task moves with positive cut gain.
  const std::vector<Edge> edges = build_edges(graph, tasks, options);
  Rng rng(options.seed);
  for (int pass = 0; pass < options.max_passes; ++pass) {
    bool improved = false;
    ++result.passes_run;
    for (tg::TaskId t : tasks) {
      const int from = result.pe_of_task[t];
      const std::size_t area = graph.task(t).area_clbs;

      // Gain of moving t to PE p: cut delta over incident edges.
      std::vector<long> gain(num_pes, 0);
      for (const Edge& e : edges) {
        if (e.a != t && e.b != t) continue;
        const tg::TaskId other = e.a == t ? e.b : e.a;
        const int other_pe = result.pe_of_task[other];
        for (board::PeId p = 0; p < num_pes; ++p) {
          const bool cut_now = from != other_pe;
          const bool cut_then = static_cast<int>(p) != other_pe;
          gain[p] += (cut_now ? e.weight : 0) - (cut_then ? e.weight : 0);
        }
      }
      int best = from;
      for (board::PeId p = 0; p < num_pes; ++p) {
        if (static_cast<int>(p) == from) continue;
        if (result.pe_clbs[p] + area > budget[p]) continue;
        const auto bi = static_cast<std::size_t>(best);
        if (gain[p] > gain[bi] ||
            (gain[p] == gain[bi] && best != from && rng.chance(1, 2)))
          best = static_cast<int>(p);
      }
      if (best != from &&
          gain[static_cast<std::size_t>(best)] >
              gain[static_cast<std::size_t>(from)]) {
        result.pe_clbs[static_cast<std::size_t>(from)] -= area;
        result.pe_clbs[static_cast<std::size_t>(best)] += area;
        result.pe_of_task[t] = best;
        improved = true;
      }
    }
    if (!improved) break;
  }

  result.cut_bits = cut_of(edges, result.pe_of_task);
  return result;
}

}  // namespace rcarb::part
