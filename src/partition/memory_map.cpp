#include "partition/memory_map.hpp"

#include <algorithm>
#include <set>

#include "support/check.hpp"

namespace rcarb::part {

MemoryMapResult map_memory(const tg::TaskGraph& graph,
                           const std::vector<tg::TaskId>& tasks,
                           const board::Board& board,
                           const std::vector<int>& pe_of_task,
                           const MemoryMapOptions& options) {
  RCARB_CHECK(pe_of_task.size() == graph.num_tasks(),
              "pe_of_task must cover every task");

  MemoryMapResult result;
  result.bank_of_segment.assign(graph.num_segments(), -1);
  result.bank_free_bytes.resize(board.num_banks());
  for (board::BankId b = 0; b < board.num_banks(); ++b)
    result.bank_free_bytes[b] = board.bank(b).bytes;

  std::vector<bool> failed(board.num_banks(), false);
  for (board::BankId b : options.failed_banks) {
    RCARB_CHECK(b < board.num_banks(), "failed bank out of range");
    failed[b] = true;
    result.bank_free_bytes[b] = 0;  // quarantined capacity is gone
  }

  // Active segments and their accessors within this partition.
  std::vector<bool> in_set(graph.num_tasks(), false);
  for (tg::TaskId t : tasks) in_set[t] = true;
  struct Active {
    tg::SegmentId segment;
    std::size_t bytes;
    std::vector<tg::TaskId> accessors;
  };
  std::vector<Active> active;
  for (tg::SegmentId s = 0; s < graph.num_segments(); ++s) {
    std::vector<tg::TaskId> accessors;
    for (tg::TaskId t : graph.tasks_accessing_segment(s))
      if (in_set[t]) accessors.push_back(t);
    if (!accessors.empty())
      active.push_back({s, graph.segment(s).bytes, std::move(accessors)});
  }

  // Best-fit decreasing by footprint.
  std::stable_sort(active.begin(), active.end(),
                   [](const Active& a, const Active& b) {
                     return a.bytes > b.bytes;
                   });

  std::vector<std::set<tg::TaskId>> bank_tasks(board.num_banks());
  for (const Active& seg : active) {
    // Locality preference: the PE hosting most accessors.
    std::vector<std::size_t> pe_votes(board.num_pes(), 0);
    for (tg::TaskId t : seg.accessors)
      if (pe_of_task[t] >= 0)
        ++pe_votes[static_cast<std::size_t>(pe_of_task[t])];

    int best_bank = -1;
    double best_score = 0.0;
    for (board::BankId b = 0; b < board.num_banks(); ++b) {
      if (failed[b]) continue;
      if (result.bank_free_bytes[b] < seg.bytes) continue;
      // Score: prefer local banks, low contention, tight fit.
      const double locality =
          static_cast<double>(pe_votes[board.bank(b).attached_pe]);
      std::size_t new_tasks = 0;
      for (tg::TaskId t : seg.accessors)
        if (!bank_tasks[b].contains(t)) ++new_tasks;
      const double contention =
          static_cast<double>(bank_tasks[b].size() + new_tasks);
      const double fit =
          static_cast<double>(result.bank_free_bytes[b] - seg.bytes) /
          static_cast<double>(board.bank(b).bytes);
      const double score = locality - options.contention_weight * contention -
                           0.1 * fit;
      if (best_bank < 0 || score > best_score) {
        best_bank = static_cast<int>(b);
        best_score = score;
      }
    }
    RCARB_CHECK(best_bank >= 0, "segment " + graph.segment(seg.segment).name +
                                    " does not fit any bank");
    const auto bb = static_cast<std::size_t>(best_bank);
    result.bank_of_segment[seg.segment] = best_bank;
    result.bank_free_bytes[bb] -= seg.bytes;
    for (tg::TaskId t : seg.accessors) bank_tasks[bb].insert(t);
  }

  std::vector<std::size_t> segs_per_bank(board.num_banks(), 0);
  for (tg::SegmentId s = 0; s < graph.num_segments(); ++s)
    if (result.bank_of_segment[s] >= 0)
      ++segs_per_bank[static_cast<std::size_t>(result.bank_of_segment[s])];
  for (std::size_t n : segs_per_bank)
    if (n > 1) ++result.shared_banks;
  return result;
}

}  // namespace rcarb::part
