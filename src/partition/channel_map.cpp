#include "partition/channel_map.hpp"

#include <algorithm>
#include <map>

#include "support/check.hpp"

namespace rcarb::part {

ChannelMapResult map_channels(const tg::TaskGraph& graph,
                              const std::vector<tg::TaskId>& tasks,
                              const board::Board& board,
                              const std::vector<int>& pe_of_task) {
  RCARB_CHECK(pe_of_task.size() == graph.num_tasks(),
              "pe_of_task must cover every task");

  ChannelMapResult result;
  result.phys_of_channel.assign(graph.num_channels(), -1);
  result.crossbar_pins_used.assign(board.num_pes(), 0);
  result.link_pins_used.assign(board.num_links(), 0);

  std::vector<bool> in_set(graph.num_tasks(), false);
  for (tg::TaskId t : tasks) in_set[t] = true;

  // Collect inter-PE channels, widest first (they are hardest to place).
  struct Pending {
    tg::ChannelId channel;
    board::PeId a, b;
    int width;
  };
  std::vector<Pending> pending;
  for (tg::ChannelId c = 0; c < graph.num_channels(); ++c) {
    const tg::Channel& ch = graph.channel(c);
    if (!in_set[ch.source] || !in_set[ch.target]) continue;
    const int pa = pe_of_task[ch.source];
    const int pb = pe_of_task[ch.target];
    RCARB_CHECK(pa >= 0 && pb >= 0, "channel endpoint task not placed");
    if (pa == pb) continue;  // co-located: routed inside the FPGA
    pending.push_back({c, static_cast<board::PeId>(pa),
                       static_cast<board::PeId>(pb), ch.width_bits});
  }
  std::stable_sort(pending.begin(), pending.end(),
                   [](const Pending& x, const Pending& y) {
                     return x.width > y.width;
                   });

  // Shared physical channel per PE pair, created on demand.
  std::map<std::pair<board::PeId, board::PeId>, int> shared_of_pair;

  for (const Pending& p : pending) {
    const auto pair = std::minmax(p.a, p.b);

    // 1) Dedicated wires on a direct link.
    int placed = -1;
    for (board::LinkId l : board.links_between(p.a, p.b)) {
      const int free = board.link(l).width_bits -
                       result.link_pins_used[l];
      if (free >= p.width) {
        result.link_pins_used[l] += p.width;
        PhysChannel phys;
        phys.name = graph.channel(p.channel).name + "@" + board.link(l).name;
        phys.pe_a = p.a;
        phys.pe_b = p.b;
        phys.width_bits = p.width;
        phys.via_crossbar = false;
        phys.logical = {p.channel};
        placed = static_cast<int>(result.phys.size());
        result.phys.push_back(std::move(phys));
        break;
      }
    }

    // 2) Dedicated crossbar route.
    if (placed < 0 && board.crossbar_reachable(p.a, p.b)) {
      const int free_a =
          board.pe(p.a).crossbar_pins - result.crossbar_pins_used[p.a];
      const int free_b =
          board.pe(p.b).crossbar_pins - result.crossbar_pins_used[p.b];
      if (std::min(free_a, free_b) >= p.width) {
        result.crossbar_pins_used[p.a] += p.width;
        result.crossbar_pins_used[p.b] += p.width;
        PhysChannel phys;
        phys.name = graph.channel(p.channel).name + "@xbar";
        phys.pe_a = p.a;
        phys.pe_b = p.b;
        phys.width_bits = p.width;
        phys.via_crossbar = true;
        phys.logical = {p.channel};
        placed = static_cast<int>(result.phys.size());
        result.phys.push_back(std::move(phys));
      }
    }

    // 3) Merge onto (or create) the pair's shared channel.
    if (placed < 0) {
      auto it = shared_of_pair.find(pair);
      if (it == shared_of_pair.end()) {
        // Convert the pair's widest existing dedicated channel into the
        // shared one; its wires are re-used (paper Fig. 3: m < k merges
        // onto the k-bit channel).
        int widest = -1;
        for (std::size_t i = 0; i < result.phys.size(); ++i) {
          const PhysChannel& ph = result.phys[i];
          if (std::minmax(ph.pe_a, ph.pe_b) != pair) continue;
          if (ph.width_bits < p.width) continue;  // must carry the new one
          if (widest < 0 ||
              ph.width_bits >
                  result.phys[static_cast<std::size_t>(widest)].width_bits)
            widest = static_cast<int>(i);
        }
        RCARB_CHECK(widest >= 0,
                    "no route wide enough for channel " +
                        graph.channel(p.channel).name);
        it = shared_of_pair.emplace(pair, widest).first;
      }
      auto& shared = result.phys[static_cast<std::size_t>(it->second)];
      RCARB_CHECK(shared.width_bits >= p.width,
                  "shared channel narrower than logical channel " +
                      graph.channel(p.channel).name);
      shared.logical.push_back(p.channel);
      ++result.merged_channels;
      placed = it->second;
    }

    result.phys_of_channel[p.channel] = placed;
  }

  // Rename multi-logical channels to reflect the merge (e.g. "c1_4" in the
  // paper's Table 1 example).
  for (PhysChannel& ph : result.phys) {
    if (ph.logical.size() < 2) continue;
    std::string merged = "shared";
    for (tg::ChannelId c : ph.logical) merged += "_" + graph.channel(c).name;
    ph.name = merged + (ph.via_crossbar ? "@xbar" : "");
  }
  return result;
}

ChannelRemap remap_channels(const tg::TaskGraph& graph,
                            ChannelMapResult& result, int dead_phys,
                            const std::vector<bool>& failed) {
  RCARB_CHECK(dead_phys >= 0 &&
                  static_cast<std::size_t>(dead_phys) < result.phys.size(),
              "dead_phys out of range");
  ChannelRemap remap;
  remap.dead_phys = dead_phys;
  const PhysChannel& dead = result.phys[static_cast<std::size_t>(dead_phys)];
  if (dead.logical.empty()) {
    // Nothing was riding the dead wires; the quarantine costs no traffic.
    remap.feasible = true;
    remap.target_phys = -1;
    return remap;
  }

  int widest = 0;
  for (tg::ChannelId c : dead.logical)
    widest = std::max(widest, graph.channel(c).width_bits);

  const auto pair = std::minmax(dead.pe_a, dead.pe_b);
  int target = -1;
  for (std::size_t i = 0; i < result.phys.size(); ++i) {
    if (static_cast<int>(i) == dead_phys) continue;
    if (i < failed.size() && failed[i]) continue;
    const PhysChannel& ph = result.phys[i];
    if (std::minmax(ph.pe_a, ph.pe_b) != pair) continue;
    if (ph.width_bits < widest) continue;
    if (target < 0 ||
        ph.logical.size() <
            result.phys[static_cast<std::size_t>(target)].logical.size())
      target = static_cast<int>(i);
  }
  if (target < 0) return remap;  // no survivor: caller degrades to a stall

  PhysChannel& dst = result.phys[static_cast<std::size_t>(target)];
  PhysChannel& src = result.phys[static_cast<std::size_t>(dead_phys)];
  remap.moved = src.logical;
  for (tg::ChannelId c : remap.moved) {
    result.phys_of_channel[c] = target;
    dst.logical.push_back(c);
    ++result.merged_channels;
  }
  src.logical.clear();
  if (dst.logical.size() >= 2) {
    std::string merged = "shared";
    for (tg::ChannelId c : dst.logical) merged += "_" + graph.channel(c).name;
    dst.name = merged + (dst.via_crossbar ? "@xbar" : "");
  }
  remap.feasible = true;
  remap.target_phys = target;
  return remap;
}

}  // namespace rcarb::part
