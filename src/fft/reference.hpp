// Reference 4x4 2-D FFT (paper Sec. 5's application).
//
// A 4-point DFT has twiddle factors {1, -j, -1, j} only, so the transform
// of integer data is exact integer arithmetic — which makes it an ideal
// functional oracle for the cycle simulator: the hardware task programs
// must reproduce these values bit-for-bit.
#pragma once

#include <array>
#include <cstdint>

namespace rcarb::fft {

struct Complex64 {
  std::int64_t re = 0;
  std::int64_t im = 0;
  friend bool operator==(const Complex64&, const Complex64&) = default;
};

/// 4-point DFT of a real sequence: X_k = sum_n x_n e^{-2*pi*j*n*k/4}.
[[nodiscard]] std::array<Complex64, 4> dft4(
    const std::array<std::int64_t, 4>& x);

/// 4-point DFT of a complex sequence.
[[nodiscard]] std::array<Complex64, 4> dft4(
    const std::array<Complex64, 4>& x);

/// A 4x4 pixel block, row-major: block[row][col].
using Block = std::array<std::array<std::int64_t, 4>, 4>;

/// The full 2-D transform: row DFTs then column DFTs.  out[col][k] is the
/// k-th output of the column-`col` DFT over the row-DFT results.
using BlockSpectrum = std::array<std::array<Complex64, 4>, 4>;
[[nodiscard]] BlockSpectrum fft2d_4x4(const Block& block);

/// Static operation counts of the *naive textbook DFT* a 1999 C reference
/// would use for one block — per output term the twiddle is recomputed with
/// libm sin()/cos() calls (used by the Pentium-class cost model; the
/// optimized integer form above is the functional oracle, not the baseline).
struct SwOpCounts {
  std::size_t trig_calls = 0;  // sin()/cos() library calls
  std::size_t fmuls = 0;       // double multiplies
  std::size_t fadds = 0;       // double add/sub (incl. accumulation)
  std::size_t loads = 0;       // memory reads
  std::size_t stores = 0;      // memory writes
  std::size_t loop_iters = 0;  // loop-control iterations
};
[[nodiscard]] SwOpCounts sw_op_counts_per_block();

}  // namespace rcarb::fft
