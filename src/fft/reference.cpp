#include "fft/reference.hpp"

namespace rcarb::fft {

std::array<Complex64, 4> dft4(const std::array<std::int64_t, 4>& x) {
  // W4 = e^{-j*pi/2} = -j; the four twiddles are 1, -j, -1, j.
  std::array<Complex64, 4> out;
  out[0] = {x[0] + x[1] + x[2] + x[3], 0};
  out[1] = {x[0] - x[2], x[3] - x[1]};
  out[2] = {x[0] - x[1] + x[2] - x[3], 0};
  out[3] = {x[0] - x[2], x[1] - x[3]};
  return out;
}

std::array<Complex64, 4> dft4(const std::array<Complex64, 4>& x) {
  std::array<Complex64, 4> out;
  out[0] = {x[0].re + x[1].re + x[2].re + x[3].re,
            x[0].im + x[1].im + x[2].im + x[3].im};
  // -j * (a + jb) = b - ja ; j * (a + jb) = -b + ja
  out[1] = {x[0].re + x[1].im - x[2].re - x[3].im,
            x[0].im - x[1].re - x[2].im + x[3].re};
  out[2] = {x[0].re - x[1].re + x[2].re - x[3].re,
            x[0].im - x[1].im + x[2].im - x[3].im};
  out[3] = {x[0].re - x[1].im - x[2].re + x[3].im,
            x[0].im + x[1].re - x[2].im - x[3].re};
  return out;
}

BlockSpectrum fft2d_4x4(const Block& block) {
  // First dimension: one DFT per row.
  std::array<std::array<Complex64, 4>, 4> rows;
  for (std::size_t r = 0; r < 4; ++r) rows[r] = dft4(block[r]);
  // Second dimension: one DFT per column of the row results.
  BlockSpectrum out;
  for (std::size_t c = 0; c < 4; ++c) {
    std::array<Complex64, 4> column;
    for (std::size_t r = 0; r < 4; ++r) column[r] = rows[r][c];
    out[c] = dft4(column);
  }
  return out;
}

SwOpCounts sw_op_counts_per_block() {
  // Naive 2-D DFT: 2 dimensions x 4 transforms x 4 outputs, each output
  // accumulating 4 terms.  Per term: sin()+cos() to form the twiddle, a
  // complex multiply (4 fmul + 2 fadd) and a complex accumulate (2 fadd),
  // plus the complex input load.  Per output: one complex store.
  constexpr std::size_t kOutputs = 2 * 4 * 4;
  constexpr std::size_t kTerms = kOutputs * 4;
  SwOpCounts counts;
  counts.trig_calls = 2 * kTerms;
  counts.fmuls = 4 * kTerms;
  counts.fadds = 4 * kTerms;
  counts.loads = 2 * kTerms;
  counts.stores = 2 * kOutputs;
  counts.loop_iters = kOutputs + kTerms + 8;
  return counts;
}

}  // namespace rcarb::fft
