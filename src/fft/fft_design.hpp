// The Fig. 10 FFT taskgraph and the Fig. 11 pinned binding.
//
// Four "F" tasks perform the first FFT dimension: F_i reads input row i
// from segment MI_i and scatters its (complex) row spectrum *transposed*
// across the ML segments, so that ML_j accumulates column j.  Eight "g"
// tasks perform the second dimension: g_jr / g_ji read ML_j and write the
// real / imaginary halves of MO_j.  Control dependencies make every g task
// wait for every F task ("the g tasks execute after termination of the F
// tasks"), which is exactly the serialization the paper's elision
// optimization can exploit.
//
// Task areas carry the SPARCS light-weight-HLS annotations that make the
// Wildforce board produce the paper's three temporal partitions; the
// paper_* helpers pin spatial placement and memory mapping to Fig. 11 so
// the Sec. 5 arbiter profile {6,2}/{4}/{} is reproduced bit-for-bit, while
// the automatic flow is free to find its own (often better) mapping.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/insertion.hpp"
#include "fft/reference.hpp"
#include "rcsim/system_sim.hpp"
#include "taskgraph/taskgraph.hpp"

namespace rcarb::fft {

struct FftDesignOptions {
  /// Area annotations (CLBs).  Chosen so that four F tasks plus two g tasks
  /// fill a Wildforce partition, reproducing the paper's three partitions.
  std::size_t f_area_clbs = 200;
  std::size_t g_area_clbs = 380;
  /// Datapath padding cycles per task: the 1-cycle-per-op IR is far leaner
  /// than the multi-cycle HLS datapaths SPARCS generated (address
  /// generation, serialized butterflies, controller states), so each task
  /// carries a busy-cycle annotation.  Defaults calibrated once so the
  /// pinned Sec. 5 flow lands on the paper's ~1600 cycles per 4x4 block
  /// (4.4 s for 512x512 at 6 MHz), then held fixed for every experiment.
  std::int64_t f_pad_cycles = 210;
  std::int64_t g_pad_cycles = 400;
};

struct FftDesign {
  tg::TaskGraph graph{"fft4x4"};
  std::array<tg::SegmentId, 4> mi{};  // input rows
  std::array<tg::SegmentId, 4> ml{};  // transposed row spectra (columns)
  std::array<tg::SegmentId, 4> mo{};  // column spectra
  std::array<tg::TaskId, 4> f{};      // F1..F4
  std::array<tg::TaskId, 4> gr{};     // g1r..g4r
  std::array<tg::TaskId, 4> gi{};     // g1i..g4i
};

/// Builds the taskgraph of Fig. 10.
[[nodiscard]] FftDesign build_fft_design(const FftDesignOptions& options = {});

/// The paper's three temporal partitions (task membership).
[[nodiscard]] std::vector<std::vector<tg::TaskId>> paper_partitions(
    const FftDesign& design);

/// Fig. 11 spatial placement for one partition: PE per TaskId (-1 outside).
[[nodiscard]] std::vector<int> paper_placement(const FftDesign& design,
                                               std::size_t tp_index);

/// Fig. 11 memory mapping for one partition: bank per SegmentId (-1
/// inactive).  Bank ids follow board::wildforce() order.
[[nodiscard]] std::vector<int> paper_memory_map(const FftDesign& design,
                                                std::size_t tp_index);

/// Assembles the pinned core::Binding for one partition (no channels — the
/// FFT design communicates through memory).
[[nodiscard]] core::Binding paper_binding(const FftDesign& design,
                                          std::size_t tp_index);

/// Preloads an input block into the MI segments.
void load_block(rcsim::SystemSimulator& sim, const FftDesign& design,
                const Block& block);

/// Reads the simulated spectrum back out of the MO segments.
[[nodiscard]] BlockSpectrum read_spectrum(const rcsim::SystemSimulator& sim,
                                          const FftDesign& design);

}  // namespace rcarb::fft
