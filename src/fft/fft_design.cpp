#include "fft/fft_design.hpp"

#include "support/check.hpp"
#include "support/text.hpp"

namespace rcarb::fft {

namespace {

/// F_i: load row i, 4-point real DFT, scatter transposed into ML_0..ML_3.
/// ML_j layout: words [0..3] = re of rows 0..3, words [4..7] = im.
tg::Program make_f_program(const FftDesign& d, int i,
                           const FftDesignOptions& options) {
  const int mi = static_cast<int>(d.mi[static_cast<std::size_t>(i)]);
  const auto ml = [&](int j) {
    return static_cast<int>(d.ml[static_cast<std::size_t>(j)]);
  };
  tg::Program p;
  p.load_imm(0, 0);  // address base
  // x0..x3 -> r1..r4
  for (int n = 0; n < 4; ++n) p.load(1 + n, mi, 0, n);
  if (options.f_pad_cycles > 0) p.compute(options.f_pad_cycles);
  // Row DFT (twiddles are 1, -j, -1, j — pure add/sub):
  p.add(5, 1, 2).add(6, 3, 4).add(7, 5, 6);    // X0.re
  p.sub(8, 1, 3);                               // X1.re == X3.re
  p.sub(9, 4, 2);                               // X1.im
  p.sub(10, 1, 2).sub(11, 3, 4).add(12, 10, 11);  // X2.re
  p.sub(13, 2, 4);                              // X3.im
  p.load_imm(14, 0);                            // X0.im == X2.im == 0
  // Scatter transposed: ML_k[i] = X_k.re, ML_k[4+i] = X_k.im.
  p.store(ml(0), 0, 7, i).store(ml(0), 0, 14, 4 + i);
  p.store(ml(1), 0, 8, i).store(ml(1), 0, 9, 4 + i);
  p.store(ml(2), 0, 12, i).store(ml(2), 0, 14, 4 + i);
  p.store(ml(3), 0, 8, i).store(ml(3), 0, 13, 4 + i);
  p.halt();
  return p;
}

/// g_jr: column-j DFT, real outputs into MO_j[0..3].
tg::Program make_gr_program(const FftDesign& d, int j,
                            const FftDesignOptions& options) {
  const int ml = static_cast<int>(d.ml[static_cast<std::size_t>(j)]);
  const int mo = static_cast<int>(d.mo[static_cast<std::size_t>(j)]);
  tg::Program p;
  p.load_imm(0, 0);
  for (int n = 0; n < 4; ++n) p.load(1 + n, ml, 0, n);      // re0..re3
  for (int n = 0; n < 4; ++n) p.load(5 + n, ml, 0, 4 + n);  // im0..im3
  if (options.g_pad_cycles > 0) p.compute(options.g_pad_cycles);
  p.add(9, 1, 2).add(10, 3, 4).add(11, 9, 10);     // Y0.re = re0+re1+re2+re3
  p.add(12, 1, 6).sub(13, 12, 3).sub(14, 13, 8);   // Y1.re = re0+im1-re2-im3
  p.sub(15, 1, 2).sub(16, 3, 4).add(17, 15, 16);   // Y2.re = re0-re1+re2-re3
  p.sub(18, 1, 6).sub(19, 18, 3).add(20, 19, 8);   // Y3.re = re0-im1-re2+im3
  p.store(mo, 0, 11, 0).store(mo, 0, 14, 1);
  p.store(mo, 0, 17, 2).store(mo, 0, 20, 3);
  p.halt();
  return p;
}

/// g_ji: column-j DFT, imaginary outputs into MO_j[4..7].
tg::Program make_gi_program(const FftDesign& d, int j,
                            const FftDesignOptions& options) {
  const int ml = static_cast<int>(d.ml[static_cast<std::size_t>(j)]);
  const int mo = static_cast<int>(d.mo[static_cast<std::size_t>(j)]);
  tg::Program p;
  p.load_imm(0, 0);
  for (int n = 0; n < 4; ++n) p.load(1 + n, ml, 0, n);      // re0..re3
  for (int n = 0; n < 4; ++n) p.load(5 + n, ml, 0, 4 + n);  // im0..im3
  if (options.g_pad_cycles > 0) p.compute(options.g_pad_cycles);
  p.add(9, 5, 6).add(10, 7, 8).add(11, 9, 10);     // Y0.im = im0+im1+im2+im3
  p.sub(12, 5, 2).sub(13, 12, 7).add(14, 13, 4);   // Y1.im = im0-re1-im2+re3
  p.sub(15, 5, 6).sub(16, 7, 8).add(17, 15, 16);   // Y2.im = im0-im1+im2-im3
  p.add(18, 5, 2).sub(19, 18, 7).sub(20, 19, 4);   // Y3.im = im0+re1-im2-re3
  p.store(mo, 0, 11, 4).store(mo, 0, 14, 5);
  p.store(mo, 0, 17, 6).store(mo, 0, 20, 7);
  p.halt();
  return p;
}

}  // namespace

FftDesign build_fft_design(const FftDesignOptions& options) {
  FftDesign d;
  for (std::size_t i = 0; i < 4; ++i)
    d.mi[i] = d.graph.add_segment(signal_name("MI", i + 1), 4 * 2, 4);
  for (std::size_t i = 0; i < 4; ++i)
    d.ml[i] = d.graph.add_segment(signal_name("ML", i + 1), 8 * 2, 8);
  for (std::size_t i = 0; i < 4; ++i)
    d.mo[i] = d.graph.add_segment(signal_name("MO", i + 1), 8 * 2, 8);

  // Creation order fixes the greedy temporal fill: F1..F4, g1r..g4r,
  // g1i..g4i, matching the paper's partition membership.
  for (std::size_t i = 0; i < 4; ++i)
    d.f[i] = d.graph.add_task(signal_name("F", i + 1), tg::Program{},
                              options.f_area_clbs);
  for (std::size_t j = 0; j < 4; ++j)
    d.gr[j] = d.graph.add_task("g" + std::to_string(j + 1) + "r",
                               tg::Program{}, options.g_area_clbs);
  for (std::size_t j = 0; j < 4; ++j)
    d.gi[j] = d.graph.add_task("g" + std::to_string(j + 1) + "i",
                               tg::Program{}, options.g_area_clbs);

  for (std::size_t i = 0; i < 4; ++i)
    d.graph.task(d.f[i]).program =
        make_f_program(d, static_cast<int>(i), options);
  for (std::size_t j = 0; j < 4; ++j) {
    d.graph.task(d.gr[j]).program =
        make_gr_program(d, static_cast<int>(j), options);
    d.graph.task(d.gi[j]).program =
        make_gi_program(d, static_cast<int>(j), options);
  }

  // Every g waits for every F (each F contributes to every ML column).
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      d.graph.add_control_dep(d.f[i], d.gr[j]);
      d.graph.add_control_dep(d.f[i], d.gi[j]);
    }
  }
  d.graph.validate();
  return d;
}

std::vector<std::vector<tg::TaskId>> paper_partitions(const FftDesign& d) {
  return {
      {d.f[0], d.f[1], d.f[2], d.f[3], d.gr[0], d.gr[1]},
      {d.gr[2], d.gr[3], d.gi[0], d.gi[1]},
      {d.gi[2], d.gi[3]},
  };
}

std::vector<int> paper_placement(const FftDesign& d, std::size_t tp_index) {
  std::vector<int> pe(d.graph.num_tasks(), -1);
  switch (tp_index) {
    case 0:
      // Fig. 11: PE1 {F2}, PE2 {F1, F3}, PE3 {g1r, F4}, PE4 {g2r}.
      pe[d.f[1]] = 0;
      pe[d.f[0]] = 1;
      pe[d.f[2]] = 1;
      pe[d.gr[0]] = 2;
      pe[d.f[3]] = 2;
      pe[d.gr[1]] = 3;
      break;
    case 1:
      pe[d.gr[2]] = 0;
      pe[d.gr[3]] = 1;
      pe[d.gi[0]] = 2;
      pe[d.gi[1]] = 3;
      break;
    case 2:
      pe[d.gi[2]] = 0;
      pe[d.gi[3]] = 1;
      break;
    default:
      RCARB_CHECK(false, "the paper flow has three partitions");
  }
  return pe;
}

std::vector<int> paper_memory_map(const FftDesign& d, std::size_t tp_index) {
  std::vector<int> bank(d.graph.num_segments(), -1);
  switch (tp_index) {
    case 0:
      // Fig. 11: MEM1 {MI2}, MEM2 {MI1, MI3, ML1..ML4}, MEM3 {MI4},
      // MEM4 {MO1, MO2}.  The ML bank is contested by all six tasks
      // (Arb6); the MO bank by g1r and g2r (Arb2).
      bank[d.mi[1]] = 0;
      bank[d.mi[0]] = 1;
      bank[d.mi[2]] = 1;
      for (std::size_t j = 0; j < 4; ++j) bank[d.ml[j]] = 1;
      bank[d.mi[3]] = 2;
      bank[d.mo[0]] = 3;
      bank[d.mo[1]] = 3;
      break;
    case 1:
      // All ML segments again share MEM2 (Arb4 over g3r, g4r, g1i, g2i);
      // MO2 rides along with its writer already on that arbiter.
      for (std::size_t j = 0; j < 4; ++j) bank[d.ml[j]] = 1;
      bank[d.mo[2]] = 1;
      bank[d.mo[0]] = 0;
      bank[d.mo[1]] = 2;
      bank[d.mo[3]] = 3;
      break;
    case 2:
      // Four active segments, four banks: no sharing, no arbiter.
      bank[d.ml[2]] = 0;
      bank[d.mo[2]] = 1;
      bank[d.ml[3]] = 2;
      bank[d.mo[3]] = 3;
      break;
    default:
      RCARB_CHECK(false, "the paper flow has three partitions");
  }
  return bank;
}

core::Binding paper_binding(const FftDesign& d, std::size_t tp_index) {
  core::Binding binding;
  binding.task_to_pe = paper_placement(d, tp_index);
  binding.segment_to_bank = paper_memory_map(d, tp_index);
  binding.channel_to_phys.assign(d.graph.num_channels(), -1);
  binding.num_banks = 4;
  binding.bank_names = {"MEM1", "MEM2", "MEM3", "MEM4"};
  binding.num_phys_channels = 0;
  return binding;
}

void load_block(rcsim::SystemSimulator& sim, const FftDesign& d,
                const Block& block) {
  for (std::size_t r = 0; r < 4; ++r) {
    std::vector<std::int64_t> row(block[r].begin(), block[r].end());
    sim.write_segment(d.mi[r], row);
  }
  // Clear the intermediate and output segments between blocks.
  for (std::size_t j = 0; j < 4; ++j) {
    sim.write_segment(d.ml[j], {});
    sim.write_segment(d.mo[j], {});
  }
}

BlockSpectrum read_spectrum(const rcsim::SystemSimulator& sim,
                            const FftDesign& d) {
  BlockSpectrum out;
  for (std::size_t j = 0; j < 4; ++j) {
    const auto& words = sim.segment_data(d.mo[j]);
    RCARB_ASSERT(words.size() == 8, "MO segment must hold 8 words");
    for (std::size_t k = 0; k < 4; ++k)
      out[j][k] = {words[k], words[4 + k]};
  }
  return out;
}

}  // namespace rcarb::fft
