#include "fft/workload.hpp"

namespace rcarb::fft {

double PentiumModel::cycles_per_block() const {
  const SwOpCounts counts = sw_op_counts_per_block();
  return cycles_per_trig * static_cast<double>(counts.trig_calls) +
         cycles_per_fmul * static_cast<double>(counts.fmuls) +
         cycles_per_fadd * static_cast<double>(counts.fadds) +
         cycles_per_load * static_cast<double>(counts.loads) +
         cycles_per_store * static_cast<double>(counts.stores) +
         cycles_per_iter * static_cast<double>(counts.loop_iters);
}

double PentiumModel::seconds(const ImageWorkload& workload) const {
  return static_cast<double>(workload.blocks()) * cycles_per_block() /
         (clock_mhz * 1e6);
}

}  // namespace rcarb::fft
