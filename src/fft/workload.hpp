// The Sec. 5 workload: a 512x512-pixel image processed as 4x4 blocks.
//
// Wall-clock models for both sides of the paper's comparison:
//   * hardware — measured simulation cycles per block, scaled by the block
//     count and the achieved design clock (the paper's design clocked at
//     ~6 MHz and finished in 4.4 s);
//   * software — a Pentium-150-class cost model over the counted operations
//     of the reference implementation (the paper measured 6.8 s on a
//     150 MHz Pentium with 48 MB RAM).
// The CPU constants are calibrated once against the paper's published
// measurement and then held fixed; the reproduced claim is the *ratio* and
// its sensitivity to the measured hardware cycles.
#pragma once

#include <cstdint>

#include "fft/reference.hpp"

namespace rcarb::fft {

struct ImageWorkload {
  std::size_t width = 512;
  std::size_t height = 512;

  [[nodiscard]] std::size_t blocks() const {
    return (width / 4) * (height / 4);
  }
};

/// Hardware-side wall clock from simulated cycles.
struct HardwareModel {
  double clock_mhz = 6.0;  // achieved design clock

  [[nodiscard]] double seconds(const ImageWorkload& workload,
                               std::uint64_t cycles_per_block) const {
    return static_cast<double>(workload.blocks()) *
           static_cast<double>(cycles_per_block) / (clock_mhz * 1e6);
  }
};

/// Pentium-150-class software cost model for the naive per-term-twiddle
/// DFT (see sw_op_counts_per_block).  The dominant constant is the libm
/// sin()/cos() call — on a P5 with double-precision range reduction and
/// call overhead this lands in the 150-300 cycle band; 220 calibrates the
/// model to the paper's measured 6.8 s and is held fixed thereafter.
struct PentiumModel {
  double clock_mhz = 150.0;
  double cycles_per_trig = 220.0;  // sin()/cos() library call
  double cycles_per_fmul = 3.0;    // FPU multiply (serialized, naive code)
  double cycles_per_fadd = 3.0;
  double cycles_per_load = 4.0;    // mostly cache-resident doubles
  double cycles_per_store = 4.0;
  double cycles_per_iter = 10.0;   // loop control + index arithmetic

  [[nodiscard]] double cycles_per_block() const;
  [[nodiscard]] double seconds(const ImageWorkload& workload) const;
};

}  // namespace rcarb::fft
