// Graceful degradation: permanent-fault classification and online remap
// planning.
//
// PR 1's resilience machinery treats every fault as transient: recover the
// register, force-release the grant, retry the burst.  A *permanent* fault
// — a stuck channel wire, a dead bank, a latched-up arbiter — defeats all
// of that: the retry fails forever and the system wedges or silently
// corrupts.  This library supplies the missing policy layer:
//
//   * StrikeTracker — distinguishes permanent from transient by evidence
//     accumulation: K strikes against one resource within W cycles
//     classifies the fault as permanent (a one-shot SEU never re-strikes;
//     a dead bank strikes on every access).
//   * Remap planners — once a resource is quarantined, its logical load
//     moves to survivors.  Both planners *group-move* (every segment of a
//     dead bank onto ONE surviving bank; every logical channel of a dead
//     physical channel onto ONE survivor), which keeps "old resource ->
//     live resource" a function — the property that lets the system
//     simulator translate operations whose programs bake in resource ids.
//   * Reconfiguration pricing — the stall for regenerating an arbiter for
//     the survivor's grown contention set, priced off the CLB count from
//     the process-wide synthesis memo (PR 4), as a partial-reconfiguration
//     write-time model.
//
// The supervisory controller itself lives in rcsim::SystemSimulator (it
// needs the cycle loop); everything policy-shaped is here so tests and
// benches can exercise it in isolation.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/selfcheck.hpp"
#include "partition/channel_map.hpp"
#include "synth/encoding.hpp"

namespace rcarb::degrade {

/// Tuning of the supervisory recovery controller.
struct DegradeOptions {
  /// Master switch.  Off, permanent faults are still *injected* by the
  /// simulator but never classified or repaired (the stall-only baseline
  /// the degradation bench compares against).
  bool enabled = false;
  /// Permanent-fault classification: K strikes within W cycles.
  int strikes = 3;                   // K
  std::uint64_t strike_window = 64;  // W
  /// Drain bound: cycles to wait for in-flight bursts to reach the <=M
  /// batch boundary (Fig. 8) before the supervisor force-aborts them — a
  /// dead resource never retires the access that would end the burst.
  std::uint64_t drain_timeout = 64;
  /// Reconfiguration stall model: base + per-CLB write time for the
  /// regenerated arbiter's region.
  std::uint64_t reconfig_base_cycles = 8;
  std::uint64_t reconfig_cycles_per_clb = 4;
  /// Optional partition-layer channel map.  When use_channel_map is set
  /// the supervisor re-merges quarantined channels via
  /// part::remap_channels (PE-pair and width feasibility enforced);
  /// otherwise the Binding-level least-loaded fallback is used.
  bool use_channel_map = false;
  part::ChannelMapResult channel_map;
};

/// Evidence classes feeding the strike tracker.
enum class StrikeSource : std::uint8_t {
  kSelfCheckError,  // self-checking arbiter's comparator fired
  kWatchdogTrip,    // hung-grant watchdog fired on the resource
  kChannelFailure,  // a send on the physical channel failed
  kBankFailure,     // a bank access failed
};

[[nodiscard]] const char* to_string(StrikeSource s);

/// Per-resource K-in-W classifier.  Strikes outside the sliding window
/// expire, so isolated transients (SEUs, one-off watchdog trips) never
/// accumulate to a classification.
class StrikeTracker {
 public:
  StrikeTracker() = default;
  StrikeTracker(std::size_t num_resources, int strikes,
                std::uint64_t window);

  /// Records one strike; returns true when this strike is the K-th within
  /// the window — the classification point at which the caller should
  /// quarantine the resource.
  bool strike(int resource, std::uint64_t cycle, StrikeSource source);

  /// Forgets a resource's history (after repair or remap).
  void clear(int resource);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t count(StrikeSource s) const {
    return by_source_[static_cast<std::size_t>(s)];
  }

 private:
  int strikes_ = 3;
  std::uint64_t window_ = 64;
  std::vector<std::vector<std::uint64_t>> recent_;  // per resource, sorted
  std::uint64_t total_ = 0;
  std::array<std::uint64_t, 4> by_source_{};
};

/// Quarantine lifecycle of one resource (the supervisor's per-resource
/// FSM; Fig. 8's batch boundary bounds the drain).
enum class QuarantineState : std::uint8_t {
  kHealthy,
  kDraining,         // masking new grants, waiting out in-flight bursts
  kReconfiguring,    // survivors' arbiters being regenerated (stall)
  kRemapped,         // load moved; resource permanently retired
  kCapacityExhausted // no survivor could take the load; stall-with-diag
};

[[nodiscard]] const char* to_string(QuarantineState s);

/// Cycle-stamped lifecycle record (MTTR accounting).
struct QuarantineRecord {
  int resource = -1;
  QuarantineState state = QuarantineState::kHealthy;
  std::uint64_t classified_cycle = 0;  // K-th strike observed
  std::uint64_t drained_cycle = 0;     // last in-flight burst retired
  std::uint64_t restored_cycle = 0;    // service resumed on survivors
  bool drain_aborted = false;          // drain_timeout force-abort used
  int remap_target = -1;  // live resource now serving the load (-1 = none)

  /// Mean-time-to-repair contribution: classification -> restored.  A
  /// record queried mid-quarantine (still draining/reconfiguring, so
  /// restored_cycle is not stamped yet) used to wrap the subtraction to a
  /// huge u64 and poison MTTR averages; unset stages contribute 0.
  [[nodiscard]] std::uint64_t repair_cycles() const {
    if (restored_cycle < classified_cycle) return 0;
    return restored_cycle - classified_cycle;
  }
};

/// Which repair a classified permanent fault needs, decided from the
/// evidence class of the classifying strike.
enum class RepairPath : std::uint8_t {
  kReconfigure,  // fault is inside the arbiter region: rewrite it and the
                 // resource returns to service (latch-up, SEU storms)
  kRetire,       // the resource itself is dead: fail its load over to the
                 // survivors for good (channel / bank failures)
};

[[nodiscard]] const char* to_string(RepairPath p);

/// Maps strike evidence to the repair it implies: arbiter-side sources
/// (self-check comparator, watchdog) reconfigure the arbiter region;
/// resource-side sources (channel, bank) retire the resource.
[[nodiscard]] RepairPath repair_path_for(StrikeSource source);

/// Per-resource quarantine FSM driver for system layers outside rcsim
/// (the service engine uses it; rcsim's inline supervisor predates it and
/// carries bank/channel remap planning this one does not need).  Owns the
/// strike tracker plus the per-resource state/deadline/record
/// bookkeeping; the caller supplies the cycle loop, reports drain
/// progress, and acts on the returned transitions (mask routing, abort
/// in-flight slots, reset arbiters).
class ResourceSupervisor {
 public:
  enum class Transition : std::uint8_t {
    kNone,         // no state change this call
    kQuarantined,  // K-in-W classification: resource entered kDraining
    kDrained,      // in-flight work gone (or deadline): kReconfiguring
    kRestored,     // arbiter region rewritten: back to kHealthy
    kRetired,      // unrepairable: kRemapped (load stays failed over), or
                   // kCapacityExhausted when no healthy survivor remains
  };

  ResourceSupervisor() = default;
  ResourceSupervisor(int resources, const DegradeOptions& options);

  /// Records one strike.  Returns kQuarantined when it is the K-th within
  /// W against a healthy resource — the classification point: the caller
  /// must stop routing new work here and start draining.  Evidence
  /// against an already-quarantined resource still counts in the tracker
  /// totals but never re-classifies; a disabled supervisor
  /// (DegradeOptions::enabled == false) records evidence and nothing
  /// else (the stall-only / unprotected baseline).
  Transition strike(int resource, std::uint64_t cycle, StrikeSource source);

  /// Advances a draining/reconfiguring resource one cycle.  `drained` is
  /// the caller's "no in-flight work left" signal; the drain_timeout
  /// deadline force-completes a drain that never ends (drain_aborted is
  /// recorded and the caller must abort the leftovers).  The
  /// reconfiguration stall is priced at the drain->reconfigure edge via
  /// arbiter_reconfig_cycles for the resource's `ports` and `mode`.
  Transition advance(int resource, std::uint64_t cycle, bool drained,
                     int ports, core::CheckMode mode);

  [[nodiscard]] QuarantineState state(int resource) const;
  /// Healthy = routable: new work may be sent here.
  [[nodiscard]] bool serving(int resource) const {
    return state(resource) == QuarantineState::kHealthy;
  }
  [[nodiscard]] RepairPath path(int resource) const;
  [[nodiscard]] int num_serving() const;
  [[nodiscard]] const StrikeTracker& strikes() const { return tracker_; }
  /// Every quarantine's lifecycle record, in classification order.  Open
  /// records (still draining/reconfiguring) have unset later stages —
  /// repair_cycles() reads 0 for them.
  [[nodiscard]] const std::vector<QuarantineRecord>& records() const {
    return records_;
  }

 private:
  struct Cell {
    QuarantineState state = QuarantineState::kHealthy;
    RepairPath path = RepairPath::kReconfigure;
    std::uint64_t deadline = 0;
    std::size_t record = 0;  // index into records_; valid when quarantined
  };

  DegradeOptions opt_;
  StrikeTracker tracker_;
  std::vector<Cell> cells_;
  std::vector<QuarantineRecord> records_;
};

/// Group-move plan for a dead bank: every segment it held moves to ONE
/// surviving bank with enough free capacity.  Deterministic best-fit:
/// the tightest-fitting survivor (smallest sufficient free space, then
/// lowest index).  Pure — the caller applies the move.
struct BankRemapPlan {
  bool feasible = false;
  int dead_bank = -1;
  int target_bank = -1;
  std::vector<int> moved_segments;  // SegmentIds
  std::size_t moved_bytes = 0;
};

[[nodiscard]] BankRemapPlan plan_bank_remap(
    const std::vector<std::size_t>& segment_bytes,
    const std::vector<int>& bank_of_segment,
    const std::vector<std::size_t>& bank_free_bytes, int dead_bank,
    const std::vector<bool>& failed);

/// Group-move plan for a dead physical channel at the Binding level:
/// every logical channel it carried moves to the least-loaded surviving
/// physical channel (fewest logical channels, then lowest index).  Used
/// when no partition-layer channel map is available; with one,
/// part::remap_channels additionally enforces PE-pair and width
/// feasibility.
struct ChannelRemapPlan {
  bool feasible = false;
  int dead_phys = -1;
  int target_phys = -1;
  std::vector<int> moved_channels;  // ChannelIds
};

[[nodiscard]] ChannelRemapPlan plan_channel_remap(
    const std::vector<int>& channel_to_phys, std::size_t num_phys,
    int dead_phys, const std::vector<bool>& failed);

/// Reconfiguration stall for a region of `clbs` CLBs.
[[nodiscard]] std::uint64_t reconfig_cycles(const DegradeOptions& options,
                                            std::size_t clbs);

/// Reconfiguration stall for regenerating the round-robin arbiter of a
/// grown contention set of `n` ports (plain or self-checking), priced off
/// the pre-characterized CLB count from the process-wide synthesis memo.
/// n < 2 needs no arbiter (base cost only).
[[nodiscard]] std::uint64_t arbiter_reconfig_cycles(
    const DegradeOptions& options, int n, core::CheckMode mode,
    synth::Encoding encoding = synth::Encoding::kOneHot);

}  // namespace rcarb::degrade
