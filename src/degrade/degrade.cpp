#include "degrade/degrade.hpp"

#include <algorithm>

#include "core/generator.hpp"
#include "support/check.hpp"

namespace rcarb::degrade {

const char* to_string(StrikeSource s) {
  switch (s) {
    case StrikeSource::kSelfCheckError: return "self-check-error";
    case StrikeSource::kWatchdogTrip: return "watchdog-trip";
    case StrikeSource::kChannelFailure: return "channel-failure";
    case StrikeSource::kBankFailure: return "bank-failure";
  }
  return "?";
}

const char* to_string(QuarantineState s) {
  switch (s) {
    case QuarantineState::kHealthy: return "healthy";
    case QuarantineState::kDraining: return "draining";
    case QuarantineState::kReconfiguring: return "reconfiguring";
    case QuarantineState::kRemapped: return "remapped";
    case QuarantineState::kCapacityExhausted: return "capacity-exhausted";
  }
  return "?";
}

StrikeTracker::StrikeTracker(std::size_t num_resources, int strikes,
                             std::uint64_t window)
    : strikes_(strikes), window_(window), recent_(num_resources) {
  RCARB_CHECK(strikes >= 1, "strike threshold must be positive");
  RCARB_CHECK(window >= 1, "strike window must be positive");
}

bool StrikeTracker::strike(int resource, std::uint64_t cycle,
                           StrikeSource source) {
  RCARB_CHECK(resource >= 0 &&
                  static_cast<std::size_t>(resource) < recent_.size(),
              "strike resource out of range");
  ++total_;
  ++by_source_[static_cast<std::size_t>(source)];
  auto& v = recent_[static_cast<std::size_t>(resource)];
  // Expire strikes older than the sliding window (cycle - W, cycle].
  const std::uint64_t floor = cycle >= window_ ? cycle - window_ + 1 : 0;
  v.erase(v.begin(),
          std::lower_bound(v.begin(), v.end(), floor));
  v.push_back(cycle);
  return static_cast<int>(v.size()) >= strikes_;
}

void StrikeTracker::clear(int resource) {
  RCARB_CHECK(resource >= 0 &&
                  static_cast<std::size_t>(resource) < recent_.size(),
              "clear resource out of range");
  recent_[static_cast<std::size_t>(resource)].clear();
}

const char* to_string(RepairPath p) {
  switch (p) {
    case RepairPath::kReconfigure: return "reconfigure";
    case RepairPath::kRetire: return "retire";
  }
  return "?";
}

RepairPath repair_path_for(StrikeSource source) {
  switch (source) {
    case StrikeSource::kSelfCheckError:
    case StrikeSource::kWatchdogTrip:
      return RepairPath::kReconfigure;
    case StrikeSource::kChannelFailure:
    case StrikeSource::kBankFailure:
      return RepairPath::kRetire;
  }
  return RepairPath::kReconfigure;
}

ResourceSupervisor::ResourceSupervisor(int resources,
                                       const DegradeOptions& options)
    : opt_(options),
      tracker_(static_cast<std::size_t>(resources), options.strikes,
               options.strike_window),
      cells_(static_cast<std::size_t>(resources)) {
  RCARB_CHECK(resources >= 1, "supervisor needs at least one resource");
}

ResourceSupervisor::Transition ResourceSupervisor::strike(
    int resource, std::uint64_t cycle, StrikeSource source) {
  const bool kth = tracker_.strike(resource, cycle, source);
  Cell& cell = cells_[static_cast<std::size_t>(resource)];
  if (!opt_.enabled || !kth || cell.state != QuarantineState::kHealthy)
    return Transition::kNone;
  cell.state = QuarantineState::kDraining;
  cell.path = repair_path_for(source);
  cell.deadline = cycle + opt_.drain_timeout;
  cell.record = records_.size();
  QuarantineRecord rec;
  rec.resource = resource;
  rec.state = QuarantineState::kDraining;
  rec.classified_cycle = cycle;
  records_.push_back(rec);
  return Transition::kQuarantined;
}

ResourceSupervisor::Transition ResourceSupervisor::advance(
    int resource, std::uint64_t cycle, bool drained, int ports,
    core::CheckMode mode) {
  Cell& cell = cells_[static_cast<std::size_t>(resource)];
  switch (cell.state) {
    case QuarantineState::kDraining: {
      const bool deadline = cycle >= cell.deadline;
      if (!drained && !deadline) return Transition::kNone;
      QuarantineRecord& rec = records_[cell.record];
      rec.drain_aborted = !drained;
      rec.drained_cycle = cycle;
      rec.state = cell.state = QuarantineState::kReconfiguring;
      cell.deadline = cycle + arbiter_reconfig_cycles(opt_, ports, mode);
      return Transition::kDrained;
    }
    case QuarantineState::kReconfiguring: {
      if (cycle < cell.deadline) return Transition::kNone;
      QuarantineRecord& rec = records_[cell.record];
      rec.restored_cycle = cycle;
      if (cell.path == RepairPath::kReconfigure) {
        // The arbiter region was rewritten; the resource re-enters service
        // with a clean strike history.
        rec.state = cell.state = QuarantineState::kHealthy;
        tracker_.clear(resource);
        return Transition::kRestored;
      }
      // Retire: the load stays failed over.  The record names the
      // lowest-index healthy survivor as the representative target (the
      // service routes uniformly over every survivor).
      for (std::size_t i = 0; i < cells_.size(); ++i) {
        if (static_cast<int>(i) == resource) continue;
        if (cells_[i].state != QuarantineState::kHealthy) continue;
        rec.remap_target = static_cast<int>(i);
        break;
      }
      rec.state = cell.state = rec.remap_target >= 0
                                   ? QuarantineState::kRemapped
                                   : QuarantineState::kCapacityExhausted;
      return Transition::kRetired;
    }
    case QuarantineState::kHealthy:
    case QuarantineState::kRemapped:
    case QuarantineState::kCapacityExhausted:
      return Transition::kNone;
  }
  return Transition::kNone;
}

QuarantineState ResourceSupervisor::state(int resource) const {
  return cells_[static_cast<std::size_t>(resource)].state;
}

RepairPath ResourceSupervisor::path(int resource) const {
  return cells_[static_cast<std::size_t>(resource)].path;
}

int ResourceSupervisor::num_serving() const {
  int n = 0;
  for (const Cell& c : cells_)
    if (c.state == QuarantineState::kHealthy) ++n;
  return n;
}

BankRemapPlan plan_bank_remap(const std::vector<std::size_t>& segment_bytes,
                              const std::vector<int>& bank_of_segment,
                              const std::vector<std::size_t>& bank_free_bytes,
                              int dead_bank,
                              const std::vector<bool>& failed) {
  RCARB_CHECK(segment_bytes.size() == bank_of_segment.size(),
              "segment tables disagree");
  RCARB_CHECK(dead_bank >= 0 &&
                  static_cast<std::size_t>(dead_bank) < bank_free_bytes.size(),
              "dead bank out of range");
  BankRemapPlan plan;
  plan.dead_bank = dead_bank;
  for (std::size_t s = 0; s < bank_of_segment.size(); ++s) {
    if (bank_of_segment[s] != dead_bank) continue;
    plan.moved_segments.push_back(static_cast<int>(s));
    plan.moved_bytes += segment_bytes[s];
  }
  if (plan.moved_segments.empty()) {
    // Nothing lived on the dead bank; retiring it is free.
    plan.feasible = true;
    return plan;
  }
  // Tightest-fitting survivor (then lowest index) — best-fit keeps the
  // large-free banks available for later quarantines.
  for (std::size_t b = 0; b < bank_free_bytes.size(); ++b) {
    if (static_cast<int>(b) == dead_bank) continue;
    if (b < failed.size() && failed[b]) continue;
    if (bank_free_bytes[b] < plan.moved_bytes) continue;
    if (plan.target_bank < 0 ||
        bank_free_bytes[b] <
            bank_free_bytes[static_cast<std::size_t>(plan.target_bank)])
      plan.target_bank = static_cast<int>(b);
  }
  plan.feasible = plan.target_bank >= 0;
  return plan;
}

ChannelRemapPlan plan_channel_remap(const std::vector<int>& channel_to_phys,
                                    std::size_t num_phys, int dead_phys,
                                    const std::vector<bool>& failed) {
  RCARB_CHECK(dead_phys >= 0 &&
                  static_cast<std::size_t>(dead_phys) < num_phys,
              "dead phys channel out of range");
  ChannelRemapPlan plan;
  plan.dead_phys = dead_phys;
  std::vector<std::size_t> load(num_phys, 0);
  for (std::size_t c = 0; c < channel_to_phys.size(); ++c) {
    if (channel_to_phys[c] < 0) continue;
    ++load[static_cast<std::size_t>(channel_to_phys[c])];
    if (channel_to_phys[c] == dead_phys)
      plan.moved_channels.push_back(static_cast<int>(c));
  }
  if (plan.moved_channels.empty()) {
    plan.feasible = true;
    return plan;
  }
  for (std::size_t p = 0; p < num_phys; ++p) {
    if (static_cast<int>(p) == dead_phys) continue;
    if (p < failed.size() && failed[p]) continue;
    if (plan.target_phys < 0 ||
        load[p] < load[static_cast<std::size_t>(plan.target_phys)])
      plan.target_phys = static_cast<int>(p);
  }
  plan.feasible = plan.target_phys >= 0;
  return plan;
}

std::uint64_t reconfig_cycles(const DegradeOptions& options,
                              std::size_t clbs) {
  return options.reconfig_base_cycles +
         options.reconfig_cycles_per_clb * static_cast<std::uint64_t>(clbs);
}

std::uint64_t arbiter_reconfig_cycles(const DegradeOptions& options, int n,
                                      core::CheckMode mode,
                                      synth::Encoding encoding) {
  if (n < 2) return reconfig_cycles(options, 0);
  // The FSM generator tops out at 20 request lines, and the replicated
  // self-checking register bank must fit one 64-bit word (2 x 2n for DMR,
  // 3 x 2n for TMR); larger contention sets are priced at the widest
  // characterized arbiter of the mode.
  const int cap = mode == core::CheckMode::kNone        ? 20
                  : mode == core::CheckMode::kDuplicate ? 16
                                                        : 10;
  const int capped = std::min(n, cap);
  const std::size_t clbs =
      mode == core::CheckMode::kNone
          ? core::generate_round_robin_cached(capped,
                                              synth::FlowKind::kExpressLike,
                                              encoding)
                .chars.clbs
          : core::generate_self_checking_cached(capped, mode, encoding)
                .chars.clbs;
  return reconfig_cycles(options, clbs);
}

}  // namespace rcarb::degrade
