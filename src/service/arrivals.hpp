// Distribution-driven arrival processes for the open-loop service engine.
//
// The paper's evaluation is closed-loop (a fixed task graph re-runs to
// completion), but the ROADMAP north star is a long-running service
// absorbing *open-loop* traffic: arrivals keep coming whether or not the
// system keeps up, which is exactly the regime where bounded queues and
// admission control earn their keep.  Three canonical processes are
// modeled — stationary Poisson, bursty MMPP-2 (a 2-state Markov-modulated
// Poisson process: quiet/burst states with geometric dwell times), and a
// diurnal triangle ramp — all driven by rcarb::Rng so any run is exactly
// reproducible from (options, seed).
#pragma once

#include <cstdint>

#include "support/rng.hpp"

namespace rcarb::service {

/// Shape of the offered-load process.
enum class ArrivalKind : std::uint8_t {
  kPoisson,  // stationary: arrivals-per-cycle ~ Poisson(rate)
  kBursty,   // MMPP-2: rate modulated by a quiet/burst Markov chain
  kDiurnal,  // triangle wave between trough and peak over `period`
};

[[nodiscard]] const char* to_string(ArrivalKind k);

struct ArrivalOptions {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Mean arrivals per cycle (the *average* offered load for every kind:
  /// bursty and diurnal modulate around this mean, they do not change it).
  double rate = 0.1;

  // ---- kBursty (MMPP-2). ----
  double burst_factor = 4.0;        // rate multiplier while bursting
  double quiet_factor = 0.25;       // rate multiplier while quiet
  std::uint64_t dwell_mean = 512;   // mean cycles per state (geometric)

  // ---- kDiurnal. ----
  double trough_factor = 0.25;      // rate multiplier at the trough
  double peak_factor = 1.75;        // rate multiplier at the peak
  std::uint64_t period = 4096;      // cycles per full trough-peak-trough
};

/// One deterministic arrival stream.  step() returns the number of
/// arrivals in the current cycle and advances the process.
class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalOptions& options, std::uint64_t seed);

  /// Arrivals this cycle (>= 0); advances the modulating state.
  [[nodiscard]] int step();

  /// Instantaneous mean rate of the *next* step() (diagnostics / tests).
  [[nodiscard]] double current_rate() const;

 private:
  ArrivalOptions opt_;
  Rng rng_;
  std::uint64_t cycle_ = 0;
  bool bursting_ = false;  // MMPP state
};

}  // namespace rcarb::service
