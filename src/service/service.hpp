// Open-loop arbitration service: bounded queues, overload policies, and a
// client-side retry/timeout/backoff loop over the core arbiters.
//
// The engine models the ROADMAP north star in miniature: a long-running
// frontend absorbs distribution-driven arrivals (service/arrivals.hpp),
// routes each request to one of R arbitrated resources, and parks it in
// that resource's *bounded* FIFO queue.  Up to `ports` requests per
// resource contend on a round-robin arbiter of the configured structure
// (ServiceOptions::arbiter_kind — flat Fig. 5 chain, hierarchical tree,
// or parallel-prefix; one Req line per dispatch port, Fig. 8 semantics:
// the grant holds while Req is up, service ends by deasserting it), so
// queueing discipline, arbitration fairness and the 2-cycle protocol
// overhead all appear in the measured latencies.  Wide configurations
// (ports > 64) drive the arbiter through step_wide with vector request
// words, up to core::kMaxWideInputs ports per resource.
//
// Three overload policies decide what happens when a queue is full:
//  - kBlock: arrivals wait in an (almost) unbounded backlog, like a
//    blocking producer.  Nothing is lost — but clients time out while
//    their requests still occupy the server, so sustained overload
//    collapses goodput (the server does work nobody is waiting for).
//  - kTailDrop: a full queue refuses the arrival with a typed rejection
//    (DiagKind::kRejected).  Sojourn stays bounded by the queue depth.
//  - kAdmitShed: a windowed utilization estimator with hysteresis
//    (high_water arms, low_water disarms) sheds arrivals *early* —
//    before the queue fills — once the resource is saturated
//    (DiagKind::kShed), keeping latency low and goodput at capacity.
//
// Rejected and shed requests re-enter through a client-side retry loop:
// exponential backoff with deterministic jitter and a bounded retry
// budget, so a retry storm cannot amplify an overload (each failed
// request injects at most `max_retries` extra attempts, ever).  Requests
// that complete after the client's timeout count as timed out, not as
// goodput.  Every random draw comes from rcarb::Rng streams seeded via
// derive_seed, so a run is a pure function of (options, seed) — the
// load-sweep bench relies on this for byte-identical parallel sweeps.
//
// The service is fault-tolerant end to end.  A seeded fault plan
// (ServiceOptions::faults, fault::plan_service_faults) injects transient
// SEUs into the live arbiters and permanent faults (arbiter latch-up,
// resource failure) into the cycle loop.  Each resource's arbiter can be
// replicated as a self-checking DMR/TMR pair/triple (ServiceOptions::
// self_check) so corrupted grants raise the error net instead of
// double-granting, and a per-resource supervisor
// (degrade::ResourceSupervisor) classifies K-in-W strikes, drains the
// in-flight slots, prices the reconfiguration stall, and fails traffic
// over to the survivors — queued and retrying clients only ever see the
// typed kRejected/kShed diagnostics through the existing backoff loop,
// and the conservation invariant
//   in_flight_at_start + offered ==
//       completed + timed_out + budget_exhausted + in_flight_at_end
// holds under every fault mix (no lost or duplicated completions).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/arbiter_factory.hpp"
#include "degrade/degrade.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "rcsim/system_sim.hpp"
#include "service/arrivals.hpp"
#include "support/rng.hpp"

namespace rcarb::service {

/// What a full bounded queue does to the next arrival.
enum class OverloadPolicy : std::uint8_t {
  kBlock,      // wait in a deep backlog (blocking producer)
  kTailDrop,   // refuse with a typed rejection at the tail
  kAdmitShed,  // shed early once utilization crosses the high-water mark
};

[[nodiscard]] const char* to_string(OverloadPolicy p);

/// Client-side failure handling: timeout, retries, backoff.
struct RetryPolicy {
  /// Client gives up after this many cycles end-to-end.  A request that
  /// completes later is wasted work (timed out), not goodput.
  int timeout = 512;
  /// Retry budget per request: rejections/sheds beyond this are terminal
  /// (budget_exhausted).  0 = never retry.
  int max_retries = 3;
  int backoff_base = 8;     // first retry delay, cycles
  int backoff_limit = 256;  // exponential growth cap
  /// Deterministic jitter: each retry delay gets + rng(0 .. delay/2),
  /// clamped back to backoff_limit (the cap is a hard upper bound).
  bool jitter = true;
};

/// Pre-jitter delay of retry attempt `attempts` (>= 1): backoff_base
/// doubled per prior attempt, saturating at backoff_limit.  The shift
/// exponent saturates too — a large max_retries walks attempts far past
/// 64, where the naive `base << (attempts - 1)` is undefined behavior
/// (and, on x86's masked shifts, silently cycles back to *short* delays).
[[nodiscard]] std::uint64_t backoff_delay(const RetryPolicy& retry,
                                          int attempts);

/// Full retry delay: backoff_delay plus one jitter draw of
/// next_below(delay / 2 + 1) when enabled, then clamped to backoff_limit.
/// The draw bound matches the pre-clamp delay so seeded jitter streams are
/// unchanged by the final clamp.
[[nodiscard]] std::uint64_t retry_delay(const RetryPolicy& retry,
                                        int attempts, Rng& jitter_rng);

struct ServiceOptions {
  int resources = 4;       // independent arbitrated resources
  /// Dispatch ports (concurrent slots) per resource, in
  /// [1, core::kMaxWideInputs].  Past 64 the engine drives the arbiter
  /// through step_wide with vector request words.
  int ports = 8;
  int service_cycles = 6;  // granted busy cycles per request
  int queue_capacity = 32; // bounded FIFO depth per resource
  OverloadPolicy policy = OverloadPolicy::kBlock;

  // ---- Arbiter structure (core/arbiter_factory.hpp). ----
  /// kFlatFsm (default) is the paper's Fig. 5 chain; kHierarchical and
  /// kPrefix are the scalable structures; kAuto picks the cheapest kind
  /// whose pre-characterized fmax (generate_scalable_cached) meets
  /// arbiter_fmax_budget_mhz, and therefore runs synthesis on first use.
  core::ArbiterChoice arbiter_kind = core::ArbiterChoice::kFlatFsm;
  int arbiter_arity = 4;  // tree arity for kHierarchical, in [2, 4]
  /// Fmax floor (MHz) the auto-selected structure must meet.  Required
  /// (> 0) when arbiter_kind == kAuto; unused otherwise.
  double arbiter_fmax_budget_mhz = 0.0;

  // ---- kAdmitShed estimator. ----
  double high_water = 0.85;       // windowed utilization that arms shedding
  double low_water = 0.70;        // disarm threshold (hysteresis)
  int util_window = 256;          // cycles per utilization sample
  int admit_queue_threshold = 8;  // shed only above this queue depth

  // ---- kBlock backlog bound. ----
  /// The "blocking" backlog is bounded at queue_capacity * this factor so
  /// memory stays sane; overflow beyond it is refused like a tail drop.
  int block_backlog_factor = 64;

  RetryPolicy retry;
  ArrivalOptions arrivals;

  /// Warmup: run, then reset all stats *and* the admission estimator
  /// (window phase, busy count, hysteresis arm) so the measured window
  /// starts from a defined estimator state.  Queues, RNG streams and the
  /// retry wheel carry over.
  std::uint64_t warmup_cycles = 10'000;
  std::uint64_t measure_cycles = 20'000;  // measured window
  std::uint64_t seed = 1;
  /// Typed diagnostics recorded in ServiceStats (counters keep counting
  /// past the cap; the records just stop growing).
  int max_diagnostics = 64;

  // ---- Fault tolerance. ----
  /// Replicate each resource's arbiter as a self-checking DMR pair
  /// (kDuplicate: fail-stop, the error net gates grants until resync) or
  /// TMR triple (kTriplicate: the vote masks a faulty copy and the error
  /// net reports it).  Requires the flat structure and ports <= 64 (the
  /// behavioral model compares per-copy F/C state words) — combining it
  /// with another kind or a wider resource CHECK-fails in the factory.
  core::CheckMode self_check = core::CheckMode::kNone;
  /// Strike classification + quarantine/repair supervision
  /// (degrade::ResourceSupervisor).  Disabled (`enabled = false`) the
  /// supervisor still records strike evidence but never quarantines — the
  /// unprotected baseline for the fault benches.
  degrade::DegradeOptions degrade;
  /// Cycle-sorted fault events injected live into the engine, normally
  /// from fault::plan_service_faults.  Only the service-injectable kinds
  /// are accepted (kFsmBitFlip, kArbiterLatchup, kBankFailure; `arbiter`
  /// / `bank` name the target resource).  Non-empty plans require the
  /// flat arbiter structure with ports <= 64 — the SEU/latch-up surface
  /// is its one-hot register pair.
  std::vector<fault::FaultEvent> faults;
};

/// Per-resource measurement (one arbiter + one bounded queue).
struct ResourceStats {
  std::string name;
  std::uint64_t offered = 0;    // enqueue attempts routed here
  std::uint64_t completed = 0;  // finished within the client timeout
  std::uint64_t timed_out = 0;  // finished too late (wasted service)
  std::uint64_t rejected = 0;   // refused at the queue tail / backlog cap
  std::uint64_t shed = 0;       // refused early by admission control
  obs::Histogram latency;       // end-to-end cycles, goodput only
  obs::Histogram queue_depth;   // sampled once per cycle
  obs::ArbiterMetrics arbiter;  // wire-level fairness / wait metrics
};

struct ServiceStats {
  std::uint64_t cycles = 0;
  std::uint64_t offered = 0;  // arrivals (first attempts) in the window
  std::uint64_t completed = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t retries = 0;           // re-attempts injected by clients
  std::uint64_t budget_exhausted = 0;  // requests whose retries ran out
  /// Merged via obs::Histogram::merge from the per-resource histograms
  /// (same path the parallel sweep reduction uses), so totals are
  /// deterministic and order-independent.
  obs::Histogram latency;
  obs::Histogram queue_depth;
  std::vector<ResourceStats> per_resource;
  /// Typed records (kRejected / kShed / kTimedOut, plus kQuarantine /
  /// kRemap / kCapacityExhausted under faults), capped at
  /// ServiceOptions::max_diagnostics.
  std::vector<rcsim::SimDiagnostic> diagnostics;

  // ---- Fault tolerance (live injection + supervision). ----
  std::uint64_t faults_injected = 0;  // plan events applied in the window
  std::uint64_t error_net_trips = 0;  // self-check comparator-high steps
  std::uint64_t resyncs = 0;          // DMR reloads / TMR minority rewrites
  std::uint64_t multi_grants = 0;     // unprotected mutual-exclusion breaks
  std::uint64_t corrupted = 0;        // completions poisoned by multi-grants
  std::uint64_t failed_service = 0;   // completions lost to a dead resource
  std::uint64_t strikes = 0;          // evidence fed to the supervisor
  std::uint64_t quarantines = 0;      // K-in-W classifications
  std::uint64_t drain_aborts = 0;     // drains force-cut at drain_timeout
  std::uint64_t restored = 0;         // arbiters rewritten, resource back
  std::uint64_t retired = 0;          // resources failed over for good
  std::uint64_t requeued = 0;         // queued/in-flight work failed over
  /// Resource-cycles in service *and* actually functioning (a frozen or
  /// dead arbiter the supervisor has not caught does not count — the
  /// unprotected baseline's availability collapse is the measurement).
  std::uint64_t serving_resource_cycles = 0;
  /// Request conservation across the measured window: work parked in
  /// queues, dispatch slots and the retry wheel at reset and at the end.
  /// Under every fault mix,
  ///   in_flight_at_start + offered ==
  ///       completed + timed_out + budget_exhausted + in_flight_at_end —
  /// corrupted / failed / requeued work is non-terminal (it re-enters the
  /// retry loop), so nothing is lost or double-counted.
  std::uint64_t in_flight_at_start = 0;
  std::uint64_t in_flight_at_end = 0;
  /// Quarantine lifecycle records for the whole run (a repair can span
  /// the warmup reset, so these are not clipped to the window).
  std::vector<degrade::QuarantineRecord> quarantine_events;

  /// Completions-within-timeout per cycle — the robustness headline.
  [[nodiscard]] double goodput() const;
  /// First-attempt arrivals per cycle.
  [[nodiscard]] double offered_rate() const;
  /// serving_resource_cycles / (cycles * resources): the fraction of
  /// resource-time that was genuinely able to serve.  1.0 when idle.
  [[nodiscard]] double availability() const;
  /// Mean repair_cycles over closed quarantine records (classification to
  /// restore/retire), 0 when nothing was repaired.
  [[nodiscard]] double mttr_cycles() const;
  [[nodiscard]] std::string summarize() const;
  /// One-line fault-tolerance summary (errors, strikes, quarantines,
  /// availability, MTTR); complements summarize().
  [[nodiscard]] std::string summarize_faults() const;
};

/// Runs one open-loop session to completion.  Pure function of `options`.
[[nodiscard]] ServiceStats run_service(const ServiceOptions& options);

/// Measured saturation throughput (completions per cycle, timeouts
/// included) of the configuration: the same engine driven far past
/// saturation under tail-drop, where the servers never idle.  Load sweeps
/// express offered load as a fraction of this number.
[[nodiscard]] double measure_capacity(ServiceOptions options);

}  // namespace rcarb::service
