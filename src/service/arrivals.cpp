#include "service/arrivals.hpp"

#include <cmath>

#include "support/check.hpp"

namespace rcarb::service {

namespace {

/// Poisson(lambda) sample by Knuth's inversion (product of uniforms).
/// Exact for the small per-cycle lambdas used here (lambda < ~10); the
/// loop length is itself the sample, so the rng draw count varies — which
/// is fine, every stream owns a private Rng.
int poisson(Rng& rng, double lambda) {
  if (lambda <= 0.0) return 0;
  const double limit = std::exp(-lambda);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.next_double();
  } while (p > limit);
  return k - 1;
}

}  // namespace

const char* to_string(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBursty: return "bursty";
    case ArrivalKind::kDiurnal: return "diurnal";
  }
  return "?";
}

ArrivalProcess::ArrivalProcess(const ArrivalOptions& options,
                               std::uint64_t seed)
    : opt_(options), rng_(seed) {
  RCARB_CHECK(opt_.rate >= 0.0, "arrival rate must be non-negative");
  RCARB_CHECK(opt_.dwell_mean > 0, "dwell_mean must be positive");
  RCARB_CHECK(opt_.period > 0, "period must be positive");
}

double ArrivalProcess::current_rate() const {
  switch (opt_.kind) {
    case ArrivalKind::kPoisson:
      return opt_.rate;
    case ArrivalKind::kBursty: {
      // Equal mean dwell in both states, so the long-run multiplier is the
      // midpoint; normalizing by it keeps the *average* load equal to
      // `rate` regardless of how bursty the shape is.
      const double mean_mult = (opt_.burst_factor + opt_.quiet_factor) / 2.0;
      const double mult = bursting_ ? opt_.burst_factor : opt_.quiet_factor;
      return opt_.rate * mult / mean_mult;
    }
    case ArrivalKind::kDiurnal: {
      const double mean_mult = (opt_.peak_factor + opt_.trough_factor) / 2.0;
      const auto phase = static_cast<double>(cycle_ % opt_.period) /
                         static_cast<double>(opt_.period);
      // Triangle: trough at phase 0 and 1, peak at phase 0.5.
      const double ramp = phase < 0.5 ? 2.0 * phase : 2.0 * (1.0 - phase);
      const double mult =
          opt_.trough_factor + (opt_.peak_factor - opt_.trough_factor) * ramp;
      return opt_.rate * mult / mean_mult;
    }
  }
  return opt_.rate;
}

int ArrivalProcess::step() {
  const int n = poisson(rng_, current_rate());
  if (opt_.kind == ArrivalKind::kBursty && rng_.chance(1, opt_.dwell_mean))
    bursting_ = !bursting_;
  ++cycle_;
  return n;
}

}  // namespace rcarb::service
