#include "service/service.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <utility>

#include "core/arbiter_factory.hpp"
#include "core/policy.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace rcarb::service {

std::uint64_t backoff_delay(const RetryPolicy& retry, int attempts) {
  RCARB_CHECK(attempts >= 1, "the first retry is attempt 1");
  const auto base = static_cast<std::uint64_t>(retry.backoff_base);
  const auto limit = static_cast<std::uint64_t>(retry.backoff_limit);
  if (base == 0) return 0;
  // Saturate the exponent: `base << (attempts - 1)` is undefined once the
  // shift reaches 64 (x86's masked shift silently cycles back to short
  // delays), and any shift that would push past the limit lands on the
  // limit anyway.
  const int shift = attempts - 1;
  if (shift >= std::countl_zero(base)) return limit;
  return std::min(base << shift, limit);
}

std::uint64_t retry_delay(const RetryPolicy& retry, int attempts,
                          Rng& jitter_rng) {
  std::uint64_t delay = backoff_delay(retry, attempts);
  // The jitter draw's bound tracks the pre-clamp delay so the Rng stream
  // is unchanged by the final clamp; the clamp then re-asserts the cap
  // (jitter used to be added after it, overshooting by up to 50%).
  if (retry.jitter) delay += jitter_rng.next_below(delay / 2 + 1);
  return std::min(delay, static_cast<std::uint64_t>(retry.backoff_limit));
}

namespace {

/// One in-flight client request.  `arrival` is the *first* attempt's
/// cycle, so retry delays count against the client's latency and timeout.
struct Request {
  std::uint64_t arrival = 0;
  int attempts = 0;  // rejections/sheds survived so far
};

/// One dispatch port of a resource: idle, or a request waiting on the Req
/// line, or a request being served (holding the grant).
struct Slot {
  enum class State : std::uint8_t { kIdle, kWaiting, kServing };
  State state = State::kIdle;
  Request req;
  int service_left = 0;
  /// A mutual-exclusion break hit this slot mid-service: the datapath was
  /// driven by several grants at once, so whatever completes is garbage.
  bool poisoned = false;
};

struct ResourceState {
  ResourceState(int ports, core::ArbiterKind kind, int arity,
                core::CheckMode self_check, obs::ArbiterMetrics* metrics)
      : arb(core::make_system_arbiter(ports, {.kind = kind,
                                              .arity = arity,
                                              .rr = {},
                                              .self_check = self_check})),
        probe(metrics),
        slots(static_cast<std::size_t>(ports)),
        req_words(static_cast<std::size_t>((ports + 63) / 64), 0) {
    arb.arbiter->set_observer(&probe);
  }
  core::SystemArbiter arb;
  obs::ArbiterProbe probe;
  std::vector<Slot> slots;
  std::vector<std::uint64_t> req_words;  // Fig. 8 request lines, per word
  std::deque<Request> queue;
  int busy_window = 0;   // serving cycles in the current util window
  bool shed_armed = false;
  // ---- Injected permanent faults. ----
  bool latched = false;  // unprotected latch-up: register frozen, no grants
  bool failed = false;   // resource datapath dead: completions are lost
  std::uint64_t sc_resyncs_seen = 0;  // cumulative-counter delta tracking
};

/// Re-initializes the measured fields of one ResourceStats in place —
/// in place, because the attached ArbiterProbe borrows the ArbiterMetrics
/// object and its port vector must stay sized.
void reset_resource_stats(ResourceStats& rs, const std::string& name,
                          int ports, core::ArbiterKind kind) {
  const auto keep_port = static_cast<std::size_t>(ports);
  rs = ResourceStats{};
  rs.name = name;
  rs.arbiter.name = name;
  rs.arbiter.kind = core::to_string(kind);
  rs.arbiter.ports = ports;
  rs.arbiter.port.assign(keep_port, obs::PortMetrics{});
}

class Engine {
 public:
  explicit Engine(const ServiceOptions& options)
      : opt_(options),
        arrivals_(options.arrivals, derive_seed(options.seed, 1)),
        route_rng_(derive_seed(options.seed, 2)),
        jitter_rng_(derive_seed(options.seed, 3)) {
    RCARB_CHECK(opt_.resources >= 1, "need at least one resource");
    RCARB_CHECK(opt_.ports >= 1 && opt_.ports <= core::kMaxWideInputs,
                "ports per resource must be in [1, kMaxWideInputs]");
    RCARB_CHECK(opt_.service_cycles >= 1, "service_cycles must be positive");
    RCARB_CHECK(opt_.queue_capacity >= 1, "queue_capacity must be positive");
    RCARB_CHECK(opt_.util_window >= 1, "util_window must be positive");
    RCARB_CHECK(opt_.arbiter_arity >= 2 && opt_.arbiter_arity <= 4,
                "arbiter_arity must be in [2, 4]");
    RCARB_CHECK(opt_.arbiter_kind != core::ArbiterChoice::kAuto ||
                    opt_.arbiter_fmax_budget_mhz > 0.0,
                "arbiter_kind kAuto needs arbiter_fmax_budget_mhz > 0 (the "
                "fmax floor the selected structure must meet)");
    RCARB_CHECK(opt_.retry.max_retries == 0 ||
                    opt_.retry.timeout >
                        static_cast<int>(opt_.retry.backoff_base),
                "retry timeout must exceed backoff_base: the first retry "
                "would already be past the client's deadline, so every "
                "retried request is born dead and goodput silently reads "
                "low for no physical reason");
    kind_ = core::resolve_arbiter_choice(opt_.arbiter_kind, opt_.ports,
                                         opt_.arbiter_fmax_budget_mhz,
                                         opt_.arbiter_arity);
    validate_fault_plan();
    stats_.per_resource.resize(static_cast<std::size_t>(opt_.resources));
    for (int r = 0; r < opt_.resources; ++r) {
      auto& rs = stats_.per_resource[static_cast<std::size_t>(r)];
      reset_resource_stats(rs, "svc" + std::to_string(r), opt_.ports, kind_);
      res_.push_back(std::make_unique<ResourceState>(
          opt_.ports, kind_, opt_.arbiter_arity, opt_.self_check,
          &rs.arbiter));
      live_.push_back(r);
    }
    supervisor_ = degrade::ResourceSupervisor(opt_.resources, opt_.degrade);
  }

  ServiceStats run() {
    for (std::uint64_t i = 0; i < opt_.warmup_cycles; ++i) step();
    reset_stats();  // measurement starts now; queues/rng/wheel carry over
    for (std::uint64_t i = 0; i < opt_.measure_cycles; ++i) step();
    finalize();
    return std::move(stats_);
  }

 private:
  void validate_fault_plan() const {
    if (opt_.faults.empty()) return;
    RCARB_CHECK(kind_ == core::ArbiterKind::kFlatFsm && opt_.ports <= 64,
                "service fault injection needs the flat word-width arbiter "
                "(<= 64 ports): the SEU/latch-up surface is its one-hot "
                "register pair");
    std::uint64_t prev = 0;
    for (const fault::FaultEvent& e : opt_.faults) {
      RCARB_CHECK(e.cycle >= prev, "fault plan must be cycle-sorted");
      prev = e.cycle;
      switch (e.kind) {
        case fault::FaultKind::kFsmBitFlip:
        case fault::FaultKind::kArbiterLatchup:
          RCARB_CHECK(e.arbiter >= 0 && e.arbiter < opt_.resources,
                      "fault event targets an arbiter out of range");
          break;
        case fault::FaultKind::kBankFailure:
          RCARB_CHECK(e.bank >= 0 && e.bank < opt_.resources,
                      "fault event targets a resource (bank) out of range");
          break;
        default:
          RCARB_CHECK(false,
                      "fault kind is not service-injectable (see "
                      "fault::plan_service_faults)");
      }
    }
  }

  /// Applies every plan event due this cycle, before arrivals and service
  /// (a fault "at cycle c" is visible to cycle c's arbitration).
  void apply_faults() {
    while (next_fault_ < opt_.faults.size() &&
           opt_.faults[next_fault_].cycle <= cycle_) {
      const fault::FaultEvent& e = opt_.faults[next_fault_++];
      ++stats_.faults_injected;
      switch (e.kind) {
        case fault::FaultKind::kFsmBitFlip: {
          ResourceState& st = *res_[static_cast<std::size_t>(e.arbiter)];
          const int per_copy = 2 * opt_.ports;
          if (st.arb.sc != nullptr) {
            const int total = st.arb.sc->num_copies() * per_copy;
            const int b = e.bit >= 0 ? e.bit % total : 0;
            st.arb.sc->inject_bit_flip(b / per_copy, b % per_copy);
          } else if (st.arb.rr != nullptr) {
            st.arb.rr->inject_bit_flip(e.bit >= 0 ? e.bit % per_copy : 0);
          }
          break;
        }
        case fault::FaultKind::kArbiterLatchup: {
          ResourceState& st = *res_[static_cast<std::size_t>(e.arbiter)];
          if (st.arb.sc != nullptr) {
            // Latch-up wedges the copy's register at a *corrupt* value (a
            // cell stuck mid-flip).  Corrupt-then-freeze matters: frozen
            // at a clean value the copy could coast undetected for as
            // long as the grant happens to pin, which is not a latch-up —
            // it is nothing.
            st.arb.sc->inject_bit_flip(0, 0);
            st.arb.sc->latch_up(0);
          } else {
            st.latched = true;  // frozen register: the resource goes silent
          }
          break;
        }
        case fault::FaultKind::kBankFailure:
          res_[static_cast<std::size_t>(e.bank)]->failed = true;
          break;
        default:
          break;  // validated unreachable
      }
    }
  }

  void step() {
    // 0. Live fault injection (no-op without a plan).
    apply_faults();
    // 1. Client retry loop: re-inject attempts whose backoff expired.
    if (auto it = wheel_.find(cycle_); it != wheel_.end()) {
      for (const Request& req : it->second) {
        ++stats_.retries;
        submit(req);
      }
      wheel_.erase(it);
    }
    // 2. Open-loop arrivals (these keep coming no matter what).
    const int n = arrivals_.step();
    for (int i = 0; i < n; ++i) {
      ++stats_.offered;
      submit(Request{cycle_, 0});
    }
    // 3. Dispatch + arbitrate + serve, one cycle per resource.
    for (int r = 0; r < opt_.resources; ++r) serve_one_cycle(r);
    ++cycle_;
  }

  void serve_one_cycle(int r) {
    ResourceState& st = *res_[static_cast<std::size_t>(r)];
    auto& rs = stats_.per_resource[static_cast<std::size_t>(r)];
    const degrade::QuarantineState qs = supervisor_.state(r);
    switch (qs) {
      case degrade::QuarantineState::kHealthy:
        // Idle dispatch ports take the queue head (FIFO order).
        for (Slot& slot : st.slots) {
          if (slot.state != Slot::State::kIdle || st.queue.empty()) continue;
          slot.req = st.queue.front();
          st.queue.pop_front();
          slot.state = Slot::State::kWaiting;
          slot.poisoned = false;
        }
        arbitrate_and_serve(r, st, rs);
        break;
      case degrade::QuarantineState::kDraining: {
        // Routing is already failed over and the queue is flushed; the
        // arbiter keeps clocking so in-flight service can finish (a TMR
        // vote still grants through a latched copy; a gated DMR or frozen
        // plain register cannot, and the drain deadline cuts it below).
        arbitrate_and_serve(r, st, rs);
        const bool drained = no_slot_busy(st);
        if (supervisor_.advance(r, cycle_, drained, opt_.ports,
                                opt_.self_check) ==
                degrade::ResourceSupervisor::Transition::kDrained &&
            !drained) {
          ++stats_.drain_aborts;
          flush_slots(st, r);  // leftovers re-enter the client retry loop
        }
        break;
      }
      case degrade::QuarantineState::kReconfiguring: {
        // The region is being rewritten: the arbiter does not clock.
        switch (supervisor_.advance(r, cycle_, true, opt_.ports,
                                    opt_.self_check)) {
          case degrade::ResourceSupervisor::Transition::kRestored:
            ++stats_.restored;
            st.latched = false;
            if (st.arb.sc != nullptr) st.arb.sc->clear_latch_up();
            st.arb.arbiter->reset();
            st.busy_window = 0;  // estimator restarts with the resource
            st.shed_armed = false;
            rebuild_live();
            diag(rcsim::DiagKind::kRemap, r);
            break;
          case degrade::ResourceSupervisor::Transition::kRetired:
            ++stats_.retired;
            rebuild_live();
            diag(rcsim::DiagKind::kRemap, r);
            break;
          default:
            break;
        }
        break;
      }
      case degrade::QuarantineState::kRemapped:
      case degrade::QuarantineState::kCapacityExhausted:
        break;  // permanently retired: nothing ever runs here again
    }
    // Ground-truth availability: a resource-cycle counts when the resource
    // is routable *and* its arbiter can actually grant.  A frozen or dead
    // arbiter the supervisor has not caught is unavailable even though
    // routing still targets it — that gap is the unprotected baseline's
    // availability collapse.
    if (qs == degrade::QuarantineState::kHealthy && functioning(st))
      ++stats_.serving_resource_cycles;
    // Windowed utilization with hysteresis: high_water arms shedding,
    // low_water disarms it.  Window boundaries are anchored at the last
    // stats reset so the measured run's first window is always full-width
    // regardless of the warmup length.
    if ((cycle_ + 1 - util_anchor_) %
            static_cast<std::uint64_t>(opt_.util_window) ==
        0) {
      const double util = static_cast<double>(st.busy_window) /
                          static_cast<double>(opt_.util_window);
      st.shed_armed =
          st.shed_armed ? (util > opt_.low_water) : (util > opt_.high_water);
      st.busy_window = 0;
    }
    rs.queue_depth.record(st.queue.size());
  }

  /// One arbitration clock for resource r: build the Req word, step the
  /// (possibly replicated) arbiter, sample the error net, serve the grant.
  void arbitrate_and_serve(int r, ResourceState& st, ResourceStats& rs) {
    if (st.latched) return;  // frozen register: no clocking, no grants
    // Fig. 8 request lines: waiting and serving slots keep Req asserted.
    // Words-encoded so widths past 64 work; at <= 64 ports the base
    // step_wide forwards to the word-based step() unchanged.
    std::fill(st.req_words.begin(), st.req_words.end(), 0);
    for (std::size_t p = 0; p < st.slots.size(); ++p)
      if (st.slots[p].state != Slot::State::kIdle)
        st.req_words[p >> 6] |= 1ull << (p & 63);
    const int g = st.arb.arbiter->step_wide(st.req_words);
    if (st.arb.sc != nullptr) {
      // Self-checking wrapper: harvest the error net and resync counter.
      const std::uint64_t rsy = st.arb.sc->resyncs();
      stats_.resyncs += rsy - st.sc_resyncs_seen;
      rs.arbiter.resyncs += rsy - st.sc_resyncs_seen;
      st.sc_resyncs_seen = rsy;
      if (st.arb.sc->error()) {
        ++stats_.error_net_trips;
        ++rs.arbiter.error_net_trips;
        strike(r, degrade::StrikeSource::kSelfCheckError);
      }
    } else if (st.arb.rr != nullptr &&
               std::popcount(st.arb.rr->last_grant_mask()) > 1) {
      // Unprotected multi-hot register: several grants at once drive the
      // single-ported datapath.  Whatever is in flight is served to
      // completion and worth nothing — the silent-corruption failure mode
      // self-checking exists to prevent.
      ++stats_.multi_grants;
      for (Slot& slot : st.slots)
        if (slot.state == Slot::State::kServing) slot.poisoned = true;
    }
    if (g >= 0) {
      Slot& slot = st.slots[static_cast<std::size_t>(g)];
      if (slot.state == Slot::State::kWaiting) {
        slot.state = Slot::State::kServing;
        slot.service_left = opt_.service_cycles;
      }
      if (slot.state == Slot::State::kServing) {
        ++st.busy_window;
        if (--slot.service_left == 0) complete(r, slot);
      }
    }
  }

  [[nodiscard]] static bool no_slot_busy(const ResourceState& st) {
    for (const Slot& slot : st.slots)
      if (slot.state != Slot::State::kIdle) return false;
    return true;
  }

  /// Can this resource's arbiter actually grant work right now?
  [[nodiscard]] static bool functioning(const ResourceState& st) {
    if (st.failed || st.latched) return false;
    if (st.arb.sc != nullptr)
      // A latched DMR copy pins the comparator and gates every grant; a
      // latched TMR copy is outvoted, so the triple still serves.
      return !(st.arb.sc->latched() &&
               st.arb.sc->mode() == core::CheckMode::kDuplicate);
    if (st.arb.rr != nullptr) return st.arb.rr->state_legal();
    return true;
  }

  void strike(int r, degrade::StrikeSource source) {
    ++stats_.strikes;
    if (supervisor_.strike(r, cycle_, source) ==
        degrade::ResourceSupervisor::Transition::kQuarantined)
      begin_quarantine(r);
  }

  /// K-in-W classification fired: stop routing here, fail the queued and
  /// not-yet-served work over through the client retry loop (typed
  /// kRejected diagnostics — no work is silently lost), and let the slots
  /// already holding the grant drain.
  void begin_quarantine(int r) {
    ResourceState& st = *res_[static_cast<std::size_t>(r)];
    ++stats_.quarantines;
    diag(rcsim::DiagKind::kQuarantine, r);
    rebuild_live();
    for (const Request& req : st.queue) requeue(req, r);
    st.queue.clear();
    for (Slot& slot : st.slots)
      if (slot.state == Slot::State::kWaiting) {
        slot.state = Slot::State::kIdle;
        requeue(slot.req, r);
      }
  }

  /// Fails one request over through the retry loop with a typed rejection
  /// (it consumes retry budget like any refusal — a quarantine storm must
  /// not amplify load any more than an overload storm can).
  void requeue(const Request& req, int r) {
    ++stats_.requeued;
    ++stats_.rejected;
    ++stats_.per_resource[static_cast<std::size_t>(r)].rejected;
    diag(rcsim::DiagKind::kRejected, r);
    retry_or_fail(req);
  }

  /// Drain deadline force-abort: every occupied slot (waiting or mid-
  /// service on a dead arbiter) fails over.
  void flush_slots(ResourceState& st, int r) {
    for (Slot& slot : st.slots)
      if (slot.state != Slot::State::kIdle) {
        slot.state = Slot::State::kIdle;
        requeue(slot.req, r);
      }
  }

  void rebuild_live() {
    live_.clear();
    for (int r = 0; r < opt_.resources; ++r)
      if (supervisor_.serving(r)) live_.push_back(r);
  }

  void complete(int r, Slot& slot) {
    auto& rs = stats_.per_resource[static_cast<std::size_t>(r)];
    // Retire the slot before anything that might flush slots (a bank-
    // failure strike below can classify and quarantine r mid-call); the
    // request is then failed over exactly once, here.
    slot.state = Slot::State::kIdle;
    if (slot.poisoned) {
      ++stats_.corrupted;
      requeue(slot.req, r);
      return;
    }
    ResourceState& st = *res_[static_cast<std::size_t>(r)];
    if (st.failed) {
      // The datapath is dead: the "service" produced nothing.  The client
      // sees a failure and retries; the supervisor sees bank evidence.
      ++stats_.failed_service;
      strike(r, degrade::StrikeSource::kBankFailure);
      requeue(slot.req, r);
      return;
    }
    const std::uint64_t sojourn = cycle_ - slot.req.arrival + 1;
    if (sojourn > static_cast<std::uint64_t>(opt_.retry.timeout)) {
      // The client gave up long ago: the service was real, the goodput is
      // not.  This is the mechanism behind blocking's congestion collapse.
      ++stats_.timed_out;
      ++rs.timed_out;
      diag(rcsim::DiagKind::kTimedOut, r);
    } else {
      ++stats_.completed;
      ++rs.completed;
      rs.latency.record(sojourn);
    }
    // Req drops next cycle's mask; the arbiter rotates to the next waiter.
  }

  void submit(const Request& req) {
    if (live_.empty()) {
      // Every resource is quarantined or retired: admission has nowhere
      // to route.  Typed capacity-exhausted rejection; the retry loop may
      // find a restored resource by the time the backoff expires.
      ++stats_.rejected;
      diag(rcsim::DiagKind::kCapacityExhausted, -1);
      retry_or_fail(req);
      return;
    }
    // Failover routing over the live (supervisor-healthy) resources.  With
    // nothing quarantined this draws next_below(resources) over the
    // identity list — the exact stream the fault-free engine always drew,
    // so fault-tolerance costs byte-identical baselines nothing.
    const int r = live_[static_cast<std::size_t>(
        route_rng_.next_below(static_cast<std::uint64_t>(live_.size())))];
    ResourceState& st = *res_[static_cast<std::size_t>(r)];
    auto& rs = stats_.per_resource[static_cast<std::size_t>(r)];
    ++rs.offered;
    const auto depth = static_cast<int>(st.queue.size());
    switch (opt_.policy) {
      case OverloadPolicy::kAdmitShed:
        if (st.shed_armed && depth >= opt_.admit_queue_threshold) {
          ++stats_.shed;
          ++rs.shed;
          diag(rcsim::DiagKind::kShed, r);
          retry_or_fail(req);
          return;
        }
        if (depth >= opt_.queue_capacity) {
          reject(req, r);
          return;
        }
        break;
      case OverloadPolicy::kTailDrop:
        if (depth >= opt_.queue_capacity) {
          reject(req, r);
          return;
        }
        break;
      case OverloadPolicy::kBlock:
        // The backlog bound only exists to keep memory finite; a real
        // blocking producer would simply stall here forever.
        if (depth >= opt_.queue_capacity * opt_.block_backlog_factor) {
          reject(req, r);
          return;
        }
        break;
    }
    st.queue.push_back(req);
  }

  void reject(const Request& req, int r) {
    ++stats_.rejected;
    ++stats_.per_resource[static_cast<std::size_t>(r)].rejected;
    diag(rcsim::DiagKind::kRejected, r);
    retry_or_fail(req);
  }

  void retry_or_fail(const Request& req) {
    if (req.attempts >= opt_.retry.max_retries) {
      ++stats_.budget_exhausted;  // terminal: the retry storm ends here
      return;
    }
    Request next = req;
    ++next.attempts;
    wheel_[cycle_ + retry_delay(opt_.retry, next.attempts, jitter_rng_)]
        .push_back(next);
  }

  void diag(rcsim::DiagKind kind, int resource) {
    if (static_cast<int>(stats_.diagnostics.size()) >= opt_.max_diagnostics)
      return;
    stats_.diagnostics.push_back({kind, cycle_, -1, resource, {}});
  }

  /// Requests currently parked anywhere in the system: resource queues,
  /// dispatch slots, and the retry wheel (the conservation invariant's
  /// in-flight terms).
  [[nodiscard]] std::uint64_t in_flight_now() const {
    std::uint64_t n = 0;
    for (const auto& st : res_) {
      n += st->queue.size();
      for (const Slot& slot : st->slots)
        if (slot.state != Slot::State::kIdle) ++n;
    }
    for (const auto& [due, reqs] : wheel_) n += reqs.size();
    return n;
  }

  void reset_stats() {
    // The probes point into per_resource[r].arbiter, so every reset is in
    // place: the vector must never reallocate or be replaced.
    stats_.cycles = 0;
    stats_.offered = stats_.completed = stats_.timed_out = 0;
    stats_.rejected = stats_.shed = 0;
    stats_.retries = stats_.budget_exhausted = 0;
    stats_.faults_injected = stats_.error_net_trips = stats_.resyncs = 0;
    stats_.multi_grants = stats_.corrupted = stats_.failed_service = 0;
    stats_.strikes = stats_.quarantines = stats_.drain_aborts = 0;
    stats_.restored = stats_.retired = stats_.requeued = 0;
    stats_.serving_resource_cycles = 0;
    stats_.in_flight_at_start = in_flight_now();
    stats_.in_flight_at_end = 0;
    stats_.latency = obs::Histogram{};
    stats_.queue_depth = obs::Histogram{};
    stats_.diagnostics.clear();
    for (std::size_t r = 0; r < stats_.per_resource.size(); ++r)
      reset_resource_stats(stats_.per_resource[r], "svc" + std::to_string(r),
                           opt_.ports, kind_);
    // The admission estimator restarts from a defined state: window phase
    // re-anchored here, empty busy count, shedding disarmed.  Before this
    // the warmup's partial window and armed/disarmed flag leaked into the
    // measured run, so measurements depended on warmup_cycles modulo
    // util_window.
    util_anchor_ = cycle_;
    for (auto& st : res_) {
      st->busy_window = 0;
      st->shed_armed = false;
    }
  }

  void finalize() {
    stats_.cycles = opt_.measure_cycles;
    stats_.in_flight_at_end = in_flight_now();
    stats_.quarantine_events = supervisor_.records();
    for (std::size_t r = 0; r < res_.size(); ++r) {
      res_[r]->probe.finish();
      stats_.latency.merge(stats_.per_resource[r].latency);
      stats_.queue_depth.merge(stats_.per_resource[r].queue_depth);
    }
  }

  ServiceOptions opt_;
  ArrivalProcess arrivals_;
  Rng route_rng_;
  Rng jitter_rng_;
  std::vector<std::unique_ptr<ResourceState>> res_;
  std::map<std::uint64_t, std::vector<Request>> wheel_;  // retry timers
  std::uint64_t cycle_ = 0;
  std::uint64_t util_anchor_ = 0;  // cycle the util windows count from
  core::ArbiterKind kind_ = core::ArbiterKind::kFlatFsm;
  degrade::ResourceSupervisor supervisor_;
  std::size_t next_fault_ = 0;  // cursor into opt_.faults
  std::vector<int> live_;       // routable resources, ascending
  ServiceStats stats_;
};

}  // namespace

const char* to_string(OverloadPolicy p) {
  switch (p) {
    case OverloadPolicy::kBlock: return "block";
    case OverloadPolicy::kTailDrop: return "tail-drop";
    case OverloadPolicy::kAdmitShed: return "admit-shed";
  }
  return "?";
}

double ServiceStats::goodput() const {
  return cycles == 0 ? 0.0
                     : static_cast<double>(completed) /
                           static_cast<double>(cycles);
}

double ServiceStats::offered_rate() const {
  return cycles == 0 ? 0.0
                     : static_cast<double>(offered) /
                           static_cast<double>(cycles);
}

double ServiceStats::availability() const {
  const double denom = static_cast<double>(cycles) *
                       static_cast<double>(per_resource.size());
  return denom == 0.0
             ? 1.0
             : static_cast<double>(serving_resource_cycles) / denom;
}

double ServiceStats::mttr_cycles() const {
  std::uint64_t sum = 0;
  std::uint64_t n = 0;
  for (const auto& q : quarantine_events) {
    if (q.restored_cycle == 0) continue;  // still draining/reconfiguring
    sum += q.repair_cycles();
    ++n;
  }
  return n == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(n);
}

std::string ServiceStats::summarize() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "offered=%.4f/cyc goodput=%.4f/cyc timeout=%llu rej=%llu "
                "shed=%llu retry=%llu spent=%llu p99<=%llu",
                offered_rate(), goodput(),
                static_cast<unsigned long long>(timed_out),
                static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(shed),
                static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(budget_exhausted),
                static_cast<unsigned long long>(latency.percentile(0.99)));
  return buf;
}

std::string ServiceStats::summarize_faults() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "faults=%llu err=%llu resync=%llu multi=%llu corrupt=%llu "
                "strikes=%llu quar=%llu restored=%llu retired=%llu "
                "avail=%.4f mttr=%.0f",
                static_cast<unsigned long long>(faults_injected),
                static_cast<unsigned long long>(error_net_trips),
                static_cast<unsigned long long>(resyncs),
                static_cast<unsigned long long>(multi_grants),
                static_cast<unsigned long long>(corrupted),
                static_cast<unsigned long long>(strikes),
                static_cast<unsigned long long>(quarantines),
                static_cast<unsigned long long>(restored),
                static_cast<unsigned long long>(retired), availability(),
                mttr_cycles());
  return buf;
}

ServiceStats run_service(const ServiceOptions& options) {
  return Engine(options).run();
}

double measure_capacity(ServiceOptions options) {
  // Saturate well past any plausible capacity under tail-drop (short,
  // bounded sojourns: the servers stay busy and almost nothing times
  // out), with retries off so the arrival stream is the only load.
  options.policy = OverloadPolicy::kTailDrop;
  options.arrivals = {};
  options.arrivals.kind = ArrivalKind::kPoisson;
  options.arrivals.rate = 2.0 * static_cast<double>(options.resources) /
                          static_cast<double>(options.service_cycles);
  options.retry.max_retries = 0;
  const ServiceStats s = run_service(options);
  return options.measure_cycles == 0
             ? 0.0
             : static_cast<double>(s.completed + s.timed_out) /
                   static_cast<double>(s.cycles);
}

}  // namespace rcarb::service
