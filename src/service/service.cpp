#include "service/service.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <utility>

#include "core/arbiter_factory.hpp"
#include "core/policy.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace rcarb::service {

std::uint64_t backoff_delay(const RetryPolicy& retry, int attempts) {
  RCARB_CHECK(attempts >= 1, "the first retry is attempt 1");
  const auto base = static_cast<std::uint64_t>(retry.backoff_base);
  const auto limit = static_cast<std::uint64_t>(retry.backoff_limit);
  if (base == 0) return 0;
  // Saturate the exponent: `base << (attempts - 1)` is undefined once the
  // shift reaches 64 (x86's masked shift silently cycles back to short
  // delays), and any shift that would push past the limit lands on the
  // limit anyway.
  const int shift = attempts - 1;
  if (shift >= std::countl_zero(base)) return limit;
  return std::min(base << shift, limit);
}

std::uint64_t retry_delay(const RetryPolicy& retry, int attempts,
                          Rng& jitter_rng) {
  std::uint64_t delay = backoff_delay(retry, attempts);
  // The jitter draw's bound tracks the pre-clamp delay so the Rng stream
  // is unchanged by the final clamp; the clamp then re-asserts the cap
  // (jitter used to be added after it, overshooting by up to 50%).
  if (retry.jitter) delay += jitter_rng.next_below(delay / 2 + 1);
  return std::min(delay, static_cast<std::uint64_t>(retry.backoff_limit));
}

namespace {

/// One in-flight client request.  `arrival` is the *first* attempt's
/// cycle, so retry delays count against the client's latency and timeout.
struct Request {
  std::uint64_t arrival = 0;
  int attempts = 0;  // rejections/sheds survived so far
};

/// One dispatch port of a resource: idle, or a request waiting on the Req
/// line, or a request being served (holding the grant).
struct Slot {
  enum class State : std::uint8_t { kIdle, kWaiting, kServing };
  State state = State::kIdle;
  Request req;
  int service_left = 0;
};

struct ResourceState {
  ResourceState(int ports, core::ArbiterKind kind, int arity,
                obs::ArbiterMetrics* metrics)
      : arb(core::make_system_arbiter(
            ports, {.kind = kind, .arity = arity})),
        probe(metrics),
        slots(static_cast<std::size_t>(ports)),
        req_words(static_cast<std::size_t>((ports + 63) / 64), 0) {
    arb.arbiter->set_observer(&probe);
  }
  core::SystemArbiter arb;
  obs::ArbiterProbe probe;
  std::vector<Slot> slots;
  std::vector<std::uint64_t> req_words;  // Fig. 8 request lines, per word
  std::deque<Request> queue;
  int busy_window = 0;   // serving cycles in the current util window
  bool shed_armed = false;
};

/// Re-initializes the measured fields of one ResourceStats in place —
/// in place, because the attached ArbiterProbe borrows the ArbiterMetrics
/// object and its port vector must stay sized.
void reset_resource_stats(ResourceStats& rs, const std::string& name,
                          int ports, core::ArbiterKind kind) {
  const auto keep_port = static_cast<std::size_t>(ports);
  rs = ResourceStats{};
  rs.name = name;
  rs.arbiter.name = name;
  rs.arbiter.kind = core::to_string(kind);
  rs.arbiter.ports = ports;
  rs.arbiter.port.assign(keep_port, obs::PortMetrics{});
}

class Engine {
 public:
  explicit Engine(const ServiceOptions& options)
      : opt_(options),
        arrivals_(options.arrivals, derive_seed(options.seed, 1)),
        route_rng_(derive_seed(options.seed, 2)),
        jitter_rng_(derive_seed(options.seed, 3)) {
    RCARB_CHECK(opt_.resources >= 1, "need at least one resource");
    RCARB_CHECK(opt_.ports >= 1 && opt_.ports <= core::kMaxWideInputs,
                "ports per resource must be in [1, kMaxWideInputs]");
    RCARB_CHECK(opt_.service_cycles >= 1, "service_cycles must be positive");
    RCARB_CHECK(opt_.queue_capacity >= 1, "queue_capacity must be positive");
    RCARB_CHECK(opt_.util_window >= 1, "util_window must be positive");
    RCARB_CHECK(opt_.arbiter_arity >= 2 && opt_.arbiter_arity <= 4,
                "arbiter_arity must be in [2, 4]");
    RCARB_CHECK(opt_.arbiter_kind != core::ArbiterChoice::kAuto ||
                    opt_.arbiter_fmax_budget_mhz > 0.0,
                "arbiter_kind kAuto needs arbiter_fmax_budget_mhz > 0 (the "
                "fmax floor the selected structure must meet)");
    kind_ = core::resolve_arbiter_choice(opt_.arbiter_kind, opt_.ports,
                                         opt_.arbiter_fmax_budget_mhz,
                                         opt_.arbiter_arity);
    stats_.per_resource.resize(static_cast<std::size_t>(opt_.resources));
    for (int r = 0; r < opt_.resources; ++r) {
      auto& rs = stats_.per_resource[static_cast<std::size_t>(r)];
      reset_resource_stats(rs, "svc" + std::to_string(r), opt_.ports, kind_);
      res_.push_back(std::make_unique<ResourceState>(
          opt_.ports, kind_, opt_.arbiter_arity, &rs.arbiter));
    }
  }

  ServiceStats run() {
    for (std::uint64_t i = 0; i < opt_.warmup_cycles; ++i) step();
    reset_stats();  // measurement starts now; queues/rng/wheel carry over
    for (std::uint64_t i = 0; i < opt_.measure_cycles; ++i) step();
    finalize();
    return std::move(stats_);
  }

 private:
  void step() {
    // 1. Client retry loop: re-inject attempts whose backoff expired.
    if (auto it = wheel_.find(cycle_); it != wheel_.end()) {
      for (const Request& req : it->second) {
        ++stats_.retries;
        submit(req);
      }
      wheel_.erase(it);
    }
    // 2. Open-loop arrivals (these keep coming no matter what).
    const int n = arrivals_.step();
    for (int i = 0; i < n; ++i) {
      ++stats_.offered;
      submit(Request{cycle_, 0});
    }
    // 3. Dispatch + arbitrate + serve, one cycle per resource.
    for (int r = 0; r < opt_.resources; ++r) serve_one_cycle(r);
    ++cycle_;
  }

  void serve_one_cycle(int r) {
    ResourceState& st = *res_[static_cast<std::size_t>(r)];
    auto& rs = stats_.per_resource[static_cast<std::size_t>(r)];
    // Idle dispatch ports take the queue head (FIFO order).
    for (Slot& slot : st.slots) {
      if (slot.state != Slot::State::kIdle || st.queue.empty()) continue;
      slot.req = st.queue.front();
      st.queue.pop_front();
      slot.state = Slot::State::kWaiting;
    }
    // Fig. 8 request lines: waiting and serving slots keep Req asserted.
    // Words-encoded so widths past 64 work; at <= 64 ports the base
    // step_wide forwards to the word-based step() unchanged.
    std::fill(st.req_words.begin(), st.req_words.end(), 0);
    for (std::size_t p = 0; p < st.slots.size(); ++p)
      if (st.slots[p].state != Slot::State::kIdle)
        st.req_words[p >> 6] |= 1ull << (p & 63);
    const int g = st.arb.arbiter->step_wide(st.req_words);
    if (g >= 0) {
      Slot& slot = st.slots[static_cast<std::size_t>(g)];
      if (slot.state == Slot::State::kWaiting) {
        slot.state = Slot::State::kServing;
        slot.service_left = opt_.service_cycles;
      }
      if (slot.state == Slot::State::kServing) {
        ++st.busy_window;
        if (--slot.service_left == 0) complete(r, slot);
      }
    }
    // Windowed utilization with hysteresis: high_water arms shedding,
    // low_water disarms it.  Window boundaries are anchored at the last
    // stats reset so the measured run's first window is always full-width
    // regardless of the warmup length.
    if ((cycle_ + 1 - util_anchor_) %
            static_cast<std::uint64_t>(opt_.util_window) ==
        0) {
      const double util = static_cast<double>(st.busy_window) /
                          static_cast<double>(opt_.util_window);
      st.shed_armed =
          st.shed_armed ? (util > opt_.low_water) : (util > opt_.high_water);
      st.busy_window = 0;
    }
    rs.queue_depth.record(st.queue.size());
  }

  void complete(int r, Slot& slot) {
    auto& rs = stats_.per_resource[static_cast<std::size_t>(r)];
    const std::uint64_t sojourn = cycle_ - slot.req.arrival + 1;
    if (sojourn > static_cast<std::uint64_t>(opt_.retry.timeout)) {
      // The client gave up long ago: the service was real, the goodput is
      // not.  This is the mechanism behind blocking's congestion collapse.
      ++stats_.timed_out;
      ++rs.timed_out;
      diag(rcsim::DiagKind::kTimedOut, r);
    } else {
      ++stats_.completed;
      ++rs.completed;
      rs.latency.record(sojourn);
    }
    slot.state = Slot::State::kIdle;
    // Req drops next cycle's mask; the arbiter rotates to the next waiter.
  }

  void submit(const Request& req) {
    const int r =
        static_cast<int>(route_rng_.next_below(
            static_cast<std::uint64_t>(opt_.resources)));
    ResourceState& st = *res_[static_cast<std::size_t>(r)];
    auto& rs = stats_.per_resource[static_cast<std::size_t>(r)];
    ++rs.offered;
    const auto depth = static_cast<int>(st.queue.size());
    switch (opt_.policy) {
      case OverloadPolicy::kAdmitShed:
        if (st.shed_armed && depth >= opt_.admit_queue_threshold) {
          ++stats_.shed;
          ++rs.shed;
          diag(rcsim::DiagKind::kShed, r);
          retry_or_fail(req);
          return;
        }
        if (depth >= opt_.queue_capacity) {
          reject(req, r);
          return;
        }
        break;
      case OverloadPolicy::kTailDrop:
        if (depth >= opt_.queue_capacity) {
          reject(req, r);
          return;
        }
        break;
      case OverloadPolicy::kBlock:
        // The backlog bound only exists to keep memory finite; a real
        // blocking producer would simply stall here forever.
        if (depth >= opt_.queue_capacity * opt_.block_backlog_factor) {
          reject(req, r);
          return;
        }
        break;
    }
    st.queue.push_back(req);
  }

  void reject(const Request& req, int r) {
    ++stats_.rejected;
    ++stats_.per_resource[static_cast<std::size_t>(r)].rejected;
    diag(rcsim::DiagKind::kRejected, r);
    retry_or_fail(req);
  }

  void retry_or_fail(const Request& req) {
    if (req.attempts >= opt_.retry.max_retries) {
      ++stats_.budget_exhausted;  // terminal: the retry storm ends here
      return;
    }
    Request next = req;
    ++next.attempts;
    wheel_[cycle_ + retry_delay(opt_.retry, next.attempts, jitter_rng_)]
        .push_back(next);
  }

  void diag(rcsim::DiagKind kind, int resource) {
    if (static_cast<int>(stats_.diagnostics.size()) >= opt_.max_diagnostics)
      return;
    stats_.diagnostics.push_back({kind, cycle_, -1, resource, {}});
  }

  void reset_stats() {
    // The probes point into per_resource[r].arbiter, so every reset is in
    // place: the vector must never reallocate or be replaced.
    stats_.cycles = 0;
    stats_.offered = stats_.completed = stats_.timed_out = 0;
    stats_.rejected = stats_.shed = 0;
    stats_.retries = stats_.budget_exhausted = 0;
    stats_.latency = obs::Histogram{};
    stats_.queue_depth = obs::Histogram{};
    stats_.diagnostics.clear();
    for (std::size_t r = 0; r < stats_.per_resource.size(); ++r)
      reset_resource_stats(stats_.per_resource[r], "svc" + std::to_string(r),
                           opt_.ports, kind_);
    // The admission estimator restarts from a defined state: window phase
    // re-anchored here, empty busy count, shedding disarmed.  Before this
    // the warmup's partial window and armed/disarmed flag leaked into the
    // measured run, so measurements depended on warmup_cycles modulo
    // util_window.
    util_anchor_ = cycle_;
    for (auto& st : res_) {
      st->busy_window = 0;
      st->shed_armed = false;
    }
  }

  void finalize() {
    stats_.cycles = opt_.measure_cycles;
    for (std::size_t r = 0; r < res_.size(); ++r) {
      res_[r]->probe.finish();
      stats_.latency.merge(stats_.per_resource[r].latency);
      stats_.queue_depth.merge(stats_.per_resource[r].queue_depth);
    }
  }

  ServiceOptions opt_;
  ArrivalProcess arrivals_;
  Rng route_rng_;
  Rng jitter_rng_;
  std::vector<std::unique_ptr<ResourceState>> res_;
  std::map<std::uint64_t, std::vector<Request>> wheel_;  // retry timers
  std::uint64_t cycle_ = 0;
  std::uint64_t util_anchor_ = 0;  // cycle the util windows count from
  core::ArbiterKind kind_ = core::ArbiterKind::kFlatFsm;
  ServiceStats stats_;
};

}  // namespace

const char* to_string(OverloadPolicy p) {
  switch (p) {
    case OverloadPolicy::kBlock: return "block";
    case OverloadPolicy::kTailDrop: return "tail-drop";
    case OverloadPolicy::kAdmitShed: return "admit-shed";
  }
  return "?";
}

double ServiceStats::goodput() const {
  return cycles == 0 ? 0.0
                     : static_cast<double>(completed) /
                           static_cast<double>(cycles);
}

double ServiceStats::offered_rate() const {
  return cycles == 0 ? 0.0
                     : static_cast<double>(offered) /
                           static_cast<double>(cycles);
}

std::string ServiceStats::summarize() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "offered=%.4f/cyc goodput=%.4f/cyc timeout=%llu rej=%llu "
                "shed=%llu retry=%llu spent=%llu p99<=%llu",
                offered_rate(), goodput(),
                static_cast<unsigned long long>(timed_out),
                static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(shed),
                static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(budget_exhausted),
                static_cast<unsigned long long>(latency.percentile(0.99)));
  return buf;
}

ServiceStats run_service(const ServiceOptions& options) {
  return Engine(options).run();
}

double measure_capacity(ServiceOptions options) {
  // Saturate well past any plausible capacity under tail-drop (short,
  // bounded sojourns: the servers stay busy and almost nothing times
  // out), with retries off so the arrival stream is the only load.
  options.policy = OverloadPolicy::kTailDrop;
  options.arrivals = {};
  options.arrivals.kind = ArrivalKind::kPoisson;
  options.arrivals.rate = 2.0 * static_cast<double>(options.resources) /
                          static_cast<double>(options.service_cycles);
  options.retry.max_retries = 0;
  const ServiceStats s = run_service(options);
  return options.measure_cycles == 0
             ? 0.0
             : static_cast<double>(s.completed + s.timed_out) /
                   static_cast<double>(s.cycles);
}

}  // namespace rcarb::service
