// And-inverter graphs with structural hashing.
//
// The combinational core of every synthesized circuit is represented as an
// AIG: two-input AND nodes plus complemented edges.  Construction folds
// constants and hashes structurally, so logically identical subtrees are
// shared.  The LUT mapper (src/synth) consumes this graph.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "logic/cover.hpp"

namespace rcarb::aig {

/// A literal is (node_index << 1) | complemented.
using Lit = std::uint32_t;

inline constexpr Lit kConstFalse = 0;  // node 0 plain
inline constexpr Lit kConstTrue = 1;   // node 0 complemented

[[nodiscard]] inline std::uint32_t lit_node(Lit l) { return l >> 1; }
[[nodiscard]] inline bool lit_compl(Lit l) { return l & 1u; }
[[nodiscard]] inline Lit make_lit(std::uint32_t node, bool compl_) {
  return (node << 1) | (compl_ ? 1u : 0u);
}
[[nodiscard]] inline Lit lit_not(Lit l) { return l ^ 1u; }

/// An and-inverter graph.  Node 0 is the constant-false node; nodes
/// [1, 1+num_inputs) are primary inputs; the rest are AND nodes.
class Aig {
 public:
  Aig();

  /// Adds a primary input and returns its (plain) literal.
  Lit add_input(std::string name);

  /// Registers a named primary output.
  void add_output(std::string name, Lit driver);

  /// Constant-folding, structurally hashed AND.
  [[nodiscard]] Lit land(Lit a, Lit b);
  [[nodiscard]] Lit lor(Lit a, Lit b) {
    return lit_not(land(lit_not(a), lit_not(b)));
  }
  [[nodiscard]] Lit lxor(Lit a, Lit b);
  /// if s then t else e.
  [[nodiscard]] Lit mux(Lit s, Lit t, Lit e);

  /// AND / OR over a list (balanced tree for shallow depth).
  [[nodiscard]] Lit land_many(std::vector<Lit> lits);
  [[nodiscard]] Lit lor_many(std::vector<Lit> lits);

  /// Kogge-Stone parallel-prefix OR: out[i] = OR(lits[0..i]).  O(n log n)
  /// nodes at O(log n) depth, and — unlike a shared reduction tree — every
  /// intermediate literal feeds at most two later prefix nodes, so no net
  /// accumulates O(n) fanout when the result drives per-bit logic.  The
  /// suffix variant is the same network over the reversed list.
  [[nodiscard]] std::vector<Lit> lor_prefix(std::vector<Lit> lits);
  [[nodiscard]] std::vector<Lit> lor_suffix(std::vector<Lit> lits);

  /// Builds a cover (SOP): inputs[i] is the literal for cover variable i.
  [[nodiscard]] Lit from_cover(const logic::Cover& cover,
                               const std::vector<Lit>& inputs);

  /// Instantiates every AND node of `src` into this graph, substituting
  /// src's primary input i by input_map[i].  Returns src's output drivers
  /// mapped into this graph (src's output names are not registered here).
  /// Structural hashing applies across the boundary, so two instantiations
  /// over the same literals share nodes.
  [[nodiscard]] std::vector<Lit> append(const Aig& src,
                                        const std::vector<Lit>& input_map);

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_inputs() const { return input_names_.size(); }
  [[nodiscard]] std::size_t num_ands() const {
    return nodes_.size() - 1 - input_names_.size();
  }
  [[nodiscard]] std::size_t num_outputs() const { return outputs_.size(); }

  [[nodiscard]] bool is_input(std::uint32_t node) const {
    return node >= 1 && node < 1 + input_names_.size();
  }
  [[nodiscard]] bool is_and(std::uint32_t node) const {
    return node >= 1 + input_names_.size() && node < nodes_.size();
  }
  /// Input ordinal of an input node.
  [[nodiscard]] std::size_t input_ordinal(std::uint32_t node) const;

  /// Fanins of an AND node.
  [[nodiscard]] Lit fanin0(std::uint32_t node) const;
  [[nodiscard]] Lit fanin1(std::uint32_t node) const;

  [[nodiscard]] const std::string& input_name(std::size_t ordinal) const {
    return input_names_[ordinal];
  }
  [[nodiscard]] const std::string& output_name(std::size_t i) const {
    return outputs_[i].name;
  }
  [[nodiscard]] Lit output_driver(std::size_t i) const {
    return outputs_[i].driver;
  }

  /// Logic level (AND depth) of every node; inputs/constant are level 0.
  [[nodiscard]] std::vector<int> levels() const;

  /// Maximum output level.
  [[nodiscard]] int depth() const;

  /// 64-way parallel simulation: pattern word per input, returns the pattern
  /// word of every node (indexed by node id).
  [[nodiscard]] std::vector<std::uint64_t> simulate(
      const std::vector<std::uint64_t>& input_patterns) const;

  /// Evaluates one output on a single assignment (bit i = input i).
  [[nodiscard]] bool eval_output(std::size_t output_index,
                                 std::uint64_t assignment) const;

 private:
  struct Node {
    Lit fanin0 = 0;
    Lit fanin1 = 0;
  };
  struct Output {
    std::string name;
    Lit driver;
  };
  struct AndKey {
    Lit a, b;
    bool operator==(const AndKey&) const = default;
  };
  struct AndKeyHash {
    std::size_t operator()(const AndKey& k) const {
      return static_cast<std::size_t>(
          (static_cast<std::uint64_t>(k.a) << 32 | k.b) *
          0x9e3779b97f4a7c15ull >> 17);
    }
  };

  std::vector<Node> nodes_;
  std::vector<std::string> input_names_;
  std::vector<Output> outputs_;
  std::unordered_map<AndKey, std::uint32_t, AndKeyHash> strash_;
};

}  // namespace rcarb::aig
