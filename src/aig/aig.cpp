#include "aig/aig.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace rcarb::aig {

Aig::Aig() {
  nodes_.push_back({});  // node 0: constant false
}

Lit Aig::add_input(std::string name) {
  RCARB_CHECK(num_ands() == 0,
              "all inputs must be added before any AND node");
  nodes_.push_back({});
  input_names_.push_back(std::move(name));
  return make_lit(static_cast<std::uint32_t>(nodes_.size() - 1), false);
}

void Aig::add_output(std::string name, Lit driver) {
  RCARB_CHECK(lit_node(driver) < nodes_.size(), "output driver out of range");
  outputs_.push_back({std::move(name), driver});
}

Lit Aig::land(Lit a, Lit b) {
  RCARB_CHECK(lit_node(a) < nodes_.size() && lit_node(b) < nodes_.size(),
              "AND fanin out of range");
  // Constant folding and trivial cases.
  if (a == kConstFalse || b == kConstFalse) return kConstFalse;
  if (a == kConstTrue) return b;
  if (b == kConstTrue) return a;
  if (a == b) return a;
  if (a == lit_not(b)) return kConstFalse;
  // Canonical order for hashing.
  if (a > b) std::swap(a, b);
  const AndKey key{a, b};
  if (auto it = strash_.find(key); it != strash_.end())
    return make_lit(it->second, false);
  nodes_.push_back({a, b});
  const auto node = static_cast<std::uint32_t>(nodes_.size() - 1);
  strash_.emplace(key, node);
  return make_lit(node, false);
}

Lit Aig::lxor(Lit a, Lit b) {
  // a^b = (a & ~b) | (~a & b)
  return lor(land(a, lit_not(b)), land(lit_not(a), b));
}

Lit Aig::mux(Lit s, Lit t, Lit e) {
  return lor(land(s, t), land(lit_not(s), e));
}

Lit Aig::land_many(std::vector<Lit> lits) {
  if (lits.empty()) return kConstTrue;
  while (lits.size() > 1) {
    std::vector<Lit> next;
    next.reserve((lits.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < lits.size(); i += 2)
      next.push_back(land(lits[i], lits[i + 1]));
    if (lits.size() % 2 != 0) next.push_back(lits.back());
    lits = std::move(next);
  }
  return lits.front();
}

Lit Aig::lor_many(std::vector<Lit> lits) {
  for (Lit& l : lits) l = lit_not(l);
  return lit_not(land_many(std::move(lits)));
}

std::vector<Lit> Aig::lor_prefix(std::vector<Lit> lits) {
  // Each stage combines in place from the top down, so lits[i - d] is
  // still the previous stage's value when lits[i] reads it.
  for (std::size_t d = 1; d < lits.size(); d <<= 1)
    for (std::size_t i = lits.size(); i-- > d;)
      lits[i] = lor(lits[i], lits[i - d]);
  return lits;
}

std::vector<Lit> Aig::lor_suffix(std::vector<Lit> lits) {
  std::reverse(lits.begin(), lits.end());
  lits = lor_prefix(std::move(lits));
  std::reverse(lits.begin(), lits.end());
  return lits;
}

Lit Aig::from_cover(const logic::Cover& cover,
                    const std::vector<Lit>& inputs) {
  RCARB_CHECK(static_cast<int>(inputs.size()) >= cover.num_vars(),
              "not enough input literals for the cover");
  std::vector<Lit> terms;
  terms.reserve(cover.size());
  for (const logic::Cube& cube : cover.cubes()) {
    // Fold literals as a left-leaning chain in ascending variable order:
    // cubes sharing a literal prefix then share AIG structure through the
    // strash table (priority-scan guards share long ~R prefixes).
    Lit term = kConstTrue;
    for (int v = 0; v < cover.num_vars(); ++v) {
      if (!cube.has_var(v)) continue;
      const Lit in = inputs[static_cast<std::size_t>(v)];
      term = land(term, cube.polarity(v) ? in : lit_not(in));
    }
    terms.push_back(term);
  }
  return lor_many(std::move(terms));
}

std::vector<Lit> Aig::append(const Aig& src,
                             const std::vector<Lit>& input_map) {
  RCARB_CHECK(input_map.size() == src.num_inputs(),
              "append needs one literal per source input");
  // Plain literal of every src node once instantiated here.
  std::vector<Lit> lit_of(src.nodes_.size(), kConstFalse);
  for (std::size_t i = 0; i < input_map.size(); ++i)
    lit_of[i + 1] = input_map[i];
  auto mapped = [&](Lit l) {
    const Lit m = lit_of[lit_node(l)];
    return lit_compl(l) ? lit_not(m) : m;
  };
  for (std::uint32_t n = 0; n < src.nodes_.size(); ++n) {
    if (!src.is_and(n)) continue;
    lit_of[n] = land(mapped(src.nodes_[n].fanin0),
                     mapped(src.nodes_[n].fanin1));
  }
  std::vector<Lit> outs;
  outs.reserve(src.outputs_.size());
  for (const Output& o : src.outputs_) outs.push_back(mapped(o.driver));
  return outs;
}

std::size_t Aig::input_ordinal(std::uint32_t node) const {
  RCARB_CHECK(is_input(node), "input_ordinal of a non-input node");
  return node - 1;
}

Lit Aig::fanin0(std::uint32_t node) const {
  RCARB_CHECK(is_and(node), "fanin of a non-AND node");
  return nodes_[node].fanin0;
}

Lit Aig::fanin1(std::uint32_t node) const {
  RCARB_CHECK(is_and(node), "fanin of a non-AND node");
  return nodes_[node].fanin1;
}

std::vector<int> Aig::levels() const {
  std::vector<int> level(nodes_.size(), 0);
  for (std::uint32_t n = 0; n < nodes_.size(); ++n) {
    if (!is_and(n)) continue;
    level[n] = 1 + std::max(level[lit_node(nodes_[n].fanin0)],
                            level[lit_node(nodes_[n].fanin1)]);
  }
  return level;
}

int Aig::depth() const {
  const auto level = levels();
  int d = 0;
  for (const Output& o : outputs_) d = std::max(d, level[lit_node(o.driver)]);
  return d;
}

std::vector<std::uint64_t> Aig::simulate(
    const std::vector<std::uint64_t>& input_patterns) const {
  RCARB_CHECK(input_patterns.size() == input_names_.size(),
              "pattern count must equal input count");
  std::vector<std::uint64_t> value(nodes_.size(), 0);
  for (std::size_t i = 0; i < input_patterns.size(); ++i)
    value[i + 1] = input_patterns[i];
  auto lit_value = [&](Lit l) {
    const std::uint64_t v = value[lit_node(l)];
    return lit_compl(l) ? ~v : v;
  };
  for (std::uint32_t n = 0; n < nodes_.size(); ++n) {
    if (!is_and(n)) continue;
    value[n] = lit_value(nodes_[n].fanin0) & lit_value(nodes_[n].fanin1);
  }
  return value;
}

bool Aig::eval_output(std::size_t output_index,
                      std::uint64_t assignment) const {
  RCARB_CHECK(output_index < outputs_.size(), "output index out of range");
  std::vector<std::uint64_t> patterns(input_names_.size(), 0);
  for (std::size_t i = 0; i < patterns.size(); ++i)
    patterns[i] = ((assignment >> i) & 1u) ? ~0ull : 0ull;
  const auto value = simulate(patterns);
  const Lit d = outputs_[output_index].driver;
  const std::uint64_t v = value[lit_node(d)];
  return ((lit_compl(d) ? ~v : v) & 1u) != 0;
}

}  // namespace rcarb::aig
