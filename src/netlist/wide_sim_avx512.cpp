// 512-lane AVX-512F kernel for WideLaneSimulator.
//
// Compiled with -mavx512f (see netlist/CMakeLists.txt); nothing here runs
// before the cpuid gate in the WideLaneSimulator constructor.  This TU
// instantiates exactly one engine type, WideSimImpl<Avx512Word>, so no
// AVX-512-compiled symbol can be COMDAT-merged into baseline code paths.
#include "netlist/wide_sim_impl.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace rcarb::netlist::detail {
namespace {

struct Avx512Word {
  static constexpr std::size_t kWords = 8;
  __m512i v;

  static Avx512Word zero() { return {_mm512_setzero_si512()}; }
  static Avx512Word ones() { return {_mm512_set1_epi64(-1)}; }
  static Avx512Word broadcast(std::uint64_t x) {
    return {_mm512_set1_epi64(static_cast<long long>(x))};
  }
  static Avx512Word load(const std::uint64_t* p) {
    return {_mm512_loadu_si512(p)};
  }
  static void store(Avx512Word w, std::uint64_t* p) {
    _mm512_storeu_si512(p, w.v);
  }
  /// (t0 & ~sel) | (t1 & sel) is a single ternary-logic op: truth table
  /// over (A=t0, B=t1, C=sel) sets imm8 bits {3,4,6,7} = 0xD8.
  static Avx512Word mux(Avx512Word t0, Avx512Word t1, Avx512Word s) {
    return {_mm512_ternarylogic_epi64(t0.v, t1.v, s.v, 0xD8)};
  }
  static bool equal(Avx512Word a, Avx512Word b) {
    return _mm512_cmpneq_epu64_mask(a.v, b.v) == 0;
  }
};

}  // namespace

std::unique_ptr<WideSimBase> make_wide_sim_avx512(const Netlist& nl,
                                                  std::size_t lanes,
                                                  SettleMode mode) {
  if (lanes != Avx512Word::kWords * 64) return nullptr;
  return std::make_unique<WideSimImpl<Avx512Word>>(nl, lanes, mode);
}

}  // namespace rcarb::netlist::detail

#else  // compiler lacked -mavx512f support for this TU

namespace rcarb::netlist::detail {

std::unique_ptr<WideSimBase> make_wide_sim_avx512(const Netlist&,
                                                  std::size_t, SettleMode) {
  return nullptr;
}

}  // namespace rcarb::netlist::detail

#endif
