#include "netlist/simulator.hpp"

#include <algorithm>
#include <functional>

#include "support/check.hpp"

namespace rcarb::netlist {

Simulator::Simulator(const Netlist& netlist, SettleMode mode)
    : netlist_(netlist),
      mode_(mode),
      topo_(netlist.lut_topo_order()),
      value_(netlist.num_nets(), 0),
      dff_sample_(netlist.num_dffs(), 0) {
  if (mode_ == SettleMode::kEventDriven) {
    fanouts_ = netlist.lut_fanouts();
    rank_of_lut_.resize(netlist.num_luts());
    for (std::size_t rank = 0; rank < topo_.size(); ++rank)
      rank_of_lut_[topo_[rank]] = static_cast<std::uint32_t>(rank);
    queued_.assign(netlist.num_luts(), 0);
    dirty_heap_.reserve(netlist.num_luts());
  }
  reset();
}

void Simulator::reset() {
  std::fill(value_.begin(), value_.end(), 0);
  for (const Dff& dff : netlist_.dffs()) value_[dff.q] = dff.init ? 1 : 0;
  // A wholesale state overwrite invalidates any incremental bookkeeping;
  // start the event-driven simulator from a proven full pass.
  full_resettle_pending_ = true;
  settle();
}

void Simulator::set_input(NetId net, bool value) {
  RCARB_CHECK(netlist_.driver_kind(net) == DriverKind::kPrimaryInput,
              "set_input on a non-input net");
  const char v = value ? 1 : 0;
  if (value_[net] == v) return;
  value_[net] = v;
  if (mode_ == SettleMode::kEventDriven) mark_fanouts_dirty(net);
}

void Simulator::set_input(const std::string& name, bool value) {
  set_input(resolve(name, "unknown input net: "), value);
}

void Simulator::mark_fanouts_dirty(NetId net) {
  for (std::uint32_t lut : fanouts_[net]) {
    if (queued_[lut]) continue;
    queued_[lut] = 1;
    dirty_heap_.push_back(rank_of_lut_[lut]);
    std::push_heap(dirty_heap_.begin(), dirty_heap_.end(),
                   std::greater<std::uint32_t>{});
  }
}

void Simulator::settle() {
  if (mode_ == SettleMode::kFullTopo || full_resettle_pending_) {
    settle_full();
  } else {
    settle_event();
  }
}

void Simulator::settle_full() {
  for (std::size_t i : topo_) {
    const Lut& lut = netlist_.luts()[i];
    std::uint64_t row = 0;
    for (std::size_t b = 0; b < lut.inputs.size(); ++b)
      if (value_[lut.inputs[b]]) row |= std::uint64_t{1} << b;
    value_[lut.output] = (lut.mask >> row) & 1u;
  }
  luts_evaluated_ += topo_.size();
  ++full_settles_;
  // Everything has been re-evaluated, so pending dirty marks are stale.
  if (mode_ == SettleMode::kEventDriven) {
    for (std::uint32_t rank : dirty_heap_) queued_[topo_[rank]] = 0;
    dirty_heap_.clear();
    full_resettle_pending_ = false;
  }
}

void Simulator::settle_event() {
  // Drain dirty LUTs in topological rank order: every LUT is evaluated
  // after all of its dirty predecessors, so one visit per LUT suffices.
  while (!dirty_heap_.empty()) {
    std::pop_heap(dirty_heap_.begin(), dirty_heap_.end(),
                  std::greater<std::uint32_t>{});
    const std::size_t i = topo_[dirty_heap_.back()];
    dirty_heap_.pop_back();
    queued_[i] = 0;
    const Lut& lut = netlist_.luts()[i];
    std::uint64_t row = 0;
    for (std::size_t b = 0; b < lut.inputs.size(); ++b)
      if (value_[lut.inputs[b]]) row |= std::uint64_t{1} << b;
    const char out = static_cast<char>((lut.mask >> row) & 1u);
    ++luts_evaluated_;
    if (value_[lut.output] == out) continue;
    value_[lut.output] = out;
    mark_fanouts_dirty(lut.output);
  }
  ++event_settles_;
}

void Simulator::clock() {
  // Sample every d first so the update is simultaneous.
  for (std::size_t i = 0; i < netlist_.num_dffs(); ++i)
    dff_sample_[i] = value_[netlist_.dffs()[i].d];
  for (std::size_t i = 0; i < netlist_.num_dffs(); ++i) {
    const Dff& dff = netlist_.dffs()[i];
    if (value_[dff.q] == dff_sample_[i]) continue;
    value_[dff.q] = dff_sample_[i];
    if (mode_ == SettleMode::kEventDriven) mark_fanouts_dirty(dff.q);
  }
  settle();
}

void Simulator::poke_register(NetId net, bool value) {
  RCARB_CHECK(netlist_.driver_kind(net) == DriverKind::kDff,
              "poke_register on a non-register net");
  // A poked q net dirties exactly its fanout cone — the same discipline
  // clock() applies when that register changes — so event-driven settling
  // stays incremental across fault injection.
  const char poked = value ? 1 : 0;
  if (value_[net] != poked) {
    value_[net] = poked;
    if (mode_ == SettleMode::kEventDriven) mark_fanouts_dirty(net);
  }
  settle();
}

void Simulator::poke_register(const std::string& name, bool value) {
  poke_register(resolve(name, "unknown register net: "), value);
}

bool Simulator::get(NetId net) const {
  RCARB_CHECK(net < netlist_.num_nets(), "net out of range");
  return value_[net] != 0;
}

bool Simulator::get(const std::string& name) const {
  return get(resolve(name, "unknown net: "));
}

NetId Simulator::resolve(const std::string& name, const char* what) const {
  ++name_lookups_;
  const auto net = netlist_.find_net(name);
  RCARB_CHECK(net.has_value(), what + name);
  return *net;
}

}  // namespace rcarb::netlist
