#include "netlist/simulator.hpp"

#include "support/check.hpp"

namespace rcarb::netlist {

Simulator::Simulator(const Netlist& netlist)
    : netlist_(netlist),
      topo_(netlist.lut_topo_order()),
      value_(netlist.num_nets(), 0) {
  reset();
}

void Simulator::reset() {
  std::fill(value_.begin(), value_.end(), 0);
  for (const Dff& dff : netlist_.dffs()) value_[dff.q] = dff.init ? 1 : 0;
  settle();
}

void Simulator::set_input(NetId net, bool value) {
  RCARB_CHECK(netlist_.driver_kind(net) == DriverKind::kPrimaryInput,
              "set_input on a non-input net");
  value_[net] = value ? 1 : 0;
}

void Simulator::set_input(const std::string& name, bool value) {
  const auto net = netlist_.find_net(name);
  RCARB_CHECK(net.has_value(), "unknown input net: " + name);
  set_input(*net, value);
}

void Simulator::settle() {
  for (std::size_t i : topo_) {
    const Lut& lut = netlist_.luts()[i];
    std::size_t row = 0;
    for (std::size_t b = 0; b < lut.inputs.size(); ++b)
      if (value_[lut.inputs[b]]) row |= 1u << b;
    value_[lut.output] = (lut.mask >> row) & 1u;
  }
}

void Simulator::clock() {
  // Sample every d first so the update is simultaneous.
  std::vector<char> sampled(netlist_.num_dffs());
  for (std::size_t i = 0; i < netlist_.num_dffs(); ++i)
    sampled[i] = value_[netlist_.dffs()[i].d];
  for (std::size_t i = 0; i < netlist_.num_dffs(); ++i)
    value_[netlist_.dffs()[i].q] = sampled[i];
  settle();
}

void Simulator::poke_register(NetId net, bool value) {
  RCARB_CHECK(netlist_.driver_kind(net) == DriverKind::kDff,
              "poke_register on a non-register net");
  value_[net] = value ? 1 : 0;
  settle();
}

void Simulator::poke_register(const std::string& name, bool value) {
  const auto net = netlist_.find_net(name);
  RCARB_CHECK(net.has_value(), "unknown register net: " + name);
  poke_register(*net, value);
}

bool Simulator::get(NetId net) const {
  RCARB_CHECK(net < netlist_.num_nets(), "net out of range");
  return value_[net] != 0;
}

bool Simulator::get(const std::string& name) const {
  const auto net = netlist_.find_net(name);
  RCARB_CHECK(net.has_value(), "unknown net: " + name);
  return get(*net);
}

}  // namespace rcarb::netlist
