#include "netlist/vhdl_emit.hpp"

#include <map>
#include <set>
#include <sstream>

#include "support/check.hpp"
#include "support/text.hpp"

namespace rcarb::netlist {

namespace {

/// VHDL identifier from an arbitrary net name.
std::string sanitize(const std::string& name) {
  std::string id;
  for (char ch : name) {
    if ((ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
        (ch >= '0' && ch <= '9'))
      id += ch;
    else
      id += '_';
  }
  if (id.empty() || !((id[0] >= 'a' && id[0] <= 'z') ||
                      (id[0] >= 'A' && id[0] <= 'Z')))
    id = "n_" + id;
  return id;
}

}  // namespace

std::string emit_vhdl(const Netlist& nl, const std::string& entity_name) {
  RCARB_CHECK(is_identifier(entity_name), "entity name must be an identifier");

  // Unique VHDL name per net.
  std::vector<std::string> vname(nl.num_nets());
  std::set<std::string> used{"clk", "rst"};
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    std::string base = sanitize(nl.net_name(n));
    std::string candidate = base;
    int suffix = 1;
    while (used.contains(candidate))
      candidate = base + "_" + std::to_string(suffix++);
    used.insert(candidate);
    vname[n] = candidate;
  }

  std::ostringstream os;
  os << "-- Structural netlist emitted by rcarb (LUT/DFF level).\n"
     << "library ieee;\nuse ieee.std_logic_1164.all;\n\n"
     << "entity " << entity_name << " is\n  port (\n"
     << "    clk : in std_logic;\n    rst : in std_logic";
  for (NetId in : nl.inputs())
    os << ";\n    " << vname[in] << " : in std_logic";
  for (std::size_t o = 0; o < nl.outputs().size(); ++o)
    os << ";\n    " << sanitize(nl.outputs()[o].second) << "_o"
       << " : out std_logic";
  os << "\n  );\nend entity " << entity_name << ";\n\n"
     << "architecture structural of " << entity_name << " is\n";
  for (const Lut& lut : nl.luts())
    os << "  signal " << vname[lut.output] << " : std_logic;\n";
  for (const Dff& dff : nl.dffs())
    os << "  signal " << vname[dff.q] << " : std_logic;\n";
  os << "begin\n";

  // LUTs as selected signal assignments over the concatenated inputs.
  std::size_t lut_index = 0;
  for (const Lut& lut : nl.luts()) {
    if (lut.inputs.empty()) {
      os << "  " << vname[lut.output] << " <= '"
         << ((lut.mask & 1u) ? '1' : '0') << "';\n";
      ++lut_index;
      continue;
    }
    // Selector: MSB = highest input index, matching row = sum(bit_i << i).
    std::vector<std::string> sel;
    for (std::size_t i = lut.inputs.size(); i-- > 0;)
      sel.push_back(vname[lut.inputs[i]]);
    os << "  lut" << lut_index << ": with std_logic_vector'("
       << join(sel, " & ") << ") select\n    " << vname[lut.output]
       << " <=\n";
    const std::size_t rows = 1u << lut.inputs.size();
    for (std::size_t row = 0; row < rows; ++row) {
      std::string pattern;
      for (std::size_t i = lut.inputs.size(); i-- > 0;)
        pattern += ((row >> i) & 1u) ? '1' : '0';
      os << "      '" << (((lut.mask >> row) & 1u) ? '1' : '0') << "' when \""
         << pattern << "\",\n";
    }
    os << "      '0' when others;\n";
    ++lut_index;
  }

  // The register bank: synchronous capture, asynchronous init-value reset.
  if (nl.num_dffs() > 0) {
    os << "\n  registers: process (clk, rst)\n  begin\n"
       << "    if rst = '1' then\n";
    for (const Dff& dff : nl.dffs())
      os << "      " << vname[dff.q] << " <= '" << (dff.init ? '1' : '0')
         << "';\n";
    os << "    elsif rising_edge(clk) then\n";
    for (const Dff& dff : nl.dffs())
      os << "      " << vname[dff.q] << " <= " << vname[dff.d] << ";\n";
    os << "    end if;\n  end process;\n";
  }

  os << "\n";
  for (const auto& [net, name] : nl.outputs())
    os << "  " << sanitize(name) << "_o <= " << vname[net] << ";\n";
  os << "end architecture structural;\n";
  return os.str();
}

}  // namespace rcarb::netlist
