#include "netlist/netlist.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace rcarb::netlist {

NetId Netlist::new_net(DriverKind kind, std::size_t index, std::string name) {
  RCARB_CHECK(!net_by_name_.contains(name), "duplicate net name: " + name);
  const NetId id = static_cast<NetId>(driver_kind_.size());
  driver_kind_.push_back(kind);
  driver_index_.push_back(index);
  net_by_name_.emplace(name, id);
  net_name_.push_back(std::move(name));
  return id;
}

NetId Netlist::add_input(std::string name) {
  const NetId id = new_net(DriverKind::kPrimaryInput, inputs_.size(),
                           std::move(name));
  inputs_.push_back(id);
  return id;
}

NetId Netlist::add_lut(std::vector<NetId> inputs, std::uint16_t mask,
                       std::string name) {
  RCARB_CHECK(inputs.size() <= kMaxLutInputs, "LUT input count exceeds k");
  for (NetId in : inputs)
    RCARB_CHECK(in < num_nets(), "LUT input net out of range");
  const std::size_t index = luts_.size();
  const NetId out = new_net(DriverKind::kLut, index, std::move(name));
  luts_.push_back({std::move(inputs), mask, out});
  return out;
}

NetId Netlist::add_dff(NetId d, bool init, std::string name) {
  const std::size_t index = dffs_.size();
  const NetId q = new_net(DriverKind::kDff, index, std::move(name));
  dffs_.push_back({d, q, init});
  return q;
}

void Netlist::connect_dff_d(std::size_t dff_index, NetId d) {
  RCARB_CHECK(dff_index < dffs_.size(), "DFF index out of range");
  RCARB_CHECK(d < num_nets(), "DFF d net out of range");
  dffs_[dff_index].d = d;
}

void Netlist::mark_output(NetId net, std::string name) {
  RCARB_CHECK(net < num_nets(), "output net out of range");
  // The output name becomes an alias of the net so callers can address the
  // port by its interface name (find_net resolves either).
  if (!net_by_name_.contains(name)) net_by_name_.emplace(name, net);
  outputs_.emplace_back(net, std::move(name));
}

DriverKind Netlist::driver_kind(NetId net) const {
  RCARB_CHECK(net < num_nets(), "net out of range");
  return driver_kind_[net];
}

std::size_t Netlist::driver_index(NetId net) const {
  RCARB_CHECK(net < num_nets(), "net out of range");
  return driver_index_[net];
}

const std::string& Netlist::net_name(NetId net) const {
  RCARB_CHECK(net < num_nets(), "net out of range");
  return net_name_[net];
}

std::optional<NetId> Netlist::find_net(const std::string& name) const {
  if (auto it = net_by_name_.find(name); it != net_by_name_.end())
    return it->second;
  return std::nullopt;
}

std::vector<std::size_t> Netlist::fanout_counts() const {
  std::vector<std::size_t> fanout(num_nets(), 0);
  for (const Lut& lut : luts_)
    for (NetId in : lut.inputs) ++fanout[in];
  for (const Dff& dff : dffs_) ++fanout[dff.d];
  for (const auto& [net, name] : outputs_) ++fanout[net];
  return fanout;
}

std::size_t Netlist::max_fanout() const {
  const std::vector<std::size_t> fanout = fanout_counts();
  std::size_t best = 0;
  for (const std::size_t f : fanout) best = std::max(best, f);
  return best;
}

std::vector<std::vector<std::uint32_t>> Netlist::lut_fanouts() const {
  std::vector<std::vector<std::uint32_t>> fanouts(num_nets());
  for (std::size_t i = 0; i < luts_.size(); ++i) {
    for (NetId in : luts_[i].inputs) {
      // A LUT may read the same net on several pins; record it once.
      auto& sinks = fanouts[in];
      if (sinks.empty() || sinks.back() != static_cast<std::uint32_t>(i))
        sinks.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return fanouts;
}

std::vector<std::size_t> Netlist::lut_topo_order() const {
  // Kahn's algorithm over LUT→LUT dependencies (inputs and DFF outputs are
  // sources and impose no ordering).
  std::vector<std::size_t> pending(luts_.size(), 0);
  std::vector<std::vector<std::size_t>> dependents(luts_.size());
  for (std::size_t i = 0; i < luts_.size(); ++i) {
    for (NetId in : luts_[i].inputs) {
      if (driver_kind_[in] == DriverKind::kLut) {
        ++pending[i];
        dependents[driver_index_[in]].push_back(i);
      }
    }
  }
  std::vector<std::size_t> order;
  order.reserve(luts_.size());
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < luts_.size(); ++i)
    if (pending[i] == 0) ready.push_back(i);
  while (!ready.empty()) {
    const std::size_t i = ready.back();
    ready.pop_back();
    order.push_back(i);
    for (std::size_t dep : dependents[i])
      if (--pending[dep] == 0) ready.push_back(dep);
  }
  RCARB_CHECK(order.size() == luts_.size(),
              "combinational loop detected in netlist");
  return order;
}

}  // namespace rcarb::netlist
