// Internal engine template behind netlist::WideLaneSimulator.
//
// This header is included by exactly three translation units:
//
//   wide_simulator.cpp   — portable kernels (std::array-style uint64 words,
//                          compiled with the project's baseline flags),
//   wide_sim_avx2.cpp    — the 256-lane kernel (compiled with -mavx2),
//   wide_sim_avx512.cpp  — the 512-lane kernel (compiled with -mavx512f).
//
// ODR discipline: the AVX translation units instantiate *only* their own
// word types (WideSimImpl<Avx2Word> / WideSimImpl<Avx512Word>), so no
// symbol compiled with a wider ISA can ever be COMDAT-selected into a
// binary path that runs before the cpuid check.  All shared, non-template
// machinery — the SoA construction, the dirty-bitmask bookkeeping — lives
// out-of-line in WideSimBase, compiled once with baseline flags in
// wide_simulator.cpp.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/simulator.hpp"  // SettleMode

namespace rcarb::netlist::detail {

/// Structure-of-arrays view of a Netlist, in LUT topological order: the
/// per-LUT input ids, arity, mask and output id live in contiguous
/// per-field arrays, so a settle pass streams cache lines front to back
/// instead of chasing `Lut` structs through `std::vector<NetId>` heads.
/// All LUT coordinates are *topo positions* (position == topological
/// rank), which makes the event-driven dirty set a bitmask over positions
/// swept front to back.
struct SoaNetlist {
  explicit SoaNetlist(const Netlist& nl);

  std::uint32_t num_nets = 0;
  std::uint32_t num_luts = 0;
  std::uint32_t num_dffs = 0;

  // Per LUT at topo position p (inputs padded to kMaxLutInputs; only the
  // first arity[p] entries are read).
  std::vector<std::uint32_t> in;      // kMaxLutInputs * num_luts
  std::vector<std::uint8_t> arity;    // num_luts
  std::vector<std::uint16_t> mask;    // num_luts
  std::vector<std::uint32_t> out;     // num_luts, output NetId
  // Row offsets: LUT p's 2^arity[p] truth-table rows live at
  // [rows_begin[p], rows_begin[p+1]) in row_splat.
  std::vector<std::uint32_t> rows_begin;  // num_luts + 1
  // Truth-table rows as 8-byte splat words (0 or ~0), broadcast to the
  // lane width at eval time.  Storing one word per row instead of a full
  // lane row keeps the whole table L1-resident at every width (a 512-lane
  // expansion would be 64 bytes per row — larger than L1 for campaign
  // netlists — and the first fold level is the only consumer).
  std::vector<std::uint64_t> row_splat;

  // CSR fanouts: topo positions of the LUTs reading each net.
  std::vector<std::uint32_t> fanout_begin;  // num_nets + 1
  std::vector<std::uint32_t> fanout_pos;

  // DFFs, same order as Netlist::dffs().
  std::vector<std::uint32_t> dff_d;
  std::vector<std::uint32_t> dff_q;
  std::vector<std::uint8_t> dff_init;
};

/// Width- and ISA-agnostic part of the wide engine: SoA view, settle-mode
/// state, the dirty-LUT bitmask, and the instrumentation counters.  The
/// virtual API mirrors WideLaneSimulator minus name resolution and
/// argument checking (the front end owns both).
class WideSimBase {
 public:
  virtual ~WideSimBase();
  WideSimBase(const WideSimBase&) = delete;
  WideSimBase& operator=(const WideSimBase&) = delete;

  virtual void reset() = 0;
  /// `words` points at lanes()/64 uint64 values, lane l = bit l%64 of
  /// word l/64.
  virtual void set_input_word(NetId net, const std::uint64_t* words) = 0;
  virtual void settle() = 0;
  virtual void clock() = 0;
  virtual void poke_register_word(NetId net, const std::uint64_t* words) = 0;
  virtual void get_word(NetId net, std::uint64_t* out) const = 0;

  [[nodiscard]] std::size_t lanes() const { return lanes_; }
  [[nodiscard]] std::size_t words() const { return words_; }
  [[nodiscard]] std::uint64_t luts_evaluated() const {
    return luts_evaluated_;
  }
  [[nodiscard]] std::uint64_t full_settles() const { return full_settles_; }
  [[nodiscard]] std::uint64_t event_settles() const { return event_settles_; }

 protected:
  WideSimBase(const Netlist& nl, std::size_t lanes, SettleMode mode);

  /// Marks every LUT reading `net` dirty (event mode only; the bitmask is
  /// empty-sized otherwise, so callers must gate on mode_ — write_net
  /// does).  Out-of-line in the baseline TU on purpose: it must never be
  /// COMDAT-emitted from an AVX translation unit.
  void mark_fanouts_dirty(NetId net);
  /// Zeroes the bitmask after a full pass consumed the dirt wholesale.
  void clear_dirty();

  SoaNetlist soa_;
  std::size_t lanes_;
  std::size_t words_;
  SettleMode mode_;
  bool full_resettle_pending_ = true;

  std::uint64_t luts_evaluated_ = 0;
  std::uint64_t full_settles_ = 0;
  std::uint64_t event_settles_ = 0;

  /// Dirty LUTs as one bit per topo position.  Because positions are topo
  /// ranks, settle_event sweeps it front to back exactly once — an eval
  /// at position p can only set bits at positions > p, never behind the
  /// sweep — which replaces a push/pop heap with a ctz scan.
  std::vector<std::uint64_t> dirty_bits_;
};

// Kernel factories.  The portable factory accepts any words() in [1, 8];
// the AVX factories return nullptr unless their TU was compiled with the
// matching ISA flag *and* the lane count matches their word width — the
// caller performs the cpuid gate before calling them.
std::unique_ptr<WideSimBase> make_wide_sim_portable(const Netlist& nl,
                                                    std::size_t lanes,
                                                    SettleMode mode);
std::unique_ptr<WideSimBase> make_wide_sim_avx2(const Netlist& nl,
                                                std::size_t lanes,
                                                SettleMode mode);
std::unique_ptr<WideSimBase> make_wide_sim_avx512(const Netlist& nl,
                                                  std::size_t lanes,
                                                  SettleMode mode);

/// The engine proper, templated on a lane-word type providing:
///   static constexpr std::size_t kWords;          // 64-lane words
///   static Word zero(); static Word ones();
///   static Word broadcast(uint64_t);              // splat to every word
///   static Word load(const uint64_t*); static void store(Word, uint64_t*);
///   static Word mux(Word t0, Word t1, Word sel);  // (t0 & ~sel)|(t1 & sel)
///   static bool equal(Word, Word);
/// Lane semantics, settle strategies and two-phase clocking match
/// LaneSimulator exactly, except pokes: a register poke seeds the dirty
/// set with the poked DFF's fanout cone instead of scheduling a full
/// topo resettle (the cone argument is the same as clock()'s).
template <typename Word>
class WideSimImpl final : public WideSimBase {
 public:
  WideSimImpl(const Netlist& nl, std::size_t lanes, SettleMode mode)
      : WideSimBase(nl, lanes, mode) {
    value_.resize(soa_.num_nets, Word::zero());
    dff_sample_.resize(soa_.num_dffs, Word::zero());
    WideSimImpl::reset();
  }

  void reset() override {
    Word* value = value_.data();
    for (std::uint32_t n = 0; n < soa_.num_nets; ++n) value[n] = Word::zero();
    const std::uint32_t* q = soa_.dff_q.data();
    const std::uint8_t* init = soa_.dff_init.data();
    for (std::uint32_t i = 0; i < soa_.num_dffs; ++i)
      if (init[i]) value[q[i]] = Word::ones();
    full_resettle_pending_ = true;
    settle();
  }

  void set_input_word(NetId net, const std::uint64_t* words) override {
    write_net(net, Word::load(words));
  }

  void settle() override {
    if (mode_ == SettleMode::kFullTopo || full_resettle_pending_) {
      settle_full();
    } else {
      settle_event();
    }
  }

  void clock() override {
    Word* value = value_.data();
    Word* sample = dff_sample_.data();
    const std::uint32_t* d = soa_.dff_d.data();
    const std::uint32_t* q = soa_.dff_q.data();
    // Sample every d first so the update is simultaneous in every lane.
    for (std::uint32_t i = 0; i < soa_.num_dffs; ++i) sample[i] = value[d[i]];
    for (std::uint32_t i = 0; i < soa_.num_dffs; ++i)
      write_net(q[i], sample[i]);
    settle();
  }

  void poke_register_word(NetId net, const std::uint64_t* words) override {
    // Event-driven from birth: the poked register's fanout cone is exactly
    // what clock() would dirty for this q net, so no full resettle is
    // needed (LaneSimulator grew the same rule in this PR).
    write_net(net, Word::load(words));
    settle();
  }

  void get_word(NetId net, std::uint64_t* out) const override {
    Word::store(value_.data()[net], out);
  }

 private:
  void write_net(NetId net, Word w) {
    Word* value = value_.data();
    if (Word::equal(value[net], w)) return;
    value[net] = w;
    if (mode_ == SettleMode::kEventDriven) mark_fanouts_dirty(net);
  }

  [[nodiscard]] Word eval_lut(std::uint32_t pos) const {
    const Word* value = value_.data();
    const std::uint32_t* in = soa_.in.data() + pos * kMaxLutInputs;
    const std::size_t arity = soa_.arity.data()[pos];
    const std::uint64_t* rows =
        soa_.row_splat.data() + soa_.rows_begin.data()[pos];
    if (arity == 0) return Word::broadcast(rows[0]);
    // Mux-tree fold: halve the truth table once per input word; each
    // lane's bit path selects its own row.  The first level folds the
    // 8-byte splat rows directly (broadcast at use, so the table costs
    // 2^arity loads of 8 bytes at any lane width); only the halved
    // intermediates live at full width.
    Word t[(std::size_t{1} << kMaxLutInputs) / 2];
    const Word w0 = value[in[0]];
    std::size_t width = (std::size_t{1} << arity) / 2;
    for (std::size_t j = 0; j < width; ++j)
      t[j] = Word::mux(Word::broadcast(rows[2 * j]),
                       Word::broadcast(rows[2 * j + 1]), w0);
    for (std::size_t b = 1; b < arity; ++b) {
      const Word w = value[in[b]];
      width >>= 1;
      for (std::size_t j = 0; j < width; ++j)
        t[j] = Word::mux(t[2 * j], t[2 * j + 1], w);
    }
    return t[0];
  }

  void settle_full() {
    Word* value = value_.data();
    const std::uint32_t* out = soa_.out.data();
    for (std::uint32_t p = 0; p < soa_.num_luts; ++p)
      value[out[p]] = eval_lut(p);
    luts_evaluated_ += soa_.num_luts;
    ++full_settles_;
    if (mode_ == SettleMode::kEventDriven) {
      clear_dirty();
      full_resettle_pending_ = false;
    }
  }

  void settle_event() {
    Word* value = value_.data();
    const std::uint32_t* out = soa_.out.data();
    std::uint64_t* dirty = dirty_bits_.data();
    const std::size_t num_words = dirty_bits_.size();
    // One ascending sweep: an eval at position p only dirties positions
    // > p (topo order), so nothing ever lands behind the scan point.
    // The inner while re-reads the word because an eval may set later
    // bits of the very word it was popped from.
    for (std::size_t wi = 0; wi < num_words; ++wi) {
      while (dirty[wi] != 0) {
        const auto bit = static_cast<std::uint32_t>(
            std::countr_zero(dirty[wi]));
        dirty[wi] &= dirty[wi] - 1;
        const auto pos = static_cast<std::uint32_t>(wi * 64 + bit);
        const Word o = eval_lut(pos);
        ++luts_evaluated_;
        const NetId out_net = out[pos];
        if (Word::equal(value[out_net], o)) continue;
        value[out_net] = o;
        mark_fanouts_dirty(out_net);
      }
    }
    ++event_settles_;
  }

  std::vector<Word> value_;       // per net, SoA row of words() lane words
  std::vector<Word> dff_sample_;  // clock() staging buffer
};

}  // namespace rcarb::netlist::detail
