#include "netlist/lane_simulator.hpp"

#include <algorithm>
#include <array>
#include <functional>

#include "support/check.hpp"

namespace rcarb::netlist {

namespace {
constexpr std::uint64_t kAllLanes = ~std::uint64_t{0};
}  // namespace

LaneSimulator::LaneSimulator(const Netlist& netlist, SettleMode mode)
    : netlist_(netlist),
      mode_(mode),
      topo_(netlist.lut_topo_order()),
      value_(netlist.num_nets(), 0),
      dff_sample_(netlist.num_dffs(), 0) {
  rows_offset_.reserve(netlist.num_luts());
  for (const Lut& lut : netlist.luts()) {
    rows_offset_.push_back(static_cast<std::uint32_t>(rows_.size()));
    const std::size_t num_rows = std::size_t{1} << lut.inputs.size();
    for (std::size_t r = 0; r < num_rows; ++r)
      rows_.push_back(((lut.mask >> r) & 1u) ? kAllLanes : 0);
  }
  if (mode_ == SettleMode::kEventDriven) {
    fanouts_ = netlist.lut_fanouts();
    rank_of_lut_.resize(netlist.num_luts());
    for (std::size_t rank = 0; rank < topo_.size(); ++rank)
      rank_of_lut_[topo_[rank]] = static_cast<std::uint32_t>(rank);
    queued_.assign(netlist.num_luts(), 0);
    dirty_heap_.reserve(netlist.num_luts());
  }
  reset();
}

void LaneSimulator::reset() {
  std::fill(value_.begin(), value_.end(), 0);
  for (const Dff& dff : netlist_.dffs())
    value_[dff.q] = dff.init ? kAllLanes : 0;
  full_resettle_pending_ = true;
  settle();
}

void LaneSimulator::write_input(NetId net, std::uint64_t word) {
  if (value_[net] == word) return;
  value_[net] = word;
  if (mode_ == SettleMode::kEventDriven) mark_fanouts_dirty(net);
}

void LaneSimulator::set_input(NetId net, std::uint64_t word) {
  RCARB_CHECK(netlist_.driver_kind(net) == DriverKind::kPrimaryInput,
              "set_input on a non-input net");
  write_input(net, word);
}

void LaneSimulator::set_input(const std::string& name, std::uint64_t word) {
  set_input(resolve(name, "unknown input net: "), word);
}

void LaneSimulator::set_input_lane(NetId net, std::size_t lane, bool value) {
  RCARB_CHECK(netlist_.driver_kind(net) == DriverKind::kPrimaryInput,
              "set_input on a non-input net");
  RCARB_CHECK(lane < kLanes, "lane out of range");
  const std::uint64_t bit = std::uint64_t{1} << lane;
  write_input(net, value ? (value_[net] | bit) : (value_[net] & ~bit));
}

void LaneSimulator::set_input_lane(const std::string& name, std::size_t lane,
                                   bool value) {
  set_input_lane(resolve(name, "unknown input net: "), lane, value);
}

void LaneSimulator::mark_fanouts_dirty(NetId net) {
  for (std::uint32_t lut : fanouts_[net]) {
    if (queued_[lut]) continue;
    queued_[lut] = 1;
    dirty_heap_.push_back(rank_of_lut_[lut]);
    std::push_heap(dirty_heap_.begin(), dirty_heap_.end(),
                   std::greater<std::uint32_t>{});
  }
}

std::uint64_t LaneSimulator::eval_lut(std::size_t lut_index) const {
  const Lut& lut = netlist_.luts()[lut_index];
  // Mux-tree fold: start from the expanded truth-table rows and halve the
  // table once per input word; each lane's bit path selects its own row.
  std::array<std::uint64_t, std::size_t{1} << kMaxLutInputs> t;
  const std::size_t num_rows = std::size_t{1} << lut.inputs.size();
  const std::uint64_t* rows = rows_.data() + rows_offset_[lut_index];
  std::copy(rows, rows + num_rows, t.begin());
  std::size_t width = num_rows;
  for (std::size_t b = 0; b < lut.inputs.size(); ++b) {
    const std::uint64_t w = value_[lut.inputs[b]];
    width >>= 1;
    for (std::size_t j = 0; j < width; ++j)
      t[j] = (t[2 * j] & ~w) | (t[2 * j + 1] & w);
  }
  return t[0];
}

void LaneSimulator::settle() {
  if (mode_ == SettleMode::kFullTopo || full_resettle_pending_) {
    settle_full();
  } else {
    settle_event();
  }
}

void LaneSimulator::settle_full() {
  for (std::size_t i : topo_) value_[netlist_.luts()[i].output] = eval_lut(i);
  luts_evaluated_ += topo_.size();
  ++full_settles_;
  if (mode_ == SettleMode::kEventDriven) {
    for (std::uint32_t rank : dirty_heap_) queued_[topo_[rank]] = 0;
    dirty_heap_.clear();
    full_resettle_pending_ = false;
  }
}

void LaneSimulator::settle_event() {
  while (!dirty_heap_.empty()) {
    std::pop_heap(dirty_heap_.begin(), dirty_heap_.end(),
                  std::greater<std::uint32_t>{});
    const std::size_t i = topo_[dirty_heap_.back()];
    dirty_heap_.pop_back();
    queued_[i] = 0;
    const std::uint64_t out = eval_lut(i);
    ++luts_evaluated_;
    const NetId out_net = netlist_.luts()[i].output;
    if (value_[out_net] == out) continue;
    value_[out_net] = out;
    mark_fanouts_dirty(out_net);
  }
  ++event_settles_;
}

void LaneSimulator::clock() {
  // Sample every d first so the update is simultaneous in every lane.
  for (std::size_t i = 0; i < netlist_.num_dffs(); ++i)
    dff_sample_[i] = value_[netlist_.dffs()[i].d];
  for (std::size_t i = 0; i < netlist_.num_dffs(); ++i) {
    const Dff& dff = netlist_.dffs()[i];
    if (value_[dff.q] == dff_sample_[i]) continue;
    value_[dff.q] = dff_sample_[i];
    if (mode_ == SettleMode::kEventDriven) mark_fanouts_dirty(dff.q);
  }
  settle();
}

void LaneSimulator::poke_register(NetId net, std::uint64_t word) {
  RCARB_CHECK(netlist_.driver_kind(net) == DriverKind::kDff,
              "poke_register on a non-register net");
  // A poked q net dirties exactly its fanout cone — the same discipline
  // clock() applies when that register changes — so event-driven settling
  // stays incremental across fault injection.  (The previous full-resettle
  // fallback re-evaluated every LUT per poke, which dominated 64-replica
  // SEU batches: one poke per lane per stream.)
  if (value_[net] != word) {
    value_[net] = word;
    if (mode_ == SettleMode::kEventDriven) mark_fanouts_dirty(net);
  }
  settle();
}

void LaneSimulator::poke_register(const std::string& name,
                                  std::uint64_t word) {
  poke_register(resolve(name, "unknown register net: "), word);
}

void LaneSimulator::poke_register_lane(NetId net, std::size_t lane,
                                       bool value) {
  RCARB_CHECK(lane < kLanes, "lane out of range");
  const std::uint64_t bit = std::uint64_t{1} << lane;
  RCARB_CHECK(netlist_.driver_kind(net) == DriverKind::kDff,
              "poke_register on a non-register net");
  poke_register(net, value ? (value_[net] | bit) : (value_[net] & ~bit));
}

void LaneSimulator::poke_register_lane(const std::string& name,
                                       std::size_t lane, bool value) {
  poke_register_lane(resolve(name, "unknown register net: "), lane, value);
}

std::uint64_t LaneSimulator::get(NetId net) const {
  RCARB_CHECK(net < netlist_.num_nets(), "net out of range");
  return value_[net];
}

std::uint64_t LaneSimulator::get(const std::string& name) const {
  return get(resolve(name, "unknown net: "));
}

bool LaneSimulator::get_lane(NetId net, std::size_t lane) const {
  RCARB_CHECK(lane < kLanes, "lane out of range");
  return (get(net) >> lane) & 1u;
}

bool LaneSimulator::get_lane(const std::string& name,
                             std::size_t lane) const {
  return get_lane(resolve(name, "unknown net: "), lane);
}

NetId LaneSimulator::resolve(const std::string& name,
                             const char* what) const {
  ++name_lookups_;
  const auto net = netlist_.find_net(name);
  RCARB_CHECK(net.has_value(), what + name);
  return *net;
}

}  // namespace rcarb::netlist
