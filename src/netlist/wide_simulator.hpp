// Width-generic wide-lane netlist simulation: 64 to 512 scenarios per pass.
//
// WideLaneSimulator generalizes the 64-lane LaneSimulator to lane words of
// 1..8 uint64s (64..512 lanes): net values live in a structure-of-arrays
// layout (one contiguous row of `words()` uint64s per net, LUT descriptors
// in flat topo-ordered arrays), and the per-LUT mux-tree fold runs on one
// of three kernels selected at runtime:
//
//   * portable — std::uint64_t[W] arithmetic the compiler auto-vectorizes;
//     works at every width and on every architecture (the only kernel on
//     non-x86 builds),
//   * avx2     — 256-bit ops for the 256-lane width,
//   * avx512   — 512-bit ops (one ternlog per mux step) for the 512-lane
//     width.
//
// Dispatch consults rcarb::simd_tier() — a cpuid probe clamped by the
// $RCARB_SIMD override (support/cpu.hpp) — so the same binary runs
// everywhere and `RCARB_SIMD=scalar` pins the portable kernels for
// determinism legs.  Every kernel produces bit-identical lane traces: a
// lane never observes another lane's bits, and the cross-width test suite
// pins scalar vs 64/256/512-lane checksums to exact equality.
//
// Unlike LaneSimulator's original rule, register pokes do *not* schedule a
// full topo resettle in event-driven mode: the poked DFF's fanout cone
// seeds the dirty heap, exactly as a clock() edge would for that q net.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "netlist/netlist.hpp"
#include "netlist/simulator.hpp"  // SettleMode
#include "support/cpu.hpp"

namespace rcarb::netlist {

namespace detail {
class WideSimBase;
}

/// Simulates `lanes()` independent scenarios of one Netlist in lockstep.
/// Lane l of a net is bit l%64 of word l/64 in that net's row; every
/// word-array argument points at words() uint64 values.
class WideLaneSimulator {
 public:
  static constexpr std::size_t kMaxLanes = 512;

  /// `lanes` must be a multiple of 64 in [64, 512].  `tier` caps the
  /// kernel ISA (defaults to the machine's rcarb::simd_tier()); the
  /// resolved kernel is reported by kernel_tier() — kScalar when the
  /// portable kernel runs, either because of the cap or because no SIMD
  /// kernel exists for this width.  The netlist must outlive the
  /// simulator and must not be mutated afterwards.
  explicit WideLaneSimulator(const Netlist& netlist, std::size_t lanes = 64,
                             SettleMode mode = SettleMode::kEventDriven,
                             std::optional<SimdTier> tier = std::nullopt);
  ~WideLaneSimulator();
  WideLaneSimulator(WideLaneSimulator&&) noexcept;
  WideLaneSimulator& operator=(WideLaneSimulator&&) noexcept;

  [[nodiscard]] std::size_t lanes() const { return lanes_; }
  /// uint64 words per net row: lanes() / 64.
  [[nodiscard]] std::size_t words() const { return words_; }
  /// The kernel actually dispatched to (after cpuid + $RCARB_SIMD + width
  /// eligibility).
  [[nodiscard]] SimdTier kernel_tier() const { return tier_; }

  /// Returns all DFFs to their init values in every lane and re-settles
  /// (full pass).
  void reset();

  /// Sets a primary input across all lanes from a word array.
  void set_input(NetId net, const std::uint64_t* word);
  void set_input(const std::string& name, const std::uint64_t* word);
  /// Sets a primary input to the same value in every lane.
  void set_input_all(NetId net, bool value);
  /// Sets a primary input in one lane, leaving the others untouched.
  void set_input_lane(NetId net, std::size_t lane, bool value);

  /// Propagates combinational logic to a fixed point (all lanes).
  void settle();

  /// Rising clock edge: latches d into every q in every lane, then
  /// settles.
  void clock();

  /// Fault injection: overwrites a DFF's q row / one lane's q bit (SEUs in
  /// the register) and re-settles — event-driven via the DFF's fanout
  /// cone, no full-pass fallback.
  void poke_register(NetId net, const std::uint64_t* word);
  void poke_register_lane(NetId net, std::size_t lane, bool value);
  void poke_register_lane(const std::string& name, std::size_t lane,
                          bool value);

  /// Packed value of a net across all lanes, written to `out`.
  void get(NetId net, std::uint64_t* out) const;
  /// One lane's bit of a net.
  [[nodiscard]] bool get_lane(NetId net, std::size_t lane) const;
  [[nodiscard]] bool get_lane(const std::string& name,
                              std::size_t lane) const;

  // ---- Instrumentation (same meanings as netlist::Simulator). ----
  [[nodiscard]] std::uint64_t name_lookups() const { return name_lookups_; }
  [[nodiscard]] std::uint64_t luts_evaluated() const;
  [[nodiscard]] std::uint64_t full_settles() const;
  [[nodiscard]] std::uint64_t event_settles() const;

 private:
  [[nodiscard]] NetId resolve(const std::string& name,
                              const char* what) const;

  const Netlist* netlist_;
  std::size_t lanes_ = 0;
  std::size_t words_ = 0;
  SimdTier tier_ = SimdTier::kScalar;
  std::unique_ptr<detail::WideSimBase> impl_;
  mutable std::uint64_t name_lookups_ = 0;
};

}  // namespace rcarb::netlist
