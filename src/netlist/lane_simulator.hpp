// Bit-parallel 64-lane netlist simulation.
//
// Packs 64 independent scenarios ("lanes") into one std::uint64_t word per
// net: bit l of a net's word is that net's value in lane l.  One pass over
// the LUT topo order then advances all 64 scenarios at once — 64 Monte
// Carlo fault-campaign replicas, or 64 request patterns, per visit.
//
// LUTs are evaluated by mask-select logic ops instead of per-row bit
// extraction: each of the 2^k truth-table rows is expanded once (at
// construction) into an all-ones or all-zeros word, and evaluation folds
// that table with a mux tree over the k input words,
//
//   t'[j] = (t[2j] & ~w_b) | (t[2j+1] & w_b)     for input bit b,
//
// halving the table per input until t[0] holds the packed output for all
// 64 lanes.  Each lane independently selects its own row — no lane ever
// observes another lane's bits.
//
// The settle strategies and two-phase clocking semantics match
// netlist::Simulator exactly (see simulator.hpp); the lockstep equivalence
// tests pin scalar vs lane vs event-driven to bit-identical traces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/simulator.hpp"  // SettleMode

namespace rcarb::netlist {

/// Simulates 64 independent scenarios of one Netlist in lockstep.
class LaneSimulator {
 public:
  static constexpr std::size_t kLanes = 64;

  /// Captures the topo order and expands every LUT mask into row words; the
  /// netlist must outlive the simulator and must not be mutated afterwards.
  /// Defaults to event-driven settling — lane batches are typically driven
  /// by slowly-varying request words, where skipping clean LUTs pays.
  explicit LaneSimulator(const Netlist& netlist,
                         SettleMode mode = SettleMode::kEventDriven);

  /// Returns all DFFs to their init values in every lane and re-settles
  /// (full pass).
  void reset();

  /// Sets a primary input across all 64 lanes (bit l = lane l).
  void set_input(NetId net, std::uint64_t word);
  void set_input(const std::string& name, std::uint64_t word);
  /// Sets a primary input in one lane, leaving the other 63 untouched.
  void set_input_lane(NetId net, std::size_t lane, bool value);
  void set_input_lane(const std::string& name, std::size_t lane, bool value);

  /// Propagates combinational logic to a fixed point (all lanes).
  void settle();

  /// Rising clock edge: latches d into every q in every lane, then settles.
  void clock();

  /// Fault injection: overwrites a DFF's q word / one lane's q bit (SEUs in
  /// the register) and re-settles.  Event-driven mode seeds the dirty heap
  /// with the poked DFF's fanout cone (the same rule clock() applies), so
  /// SEU batches stay on the incremental path.
  void poke_register(NetId net, std::uint64_t word);
  void poke_register(const std::string& name, std::uint64_t word);
  void poke_register_lane(NetId net, std::size_t lane, bool value);
  void poke_register_lane(const std::string& name, std::size_t lane,
                          bool value);

  /// Packed value of a net across all lanes (bit l = lane l).
  [[nodiscard]] std::uint64_t get(NetId net) const;
  [[nodiscard]] std::uint64_t get(const std::string& name) const;
  [[nodiscard]] bool get_lane(NetId net, std::size_t lane) const;
  [[nodiscard]] bool get_lane(const std::string& name,
                              std::size_t lane) const;

  // ---- Instrumentation (same meanings as netlist::Simulator). ----
  [[nodiscard]] std::uint64_t name_lookups() const { return name_lookups_; }
  [[nodiscard]] std::uint64_t luts_evaluated() const {
    return luts_evaluated_;
  }
  [[nodiscard]] std::uint64_t full_settles() const { return full_settles_; }
  [[nodiscard]] std::uint64_t event_settles() const { return event_settles_; }

 private:
  [[nodiscard]] NetId resolve(const std::string& name,
                              const char* what) const;
  void mark_fanouts_dirty(NetId net);
  void settle_full();
  void settle_event();
  void write_input(NetId net, std::uint64_t word);
  [[nodiscard]] std::uint64_t eval_lut(std::size_t lut_index) const;

  const Netlist& netlist_;
  SettleMode mode_;
  std::vector<std::size_t> topo_;
  std::vector<std::uint64_t> value_;       // per net, bit l = lane l
  std::vector<std::uint64_t> dff_sample_;  // clock() staging buffer
  // Row words, 2^k per LUT at rows_offset_[lut]: row r expands to ~0 or 0
  // depending on bit r of the LUT mask.
  std::vector<std::uint64_t> rows_;
  std::vector<std::uint32_t> rows_offset_;

  // Event-driven state (empty in kFullTopo mode); same discipline as
  // netlist::Simulator.
  std::vector<std::vector<std::uint32_t>> fanouts_;
  std::vector<std::uint32_t> rank_of_lut_;
  std::vector<std::uint32_t> dirty_heap_;
  std::vector<char> queued_;
  bool full_resettle_pending_ = true;

  mutable std::uint64_t name_lookups_ = 0;
  std::uint64_t luts_evaluated_ = 0;
  std::uint64_t full_settles_ = 0;
  std::uint64_t event_settles_ = 0;
};

}  // namespace rcarb::netlist
