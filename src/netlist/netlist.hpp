// Technology-mapped netlists.
//
// The output of the LUT mapper: a synchronous netlist of k-input LUTs and
// D flip-flops over named nets.  This is the representation consumed by the
// CLB packer, the static timing analyzer, and the cycle-accurate simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace rcarb::netlist {

/// Index of a net (signal).  Each net has exactly one driver.
using NetId = std::uint32_t;

/// Largest LUT input count (XC4000e function generators are 4-input).
inline constexpr std::size_t kMaxLutInputs = 4;

// The simulators index LUT rows with 64-bit masks and `Lut::mask` holds one
// bit per row, so the arity bound must keep every row index below both
// limits (a >= 32-input LUT would silently overflow a 32-bit row shift).
static_assert(kMaxLutInputs < 32, "LUT row indices must fit a 32-bit shift");
static_assert((1u << kMaxLutInputs) <= 16, "Lut::mask holds 16 rows");

/// Who drives a net.
enum class DriverKind : std::uint8_t { kPrimaryInput, kLut, kDff };

/// A k-input lookup table; bit r of `mask` is the output for the input row r
/// (input i contributes bit i of r).
struct Lut {
  std::vector<NetId> inputs;
  std::uint16_t mask = 0;
  NetId output = 0;
};

/// A D flip-flop; q takes d on every clock() of the simulator.
struct Dff {
  NetId d = 0;
  NetId q = 0;
  bool init = false;
};

/// A synchronous LUT/DFF netlist.
class Netlist {
 public:
  /// Creates a primary-input net.
  NetId add_input(std::string name);

  /// Creates a LUT driving a fresh net.  inputs.size() <= kMaxLutInputs.
  NetId add_lut(std::vector<NetId> inputs, std::uint16_t mask,
                std::string name);

  /// Creates a DFF driving a fresh q net.  The d net may be created later;
  /// connect it with connect_dff_d.
  NetId add_dff(NetId d, bool init, std::string name);

  /// Re-points an existing DFF's d input (used when building FSM loops).
  void connect_dff_d(std::size_t dff_index, NetId d);

  /// Marks a net as a primary output under `name`.
  void mark_output(NetId net, std::string name);

  [[nodiscard]] std::size_t num_nets() const { return driver_kind_.size(); }
  [[nodiscard]] std::size_t num_luts() const { return luts_.size(); }
  [[nodiscard]] std::size_t num_dffs() const { return dffs_.size(); }
  [[nodiscard]] std::size_t num_inputs() const { return inputs_.size(); }

  [[nodiscard]] const std::vector<Lut>& luts() const { return luts_; }
  [[nodiscard]] const std::vector<Dff>& dffs() const { return dffs_; }
  [[nodiscard]] const std::vector<NetId>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<std::pair<NetId, std::string>>& outputs()
      const {
    return outputs_;
  }

  [[nodiscard]] DriverKind driver_kind(NetId net) const;
  /// Index into luts()/dffs()/inputs() depending on driver_kind(net).
  [[nodiscard]] std::size_t driver_index(NetId net) const;

  [[nodiscard]] const std::string& net_name(NetId net) const;
  [[nodiscard]] std::optional<NetId> find_net(const std::string& name) const;

  /// Number of LUT/DFF sinks per net (for the fanout-based net delay model).
  [[nodiscard]] std::vector<std::size_t> fanout_counts() const;

  /// Largest fanout_counts() entry (0 for an empty netlist): the widest
  /// broadcast net.  Wide-fanout nets price directly into the STA's wire
  /// delay, so the arbiter-scaling bench reports this next to fmax.
  [[nodiscard]] std::size_t max_fanout() const;

  /// LUT sink indices per net: entry [net] lists the LUTs reading that net.
  /// Event-driven simulation seeds its dirty worklist from these lists.
  /// Computed fresh on each call (like fanout_counts) so a shared const
  /// Netlist stays safe to index from concurrent sweep workers.
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> lut_fanouts() const;

  /// LUT indices in topological order; throws if combinational loops exist.
  [[nodiscard]] std::vector<std::size_t> lut_topo_order() const;

 private:
  NetId new_net(DriverKind kind, std::size_t index, std::string name);

  std::vector<DriverKind> driver_kind_;
  std::vector<std::size_t> driver_index_;
  std::vector<std::string> net_name_;
  std::unordered_map<std::string, NetId> net_by_name_;

  std::vector<Lut> luts_;
  std::vector<Dff> dffs_;
  std::vector<NetId> inputs_;
  std::vector<std::pair<NetId, std::string>> outputs_;
};

}  // namespace rcarb::netlist
