// 256-lane AVX2 kernel for WideLaneSimulator.
//
// Compiled with -mavx2 (see netlist/CMakeLists.txt); nothing here runs
// before the cpuid gate in the WideLaneSimulator constructor.  This TU
// instantiates exactly one engine type, WideSimImpl<Avx2Word>, so no
// AVX2-compiled symbol can be COMDAT-merged into baseline code paths.
#include "netlist/wide_sim_impl.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace rcarb::netlist::detail {
namespace {

struct Avx2Word {
  static constexpr std::size_t kWords = 4;
  __m256i v;

  static Avx2Word zero() { return {_mm256_setzero_si256()}; }
  static Avx2Word ones() { return {_mm256_set1_epi64x(-1)}; }
  static Avx2Word broadcast(std::uint64_t x) {
    return {_mm256_set1_epi64x(static_cast<long long>(x))};
  }
  static Avx2Word load(const std::uint64_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static void store(Avx2Word w, std::uint64_t* p) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), w.v);
  }
  /// (t0 & ~sel) | (t1 & sel): andnot folds the negation into one op.
  static Avx2Word mux(Avx2Word t0, Avx2Word t1, Avx2Word s) {
    return {_mm256_or_si256(_mm256_andnot_si256(s.v, t0.v),
                            _mm256_and_si256(t1.v, s.v))};
  }
  static bool equal(Avx2Word a, Avx2Word b) {
    const __m256i diff = _mm256_xor_si256(a.v, b.v);
    return _mm256_testz_si256(diff, diff) != 0;
  }
};

}  // namespace

std::unique_ptr<WideSimBase> make_wide_sim_avx2(const Netlist& nl,
                                                std::size_t lanes,
                                                SettleMode mode) {
  if (lanes != Avx2Word::kWords * 64) return nullptr;
  return std::make_unique<WideSimImpl<Avx2Word>>(nl, lanes, mode);
}

}  // namespace rcarb::netlist::detail

#else  // compiler lacked -mavx2 support for this TU

namespace rcarb::netlist::detail {

std::unique_ptr<WideSimBase> make_wide_sim_avx2(const Netlist&, std::size_t,
                                                SettleMode) {
  return nullptr;
}

}  // namespace rcarb::netlist::detail

#endif
