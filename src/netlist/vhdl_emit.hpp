// Structural VHDL emission for mapped netlists.
//
// After LUT mapping, the flow can hand the design to downstream (layout)
// tools as VHDL-93: one selected signal assignment per LUT (its truth
// table spelled out) and one clocked process for the register bank, with
// an asynchronous reset restoring every DFF's init value.  This is the
// per-FPGA artifact SPARCS passed to "commercial logic and layout
// synthesis tools".
#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace rcarb::netlist {

/// Emits the netlist as a self-contained VHDL-93 entity/architecture.
/// Net names are sanitized into VHDL identifiers (collisions resolved by
/// suffixing); primary inputs/outputs keep their interface names.
[[nodiscard]] std::string emit_vhdl(const Netlist& netlist,
                                    const std::string& entity_name);

}  // namespace rcarb::netlist
