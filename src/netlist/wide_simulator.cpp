#include "netlist/wide_simulator.hpp"

#include <algorithm>
#include <cstring>
#include <functional>

#include "netlist/wide_sim_impl.hpp"
#include "support/check.hpp"

namespace rcarb::netlist {

namespace detail {

SoaNetlist::SoaNetlist(const Netlist& nl)
    : num_nets(static_cast<std::uint32_t>(nl.num_nets())),
      num_luts(static_cast<std::uint32_t>(nl.num_luts())),
      num_dffs(static_cast<std::uint32_t>(nl.num_dffs())) {
  const std::vector<std::size_t> topo = nl.lut_topo_order();
  in.assign(std::size_t{kMaxLutInputs} * num_luts, 0);
  arity.resize(num_luts);
  mask.resize(num_luts);
  out.resize(num_luts);
  rows_begin.resize(std::size_t{num_luts} + 1);
  std::vector<std::uint32_t> pos_of_lut(num_luts);
  std::uint32_t rows = 0;
  for (std::uint32_t p = 0; p < num_luts; ++p) {
    const Lut& lut = nl.luts()[topo[p]];
    pos_of_lut[topo[p]] = p;
    arity[p] = static_cast<std::uint8_t>(lut.inputs.size());
    mask[p] = lut.mask;
    out[p] = lut.output;
    for (std::size_t k = 0; k < lut.inputs.size(); ++k)
      in[std::size_t{kMaxLutInputs} * p + k] = lut.inputs[k];
    rows_begin[p] = rows;
    rows += static_cast<std::uint32_t>(std::size_t{1} << lut.inputs.size());
  }
  rows_begin[num_luts] = rows;
  row_splat.resize(rows);
  for (std::uint32_t p = 0; p < num_luts; ++p) {
    const std::uint32_t num_rows = rows_begin[p + 1] - rows_begin[p];
    for (std::uint32_t r = 0; r < num_rows; ++r)
      row_splat[rows_begin[p] + r] =
          ((mask[p] >> r) & 1u) ? ~std::uint64_t{0} : 0;
  }

  const std::vector<std::vector<std::uint32_t>> by_net = nl.lut_fanouts();
  fanout_begin.resize(std::size_t{num_nets} + 1);
  std::uint32_t total = 0;
  for (std::uint32_t n = 0; n < num_nets; ++n) {
    fanout_begin[n] = total;
    total += static_cast<std::uint32_t>(by_net[n].size());
  }
  fanout_begin[num_nets] = total;
  fanout_pos.resize(total);
  for (std::uint32_t n = 0; n < num_nets; ++n) {
    std::uint32_t at = fanout_begin[n];
    for (const std::uint32_t lut : by_net[n]) fanout_pos[at++] = pos_of_lut[lut];
  }

  dff_d.resize(num_dffs);
  dff_q.resize(num_dffs);
  dff_init.resize(num_dffs);
  for (std::uint32_t i = 0; i < num_dffs; ++i) {
    const Dff& dff = nl.dffs()[i];
    dff_d[i] = dff.d;
    dff_q[i] = dff.q;
    dff_init[i] = dff.init ? 1 : 0;
  }
}

WideSimBase::~WideSimBase() = default;

WideSimBase::WideSimBase(const Netlist& nl, std::size_t lanes,
                         SettleMode mode)
    : soa_(nl), lanes_(lanes), words_(lanes / 64), mode_(mode) {
  if (mode_ == SettleMode::kEventDriven)
    dirty_bits_.assign((std::size_t{soa_.num_luts} + 63) / 64, 0);
}

void WideSimBase::mark_fanouts_dirty(NetId net) {
  const std::uint32_t begin = soa_.fanout_begin[net];
  const std::uint32_t end = soa_.fanout_begin[std::size_t{net} + 1];
  std::uint64_t* dirty = dirty_bits_.data();
  for (std::uint32_t i = begin; i < end; ++i) {
    const std::uint32_t pos = soa_.fanout_pos[i];
    dirty[pos >> 6] |= std::uint64_t{1} << (pos & 63);
  }
}

void WideSimBase::clear_dirty() {
  std::fill(dirty_bits_.begin(), dirty_bits_.end(), 0);
}

namespace {

/// Portable lane word: plain uint64 arithmetic over a fixed array.  The
/// per-word loops are branch-free straight-line code the compiler can
/// auto-vectorize; with the AVX kernels unavailable (non-x86, narrow
/// widths, RCARB_SIMD=scalar) this is the engine.
template <std::size_t W>
struct PortableWord {
  static constexpr std::size_t kWords = W;
  std::uint64_t v[W];

  static PortableWord zero() {
    PortableWord w;
    for (std::size_t i = 0; i < W; ++i) w.v[i] = 0;
    return w;
  }
  static PortableWord ones() {
    PortableWord w;
    for (std::size_t i = 0; i < W; ++i) w.v[i] = ~std::uint64_t{0};
    return w;
  }
  static PortableWord broadcast(std::uint64_t x) {
    PortableWord w;
    for (std::size_t i = 0; i < W; ++i) w.v[i] = x;
    return w;
  }
  static PortableWord load(const std::uint64_t* p) {
    PortableWord w;
    std::memcpy(w.v, p, sizeof w.v);
    return w;
  }
  static void store(PortableWord w, std::uint64_t* p) {
    std::memcpy(p, w.v, sizeof w.v);
  }
  static PortableWord mux(PortableWord t0, PortableWord t1, PortableWord s) {
    PortableWord r;
    for (std::size_t i = 0; i < W; ++i)
      r.v[i] = (t0.v[i] & ~s.v[i]) | (t1.v[i] & s.v[i]);
    return r;
  }
  static bool equal(PortableWord a, PortableWord b) {
    std::uint64_t diff = 0;
    for (std::size_t i = 0; i < W; ++i) diff |= a.v[i] ^ b.v[i];
    return diff == 0;
  }
};

}  // namespace

std::unique_ptr<WideSimBase> make_wide_sim_portable(const Netlist& nl,
                                                    std::size_t lanes,
                                                    SettleMode mode) {
  switch (lanes / 64) {
    case 1:
      return std::make_unique<WideSimImpl<PortableWord<1>>>(nl, lanes, mode);
    case 2:
      return std::make_unique<WideSimImpl<PortableWord<2>>>(nl, lanes, mode);
    case 3:
      return std::make_unique<WideSimImpl<PortableWord<3>>>(nl, lanes, mode);
    case 4:
      return std::make_unique<WideSimImpl<PortableWord<4>>>(nl, lanes, mode);
    case 5:
      return std::make_unique<WideSimImpl<PortableWord<5>>>(nl, lanes, mode);
    case 6:
      return std::make_unique<WideSimImpl<PortableWord<6>>>(nl, lanes, mode);
    case 7:
      return std::make_unique<WideSimImpl<PortableWord<7>>>(nl, lanes, mode);
    case 8:
      return std::make_unique<WideSimImpl<PortableWord<8>>>(nl, lanes, mode);
    default:
      return nullptr;
  }
}

}  // namespace detail

WideLaneSimulator::WideLaneSimulator(const Netlist& netlist,
                                     std::size_t lanes, SettleMode mode,
                                     std::optional<SimdTier> tier)
    : netlist_(&netlist), lanes_(lanes), words_(lanes / 64) {
  RCARB_CHECK(lanes >= 64 && lanes <= kMaxLanes && lanes % 64 == 0,
              "WideLaneSimulator lanes must be a multiple of 64 in "
              "[64, 512]");
  // The machine cap already folds in $RCARB_SIMD; an explicit request can
  // only narrow it further.
  const SimdTier cap = simd_tier();
  tier_ = std::min(tier.value_or(cap), cap);
  if (words_ == 4 && tier_ >= SimdTier::kAvx2) {
    impl_ = detail::make_wide_sim_avx2(netlist, lanes, mode);
    if (impl_) tier_ = SimdTier::kAvx2;
  } else if (words_ == 8 && tier_ >= SimdTier::kAvx512) {
    impl_ = detail::make_wide_sim_avx512(netlist, lanes, mode);
    if (impl_) tier_ = SimdTier::kAvx512;
  }
  if (!impl_) {
    impl_ = detail::make_wide_sim_portable(netlist, lanes, mode);
    tier_ = SimdTier::kScalar;
  }
  RCARB_CHECK(impl_ != nullptr, "no wide-lane kernel for this width");
}

WideLaneSimulator::~WideLaneSimulator() = default;
WideLaneSimulator::WideLaneSimulator(WideLaneSimulator&&) noexcept = default;
WideLaneSimulator& WideLaneSimulator::operator=(WideLaneSimulator&&) noexcept =
    default;

void WideLaneSimulator::reset() { impl_->reset(); }

void WideLaneSimulator::set_input(NetId net, const std::uint64_t* word) {
  RCARB_CHECK(netlist_->driver_kind(net) == DriverKind::kPrimaryInput,
              "set_input on a non-input net");
  impl_->set_input_word(net, word);
}

void WideLaneSimulator::set_input(const std::string& name,
                                  const std::uint64_t* word) {
  set_input(resolve(name, "unknown input net: "), word);
}

void WideLaneSimulator::set_input_all(NetId net, bool value) {
  std::uint64_t row[kMaxLanes / 64];
  for (std::size_t w = 0; w < words_; ++w)
    row[w] = value ? ~std::uint64_t{0} : 0;
  set_input(net, row);
}

void WideLaneSimulator::set_input_lane(NetId net, std::size_t lane,
                                       bool value) {
  RCARB_CHECK(netlist_->driver_kind(net) == DriverKind::kPrimaryInput,
              "set_input on a non-input net");
  RCARB_CHECK(lane < lanes_, "lane out of range");
  std::uint64_t row[kMaxLanes / 64];
  impl_->get_word(net, row);
  const std::uint64_t bit = std::uint64_t{1} << (lane % 64);
  if (value) {
    row[lane / 64] |= bit;
  } else {
    row[lane / 64] &= ~bit;
  }
  impl_->set_input_word(net, row);
}

void WideLaneSimulator::settle() { impl_->settle(); }

void WideLaneSimulator::clock() { impl_->clock(); }

void WideLaneSimulator::poke_register(NetId net, const std::uint64_t* word) {
  RCARB_CHECK(netlist_->driver_kind(net) == DriverKind::kDff,
              "poke_register on a non-register net");
  impl_->poke_register_word(net, word);
}

void WideLaneSimulator::poke_register_lane(NetId net, std::size_t lane,
                                           bool value) {
  RCARB_CHECK(netlist_->driver_kind(net) == DriverKind::kDff,
              "poke_register on a non-register net");
  RCARB_CHECK(lane < lanes_, "lane out of range");
  std::uint64_t row[kMaxLanes / 64];
  impl_->get_word(net, row);
  const std::uint64_t bit = std::uint64_t{1} << (lane % 64);
  if (value) {
    row[lane / 64] |= bit;
  } else {
    row[lane / 64] &= ~bit;
  }
  impl_->poke_register_word(net, row);
}

void WideLaneSimulator::poke_register_lane(const std::string& name,
                                           std::size_t lane, bool value) {
  poke_register_lane(resolve(name, "unknown register net: "), lane, value);
}

void WideLaneSimulator::get(NetId net, std::uint64_t* out) const {
  RCARB_CHECK(net < netlist_->num_nets(), "net out of range");
  impl_->get_word(net, out);
}

bool WideLaneSimulator::get_lane(NetId net, std::size_t lane) const {
  RCARB_CHECK(lane < lanes_, "lane out of range");
  std::uint64_t row[kMaxLanes / 64];
  get(net, row);
  return (row[lane / 64] >> (lane % 64)) & 1u;
}

bool WideLaneSimulator::get_lane(const std::string& name,
                                 std::size_t lane) const {
  return get_lane(resolve(name, "unknown net: "), lane);
}

std::uint64_t WideLaneSimulator::luts_evaluated() const {
  return impl_->luts_evaluated();
}

std::uint64_t WideLaneSimulator::full_settles() const {
  return impl_->full_settles();
}

std::uint64_t WideLaneSimulator::event_settles() const {
  return impl_->event_settles();
}

NetId WideLaneSimulator::resolve(const std::string& name,
                                 const char* what) const {
  ++name_lookups_;
  const auto net = netlist_->find_net(name);
  RCARB_CHECK(net.has_value(), what + name);
  return *net;
}

}  // namespace rcarb::netlist
