// Cycle-accurate netlist simulation.
//
// Two-phase semantics: settle() propagates combinational logic with the
// current primary inputs and register outputs (so Mealy outputs can be read
// the same cycle), clock() then latches every DFF simultaneously.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace rcarb::netlist {

/// Simulates a Netlist cycle by cycle.
class Simulator {
 public:
  /// Captures the topological order; the netlist must outlive the simulator.
  explicit Simulator(const Netlist& netlist);

  /// Returns all DFFs to their init values and re-settles.
  void reset();

  /// Sets a primary input (takes effect on the next settle()).
  void set_input(NetId net, bool value);
  void set_input(const std::string& name, bool value);

  /// Propagates combinational logic to a fixed point (single topo pass).
  void settle();

  /// Rising clock edge: latches d into every q, then settles.
  void clock();

  /// Fault injection: overwrites a DFF's q value (an SEU in the register)
  /// and re-settles so downstream logic sees the corrupted state.
  void poke_register(NetId net, bool value);
  void poke_register(const std::string& name, bool value);

  [[nodiscard]] bool get(NetId net) const;
  [[nodiscard]] bool get(const std::string& name) const;

 private:
  const Netlist& netlist_;
  std::vector<std::size_t> topo_;
  std::vector<char> value_;  // per net
};

}  // namespace rcarb::netlist
