// Cycle-accurate netlist simulation.
//
// Two-phase semantics: settle() propagates combinational logic with the
// current primary inputs and register outputs (so Mealy outputs can be read
// the same cycle), clock() then latches every DFF simultaneously.
//
// Two settle strategies are available:
//   * kFullTopo    — every settle() re-evaluates every LUT in topological
//     order (the proven baseline; always correct).
//   * kEventDriven — settle() only evaluates LUTs downstream of nets that
//     actually changed (a dirty worklist drained in topological order,
//     seeded from set_input / clock / poke_register via the netlist's
//     per-net fanout lists).
// Both produce bit-identical values: a LUT is pure, and evaluating a
// superset of the dirty LUTs in topological order reaches the same fixed
// point.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace rcarb::netlist {

/// How settle() propagates combinational logic (see file comment).
enum class SettleMode : std::uint8_t { kFullTopo, kEventDriven };

/// Simulates a Netlist cycle by cycle, one scenario at a time.
class Simulator {
 public:
  /// Captures the topological order; the netlist must outlive the simulator
  /// and must not be mutated afterwards.
  explicit Simulator(const Netlist& netlist,
                     SettleMode mode = SettleMode::kFullTopo);

  /// Returns all DFFs to their init values and re-settles (full pass).
  void reset();

  /// Sets a primary input (takes effect on the next settle()).
  void set_input(NetId net, bool value);
  void set_input(const std::string& name, bool value);

  /// Propagates combinational logic to a fixed point.
  void settle();

  /// Rising clock edge: latches d into every q, then settles.
  void clock();

  /// Fault injection: overwrites a DFF's q value (an SEU in the register)
  /// and re-settles so downstream logic sees the corrupted state.  Event-
  /// driven simulators seed the dirty heap with the poked DFF's fanout
  /// cone (the same rule clock() applies to a changed register).
  void poke_register(NetId net, bool value);
  void poke_register(const std::string& name, bool value);

  [[nodiscard]] bool get(NetId net) const;
  [[nodiscard]] bool get(const std::string& name) const;

  // ---- Instrumentation. ----
  /// Name-based lookups (string-keyed set_input/get/poke) since
  /// construction.  Per-cycle simulation loops must resolve names to NetIds
  /// once, outside the loop — the regression tests pin this counter flat
  /// across the cycle loop.
  [[nodiscard]] std::uint64_t name_lookups() const { return name_lookups_; }
  /// LUT evaluations since construction (event-driven settles evaluate
  /// strictly fewer LUTs than topo passes on quiet inputs).
  [[nodiscard]] std::uint64_t luts_evaluated() const {
    return luts_evaluated_;
  }
  /// Full topo passes / event-driven (incremental) settles performed.
  [[nodiscard]] std::uint64_t full_settles() const { return full_settles_; }
  [[nodiscard]] std::uint64_t event_settles() const { return event_settles_; }

 private:
  [[nodiscard]] NetId resolve(const std::string& name,
                              const char* what) const;
  void mark_fanouts_dirty(NetId net);
  void settle_full();
  void settle_event();

  const Netlist& netlist_;
  SettleMode mode_;
  std::vector<std::size_t> topo_;
  std::vector<char> value_;       // per net
  std::vector<char> dff_sample_;  // clock() staging buffer (hoisted)

  // Event-driven state (empty in kFullTopo mode).
  std::vector<std::vector<std::uint32_t>> fanouts_;  // per net -> LUT indices
  std::vector<std::uint32_t> rank_of_lut_;           // LUT index -> topo rank
  std::vector<std::uint32_t> dirty_heap_;            // min-heap of topo ranks
  std::vector<char> queued_;                         // per LUT: in heap?
  bool full_resettle_pending_ = true;

  mutable std::uint64_t name_lookups_ = 0;
  std::uint64_t luts_evaluated_ = 0;
  std::uint64_t full_settles_ = 0;
  std::uint64_t event_settles_ = 0;
};

}  // namespace rcarb::netlist
