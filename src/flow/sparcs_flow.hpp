// The integrated SPARCS-like flow (paper Fig. 9).
//
// taskgraph + board  ->  temporal partitions  ->  per partition:
// spatial placement, memory mapping, channel mapping, automatic arbiter
// insertion (the paper's contribution), arbiter synthesis + timing, and
// cycle-level system simulation with memory state carried across the
// partitions (the board is reconfigured between them).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "board/board.hpp"
#include "core/generator.hpp"
#include "core/insertion.hpp"
#include "partition/binding.hpp"
#include "partition/channel_map.hpp"
#include "partition/estimate.hpp"
#include "partition/memory_map.hpp"
#include "partition/spatial.hpp"
#include "partition/temporal.hpp"
#include "rcsim/system_sim.hpp"
#include "taskgraph/taskgraph.hpp"

namespace rcarb::flow {

struct FlowOptions {
  part::TemporalOptions temporal;
  part::SpatialOptions spatial;
  part::MemoryMapOptions memory;
  core::InsertionOptions insertion;
  /// The flow enables per-arbiter metrics by default so FlowReport::summary
  /// can print fairness/latency lines; simulation-bound callers may turn
  /// them back off.
  rcsim::SimOptions sim = [] {
    rcsim::SimOptions s;
    s.arbiter_metrics = true;
    return s;
  }();
  synth::FlowKind synth_flow = synth::FlowKind::kExpressLike;
  synth::Encoding encoding = synth::Encoding::kOneHot;

  /// Clock achieved by the synthesized task datapaths (SPARCS logic
  /// synthesis annotation; the paper's FFT design clocked at ~6 MHz).  The
  /// design clock is min(this, every arbiter's Fmax).
  double datapath_clock_mhz = 6.0;

  bool simulate = true;
  /// Initial segment contents (segment id -> words); applied before TP 0.
  std::vector<std::pair<tg::SegmentId, std::vector<std::int64_t>>> preload;

  /// Pin the temporal partitioning (e.g. the paper's Sec. 5 memberships).
  const std::vector<std::vector<tg::TaskId>>* pinned_partitions = nullptr;
  /// Pin the per-partition binding (e.g. fft::paper_binding).  When set,
  /// spatial/memory/channel mapping are skipped.
  std::function<core::Binding(std::size_t tp_index)> pinned_binding;
};

/// Everything the flow produced for one temporal partition.
struct PartitionReport {
  std::vector<tg::TaskId> tasks;
  part::SpatialResult spatial;          // empty when binding was pinned
  part::MemoryMapResult memory;         // empty when binding was pinned
  part::ChannelMapResult channels;      // empty when binding was pinned
  core::Binding binding;
  core::ArbitrationPlan plan;
  tg::TaskGraph rewritten{"<unset>"};
  std::vector<core::ArbiterCharacteristics> arbiter_chars;  // per instance
  rcsim::SimResult sim;
};

struct FlowReport {
  std::vector<PartitionReport> partitions;
  double design_clock_mhz = 0.0;
  double min_arbiter_fmax_mhz = 0.0;  // infinity-free: 0 when no arbiters
  std::uint64_t total_cycles = 0;     // across all partitions
  std::size_t total_arbiter_clbs = 0;
  /// Final contents of every segment after the last partition ran.
  std::vector<std::vector<std::int64_t>> final_memory;

  /// Human-readable multi-line summary (partition table + headline).
  [[nodiscard]] std::string summary() const;
};

/// Runs the full flow.  The input graph is copied; area annotations are
/// estimated where missing.
[[nodiscard]] FlowReport run_flow(const tg::TaskGraph& graph,
                                  const board::Board& board,
                                  const FlowOptions& options);

}  // namespace rcarb::flow
