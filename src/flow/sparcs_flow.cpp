#include "flow/sparcs_flow.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace rcarb::flow {

FlowReport run_flow(const tg::TaskGraph& input, const board::Board& board,
                    const FlowOptions& options) {
  tg::TaskGraph graph = input;  // annotated copy
  part::annotate_areas(graph);
  graph.validate();

  FlowReport report;

  // ---- Temporal partitioning (or pinned memberships). ----
  std::vector<std::vector<tg::TaskId>> partitions;
  if (options.pinned_partitions != nullptr) {
    partitions = *options.pinned_partitions;
  } else {
    part::TemporalOptions temporal = options.temporal;
    core::PrecharCache default_prechar(options.synth_flow, options.encoding);
    if (temporal.prechar == nullptr) temporal.prechar = &default_prechar;
    const part::TemporalResult tr =
        part::temporal_partition(graph, board, temporal);
    for (const part::TemporalPartition& tp : tr.partitions)
      partitions.push_back(tp.tasks);
  }

  // Memory state carried across partitions (the board is reconfigured, the
  // SRAM banks keep their contents).
  std::vector<std::vector<std::int64_t>> memory_state(graph.num_segments());
  for (tg::SegmentId s = 0; s < graph.num_segments(); ++s)
    memory_state[s].assign(graph.segment(s).words, 0);
  for (const auto& [seg, words] : options.preload) {
    RCARB_CHECK(seg < memory_state.size(), "preload segment out of range");
    RCARB_CHECK(words.size() <= memory_state[seg].size(),
                "preload larger than segment");
    std::copy(words.begin(), words.end(), memory_state[seg].begin());
  }

  // Arbiter synthesis goes through the process-wide memo: one netlist per
  // distinct (port count, flow, encoding) across every run_flow call.
  // Non-flat instances characterize the matching scalable AIG generator
  // instead, so estimates track the structure the simulator instantiates.
  auto characterize =
      [&](const core::ArbiterInstance& inst)
      -> const core::ArbiterCharacteristics& {
    const int n = static_cast<int>(inst.ports.size());
    if (inst.kind == core::ArbiterKind::kFlatFsm)
      return core::generate_round_robin_cached(n, options.synth_flow,
                                               options.encoding)
          .chars;
    return core::generate_scalable_cached(inst.kind, n,
                                          options.insertion.arbiter_arity)
        .chars;
  };

  double min_fmax = 0.0;
  bool any_arbiter = false;

  for (std::size_t tp = 0; tp < partitions.size(); ++tp) {
    PartitionReport pr;
    pr.tasks = partitions[tp];

    // ---- Binding: pinned, or spatial + memory + channel mapping. ----
    if (options.pinned_binding) {
      pr.binding = options.pinned_binding(tp);
    } else {
      pr.spatial = part::spatial_partition(graph, pr.tasks, board,
                                           options.spatial);
      pr.memory = part::map_memory(graph, pr.tasks, board,
                                   pr.spatial.pe_of_task, options.memory);
      pr.channels = part::map_channels(graph, pr.tasks, board,
                                       pr.spatial.pe_of_task);
      pr.binding =
          part::make_binding(graph, board, pr.spatial, pr.memory, pr.channels);
    }

    // ---- The paper's contribution: automatic arbiter insertion. ----
    core::InsertionResult ins =
        core::insert_arbitration(graph, pr.binding, options.insertion,
                                 &pr.tasks);
    pr.plan = std::move(ins.plan);
    pr.rewritten = std::move(ins.graph);

    // ---- Arbiter synthesis & characterization. ----
    for (const core::ArbiterInstance& inst : pr.plan.arbiters) {
      const auto chars = characterize(inst);
      pr.arbiter_chars.push_back(chars);
      report.total_arbiter_clbs += chars.clbs;
      min_fmax = any_arbiter ? std::min(min_fmax, chars.fmax_mhz)
                             : chars.fmax_mhz;
      any_arbiter = true;
    }

    // ---- Cycle-level simulation with carried memory. ----
    if (options.simulate) {
      rcsim::SystemSimulator sim(pr.rewritten, pr.binding, pr.plan,
                                 options.sim);
      for (tg::SegmentId s = 0; s < graph.num_segments(); ++s)
        sim.write_segment(s, memory_state[s]);
      pr.sim = sim.run(pr.tasks);
      report.total_cycles += pr.sim.cycles;
      for (tg::SegmentId s = 0; s < graph.num_segments(); ++s)
        memory_state[s] = sim.segment_data(s);
    }

    report.partitions.push_back(std::move(pr));
  }

  report.min_arbiter_fmax_mhz = any_arbiter ? min_fmax : 0.0;
  report.design_clock_mhz =
      any_arbiter ? std::min(options.datapath_clock_mhz, min_fmax)
                  : options.datapath_clock_mhz;
  report.final_memory = std::move(memory_state);
  return report;
}

std::string FlowReport::summary() const {
  std::ostringstream os;
  os << "temporal partitions: " << partitions.size() << '\n';
  for (std::size_t tp = 0; tp < partitions.size(); ++tp) {
    const PartitionReport& pr = partitions[tp];
    os << "  TP" << tp << ": " << pr.tasks.size() << " tasks, arbiters [";
    for (std::size_t a = 0; a < pr.plan.arbiters.size(); ++a) {
      if (a != 0) os << ", ";
      os << pr.plan.arbiters[a].ports.size() << "-input on "
         << pr.plan.arbiters[a].resource_name;
    }
    os << "]";
    if (pr.sim.cycles > 0) os << ", " << pr.sim.cycles << " cycles";
    os << '\n';
    for (const obs::ArbiterMetrics& m : pr.sim.arbiter_obs)
      os << "    " << m.summarize() << '\n';
  }
  os << "total arbiter area: " << total_arbiter_clbs << " CLBs\n";
  os << "design clock: " << design_clock_mhz << " MHz";
  if (min_arbiter_fmax_mhz > 0.0)
    os << " (slowest arbiter Fmax " << min_arbiter_fmax_mhz << " MHz)";
  os << '\n';
  if (total_cycles > 0) os << "total cycles: " << total_cycles << '\n';
  return os.str();
}

}  // namespace rcarb::flow
