// Inter-FPGA pin accounting (paper Fig. 11's edge annotations).
//
// Fig. 11 labels every PE boundary with "data wires + 2 + 2 ..." — the bus
// wires of remote memory/channel access plus one Request/Grant pair per
// remotely arbitrated task.  This report recomputes those numbers for any
// binding + arbitration plan so the flow can show where the pin budget
// goes and how little the handshake adds.
#pragma once

#include <string>
#include <vector>

#include "board/board.hpp"
#include "core/insertion.hpp"
#include "taskgraph/taskgraph.hpp"

namespace rcarb::flow {

/// Pin usage of one PE.
struct PePins {
  int memory_bus = 0;     // wires to remote banks (addr + data + select)
  int channel_bus = 0;    // wires of inter-PE physical channels
  int handshake = 0;      // Request/Grant pairs crossing this PE's boundary
  [[nodiscard]] int total() const {
    return memory_bus + channel_bus + handshake;
  }
};

struct PinReport {
  std::vector<PePins> per_pe;  // indexed by PeId
  int total_handshake = 0;     // sum of req/grant wires (the Fig. 11 "+2"s)

  [[nodiscard]] std::string to_string(const board::Board& board) const;
};

/// Bus width model for one bank: 16 data wires, enough address wires for
/// the largest segment on it, one write-select.
[[nodiscard]] int bank_bus_width(const tg::TaskGraph& graph,
                                 const core::Binding& binding, int bank);

/// Computes the pin usage of one temporal partition.  Arbiters are homed on
/// the PE owning the guarded bank (or the first port task's PE for channel
/// arbiters), matching Fig. 11's placement.
[[nodiscard]] PinReport compute_pin_report(
    const tg::TaskGraph& graph, const board::Board& board,
    const core::Binding& binding, const core::ArbitrationPlan& plan,
    const std::vector<tg::TaskId>& tasks);

}  // namespace rcarb::flow
