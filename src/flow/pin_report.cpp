#include "flow/pin_report.hpp"

#include <algorithm>
#include <bit>
#include <set>
#include <sstream>

#include "support/check.hpp"

namespace rcarb::flow {

int bank_bus_width(const tg::TaskGraph& graph, const core::Binding& binding,
                   int bank) {
  std::size_t max_words = 1;
  for (tg::SegmentId s = 0; s < graph.num_segments(); ++s)
    if (binding.segment_to_bank[s] == bank)
      max_words = std::max(max_words, graph.segment(s).words);
  const int addr_bits =
      std::max(1, static_cast<int>(std::bit_width(max_words - 1)));
  return 16 + addr_bits + 1;  // data + address + write select
}

PinReport compute_pin_report(const tg::TaskGraph& graph,
                             const board::Board& board,
                             const core::Binding& binding,
                             const core::ArbitrationPlan& plan,
                             const std::vector<tg::TaskId>& tasks) {
  PinReport report;
  report.per_pe.resize(board.num_pes());

  std::vector<bool> active(graph.num_tasks(), false);
  for (tg::TaskId t : tasks) active[t] = true;

  // ---- Remote memory buses: one bus per (PE, remote bank) relation. ----
  std::set<std::pair<int, int>> pe_bank;  // (pe, bank) pairs seen
  for (tg::TaskId t = 0; t < graph.num_tasks(); ++t) {
    if (!active[t]) continue;
    const int pe = binding.task_to_pe[t];
    if (pe < 0) continue;
    for (int seg : graph.task(t).program.accessed_segments()) {
      const int bank = binding.segment_to_bank[static_cast<std::size_t>(seg)];
      if (bank < 0) continue;
      const int bank_pe = static_cast<int>(
          board.bank(static_cast<board::BankId>(bank)).attached_pe);
      if (bank_pe == pe) continue;  // local access, no boundary pins
      if (!pe_bank.insert({pe, bank}).second) continue;
      const int width = bank_bus_width(graph, binding, bank);
      report.per_pe[static_cast<std::size_t>(pe)].memory_bus += width;
      report.per_pe[static_cast<std::size_t>(bank_pe)].memory_bus += width;
    }
  }

  // ---- Inter-PE channel buses: each physical channel once per endpoint. --
  for (std::size_t phys = 0; phys < binding.num_phys_channels; ++phys) {
    std::set<int> endpoint_pes;
    int width = 0;
    for (tg::ChannelId c = 0; c < graph.num_channels(); ++c) {
      if (binding.channel_to_phys[c] != static_cast<int>(phys)) continue;
      const tg::Channel& ch = graph.channel(c);
      if (!active[ch.source] && !active[ch.target]) continue;
      width = std::max(width, ch.width_bits);
      if (binding.task_to_pe[ch.source] >= 0)
        endpoint_pes.insert(binding.task_to_pe[ch.source]);
      if (binding.task_to_pe[ch.target] >= 0)
        endpoint_pes.insert(binding.task_to_pe[ch.target]);
    }
    if (endpoint_pes.size() < 2) continue;  // intra-PE or unused
    for (int pe : endpoint_pes)
      report.per_pe[static_cast<std::size_t>(pe)].channel_bus += width;
  }

  // ---- Request/Grant pairs: Fig. 11's "+2" per remotely arbitrated task.
  for (const core::ArbiterInstance& inst : plan.arbiters) {
    // Home PE: the guarded bank's PE, or the first port task's PE.
    int home;
    if (binding.resource_is_bank(inst.resource)) {
      home = static_cast<int>(
          board.bank(static_cast<board::BankId>(inst.resource)).attached_pe);
    } else {
      home = binding.task_to_pe[inst.ports.front()];
    }
    for (tg::TaskId t : inst.ports) {
      const int pe = binding.task_to_pe[t];
      if (pe < 0 || pe == home) continue;
      report.per_pe[static_cast<std::size_t>(pe)].handshake += 2;
      report.per_pe[static_cast<std::size_t>(home)].handshake += 2;
      report.total_handshake += 2;
    }
  }
  return report;
}

std::string PinReport::to_string(const board::Board& board) const {
  std::ostringstream os;
  for (board::PeId p = 0; p < board.num_pes(); ++p) {
    const PePins& pins = per_pe[p];
    if (pins.total() == 0) continue;
    os << "  " << board.pe(p).name << ": " << pins.total() << " pins ("
       << pins.memory_bus << " memory bus";
    if (pins.channel_bus > 0) os << " + " << pins.channel_bus << " channel";
    os << " + " << pins.handshake << " req/grant)\n";
  }
  os << "  total req/grant overhead: " << total_handshake << " wires\n";
  return os.str();
}

}  // namespace rcarb::flow
