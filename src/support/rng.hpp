// Deterministic pseudo-random number generator (xoshiro256**).
//
// Every randomized algorithm in this project (FM tie-breaking, the random
// arbitration policy, property-test vector generation) takes an explicit Rng
// so that runs are reproducible from a single seed.
#pragma once

#include <cstdint>

namespace rcarb {

/// xoshiro256** by Blackman & Vigna — fast, high quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform value in [0, bound) using Lemire's rejection method.  bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive.  lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability num/den.  num <= den, den > 0.
  bool chance(std::uint64_t num, std::uint64_t den);

  /// Uniform double in [0, 1).
  double next_double();

 private:
  std::uint64_t s_[4];
};

}  // namespace rcarb
