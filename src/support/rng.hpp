// Deterministic pseudo-random number generator (xoshiro256**).
//
// Every randomized algorithm in this project (FM tie-breaking, the random
// arbitration policy, property-test vector generation) takes an explicit Rng
// so that runs are reproducible from a single seed.
#pragma once

#include <cstdint>

namespace rcarb {

/// xoshiro256** by Blackman & Vigna — fast, high quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform value in [0, bound) using Lemire's rejection method.  bound > 0.
  /// bound == 1 always returns 0 (and still consumes one next_u64 draw);
  /// bounds up to and including 2^64 - 1 are exact.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive.  lo <= hi.  The full range
  /// lo = INT64_MIN, hi = INT64_MAX is supported (the span wraps to 0 and
  /// the raw 64-bit draw is used directly).
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability num/den.  num <= den, den > 0.
  bool chance(std::uint64_t num, std::uint64_t den);

  /// Uniform double in [0, 1).
  double next_double();

 private:
  std::uint64_t s_[4];
};

/// Independent per-cell seed for parallel sweeps: mixes (master, index)
/// through splitmix64 so every cell of a sweep gets an uncorrelated seed
/// that depends only on its index — never on which worker ran it or in
/// what order.  derive_seed(m, i) == derive_seed(m, i) always; distinct
/// (master, index) pairs give distinct, well-scrambled seeds.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master,
                                        std::uint64_t index);

}  // namespace rcarb
