// Small string helpers shared across modules (name mangling for generated
// RTL, joining, simple indentation for the VHDL emitter).
#pragma once

#include <string>
#include <vector>

namespace rcarb {

/// Joins items with a separator: join({"a","b"}, ", ") == "a, b".
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               const std::string& sep);

/// True if `s` is a valid identifier: [A-Za-z][A-Za-z0-9_]*.
[[nodiscard]] bool is_identifier(const std::string& s);

/// Indents every line of `block` by `spaces` spaces.
[[nodiscard]] std::string indent(const std::string& block, int spaces);

/// "name" + index, e.g. signal_name("req", 3) == "req3".
[[nodiscard]] std::string signal_name(const std::string& base, std::size_t i);

}  // namespace rcarb
