// ASCII table rendering used by the benchmark harnesses to print the
// paper-style tables (Figs. 6/7, Table 1, Section 5) before the
// google-benchmark timings run.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rcarb {

/// Column-aligned ASCII table with a title, header row and data rows.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row.  Must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Appends one data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders the table; ends with a newline.
  [[nodiscard]] std::string render() const;

  /// Convenience: renders to stdout.
  void print() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimals (locale-independent).
[[nodiscard]] std::string fmt_fixed(double value, int decimals);

}  // namespace rcarb
