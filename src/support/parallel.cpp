#include "support/parallel.hpp"

#include <cstdio>
#include <cstdlib>
#include <thread>

namespace rcarb {

int parallel_jobs() {
  if (const char* env = std::getenv("RCARB_JOBS"); env && *env) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v >= 1) {
      // Cap far above any sane machine; guards a stray huge value from
      // exhausting thread handles.
      return static_cast<int>(v > 1024 ? 1024 : v);
    }
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "rcarb: ignoring malformed RCARB_JOBS=\"%s\" "
                   "(want a positive integer); using hardware_concurrency\n",
                   env);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace rcarb
