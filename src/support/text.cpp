#include "support/text.hpp"

#include <cctype>
#include <sstream>

namespace rcarb {

std::string join(const std::vector<std::string>& items,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

bool is_identifier(const std::string& s) {
  if (s.empty() || !std::isalpha(static_cast<unsigned char>(s.front())))
    return false;
  for (char ch : s)
    if (!std::isalnum(static_cast<unsigned char>(ch)) && ch != '_')
      return false;
  return true;
}

std::string indent(const std::string& block, int spaces) {
  const std::string pad(static_cast<std::size_t>(spaces), ' ');
  std::istringstream in(block);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) out << pad << line;
    out << '\n';
  }
  return out.str();
}

std::string signal_name(const std::string& base, std::size_t i) {
  return base + std::to_string(i);
}

}  // namespace rcarb
