#include "support/cpu.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace rcarb {

const char* to_string(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "scalar";
}

SimdTier detected_simd_tier() {
#if defined(__x86_64__) || defined(__i386__)
  static const SimdTier detected = [] {
    if (__builtin_cpu_supports("avx512f")) return SimdTier::kAvx512;
    if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
    return SimdTier::kScalar;
  }();
  return detected;
#else
  return SimdTier::kScalar;
#endif
}

std::optional<SimdTier> parse_simd_tier(const std::string& value) {
  if (value == "scalar") return SimdTier::kScalar;
  if (value == "avx2") return SimdTier::kAvx2;
  if (value == "avx512") return SimdTier::kAvx512;
  return std::nullopt;
}

SimdTier resolve_simd_tier(SimdTier detected, const char* override_value,
                           void (*warn)(const std::string&)) {
  if (override_value == nullptr || *override_value == '\0') return detected;
  const std::optional<SimdTier> wanted = parse_simd_tier(override_value);
  if (!wanted.has_value()) {
    warn(std::string("rcarb: ignoring malformed RCARB_SIMD=\"") +
         override_value +
         "\" (want scalar, avx2 or avx512); using detected tier " +
         to_string(detected));
    return detected;
  }
  if (*wanted > detected) {
    warn(std::string("rcarb: RCARB_SIMD=") + override_value +
         " exceeds this machine; clamping to detected tier " +
         to_string(detected));
    return detected;
  }
  return *wanted;
}

SimdTier simd_tier() {
  static const SimdTier resolved = [] {
    return resolve_simd_tier(
        detected_simd_tier(), std::getenv("RCARB_SIMD"),
        [](const std::string& msg) {
          std::fprintf(stderr, "%s\n", msg.c_str());
        });
  }();
  return resolved;
}

}  // namespace rcarb
