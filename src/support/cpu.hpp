// Runtime CPU feature detection for the SIMD simulation kernels.
//
// The wide-lane netlist simulator ships three kernel tiers: a portable
// std::array<uint64_t, W> baseline that any compiler auto-vectorizes, an
// AVX2 kernel operating on 256-bit words, and an AVX-512 kernel on 512-bit
// words.  Which tier actually runs is a *runtime* decision: the binaries
// carry all tiers (the AVX translation units are compiled with their ISA
// flags but only ever entered after a cpuid check), and dispatch picks the
// widest tier the executing machine supports.
//
// $RCARB_SIMD overrides the choice downward — `RCARB_SIMD=scalar` forces
// the portable kernels everywhere (the CI determinism leg runs the whole
// suite this way and asserts bit-identical checksums), `avx2` caps at
// 256-bit ops.  Requesting a tier the machine lacks warns once and clamps
// to what is detected, matching the RCARB_JOBS idiom: a malformed value
// never aborts a run, it degrades loudly.
#pragma once

#include <optional>
#include <string>

namespace rcarb {

/// Kernel instruction-set tiers, ordered: a machine at tier T can run
/// every tier <= T.
enum class SimdTier : std::uint8_t { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

[[nodiscard]] const char* to_string(SimdTier tier);

/// What the executing CPU supports (cpuid probe, cached after the first
/// call).  kAvx512 requires AVX-512F; kAvx2 requires AVX2; anything else
/// (including non-x86 builds) reports kScalar.
[[nodiscard]] SimdTier detected_simd_tier();

/// Parses an RCARB_SIMD-style value: "scalar", "avx2" or "avx512"
/// (case-sensitive, like RCARB_JOBS digits).  Returns nullopt for
/// anything else, including "".  Pure — the testable core of the env
/// handling.
[[nodiscard]] std::optional<SimdTier> parse_simd_tier(
    const std::string& value);

/// Combines a detected tier with an optional override string: no (or
/// malformed) override yields `detected`; a well-formed override is
/// clamped to `detected`.  Pure.  `warn` receives a one-line diagnostic
/// when the override is malformed or exceeds the machine (the cached
/// wrapper below prints it once to stderr).
[[nodiscard]] SimdTier resolve_simd_tier(SimdTier detected,
                                         const char* override_value,
                                         void (*warn)(const std::string&));

/// The tier dispatch actually uses: detected_simd_tier() clamped by
/// $RCARB_SIMD.  Cached after the first call; malformed or unsatisfiable
/// overrides warn once on stderr (RCARB_JOBS idiom).
[[nodiscard]] SimdTier simd_tier();

}  // namespace rcarb
