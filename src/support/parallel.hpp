// Deterministic parallel sweep engine.
//
// The repo's sweeps (the ~200-cell fault campaign, the encoding / policy
// ablations, the property-test vector sweeps) are embarrassingly parallel:
// each cell is an independent seeded simulation or synthesis run.  This
// engine runs the cells on a small thread pool while keeping every output
// byte-identical to the serial run:
//
//   * work is handed out by index from an atomic counter (no stealing, no
//     per-thread queues — nothing about the result depends on which worker
//     computed which index);
//   * workers write results into per-index slots; the *reducer* runs only
//     on the calling thread and consumes slots in index order, so side
//     effects (table rows, report metrics, trace merges) happen in exactly
//     the order the serial loop would have produced them;
//   * cells must derive their randomness from (master_seed, cell_index)
//     (see rcarb::derive_seed), never from a shared Rng, so values are
//     independent of execution order too.
//
// Job count comes from $RCARB_JOBS (default: hardware_concurrency), and
// RCARB_JOBS=1 takes the exact serial code path — a plain loop on the
// calling thread with no pool, no slots and no synchronization — so the
// pre-parallel behavior stays reachable for bisection.
//
// Wall-clock time is explicitly *outside* the determinism contract.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace rcarb {

/// Worker count for parallel sweeps: $RCARB_JOBS when set to a positive
/// integer (malformed values warn once and fall through), otherwise
/// hardware_concurrency (at least 1).
[[nodiscard]] int parallel_jobs();

/// Runs `map(i)` for i in [0, n) on up to `jobs` threads and feeds the
/// results to `reduce(i, result)` strictly in index order on the calling
/// thread.  Reduction is streamed: slot i is consumed as soon as it and all
/// lower slots are done, so reduction overlaps the remaining map work.
///
/// jobs <= 0 means parallel_jobs(); jobs == 1 runs `reduce(i, map(i))` as a
/// plain serial loop (the exact pre-parallel code path).
///
/// The first exception (lowest index; reducer exceptions count at their
/// index) is rethrown on the calling thread after the pool drains.
template <typename R, typename Map, typename Reduce>
void ordered_map_reduce(std::size_t n, Map&& map, Reduce&& reduce,
                        int jobs = 0) {
  if (jobs <= 0) jobs = parallel_jobs();
  if (jobs == 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) reduce(i, map(i));
    return;
  }

  struct Slot {
    std::optional<R> value;
    std::exception_ptr error;
  };
  std::vector<Slot> slots(n);
  std::vector<char> ready(n, 0);
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancel{false};

  auto worker = [&] {
    for (;;) {
      if (cancel.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      Slot s;
      try {
        s.value.emplace(map(i));
      } catch (...) {
        s.error = std::current_exception();
      }
      {
        const std::lock_guard<std::mutex> lock(mu);
        slots[i] = std::move(s);
        ready[i] = 1;
      }
      cv.notify_all();
    }
  };

  const std::size_t workers =
      std::min(static_cast<std::size_t>(jobs), n);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);

  std::exception_ptr first_error;
  for (std::size_t i = 0; i < n; ++i) {
    Slot s;
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return ready[i] != 0; });
      s = std::move(slots[i]);
    }
    if (s.error) {
      first_error = s.error;
      break;
    }
    try {
      reduce(i, std::move(*s.value));
    } catch (...) {
      first_error = std::current_exception();
      break;
    }
  }
  if (first_error) cancel.store(true, std::memory_order_relaxed);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// Runs `fn(i)` for i in [0, n) on up to `jobs` threads.  No reduction:
/// use when the body's only side effects are into per-index storage.  The
/// same serial-path and exception rules as ordered_map_reduce apply.
template <typename Fn>
void parallel_for_each(std::size_t n, Fn&& fn, int jobs = 0) {
  ordered_map_reduce<char>(
      n,
      [&fn](std::size_t i) {
        fn(i);
        return '\0';
      },
      [](std::size_t, char) {}, jobs);
}

/// Container convenience: `fn(items[i])` for each item, in parallel.
template <typename Container, typename Fn>
void parallel_for_each_item(Container& items, Fn&& fn, int jobs = 0) {
  parallel_for_each(
      items.size(), [&](std::size_t i) { fn(items[i]); }, jobs);
}

}  // namespace rcarb
