// Runtime checking utilities.
//
// RCARB_CHECK is for *caller* errors (bad arguments, protocol misuse): it is
// always on and throws rcarb::CheckError so library users get a diagnosable
// failure instead of UB.  RCARB_ASSERT is for *internal* invariants and
// compiles to the same check (these libraries are not on a hot enough path to
// justify compiling invariant checks out).
#pragma once

#include <stdexcept>
#include <string>

namespace rcarb {

/// Thrown when a precondition or invariant check fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace rcarb

#define RCARB_CHECK(expr, msg)                                        \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::rcarb::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                 \
  } while (false)

#define RCARB_ASSERT(expr, msg) RCARB_CHECK(expr, msg)
