#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/check.hpp"

namespace rcarb {

void Table::set_header(std::vector<std::string> header) {
  RCARB_CHECK(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  RCARB_CHECK(row.size() == header_.size(),
              "row arity must match the header");
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto pad = [](const std::string& s, std::size_t w) {
    return s + std::string(w - s.size(), ' ');
  };
  auto rule = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c)
      s += " " + pad(cells[c], widths[c]) + " |";
    return s + "\n";
  };

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  os << rule() << line(header_) << rule();
  for (const auto& row : rows_) os << line(row);
  os << rule();
  return os.str();
}

void Table::print() const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string fmt_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

}  // namespace rcarb
