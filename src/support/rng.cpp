#include "support/rng.hpp"

#include "support/check.hpp"

namespace rcarb {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64 — seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  RCARB_CHECK(bound > 0, "next_below requires a positive bound");
  // Lemire's nearly-divisionless method.
  __extension__ using u128 = unsigned __int128;
  std::uint64_t x = next_u64();
  u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<u128>(x) * static_cast<u128>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  RCARB_CHECK(lo <= hi, "next_in requires lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Offset in unsigned space: `lo + (int64)next_below(span)` overflows the
  // signed range (UB) whenever the span crosses 2^63 — e.g. lo = INT64_MIN,
  // hi = INT64_MAX - 1 draws offsets up to 2^64 - 2.  Two's-complement
  // wraparound in uint64 followed by the value-preserving cast back is the
  // same result wherever the old expression was defined.
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   next_below(span));
}

bool Rng::chance(std::uint64_t num, std::uint64_t den) {
  RCARB_CHECK(den > 0 && num <= den, "chance requires num <= den, den > 0");
  return next_below(den) < num;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t index) {
  // Two splitmix64 rounds over a state that separates master from index by
  // the golden-ratio increment; a plain XOR of the inputs would make
  // (m, i) and (m ^ d, i ^ d) collide.
  std::uint64_t x = master + 0x9e3779b97f4a7c15ull * (index + 1);
  (void)splitmix64(x);  // first round only advances the state
  return splitmix64(x);
}

}  // namespace rcarb
