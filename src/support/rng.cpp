#include "support/rng.hpp"

#include "support/check.hpp"

namespace rcarb {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64 — seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  RCARB_CHECK(bound > 0, "next_below requires a positive bound");
  // Lemire's nearly-divisionless method.
  __extension__ using u128 = unsigned __int128;
  std::uint64_t x = next_u64();
  u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<u128>(x) * static_cast<u128>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  RCARB_CHECK(lo <= hi, "next_in requires lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::chance(std::uint64_t num, std::uint64_t den) {
  RCARB_CHECK(den > 0 && num <= den, "chance requires num <= den, den > 0");
  return next_below(den) < num;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

}  // namespace rcarb
