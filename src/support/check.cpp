#include "support/check.hpp"

#include <sstream>

namespace rcarb::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace rcarb::detail
