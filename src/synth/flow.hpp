// FSM synthesis flows.
//
// Bundles encoding, two-level minimization, AIG construction, LUT mapping
// and CLB packing into one call.  Two presets model the two commercial
// tools of the paper's Figs. 6-7:
//   * kSynplifyLike — always one-hot regardless of the requested encoding
//     (the paper notes "Synplify used one-hot encoding regardless of what
//     the VHDL files specified"), area-oriented mapping.
//   * kExpressLike  — honors the requested encoding, depth-oriented
//     mapping (FPGA Express implemented both schemes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "synth/clb_pack.hpp"
#include "synth/elaborate.hpp"
#include "synth/encoding.hpp"
#include "synth/fsm.hpp"
#include "synth/lut_map.hpp"

namespace rcarb::synth {

/// Synthesis tool persona.
enum class FlowKind : std::uint8_t { kSynplifyLike, kExpressLike };

[[nodiscard]] const char* to_string(FlowKind k);

struct FlowOptions {
  FlowKind kind = FlowKind::kExpressLike;
  Encoding encoding = Encoding::kOneHot;  // the "VHDL-requested" encoding
  bool run_minimizer = true;
  /// Covers wider than this many variables skip the full espresso loop and
  /// only get cheap reductions (the loop's tautology checks are exponential
  /// in the worst case).
  int minimize_var_limit = 22;
  /// Covers with more cubes than this also skip the full loop (espresso's
  /// inner passes are quadratic in the cube count).
  std::size_t minimize_cube_limit = 256;
  /// SEU hardening: elaborate with illegal-state recovery logic (see
  /// synth::elaborate).  Costs area; Fig. 6-style figures stay unhardened.
  bool harden = false;
};

struct SynthResult {
  netlist::Netlist netlist;
  Encoding used_encoding = Encoding::kOneHot;
  ClbReport clb;
  MapStats map;
  std::size_t aig_ands = 0;
  std::size_t sop_cubes = 0;  // total cubes after minimization
};

/// Synthesizes a validated FSM to a LUT/DFF netlist and packs it.
/// Netlist interface: one PI per FSM input (FSM input names), one PO per FSM
/// output (FSM output names); state registers are nets "state<b>".
[[nodiscard]] SynthResult synthesize_fsm(const Fsm& fsm,
                                         const FlowOptions& options);

/// Lower half of the flow, shared with structural generators: takes the
/// combinational AIG of an already-encoded machine (AIG inputs must be
/// [machine inputs..., state bits...] and AIG outputs [next-state bits...,
/// machine outputs...]), maps it, closes the register loop and packs.
/// Output nets are marked with the AIG output names.
[[nodiscard]] SynthResult finish_machine_synthesis(const aig::Aig& comb,
                                                   int num_inputs,
                                                   int num_state_bits,
                                                   std::uint64_t reset_code,
                                                   const MapOptions& map_options);

/// Wide-register variant: `reset_bits[b]` is the init value of state bit b,
/// so machines with more than 64 state bits (the N = 64..1024 scalable
/// arbiters) can close their register loop.  The std::uint64_t overload
/// delegates here.
[[nodiscard]] SynthResult finish_machine_synthesis(
    const aig::Aig& comb, int num_inputs, int num_state_bits,
    const std::vector<bool>& reset_bits, const MapOptions& map_options);

}  // namespace rcarb::synth
