// State assignment (encoding) schemes.
//
// The paper's arbiter generator offers one-hot, "compact" (minimum-length
// binary) and the synthesis tool's default; Fig. 6/7 compare one-hot vs
// compact.  We add gray as a third explicit scheme for the encoding
// ablation bench.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logic/cover.hpp"
#include "synth/fsm.hpp"

namespace rcarb::synth {

/// FSM state encoding scheme.
enum class Encoding : std::uint8_t {
  kOneHot,   // one flip-flop per state
  kCompact,  // minimum-length binary
  kGray,     // minimum-length gray code
};

[[nodiscard]] const char* to_string(Encoding e);

/// A concrete state assignment: every state has a code over `num_bits`
/// register bits.
struct StateCodes {
  Encoding encoding = Encoding::kOneHot;
  int num_bits = 0;
  std::vector<std::uint64_t> code;  // per StateId

  /// Recognizer cube for a state over variables [first_var, first_var +
  /// num_bits).  One-hot uses the standard single-literal recognizer (code
  /// validity is an invariant of the register bank); dense codes use the
  /// full code.  `full_recognizer` forces the full code even for one-hot —
  /// the hardened elaboration uses it so illegal (non-one-hot) registers
  /// drive no transition and fall into the recovery logic instead.
  [[nodiscard]] logic::Cube state_cube(StateId s, int first_var,
                                       bool full_recognizer = false) const;

  /// The state whose code equals `code_bits`, or npos if invalid.
  [[nodiscard]] std::size_t decode(std::uint64_t code_bits) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Assigns codes to all states of `fsm` under `encoding`.
[[nodiscard]] StateCodes encode_states(const Fsm& fsm, Encoding encoding);

}  // namespace rcarb::synth
