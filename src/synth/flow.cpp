#include "synth/flow.hpp"

#include <utility>
#include <vector>

#include "aig/aig.hpp"
#include "support/check.hpp"

namespace rcarb::synth {

const char* to_string(FlowKind k) {
  switch (k) {
    case FlowKind::kSynplifyLike:
      return "synplify-like";
    case FlowKind::kExpressLike:
      return "express-like";
  }
  return "?";
}

SynthResult finish_machine_synthesis(const aig::Aig& comb, int num_inputs,
                                     int num_state_bits,
                                     std::uint64_t reset_code,
                                     const MapOptions& map_options) {
  RCARB_CHECK(num_state_bits <= 64,
              "a 64-bit reset code covers at most 64 state bits");
  std::vector<bool> reset_bits(static_cast<std::size_t>(num_state_bits));
  for (int b = 0; b < num_state_bits; ++b)
    reset_bits[static_cast<std::size_t>(b)] = ((reset_code >> b) & 1u) != 0;
  return finish_machine_synthesis(comb, num_inputs, num_state_bits,
                                  reset_bits, map_options);
}

SynthResult finish_machine_synthesis(const aig::Aig& comb, int num_inputs,
                                     int num_state_bits,
                                     const std::vector<bool>& reset_bits,
                                     const MapOptions& map_options) {
  RCARB_CHECK(reset_bits.size() == static_cast<std::size_t>(num_state_bits),
              "one reset bit per state bit");
  RCARB_CHECK(comb.num_inputs() ==
                  static_cast<std::size_t>(num_inputs + num_state_bits),
              "AIG inputs must be machine inputs plus state bits");
  RCARB_CHECK(comb.num_outputs() >= static_cast<std::size_t>(num_state_bits),
              "AIG must produce every next-state bit");

  // Netlist skeleton: PIs (named after the AIG inputs), then the register
  // bank (named after the state-bit AIG inputs).
  netlist::Netlist nl;
  std::vector<netlist::NetId> input_nets;
  for (int i = 0; i < num_inputs; ++i)
    input_nets.push_back(
        nl.add_input(comb.input_name(static_cast<std::size_t>(i))));
  std::vector<std::size_t> dff_index;
  for (int b = 0; b < num_state_bits; ++b) {
    const bool init = reset_bits[static_cast<std::size_t>(b)];
    dff_index.push_back(nl.num_dffs());
    input_nets.push_back(nl.add_dff(
        /*d=*/0, init,
        comb.input_name(static_cast<std::size_t>(num_inputs + b))));
  }

  SynthResult result;
  const std::vector<netlist::NetId> out_nets =
      map_aig(comb, map_options, nl, input_nets, "m_", &result.map);

  // Close the state loop, then publish the remaining outputs.
  for (int b = 0; b < num_state_bits; ++b)
    nl.connect_dff_d(dff_index[static_cast<std::size_t>(b)],
                     out_nets[static_cast<std::size_t>(b)]);
  for (std::size_t o = static_cast<std::size_t>(num_state_bits);
       o < comb.num_outputs(); ++o)
    nl.mark_output(out_nets[o], comb.output_name(o));

  result.aig_ands = comb.num_ands();
  result.clb = pack_xc4000e(nl);
  result.netlist = std::move(nl);
  return result;
}

SynthResult synthesize_fsm(const Fsm& fsm, const FlowOptions& options) {
  fsm.validate();

  const Encoding used = options.kind == FlowKind::kSynplifyLike
                            ? Encoding::kOneHot
                            : options.encoding;
  const StateCodes codes = encode_states(fsm, used);
  ElaboratedFsm elab = elaborate(fsm, codes, options.harden);

  // Two-level minimization of every next-state / output cover.
  std::size_t sop_cubes = 0;
  auto reduce = [&](logic::Cover& cover) {
    if (!options.run_minimizer) return;
    if (elab.num_vars() <= options.minimize_var_limit &&
        cover.size() <= options.minimize_cube_limit) {
      const logic::Cover* dc = elab.dc ? &*elab.dc : nullptr;
      logic::minimize(cover, dc);
    } else {
      cover.remove_single_cube_contained();
    }
  };
  for (auto& cover : elab.next_state) reduce(cover);
  for (auto& cover : elab.outputs) reduce(cover);
  for (const auto& cover : elab.next_state) sop_cubes += cover.size();
  for (const auto& cover : elab.outputs) sop_cubes += cover.size();

  // Build the combinational AIG over [inputs..., state bits...].
  aig::Aig graph;
  std::vector<aig::Lit> in_lits;
  for (const auto& name : elab.input_names)
    in_lits.push_back(graph.add_input(name));
  for (const auto& name : elab.state_bit_names)
    in_lits.push_back(graph.add_input(name));
  for (std::size_t b = 0; b < elab.next_state.size(); ++b)
    graph.add_output("ns" + std::to_string(b),
                     graph.from_cover(elab.next_state[b], in_lits));
  for (std::size_t o = 0; o < elab.outputs.size(); ++o)
    graph.add_output(elab.output_names[o],
                     graph.from_cover(elab.outputs[o], in_lits));

  MapOptions map_options;
  map_options.objective = options.kind == FlowKind::kSynplifyLike
                              ? MapObjective::kArea
                              : MapObjective::kDepth;
  SynthResult result =
      finish_machine_synthesis(graph, elab.num_inputs, elab.num_state_bits,
                               elab.reset_code, map_options);
  result.used_encoding = used;
  result.sop_cubes = sop_cubes;
  return result;
}

}  // namespace rcarb::synth
