#include "synth/fsm.hpp"

#include "support/check.hpp"

namespace rcarb::synth {

StateId Fsm::add_state(std::string name) {
  states_.push_back(std::move(name));
  return states_.size() - 1;
}

int Fsm::add_input(std::string name) {
  RCARB_CHECK(inputs_.size() < 64, "at most 64 FSM inputs supported");
  inputs_.push_back(std::move(name));
  return static_cast<int>(inputs_.size() - 1);
}

int Fsm::add_output(std::string name) {
  RCARB_CHECK(outputs_.size() < 64, "at most 64 FSM outputs supported");
  outputs_.push_back(std::move(name));
  return static_cast<int>(outputs_.size() - 1);
}

void Fsm::set_reset_state(StateId s) {
  RCARB_CHECK(s < states_.size(), "reset state out of range");
  reset_state_ = s;
}

void Fsm::add_transition(StateId from, const logic::Cube& guard, StateId to,
                         std::uint64_t outputs) {
  RCARB_CHECK(from < states_.size() && to < states_.size(),
              "transition endpoint out of range");
  RCARB_CHECK((guard.mask() >> inputs_.size()) == 0 || inputs_.size() == 64,
              "guard uses variables beyond the FSM inputs");
  RCARB_CHECK(outputs_.size() == 64 || (outputs >> outputs_.size()) == 0,
              "output bits beyond declared outputs");
  transitions_.push_back({from, guard, to, outputs});
}

void Fsm::validate() const {
  RCARB_CHECK(!states_.empty(), "FSM has no states");
  for (StateId s = 0; s < states_.size(); ++s) {
    logic::Cover guards(num_inputs());
    std::vector<const Transition*> from_s;
    for (const Transition& t : transitions_)
      if (t.from == s) from_s.push_back(&t);
    RCARB_CHECK(!from_s.empty(),
                "state " + states_[s] + " has no outgoing transitions");
    for (std::size_t i = 0; i < from_s.size(); ++i) {
      for (std::size_t j = i + 1; j < from_s.size(); ++j) {
        RCARB_CHECK(!from_s[i]->guard.intersects(from_s[j]->guard),
                    "overlapping guards from state " + states_[s]);
      }
      guards.add(from_s[i]->guard);
    }
    RCARB_CHECK(guards.is_tautology(),
                "incomplete guards from state " + states_[s]);
  }
}

const std::string& Fsm::state_name(StateId s) const {
  RCARB_CHECK(s < states_.size(), "state out of range");
  return states_[s];
}

const std::string& Fsm::input_name(int i) const {
  RCARB_CHECK(i >= 0 && i < num_inputs(), "input out of range");
  return inputs_[static_cast<std::size_t>(i)];
}

const std::string& Fsm::output_name(int o) const {
  RCARB_CHECK(o >= 0 && o < num_outputs(), "output out of range");
  return outputs_[static_cast<std::size_t>(o)];
}

Fsm::StepResult Fsm::step(StateId state, std::uint64_t inputs) const {
  RCARB_CHECK(state < states_.size(), "state out of range");
  for (const Transition& t : transitions_) {
    if (t.from != state) continue;
    if (t.guard.eval(inputs)) return {t.to, t.outputs};
  }
  RCARB_CHECK(false, "no transition matches (FSM incomplete) from state " +
                         states_[state]);
  return {0, 0};  // unreachable
}

}  // namespace rcarb::synth
