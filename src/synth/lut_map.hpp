// Technology mapping: AIG -> k-input LUT netlist.
//
// Classic k-feasible structural cut enumeration with priority cuts: every
// AIG node keeps a bounded set of cuts ranked by the mapping objective
// (depth-oriented or area-oriented), the best cut per node induces the LUT
// cover, and LUT truth tables are computed by cone evaluation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "netlist/netlist.hpp"

namespace rcarb::synth {

/// Mapping objective: minimize logic depth or LUT count.
enum class MapObjective : std::uint8_t { kDepth, kArea };

struct MapOptions {
  int cut_size = 4;        // k (<= netlist::kMaxLutInputs)
  int cuts_per_node = 8;   // priority-cut bound
  MapObjective objective = MapObjective::kDepth;
};

struct MapStats {
  std::size_t luts = 0;
  int depth = 0;  // LUT levels on the longest output path
};

/// Maps `aig` into `out`.  `input_nets[i]` is the pre-existing net in `out`
/// that carries AIG input i.  Fresh net names are prefixed with `prefix`.
/// Returns the net driving each AIG output, in output order, and fills
/// `stats` if non-null.
std::vector<netlist::NetId> map_aig(const aig::Aig& aig,
                                    const MapOptions& options,
                                    netlist::Netlist& out,
                                    const std::vector<netlist::NetId>& input_nets,
                                    const std::string& prefix,
                                    MapStats* stats = nullptr);

}  // namespace rcarb::synth
