#include "synth/clb_pack.hpp"

#include <algorithm>
#include <vector>

namespace rcarb::synth {

ClbReport pack_xc4000e(const netlist::Netlist& nl) {
  ClbReport report;
  report.luts = nl.num_luts();
  report.ffs = nl.num_dffs();

  const auto fanout = nl.fanout_counts();

  // Greedy H-absorption: a LUT with <= 3 inputs of which at least two are
  // single-fanout outputs of other (still unclaimed) LUTs can become the H
  // generator of a CLB whose F and G are those two feeder LUTs.
  std::vector<bool> claimed(nl.num_luts(), false);
  std::size_t h_triples = 0;
  for (std::size_t i = 0; i < nl.num_luts(); ++i) {
    if (claimed[i]) continue;
    const netlist::Lut& lut = nl.luts()[i];
    if (lut.inputs.size() > 3) continue;
    std::vector<std::size_t> feeders;
    for (netlist::NetId in : lut.inputs) {
      if (nl.driver_kind(in) != netlist::DriverKind::kLut) continue;
      const std::size_t feeder = nl.driver_index(in);
      if (feeder == i || claimed[feeder]) continue;
      if (fanout[in] != 1) continue;
      feeders.push_back(feeder);
    }
    if (feeders.size() < 2) continue;
    // Claim H + two feeders as one CLB.
    claimed[i] = true;
    claimed[feeders[0]] = true;
    claimed[feeders[1]] = true;
    ++h_triples;
  }
  report.h_luts = h_triples;

  const std::size_t remaining_luts =
      nl.num_luts() - 3 * h_triples;  // F/G-eligible LUTs left
  const std::size_t fg_clbs = (remaining_luts + 1) / 2;
  const std::size_t logic_clbs = h_triples + fg_clbs;

  // Flip-flops ride along: each logic CLB offers 2 FF slots; overflow FFs
  // occupy CLBs of their own (2 per CLB).
  const std::size_t ff_capacity = 2 * logic_clbs;
  const std::size_t overflow_ffs =
      nl.num_dffs() > ff_capacity ? nl.num_dffs() - ff_capacity : 0;
  report.ff_only_clbs = (overflow_ffs + 1) / 2;
  report.clbs = logic_clbs + report.ff_only_clbs;
  return report;
}

}  // namespace rcarb::synth
