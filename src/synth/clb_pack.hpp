// XC4000e CLB packing.
//
// The Xilinx XC4000-series CLB contains two 4-input function generators
// (F and G), a third 3-input function generator (H) whose inputs are the F
// and G outputs plus one direct signal, and two D flip-flops.  The packer
// estimates how many CLBs a mapped LUT/DFF netlist occupies, which is the
// unit in which the paper's Fig. 6 reports arbiter area.
#pragma once

#include <cstddef>

#include "netlist/netlist.hpp"

namespace rcarb::synth {

/// Outcome of packing a netlist into XC4000e CLBs.
struct ClbReport {
  std::size_t clbs = 0;         // total CLBs used
  std::size_t luts = 0;         // 4-input LUTs packed as F/G
  std::size_t h_luts = 0;       // LUTs absorbed into H function generators
  std::size_t ffs = 0;          // flip-flops
  std::size_t ff_only_clbs = 0; // CLBs used purely for flip-flops
};

/// Packs the netlist; greedy H-absorption, then F/G pairing, then FFs.
[[nodiscard]] ClbReport pack_xc4000e(const netlist::Netlist& netlist);

}  // namespace rcarb::synth
