#include "synth/encoding.hpp"

#include <bit>

#include "support/check.hpp"

namespace rcarb::synth {

const char* to_string(Encoding e) {
  switch (e) {
    case Encoding::kOneHot:
      return "one-hot";
    case Encoding::kCompact:
      return "compact";
    case Encoding::kGray:
      return "gray";
  }
  return "?";
}

logic::Cube StateCodes::state_cube(StateId s, int first_var,
                                   bool full_recognizer) const {
  RCARB_CHECK(s < code.size(), "state out of range");
  logic::Cube c;
  if (encoding == Encoding::kOneHot && !full_recognizer) {
    const int bit = std::countr_zero(code[s]);
    return c.with_literal(first_var + bit, true);
  }
  for (int b = 0; b < num_bits; ++b)
    c = c.with_literal(first_var + b, ((code[s] >> b) & 1u) != 0);
  return c;
}

std::size_t StateCodes::decode(std::uint64_t code_bits) const {
  for (std::size_t s = 0; s < code.size(); ++s)
    if (code[s] == code_bits) return s;
  return npos;
}

StateCodes encode_states(const Fsm& fsm, Encoding encoding) {
  const std::size_t n = fsm.num_states();
  RCARB_CHECK(n >= 1, "cannot encode an empty FSM");
  StateCodes sc;
  sc.encoding = encoding;
  sc.code.resize(n);
  switch (encoding) {
    case Encoding::kOneHot: {
      RCARB_CHECK(n <= 64, "one-hot supports at most 64 states");
      sc.num_bits = static_cast<int>(n);
      for (std::size_t s = 0; s < n; ++s) sc.code[s] = 1ull << s;
      break;
    }
    case Encoding::kCompact: {
      sc.num_bits = std::max(1, static_cast<int>(std::bit_width(n - 1)));
      for (std::size_t s = 0; s < n; ++s) sc.code[s] = s;
      break;
    }
    case Encoding::kGray: {
      sc.num_bits = std::max(1, static_cast<int>(std::bit_width(n - 1)));
      for (std::size_t s = 0; s < n; ++s) sc.code[s] = s ^ (s >> 1);
      break;
    }
  }
  return sc;
}

}  // namespace rcarb::synth
