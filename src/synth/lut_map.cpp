#include "synth/lut_map.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "support/check.hpp"
#include "support/text.hpp"

namespace rcarb::synth {

namespace {

using aig::Aig;
using aig::Lit;

/// A k-feasible cut: sorted unique leaf node ids.
struct Cut {
  std::vector<std::uint32_t> leaves;
  int depth = 0;
  double area_flow = 0.0;
};

bool leaves_equal(const Cut& a, const Cut& b) { return a.leaves == b.leaves; }

/// Merges two leaf sets if the union stays within k.
bool merge_leaves(const std::vector<std::uint32_t>& a,
                  const std::vector<std::uint32_t>& b, int k,
                  std::vector<std::uint32_t>& out) {
  out.clear();
  std::size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    std::uint32_t next;
    if (j >= b.size() || (i < a.size() && a[i] < b[j]))
      next = a[i++];
    else if (i >= a.size() || b[j] < a[i])
      next = b[j++];
    else {
      next = a[i];
      ++i;
      ++j;
    }
    out.push_back(next);
    if (out.size() > static_cast<std::size_t>(k)) return false;
  }
  return true;
}

/// Evaluates the cone of `root` over an assignment of the cut leaves.
bool eval_cone(const Aig& aig, std::uint32_t root,
               const std::vector<std::uint32_t>& leaves,
               std::uint32_t leaf_values,
               std::unordered_map<std::uint32_t, bool>& memo) {
  if (root == 0) return false;  // constant node
  for (std::size_t i = 0; i < leaves.size(); ++i)
    if (leaves[i] == root) return ((leaf_values >> i) & 1u) != 0;
  if (auto it = memo.find(root); it != memo.end()) return it->second;
  RCARB_ASSERT(aig.is_and(root), "cone walk reached an unexpected node");
  const Lit f0 = aig.fanin0(root);
  const Lit f1 = aig.fanin1(root);
  const bool v0 = eval_cone(aig, aig::lit_node(f0), leaves, leaf_values, memo) ^
                  aig::lit_compl(f0);
  const bool v1 = eval_cone(aig, aig::lit_node(f1), leaves, leaf_values, memo) ^
                  aig::lit_compl(f1);
  const bool v = v0 && v1;
  memo.emplace(root, v);
  return v;
}

std::uint16_t cut_truth_table(const Aig& aig, std::uint32_t root,
                              const std::vector<std::uint32_t>& leaves) {
  std::uint16_t mask = 0;
  const std::uint32_t rows = 1u << leaves.size();
  for (std::uint32_t row = 0; row < rows; ++row) {
    std::unordered_map<std::uint32_t, bool> memo;
    if (eval_cone(aig, root, leaves, row, memo))
      mask = static_cast<std::uint16_t>(mask | (1u << row));
  }
  return mask;
}

}  // namespace

std::vector<netlist::NetId> map_aig(const Aig& aig, const MapOptions& options,
                                    netlist::Netlist& out,
                                    const std::vector<netlist::NetId>& input_nets,
                                    const std::string& prefix,
                                    MapStats* stats) {
  RCARB_CHECK(options.cut_size >= 2 &&
                  options.cut_size <=
                      static_cast<int>(netlist::kMaxLutInputs),
              "cut size out of range");
  RCARB_CHECK(input_nets.size() == aig.num_inputs(),
              "input net count must match AIG inputs");

  const std::size_t n = aig.num_nodes();

  // ---- Phase 1: priority-cut enumeration, best cut per node. ----
  std::vector<std::vector<Cut>> cuts(n);
  std::vector<Cut> best(n);

  auto better = [&](const Cut& a, const Cut& b) {
    if (options.objective == MapObjective::kDepth) {
      if (a.depth != b.depth) return a.depth < b.depth;
      if (a.area_flow != b.area_flow) return a.area_flow < b.area_flow;
    } else {
      if (a.area_flow != b.area_flow) return a.area_flow < b.area_flow;
      if (a.depth != b.depth) return a.depth < b.depth;
    }
    return a.leaves.size() < b.leaves.size();
  };

  for (std::uint32_t node = 0; node < n; ++node) {
    if (node == 0 || aig.is_input(node)) {
      Cut trivial{{node}, 0, 0.0};
      cuts[node] = {trivial};
      best[node] = trivial;
      continue;
    }
    const Lit f0 = aig.fanin0(node);
    const Lit f1 = aig.fanin1(node);
    const std::uint32_t n0 = aig::lit_node(f0);
    const std::uint32_t n1 = aig::lit_node(f1);

    std::vector<Cut> mine;
    std::vector<std::uint32_t> merged;
    for (const Cut& c0 : cuts[n0]) {
      for (const Cut& c1 : cuts[n1]) {
        if (!merge_leaves(c0.leaves, c1.leaves, options.cut_size, merged))
          continue;
        Cut c;
        c.leaves = merged;
        c.depth = 0;
        c.area_flow = 1.0;
        for (std::uint32_t leaf : c.leaves) {
          c.depth = std::max(c.depth, best[leaf].depth + 1);
          c.area_flow += best[leaf].area_flow;
        }
        bool duplicate = false;
        for (const Cut& existing : mine)
          if (leaves_equal(existing, c)) {
            duplicate = true;
            break;
          }
        if (!duplicate) mine.push_back(std::move(c));
      }
    }
    RCARB_ASSERT(!mine.empty(), "AND node with no feasible cut");
    std::sort(mine.begin(), mine.end(), better);
    if (mine.size() > static_cast<std::size_t>(options.cuts_per_node))
      mine.resize(static_cast<std::size_t>(options.cuts_per_node));
    best[node] = mine.front();
    // Trivial cut participates in consumers' merges but is never selected
    // as the node's own implementation.
    mine.push_back(Cut{{node}, best[node].depth, best[node].area_flow});
    cuts[node] = std::move(mine);
  }

  // ---- Phase 2: cover from the outputs down, materializing LUTs. ----
  // plain_net[node]: net carrying the node's (uncomplemented) function.
  std::vector<netlist::NetId> plain_net(n, netlist::NetId(-1));
  std::vector<int> lut_level(n, 0);
  for (std::size_t i = 0; i < input_nets.size(); ++i)
    plain_net[i + 1] = input_nets[i];

  netlist::NetId const_net = netlist::NetId(-1);
  auto get_const_net = [&]() {
    if (const_net == netlist::NetId(-1))
      const_net = out.add_lut({}, 0, prefix + "const0");
    return const_net;
  };

  std::size_t fresh = 0;
  auto materialize = [&](auto&& self, std::uint32_t node) -> netlist::NetId {
    if (node == 0) return get_const_net();
    if (plain_net[node] != netlist::NetId(-1)) return plain_net[node];
    RCARB_ASSERT(aig.is_and(node), "materializing an unexpected node");
    const Cut& cut = best[node];
    std::vector<netlist::NetId> ins;
    int level = 0;
    ins.reserve(cut.leaves.size());
    for (std::uint32_t leaf : cut.leaves) {
      ins.push_back(self(self, leaf));
      level = std::max(level, lut_level[leaf]);
    }
    const std::uint16_t mask = cut_truth_table(aig, node, cut.leaves);
    const netlist::NetId net =
        out.add_lut(std::move(ins), mask, prefix + "n" + std::to_string(fresh++));
    plain_net[node] = net;
    lut_level[node] = level + 1;
    return net;
  };

  std::vector<netlist::NetId> output_nets;
  int max_level = 0;
  std::size_t luts_before = out.num_luts();
  for (std::size_t o = 0; o < aig.num_outputs(); ++o) {
    const Lit driver = aig.output_driver(o);
    const std::uint32_t node = aig::lit_node(driver);
    netlist::NetId net;
    int level;
    if (node == 0) {
      // Constant output: a 0-input LUT with the right constant.
      net = out.add_lut({}, aig::lit_compl(driver) ? std::uint16_t{1}
                                                   : std::uint16_t{0},
                        prefix + "const_out" + std::to_string(o));
      level = 0;
    } else {
      net = materialize(materialize, node);
      level = lut_level[node];
      if (aig::lit_compl(driver)) {
        net = out.add_lut({net}, 0b01,
                          prefix + "inv" + std::to_string(o));
        level += 1;
      }
    }
    output_nets.push_back(net);
    max_level = std::max(max_level, level);
  }

  if (stats != nullptr) {
    stats->luts = out.num_luts() - luts_before;
    stats->depth = max_level;
  }
  return output_nets;
}

}  // namespace rcarb::synth
