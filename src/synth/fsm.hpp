// Finite state machine specifications (Mealy style).
//
// An Fsm is the synthesis-facing description of a controller: named states,
// named inputs and outputs, and transitions guarded by cubes over the
// inputs.  Outputs are Mealy: they are attached to transitions, as in the
// paper's Fig. 5 where the grant is issued combinationally with the state
// change.  validate() checks determinism (pairwise-disjoint guards per
// state) and completeness (guards of every state cover the input space).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logic/cover.hpp"

namespace rcarb::synth {

/// Index of a state within an Fsm.
using StateId = std::size_t;

/// One guarded transition with Mealy outputs.
struct Transition {
  StateId from = 0;
  logic::Cube guard;           // over the FSM inputs (vars 0..I-1)
  StateId to = 0;
  std::uint64_t outputs = 0;   // bit o set => output o asserted
};

/// A Mealy FSM over named states, inputs and outputs.
class Fsm {
 public:
  explicit Fsm(std::string name) : name_(std::move(name)) {}

  StateId add_state(std::string name);
  int add_input(std::string name);
  int add_output(std::string name);

  /// First state added is the reset state unless overridden here.
  void set_reset_state(StateId s);

  void add_transition(StateId from, const logic::Cube& guard, StateId to,
                      std::uint64_t outputs);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_states() const { return states_.size(); }
  [[nodiscard]] int num_inputs() const {
    return static_cast<int>(inputs_.size());
  }
  [[nodiscard]] int num_outputs() const {
    return static_cast<int>(outputs_.size());
  }
  [[nodiscard]] StateId reset_state() const { return reset_state_; }

  [[nodiscard]] const std::string& state_name(StateId s) const;
  [[nodiscard]] const std::string& input_name(int i) const;
  [[nodiscard]] const std::string& output_name(int o) const;
  [[nodiscard]] const std::vector<Transition>& transitions() const {
    return transitions_;
  }

  /// Throws CheckError if any state's guards overlap or leave input
  /// combinations unhandled.
  void validate() const;

  /// Reference semantics: executes one step from `state` on `inputs`
  /// (bit i = input i); returns {next_state, outputs}.  Requires validated
  /// determinism (first matching transition is THE matching transition).
  struct StepResult {
    StateId next_state;
    std::uint64_t outputs;
  };
  [[nodiscard]] StepResult step(StateId state, std::uint64_t inputs) const;

 private:
  std::string name_;
  std::vector<std::string> states_;
  std::vector<std::string> inputs_;
  std::vector<std::string> outputs_;
  std::vector<Transition> transitions_;
  StateId reset_state_ = 0;
};

}  // namespace rcarb::synth
