#include "synth/elaborate.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/text.hpp"

namespace rcarb::synth {

ElaboratedFsm elaborate(const Fsm& fsm, const StateCodes& codes,
                        bool harden) {
  RCARB_CHECK(codes.code.size() == fsm.num_states(),
              "state codes do not match the FSM");
  ElaboratedFsm e;
  e.num_inputs = fsm.num_inputs();
  e.num_state_bits = codes.num_bits;
  e.reset_code = codes.code[fsm.reset_state()];
  RCARB_CHECK(e.num_vars() <= logic::kMaxVars,
              "FSM too wide to elaborate (inputs + state bits > 64)");

  const int nvars = e.num_vars();
  e.next_state.assign(static_cast<std::size_t>(codes.num_bits),
                      logic::Cover(nvars));
  e.outputs.assign(static_cast<std::size_t>(fsm.num_outputs()),
                   logic::Cover(nvars));

  for (const Transition& t : fsm.transitions()) {
    // Guard variables are already [0, I); state recognizer sits at [I, I+B).
    const logic::Cube state_cube =
        codes.state_cube(t.from, e.num_inputs, harden);
    const logic::Cube full = t.guard.intersect(state_cube);
    const std::uint64_t to_code = codes.code[t.to];
    for (int b = 0; b < codes.num_bits; ++b)
      if ((to_code >> b) & 1u)
        e.next_state[static_cast<std::size_t>(b)].add(full);
    for (int o = 0; o < fsm.num_outputs(); ++o)
      if ((t.outputs >> o) & 1u)
        e.outputs[static_cast<std::size_t>(o)].add(full);
  }

  // Recovery terms load the reset code whenever the register holds an
  // illegal state; they are disjoint from every (full-recognizer) legal
  // transition, so determinism is preserved.
  auto add_recovery = [&](const logic::Cube& illegal) {
    for (int b = 0; b < codes.num_bits; ++b)
      if ((e.reset_code >> b) & 1u)
        e.next_state[static_cast<std::size_t>(b)].add(illegal);
  };

  if (codes.encoding == Encoding::kOneHot) {
    // One-hot: the legal set is "exactly one bit hot".  (Unhardened, code
    // validity is an assumed register-bank invariant and illegal states are
    // simply never recognized.)
    if (harden) {
      logic::Cube zero_hot;
      for (int b = 0; b < codes.num_bits; ++b)
        zero_hot = zero_hot.with_literal(e.num_inputs + b, false);
      add_recovery(zero_hot);
      for (int i = 0; i < codes.num_bits; ++i)
        for (int j = i + 1; j < codes.num_bits; ++j) {
          const logic::Cube pair = logic::Cube::literal(e.num_inputs + i, true)
                                       .with_literal(e.num_inputs + j, true);
          add_recovery(pair);
        }
    }
  } else {
    // Dense encodings may leave unused codes: don't-cares for the
    // minimizer, or recovery transitions when hardened.
    const std::uint64_t num_codes = 1ull << codes.num_bits;
    logic::Cover dc(nvars);
    for (std::uint64_t c = 0; c < num_codes; ++c) {
      if (std::find(codes.code.begin(), codes.code.end(), c) !=
          codes.code.end())
        continue;
      logic::Cube cube;
      for (int b = 0; b < codes.num_bits; ++b)
        cube = cube.with_literal(e.num_inputs + b, ((c >> b) & 1u) != 0);
      if (harden)
        add_recovery(cube);
      else
        dc.add(cube);
    }
    if (!dc.empty()) e.dc = std::move(dc);
  }

  for (int i = 0; i < fsm.num_inputs(); ++i)
    e.input_names.push_back(fsm.input_name(i));
  for (int b = 0; b < codes.num_bits; ++b)
    e.state_bit_names.push_back(signal_name("state", static_cast<std::size_t>(b)));
  for (int o = 0; o < fsm.num_outputs(); ++o)
    e.output_names.push_back(fsm.output_name(o));
  return e;
}

}  // namespace rcarb::synth
