// FSM elaboration: from symbolic FSM + state codes to Boolean covers.
//
// Variable convention for all produced covers: FSM inputs occupy variables
// [0, I) and current-state register bits occupy [I, I+B).  Each next-state
// bit and each Mealy output becomes one ON-set cover; unused dense codes
// become a shared don't-care cover the minimizer may exploit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "logic/cover.hpp"
#include "synth/encoding.hpp"
#include "synth/fsm.hpp"

namespace rcarb::synth {

/// The Boolean view of an encoded FSM.
struct ElaboratedFsm {
  int num_inputs = 0;      // I
  int num_state_bits = 0;  // B
  std::uint64_t reset_code = 0;

  std::vector<logic::Cover> next_state;  // size B, over I+B variables
  std::vector<logic::Cover> outputs;     // size O, over I+B variables
  std::optional<logic::Cover> dc;        // unused-code don't-cares

  std::vector<std::string> input_names;      // size I
  std::vector<std::string> state_bit_names;  // size B
  std::vector<std::string> output_names;     // size O

  [[nodiscard]] int num_vars() const { return num_inputs + num_state_bits; }
};

/// Elaborates a validated FSM under the given state codes.
///
/// `harden` makes the produced logic recover from illegal register states
/// (SEUs) instead of treating them as can't-happen:
///   * one-hot — every transition uses the full-code recognizer (so a
///     zero-hot or multi-hot register fires no transition and asserts no
///     output), and recovery cubes load the reset code from any illegal
///     register within one cycle: a zero-hot term plus one term per pair of
///     simultaneously-hot bits.
///   * dense — unused codes become recovery transitions to the reset code
///     instead of don't-cares.
[[nodiscard]] ElaboratedFsm elaborate(const Fsm& fsm, const StateCodes& codes,
                                      bool harden = false);

}  // namespace rcarb::synth
