// Cubes (product terms) over up to 64 Boolean variables.
//
// A cube is a conjunction of literals.  Variable i is either a positive
// literal, a negative literal, or absent (don't-care).  Representation:
// `mask` has bit i set iff variable i appears; `value` gives its polarity
// (and is zero wherever mask is zero, by invariant).
#pragma once

#include <cstdint>
#include <string>

namespace rcarb::logic {

/// Maximum variable count supported by Cube/Cover.
inline constexpr int kMaxVars = 64;

/// A product term over Boolean variables 0..n-1 (n tracked by the Cover).
class Cube {
 public:
  /// The universal cube (no literals — covers everything).
  Cube() = default;

  /// Cube from explicit masks.  Bits of `value` outside `mask` must be clear.
  Cube(std::uint64_t mask, std::uint64_t value);

  /// Cube with the single literal var (positive if `positive`).
  static Cube literal(int var, bool positive);

  [[nodiscard]] std::uint64_t mask() const { return mask_; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

  /// True if no literal is present (the universal cube).
  [[nodiscard]] bool is_universal() const { return mask_ == 0; }

  /// Number of literals.
  [[nodiscard]] int literal_count() const;

  /// True if variable var appears in this cube.
  [[nodiscard]] bool has_var(int var) const;

  /// Polarity of var; requires has_var(var).
  [[nodiscard]] bool polarity(int var) const;

  /// Returns this cube with the literal on `var` added/overwritten.
  [[nodiscard]] Cube with_literal(int var, bool positive) const;

  /// Returns this cube with any literal on `var` removed.
  [[nodiscard]] Cube without_var(int var) const;

  /// Set containment: true if this cube's point set contains `other`'s,
  /// i.e. every literal of *this appears in `other` with the same polarity.
  [[nodiscard]] bool contains(const Cube& other) const;

  /// True if the two cubes share at least one point.
  [[nodiscard]] bool intersects(const Cube& other) const;

  /// Intersection of two cubes; requires intersects(other).
  [[nodiscard]] Cube intersect(const Cube& other) const;

  /// Number of variables on which the cubes have opposing literals.
  [[nodiscard]] int conflict_count(const Cube& other) const;

  /// Evaluates the cube on a full assignment (bit i of `assignment` is var i).
  [[nodiscard]] bool eval(std::uint64_t assignment) const;

  /// Text form over `num_vars` variables, e.g. "1-0" (1=pos, 0=neg, -=absent).
  [[nodiscard]] std::string to_string(int num_vars) const;

  friend bool operator==(const Cube& a, const Cube& b) = default;

 private:
  std::uint64_t mask_ = 0;
  std::uint64_t value_ = 0;
};

}  // namespace rcarb::logic
