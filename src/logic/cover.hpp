// Covers (sums of products) and the two-level minimizer.
//
// A Cover is a disjunction of Cubes over a fixed variable count.  The
// minimizer is a compact espresso-style loop — EXPAND, IRREDUNDANT and
// distance-1 MERGE — built on the unate-recursive tautology check.  It is
// not a full espresso, but on FSM next-state/output functions (tens of
// variables, hundreds of cubes) it removes the bulk of the redundancy, which
// is what the downstream AIG construction and LUT mapping need.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logic/cube.hpp"

namespace rcarb::logic {

/// A sum of products over variables 0..num_vars-1.
class Cover {
 public:
  explicit Cover(int num_vars);

  [[nodiscard]] int num_vars() const { return num_vars_; }
  [[nodiscard]] const std::vector<Cube>& cubes() const { return cubes_; }
  [[nodiscard]] bool empty() const { return cubes_.empty(); }
  [[nodiscard]] std::size_t size() const { return cubes_.size(); }

  /// Appends a cube (no containment filtering).
  void add(const Cube& cube);

  /// Evaluates the cover on a full assignment.
  [[nodiscard]] bool eval(std::uint64_t assignment) const;

  /// Cofactor with respect to a literal: F restricted to var=value, with the
  /// variable removed from all remaining cubes.
  [[nodiscard]] Cover cofactor(int var, bool value) const;

  /// Cofactor with respect to a cube (Shannon cofactor F_c).
  [[nodiscard]] Cover cofactor(const Cube& c) const;

  /// True if the cover is a tautology (covers all of B^n).  Unate-recursive.
  [[nodiscard]] bool is_tautology() const;

  /// True if cube c is covered by this cover (single-cube containment is a
  /// special case; this is the general containment check via tautology).
  [[nodiscard]] bool covers_cube(const Cube& c) const;

  /// True if every cube of `other` is covered by this cover.
  [[nodiscard]] bool covers(const Cover& other) const;

  /// Removes cubes contained in another single cube of the cover.
  void remove_single_cube_contained();

  /// Total number of literals across all cubes.
  [[nodiscard]] std::size_t literal_count() const;

  [[nodiscard]] std::string to_string() const;

 private:
  int num_vars_;
  std::vector<Cube> cubes_;
};

/// Result of minimization, with before/after statistics.
struct MinimizeStats {
  std::size_t cubes_before = 0;
  std::size_t cubes_after = 0;
  std::size_t literals_before = 0;
  std::size_t literals_after = 0;
  int iterations = 0;
};

/// Minimizes `on_set` against an optional don't-care set.  The result covers
/// every point of on_set, covers no point outside on_set ∪ dc_set, and is
/// irredundant.  `dc_set` may be nullptr (completely specified function).
MinimizeStats minimize(Cover& on_set, const Cover* dc_set = nullptr);

}  // namespace rcarb::logic
