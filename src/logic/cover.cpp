#include "logic/cover.hpp"

#include <algorithm>
#include <bit>

#include "support/check.hpp"

namespace rcarb::logic {

Cover::Cover(int num_vars) : num_vars_(num_vars) {
  RCARB_CHECK(num_vars >= 0 && num_vars <= kMaxVars,
              "cover variable count out of range");
}

void Cover::add(const Cube& cube) {
  RCARB_CHECK((cube.mask() >> num_vars_) == 0 || num_vars_ == kMaxVars,
              "cube uses variables beyond the cover's range");
  cubes_.push_back(cube);
}

bool Cover::eval(std::uint64_t assignment) const {
  return std::any_of(cubes_.begin(), cubes_.end(),
                     [&](const Cube& c) { return c.eval(assignment); });
}

Cover Cover::cofactor(int var, bool value) const {
  Cover out(num_vars_);
  for (const Cube& c : cubes_) {
    if (c.has_var(var)) {
      if (c.polarity(var) != value) continue;  // conflicting literal: drop
      out.add(c.without_var(var));
    } else {
      out.add(c);
    }
  }
  return out;
}

Cover Cover::cofactor(const Cube& cc) const {
  Cover out(num_vars_);
  for (const Cube& c : cubes_) {
    if (!c.intersects(cc)) continue;
    // Remove from c every variable bound by cc.
    out.add(Cube(c.mask() & ~cc.mask(), c.value() & ~cc.mask()));
  }
  return out;
}

namespace {

// Selects the most binate variable of the cover (appears in the most cubes,
// preferring variables seen in both polarities), or -1 if no cube has any
// literal left.
int most_binate_var(const Cover& f) {
  int best = -1;
  int best_score = -1;
  std::uint64_t seen_pos = 0;
  std::uint64_t seen_neg = 0;
  for (const Cube& c : f.cubes()) {
    seen_pos |= c.mask() & c.value();
    seen_neg |= c.mask() & ~c.value();
  }
  const std::uint64_t seen = seen_pos | seen_neg;
  if (seen == 0) return -1;
  for (int v = 0; v < f.num_vars(); ++v) {
    if (!((seen >> v) & 1u)) continue;
    int count = 0;
    for (const Cube& c : f.cubes())
      if (c.has_var(v)) ++count;
    const bool binate = ((seen_pos >> v) & 1u) && ((seen_neg >> v) & 1u);
    const int score = count + (binate ? f.num_vars() * 1000 : 0);
    if (score > best_score) {
      best_score = score;
      best = v;
    }
  }
  return best;
}

bool tautology_rec(const Cover& f, int depth) {
  // Quick exits.
  for (const Cube& c : f.cubes())
    if (c.is_universal()) return true;
  if (f.empty()) return false;
  RCARB_ASSERT(depth < 2 * kMaxVars + 4, "tautology recursion runaway");

  const int v = most_binate_var(f);
  if (v < 0) return false;  // no universal cube found above
  return tautology_rec(f.cofactor(v, false), depth + 1) &&
         tautology_rec(f.cofactor(v, true), depth + 1);
}

}  // namespace

bool Cover::is_tautology() const { return tautology_rec(*this, 0); }

bool Cover::covers_cube(const Cube& c) const {
  return cofactor(c).is_tautology();
}

bool Cover::covers(const Cover& other) const {
  return std::all_of(other.cubes().begin(), other.cubes().end(),
                     [&](const Cube& c) { return covers_cube(c); });
}

void Cover::remove_single_cube_contained() {
  std::vector<Cube> kept;
  kept.reserve(cubes_.size());
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    bool contained = false;
    for (std::size_t j = 0; j < cubes_.size() && !contained; ++j) {
      if (i == j) continue;
      // Strictly contained, or equal with the earlier copy kept.
      if (cubes_[j].contains(cubes_[i]) &&
          (cubes_[j] != cubes_[i] || j < i))
        contained = true;
    }
    if (!contained) kept.push_back(cubes_[i]);
  }
  cubes_ = std::move(kept);
}

std::size_t Cover::literal_count() const {
  std::size_t n = 0;
  for (const Cube& c : cubes_) n += static_cast<std::size_t>(c.literal_count());
  return n;
}

std::string Cover::to_string() const {
  std::string s;
  for (const Cube& c : cubes_) {
    s += c.to_string(num_vars_);
    s += '\n';
  }
  return s;
}

namespace {

// Union view of F ∪ D used for expansion legality checks.
Cover union_cover(const Cover& f, const Cover* d) {
  Cover u = f;
  if (d != nullptr)
    for (const Cube& c : d->cubes()) u.add(c);
  return u;
}

}  // namespace

MinimizeStats minimize(Cover& on_set, const Cover* dc_set) {
  MinimizeStats stats;
  stats.cubes_before = on_set.size();
  stats.literals_before = on_set.literal_count();

  bool changed = true;
  while (changed && stats.iterations < 16) {
    changed = false;
    ++stats.iterations;

    on_set.remove_single_cube_contained();

    // MERGE: distance-1 cube pairs combine (x·a + x'·a == a).
    {
      auto cubes = on_set.cubes();
      bool merged_any = true;
      while (merged_any) {
        merged_any = false;
        for (std::size_t i = 0; i < cubes.size() && !merged_any; ++i) {
          for (std::size_t j = i + 1; j < cubes.size() && !merged_any; ++j) {
            const Cube &a = cubes[i], &b = cubes[j];
            if (a.mask() != b.mask()) continue;
            const std::uint64_t diff = a.value() ^ b.value();
            if (std::popcount(diff) != 1) continue;
            const int var = std::countr_zero(diff);
            cubes[i] = a.without_var(var);
            cubes.erase(cubes.begin() + static_cast<std::ptrdiff_t>(j));
            merged_any = true;
            changed = true;
          }
        }
      }
      Cover merged(on_set.num_vars());
      for (const Cube& c : cubes) merged.add(c);
      on_set = std::move(merged);
    }

    // EXPAND: drop literals whose removal keeps the cube inside F ∪ D.
    {
      const Cover fd = union_cover(on_set, dc_set);
      std::vector<Cube> cubes = on_set.cubes();
      for (Cube& c : cubes) {
        for (int v = 0; v < on_set.num_vars(); ++v) {
          if (!c.has_var(v)) continue;
          const Cube candidate = c.without_var(v);
          if (fd.covers_cube(candidate)) {
            c = candidate;
            changed = true;
          }
        }
      }
      Cover expanded(on_set.num_vars());
      for (const Cube& c : cubes) expanded.add(c);
      on_set = std::move(expanded);
      on_set.remove_single_cube_contained();
    }

    // IRREDUNDANT: drop cubes covered by the rest of F plus D.
    {
      std::vector<Cube> cubes = on_set.cubes();
      for (std::size_t i = 0; i < cubes.size();) {
        Cover rest(on_set.num_vars());
        for (std::size_t j = 0; j < cubes.size(); ++j)
          if (j != i) rest.add(cubes[j]);
        if (dc_set != nullptr)
          for (const Cube& c : dc_set->cubes()) rest.add(c);
        if (rest.covers_cube(cubes[i])) {
          cubes.erase(cubes.begin() + static_cast<std::ptrdiff_t>(i));
          changed = true;
        } else {
          ++i;
        }
      }
      Cover irr(on_set.num_vars());
      for (const Cube& c : cubes) irr.add(c);
      on_set = std::move(irr);
    }
  }

  stats.cubes_after = on_set.size();
  stats.literals_after = on_set.literal_count();
  return stats;
}

}  // namespace rcarb::logic
