#include "logic/truth_table.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace rcarb::logic {

namespace {
constexpr int kMaxTtVars = 20;

std::size_t word_count(int num_vars) {
  const std::uint64_t rows = 1ull << num_vars;
  return static_cast<std::size_t>((rows + 63) / 64);
}
}  // namespace

TruthTable::TruthTable(int num_vars)
    : num_vars_(num_vars), bits_(word_count(num_vars), 0) {
  RCARB_CHECK(num_vars >= 0 && num_vars <= kMaxTtVars,
              "truth table variable count out of range");
}

TruthTable TruthTable::constant(int num_vars, bool value) {
  TruthTable t(num_vars);
  if (value) {
    std::fill(t.bits_.begin(), t.bits_.end(), ~0ull);
    // Clear bits past the row count in the last word.
    const std::uint64_t rows = t.num_rows();
    if (rows % 64 != 0)
      t.bits_.back() &= (1ull << (rows % 64)) - 1;
  }
  return t;
}

TruthTable TruthTable::variable(int num_vars, int var) {
  RCARB_CHECK(var >= 0 && var < num_vars, "projection variable out of range");
  TruthTable t(num_vars);
  for (std::uint64_t row = 0; row < t.num_rows(); ++row)
    if ((row >> var) & 1u) t.set(row, true);
  return t;
}

TruthTable TruthTable::from_cover(const Cover& cover) {
  RCARB_CHECK(cover.num_vars() <= kMaxTtVars,
              "cover too wide for a dense truth table");
  TruthTable t(cover.num_vars());
  for (std::uint64_t row = 0; row < t.num_rows(); ++row)
    if (cover.eval(row)) t.set(row, true);
  return t;
}

bool TruthTable::get(std::uint64_t row) const {
  RCARB_CHECK(row < num_rows(), "truth table row out of range");
  return (bits_[row / 64] >> (row % 64)) & 1u;
}

void TruthTable::set(std::uint64_t row, bool value) {
  RCARB_CHECK(row < num_rows(), "truth table row out of range");
  const std::uint64_t bit = 1ull << (row % 64);
  if (value)
    bits_[row / 64] |= bit;
  else
    bits_[row / 64] &= ~bit;
}

bool TruthTable::is_constant() const {
  return *this == constant(num_vars_, false) ||
         *this == constant(num_vars_, true);
}

bool TruthTable::constant_value() const {
  RCARB_CHECK(is_constant(), "constant_value of a non-constant function");
  return get(0);
}

TruthTable TruthTable::operator~() const {
  TruthTable t(num_vars_);
  for (std::size_t i = 0; i < bits_.size(); ++i) t.bits_[i] = ~bits_[i];
  const std::uint64_t rows = num_rows();
  if (rows % 64 != 0) t.bits_.back() &= (1ull << (rows % 64)) - 1;
  return t;
}

TruthTable TruthTable::operator&(const TruthTable& o) const {
  RCARB_CHECK(num_vars_ == o.num_vars_, "operand arity mismatch");
  TruthTable t(num_vars_);
  for (std::size_t i = 0; i < bits_.size(); ++i)
    t.bits_[i] = bits_[i] & o.bits_[i];
  return t;
}

TruthTable TruthTable::operator|(const TruthTable& o) const {
  RCARB_CHECK(num_vars_ == o.num_vars_, "operand arity mismatch");
  TruthTable t(num_vars_);
  for (std::size_t i = 0; i < bits_.size(); ++i)
    t.bits_[i] = bits_[i] | o.bits_[i];
  return t;
}

TruthTable TruthTable::operator^(const TruthTable& o) const {
  RCARB_CHECK(num_vars_ == o.num_vars_, "operand arity mismatch");
  TruthTable t(num_vars_);
  for (std::size_t i = 0; i < bits_.size(); ++i)
    t.bits_[i] = bits_[i] ^ o.bits_[i];
  return t;
}

bool TruthTable::depends_on(int var) const {
  RCARB_CHECK(var >= 0 && var < num_vars_, "variable out of range");
  for (std::uint64_t row = 0; row < num_rows(); ++row) {
    if ((row >> var) & 1u) continue;
    if (get(row) != get(row | (1ull << var))) return true;
  }
  return false;
}

std::vector<int> TruthTable::support() const {
  std::vector<int> vars;
  for (int v = 0; v < num_vars_; ++v)
    if (depends_on(v)) vars.push_back(v);
  return vars;
}

std::uint16_t TruthTable::lut4_mask() const {
  RCARB_CHECK(num_vars_ <= 4, "lut4_mask requires <= 4 variables");
  std::uint16_t m = 0;
  for (std::uint64_t row = 0; row < num_rows(); ++row)
    if (get(row)) m = static_cast<std::uint16_t>(m | (1u << row));
  return m;
}

std::string TruthTable::to_hex() const {
  static const char* digits = "0123456789abcdef";
  const std::uint64_t rows = num_rows();
  std::string s;
  const std::uint64_t nibbles = std::max<std::uint64_t>(1, rows / 4);
  for (std::uint64_t n = nibbles; n-- > 0;) {
    unsigned nib = 0;
    for (unsigned b = 0; b < 4; ++b) {
      const std::uint64_t row = n * 4 + b;
      if (row < rows && get(row)) nib |= 1u << b;
    }
    s += digits[nib];
  }
  return s;
}

}  // namespace rcarb::logic
