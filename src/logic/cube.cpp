#include "logic/cube.hpp"

#include <bit>

#include "support/check.hpp"

namespace rcarb::logic {

Cube::Cube(std::uint64_t mask, std::uint64_t value)
    : mask_(mask), value_(value) {
  RCARB_CHECK((value & ~mask) == 0, "cube value bits outside mask");
}

Cube Cube::literal(int var, bool positive) {
  RCARB_CHECK(var >= 0 && var < kMaxVars, "variable index out of range");
  const std::uint64_t bit = 1ull << var;
  return Cube(bit, positive ? bit : 0);
}

int Cube::literal_count() const { return std::popcount(mask_); }

bool Cube::has_var(int var) const {
  RCARB_CHECK(var >= 0 && var < kMaxVars, "variable index out of range");
  return (mask_ >> var) & 1u;
}

bool Cube::polarity(int var) const {
  RCARB_CHECK(has_var(var), "polarity of absent variable");
  return (value_ >> var) & 1u;
}

Cube Cube::with_literal(int var, bool positive) const {
  RCARB_CHECK(var >= 0 && var < kMaxVars, "variable index out of range");
  const std::uint64_t bit = 1ull << var;
  return Cube(mask_ | bit, (value_ & ~bit) | (positive ? bit : 0));
}

Cube Cube::without_var(int var) const {
  RCARB_CHECK(var >= 0 && var < kMaxVars, "variable index out of range");
  const std::uint64_t bit = 1ull << var;
  return Cube(mask_ & ~bit, value_ & ~bit);
}

bool Cube::contains(const Cube& other) const {
  return (mask_ & ~other.mask_) == 0 &&
         ((value_ ^ other.value_) & mask_) == 0;
}

bool Cube::intersects(const Cube& other) const {
  return ((value_ ^ other.value_) & (mask_ & other.mask_)) == 0;
}

Cube Cube::intersect(const Cube& other) const {
  RCARB_CHECK(intersects(other), "intersect of disjoint cubes");
  return Cube(mask_ | other.mask_, value_ | other.value_);
}

int Cube::conflict_count(const Cube& other) const {
  return std::popcount((value_ ^ other.value_) & (mask_ & other.mask_));
}

bool Cube::eval(std::uint64_t assignment) const {
  return ((assignment ^ value_) & mask_) == 0;
}

std::string Cube::to_string(int num_vars) const {
  std::string s;
  s.reserve(static_cast<std::size_t>(num_vars));
  for (int v = 0; v < num_vars; ++v) {
    if (!has_var(v))
      s += '-';
    else
      s += polarity(v) ? '1' : '0';
  }
  return s;
}

}  // namespace rcarb::logic
