// Dense truth tables for functions of up to 20 variables.
//
// Used for LUT contents (<=4 inputs: 16 bits), exhaustive equivalence checks
// in tests, and as the bridge between covers and simulation semantics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logic/cover.hpp"

namespace rcarb::logic {

/// A completely-specified Boolean function of `num_vars` inputs, stored as a
/// packed bit vector of its 2^num_vars output column.
class TruthTable {
 public:
  /// Constant-false function of `num_vars` inputs (0 <= num_vars <= 20).
  explicit TruthTable(int num_vars);

  /// Constant function.
  static TruthTable constant(int num_vars, bool value);

  /// Projection of input variable `var`.
  static TruthTable variable(int num_vars, int var);

  /// Truth table of a cover (evaluated over all assignments).
  static TruthTable from_cover(const Cover& cover);

  [[nodiscard]] int num_vars() const { return num_vars_; }
  [[nodiscard]] std::uint64_t num_rows() const { return 1ull << num_vars_; }

  [[nodiscard]] bool get(std::uint64_t row) const;
  void set(std::uint64_t row, bool value);

  [[nodiscard]] bool is_constant() const;
  [[nodiscard]] bool constant_value() const;  // requires is_constant()

  /// Logical operators (operand arities must match).
  [[nodiscard]] TruthTable operator~() const;
  [[nodiscard]] TruthTable operator&(const TruthTable& o) const;
  [[nodiscard]] TruthTable operator|(const TruthTable& o) const;
  [[nodiscard]] TruthTable operator^(const TruthTable& o) const;

  /// True if input `var` affects the output.
  [[nodiscard]] bool depends_on(int var) const;

  /// Indices of variables the function actually depends on.
  [[nodiscard]] std::vector<int> support() const;

  /// The 16-bit LUT mask for functions of <= 4 variables.
  [[nodiscard]] std::uint16_t lut4_mask() const;

  /// Hex string, most significant row first.
  [[nodiscard]] std::string to_hex() const;

  friend bool operator==(const TruthTable& a, const TruthTable& b) = default;

 private:
  int num_vars_;
  std::vector<std::uint64_t> bits_;
};

}  // namespace rcarb::logic
