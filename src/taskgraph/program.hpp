// Task-program IR.
//
// Each task's behavior is a small register program: loads/stores against
// *logical* memory segments, sends/receives on *logical* channels, integer
// ALU operations, fixed-count loops and compute (busy) cycles.  The paper's
// Fig. 8 task-modification process is implemented as a rewrite of this IR
// (core/insertion): kAcquire / kRelease ops are inserted around runs of
// accesses to shared physical resources, which is where the fixed two-cycle
// arbitration overhead becomes observable in the cycle simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rcarb::tg {

/// Register index within a task's register file.
using Reg = int;

inline constexpr int kNumRegs = 32;

/// IR opcodes.  Operand meaning per opcode is documented on the builders.
enum class OpCode : std::uint8_t {
  kCompute,   // busy for imm cycles
  kLoadImm,   // r[a] = imm
  kMov,       // r[a] = r[b]
  kAdd,       // r[a] = r[b] + r[c]
  kSub,       // r[a] = r[b] - r[c]
  kMul,       // r[a] = r[b] * r[c]
  kMulQ,      // r[a] = (r[b] * r[c]) >> imm   (fixed-point multiply)
  kShr,       // r[a] = r[b] >> imm (arithmetic)
  kShl,       // r[a] = r[b] << imm
  kAddImm,    // r[a] = r[b] + imm
  kLoad,      // r[a] = segment[b][r[c] + imm]
  kStore,     // segment[b][r[c] + imm] = r[a]
  kSend,      // channel[b] <- r[a]
  kRecv,      // r[a] = channel[b]  (blocks until a value is available)
  kLoopBegin, // repeat the body imm times (loops may nest)
  kLoopBeginVar,  // repeat the body r[a] times (data-dependent trip count —
                  // the "unpredictable loops" of the paper's Sec. 2.2)
  kLoopEnd,
  kAcquire,   // request arbitrated resource a (inserted by arbitration pass)
  kRelease,   // release arbitrated resource a (inserted by arbitration pass)
  kHalt,      // end of task
};

[[nodiscard]] const char* to_string(OpCode code);

/// One IR operation.  Fields are interpreted per OpCode.
struct Op {
  OpCode code = OpCode::kHalt;
  int a = 0;             // usually a destination register or resource id
  int b = 0;             // usually a source register / segment / channel
  int c = 0;             // usually a second source register
  std::int64_t imm = 0;  // immediate / cycle count / loop count / shift
};

/// A straight-line program with structured fixed-count loops.
class Program {
 public:
  // -- builders (return *this for chaining) --
  Program& compute(std::int64_t cycles);
  Program& load_imm(Reg dst, std::int64_t value);
  Program& mov(Reg dst, Reg src);
  Program& add(Reg dst, Reg lhs, Reg rhs);
  Program& sub(Reg dst, Reg lhs, Reg rhs);
  Program& mul(Reg dst, Reg lhs, Reg rhs);
  Program& mul_q(Reg dst, Reg lhs, Reg rhs, int frac_bits);
  Program& shr(Reg dst, Reg src, int amount);
  Program& shl(Reg dst, Reg src, int amount);
  Program& add_imm(Reg dst, Reg src, std::int64_t value);
  Program& load(Reg dst, int segment, Reg addr, std::int64_t offset = 0);
  Program& store(int segment, Reg addr, Reg src, std::int64_t offset = 0);
  Program& send(int channel, Reg src);
  Program& recv(Reg dst, int channel);
  Program& loop_begin(std::int64_t count);
  /// Loop whose trip count is read from a register at runtime (clamped to
  /// >= 0).  Static scheduling must assume the worst case for such loops.
  Program& loop_begin_var(Reg count);
  Program& loop_end();
  Program& acquire(int resource);
  Program& release(int resource);
  Program& halt();

  void append(const Op& op) { ops_.push_back(op); }

  [[nodiscard]] const std::vector<Op>& ops() const { return ops_; }
  [[nodiscard]] std::size_t size() const { return ops_.size(); }
  [[nodiscard]] bool empty() const { return ops_.empty(); }

  /// Throws CheckError on malformed programs (unbalanced loops, bad regs).
  void validate() const;

  /// Segments read or written anywhere in the program.
  [[nodiscard]] std::vector<int> accessed_segments() const;
  /// Channels sent on / received from.
  [[nodiscard]] std::vector<int> sent_channels() const;
  [[nodiscard]] std::vector<int> received_channels() const;

  /// Static operation counts used by the light-weight HLS area estimator.
  struct OpCounts {
    std::size_t alu = 0;
    std::size_t multiplies = 0;
    std::size_t mem_accesses = 0;
    std::size_t channel_ops = 0;
    std::size_t total = 0;
  };
  [[nodiscard]] OpCounts op_counts() const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Op> ops_;
};

}  // namespace rcarb::tg
