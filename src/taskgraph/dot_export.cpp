#include "taskgraph/dot_export.hpp"

#include <algorithm>
#include <sstream>

namespace rcarb::tg {

std::string to_dot(const TaskGraph& graph) {
  std::ostringstream os;
  os << "digraph \"" << graph.name() << "\" {\n"
     << "  rankdir=TB;\n"
     << "  node [fontname=\"Helvetica\"];\n";
  for (TaskId t = 0; t < graph.num_tasks(); ++t)
    os << "  t" << t << " [shape=box, label=\"" << graph.task(t).name
       << "\"];\n";
  for (SegmentId s = 0; s < graph.num_segments(); ++s)
    os << "  m" << s << " [shape=ellipse, label=\"" << graph.segment(s).name
       << "\"];\n";

  // Data edges: task -> segment for writes, segment -> task for reads.
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    std::vector<int> writes, reads;
    for (const Op& op : graph.task(t).program.ops()) {
      if (op.code == OpCode::kStore) writes.push_back(op.b);
      if (op.code == OpCode::kLoad) reads.push_back(op.b);
    }
    std::sort(writes.begin(), writes.end());
    writes.erase(std::unique(writes.begin(), writes.end()), writes.end());
    std::sort(reads.begin(), reads.end());
    reads.erase(std::unique(reads.begin(), reads.end()), reads.end());
    for (int s : writes) os << "  t" << t << " -> m" << s << ";\n";
    for (int s : reads) os << "  m" << s << " -> t" << t << ";\n";
  }
  for (ChannelId c = 0; c < graph.num_channels(); ++c) {
    const Channel& ch = graph.channel(c);
    os << "  t" << ch.source << " -> t" << ch.target << " [label=\""
       << ch.name << "\"];\n";
  }
  for (const auto& [pred, succ] : graph.control_deps())
    os << "  t" << pred << " -> t" << succ << " [style=dashed];\n";
  os << "}\n";
  return os.str();
}

}  // namespace rcarb::tg
