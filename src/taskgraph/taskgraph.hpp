// USM-like taskgraphs (paper Sec. 2).
//
// A TaskGraph holds tasks (synthesizable computation with a Program),
// logical memory segments (data storage), logical channels (task-to-task
// transfers) and control dependencies.  All tasks conceptually execute
// concurrently; control-dependence edges are the only ordering, which is
// exactly the window the arbiter-elision analysis of Sec. 5 exploits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "taskgraph/program.hpp"

namespace rcarb::tg {

using TaskId = std::size_t;
using SegmentId = std::size_t;
using ChannelId = std::size_t;

/// A logical data segment (paper: "elements of data storage").
struct MemorySegment {
  std::string name;
  std::size_t bytes = 0;      // footprint used by the memory mapper
  std::size_t words = 0;      // addressable words seen by programs
};

/// A logical point-to-point channel between two tasks.
struct Channel {
  std::string name;
  int width_bits = 32;
  TaskId source = 0;
  TaskId target = 0;
};

/// A synthesizable element of computation.
struct Task {
  std::string name;
  Program program;
  std::size_t area_clbs = 0;  // light-weight HLS estimate (Sec. 5 flow)
};

/// The design under partitioning/synthesis.
class TaskGraph {
 public:
  explicit TaskGraph(std::string name) : name_(std::move(name)) {}

  TaskId add_task(std::string name, Program program,
                  std::size_t area_clbs = 0);
  SegmentId add_segment(std::string name, std::size_t bytes,
                        std::size_t words);
  ChannelId add_channel(std::string name, int width_bits, TaskId source,
                        TaskId target);
  /// Control dependence: `succ` may only start after `pred` terminates.
  void add_control_dep(TaskId pred, TaskId succ);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_tasks() const { return tasks_.size(); }
  [[nodiscard]] std::size_t num_segments() const { return segments_.size(); }
  [[nodiscard]] std::size_t num_channels() const { return channels_.size(); }

  [[nodiscard]] const Task& task(TaskId t) const;
  [[nodiscard]] Task& task(TaskId t);
  [[nodiscard]] const MemorySegment& segment(SegmentId s) const;
  [[nodiscard]] const Channel& channel(ChannelId c) const;
  [[nodiscard]] const std::vector<std::pair<TaskId, TaskId>>& control_deps()
      const {
    return control_deps_;
  }

  /// Direct control predecessors of `t`.
  [[nodiscard]] std::vector<TaskId> predecessors(TaskId t) const;
  /// Direct control successors of `t`.
  [[nodiscard]] std::vector<TaskId> successors(TaskId t) const;

  /// True if a precedes b transitively in the control-dependence DAG.
  [[nodiscard]] bool precedes(TaskId a, TaskId b) const;
  /// True if the tasks can never overlap (a->*b or b->*a): the Sec. 5
  /// condition under which an arbiter between them is unnecessary.
  [[nodiscard]] bool serialized(TaskId a, TaskId b) const;

  /// Topological levels (level 0 = no predecessors).  Throws on cycles.
  [[nodiscard]] std::vector<int> levels() const;

  /// Checks programs, channel endpoints, segment references and acyclicity.
  void validate() const;

  /// Tasks that access `s` in their programs.
  [[nodiscard]] std::vector<TaskId> tasks_accessing_segment(SegmentId s) const;

 private:
  std::string name_;
  std::vector<Task> tasks_;
  std::vector<MemorySegment> segments_;
  std::vector<Channel> channels_;
  std::vector<std::pair<TaskId, TaskId>> control_deps_;
};

}  // namespace rcarb::tg
