#include "taskgraph/program.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace rcarb::tg {

const char* to_string(OpCode code) {
  switch (code) {
    case OpCode::kCompute: return "compute";
    case OpCode::kLoadImm: return "load_imm";
    case OpCode::kMov: return "mov";
    case OpCode::kAdd: return "add";
    case OpCode::kSub: return "sub";
    case OpCode::kMul: return "mul";
    case OpCode::kMulQ: return "mul_q";
    case OpCode::kShr: return "shr";
    case OpCode::kShl: return "shl";
    case OpCode::kAddImm: return "add_imm";
    case OpCode::kLoad: return "load";
    case OpCode::kStore: return "store";
    case OpCode::kSend: return "send";
    case OpCode::kRecv: return "recv";
    case OpCode::kLoopBegin: return "loop_begin";
    case OpCode::kLoopBeginVar: return "loop_begin_var";
    case OpCode::kLoopEnd: return "loop_end";
    case OpCode::kAcquire: return "acquire";
    case OpCode::kRelease: return "release";
    case OpCode::kHalt: return "halt";
  }
  return "?";
}

namespace {
void check_reg(Reg r) {
  RCARB_CHECK(r >= 0 && r < kNumRegs, "register index out of range");
}
}  // namespace

Program& Program::compute(std::int64_t cycles) {
  RCARB_CHECK(cycles >= 0, "negative compute cycles");
  ops_.push_back({OpCode::kCompute, 0, 0, 0, cycles});
  return *this;
}
Program& Program::load_imm(Reg dst, std::int64_t value) {
  check_reg(dst);
  ops_.push_back({OpCode::kLoadImm, dst, 0, 0, value});
  return *this;
}
Program& Program::mov(Reg dst, Reg src) {
  check_reg(dst);
  check_reg(src);
  ops_.push_back({OpCode::kMov, dst, src, 0, 0});
  return *this;
}
Program& Program::add(Reg dst, Reg lhs, Reg rhs) {
  check_reg(dst);
  check_reg(lhs);
  check_reg(rhs);
  ops_.push_back({OpCode::kAdd, dst, lhs, rhs, 0});
  return *this;
}
Program& Program::sub(Reg dst, Reg lhs, Reg rhs) {
  check_reg(dst);
  check_reg(lhs);
  check_reg(rhs);
  ops_.push_back({OpCode::kSub, dst, lhs, rhs, 0});
  return *this;
}
Program& Program::mul(Reg dst, Reg lhs, Reg rhs) {
  check_reg(dst);
  check_reg(lhs);
  check_reg(rhs);
  ops_.push_back({OpCode::kMul, dst, lhs, rhs, 0});
  return *this;
}
Program& Program::mul_q(Reg dst, Reg lhs, Reg rhs, int frac_bits) {
  check_reg(dst);
  check_reg(lhs);
  check_reg(rhs);
  RCARB_CHECK(frac_bits >= 0 && frac_bits < 63, "bad fixed-point shift");
  ops_.push_back({OpCode::kMulQ, dst, lhs, rhs, frac_bits});
  return *this;
}
Program& Program::shr(Reg dst, Reg src, int amount) {
  check_reg(dst);
  check_reg(src);
  RCARB_CHECK(amount >= 0 && amount < 64, "bad shift amount");
  ops_.push_back({OpCode::kShr, dst, src, 0, amount});
  return *this;
}
Program& Program::shl(Reg dst, Reg src, int amount) {
  check_reg(dst);
  check_reg(src);
  RCARB_CHECK(amount >= 0 && amount < 64, "bad shift amount");
  ops_.push_back({OpCode::kShl, dst, src, 0, amount});
  return *this;
}
Program& Program::add_imm(Reg dst, Reg src, std::int64_t value) {
  check_reg(dst);
  check_reg(src);
  ops_.push_back({OpCode::kAddImm, dst, src, 0, value});
  return *this;
}
Program& Program::load(Reg dst, int segment, Reg addr, std::int64_t offset) {
  check_reg(dst);
  check_reg(addr);
  RCARB_CHECK(segment >= 0, "negative segment id");
  ops_.push_back({OpCode::kLoad, dst, segment, addr, offset});
  return *this;
}
Program& Program::store(int segment, Reg addr, Reg src, std::int64_t offset) {
  check_reg(src);
  check_reg(addr);
  RCARB_CHECK(segment >= 0, "negative segment id");
  ops_.push_back({OpCode::kStore, src, segment, addr, offset});
  return *this;
}
Program& Program::send(int channel, Reg src) {
  check_reg(src);
  RCARB_CHECK(channel >= 0, "negative channel id");
  ops_.push_back({OpCode::kSend, src, channel, 0, 0});
  return *this;
}
Program& Program::recv(Reg dst, int channel) {
  check_reg(dst);
  RCARB_CHECK(channel >= 0, "negative channel id");
  ops_.push_back({OpCode::kRecv, dst, channel, 0, 0});
  return *this;
}
Program& Program::loop_begin(std::int64_t count) {
  RCARB_CHECK(count >= 0, "negative loop count");
  ops_.push_back({OpCode::kLoopBegin, 0, 0, 0, count});
  return *this;
}
Program& Program::loop_begin_var(Reg count) {
  check_reg(count);
  ops_.push_back({OpCode::kLoopBeginVar, count, 0, 0, 0});
  return *this;
}
Program& Program::loop_end() {
  ops_.push_back({OpCode::kLoopEnd, 0, 0, 0, 0});
  return *this;
}
Program& Program::acquire(int resource) {
  RCARB_CHECK(resource >= 0, "negative resource id");
  ops_.push_back({OpCode::kAcquire, resource, 0, 0, 0});
  return *this;
}
Program& Program::release(int resource) {
  RCARB_CHECK(resource >= 0, "negative resource id");
  ops_.push_back({OpCode::kRelease, resource, 0, 0, 0});
  return *this;
}
Program& Program::halt() {
  ops_.push_back({OpCode::kHalt, 0, 0, 0, 0});
  return *this;
}

void Program::validate() const {
  int depth = 0;
  for (const Op& op : ops_) {
    if (op.code == OpCode::kLoopBegin || op.code == OpCode::kLoopBeginVar)
      ++depth;
    if (op.code == OpCode::kLoopEnd) {
      RCARB_CHECK(depth > 0, "loop_end without loop_begin");
      --depth;
    }
  }
  RCARB_CHECK(depth == 0, "unbalanced loop_begin");
}

namespace {
std::vector<int> unique_sorted(std::vector<int> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}
}  // namespace

std::vector<int> Program::accessed_segments() const {
  std::vector<int> v;
  for (const Op& op : ops_)
    if (op.code == OpCode::kLoad || op.code == OpCode::kStore)
      v.push_back(op.b);
  return unique_sorted(std::move(v));
}

std::vector<int> Program::sent_channels() const {
  std::vector<int> v;
  for (const Op& op : ops_)
    if (op.code == OpCode::kSend) v.push_back(op.b);
  return unique_sorted(std::move(v));
}

std::vector<int> Program::received_channels() const {
  std::vector<int> v;
  for (const Op& op : ops_)
    if (op.code == OpCode::kRecv) v.push_back(op.b);
  return unique_sorted(std::move(v));
}

Program::OpCounts Program::op_counts() const {
  OpCounts counts;
  for (const Op& op : ops_) {
    switch (op.code) {
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kAddImm:
      case OpCode::kShr:
      case OpCode::kShl:
        ++counts.alu;
        break;
      case OpCode::kMul:
      case OpCode::kMulQ:
        ++counts.multiplies;
        break;
      case OpCode::kLoad:
      case OpCode::kStore:
        ++counts.mem_accesses;
        break;
      case OpCode::kSend:
      case OpCode::kRecv:
        ++counts.channel_ops;
        break;
      default:
        break;
    }
  }
  counts.total = ops_.size();
  return counts;
}

std::string Program::to_string() const {
  std::ostringstream os;
  int indent = 0;
  for (const Op& op : ops_) {
    if (op.code == OpCode::kLoopEnd) --indent;
    for (int i = 0; i < indent; ++i) os << "  ";
    os << tg::to_string(op.code) << " a=" << op.a << " b=" << op.b
       << " c=" << op.c << " imm=" << op.imm << '\n';
    if (op.code == OpCode::kLoopBegin) ++indent;
  }
  return os.str();
}

}  // namespace rcarb::tg
