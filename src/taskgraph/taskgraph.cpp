#include "taskgraph/taskgraph.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace rcarb::tg {

TaskId TaskGraph::add_task(std::string name, Program program,
                           std::size_t area_clbs) {
  program.validate();
  tasks_.push_back({std::move(name), std::move(program), area_clbs});
  return tasks_.size() - 1;
}

SegmentId TaskGraph::add_segment(std::string name, std::size_t bytes,
                                 std::size_t words) {
  RCARB_CHECK(words > 0, "segment must have at least one word");
  segments_.push_back({std::move(name), bytes, words});
  return segments_.size() - 1;
}

ChannelId TaskGraph::add_channel(std::string name, int width_bits,
                                 TaskId source, TaskId target) {
  RCARB_CHECK(width_bits > 0, "channel width must be positive");
  RCARB_CHECK(source < tasks_.size() && target < tasks_.size(),
              "channel endpoint out of range");
  channels_.push_back({std::move(name), width_bits, source, target});
  return channels_.size() - 1;
}

void TaskGraph::add_control_dep(TaskId pred, TaskId succ) {
  RCARB_CHECK(pred < tasks_.size() && succ < tasks_.size(),
              "control dependence endpoint out of range");
  RCARB_CHECK(pred != succ, "self control dependence");
  control_deps_.emplace_back(pred, succ);
}

const Task& TaskGraph::task(TaskId t) const {
  RCARB_CHECK(t < tasks_.size(), "task out of range");
  return tasks_[t];
}

Task& TaskGraph::task(TaskId t) {
  RCARB_CHECK(t < tasks_.size(), "task out of range");
  return tasks_[t];
}

const MemorySegment& TaskGraph::segment(SegmentId s) const {
  RCARB_CHECK(s < segments_.size(), "segment out of range");
  return segments_[s];
}

const Channel& TaskGraph::channel(ChannelId c) const {
  RCARB_CHECK(c < channels_.size(), "channel out of range");
  return channels_[c];
}

std::vector<TaskId> TaskGraph::predecessors(TaskId t) const {
  std::vector<TaskId> out;
  for (const auto& [pred, succ] : control_deps_)
    if (succ == t) out.push_back(pred);
  return out;
}

std::vector<TaskId> TaskGraph::successors(TaskId t) const {
  std::vector<TaskId> out;
  for (const auto& [pred, succ] : control_deps_)
    if (pred == t) out.push_back(succ);
  return out;
}

bool TaskGraph::precedes(TaskId a, TaskId b) const {
  RCARB_CHECK(a < tasks_.size() && b < tasks_.size(), "task out of range");
  std::vector<bool> visited(tasks_.size(), false);
  std::vector<TaskId> stack{a};
  while (!stack.empty()) {
    const TaskId t = stack.back();
    stack.pop_back();
    if (t == b && t != a) return true;
    if (visited[t]) continue;
    visited[t] = true;
    for (TaskId s : successors(t)) {
      if (s == b) return true;
      stack.push_back(s);
    }
  }
  return false;
}

bool TaskGraph::serialized(TaskId a, TaskId b) const {
  return precedes(a, b) || precedes(b, a);
}

std::vector<int> TaskGraph::levels() const {
  std::vector<int> level(tasks_.size(), 0);
  std::vector<std::size_t> pending(tasks_.size(), 0);
  for (const auto& [pred, succ] : control_deps_) ++pending[succ];
  std::vector<TaskId> ready;
  for (TaskId t = 0; t < tasks_.size(); ++t)
    if (pending[t] == 0) ready.push_back(t);
  std::size_t processed = 0;
  while (!ready.empty()) {
    const TaskId t = ready.back();
    ready.pop_back();
    ++processed;
    for (TaskId s : successors(t)) {
      level[s] = std::max(level[s], level[t] + 1);
      if (--pending[s] == 0) ready.push_back(s);
    }
  }
  RCARB_CHECK(processed == tasks_.size(),
              "control-dependence cycle in taskgraph");
  return level;
}

void TaskGraph::validate() const {
  RCARB_CHECK(!tasks_.empty(), "taskgraph has no tasks");
  (void)levels();  // checks acyclicity
  for (const Task& t : tasks_) {
    t.program.validate();
    for (int s : t.program.accessed_segments())
      RCARB_CHECK(static_cast<std::size_t>(s) < segments_.size(),
                  "task " + t.name + " references unknown segment");
    for (int c : t.program.sent_channels())
      RCARB_CHECK(static_cast<std::size_t>(c) < channels_.size(),
                  "task " + t.name + " sends on unknown channel");
    for (int c : t.program.received_channels())
      RCARB_CHECK(static_cast<std::size_t>(c) < channels_.size(),
                  "task " + t.name + " receives on unknown channel");
  }
  // Channel direction must match the programs that use it.
  for (ChannelId c = 0; c < channels_.size(); ++c) {
    for (TaskId t = 0; t < tasks_.size(); ++t) {
      const auto sends = tasks_[t].program.sent_channels();
      const auto recvs = tasks_[t].program.received_channels();
      if (std::find(sends.begin(), sends.end(), static_cast<int>(c)) !=
          sends.end())
        RCARB_CHECK(channels_[c].source == t,
                    "task " + tasks_[t].name + " sends on channel " +
                        channels_[c].name + " it does not source");
      if (std::find(recvs.begin(), recvs.end(), static_cast<int>(c)) !=
          recvs.end())
        RCARB_CHECK(channels_[c].target == t,
                    "task " + tasks_[t].name + " receives on channel " +
                        channels_[c].name + " it does not target");
    }
  }
}

std::vector<TaskId> TaskGraph::tasks_accessing_segment(SegmentId s) const {
  RCARB_CHECK(s < segments_.size(), "segment out of range");
  std::vector<TaskId> out;
  for (TaskId t = 0; t < tasks_.size(); ++t) {
    const auto segs = tasks_[t].program.accessed_segments();
    if (std::find(segs.begin(), segs.end(), static_cast<int>(s)) != segs.end())
      out.push_back(t);
  }
  return out;
}

}  // namespace rcarb::tg
