// Graphviz export of taskgraphs (Fig. 10-style pictures).
//
// Tasks are boxes, memory segments ellipses, solid edges are data access
// (task <-> segment, channel source -> target), dashed edges control
// dependences — the same drawing conventions as the paper's Fig. 10.
#pragma once

#include <string>

#include "taskgraph/taskgraph.hpp"

namespace rcarb::tg {

/// Renders the graph in Graphviz dot syntax.
[[nodiscard]] std::string to_dot(const TaskGraph& graph);

}  // namespace rcarb::tg
