#include "obs/bench_report.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace rcarb::obs {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void json_escape(std::ostream& os, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
}

std::string utc_timestamp() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &t);
#else
  gmtime_r(&t, &tm);
#endif
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace

std::string bench_commit_id() {
  if (const char* env = std::getenv("RCARB_GIT_COMMIT"); env && *env)
    return env;
  if (const char* env = std::getenv("GITHUB_SHA"); env && *env) return env;
#if !defined(_WIN32)
  if (std::FILE* p = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    const std::size_t n = std::fread(buf, 1, sizeof buf - 1, p);
    ::pclose(p);
    std::string out(buf, n);
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
      out.pop_back();
    if (!out.empty()) return out;
  }
#endif
  return "unknown";
}

BenchReporter::BenchReporter(std::string name)
    : name_(std::move(name)), start_ns_(now_ns()) {}

void BenchReporter::metric(const std::string& key, double value,
                           const std::string& unit) {
  const std::lock_guard<std::mutex> lock(mu_);
  metrics_.push_back({key, value, unit});
}

void BenchReporter::note(const std::string& key, const std::string& value) {
  const std::lock_guard<std::mutex> lock(mu_);
  notes_.emplace_back(key, value);
}

std::string BenchReporter::write(const std::string& dir) {
  std::string out_dir = dir;
  if (out_dir.empty()) {
    if (const char* env = std::getenv("RCARB_BENCH_DIR"); env && *env)
      out_dir = env;
    else
      out_dir = ".";
  }
  // A merely-absent directory is not an error: CI and local runs point
  // RCARB_BENCH_DIR at fresh paths.  Only an unwritable / non-directory
  // target fails, and it fails loudly below.
  std::error_code ec;
  if (!std::filesystem::exists(out_dir, ec))
    std::filesystem::create_directories(out_dir, ec);
  const std::string path = out_dir + "/BENCH_" + name_ + ".json";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr,
                 "BenchReporter: cannot open \"%s\" for writing (dir \"%s\"%s)"
                 " — check RCARB_BENCH_DIR\n",
                 path.c_str(), out_dir.c_str(),
                 ec ? (", mkdir: " + ec.message()).c_str() : "");
    return "";
  }

  const double wall_ms =
      static_cast<double>(now_ns() - start_ns_) / 1.0e6;
  os << "{\n  \"schema\": \"rcarb-bench-v1\",\n  \"bench\": \"";
  json_escape(os, name_);
  os << "\",\n  \"commit\": \"";
  json_escape(os, bench_commit_id());
  os << "\",\n  \"timestamp_utc\": \"" << utc_timestamp()
     << "\",\n  \"wall_ms\": " << wall_ms << ",\n  \"metrics\": {";
  bool first = true;
  for (const Metric& m : metrics_) {
    os << (first ? "\n" : ",\n") << "    \"";
    json_escape(os, m.key);
    os << "\": {\"value\": " << (std::isfinite(m.value) ? m.value : 0.0)
       << ", \"unit\": \"";
    json_escape(os, m.unit);
    os << "\"}";
    first = false;
  }
  os << "\n  },\n  \"notes\": {";
  first = true;
  for (const auto& [k, v] : notes_) {
    os << (first ? "\n" : ",\n") << "    \"";
    json_escape(os, k);
    os << "\": \"";
    json_escape(os, v);
    os << "\"";
    first = false;
  }
  os << "\n  }\n}\n";
  os.flush();
  if (!os.good()) {
    std::fprintf(stderr,
                 "BenchReporter: I/O error while writing \"%s\" (report is "
                 "incomplete)\n",
                 path.c_str());
    return "";
  }
  return path;
}

}  // namespace rcarb::obs
