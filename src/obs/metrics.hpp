// Per-arbiter observability counters and histograms.
//
// The paper's arbitration claims are quantitative — the N-1 worst-case wait
// bound (Sec. 4), the 2-cycle protocol overhead per burst (Fig. 8), and the
// fairness of the round-robin rotation — so the simulator must expose them
// as machine-readable numbers, not just pass/fail diagnostics.  ArbiterProbe
// implements the core::ArbiterObserver hook and derives wait, hold, queue
// depth and per-port fairness metrics from the raw request/grant wire
// stream; nothing here formats strings on the simulation hot path.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/policy.hpp"

namespace rcarb::obs {

/// HDR-style histogram of non-negative cycle counts: 65 power-of-two major
/// buckets (bucket 0 holds value 0; bucket i >= 1 holds [2^(i-1), 2^i - 1]),
/// each subdivided into kSubBuckets linear sub-buckets.  The linear
/// subdivision bounds the quantization error of every percentile to
/// 1/kSubBuckets of the value (values below 2^kSubBits are exact) — the
/// pure pow-2 form answered p999 up to 2x high, which is useless for tail
/// latency SLOs.
class Histogram {
 public:
  // 65 major buckets cover the full uint64 domain (the old 33 silently
  // indexed out of bounds for values >= 2^32).
  static constexpr int kBuckets = 65;
  static constexpr int kSubBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBits;  // 16: <= 6.25% error

  void record(std::uint64_t value);

  /// Element-wise accumulation of `other` (per-worker service histograms
  /// are combined this way in parallel sweep reductions).  All counters use
  /// saturating arithmetic, so merging many full histograms pins at
  /// UINT64_MAX instead of wrapping.  Deterministic: merge order never
  /// changes any bucket, and max/percentiles are order-independent.
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const;
  /// Total count of major bucket i (sum of its sub-buckets).
  [[nodiscard]] std::uint64_t bucket(int i) const;
  /// Inclusive value range covered by major bucket i.
  [[nodiscard]] static std::pair<std::uint64_t, std::uint64_t> bucket_range(
      int i);
  /// Upper bound of the *sub-bucket* holding the p-quantile (p in [0, 1],
  /// 0-based nearest rank), clamped to max() so it never exceeds any value
  /// actually recorded; p = 0.0 answers the minimum's sub-bucket, p = 1.0
  /// the maximum's.  NaN p clamps to 0.0.  An empty histogram returns 0 by
  /// definition.
  [[nodiscard]] std::uint64_t percentile(double p) const;
  /// "n=12 mean=3.4 max=9 p50<=4 p99<=16" (empty: "n=0").
  [[nodiscard]] std::string summarize() const;

 private:
  std::array<std::uint64_t, static_cast<std::size_t>(kBuckets) * kSubBuckets>
      sub_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

/// Fairness / wait accounting for one request port of one arbiter.
struct PortMetrics {
  std::uint64_t grants = 0;          // bursts granted to this port
  std::uint64_t granted_cycles = 0;  // cycles holding the grant (share)
  std::uint64_t wait_cycles = 0;     // cycles requesting without the grant
  std::uint64_t max_wait = 0;        // longest request-to-grant wait
  /// Most grants handed to *other* ports during one wait of this port.
  /// The paper's bound: a round-robin requester is served after at most
  /// N-1 other grants.
  std::uint64_t max_turns_waited = 0;
};

/// Counters and histograms for one arbiter instance.
struct ArbiterMetrics {
  std::string name;   // guarded resource
  std::string kind;   // arbiter structure label ("flat"/"hier"/"prefix");
                      // empty when the producer predates kind threading
  int ports = 0;

  Histogram grant_latency;  // request-to-grant, cycles
  Histogram hold_length;    // grant-to-release, cycles
  Histogram queue_depth;    // requesters pending at each grant hand-off

  std::vector<PortMetrics> port;  // size == ports

  // Protocol robustness events (filled by the simulator).
  std::uint64_t watchdog_fires = 0;     // hung-grant detections
  std::uint64_t watchdog_releases = 0;  // hardened force-releases
  std::uint64_t backoffs = 0;           // retry-timeout Req drops
  std::uint64_t retries = 0;            // Req re-assertions after backoff

  // Concurrent error detection (filled by the host of a self-checking
  // arbiter, core/selfcheck.hpp): steps on which the comparator fired,
  // and the resyncs that cleared them (DMR reset reloads / TMR minority
  // rewrites).  A trip count far above the resync count is the latch-up
  // signature — the error net is pinned high by a copy refusing resync.
  std::uint64_t error_net_trips = 0;
  std::uint64_t resyncs = 0;

  /// Jain fairness index over the per-port granted-cycle shares:
  /// 1.0 = perfectly even, 1/ports = one port monopolizes.  Ports that
  /// never requested are excluded; 1.0 when nothing was granted.
  [[nodiscard]] double fairness_jain() const;
  /// Worst max_turns_waited over all ports (paper bound: <= ports - 1).
  [[nodiscard]] std::uint64_t worst_turns_waited() const;
  /// True when every observed wait respected the N-1 grant-turn bound.
  [[nodiscard]] bool within_n_minus_1_bound() const;
  /// One-line human summary (flow reports, bench tables).
  [[nodiscard]] std::string summarize() const;
};

/// core::ArbiterObserver that feeds an ArbiterMetrics from the request /
/// grant stream.  Attach with Arbiter::set_observer; the probe borrows the
/// metrics object and must outlive the attachment.
class ArbiterProbe final : public core::ArbiterObserver {
 public:
  /// `metrics` must have `ports` set; `port` is resized here.  Widths past
  /// 64 are fed through the wide hook (core::Arbiter::step_wide).
  explicit ArbiterProbe(ArbiterMetrics* metrics);

  void on_step(std::uint64_t requests, int grant) override;
  void on_step_wide(const std::vector<std::uint64_t>& requests,
                    int grant) override;

  /// Flushes the in-flight hold interval (call once, after the last step).
  void finish();

 private:
  ArbiterMetrics* m_;
  int holder_ = -1;
  std::uint64_t hold_len_ = 0;
  std::vector<std::uint64_t> wait_;   // per-port in-flight wait
  std::vector<std::uint64_t> turns_;  // per-port other-grants while waiting
  std::vector<std::uint64_t> word_;   // scratch widening word-based steps
};

}  // namespace rcarb::obs
