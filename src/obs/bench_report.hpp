// Machine-readable bench reports.
//
// Every bench/bench_*.cpp routes its headline numbers through a
// BenchReporter, which writes BENCH_<name>.json next to the binary (or into
// $RCARB_BENCH_DIR).  The reports seed the repo's perf trajectory: CI
// uploads them per commit, so fairness or overhead regressions show up as a
// diff in numbers rather than a tripped assertion months later.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace rcarb::obs {

/// Collects named metrics for one bench run and serializes them as
/// BENCH_<name>.json (schema "rcarb-bench-v1").
///
/// Recording (metric / note) is thread-safe, so parallel sweep workers may
/// merge into one reporter — but for *deterministic* reports, record from
/// the ordered reducer of support/parallel.hpp instead: the report keeps
/// insertion order, so concurrent recording yields a schedule-dependent
/// key order.  write() must not race with recording.
class BenchReporter {
 public:
  /// `name` is the bench identifier, e.g. "fig8_overhead".
  explicit BenchReporter(std::string name);

  /// Records one scalar metric.  `unit` is free-form ("cycles", "ratio",
  /// "luts"); metrics keep insertion order in the report.
  void metric(const std::string& key, double value,
              const std::string& unit = "");
  /// Records a free-form string annotation (config, policy names, notes).
  void note(const std::string& key, const std::string& value);

  /// Writes BENCH_<name>.json into `dir` (default: $RCARB_BENCH_DIR, else
  /// the current directory), creating the directory first when it does not
  /// exist.  Adds wall time since construction, the schema tag, a UTC
  /// timestamp, and the git commit (from $RCARB_GIT_COMMIT / $GITHUB_SHA,
  /// falling back to `git rev-parse`).  Returns the path written; on I/O
  /// failure prints a diagnostic naming the path to stderr and returns ""
  /// (bench mains turn that into a nonzero exit).
  std::string write(const std::string& dir = "");

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  struct Metric {
    std::string key;
    double value;
    std::string unit;
  };

  std::string name_;
  std::int64_t start_ns_;
  std::mutex mu_;  // guards metrics_ / notes_ during parallel recording
  std::vector<Metric> metrics_;
  std::vector<std::pair<std::string, std::string>> notes_;
};

/// Commit id for report metadata: $RCARB_GIT_COMMIT, else $GITHUB_SHA, else
/// `git rev-parse HEAD`, else "unknown".
[[nodiscard]] std::string bench_commit_id();

}  // namespace rcarb::obs
