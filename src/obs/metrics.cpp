#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace rcarb::obs {

namespace {

/// Bucket index of `value`: 0 -> 0, otherwise 1 + floor(log2(value)).
int bucket_of(std::uint64_t value) {
  if (value == 0) return 0;
  return 1 + (63 - std::countl_zero(value));
}

}  // namespace

void Histogram::record(std::uint64_t value) {
  buckets_[static_cast<std::size_t>(bucket_of(value))] += 1;
  count_ += 1;
  sum_ += value;
  max_ = std::max(max_, value);
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t Histogram::bucket(int i) const {
  return buckets_[static_cast<std::size_t>(i)];
}

std::pair<std::uint64_t, std::uint64_t> Histogram::bucket_range(int i) {
  if (i == 0) return {0, 0};
  const std::uint64_t lo = 1ull << (i - 1);
  return {lo, lo * 2 - 1};
}

std::uint64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;  // documented: empty histogram reports 0
  // Not std::clamp: the negated comparison also lands NaN on 0.0 instead
  // of flowing it into the rank cast (which would be UB).
  if (!(p >= 0.0)) p = 0.0;
  if (p > 1.0) p = 1.0;
  // 0-based nearest rank.  p = 0.0 targets rank 0 (the minimum's bucket),
  // p = 1.0 targets rank count-1 (the maximum's bucket): `seen > target`
  // fires on the first bucket whose cumulative count covers the rank, so
  // a histogram with every sample in one bucket answers that bucket for
  // every p.
  const auto target = static_cast<std::uint64_t>(
      p * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    // The bucket upper bound can overshoot the largest value actually
    // recorded (64 lands in [64,127]); clamping keeps percentile() <= max()
    // so p100 is exact instead of up to 2x high.
    if (seen > target) return std::min(bucket_range(i).second, max_);
  }
  return max_;
}

std::string Histogram::summarize() const {
  if (count_ == 0) return "n=0";
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "n=%llu mean=%.2f max=%llu p50<=%llu p99<=%llu",
                static_cast<unsigned long long>(count_), mean(),
                static_cast<unsigned long long>(max_),
                static_cast<unsigned long long>(percentile(0.50)),
                static_cast<unsigned long long>(percentile(0.99)));
  return buf;
}

double ArbiterMetrics::fairness_jain() const {
  double sum = 0.0;
  double sum_sq = 0.0;
  int active = 0;
  for (const auto& p : port) {
    if (p.grants == 0 && p.wait_cycles == 0) continue;  // never requested
    const auto share = static_cast<double>(p.granted_cycles);
    sum += share;
    sum_sq += share * share;
    ++active;
  }
  if (active == 0 || sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(active) * sum_sq);
}

std::uint64_t ArbiterMetrics::worst_turns_waited() const {
  std::uint64_t worst = 0;
  for (const auto& p : port) worst = std::max(worst, p.max_turns_waited);
  return worst;
}

bool ArbiterMetrics::within_n_minus_1_bound() const {
  return worst_turns_waited() + 1 <= static_cast<std::uint64_t>(ports);
}

std::string ArbiterMetrics::summarize() const {
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "%s[%d]: latency{%s} hold{%s} jain=%.3f turns<=%llu%s wd=%llu "
      "backoff=%llu",
      name.c_str(), ports, grant_latency.summarize().c_str(),
      hold_length.summarize().c_str(), fairness_jain(),
      static_cast<unsigned long long>(worst_turns_waited()),
      within_n_minus_1_bound() ? "" : "(!)",
      static_cast<unsigned long long>(watchdog_fires),
      static_cast<unsigned long long>(backoffs));
  return buf;
}

ArbiterProbe::ArbiterProbe(ArbiterMetrics* metrics) : m_(metrics) {
  const auto n = static_cast<std::size_t>(m_->ports);
  m_->port.assign(n, PortMetrics{});
  wait_.assign(n, 0);
  turns_.assign(n, 0);
}

void ArbiterProbe::on_step(std::uint64_t requests, int grant) {
  // Hold tracking: close the previous interval on any hand-off.
  if (grant != holder_) {
    if (holder_ >= 0) {
      m_->hold_length.record(hold_len_);
      m_->port[static_cast<std::size_t>(holder_)].granted_cycles += hold_len_;
    }
    if (grant >= 0) {
      const auto g = static_cast<std::size_t>(grant);
      m_->port[g].grants += 1;
      m_->grant_latency.record(wait_[g]);
      m_->port[g].max_wait = std::max(m_->port[g].max_wait, wait_[g]);
      m_->port[g].max_turns_waited =
          std::max(m_->port[g].max_turns_waited, turns_[g]);
      wait_[g] = 0;
      turns_[g] = 0;
      m_->queue_depth.record(
          static_cast<std::uint64_t>(std::popcount(requests)));
      // Every other in-flight waiter saw one more grant go elsewhere.
      for (std::size_t i = 0; i < turns_.size(); ++i)
        if (i != g && (requests >> i & 1) != 0) turns_[i] += 1;
    }
    holder_ = grant;
    hold_len_ = 0;
  }
  if (holder_ >= 0) hold_len_ += 1;

  for (std::size_t i = 0; i < wait_.size(); ++i) {
    if ((requests >> i & 1) == 0) {
      // Req dropped without a grant (release-less backoff): the wait
      // resumes from zero when it re-asserts, matching the protocol's view.
      if (static_cast<int>(i) != holder_) wait_[i] = 0;
      continue;
    }
    if (static_cast<int>(i) != holder_) {
      wait_[i] += 1;
      m_->port[i].wait_cycles += 1;
    }
  }
}

void ArbiterProbe::finish() {
  if (holder_ >= 0) {
    m_->hold_length.record(hold_len_);
    m_->port[static_cast<std::size_t>(holder_)].granted_cycles += hold_len_;
  }
  holder_ = -1;
  hold_len_ = 0;
}

}  // namespace rcarb::obs
