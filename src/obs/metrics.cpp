#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>

namespace rcarb::obs {

namespace {

/// Major bucket index of `value`: 0 -> 0, otherwise 1 + floor(log2(value)).
int bucket_of(std::uint64_t value) {
  if (value == 0) return 0;
  return 1 + (63 - std::countl_zero(value));
}

/// Linear sub-bucket of `value` within major bucket m >= 1.  Major bucket m
/// spans 2^(m-1) values starting at 2^(m-1); spans wider than kSubBuckets
/// are divided into kSubBuckets equal linear slices.
int sub_of(std::uint64_t value, int m) {
  if (m == 0) return 0;
  const std::uint64_t lo = 1ull << (m - 1);
  if (m - 1 <= Histogram::kSubBits)
    return static_cast<int>(value - lo);  // span <= kSubBuckets: exact
  return static_cast<int>((value - lo) >> (m - 1 - Histogram::kSubBits));
}

/// Inclusive upper bound of sub-bucket s of major bucket m.
std::uint64_t sub_upper(int m, int s) {
  if (m == 0) return 0;
  const std::uint64_t lo = 1ull << (m - 1);
  if (m - 1 <= Histogram::kSubBits) return lo + static_cast<std::uint64_t>(s);
  const int shift = m - 1 - Histogram::kSubBits;
  return lo + (static_cast<std::uint64_t>(s + 1) << shift) - 1;
}

/// a + b pinned at UINT64_MAX instead of wrapping (merge of many
/// already-huge histograms must not make counts smaller).
std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;
  return s < a ? std::numeric_limits<std::uint64_t>::max() : s;
}

}  // namespace

void Histogram::record(std::uint64_t value) {
  const int m = bucket_of(value);
  auto& cell = sub_[static_cast<std::size_t>(m) * kSubBuckets +
                    static_cast<std::size_t>(sub_of(value, m))];
  cell = sat_add(cell, 1);
  count_ = sat_add(count_, 1);
  sum_ = sat_add(sum_, value);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < sub_.size(); ++i)
    sub_[i] = sat_add(sub_[i], other.sub_[i]);
  count_ = sat_add(count_, other.count_);
  sum_ = sat_add(sum_, other.sum_);
  max_ = std::max(max_, other.max_);
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t Histogram::bucket(int i) const {
  std::uint64_t total = 0;
  for (int s = 0; s < kSubBuckets; ++s)
    total = sat_add(total, sub_[static_cast<std::size_t>(i) * kSubBuckets +
                                static_cast<std::size_t>(s)]);
  return total;
}

std::pair<std::uint64_t, std::uint64_t> Histogram::bucket_range(int i) {
  if (i == 0) return {0, 0};
  const std::uint64_t lo = 1ull << (i - 1);
  return {lo, lo * 2 - 1};
}

std::uint64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;  // documented: empty histogram reports 0
  // Not std::clamp: the negated comparison also lands NaN on 0.0 instead
  // of flowing it into the rank cast (which would be UB).
  if (!(p >= 0.0)) p = 0.0;
  if (p > 1.0) p = 1.0;
  // 0-based nearest rank.  p = 0.0 targets rank 0 (the minimum's
  // sub-bucket), p = 1.0 targets rank count-1 (the maximum's): `seen >
  // target` fires on the first sub-bucket whose cumulative count covers
  // the rank, so a histogram with every sample in one sub-bucket answers
  // that sub-bucket for every p.
  const auto target = static_cast<std::uint64_t>(
      p * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (int m = 0; m < kBuckets; ++m) {
    for (int s = 0; s < kSubBuckets; ++s) {
      seen += sub_[static_cast<std::size_t>(m) * kSubBuckets +
                   static_cast<std::size_t>(s)];
      // The sub-bucket upper bound can overshoot the largest value actually
      // recorded; clamping keeps percentile() <= max() so p100 is exact.
      if (seen > target) return std::min(sub_upper(m, s), max_);
    }
  }
  return max_;
}

std::string Histogram::summarize() const {
  if (count_ == 0) return "n=0";
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "n=%llu mean=%.2f max=%llu p50<=%llu p99<=%llu",
                static_cast<unsigned long long>(count_), mean(),
                static_cast<unsigned long long>(max_),
                static_cast<unsigned long long>(percentile(0.50)),
                static_cast<unsigned long long>(percentile(0.99)));
  return buf;
}

double ArbiterMetrics::fairness_jain() const {
  double sum = 0.0;
  double sum_sq = 0.0;
  int active = 0;
  for (const auto& p : port) {
    if (p.grants == 0 && p.wait_cycles == 0) continue;  // never requested
    const auto share = static_cast<double>(p.granted_cycles);
    sum += share;
    sum_sq += share * share;
    ++active;
  }
  if (active == 0 || sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(active) * sum_sq);
}

std::uint64_t ArbiterMetrics::worst_turns_waited() const {
  std::uint64_t worst = 0;
  for (const auto& p : port) worst = std::max(worst, p.max_turns_waited);
  return worst;
}

bool ArbiterMetrics::within_n_minus_1_bound() const {
  return worst_turns_waited() + 1 <= static_cast<std::uint64_t>(ports);
}

std::string ArbiterMetrics::summarize() const {
  const std::string label = kind.empty() ? name : name + "/" + kind;
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "%s[%d]: latency{%s} hold{%s} jain=%.3f turns<=%llu%s wd=%llu "
      "backoff=%llu err=%llu resync=%llu",
      label.c_str(), ports, grant_latency.summarize().c_str(),
      hold_length.summarize().c_str(), fairness_jain(),
      static_cast<unsigned long long>(worst_turns_waited()),
      within_n_minus_1_bound() ? "" : "(!)",
      static_cast<unsigned long long>(watchdog_fires),
      static_cast<unsigned long long>(backoffs),
      static_cast<unsigned long long>(error_net_trips),
      static_cast<unsigned long long>(resyncs));
  return buf;
}

ArbiterProbe::ArbiterProbe(ArbiterMetrics* metrics) : m_(metrics) {
  const auto n = static_cast<std::size_t>(m_->ports);
  m_->port.assign(n, PortMetrics{});
  wait_.assign(n, 0);
  turns_.assign(n, 0);
  word_.assign((n + 63) / 64 + (n == 0 ? 1 : 0), 0);
}

void ArbiterProbe::on_step(std::uint64_t requests, int grant) {
  word_[0] = requests;
  on_step_wide(word_, grant);
}

void ArbiterProbe::on_step_wide(const std::vector<std::uint64_t>& requests,
                                int grant) {
  const auto ports = static_cast<std::size_t>(m_->ports);
  const auto req_bit = [&](std::size_t i) {
    const std::size_t w = i >> 6;
    return w < requests.size() && ((requests[w] >> (i & 63)) & 1) != 0;
  };

  // Hold tracking: close the previous interval on any hand-off.
  if (grant != holder_) {
    if (holder_ >= 0) {
      m_->hold_length.record(hold_len_);
      m_->port[static_cast<std::size_t>(holder_)].granted_cycles += hold_len_;
    }
    if (grant >= 0) {
      const auto g = static_cast<std::size_t>(grant);
      m_->port[g].grants += 1;
      m_->grant_latency.record(wait_[g]);
      m_->port[g].max_wait = std::max(m_->port[g].max_wait, wait_[g]);
      m_->port[g].max_turns_waited =
          std::max(m_->port[g].max_turns_waited, turns_[g]);
      wait_[g] = 0;
      turns_[g] = 0;
      // Requesters pending at the hand-off, masked to the width (bits past
      // `ports` in the last word are the producer's to leave dirty).
      std::uint64_t depth = 0;
      for (std::size_t w = 0; w * 64 < ports && w < requests.size(); ++w) {
        std::uint64_t r = requests[w];
        if ((w + 1) * 64 > ports && (ports & 63) != 0)
          r &= (1ull << (ports & 63)) - 1;
        depth += static_cast<std::uint64_t>(std::popcount(r));
      }
      m_->queue_depth.record(depth);
      // Every other in-flight waiter saw one more grant go elsewhere.
      for (std::size_t i = 0; i < turns_.size(); ++i)
        if (i != g && req_bit(i)) turns_[i] += 1;
    }
    holder_ = grant;
    hold_len_ = 0;
  }
  if (holder_ >= 0) hold_len_ += 1;

  for (std::size_t i = 0; i < wait_.size(); ++i) {
    if (!req_bit(i)) {
      // Req dropped without a grant (release-less backoff): the wait
      // resumes from zero when it re-asserts, matching the protocol's view.
      if (static_cast<int>(i) != holder_) wait_[i] = 0;
      continue;
    }
    if (static_cast<int>(i) != holder_) {
      wait_[i] += 1;
      m_->port[i].wait_cycles += 1;
    }
  }
}

void ArbiterProbe::finish() {
  if (holder_ >= 0) {
    m_->hold_length.record(hold_len_);
    m_->port[static_cast<std::size_t>(holder_)].granted_cycles += hold_len_;
  }
  holder_ = -1;
  hold_len_ = 0;
}

}  // namespace rcarb::obs
