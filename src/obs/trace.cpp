#include "obs/trace.hpp"

#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

namespace rcarb::obs {

const char* to_string(TraceKind k) {
  switch (k) {
    case TraceKind::kTaskStart: return "task_start";
    case TraceKind::kTaskFinish: return "task_finish";
    case TraceKind::kRequest: return "request";
    case TraceKind::kRelease: return "release";
    case TraceKind::kGrant: return "grant";
    case TraceKind::kGrantEnd: return "grant_end";
    case TraceKind::kBackoff: return "backoff";
    case TraceKind::kRetry: return "retry";
    case TraceKind::kFault: return "fault";
    case TraceKind::kDiagnostic: return "diagnostic";
    case TraceKind::kQuarantine: return "quarantine";
    case TraceKind::kDrain: return "drain";
    case TraceKind::kRemap: return "remap";
  }
  return "unknown";
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
}

const std::string* name_of(const std::vector<std::string>& names, int id) {
  if (id < 0 || static_cast<std::size_t>(id) >= names.size()) return nullptr;
  return &names[static_cast<std::size_t>(id)];
}

void put_name(std::ostream& os, const char* key,
              const std::vector<std::string>& names, int id) {
  if (const std::string* n = name_of(names, id)) {
    os << ",\"" << key << "\":\"";
    json_escape(os, *n);
    os << '"';
  }
}

}  // namespace

void write_jsonl(std::ostream& os, const std::vector<TraceEvent>& events,
                 const TraceMeta& meta) {
  for (const TraceEvent& e : events) {
    os << "{\"cycle\":" << e.cycle << ",\"kind\":\"" << to_string(e.kind)
       << "\",\"task\":" << e.task;
    put_name(os, "task_name", meta.task_names, e.task);
    os << ",\"arbiter\":" << e.arbiter;
    put_name(os, "arbiter_name", meta.arbiter_names, e.arbiter);
    os << ",\"resource\":" << e.resource;
    put_name(os, "resource_name", meta.resource_names, e.resource);
    os << ",\"value\":" << e.value << "}\n";
  }
}

namespace {

/// Emits one trace_event object.  `ph` is the Chrome phase letter; `dur` is
/// only written for "X" (complete) events.
class ChromeWriter {
 public:
  explicit ChromeWriter(std::ostream& os) : os_(os) {}

  void begin() { os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"; }
  void end() { os_ << "\n]}\n"; }

  void meta(int pid, int tid, const char* what, const std::string& name) {
    sep();
    os_ << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid;
    if (tid >= 0) os_ << ",\"tid\":" << tid;
    os_ << ",\"args\":{\"name\":\"";
    json_escape(os_, name);
    os_ << "\"}}";
  }

  void span(int pid, int tid, const std::string& name, std::uint64_t ts,
            std::uint64_t dur) {
    sep();
    os_ << "{\"name\":\"";
    json_escape(os_, name);
    os_ << "\",\"ph\":\"X\",\"ts\":" << ts << ",\"dur\":" << dur
        << ",\"pid\":" << pid << ",\"tid\":" << tid << "}";
  }

  void instant(int pid, int tid, const std::string& name, std::uint64_t ts) {
    sep();
    os_ << "{\"name\":\"";
    json_escape(os_, name);
    os_ << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ts << ",\"pid\":" << pid
        << ",\"tid\":" << tid << "}";
  }

 private:
  void sep() {
    if (!first_) os_ << ",\n";
    first_ = false;
  }

  std::ostream& os_;
  bool first_ = true;
};

std::string label(const char* prefix, const std::vector<std::string>& names,
                  int id, const char* fallback) {
  std::string out = prefix;
  if (const std::string* n = name_of(names, id)) {
    out += *n;
  } else {
    out += fallback;
  }
  return out;
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceEvent>& events,
                        const TraceMeta& meta) {
  ChromeWriter w(os);
  w.begin();

  // Row naming: pid 0 = tasks (tid = task id), pid 1+a = arbiter a
  // (tid = task id of the port's owner).  1 cycle = 1 us.
  w.meta(0, -1, "process_name", "tasks");
  for (std::size_t t = 0; t < meta.task_names.size(); ++t)
    w.meta(0, static_cast<int>(t), "thread_name", meta.task_names[t]);
  for (std::size_t a = 0; a < meta.arbiter_names.size(); ++a) {
    w.meta(1 + static_cast<int>(a), -1, "process_name",
           "arbiter " + meta.arbiter_names[a]);
    for (std::size_t t = 0; t < meta.task_names.size(); ++t)
      w.meta(1 + static_cast<int>(a), static_cast<int>(t), "thread_name",
             meta.task_names[t]);
  }

  std::vector<std::uint64_t> task_start(meta.task_names.size(), 0);
  for (const TraceEvent& e : events) {
    const int apid = 1 + e.arbiter;
    switch (e.kind) {
      case TraceKind::kTaskStart:
        if (e.task >= 0 &&
            static_cast<std::size_t>(e.task) < task_start.size())
          task_start[static_cast<std::size_t>(e.task)] = e.cycle;
        break;
      case TraceKind::kTaskFinish:
        if (e.task >= 0 &&
            static_cast<std::size_t>(e.task) < task_start.size()) {
          const auto ts = task_start[static_cast<std::size_t>(e.task)];
          w.span(0, e.task, label("run ", meta.task_names, e.task, "?"), ts,
                 e.cycle - ts);
        }
        break;
      case TraceKind::kGrant:
        // value = cycles waited; render the wait leading up to the grant.
        if (e.value > 0)
          w.span(apid, e.task,
                 label("wait ", meta.arbiter_names, e.arbiter, "?"),
                 e.cycle - static_cast<std::uint64_t>(e.value),
                 static_cast<std::uint64_t>(e.value));
        break;
      case TraceKind::kGrantEnd:
        // value = cycles held.
        w.span(apid, e.task,
               label("hold ", meta.arbiter_names, e.arbiter, "?"),
               e.cycle - static_cast<std::uint64_t>(e.value),
               static_cast<std::uint64_t>(e.value));
        break;
      case TraceKind::kRequest:
      case TraceKind::kRelease:
      case TraceKind::kBackoff:
      case TraceKind::kRetry:
        w.instant(apid >= 1 ? apid : 0, e.task >= 0 ? e.task : 0,
                  to_string(e.kind), e.cycle);
        break;
      case TraceKind::kFault:
      case TraceKind::kDiagnostic:
      case TraceKind::kQuarantine:
      case TraceKind::kDrain:
      case TraceKind::kRemap:
        w.instant(apid >= 1 ? apid : 0, e.task >= 0 ? e.task : 0,
                  std::string(to_string(e.kind)) + " #" +
                      std::to_string(e.value),
                  e.cycle);
        break;
    }
  }

  w.end();
}

}  // namespace rcarb::obs
