// Structured trace-event sink for the arbitration simulator.
//
// The simulator emits one TraceEvent per protocol action (request, grant,
// release, backoff, retry, fault, diagnostic) with its cycle stamp.  Events
// are plain integers — no strings are built at emission time, so an
// attached sink costs a bounds-checked push_back and a detached sink costs
// one pointer test (see rcsim::SystemSimulator).  Exporters turn a recorded
// buffer into JSON Lines (one event per line, diff- and grep-friendly) or
// the Chrome trace_event format that chrome://tracing and Perfetto load.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rcarb::obs {

/// What happened (values are part of the on-disk schema; append only).
enum class TraceKind : std::uint8_t {
  kTaskStart = 0,   // task begins execution
  kTaskFinish = 1,  // task halts
  kRequest = 2,     // Req asserted for a resource
  kRelease = 3,     // Req deasserted after a completed burst
  kGrant = 4,       // grant acquired; value = cycles waited
  kGrantEnd = 5,    // grant relinquished; value = cycles held
  kBackoff = 6,     // retry timeout hit, Req dropped; value = backoff length
  kRetry = 7,       // Req re-asserted after a backoff
  kFault = 8,       // fault injected; value = fault kind
  kDiagnostic = 9,  // simulator diagnostic; value = rcsim::DiagKind
  kQuarantine = 10, // resource classified permanent; value = strike count
  kDrain = 11,      // quarantine drain finished; value = 1 if force-aborted
  kRemap = 12,      // load moved; resource = old id, value = live resource
};

[[nodiscard]] const char* to_string(TraceKind k);

/// One cycle-stamped protocol event.  All fields are integral so emission
/// never allocates; names are resolved at export time via TraceMeta.
struct TraceEvent {
  std::uint64_t cycle = 0;
  TraceKind kind = TraceKind::kTaskStart;
  std::int32_t task = -1;      // task id, -1 = none
  std::int32_t arbiter = -1;   // arbiter index in the plan, -1 = none
  std::int32_t resource = -1;  // binding resource id, -1 = none
  std::int64_t value = 0;      // kind-specific payload (see TraceKind)

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Abstract sink.  The simulator calls emit() for every event; recording
/// implementations buffer, streaming ones may write through.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceEvent& e) = 0;
};

/// Id -> name tables captured from the simulated system, so exports carry
/// human-readable labels without the hot path touching strings.
struct TraceMeta {
  std::vector<std::string> task_names;
  std::vector<std::string> arbiter_names;   // guarded resource per arbiter
  std::vector<std::string> resource_names;  // banks then physical channels
};

/// In-memory recording sink.
class TraceBuffer final : public TraceSink {
 public:
  void emit(const TraceEvent& e) override { events_.push_back(e); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// JSON Lines export: one {"cycle":..,"kind":"grant",..} object per line.
/// Deterministic (insertion order, fixed key order) so identically-seeded
/// runs produce byte-identical streams.
void write_jsonl(std::ostream& os, const std::vector<TraceEvent>& events,
                 const TraceMeta& meta);

/// Chrome trace_event ("Trace Event Format") export, loadable in
/// chrome://tracing and https://ui.perfetto.dev.  One simulated cycle maps
/// to 1 us.  Rows: pid 0 = tasks (tid = task id, "X" spans for task
/// lifetime and grant holds, instant events for protocol actions); pid 1+a
/// = arbiter a (tid = port, spans for waits and holds).
void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceEvent>& events,
                        const TraceMeta& meta);

}  // namespace rcarb::obs
