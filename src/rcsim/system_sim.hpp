// Cycle-level reconfigurable-computer system simulation.
//
// Executes the tasks of one temporal partition concurrently, interpreting
// their (arbitration-rewritten) programs cycle by cycle against single-port
// memory banks, inter-PE channels with receiver-side registers (paper
// Sec. 4.3) and the behavioral arbiters of core/policy.  The simulator
// enforces the Fig. 8 protocol: an access to an arbitrated resource
// without the grant is a protocol violation, and two simultaneous drivers
// of one bank or physical channel are a hardware conflict.  Both are
// detected and reported — the unarbitrated baseline benches rely on the
// detector to show *why* arbitration is necessary.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/insertion.hpp"
#include "core/policy.hpp"
#include "core/selfcheck.hpp"
#include "degrade/degrade.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "taskgraph/taskgraph.hpp"

namespace rcarb::rcsim {

struct SimOptions {
  std::uint64_t max_cycles = 50'000'000;
  /// Preemption window for round-robin arbiters (0 = paper's base form).
  int rr_max_hold = 0;
  std::uint64_t seed = 1;  // random-policy arbiters
  /// Throw on protocol violations / conflicts instead of recording them.
  /// Non-strict, every violation class lands in SimResult::diagnostics and
  /// the run continues (or stops cleanly on deadlock / max_cycles).
  bool strict = true;
  /// Model the *broken* alternative to Fig. 3's receiver-side registers:
  /// one register per physical channel, so merged transfers can clobber
  /// each other (used by the Table 1 bench to demonstrate the hazard).
  bool naive_shared_channel_register = false;
  /// Virtual-wires-style static TDM baseline (related work, Sec. 1.2):
  /// per logical channel, an optional (slot, period) pair.  A send must
  /// wait until cycle % period == slot; no arbiter is involved.  Empty =
  /// arbitrated sharing as in the paper.
  std::vector<std::pair<int, int>> tdm_slots;  // per ChannelId; period 0=off

  // ---- Resilience (fault model & hardening). ----
  /// Cycles without any task progress before the simulator attributes the
  /// stall (wait-for-graph deadlock analysis) and stops.
  std::uint64_t no_progress_window = 100'000;
  /// Hung-grant watchdog: a holder that keeps a grant this many consecutive
  /// cycles without retiring an access while peers wait is *reported*
  /// (kHungGrant); with `harden` it is also force-released.  0 = off.
  int watchdog_timeout = 0;
  /// Master hardening switch: round-robin arbiters recover from illegal
  /// (SEU-flipped) states, the watchdog force-releases hung holders, and
  /// channel words are SECDED-protected (single-bit corruptions corrected).
  /// Off, the same faults are detected and reported but not repaired.
  bool harden = false;
  /// Deterministic fault schedule (see fault::plan_faults), applied against
  /// this run's arbiters and physical channels.
  std::vector<fault::FaultEvent> faults;

  // ---- Graceful degradation (permanent faults). ----
  /// Replicate every round-robin arbiter as a self-checking variant
  /// (duplicate-and-compare or TMR-voted).  The comparator's `error`
  /// output is the evidence stream the degradation supervisor classifies;
  /// kNone (the default) instantiates the plain single-copy arbiters.
  core::CheckMode self_check = core::CheckMode::kNone;
  /// Round-robin arbiter structure (core/arbiter_factory.hpp).  kAuto (the
  /// default) follows each ArbiterInstance's resolved kind from the
  /// insertion pass — kFlatFsm unless InsertionOptions::arbiter_kind chose
  /// otherwise — so plans and simulation stay in agreement; an explicit
  /// choice overrides the plan for every instance.  The scalable kinds
  /// have no one-hot register: `harden`/`rr_max_hold` do not apply to
  /// them, FSM upsets land in their packed state registers, and
  /// self_check (flat-only replication) must stay kNone.
  core::ArbiterChoice arbiter_kind = core::ArbiterChoice::kAuto;
  int arbiter_arity = 4;  // tree arity for kHierarchical
  /// Supervisory recovery controller: classify permanent faults (K strikes
  /// in W cycles), quarantine the resource, drain in-flight bursts at the
  /// Fig. 8 batch boundary and remap its load onto survivors.  Disabled by
  /// default (permanent faults then stall the affected tasks forever —
  /// the bench's stall-only baseline).
  degrade::DegradeOptions degrade;

  // ---- Observability. ----
  /// Borrowed trace-event sink.  nullptr (the default) disables emission
  /// entirely: every candidate event costs one pointer test, and no names
  /// or strings are formatted on the simulation path.
  obs::TraceSink* trace_sink = nullptr;
  /// Attach per-arbiter metric probes; results land in
  /// SimResult::arbiter_obs.  Off by default: the probes cost ~5-10% on
  /// simulation-bound workloads (the flow turns them on for its summary).
  bool arbiter_metrics = false;
  /// Build the human-readable `detail` string of each diagnostic.  Off,
  /// diagnostics still carry kind/cycle/task/resource (count() and kind
  /// filters keep working) but `detail` stays empty, so non-strict fault
  /// sweeps do not pay string formatting per event.  Strict runs always
  /// build details — the thrown message needs them.
  bool diag_detail = true;
  /// Record each arbiter's per-cycle *effective* request word (after
  /// stuck-at masking and watchdog force-release — exactly what the
  /// behavioral arbiter steps on) into SimResult::request_trace.  The
  /// recorded stream can be replayed against the synthesized netlist of
  /// the same arbiter, e.g. 64 SEU replicas at a time in a
  /// netlist::LaneSimulator.  Off by default: costs one store per arbiter
  /// per cycle when on, nothing when off.
  bool record_request_trace = false;

  // ---- Overload control (open-loop service frontend, src/service). ----
  /// Bounded admission per arbiter: a task trying to assert Req while the
  /// arbiter's previous-cycle request wire already carries this many
  /// *other* requesters is refused at the request edge — one kRejected
  /// diagnostic per burst, counted in SimResult::admission_rejects — and
  /// enters its bounded exponential backoff instead of camping on the
  /// wire.  0 = unlimited (the existing behavior, byte-identical).
  int admission_limit = 0;
  /// Per-burst retry budget: after this many backoff rounds (retry
  /// timeouts or admission refusals) without a grant, the task emits one
  /// kTimedOut diagnostic and falls back to a patiently-held request — a
  /// stalled client surfaces a typed diagnostic instead of a protocol
  /// violation, and no overload policy can deadlock a run.  0 = unlimited.
  int retry_budget = 0;
};

/// What went wrong (or was repaired), as a machine-checkable record.
enum class DiagKind : std::uint8_t {
  kBankConflict,      // two simultaneous drivers of a single-port bank
  kChannelConflict,   // two simultaneous drivers of a physical channel
  kProtocolViolation, // Fig. 8 protocol broken (access without Req, ...)
  kOutOfBounds,       // address outside the segment
  kIllegalFsmState,   // arbiter register left the legal one-hot set
  kMultipleGrants,    // mutual exclusion violated (multi-hot register)
  kFsmRecovery,       // hardened arbiter recovered to the reset state
  kHungGrant,         // grant pinned on an idle holder past the watchdog
  kWatchdogRecovery,  // watchdog force-released the hung holder
  kDataCorruption,    // channel word corrupted (detected or corrected)
  kDeadlock,          // wait-for-graph cycle over requests/grants/channels
  kNoProgress,        // stall with no wait-for cycle (hang / livelock)
  kMaxCycles,         // simulation exceeded max_cycles
  kQuarantine,        // supervisor classified a resource fault as permanent
  kRemap,             // quarantined resource's load moved onto a survivor
  kCapacityExhausted, // no survivor can take the load; stall-with-diagnostic
  kRejected,          // admission control refused a request at the edge
  kTimedOut,          // retry budget exhausted; client now waits patiently
  kShed,              // service frontend shed the request before enqueue
};

[[nodiscard]] const char* to_string(DiagKind k);

/// One attributed diagnostic.  `task` / `resource` are -1 when the event is
/// not tied to one task / one shared resource.
struct SimDiagnostic {
  DiagKind kind = DiagKind::kNoProgress;
  std::uint64_t cycle = 0;
  int task = -1;      // tg::TaskId
  int resource = -1;  // unified Binding resource id
  std::string detail;

  [[nodiscard]] std::string format() const;
};

struct TaskStats {
  bool ran = false;
  std::uint64_t start_cycle = 0;
  std::uint64_t finish_cycle = 0;
  std::uint64_t ops_retired = 0;
  std::uint64_t mem_accesses = 0;
  std::uint64_t channel_ops = 0;
  std::uint64_t grant_wait_cycles = 0;  // stalled awaiting a grant
  std::uint64_t backpressure_cycles = 0;  // sends stalled on a full register
  std::uint64_t acquires = 0;
};

struct ArbiterStats {
  std::string resource_name;
  int ports = 0;
  /// Structure actually instantiated (plan kind or SimOptions override).
  core::ArbiterKind kind = core::ArbiterKind::kFlatFsm;
  std::uint64_t grants = 0;         // grant-holder changes
  std::uint64_t granted_cycles = 0; // cycles with any grant asserted
  std::uint64_t max_wait = 0;       // longest request-to-grant wait
};

struct SimResult {
  std::uint64_t cycles = 0;
  std::vector<TaskStats> tasks;       // per TaskId
  std::vector<ArbiterStats> arbiters; // per plan arbiter
  std::uint64_t bank_conflicts = 0;
  std::uint64_t channel_conflicts = 0;
  std::uint64_t protocol_violations = 0;
  std::uint64_t clobbered_reads = 0;  // naive shared-register corruption

  // ---- Resilience accounting. ----
  std::uint64_t illegal_fsm_states = 0;   // illegal-register episodes seen
  std::uint64_t fsm_recoveries = 0;       // hardened arbiter resets
  std::uint64_t multi_grant_cycles = 0;   // cycles with >1 grant asserted
  std::uint64_t hung_grants = 0;          // watchdog detections
  std::uint64_t watchdog_releases = 0;    // watchdog force-releases
  std::uint64_t corrupted_words = 0;      // delivered corrupted (detected)
  std::uint64_t corrected_words = 0;      // repaired by SECDED
  std::uint64_t retries = 0;              // protocol-level Req re-assertions
  std::uint64_t admission_rejects = 0;    // requests refused at the edge
  std::uint64_t budget_exhausted = 0;     // clients that spent a retry budget
  /// True when the run stopped on a deadlock / no-progress attribution
  /// instead of finishing every task.
  bool deadlocked = false;

  // ---- Graceful-degradation accounting. ----
  std::uint64_t self_check_errors = 0;  // comparator-high cycles
  std::uint64_t self_check_resyncs = 0; // copy re-synchronizations
  std::uint64_t strikes = 0;            // evidence fed to the classifier
  std::uint64_t quarantined = 0;        // resources classified permanent
  std::uint64_t remaps = 0;             // successful online remaps
  std::uint64_t drain_aborts = 0;       // drain_timeout force-aborts
  /// Cycles on which no resource was mid-quarantine (draining or
  /// reconfiguring) and no task was stuck against a failed, not-yet-
  /// remapped resource.  availability = serving_cycles / cycles.
  std::uint64_t serving_cycles = 0;
  /// One lifecycle record per quarantined resource (MTTR accounting).
  std::vector<degrade::QuarantineRecord> quarantine_events;

  std::vector<SimDiagnostic> diagnostics;

  /// Per-arbiter counters and histograms (empty when
  /// SimOptions::arbiter_metrics is off).  Indexed like `arbiters`.
  std::vector<obs::ArbiterMetrics> arbiter_obs;

  /// Per-arbiter effective request words, one entry per simulated cycle
  /// (empty when SimOptions::record_request_trace is off).  Indexed like
  /// `arbiters`; bit p of entry [a][c] is port p's request at cycle c.
  std::vector<std::vector<std::uint64_t>> request_trace;

  /// Diagnostics of one kind (campaign reporting helper).
  [[nodiscard]] std::size_t count(DiagKind k) const;
};

/// Simulates one temporal partition of a bound, arbitration-planned design.
/// Owns copies of the graph, binding and plan, so callers may pass
/// temporaries freely.
class SystemSimulator {
 public:
  /// The graph must be the *rewritten* graph from insert_arbitration (or an
  /// un-rewritten one when demonstrating violations with an empty plan).
  SystemSimulator(tg::TaskGraph graph, core::Binding binding,
                  core::ArbitrationPlan plan, SimOptions options = {});

  /// Pre-loads a segment's words (resizes to the segment's declared size).
  void write_segment(tg::SegmentId s, const std::vector<std::int64_t>& words);
  [[nodiscard]] const std::vector<std::int64_t>& segment_data(
      tg::SegmentId s) const;

  /// Runs the given tasks to completion (or max_cycles) and returns stats.
  /// Tasks outside `tasks` are treated as already finished for control
  /// dependencies.  May be called repeatedly; memory persists across runs.
  SimResult run(const std::vector<tg::TaskId>& tasks);

  /// Id -> name tables for exporting traces recorded from this system.
  [[nodiscard]] obs::TraceMeta trace_meta() const;

 private:
  struct TaskCtx;

  tg::TaskGraph graph_;
  core::Binding binding_;
  core::ArbitrationPlan plan_;
  SimOptions options_;
  std::vector<std::vector<std::int64_t>> memory_;  // per segment
};

}  // namespace rcarb::rcsim
