#include "rcsim/system_sim.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <numeric>
#include <utility>

#include "support/check.hpp"

namespace rcarb::rcsim {

namespace {

using tg::Op;
using tg::OpCode;
using tg::TaskId;

/// Per-logical-channel receiver register (Fig. 3: a register per receiving
/// end whose enable comes from the source keeps earlier transfers alive).
struct ChannelReg {
  bool valid = false;
  std::int64_t value = 0;
};

/// Naive alternative: one register per physical channel; `writer` records
/// which logical channel wrote last so corrupted reads can be counted.
struct NaiveReg {
  bool valid = false;
  std::int64_t value = 0;
  int writer = -1;
};

struct LoopFrame {
  std::size_t begin_pc = 0;  // index of the kLoopBegin op
  std::int64_t remaining = 0;
};

/// A stuck-at fault window over one arbiter line.
struct StuckWindow {
  fault::FaultKind kind = fault::FaultKind::kReqStuck0;
  std::size_t arbiter = 0;
  int port = 0;
  std::uint64_t from = 0;
  std::uint64_t until = 0;  // exclusive

  [[nodiscard]] bool active(std::uint64_t cycle) const {
    return cycle >= from && cycle < until;
  }
};

}  // namespace

const char* to_string(DiagKind k) {
  switch (k) {
    case DiagKind::kBankConflict: return "bank-conflict";
    case DiagKind::kChannelConflict: return "channel-conflict";
    case DiagKind::kProtocolViolation: return "protocol-violation";
    case DiagKind::kOutOfBounds: return "out-of-bounds";
    case DiagKind::kIllegalFsmState: return "illegal-fsm-state";
    case DiagKind::kMultipleGrants: return "multiple-grants";
    case DiagKind::kFsmRecovery: return "fsm-recovery";
    case DiagKind::kHungGrant: return "hung-grant";
    case DiagKind::kWatchdogRecovery: return "watchdog-recovery";
    case DiagKind::kDataCorruption: return "data-corruption";
    case DiagKind::kDeadlock: return "deadlock";
    case DiagKind::kNoProgress: return "no-progress";
    case DiagKind::kMaxCycles: return "max-cycles";
    case DiagKind::kQuarantine: return "quarantine";
    case DiagKind::kRemap: return "remap";
    case DiagKind::kCapacityExhausted: return "capacity-exhausted";
    case DiagKind::kRejected: return "rejected";
    case DiagKind::kTimedOut: return "timed-out";
    case DiagKind::kShed: return "shed";
  }
  return "?";
}

std::string SimDiagnostic::format() const {
  std::string s = std::string(to_string(kind)) + "@" + std::to_string(cycle);
  if (task >= 0) s += " task=" + std::to_string(task);
  if (resource >= 0) s += " resource=" + std::to_string(resource);
  if (!detail.empty()) s += ": " + detail;
  return s;
}

std::size_t SimResult::count(DiagKind k) const {
  std::size_t n = 0;
  for (const SimDiagnostic& d : diagnostics)
    if (d.kind == k) ++n;
  return n;
}

struct SystemSimulator::TaskCtx {
  TaskId id = 0;
  bool in_run = false;
  bool started = false;
  bool finished = false;
  std::size_t pc = 0;
  std::int64_t regs[tg::kNumRegs] = {};
  std::vector<LoopFrame> loops;
  std::int64_t compute_left = 0;  // remaining busy cycles of a kCompute
  // Arbitration protocol state.
  int requesting = -1;  // resource whose Req line this task asserts (-1 none)
  // Resource whose request was auto-deasserted during send backpressure
  // (the sender re-arbitrates once the receiver register frees up).
  int dropped_request = -1;
  std::uint64_t request_since = 0;
  // Protocol-level retry: after retry_timeout granless cycles the task
  // deasserts Req and re-asserts once the bounded backoff expires.
  int retry_resource = -1;
  std::uint64_t retry_until = 0;
  int retry_backoff = 1;
  // Overload control (SimOptions::admission_limit / retry_budget).
  int retry_rounds = 0;          // backoff rounds this burst
  bool budget_spent = false;     // kTimedOut fired; now waiting patiently
  bool reject_reported = false;  // one kRejected diagnostic per burst
  // Resources this task drives without inserted Req/Rel ops (it was the
  // sole client pre-remap, so the insertion pass elided its protocol);
  // the simulator retrofits a per-access Req / release instead.
  std::vector<int> implicit_protocol;
  [[nodiscard]] bool implicit_for(int resource) const {
    for (const int res : implicit_protocol)
      if (res == resource) return true;
    return false;
  }
  TaskStats stats;
};

SystemSimulator::SystemSimulator(tg::TaskGraph graph, core::Binding binding,
                                 core::ArbitrationPlan plan,
                                 SimOptions options)
    : graph_(std::move(graph)),
      binding_(std::move(binding)),
      plan_(std::move(plan)),
      options_(options) {
  graph_.validate();
  memory_.resize(graph_.num_segments());
  for (tg::SegmentId s = 0; s < graph_.num_segments(); ++s)
    memory_[s].assign(graph_.segment(s).words, 0);
}

void SystemSimulator::write_segment(tg::SegmentId s,
                                    const std::vector<std::int64_t>& words) {
  RCARB_CHECK(s < memory_.size(), "segment out of range");
  RCARB_CHECK(words.size() <= graph_.segment(s).words,
              "segment preload larger than the segment");
  memory_[s].assign(graph_.segment(s).words, 0);
  std::copy(words.begin(), words.end(), memory_[s].begin());
}

const std::vector<std::int64_t>& SystemSimulator::segment_data(
    tg::SegmentId s) const {
  RCARB_CHECK(s < memory_.size(), "segment out of range");
  return memory_[s];
}

obs::TraceMeta SystemSimulator::trace_meta() const {
  obs::TraceMeta m;
  m.task_names.reserve(graph_.num_tasks());
  for (TaskId t = 0; t < graph_.num_tasks(); ++t)
    m.task_names.push_back(graph_.task(t).name);
  m.arbiter_names.reserve(plan_.arbiters.size());
  for (const core::ArbiterInstance& a : plan_.arbiters)
    m.arbiter_names.push_back(a.resource_name);
  const int n_res = static_cast<int>(binding_.num_resources());
  m.resource_names.reserve(static_cast<std::size_t>(n_res));
  for (int r = 0; r < n_res; ++r)
    m.resource_names.push_back(binding_.resource_name(r));
  return m;
}

SimResult SystemSimulator::run(const std::vector<TaskId>& tasks) {
  SimResult result;
  result.tasks.resize(graph_.num_tasks());
  if (options_.record_request_trace)
    result.request_trace.resize(plan_.arbiters.size());

  // ---- Instantiate behavioral arbiters from the plan. ----
  // Both construction sites — this initial plan walk and the
  // post-quarantine add_arbiter below — build through the one shared
  // factory, so the option set (hardening, preemption, self-check, seed,
  // kind) can never drift between first-build and reconfiguration.
  auto build_arbiter = [&](const core::ArbiterInstance& inst) {
    core::SystemArbiterSpec spec;
    spec.policy = inst.policy;
    // kAuto follows the plan's per-instance resolved kind; an explicit
    // SimOptions choice overrides it for every instance.
    spec.kind = options_.arbiter_kind == core::ArbiterChoice::kAuto
                    ? inst.kind
                    : core::resolve_arbiter_choice(
                          options_.arbiter_kind,
                          static_cast<int>(inst.ports.size()),
                          /*timing_budget_mhz=*/0.0, options_.arbiter_arity);
    spec.arity = options_.arbiter_arity;
    spec.rr = core::RoundRobinOptions{options_.rr_max_hold, options_.harden};
    spec.self_check = options_.self_check;
    spec.seed = options_.seed;
    return core::make_system_arbiter(static_cast<int>(inst.ports.size()),
                                     spec);
  };
  std::vector<std::unique_ptr<core::Arbiter>> arbiters;
  std::vector<core::RoundRobinArbiter*> rr(plan_.arbiters.size(), nullptr);
  std::vector<core::SelfCheckingArbiter*> sc(plan_.arbiters.size(), nullptr);
  std::vector<core::HierarchicalArbiter*> hier(plan_.arbiters.size(),
                                               nullptr);
  std::vector<core::PrefixArbiter*> prefix(plan_.arbiters.size(), nullptr);
  std::vector<int> grant_holder(plan_.arbiters.size(), -1);  // port index
  for (const core::ArbiterInstance& inst : plan_.arbiters) {
    const int n = static_cast<int>(inst.ports.size());
    core::SystemArbiter made = build_arbiter(inst);
    rr[arbiters.size()] = made.rr;
    sc[arbiters.size()] = made.sc;
    hier[arbiters.size()] = made.hier;
    prefix[arbiters.size()] = made.prefix;
    arbiters.push_back(std::move(made.arbiter));
    ArbiterStats st;
    st.resource_name = inst.resource_name;
    st.ports = n;
    st.kind = made.kind;
    result.arbiters.push_back(st);
  }

  // ---- Observability: metric probes and the trace sink. ----
  // arbiter_obs is sized once, before any probe borrows an element, so the
  // probes' pointers stay valid for the whole run.  The reserve leaves room
  // for arbiters regenerated by the degradation supervisor (at most one per
  // quarantined resource), so mid-run push_backs never reallocate under the
  // existing probes' pointers.
  std::vector<std::unique_ptr<obs::ArbiterProbe>> probes;
  if (options_.arbiter_metrics) {
    result.arbiter_obs.reserve(plan_.arbiters.size() +
                               binding_.num_resources());
    result.arbiter_obs.resize(plan_.arbiters.size());
    probes.reserve(plan_.arbiters.size());
    for (std::size_t a = 0; a < arbiters.size(); ++a) {
      obs::ArbiterMetrics& m = result.arbiter_obs[a];
      m.name = plan_.arbiters[a].resource_name;
      m.kind = core::to_string(result.arbiters[a].kind);
      m.ports = result.arbiters[a].ports;
      probes.push_back(std::make_unique<obs::ArbiterProbe>(&m));
      arbiters[a]->set_observer(probes.back().get());
    }
  }
  obs::TraceSink* const sink = options_.trace_sink;
  auto trace = [&](obs::TraceKind kind, std::uint64_t cyc, int task,
                   int arbiter, int resource, std::int64_t value) {
    if (sink != nullptr) sink->emit({cyc, kind, task, arbiter, resource, value});
  };

  // ---- Split the fault schedule by application point. ----
  std::vector<fault::FaultEvent> flips;  // kFsmBitFlip, cycle-sorted
  std::vector<StuckWindow> stucks;       // req/grant stuck-at windows
  // Per physical channel: armed corruption masks, cycle-sorted.
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      chan_corrupt(binding_.num_phys_channels);
  std::vector<std::size_t> chan_corrupt_next(binding_.num_phys_channels, 0);
  // Permanent faults: (cycle, resource id) activations and arbiter
  // latch-ups, applied in Phase 0 and never expiring.
  std::vector<std::pair<std::uint64_t, int>> perm_res;  // (cycle, resource)
  std::vector<std::pair<std::uint64_t, std::size_t>> latchups;
  for (const fault::FaultEvent& e : options_.faults) {
    switch (e.kind) {
      case fault::FaultKind::kFsmBitFlip:
        if (e.arbiter >= 0 &&
            static_cast<std::size_t>(e.arbiter) < arbiters.size())
          flips.push_back(e);
        break;
      case fault::FaultKind::kReqStuck0:
      case fault::FaultKind::kReqStuck1:
      case fault::FaultKind::kGrantStuck0:
      case fault::FaultKind::kGrantDrop:
        if (e.arbiter >= 0 &&
            static_cast<std::size_t>(e.arbiter) < arbiters.size() &&
            e.port >= 0 && e.port < result.arbiters[static_cast<std::size_t>(
                                        e.arbiter)].ports)
          stucks.push_back({e.kind, static_cast<std::size_t>(e.arbiter),
                            e.port, e.cycle, e.cycle + e.duration});
        break;
      case fault::FaultKind::kChannelCorrupt:
        if (e.channel >= 0 &&
            static_cast<std::size_t>(e.channel) < chan_corrupt.size())
          chan_corrupt[static_cast<std::size_t>(e.channel)].push_back(
              {e.cycle, e.xor_mask});
        break;
      case fault::FaultKind::kPermanentStuckChannel:
        if (e.channel >= 0 &&
            static_cast<std::size_t>(e.channel) < binding_.num_phys_channels)
          perm_res.push_back({e.cycle, binding_.channel_resource(e.channel)});
        break;
      case fault::FaultKind::kBankFailure:
        if (e.bank >= 0 &&
            static_cast<std::size_t>(e.bank) < binding_.num_banks)
          perm_res.push_back({e.cycle, binding_.bank_resource(e.bank)});
        break;
      case fault::FaultKind::kArbiterLatchup:
        if (e.arbiter >= 0 &&
            static_cast<std::size_t>(e.arbiter) < arbiters.size())
          latchups.push_back({e.cycle, static_cast<std::size_t>(e.arbiter)});
        break;
    }
  }
  std::stable_sort(flips.begin(), flips.end(),
                   [](const fault::FaultEvent& a, const fault::FaultEvent& b) {
                     return a.cycle < b.cycle;
                   });
  for (auto& q : chan_corrupt) std::stable_sort(q.begin(), q.end());
  std::stable_sort(perm_res.begin(), perm_res.end());
  std::stable_sort(latchups.begin(), latchups.end());
  std::size_t flip_next = 0;
  std::size_t perm_next = 0;
  std::size_t latch_next = 0;

  // ---- Task contexts. ----
  std::vector<TaskCtx> ctx(graph_.num_tasks());
  for (TaskId t = 0; t < graph_.num_tasks(); ++t) ctx[t].id = t;
  for (TaskId t : tasks) {
    RCARB_CHECK(t < graph_.num_tasks(), "task out of range");
    ctx[t].in_run = true;
  }

  // ---- Channel registers. ----
  std::vector<ChannelReg> chan_reg(graph_.num_channels());
  std::vector<NaiveReg> naive_reg(binding_.num_phys_channels);

  // Request lines per arbiter port, rebuilt each cycle from task state.
  std::vector<std::uint64_t> requests(plan_.arbiters.size(), 0);

  // Diagnostic emission.  `make_detail` is a lazy builder: the detail
  // string is only formatted when someone will read it (diag_detail on, or
  // a strict run about to throw) — non-strict sweeps that merely count
  // diagnostic kinds never pay for string construction.
  const bool want_detail = options_.diag_detail || options_.strict;
  auto diagnose = [&](DiagKind kind, std::uint64_t cyc, int task, int resource,
                      auto&& make_detail) {
    result.diagnostics.push_back(
        {kind, cyc, task, resource,
         want_detail ? make_detail() : std::string()});
    trace(obs::TraceKind::kDiagnostic, cyc, task, -1, resource,
          static_cast<std::int64_t>(kind));
  };
  auto fail = [&](DiagKind kind, std::uint64_t cyc, int task, int resource,
                  auto&& make_detail) {
    diagnose(kind, cyc, task, resource, make_detail);
    if (options_.strict)
      RCARB_CHECK(false, result.diagnostics.back().detail);
  };

  // Maps a task+resource to the arbiter index and port, if arbitrated.
  auto arbiter_port = [&](TaskId t, int resource) -> std::pair<int, int> {
    return plan_.port_lookup(resource, t);
  };

  auto driven_resource = [&](const Op& op) -> int {
    switch (op.code) {
      case OpCode::kLoad:
      case OpCode::kStore: {
        const int bank =
            binding_.segment_to_bank[static_cast<std::size_t>(op.b)];
        return bank < 0 ? -1 : binding_.bank_resource(bank);
      }
      case OpCode::kSend: {
        const int phys =
            binding_.channel_to_phys[static_cast<std::size_t>(op.b)];
        return phys < 0 ? -1 : binding_.channel_resource(phys);
      }
      default:
        return -1;
    }
  };

  // ---- Watchdog / fault state per arbiter. ----
  std::vector<std::uint64_t> grant_mask_vis(plan_.arbiters.size(), 0);
  std::vector<int> hold_streak(plan_.arbiters.size(), 0);
  std::vector<char> hung_reported(plan_.arbiters.size(), 0);
  std::vector<char> was_illegal(plan_.arbiters.size(), 0);
  std::vector<char> holder_accessed(plan_.arbiters.size(), 0);
  std::vector<std::uint64_t> force_release(plan_.arbiters.size(), 0);
  std::vector<std::uint64_t> prev_recoveries(plan_.arbiters.size(), 0);
  std::vector<std::uint64_t> hold_since(plan_.arbiters.size(), 0);
  // Ports starved behind the holder, whether their Req is up (requests) or
  // temporarily dropped for a bounded retry backoff.  The watchdog counts
  // these; the wire-level `requests` alone would let every backoff zero the
  // hold streak and hide a hung holder.
  std::vector<std::uint64_t> pending(plan_.arbiters.size(), 0);

  // ---- Graceful-degradation supervisor state. ----
  const bool degrade_on = options_.degrade.enabled;
  const int num_res = static_cast<int>(binding_.num_resources());
  // Per-resource quarantine lifecycle (Fig. 8's batch boundary bounds the
  // drain; the remap plan is frozen at drain completion and applied when
  // the priced reconfiguration stall elapses).
  enum class Repair : std::uint8_t { kNone, kBank, kChannel, kInPlace };
  struct QuarCtx {
    degrade::QuarantineState state = degrade::QuarantineState::kHealthy;
    std::uint64_t deadline = 0;  // drain timeout, then reconfig end
    bool drain_aborted = false;
    std::size_t record = 0;  // index into result.quarantine_events
    Repair repair = Repair::kNone;
    int target = -1;              // live bank / phys channel after remap
    std::vector<int> moved;       // segments (kBank) or channels (kChannel)
  };
  std::vector<QuarCtx> quar(static_cast<std::size_t>(num_res));
  // Resources whose hardware is permanently dead (injected kBankFailure /
  // kPermanentStuckChannel).  Maintained even with the supervisor off: the
  // stall-only baseline injects but never repairs.
  std::vector<char> res_failed(static_cast<std::size_t>(num_res), 0);
  // Plain arbiters wedged by a latch-up: their register is re-frozen to the
  // (illegal) all-zero code before every sample — reset and hardening
  // cannot clear a latch-up, only reconfiguration can.
  std::vector<char> latched_plain(plan_.arbiters.size(), 0);
  // Old resource id -> live resource id after remaps (path-compressed).
  // Group-move remapping keeps this a function, so programs whose acquire/
  // release ops baked in a resource id keep working after the move.
  std::vector<int> resource_fwd(static_cast<std::size_t>(num_res));
  std::iota(resource_fwd.begin(), resource_fwd.end(), 0);
  auto resolve = [&](int r) -> int {
    if (r < 0 || r >= num_res) return r;
    int root = r;
    while (resource_fwd[static_cast<std::size_t>(root)] != root)
      root = resource_fwd[static_cast<std::size_t>(root)];
    while (resource_fwd[static_cast<std::size_t>(r)] != root) {
      const int next = resource_fwd[static_cast<std::size_t>(r)];
      resource_fwd[static_cast<std::size_t>(r)] = root;
      r = next;
    }
    return root;
  };
  degrade::StrikeTracker strike_tracker;
  if (degrade_on)
    strike_tracker = degrade::StrikeTracker(
        static_cast<std::size_t>(num_res), options_.degrade.strikes,
        options_.degrade.strike_window);
  // Capacity model for in-sim bank remaps: the simulator does not know the
  // physical bank sizes (segments are the memory unit here), so banks are
  // capacity-unconstrained and feasibility means "a live bank exists".
  // Capacity-constrained placement is the partition layer's job
  // (MemoryMapOptions::failed_banks).
  const std::vector<std::size_t> bank_free(
      binding_.num_banks, std::numeric_limits<std::size_t>::max() / 2);
  std::vector<std::size_t> seg_bytes(graph_.num_segments());
  for (tg::SegmentId s = 0; s < graph_.num_segments(); ++s)
    seg_bytes[s] = graph_.segment(s).bytes;

  // ---- Stall attribution: wait-for-graph over outstanding waits. ----
  // Returns true when a cycle was found (deadlock); otherwise reports the
  // stall as kNoProgress with the task-state dump.
  auto attribute_stall = [&](std::uint64_t cyc) {
    const auto num_tasks = graph_.num_tasks();
    std::vector<int> waits_on(num_tasks, -1);
    std::vector<std::string> why(num_tasks);
    for (TaskId t : tasks) {
      const TaskCtx& c = ctx[t];
      if (c.finished) continue;
      if (!c.started) {
        for (TaskId p : graph_.predecessors(t))
          if (ctx[p].in_run && !ctx[p].finished) {
            waits_on[t] = static_cast<int>(p);
            why[t] = "control dependence on " + graph_.task(p).name;
            break;
          }
        continue;
      }
      const auto& ops = graph_.task(t).program.ops();
      if (c.pc >= ops.size()) continue;
      const Op& op = ops[c.pc];
      int res = c.requesting;
      if (res < 0) res = c.retry_resource;
      if (res < 0) res = c.dropped_request;
      if (res >= 0 &&
          (op.code == OpCode::kLoad || op.code == OpCode::kStore ||
           op.code == OpCode::kSend)) {
        const auto [ai, port] = arbiter_port(t, res);
        if (ai >= 0 && port >= 0) {
          const int h = grant_holder[static_cast<std::size_t>(ai)];
          if (h >= 0 && h != port) {
            waits_on[t] = static_cast<int>(
                plan_.arbiters[static_cast<std::size_t>(ai)]
                    .ports[static_cast<std::size_t>(h)]);
            why[t] = "awaits grant of " + binding_.resource_name(res);
            continue;
          }
        }
      }
      if (op.code == OpCode::kRecv &&
          !chan_reg[static_cast<std::size_t>(op.b)].valid) {
        const tg::Channel& ch =
            graph_.channel(static_cast<std::size_t>(op.b));
        waits_on[t] = static_cast<int>(ch.source);
        why[t] = "awaits a word on " + ch.name;
        continue;
      }
      if (op.code == OpCode::kSend &&
          !options_.naive_shared_channel_register &&
          chan_reg[static_cast<std::size_t>(op.b)].valid) {
        const tg::Channel& ch =
            graph_.channel(static_cast<std::size_t>(op.b));
        waits_on[t] = static_cast<int>(ch.target);
        why[t] = "backpressured on " + ch.name;
        continue;
      }
    }

    // Walk every chain looking for a cycle (paths are functional: at most
    // one outgoing wait edge per task).
    std::vector<char> color(num_tasks, 0);  // 0 new, 1 on path, 2 done
    for (TaskId start : tasks) {
      std::vector<TaskId> path;
      TaskId u = start;
      while (true) {
        if (color[u] == 2) break;
        if (color[u] == 1) {
          // Cycle found: report it from u around.
          std::string detail = "wait-for cycle: ";
          const auto at = std::find(path.begin(), path.end(), u);
          for (auto it = at; it != path.end(); ++it)
            detail += graph_.task(*it).name + " (" + why[*it] + ") -> ";
          detail += graph_.task(u).name;
          diagnose(DiagKind::kDeadlock, cyc, static_cast<int>(u),
                   ctx[u].requesting, [&] { return detail; });
          for (TaskId v : path) color[v] = 2;
          return;
        }
        color[u] = 1;
        path.push_back(u);
        if (waits_on[u] < 0 ||
            ctx[static_cast<std::size_t>(waits_on[u])].finished)
          break;
        u = static_cast<TaskId>(waits_on[u]);
      }
      for (TaskId v : path) color[v] = 2;
    }

    // No cycle: a hang (dead arbiter, sender that never sends, ...).
    std::string detail = "no progress for " +
                         std::to_string(options_.no_progress_window) +
                         " cycles; task states:";
    for (TaskId t : tasks) {
      const TaskCtx& c = ctx[t];
      if (c.finished) continue;
      detail += "\n  " + graph_.task(t).name +
                (c.started ? "" : " (not started)") +
                " pc=" + std::to_string(c.pc);
      if (c.started && c.pc < graph_.task(t).program.ops().size())
        detail += std::string(" op=") +
                  tg::to_string(graph_.task(t).program.ops()[c.pc].code) +
                  " a=" +
                  std::to_string(graph_.task(t).program.ops()[c.pc].a) +
                  " b=" +
                  std::to_string(graph_.task(t).program.ops()[c.pc].b);
      detail += " requesting=" + std::to_string(c.requesting) +
                " dropped=" + std::to_string(c.dropped_request);
      if (!why[t].empty()) detail += " [" + why[t] + "]";
    }
    for (std::size_t a = 0; a < arbiters.size(); ++a) {
      if (rr[a] != nullptr && !rr[a]->state_legal())
        detail += "\n  arbiter " + plan_.arbiters[a].resource_name +
                  " register illegal (state=0x" +
                  std::to_string(rr[a]->state_bits()) + ")";
      else if (sc[a] != nullptr && sc[a]->error())
        detail += "\n  arbiter " + plan_.arbiters[a].resource_name +
                  " self-check error asserted";
    }
    for (int r = 0; r < num_res; ++r) {
      if (res_failed[static_cast<std::size_t>(r)] != 0)
        detail += "\n  resource " + binding_.resource_name(r) +
                  " permanently failed (" +
                  degrade::to_string(
                      quar[static_cast<std::size_t>(r)].state) +
                  ")";
    }
    diagnose(DiagKind::kNoProgress, cyc, -1, -1, [&] { return detail; });
  };

  // ---- Graceful-degradation supervisor. ----
  // Set anywhere in the cycle that degradation affected service; cleared
  // after the serving-cycle accounting at the end of the loop body.
  bool degraded_cycle = false;

  // Instantiates a regenerated arbiter over `ports` guarding `resource`,
  // growing every per-arbiter table in lockstep with the plan.
  auto add_arbiter = [&](int resource, std::vector<TaskId> ports) {
    const std::size_t idx = arbiters.size();
    core::ArbiterInstance inst;
    inst.resource = resource;
    inst.resource_name = binding_.resource_name(resource);
    inst.ports = std::move(ports);
    inst.policy = core::Policy::kRoundRobin;  // regenerated arbiters are RR
    // The regenerated arbiter keeps the structure in effect for this run:
    // under kAuto, the latest kind planned for the surviving resource
    // (falling back to the plan's last instance when the survivor was
    // unarbitrated before the merge); an explicit SimOptions choice is
    // re-applied by build_arbiter either way.
    inst.kind = plan_.arbiters.empty() ? core::ArbiterKind::kFlatFsm
                                       : plan_.arbiters.back().kind;
    for (const core::ArbiterInstance& prev : plan_.arbiters)
      if (prev.resource == resource) inst.kind = prev.kind;
    const int n = static_cast<int>(inst.ports.size());
    rr.push_back(nullptr);
    sc.push_back(nullptr);
    hier.push_back(nullptr);
    prefix.push_back(nullptr);
    core::SystemArbiter made = build_arbiter(inst);
    rr.back() = made.rr;
    sc.back() = made.sc;
    hier.back() = made.hier;
    prefix.back() = made.prefix;
    arbiters.push_back(std::move(made.arbiter));
    ArbiterStats st;
    st.resource_name = inst.resource_name;
    st.ports = n;
    st.kind = made.kind;
    result.arbiters.push_back(st);
    if (options_.arbiter_metrics) {
      result.arbiter_obs.emplace_back();  // within the up-front reserve
      obs::ArbiterMetrics& m = result.arbiter_obs.back();
      m.name = inst.resource_name;
      m.kind = core::to_string(st.kind);
      m.ports = n;
      probes.push_back(std::make_unique<obs::ArbiterProbe>(&m));
      arbiters.back()->set_observer(probes.back().get());
    }
    plan_.arbiters.push_back(std::move(inst));
    grant_holder.push_back(-1);
    grant_mask_vis.push_back(0);
    hold_streak.push_back(0);
    hung_reported.push_back(0);
    was_illegal.push_back(0);
    holder_accessed.push_back(0);
    force_release.push_back(0);
    prev_recoveries.push_back(0);
    hold_since.push_back(0);
    pending.push_back(0);
    requests.push_back(0);
    latched_plain.push_back(0);
    if (options_.record_request_trace) result.request_trace.emplace_back();
    return idx;
  };

  // Every running task whose program can drive r1 or r2 — the contention
  // set of the merged resource after a remap, in deterministic (TaskId)
  // order.  Derived from the programs rather than the old arbiter tables so
  // tasks that used the survivor *unarbitrated* (no contention before the
  // remap) join the regenerated arbiter instead of colliding with the
  // movers.
  auto contenders = [&](int r1, int r2) {
    std::vector<TaskId> ports;
    for (const TaskId t : tasks) {
      bool hits = false;
      for (const Op& op : graph_.task(t).program.ops()) {
        int dr = -1;
        if (op.code == OpCode::kAcquire || op.code == OpCode::kRelease)
          dr = op.a;
        else
          dr = driven_resource(op);
        if (dr < 0) continue;  // no driven resource must not match r2 == -1
        dr = resolve(dr);
        if (dr == r1 || dr == r2) {
          hits = true;
          break;
        }
      }
      if (hits) ports.push_back(t);
    }
    std::sort(ports.begin(), ports.end());
    return ports;
  };

  // One piece of permanent-fault evidence against a resource.  The K-th
  // strike within the sliding window classifies the fault as permanent and
  // opens the quarantine (kDraining).
  auto supervisor_strike = [&](int resource, degrade::StrikeSource src,
                               std::uint64_t cyc) {
    if (!degrade_on || resource < 0 || resource >= num_res) return;
    const int r = resolve(resource);
    QuarCtx& q = quar[static_cast<std::size_t>(r)];
    if (q.state != degrade::QuarantineState::kHealthy) return;
    ++result.strikes;
    if (!strike_tracker.strike(r, cyc, src)) return;
    ++result.quarantined;
    q.state = degrade::QuarantineState::kDraining;
    q.deadline = cyc + options_.degrade.drain_timeout;
    q.record = result.quarantine_events.size();
    degrade::QuarantineRecord rec;
    rec.resource = r;
    rec.state = degrade::QuarantineState::kDraining;
    rec.classified_cycle = cyc;
    result.quarantine_events.push_back(rec);
    diagnose(DiagKind::kQuarantine, cyc, -1, r, [&] {
      return "resource " + binding_.resource_name(r) +
             " classified permanently faulty (" +
             std::string(degrade::to_string(src)) + " strikes: " +
             std::to_string(options_.degrade.strikes) + " within " +
             std::to_string(options_.degrade.strike_window) +
             " cycles); draining in-flight bursts";
    });
    trace(obs::TraceKind::kQuarantine, cyc, -1, -1, r,
          static_cast<std::int64_t>(options_.degrade.strikes));
  };

  // Advances every open quarantine one step: waits out the drain (force-
  // aborting holders at the timeout — a burst pinned on a dead resource
  // can never reach its <=M batch boundary on its own), freezes the remap
  // plan, prices the reconfiguration stall via the synthesis memo, and
  // finally applies the group move.
  auto supervisor_step = [&](std::uint64_t cyc) {
    for (int r = 0; r < num_res; ++r) {
      QuarCtx& q = quar[static_cast<std::size_t>(r)];
      if (q.state == degrade::QuarantineState::kDraining) {
        degraded_cycle = true;
        const auto& arbs =
            plan_.arbiters_of_resource[static_cast<std::size_t>(r)];
        bool busy = false;
        for (const int a : arbs)
          if (grant_holder[static_cast<std::size_t>(a)] >= 0) busy = true;
        if (busy) {
          if (cyc >= q.deadline) {
            if (!q.drain_aborted) {
              q.drain_aborted = true;
              ++result.drain_aborts;
            }
            for (const int a : arbs) {
              const int h = grant_holder[static_cast<std::size_t>(a)];
              if (h >= 0)
                force_release[static_cast<std::size_t>(a)] |= 1ull << h;
            }
          }
          continue;
        }
        // Drained.  Freeze the remap plan now so the feasibility verdict
        // (and kCapacityExhausted) is known before the reconfig stall.
        degrade::QuarantineRecord& rec = result.quarantine_events[q.record];
        rec.drained_cycle = cyc;
        rec.drain_aborted = q.drain_aborted;
        trace(obs::TraceKind::kDrain, cyc, -1, -1, r, q.drain_aborted ? 1 : 0);
        bool feasible = true;
        if (res_failed[static_cast<std::size_t>(r)] == 0) {
          // The guarded hardware is healthy (arbiter-region fault, e.g. a
          // latch-up): regenerate the arbiter in place.
          q.repair = Repair::kInPlace;
        } else if (binding_.resource_is_bank(r)) {
          std::vector<bool> failed(binding_.num_banks, false);
          for (std::size_t b = 0; b < binding_.num_banks; ++b) {
            const int br = binding_.bank_resource(static_cast<int>(b));
            failed[b] = res_failed[static_cast<std::size_t>(br)] != 0 ||
                        quar[static_cast<std::size_t>(br)].state !=
                            degrade::QuarantineState::kHealthy;
          }
          const degrade::BankRemapPlan plan = degrade::plan_bank_remap(
              seg_bytes, binding_.segment_to_bank, bank_free, r, failed);
          feasible = plan.feasible;
          q.repair = Repair::kBank;
          q.target = plan.moved_segments.empty() ? -1 : plan.target_bank;
          q.moved = plan.moved_segments;
        } else {
          const int dead_phys = r - static_cast<int>(binding_.num_banks);
          std::vector<bool> failed(binding_.num_phys_channels, false);
          for (std::size_t p = 0; p < binding_.num_phys_channels; ++p) {
            const int cr = binding_.channel_resource(static_cast<int>(p));
            failed[p] = res_failed[static_cast<std::size_t>(cr)] != 0 ||
                        quar[static_cast<std::size_t>(cr)].state !=
                            degrade::QuarantineState::kHealthy;
          }
          q.repair = Repair::kChannel;
          if (options_.degrade.use_channel_map) {
            const part::ChannelRemap cm = part::remap_channels(
                graph_, options_.degrade.channel_map, dead_phys, failed);
            feasible = cm.feasible;
            q.target = cm.moved.empty() ? -1 : cm.target_phys;
            q.moved.assign(cm.moved.begin(), cm.moved.end());
          } else {
            const degrade::ChannelRemapPlan plan = degrade::plan_channel_remap(
                binding_.channel_to_phys, binding_.num_phys_channels,
                dead_phys, failed);
            feasible = plan.feasible;
            q.target = plan.moved_channels.empty() ? -1 : plan.target_phys;
            q.moved = plan.moved_channels;
          }
        }
        if (!feasible) {
          q.state = degrade::QuarantineState::kCapacityExhausted;
          rec.state = q.state;
          diagnose(DiagKind::kCapacityExhausted, cyc, -1, r, [&] {
            return "no survivor can take the load of " +
                   binding_.resource_name(r) +
                   "; its tasks stall (no remap possible)";
          });
          continue;
        }
        const int live = q.repair == Repair::kInPlace ? r
                         : q.target < 0              ? r
                         : q.repair == Repair::kBank
                             ? binding_.bank_resource(q.target)
                             : binding_.channel_resource(q.target);
        const int n_ports = static_cast<int>(
            contenders(r, live == r ? -1 : live).size());
        q.state = degrade::QuarantineState::kReconfiguring;
        q.deadline = cyc + degrade::arbiter_reconfig_cycles(
                               options_.degrade, n_ports, options_.self_check);
        continue;
      }
      if (q.state == degrade::QuarantineState::kReconfiguring) {
        degraded_cycle = true;
        if (cyc < q.deadline) continue;
        // Reconfiguration done: apply the frozen group move, retire the old
        // arbiters and bring up the regenerated one on the survivor.
        degrade::QuarantineRecord& rec = result.quarantine_events[q.record];
        int live = r;
        if (q.repair == Repair::kBank && q.target >= 0) {
          for (const int s : q.moved)
            binding_.segment_to_bank[static_cast<std::size_t>(s)] = q.target;
          live = binding_.bank_resource(q.target);
        } else if (q.repair == Repair::kChannel && q.target >= 0) {
          for (const int lc : q.moved)
            binding_.channel_to_phys[static_cast<std::size_t>(lc)] = q.target;
          live = binding_.channel_resource(q.target);
        }
        std::vector<TaskId> ports = contenders(r, live == r ? -1 : live);
        // A port task whose program carries no Acquire for either merged
        // resource was the sole client of its resource pre-fault — the
        // insertion pass elided its protocol ops.  It cannot follow Fig. 8
        // on the shared survivor, so the simulator retrofits an implicit
        // per-access Req/release for it.
        for (const TaskId pt : ports) {
          bool has_protocol = false;
          for (const Op& op : graph_.task(pt).program.ops())
            if (op.code == OpCode::kAcquire) {
              const int ra = resolve(op.a);
              if (ra == live || ra == r) {
                has_protocol = true;
                break;
              }
            }
          if (!has_protocol && !ctx[pt].implicit_for(live))
            ctx[pt].implicit_protocol.push_back(live);
        }
        auto retire = [&](int res) {
          for (const int a :
               plan_.arbiters_of_resource[static_cast<std::size_t>(res)]) {
            requests[static_cast<std::size_t>(a)] = 0;
            pending[static_cast<std::size_t>(a)] = 0;
            hold_streak[static_cast<std::size_t>(a)] = 0;
            hung_reported[static_cast<std::size_t>(a)] = 0;
          }
        };
        retire(r);
        if (live != r) retire(live);
        plan_.arbiters_of_resource[static_cast<std::size_t>(r)].clear();
        if (!ports.empty()) {
          const std::size_t idx = add_arbiter(live, std::move(ports));
          plan_.arbiters_of_resource[static_cast<std::size_t>(live)].assign(
              1, static_cast<int>(idx));
        }
        if (live != r) {
          resource_fwd[static_cast<std::size_t>(r)] = live;
          // Translate the live protocol state of every task still pointed
          // at the retired id (ops translate lazily via resolve()).
          for (TaskId t : tasks) {
            TaskCtx& c = ctx[t];
            if (c.requesting == r) c.requesting = live;
            if (c.retry_resource == r) c.retry_resource = live;
            if (c.dropped_request == r) c.dropped_request = live;
          }
        }
        strike_tracker.clear(r);
        q.state = degrade::QuarantineState::kRemapped;
        rec.state = q.state;
        rec.restored_cycle = cyc;
        rec.remap_target = live;
        ++result.remaps;
        diagnose(DiagKind::kRemap, cyc, -1, r, [&] {
          return q.repair == Repair::kInPlace
                     ? "arbiter region of " + binding_.resource_name(r) +
                           " regenerated in place; service restored"
                     : "load of " + binding_.resource_name(r) +
                           " remapped onto " + binding_.resource_name(live) +
                           " (" + std::to_string(q.moved.size()) +
                           " logical unit(s) moved); service restored";
        });
        trace(obs::TraceKind::kRemap, cyc, -1, -1, r, live);
        continue;
      }
      if (q.state == degrade::QuarantineState::kCapacityExhausted) {
        for (const int a :
             plan_.arbiters_of_resource[static_cast<std::size_t>(r)])
          if (pending[static_cast<std::size_t>(a)] != 0) degraded_cycle = true;
      }
    }
  };

  // ---- Main loop. ----
  std::uint64_t cycle = 0;
  std::uint64_t last_progress_cycle = 0;
  std::size_t finished_count = 0;
  std::size_t to_finish = tasks.size();

  // Per-cycle single-port usage: (bank or phys channel) -> first user task.
  std::vector<int> bank_user(binding_.num_banks);
  std::vector<int> chan_user(binding_.num_phys_channels);

  while (finished_count < to_finish) {
    if (cycle >= options_.max_cycles) {
      result.deadlocked = true;
      fail(DiagKind::kMaxCycles, cycle, -1, -1,
           [] { return std::string("simulation exceeded max_cycles"); });
      break;
    }
    if (cycle - last_progress_cycle >= options_.no_progress_window) {
      result.deadlocked = true;
      attribute_stall(cycle);
      if (options_.strict)
        RCARB_CHECK(false, result.diagnostics.back().format());
      break;
    }

    // Phase 0: inject the state-register upsets scheduled for this cycle.
    while (flip_next < flips.size() && flips[flip_next].cycle <= cycle) {
      const fault::FaultEvent& e = flips[flip_next++];
      const auto a = static_cast<std::size_t>(e.arbiter);
      if (rr[a] != nullptr || sc[a] != nullptr) {
        const int bits = 2 * result.arbiters[a].ports;
        const int bit = e.bit >= 0 ? e.bit % bits : 0;
        if (rr[a] != nullptr)
          rr[a]->inject_bit_flip(bit);
        else
          sc[a]->inject_bit_flip(0, bit);  // upsets hit one copy at a time
        trace(obs::TraceKind::kFault, cycle, -1, static_cast<int>(a),
              plan_.arbiters[a].resource,
              static_cast<std::int64_t>(e.kind));
      } else if (hier[a] != nullptr || prefix[a] != nullptr) {
        // The scalable kinds keep packed (pointer/held) registers instead
        // of the flat one-hot pair; upsets land in that layout.
        const int bits = hier[a] != nullptr ? hier[a]->num_state_bits()
                                            : prefix[a]->num_state_bits();
        const int bit = e.bit >= 0 ? e.bit % bits : 0;
        if (hier[a] != nullptr)
          hier[a]->inject_state_bit(bit);
        else
          prefix[a]->inject_state_bit(bit);
        trace(obs::TraceKind::kFault, cycle, -1, static_cast<int>(a),
              plan_.arbiters[a].resource,
              static_cast<std::int64_t>(e.kind));
      }
    }

    // Phase 0b: activate the permanent faults scheduled for this cycle and
    // advance the degradation supervisor's per-resource quarantine FSMs.
    while (perm_next < perm_res.size() && perm_res[perm_next].first <= cycle) {
      const int r = perm_res[perm_next++].second;
      if (res_failed[static_cast<std::size_t>(r)] == 0) {
        res_failed[static_cast<std::size_t>(r)] = 1;
        trace(obs::TraceKind::kFault, cycle, -1, -1, r,
              static_cast<std::int64_t>(
                  binding_.resource_is_bank(r)
                      ? fault::FaultKind::kBankFailure
                      : fault::FaultKind::kPermanentStuckChannel));
      }
    }
    while (latch_next < latchups.size() &&
           latchups[latch_next].first <= cycle) {
      const std::size_t a = latchups[latch_next++].second;
      if (sc[a] != nullptr) {
        sc[a]->latch_up(0);  // freeze copy 0's register at its current state
      } else if (rr[a] != nullptr && result.arbiters[a].ports <= 32) {
        // A latched plain register is modeled as frozen at the illegal
        // all-zero code: the FSM grants nobody, and neither reset nor
        // hardening clears a latch-up (it is re-frozen before every
        // sample in Phase 1) — only reconfiguration can.
        latched_plain[a] = 1;
      }
      trace(obs::TraceKind::kFault, cycle, -1, static_cast<int>(a),
            plan_.arbiters[a].resource,
            static_cast<std::int64_t>(fault::FaultKind::kArbiterLatchup));
    }
    if (degrade_on) supervisor_step(cycle);

    // Phase 1: arbiters sample the request lines asserted in prior cycles,
    // as seen through any active stuck-at faults.
    for (std::size_t a = 0; a < arbiters.size(); ++a) {
      std::uint64_t eff = requests[a];
      std::uint64_t grant_suppress = 0;
      for (const StuckWindow& w : stucks) {
        if (w.arbiter != a || !w.active(cycle)) continue;
        if (sink != nullptr && cycle == w.from)
          trace(obs::TraceKind::kFault, cycle,
                static_cast<int>(plan_.arbiters[a]
                                     .ports[static_cast<std::size_t>(w.port)]),
                static_cast<int>(a), plan_.arbiters[a].resource,
                static_cast<std::int64_t>(w.kind));
        const std::uint64_t bit = 1ull << w.port;
        switch (w.kind) {
          case fault::FaultKind::kReqStuck0: eff &= ~bit; break;
          case fault::FaultKind::kReqStuck1: eff |= bit; break;
          case fault::FaultKind::kGrantStuck0:
          case fault::FaultKind::kGrantDrop: grant_suppress |= bit; break;
          default: break;
        }
      }
      // Latch-up freeze: re-assert the frozen all-zero state before the
      // register samples, so reset/hardening cannot clear it.
      if (latched_plain[a] != 0 && rr[a] != nullptr) {
        std::uint64_t bits = rr[a]->state_bits();
        while (bits != 0) {
          rr[a]->inject_bit_flip(std::countr_zero(bits));
          bits &= bits - 1;
        }
      }
      // Quarantine gating: a draining resource only lets its current
      // holder's request through (so the in-flight burst can reach its <=M
      // batch boundary); a reconfiguring or capacity-exhausted resource is
      // offline entirely.
      if (degrade_on) {
        const auto st =
            quar[static_cast<std::size_t>(plan_.arbiters[a].resource)].state;
        if (st == degrade::QuarantineState::kDraining) {
          const int h = grant_holder[a];
          eff &= h >= 0 ? (1ull << h) : 0ull;
        } else if (st == degrade::QuarantineState::kReconfiguring ||
                   st == degrade::QuarantineState::kCapacityExhausted) {
          eff = 0;
        }
      }
      // The watchdog's force-release masks the request *inside* the
      // arbiter, downstream of any stuck-at fault on the physical Req line
      // — applied before the stuck-1 OR, a phantom stuck-1 holder could
      // never be evicted.
      eff &= ~force_release[a];
      force_release[a] = 0;

      if (options_.record_request_trace) result.request_trace[a].push_back(eff);

      // Unhardened illegal registers are reported when they appear.
      if (rr[a] != nullptr) {
        const bool illegal = !rr[a]->state_legal();
        if (illegal && !was_illegal[a]) {
          ++result.illegal_fsm_states;
          diagnose(DiagKind::kIllegalFsmState, cycle, -1,
                   plan_.arbiters[a].resource, [&] {
                     return "arbiter " + plan_.arbiters[a].resource_name +
                            " state register left the one-hot set (state=0x" +
                            std::to_string(rr[a]->state_bits()) + ")";
                   });
        }
        was_illegal[a] = illegal ? 1 : 0;
        // Without a checker the illegal register is invisible to the
        // supervisor (no error wire — the monitor here is simulator
        // omniscience), but the availability metric still records the
        // outage.
        if (illegal) degraded_cycle = true;
      }

      const int g = arbiters[a]->step(eff);
      std::uint64_t mask =
          rr[a] != nullptr   ? rr[a]->last_grant_mask()
          : sc[a] != nullptr ? sc[a]->last_grant_mask()
                             : (g >= 0 ? (1ull << g) : 0);

      // Self-checking arbiters expose a real error wire: every comparator-
      // high cycle is supervisor evidence (and a service gap under DMR,
      // whose grants are gated by ~error).
      if (sc[a] != nullptr) {
        if (sc[a]->error()) {
          ++result.self_check_errors;
          degraded_cycle = true;
          if (!was_illegal[a]) {
            ++result.illegal_fsm_states;
            diagnose(DiagKind::kIllegalFsmState, cycle, -1,
                     plan_.arbiters[a].resource, [&] {
                       return "self-checking arbiter " +
                              plan_.arbiters[a].resource_name +
                              " raised its error output (copy state "
                              "mismatch)";
                     });
          }
          was_illegal[a] = 1;
          supervisor_strike(plan_.arbiters[a].resource,
                            degrade::StrikeSource::kSelfCheckError, cycle);
        } else {
          was_illegal[a] = 0;
        }
        const std::uint64_t rs = sc[a]->resyncs();
        if (rs != prev_recoveries[a]) {
          result.self_check_resyncs += rs - prev_recoveries[a];
          prev_recoveries[a] = rs;
        }
      }

      if (rr[a] != nullptr) {
        const std::uint64_t rec = rr[a]->recoveries();
        if (rec != prev_recoveries[a]) {
          result.fsm_recoveries += rec - prev_recoveries[a];
          prev_recoveries[a] = rec;
          diagnose(DiagKind::kFsmRecovery, cycle, -1,
                   plan_.arbiters[a].resource, [&] {
                     return "hardened arbiter " +
                            plan_.arbiters[a].resource_name +
                            " recovered to the all-free reset state";
                   });
        }
        if (std::popcount(mask) > 1) {
          ++result.multi_grant_cycles;
          if (result.multi_grant_cycles == 1 ||
              result.diagnostics.empty() ||
              result.diagnostics.back().kind != DiagKind::kMultipleGrants)
            diagnose(DiagKind::kMultipleGrants, cycle, -1,
                     plan_.arbiters[a].resource, [&] {
                       return "arbiter " + plan_.arbiters[a].resource_name +
                              " asserted " +
                              std::to_string(std::popcount(mask)) +
                              " grants at once (mutual exclusion violated)";
                     });
        }
      }
      grant_mask_vis[a] = mask & ~grant_suppress;

      const int prev = grant_holder[a];
      if (sink != nullptr && g != prev && prev >= 0)
        trace(obs::TraceKind::kGrantEnd, cycle,
              static_cast<int>(
                  plan_.arbiters[a].ports[static_cast<std::size_t>(prev)]),
              static_cast<int>(a), plan_.arbiters[a].resource,
              static_cast<std::int64_t>(cycle - hold_since[a]));
      if (g >= 0) {
        ++result.arbiters[a].granted_cycles;
        if (g != prev) {
          ++result.arbiters[a].grants;
          hold_streak[a] = 0;
          hung_reported[a] = 0;
          hold_since[a] = cycle;
        }
        // Wait accounting: the granted task's wait ends now.
        const TaskId t = plan_.arbiters[a].ports[static_cast<std::size_t>(g)];
        std::uint64_t waited = 0;
        if (ctx[t].requesting >= 0) {
          waited = cycle - ctx[t].request_since;
          result.arbiters[a].max_wait =
              std::max(result.arbiters[a].max_wait, waited);
        }
        if (sink != nullptr && g != prev)
          trace(obs::TraceKind::kGrant, cycle, static_cast<int>(t),
                static_cast<int>(a), plan_.arbiters[a].resource,
                static_cast<std::int64_t>(waited));
      } else {
        hold_streak[a] = 0;
        hung_reported[a] = 0;
      }
      grant_holder[a] = g;
      holder_accessed[a] = 0;
    }

    auto has_grant = [&](TaskId t, int resource) {
      const auto [ai, port] = arbiter_port(t, resource);
      if (ai < 0) return true;  // unarbitrated resource
      if (port < 0) return true;  // task elided from the arbiter
      return ((grant_mask_vis[static_cast<std::size_t>(ai)] >> port) & 1u) !=
             0;
    };
    auto note_access = [&](TaskId t, int resource) {
      const auto [ai, port] = arbiter_port(t, resource);
      if (ai >= 0 && port >= 0 &&
          grant_holder[static_cast<std::size_t>(ai)] == port)
        holder_accessed[static_cast<std::size_t>(ai)] = 1;
    };

    // Phase 2: start tasks whose in-run predecessors have finished.
    for (TaskId t : tasks) {
      TaskCtx& c = ctx[t];
      if (c.started || c.finished) continue;
      bool ready = true;
      for (TaskId p : graph_.predecessors(t))
        if (ctx[p].in_run && !ctx[p].finished) ready = false;
      if (ready) {
        c.started = true;
        c.stats.ran = true;
        c.stats.start_cycle = cycle;
        trace(obs::TraceKind::kTaskStart, cycle, static_cast<int>(t), -1, -1,
              0);
      }
    }

    // Phase 3: execute one cycle of every running task.
    std::fill(bank_user.begin(), bank_user.end(), -1);
    std::fill(chan_user.begin(), chan_user.end(), -1);

    for (TaskId t : tasks) {
      TaskCtx& c = ctx[t];
      if (!c.started || c.finished) continue;
      const auto& ops = graph_.task(t).program.ops();

      bool spent_cycle = false;
      if (c.compute_left > 0) {
        --c.compute_left;
        last_progress_cycle = cycle;
        if (c.compute_left > 0) continue;
        ++c.pc;
        ++c.stats.ops_retired;
        spent_cycle = true;  // zero-cost ops may still drain below
      }

      // Overload-control bookkeeping shared by the request-edge paths.  A
      // backoff round is one Req-drop (retry timeout or admission
      // refusal); once the per-burst budget is spent the client stops
      // churning its Req line and waits with the request held — a typed
      // diagnostic instead of a livelock, and never a deadlock.
      auto note_backoff_round = [&](int resource) {
        ++c.retry_rounds;
        if (options_.retry_budget > 0 && !c.budget_spent &&
            c.retry_rounds >= options_.retry_budget) {
          c.budget_spent = true;
          ++result.budget_exhausted;
          diagnose(DiagKind::kTimedOut, cycle, static_cast<int>(t), resource,
                   [&] {
                     return "task " + graph_.task(t).name +
                            " spent its retry budget (" +
                            std::to_string(options_.retry_budget) + ") on " +
                            binding_.resource_name(resource) +
                            "; falling back to a held request";
                   });
        }
      };
      // Admission control: refuse a newcomer while the arbiter's previous-
      // cycle request wire already carries admission_limit other
      // requesters.  A budget-exhausted client bypasses the check — it
      // must eventually be allowed to wait in line, or a persistently full
      // wire could starve it forever.
      auto admission_full = [&](int resource) -> bool {
        if (options_.admission_limit <= 0 || c.budget_spent) return false;
        const auto [ai, port] = arbiter_port(t, resource);
        if (ai < 0 || port < 0) return false;
        const std::uint64_t others =
            requests[static_cast<std::size_t>(ai)] & ~(1ull << port);
        return std::popcount(others) >= options_.admission_limit;
      };
      // Refused at the request edge: bounded exponential backoff, then the
      // request op replays.
      auto admission_reject = [&](int resource) {
        c.retry_resource = resource;
        c.retry_until = cycle + static_cast<std::uint64_t>(c.retry_backoff);
        c.retry_backoff =
            std::min(c.retry_backoff * 2, plan_.retry_backoff_limit);
        ++result.admission_rejects;
        if (!c.reject_reported) {
          c.reject_reported = true;
          diagnose(DiagKind::kRejected, cycle, static_cast<int>(t), resource,
                   [&] {
                     return "admission control refused " +
                            graph_.task(t).name + " on " +
                            binding_.resource_name(resource) + " (limit " +
                            std::to_string(options_.admission_limit) + ")";
                   });
        }
        note_backoff_round(resource);
      };

      // Protocol retry bookkeeping shared by the arbitrated access ops:
      // returns true when the access must wait this cycle (stall, backoff,
      // or the Req re-assertion cycle), false when it may proceed.
      auto await_grant = [&](int resource) -> bool {
        if (c.requesting != resource) {
          // Backing off, or re-asserting after the backoff expired.
          if (c.retry_resource == resource) {
            if (cycle >= c.retry_until) {
              if (admission_full(resource)) {
                admission_reject(resource);  // extends the backoff
                return true;
              }
              c.requesting = resource;
              c.retry_resource = -1;
              c.request_since = cycle;
              ++result.retries;
              const auto [ai, port] = arbiter_port(t, resource);
              (void)port;
              if (ai >= 0) {
                if (!result.arbiter_obs.empty())
                  ++result.arbiter_obs[static_cast<std::size_t>(ai)].retries;
                trace(obs::TraceKind::kRetry, cycle, static_cast<int>(t), ai,
                      resource, 0);
              }
            }
            return true;
          }
          if (c.implicit_for(resource)) {
            if (admission_full(resource)) {
              admission_reject(resource);
              return true;
            }
            // Retrofitted protocol: the access attempt is the Req:=1 cycle.
            c.requesting = resource;
            c.request_since = cycle;
            c.retry_resource = -1;
            ++c.stats.acquires;
            if (sink != nullptr) {
              const auto [ai2, port2] = arbiter_port(t, resource);
              (void)port2;
              trace(obs::TraceKind::kRequest, cycle, static_cast<int>(t),
                    ai2, resource, 0);
            }
            return true;
          }
          fail(DiagKind::kProtocolViolation, cycle, static_cast<int>(t),
               resource, [&] {
                 return "task " + graph_.task(t).name +
                        " accesses arbitrated " +
                        binding_.resource_name(resource) +
                        " without requesting it";
               });
          ++result.protocol_violations;
          return false;
        }
        if (has_grant(t, resource)) {
          c.retry_backoff = 1;
          c.retry_rounds = 0;
          c.budget_spent = false;
          c.reject_reported = false;
          return false;
        }
        // No grant.  With retry enabled, give the attempt up after the
        // timeout and back off boundedly (Req:=0 for backoff cycles).
        const int rt = plan_.retry_timeout;
        if (rt > 0 && !c.budget_spent &&
            cycle - c.request_since >= static_cast<std::uint64_t>(rt)) {
          c.requesting = -1;
          c.retry_resource = resource;
          c.retry_until = cycle + static_cast<std::uint64_t>(c.retry_backoff);
          const auto [ai, port] = arbiter_port(t, resource);
          (void)port;
          if (ai >= 0) {
            if (!result.arbiter_obs.empty())
              ++result.arbiter_obs[static_cast<std::size_t>(ai)].backoffs;
            trace(obs::TraceKind::kBackoff, cycle, static_cast<int>(t), ai,
                  resource, c.retry_backoff);
          }
          c.retry_backoff =
              std::min(c.retry_backoff * 2, plan_.retry_backoff_limit);
          note_backoff_round(resource);
          return true;
        }
        ++c.stats.grant_wait_cycles;  // stall, request stays up
        return true;
      };

      // Req:=0 right after a retrofitted access retires, so the arbiter
      // rotates per access instead of pinning the grant until task end.
      auto implicit_release = [&](int resource) {
        if (resource >= 0 && c.requesting == resource &&
            c.implicit_for(resource))
          c.requesting = -1;
      };

      // Retire zero-cost control ops freely; execute at most one costed op
      // per cycle, then keep draining zero-cost ops (so a task whose last
      // costed op retires this cycle also finishes this cycle).
      int control_budget = 64;
      while (!c.finished) {
        if (c.pc >= ops.size()) {
          c.finished = true;
          c.stats.finish_cycle = cycle;
          ++finished_count;
          trace(obs::TraceKind::kTaskFinish, cycle, static_cast<int>(t), -1,
                -1, 0);
          if (c.requesting >= 0)
            fail(DiagKind::kProtocolViolation, cycle, static_cast<int>(t),
                 c.requesting, [&] {
                   return "task " + graph_.task(t).name +
                          " finished while still requesting " +
                          binding_.resource_name(c.requesting);
                 });
          break;
        }
        const Op& op = ops[c.pc];
        const bool zero_cost =
            op.code == OpCode::kLoopBegin ||
            op.code == OpCode::kLoopBeginVar ||
            op.code == OpCode::kLoopEnd || op.code == OpCode::kHalt ||
            (op.code == OpCode::kCompute && op.imm == 0);
        if (spent_cycle && !zero_cost) break;
        switch (op.code) {
          case OpCode::kLoopBegin:
          case OpCode::kLoopBeginVar: {
            RCARB_CHECK(--control_budget > 0, "zero-cost op runaway");
            const std::int64_t trip =
                op.code == OpCode::kLoopBegin
                    ? op.imm
                    : std::max<std::int64_t>(0, c.regs[op.a]);
            if (trip == 0) {
              // Skip to the matching end.
              int depth = 1;
              std::size_t pc = c.pc + 1;
              while (depth > 0) {
                if (ops[pc].code == OpCode::kLoopBegin ||
                    ops[pc].code == OpCode::kLoopBeginVar)
                  ++depth;
                if (ops[pc].code == OpCode::kLoopEnd) --depth;
                ++pc;
              }
              c.pc = pc;
            } else {
              c.loops.push_back({c.pc, trip});
              ++c.pc;
            }
            last_progress_cycle = cycle;
            break;
          }
          case OpCode::kLoopEnd: {
            RCARB_CHECK(--control_budget > 0, "zero-cost op runaway");
            RCARB_ASSERT(!c.loops.empty(), "loop_end without frame");
            LoopFrame& frame = c.loops.back();
            if (--frame.remaining > 0) {
              c.pc = frame.begin_pc + 1;
            } else {
              c.loops.pop_back();
              ++c.pc;
            }
            last_progress_cycle = cycle;
            break;
          }
          case OpCode::kHalt:
            c.pc = ops.size();
            break;
          case OpCode::kCompute:
            if (op.imm == 0) {
              RCARB_CHECK(--control_budget > 0, "zero-cost op runaway");
              ++c.pc;
              ++c.stats.ops_retired;
              break;
            }
            c.compute_left = op.imm - 1;  // this cycle is the first
            if (c.compute_left == 0) ++c.pc, ++c.stats.ops_retired;
            spent_cycle = true;
            last_progress_cycle = cycle;
            break;
          case OpCode::kAcquire: {
            // Programs bake resource ids in at insertion time; resolve()
            // translates ids retired by an online remap to the live one.
            const int res_a = resolve(op.a);
            if (c.requesting >= 0 && c.requesting != res_a) {
              fail(DiagKind::kProtocolViolation, cycle, static_cast<int>(t),
                   res_a, [&] {
                     return "task " + graph_.task(t).name +
                            " acquires a second resource while holding one";
                   });
              ++result.protocol_violations;
            }
            if (c.requesting != res_a) {
              if (c.retry_resource == res_a && cycle < c.retry_until) {
                // Backing off after an admission refusal: the acquire op
                // replays (pc does not advance) once the backoff expires.
                ++c.stats.grant_wait_cycles;
                spent_cycle = true;
                break;
              }
              if (admission_full(res_a)) {
                admission_reject(res_a);
                spent_cycle = true;
                break;
              }
              if (c.retry_resource == res_a) ++result.retries;
            }
            c.requesting = res_a;
            c.request_since = cycle;
            c.retry_resource = -1;
            ++c.stats.acquires;
            if (sink != nullptr) {
              const auto [ai, port] = arbiter_port(t, res_a);
              (void)port;
              trace(obs::TraceKind::kRequest, cycle, static_cast<int>(t), ai,
                    res_a, 0);
            }
            ++c.pc;
            ++c.stats.ops_retired;
            spent_cycle = true;  // the Req:=1 cycle of Fig. 8
            last_progress_cycle = cycle;
            break;
          }
          case OpCode::kRelease: {
            const int res_a = resolve(op.a);
            if (c.requesting != res_a) {
              fail(DiagKind::kProtocolViolation, cycle, static_cast<int>(t),
                   res_a, [&] {
                     return "task " + graph_.task(t).name +
                            " releases a resource it does not hold";
                   });
              ++result.protocol_violations;
            }
            c.requesting = -1;
            c.retry_resource = -1;
            if (sink != nullptr) {
              const auto [ai, port] = arbiter_port(t, res_a);
              (void)port;
              trace(obs::TraceKind::kRelease, cycle, static_cast<int>(t), ai,
                    res_a, 0);
            }
            ++c.pc;
            ++c.stats.ops_retired;
            spent_cycle = true;  // the Req:=0 cycle of Fig. 8
            last_progress_cycle = cycle;
            break;
          }
          case OpCode::kLoad:
          case OpCode::kStore: {
            const int resource = driven_resource(op);
            const auto [ai, port] = arbiter_port(t, resource);
            if (ai >= 0 && port >= 0 && await_grant(resource)) {
              spent_cycle = true;
              break;
            }
            if (resource >= 0 &&
                res_failed[static_cast<std::size_t>(resource)] != 0) {
              // Fail-stop: the dead bank acknowledges nothing.  The op does
              // not retire (it replays on the survivor once the remap
              // lands), so data is stalled, never silently corrupted.
              supervisor_strike(resource, degrade::StrikeSource::kBankFailure,
                                cycle);
              degraded_cycle = true;
              spent_cycle = true;
              break;
            }
            if (ai >= 0 && port >= 0) note_access(t, resource);
            // Single-port bank conflict detection.
            const int bank =
                binding_.segment_to_bank[static_cast<std::size_t>(op.b)];
            if (bank >= 0) {
              int& user = bank_user[static_cast<std::size_t>(bank)];
              if (user >= 0 && user != static_cast<int>(t)) {
                ++result.bank_conflicts;
                fail(DiagKind::kBankConflict, cycle, static_cast<int>(t),
                     binding_.bank_resource(bank), [&] {
                       return "bank conflict on " +
                              binding_
                                  .bank_names[static_cast<std::size_t>(bank)] +
                              " between " +
                              graph_.task(static_cast<TaskId>(user)).name +
                              " and " + graph_.task(t).name;
                     });
              }
              user = static_cast<int>(t);
            }
            auto& mem = memory_[static_cast<std::size_t>(op.b)];
            const std::int64_t addr = c.regs[op.c] + op.imm;
            if (addr < 0 || static_cast<std::size_t>(addr) >= mem.size()) {
              fail(DiagKind::kOutOfBounds, cycle, static_cast<int>(t),
                   resource, [&] {
                     return "task " + graph_.task(t).name + " address " +
                            std::to_string(addr) + " out of segment " +
                            graph_.segment(static_cast<std::size_t>(op.b))
                                .name;
                   });
              // Non-strict mode: drop the access.
            } else if (op.code == OpCode::kLoad) {
              c.regs[op.a] = mem[static_cast<std::size_t>(addr)];
            } else {
              mem[static_cast<std::size_t>(addr)] = c.regs[op.a];
            }
            implicit_release(resource);
            ++c.stats.mem_accesses;
            ++c.pc;
            ++c.stats.ops_retired;
            spent_cycle = true;
            last_progress_cycle = cycle;
            break;
          }
          case OpCode::kSend: {
            const auto ch = static_cast<std::size_t>(op.b);
            if (ch < options_.tdm_slots.size() &&
                options_.tdm_slots[ch].second > 0) {
              const auto [slot, period] = options_.tdm_slots[ch];
              if (cycle % static_cast<std::uint64_t>(period) !=
                  static_cast<std::uint64_t>(slot)) {
                ++c.stats.grant_wait_cycles;  // waiting for the time slot
                spent_cycle = true;
                break;
              }
            }
            const int resource = driven_resource(op);
            const auto [ai, port] = arbiter_port(t, resource);
            const bool naive =
                options_.naive_shared_channel_register &&
                binding_.channel_to_phys[ch] >= 0;
            // Receiver-side backpressure comes first: the sender can see
            // its receiver's ready line regardless of the channel grant,
            // and — so no one starves behind a blocked holder — it
            // deasserts its own channel request while stalled.
            if (!naive && chan_reg[ch].valid) {
              if (c.requesting >= 0 && c.requesting == resource) {
                c.dropped_request = c.requesting;
                c.requesting = -1;
              }
              ++c.stats.backpressure_cycles;
              spent_cycle = true;
              break;
            }
            if (!naive && c.dropped_request == resource &&
                c.requesting != resource && ai >= 0 && port >= 0) {
              // Re-assert the request dropped during backpressure (one
              // cycle, like the Fig. 8 Req:=1 step).
              c.requesting = resource;
              c.dropped_request = -1;
              c.request_since = cycle;
              spent_cycle = true;
              break;
            }
            if (ai >= 0 && port >= 0 && await_grant(resource)) {
              spent_cycle = true;
              break;
            }
            if (resource >= 0 &&
                res_failed[static_cast<std::size_t>(resource)] != 0) {
              // Fail-stop: the stuck channel delivers nothing, the word is
              // never latched into the receiver register — the send stalls
              // and replays on the survivor after the remap.
              supervisor_strike(resource,
                                degrade::StrikeSource::kChannelFailure, cycle);
              degraded_cycle = true;
              spent_cycle = true;
              break;
            }
            if (ai >= 0 && port >= 0) note_access(t, resource);
            const int phys = binding_.channel_to_phys[ch];
            std::int64_t value = c.regs[op.a];
            if (phys >= 0) {
              int& user = chan_user[static_cast<std::size_t>(phys)];
              if (user >= 0 && user != static_cast<int>(t)) {
                ++result.channel_conflicts;
                fail(DiagKind::kChannelConflict, cycle, static_cast<int>(t),
                     binding_.channel_resource(phys), [&] {
                       return "channel conflict on " +
                              binding_.phys_channel_names
                                  [static_cast<std::size_t>(phys)] +
                              " between " +
                              graph_.task(static_cast<TaskId>(user)).name +
                              " and " + graph_.task(t).name;
                     });
              }
              user = static_cast<int>(t);

              // Armed corruption faults hit the next word on the wire.
              auto& armed = chan_corrupt[static_cast<std::size_t>(phys)];
              std::size_t& next = chan_corrupt_next[static_cast<std::size_t>(phys)];
              if (next < armed.size() && armed[next].first <= cycle) {
                const std::uint64_t mask = armed[next].second;
                ++next;
                if (options_.harden && std::popcount(mask) == 1) {
                  // SECDED corrects the single-bit upset in place.
                  ++result.corrected_words;
                  diagnose(DiagKind::kDataCorruption, cycle,
                           static_cast<int>(t),
                           binding_.channel_resource(phys), [&] {
                             return "single-bit corruption on " +
                                    binding_.phys_channel_names
                                        [static_cast<std::size_t>(phys)] +
                                    " corrected by SECDED";
                           });
                } else {
                  value = static_cast<std::int64_t>(
                      static_cast<std::uint64_t>(value) ^ mask);
                  ++result.corrupted_words;
                  diagnose(DiagKind::kDataCorruption, cycle,
                           static_cast<int>(t),
                           binding_.channel_resource(phys), [&] {
                             return "corrupted word on " +
                                    binding_.phys_channel_names
                                        [static_cast<std::size_t>(phys)] +
                                    " delivered (parity detected, no ECC)";
                           });
                }
              }
            }
            if (naive) {
              // The broken baseline clobbers silently (that is its point).
              NaiveReg& reg = naive_reg[static_cast<std::size_t>(phys)];
              reg.valid = true;
              reg.value = value;
              reg.writer = op.b;
            } else {
              chan_reg[ch].valid = true;
              chan_reg[ch].value = value;
            }
            implicit_release(resource);
            ++c.stats.channel_ops;
            ++c.pc;
            ++c.stats.ops_retired;
            spent_cycle = true;
            last_progress_cycle = cycle;
            break;
          }
          case OpCode::kRecv: {
            const auto ch = static_cast<std::size_t>(op.b);
            const int phys = binding_.channel_to_phys[ch];
            bool got = false;
            if (options_.naive_shared_channel_register && phys >= 0) {
              // The broken single-register baseline has no per-target valid
              // handshake: receivers sample whatever the register holds, so
              // a later transfer on a merged channel is read in place of an
              // earlier one (counted as a clobbered read).
              NaiveReg& reg = naive_reg[static_cast<std::size_t>(phys)];
              if (reg.valid) {
                if (reg.writer != op.b) ++result.clobbered_reads;
                c.regs[op.a] = reg.value;
                got = true;
              }
            } else if (chan_reg[ch].valid) {
              c.regs[op.a] = chan_reg[ch].value;
              chan_reg[ch].valid = false;
              got = true;
            }
            if (got) {
              ++c.stats.channel_ops;
              ++c.pc;
              ++c.stats.ops_retired;
              last_progress_cycle = cycle;
            }
            spent_cycle = true;  // waiting or consuming both take the cycle
            break;
          }
          default: {
            // Single-cycle register ops.
            switch (op.code) {
              case OpCode::kLoadImm: c.regs[op.a] = op.imm; break;
              case OpCode::kMov: c.regs[op.a] = c.regs[op.b]; break;
              case OpCode::kAdd: c.regs[op.a] = c.regs[op.b] + c.regs[op.c]; break;
              case OpCode::kSub: c.regs[op.a] = c.regs[op.b] - c.regs[op.c]; break;
              case OpCode::kMul: c.regs[op.a] = c.regs[op.b] * c.regs[op.c]; break;
              case OpCode::kMulQ:
                c.regs[op.a] = (c.regs[op.b] * c.regs[op.c]) >> op.imm;
                break;
              case OpCode::kShr: c.regs[op.a] = c.regs[op.b] >> op.imm; break;
              case OpCode::kShl:
                c.regs[op.a] = static_cast<std::int64_t>(
                    static_cast<std::uint64_t>(c.regs[op.b]) << op.imm);
                break;
              case OpCode::kAddImm: c.regs[op.a] = c.regs[op.b] + op.imm; break;
              default:
                RCARB_CHECK(false, "unhandled opcode in simulator");
            }
            ++c.pc;
            ++c.stats.ops_retired;
            spent_cycle = true;
            last_progress_cycle = cycle;
            break;
          }
        }
      }
    }

    // Phase 4: rebuild the request lines from the tasks' protocol state.
    // `pending` additionally counts waiters in a retry backoff: their Req
    // wire is down, but they are still starved behind the holder.  (Senders
    // that dropped their request under receiver backpressure are *not*
    // pending — they could not proceed even with the grant.)
    std::fill(requests.begin(), requests.end(), 0);
    std::fill(pending.begin(), pending.end(), 0);
    for (TaskId t : tasks) {
      const TaskCtx& c = ctx[t];
      if (c.finished) continue;
      if (c.requesting >= 0) {
        const auto [ai, port] = arbiter_port(t, c.requesting);
        if (ai >= 0 && port >= 0) {
          requests[static_cast<std::size_t>(ai)] |= 1ull << port;
          pending[static_cast<std::size_t>(ai)] |= 1ull << port;
        }
      } else if (c.retry_resource >= 0) {
        const auto [ai, port] = arbiter_port(t, c.retry_resource);
        if (ai >= 0 && port >= 0)
          pending[static_cast<std::size_t>(ai)] |= 1ull << port;
      }
    }

    // Phase 5: hung-grant watchdog.  A holder that keeps the grant without
    // retiring a single access while peers wait is hung (stuck grant line,
    // phantom stuck-1 requester, crashed holder...).
    if (options_.watchdog_timeout > 0) {
      for (std::size_t a = 0; a < arbiters.size(); ++a) {
        const int h = grant_holder[a];
        if (h < 0) continue;
        if (degrade_on) {
          const auto st =
              quar[static_cast<std::size_t>(plan_.arbiters[a].resource)]
                  .state;
          if (st == degrade::QuarantineState::kDraining ||
              st == degrade::QuarantineState::kReconfiguring) {
            // The quarantine drain masks the peers' requests, so the
            // holder's apparent idle-hold is the supervisor's doing — not
            // a hung grant.  Counting these cycles would trip the watchdog
            // mid-drain and force-release the very burst the drain is
            // waiting out (the supervisor's own drain_timeout bounds it).
            hold_streak[a] = 0;
            hung_reported[a] = 0;
            continue;
          }
        }
        const bool others_waiting =
            (pending[a] & ~(1ull << h)) != 0;
        if (holder_accessed[a] || !others_waiting) {
          hold_streak[a] = 0;
          hung_reported[a] = 0;
          continue;
        }
        if (++hold_streak[a] < options_.watchdog_timeout) continue;
        const TaskId holder_task =
            plan_.arbiters[a].ports[static_cast<std::size_t>(h)];
        if (!hung_reported[a]) {
          hung_reported[a] = 1;
          ++result.hung_grants;
          supervisor_strike(plan_.arbiters[a].resource,
                            degrade::StrikeSource::kWatchdogTrip, cycle);
          if (!result.arbiter_obs.empty())
            ++result.arbiter_obs[a].watchdog_fires;
          diagnose(DiagKind::kHungGrant, cycle,
                   static_cast<int>(holder_task), plan_.arbiters[a].resource,
                   [&] {
                     return "grant on " + plan_.arbiters[a].resource_name +
                            " pinned on idle " +
                            graph_.task(holder_task).name + " for " +
                            std::to_string(hold_streak[a]) +
                            " cycles while peers wait";
                   });
        }
        if (options_.harden) {
          // Force-release: suppress the hung holder's request for one
          // sample so the round-robin scan moves past it.
          force_release[a] = 1ull << h;
          ++result.watchdog_releases;
          if (!result.arbiter_obs.empty())
            ++result.arbiter_obs[a].watchdog_releases;
          diagnose(DiagKind::kWatchdogRecovery, cycle,
                   static_cast<int>(holder_task), plan_.arbiters[a].resource,
                   [&] {
                     return "watchdog force-released " +
                            graph_.task(holder_task).name + " on " +
                            plan_.arbiters[a].resource_name;
                   });
          hold_streak[a] = 0;
          hung_reported[a] = 0;
        }
      }
    }

    // Phase 6: serving-cycle (availability) accounting.  A cycle serves
    // unless a quarantine was in progress, an access failed, or a live task
    // is stuck against a failed / capacity-exhausted resource.
    if (degrade_on || perm_next > 0 || latch_next > 0) {
      if (!degraded_cycle) {
        for (TaskId t : tasks) {
          const TaskCtx& c = ctx[t];
          if (!c.started || c.finished) continue;
          int res = c.requesting >= 0       ? c.requesting
                    : c.retry_resource >= 0 ? c.retry_resource
                                            : c.dropped_request;
          const auto& ops = graph_.task(t).program.ops();
          if (res < 0 && c.pc < ops.size()) res = driven_resource(ops[c.pc]);
          if (res >= 0 && res < num_res &&
              (res_failed[static_cast<std::size_t>(res)] != 0 ||
               quar[static_cast<std::size_t>(res)].state ==
                   degrade::QuarantineState::kCapacityExhausted)) {
            degraded_cycle = true;
            break;
          }
        }
      }
      if (!degraded_cycle) ++result.serving_cycles;
    } else {
      ++result.serving_cycles;  // no permanent fault active yet
    }
    degraded_cycle = false;

    ++cycle;
  }

  result.cycles = cycle;
  for (TaskId t = 0; t < graph_.num_tasks(); ++t)
    result.tasks[t] = ctx[t].stats;
  for (std::size_t a = 0; a < probes.size(); ++a) {
    probes[a]->finish();
    arbiters[a]->set_observer(nullptr);
  }
  return result;
}

}  // namespace rcarb::rcsim
