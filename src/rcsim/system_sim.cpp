#include "rcsim/system_sim.hpp"

#include <algorithm>
#include <utility>

#include "support/check.hpp"

namespace rcarb::rcsim {

namespace {

using tg::Op;
using tg::OpCode;
using tg::TaskId;

/// Per-logical-channel receiver register (Fig. 3: a register per receiving
/// end whose enable comes from the source keeps earlier transfers alive).
struct ChannelReg {
  bool valid = false;
  std::int64_t value = 0;
};

/// Naive alternative: one register per physical channel; `writer` records
/// which logical channel wrote last so corrupted reads can be counted.
struct NaiveReg {
  bool valid = false;
  std::int64_t value = 0;
  int writer = -1;
};

struct LoopFrame {
  std::size_t begin_pc = 0;  // index of the kLoopBegin op
  std::int64_t remaining = 0;
};

}  // namespace

struct SystemSimulator::TaskCtx {
  TaskId id = 0;
  bool in_run = false;
  bool started = false;
  bool finished = false;
  std::size_t pc = 0;
  std::int64_t regs[tg::kNumRegs] = {};
  std::vector<LoopFrame> loops;
  std::int64_t compute_left = 0;  // remaining busy cycles of a kCompute
  // Arbitration protocol state.
  int requesting = -1;  // resource whose Req line this task asserts (-1 none)
  // Resource whose request was auto-deasserted during send backpressure
  // (the sender re-arbitrates once the receiver register frees up).
  int dropped_request = -1;
  std::uint64_t request_since = 0;
  TaskStats stats;
};

SystemSimulator::SystemSimulator(tg::TaskGraph graph, core::Binding binding,
                                 core::ArbitrationPlan plan,
                                 SimOptions options)
    : graph_(std::move(graph)),
      binding_(std::move(binding)),
      plan_(std::move(plan)),
      options_(options) {
  graph_.validate();
  memory_.resize(graph_.num_segments());
  for (tg::SegmentId s = 0; s < graph_.num_segments(); ++s)
    memory_[s].assign(graph_.segment(s).words, 0);
}

void SystemSimulator::write_segment(tg::SegmentId s,
                                    const std::vector<std::int64_t>& words) {
  RCARB_CHECK(s < memory_.size(), "segment out of range");
  RCARB_CHECK(words.size() <= graph_.segment(s).words,
              "segment preload larger than the segment");
  memory_[s].assign(graph_.segment(s).words, 0);
  std::copy(words.begin(), words.end(), memory_[s].begin());
}

const std::vector<std::int64_t>& SystemSimulator::segment_data(
    tg::SegmentId s) const {
  RCARB_CHECK(s < memory_.size(), "segment out of range");
  return memory_[s];
}

SimResult SystemSimulator::run(const std::vector<TaskId>& tasks) {
  SimResult result;
  result.tasks.resize(graph_.num_tasks());

  // ---- Instantiate behavioral arbiters from the plan. ----
  std::vector<std::unique_ptr<core::Arbiter>> arbiters;
  std::vector<int> grant_holder(plan_.arbiters.size(), -1);  // port index
  for (const core::ArbiterInstance& inst : plan_.arbiters) {
    const int n = static_cast<int>(inst.ports.size());
    if (inst.policy == core::Policy::kRoundRobin && options_.rr_max_hold > 0) {
      arbiters.push_back(std::make_unique<core::RoundRobinArbiter>(
          n, core::RoundRobinOptions{options_.rr_max_hold}));
    } else {
      arbiters.push_back(core::make_arbiter(inst.policy, n, options_.seed));
    }
    ArbiterStats st;
    st.resource_name = inst.resource_name;
    st.ports = n;
    result.arbiters.push_back(st);
  }

  // ---- Task contexts. ----
  std::vector<TaskCtx> ctx(graph_.num_tasks());
  for (TaskId t = 0; t < graph_.num_tasks(); ++t) ctx[t].id = t;
  for (TaskId t : tasks) {
    RCARB_CHECK(t < graph_.num_tasks(), "task out of range");
    ctx[t].in_run = true;
  }

  // ---- Channel registers. ----
  std::vector<ChannelReg> chan_reg(graph_.num_channels());
  std::vector<NaiveReg> naive_reg(binding_.num_phys_channels);

  // Request lines per arbiter port, rebuilt each cycle from task state.
  std::vector<std::uint64_t> requests(plan_.arbiters.size(), 0);
  std::vector<std::uint64_t> wait_start(graph_.num_tasks(), 0);

  auto fail = [&](const std::string& msg) {
    result.diagnostics.push_back(msg);
    if (options_.strict) RCARB_CHECK(false, msg);
  };
  auto protocol_fail = [&](const std::string& msg) {
    ++result.protocol_violations;
    fail(msg);
  };

  // Maps a task+resource to the arbiter index and port, if arbitrated.
  auto arbiter_port = [&](TaskId t, int resource) -> std::pair<int, int> {
    return plan_.port_lookup(resource, t);
  };

  auto driven_resource = [&](const Op& op) -> int {
    switch (op.code) {
      case OpCode::kLoad:
      case OpCode::kStore: {
        const int bank =
            binding_.segment_to_bank[static_cast<std::size_t>(op.b)];
        return bank < 0 ? -1 : binding_.bank_resource(bank);
      }
      case OpCode::kSend: {
        const int phys =
            binding_.channel_to_phys[static_cast<std::size_t>(op.b)];
        return phys < 0 ? -1 : binding_.channel_resource(phys);
      }
      default:
        return -1;
    }
  };

  // ---- Main loop. ----
  std::uint64_t cycle = 0;
  std::uint64_t last_progress_cycle = 0;
  std::size_t finished_count = 0;
  std::size_t to_finish = tasks.size();

  // Per-cycle single-port usage: (bank or phys channel) -> first user task.
  std::vector<int> bank_user(binding_.num_banks);
  std::vector<int> chan_user(binding_.num_phys_channels);

  while (finished_count < to_finish) {
    RCARB_CHECK(cycle < options_.max_cycles, "simulation exceeded max_cycles");
    if (cycle - last_progress_cycle >= 100000) {
      std::string detail = "simulation deadlocked (no progress for 100000 "
                           "cycles); task states:";
      for (TaskId t : tasks) {
        const TaskCtx& c = ctx[t];
        if (c.finished) continue;
        detail += "\n  " + graph_.task(t).name +
                  (c.started ? "" : " (not started)") +
                  " pc=" + std::to_string(c.pc);
        if (c.started && c.pc < graph_.task(t).program.ops().size())
          detail += std::string(" op=") +
                    tg::to_string(graph_.task(t).program.ops()[c.pc].code) +
                    " a=" +
                    std::to_string(graph_.task(t).program.ops()[c.pc].a) +
                    " b=" +
                    std::to_string(graph_.task(t).program.ops()[c.pc].b);
        detail += " requesting=" + std::to_string(c.requesting) +
                  " dropped=" + std::to_string(c.dropped_request);
      }
      RCARB_CHECK(false, detail);
    }

    // Phase 1: arbiters sample the request lines asserted in prior cycles.
    std::vector<int> granted_port(plan_.arbiters.size(), -1);
    for (std::size_t a = 0; a < arbiters.size(); ++a) {
      const int g = arbiters[a]->step(requests[a]);
      granted_port[a] = g;
      if (g >= 0) {
        ++result.arbiters[a].granted_cycles;
        if (g != grant_holder[a]) ++result.arbiters[a].grants;
        // Wait accounting: the granted task's wait ends now.
        const TaskId t = plan_.arbiters[a].ports[static_cast<std::size_t>(g)];
        if (ctx[t].requesting >= 0) {
          const std::uint64_t waited = cycle - ctx[t].request_since;
          result.arbiters[a].max_wait =
              std::max(result.arbiters[a].max_wait, waited);
        }
      }
      grant_holder[a] = g;
    }

    auto has_grant = [&](TaskId t, int resource) {
      const auto [ai, port] = arbiter_port(t, resource);
      if (ai < 0) return true;  // unarbitrated resource
      if (port < 0) return true;  // task elided from the arbiter
      return granted_port[static_cast<std::size_t>(ai)] == port;
    };

    // Phase 2: start tasks whose in-run predecessors have finished.
    for (TaskId t : tasks) {
      TaskCtx& c = ctx[t];
      if (c.started || c.finished) continue;
      bool ready = true;
      for (TaskId p : graph_.predecessors(t))
        if (ctx[p].in_run && !ctx[p].finished) ready = false;
      if (ready) {
        c.started = true;
        c.stats.ran = true;
        c.stats.start_cycle = cycle;
      }
    }

    // Phase 3: execute one cycle of every running task.
    std::fill(bank_user.begin(), bank_user.end(), -1);
    std::fill(chan_user.begin(), chan_user.end(), -1);

    for (TaskId t : tasks) {
      TaskCtx& c = ctx[t];
      if (!c.started || c.finished) continue;
      const auto& ops = graph_.task(t).program.ops();

      bool spent_cycle = false;
      if (c.compute_left > 0) {
        --c.compute_left;
        last_progress_cycle = cycle;
        if (c.compute_left > 0) continue;
        ++c.pc;
        ++c.stats.ops_retired;
        spent_cycle = true;  // zero-cost ops may still drain below
      }

      // Retire zero-cost control ops freely; execute at most one costed op
      // per cycle, then keep draining zero-cost ops (so a task whose last
      // costed op retires this cycle also finishes this cycle).
      int control_budget = 64;
      while (!c.finished) {
        if (c.pc >= ops.size()) {
          c.finished = true;
          c.stats.finish_cycle = cycle;
          ++finished_count;
          if (c.requesting >= 0)
            fail("task " + graph_.task(t).name +
                 " finished while still requesting " +
                 binding_.resource_name(c.requesting));
          break;
        }
        const Op& op = ops[c.pc];
        const bool zero_cost =
            op.code == OpCode::kLoopBegin ||
            op.code == OpCode::kLoopBeginVar ||
            op.code == OpCode::kLoopEnd || op.code == OpCode::kHalt ||
            (op.code == OpCode::kCompute && op.imm == 0);
        if (spent_cycle && !zero_cost) break;
        switch (op.code) {
          case OpCode::kLoopBegin:
          case OpCode::kLoopBeginVar: {
            RCARB_CHECK(--control_budget > 0, "zero-cost op runaway");
            const std::int64_t trip =
                op.code == OpCode::kLoopBegin
                    ? op.imm
                    : std::max<std::int64_t>(0, c.regs[op.a]);
            if (trip == 0) {
              // Skip to the matching end.
              int depth = 1;
              std::size_t pc = c.pc + 1;
              while (depth > 0) {
                if (ops[pc].code == OpCode::kLoopBegin ||
                    ops[pc].code == OpCode::kLoopBeginVar)
                  ++depth;
                if (ops[pc].code == OpCode::kLoopEnd) --depth;
                ++pc;
              }
              c.pc = pc;
            } else {
              c.loops.push_back({c.pc, trip});
              ++c.pc;
            }
            last_progress_cycle = cycle;
            break;
          }
          case OpCode::kLoopEnd: {
            RCARB_CHECK(--control_budget > 0, "zero-cost op runaway");
            RCARB_ASSERT(!c.loops.empty(), "loop_end without frame");
            LoopFrame& frame = c.loops.back();
            if (--frame.remaining > 0) {
              c.pc = frame.begin_pc + 1;
            } else {
              c.loops.pop_back();
              ++c.pc;
            }
            last_progress_cycle = cycle;
            break;
          }
          case OpCode::kHalt:
            c.pc = ops.size();
            break;
          case OpCode::kCompute:
            if (op.imm == 0) {
              RCARB_CHECK(--control_budget > 0, "zero-cost op runaway");
              ++c.pc;
              ++c.stats.ops_retired;
              break;
            }
            c.compute_left = op.imm - 1;  // this cycle is the first
            if (c.compute_left == 0) ++c.pc, ++c.stats.ops_retired;
            spent_cycle = true;
            last_progress_cycle = cycle;
            break;
          case OpCode::kAcquire: {
            if (c.requesting >= 0 && c.requesting != op.a)
              protocol_fail("task " + graph_.task(t).name +
                            " acquires a second resource while holding one");
            c.requesting = op.a;
            c.request_since = cycle;
            ++c.stats.acquires;
            ++c.pc;
            ++c.stats.ops_retired;
            spent_cycle = true;  // the Req:=1 cycle of Fig. 8
            last_progress_cycle = cycle;
            break;
          }
          case OpCode::kRelease: {
            if (c.requesting != op.a)
              protocol_fail("task " + graph_.task(t).name +
                            " releases a resource it does not hold");
            c.requesting = -1;
            ++c.pc;
            ++c.stats.ops_retired;
            spent_cycle = true;  // the Req:=0 cycle of Fig. 8
            last_progress_cycle = cycle;
            break;
          }
          case OpCode::kLoad:
          case OpCode::kStore: {
            const int resource = driven_resource(op);
            const auto [ai, port] = arbiter_port(t, resource);
            if (ai >= 0 && port >= 0) {
              if (c.requesting != resource) {
                protocol_fail("task " + graph_.task(t).name +
                              " accesses arbitrated " +
                              binding_.resource_name(resource) +
                              " without requesting it");
              } else if (!has_grant(t, resource)) {
                ++c.stats.grant_wait_cycles;  // stall, request stays up
                spent_cycle = true;
                break;
              }
            }
            // Single-port bank conflict detection.
            const int bank =
                binding_.segment_to_bank[static_cast<std::size_t>(op.b)];
            if (bank >= 0) {
              int& user = bank_user[static_cast<std::size_t>(bank)];
              if (user >= 0 && user != static_cast<int>(t)) {
                ++result.bank_conflicts;
                fail("bank conflict on " +
                     binding_.bank_names[static_cast<std::size_t>(bank)] +
                     " between " + graph_.task(static_cast<TaskId>(user)).name +
                     " and " + graph_.task(t).name);
              }
              user = static_cast<int>(t);
            }
            auto& mem = memory_[static_cast<std::size_t>(op.b)];
            const std::int64_t addr = c.regs[op.c] + op.imm;
            if (addr < 0 || static_cast<std::size_t>(addr) >= mem.size()) {
              fail("task " + graph_.task(t).name + " address " +
                   std::to_string(addr) + " out of segment " +
                   graph_.segment(static_cast<std::size_t>(op.b)).name);
              // Non-strict mode: drop the access.
            } else if (op.code == OpCode::kLoad) {
              c.regs[op.a] = mem[static_cast<std::size_t>(addr)];
            } else {
              mem[static_cast<std::size_t>(addr)] = c.regs[op.a];
            }
            ++c.stats.mem_accesses;
            ++c.pc;
            ++c.stats.ops_retired;
            spent_cycle = true;
            last_progress_cycle = cycle;
            break;
          }
          case OpCode::kSend: {
            const auto ch = static_cast<std::size_t>(op.b);
            if (ch < options_.tdm_slots.size() &&
                options_.tdm_slots[ch].second > 0) {
              const auto [slot, period] = options_.tdm_slots[ch];
              if (cycle % static_cast<std::uint64_t>(period) !=
                  static_cast<std::uint64_t>(slot)) {
                ++c.stats.grant_wait_cycles;  // waiting for the time slot
                spent_cycle = true;
                break;
              }
            }
            const int resource = driven_resource(op);
            const auto [ai, port] = arbiter_port(t, resource);
            const bool naive =
                options_.naive_shared_channel_register &&
                binding_.channel_to_phys[ch] >= 0;
            // Receiver-side backpressure comes first: the sender can see
            // its receiver's ready line regardless of the channel grant,
            // and — so no one starves behind a blocked holder — it
            // deasserts its own channel request while stalled.
            if (!naive && chan_reg[ch].valid) {
              if (c.requesting >= 0 && c.requesting == resource) {
                c.dropped_request = c.requesting;
                c.requesting = -1;
              }
              ++c.stats.backpressure_cycles;
              spent_cycle = true;
              break;
            }
            if (!naive && c.dropped_request == resource &&
                c.requesting != resource && ai >= 0 && port >= 0) {
              // Re-assert the request dropped during backpressure (one
              // cycle, like the Fig. 8 Req:=1 step).
              c.requesting = resource;
              c.dropped_request = -1;
              c.request_since = cycle;
              spent_cycle = true;
              break;
            }
            if (ai >= 0 && port >= 0) {
              if (c.requesting != resource) {
                protocol_fail("task " + graph_.task(t).name +
                              " sends on arbitrated " +
                              binding_.resource_name(resource) +
                              " without requesting it");
              } else if (!has_grant(t, resource)) {
                ++c.stats.grant_wait_cycles;
                spent_cycle = true;
                break;
              }
            }
            const int phys = binding_.channel_to_phys[ch];
            if (phys >= 0) {
              int& user = chan_user[static_cast<std::size_t>(phys)];
              if (user >= 0 && user != static_cast<int>(t)) {
                ++result.channel_conflicts;
                fail("channel conflict on " +
                     binding_
                         .phys_channel_names[static_cast<std::size_t>(phys)] +
                     " between " + graph_.task(static_cast<TaskId>(user)).name +
                     " and " + graph_.task(t).name);
              }
              user = static_cast<int>(t);
            }
            if (naive) {
              // The broken baseline clobbers silently (that is its point).
              NaiveReg& reg = naive_reg[static_cast<std::size_t>(phys)];
              reg.valid = true;
              reg.value = c.regs[op.a];
              reg.writer = op.b;
            } else {
              chan_reg[ch].valid = true;
              chan_reg[ch].value = c.regs[op.a];
            }
            ++c.stats.channel_ops;
            ++c.pc;
            ++c.stats.ops_retired;
            spent_cycle = true;
            last_progress_cycle = cycle;
            break;
          }
          case OpCode::kRecv: {
            const auto ch = static_cast<std::size_t>(op.b);
            const int phys = binding_.channel_to_phys[ch];
            bool got = false;
            if (options_.naive_shared_channel_register && phys >= 0) {
              // The broken single-register baseline has no per-target valid
              // handshake: receivers sample whatever the register holds, so
              // a later transfer on a merged channel is read in place of an
              // earlier one (counted as a clobbered read).
              NaiveReg& reg = naive_reg[static_cast<std::size_t>(phys)];
              if (reg.valid) {
                if (reg.writer != op.b) ++result.clobbered_reads;
                c.regs[op.a] = reg.value;
                got = true;
              }
            } else if (chan_reg[ch].valid) {
              c.regs[op.a] = chan_reg[ch].value;
              chan_reg[ch].valid = false;
              got = true;
            }
            if (got) {
              ++c.stats.channel_ops;
              ++c.pc;
              ++c.stats.ops_retired;
              last_progress_cycle = cycle;
            }
            spent_cycle = true;  // waiting or consuming both take the cycle
            break;
          }
          default: {
            // Single-cycle register ops.
            switch (op.code) {
              case OpCode::kLoadImm: c.regs[op.a] = op.imm; break;
              case OpCode::kMov: c.regs[op.a] = c.regs[op.b]; break;
              case OpCode::kAdd: c.regs[op.a] = c.regs[op.b] + c.regs[op.c]; break;
              case OpCode::kSub: c.regs[op.a] = c.regs[op.b] - c.regs[op.c]; break;
              case OpCode::kMul: c.regs[op.a] = c.regs[op.b] * c.regs[op.c]; break;
              case OpCode::kMulQ:
                c.regs[op.a] = (c.regs[op.b] * c.regs[op.c]) >> op.imm;
                break;
              case OpCode::kShr: c.regs[op.a] = c.regs[op.b] >> op.imm; break;
              case OpCode::kShl:
                c.regs[op.a] = static_cast<std::int64_t>(
                    static_cast<std::uint64_t>(c.regs[op.b]) << op.imm);
                break;
              case OpCode::kAddImm: c.regs[op.a] = c.regs[op.b] + op.imm; break;
              default:
                RCARB_CHECK(false, "unhandled opcode in simulator");
            }
            ++c.pc;
            ++c.stats.ops_retired;
            spent_cycle = true;
            last_progress_cycle = cycle;
            break;
          }
        }
      }
    }

    // Phase 4: rebuild the request lines from the tasks' protocol state.
    std::fill(requests.begin(), requests.end(), 0);
    for (TaskId t : tasks) {
      const TaskCtx& c = ctx[t];
      if (c.finished || c.requesting < 0) continue;
      const auto [ai, port] = arbiter_port(t, c.requesting);
      if (ai >= 0 && port >= 0)
        requests[static_cast<std::size_t>(ai)] |= 1ull << port;
    }

    ++cycle;
  }

  result.cycles = cycle;
  for (TaskId t = 0; t < graph_.num_tasks(); ++t)
    result.tasks[t] = ctx[t].stats;
  return result;
}

}  // namespace rcarb::rcsim
