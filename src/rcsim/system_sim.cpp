#include "rcsim/system_sim.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "support/check.hpp"

namespace rcarb::rcsim {

namespace {

using tg::Op;
using tg::OpCode;
using tg::TaskId;

/// Per-logical-channel receiver register (Fig. 3: a register per receiving
/// end whose enable comes from the source keeps earlier transfers alive).
struct ChannelReg {
  bool valid = false;
  std::int64_t value = 0;
};

/// Naive alternative: one register per physical channel; `writer` records
/// which logical channel wrote last so corrupted reads can be counted.
struct NaiveReg {
  bool valid = false;
  std::int64_t value = 0;
  int writer = -1;
};

struct LoopFrame {
  std::size_t begin_pc = 0;  // index of the kLoopBegin op
  std::int64_t remaining = 0;
};

/// A stuck-at fault window over one arbiter line.
struct StuckWindow {
  fault::FaultKind kind = fault::FaultKind::kReqStuck0;
  std::size_t arbiter = 0;
  int port = 0;
  std::uint64_t from = 0;
  std::uint64_t until = 0;  // exclusive

  [[nodiscard]] bool active(std::uint64_t cycle) const {
    return cycle >= from && cycle < until;
  }
};

}  // namespace

const char* to_string(DiagKind k) {
  switch (k) {
    case DiagKind::kBankConflict: return "bank-conflict";
    case DiagKind::kChannelConflict: return "channel-conflict";
    case DiagKind::kProtocolViolation: return "protocol-violation";
    case DiagKind::kOutOfBounds: return "out-of-bounds";
    case DiagKind::kIllegalFsmState: return "illegal-fsm-state";
    case DiagKind::kMultipleGrants: return "multiple-grants";
    case DiagKind::kFsmRecovery: return "fsm-recovery";
    case DiagKind::kHungGrant: return "hung-grant";
    case DiagKind::kWatchdogRecovery: return "watchdog-recovery";
    case DiagKind::kDataCorruption: return "data-corruption";
    case DiagKind::kDeadlock: return "deadlock";
    case DiagKind::kNoProgress: return "no-progress";
    case DiagKind::kMaxCycles: return "max-cycles";
  }
  return "?";
}

std::string SimDiagnostic::format() const {
  std::string s = std::string(to_string(kind)) + "@" + std::to_string(cycle);
  if (task >= 0) s += " task=" + std::to_string(task);
  if (resource >= 0) s += " resource=" + std::to_string(resource);
  if (!detail.empty()) s += ": " + detail;
  return s;
}

std::size_t SimResult::count(DiagKind k) const {
  std::size_t n = 0;
  for (const SimDiagnostic& d : diagnostics)
    if (d.kind == k) ++n;
  return n;
}

struct SystemSimulator::TaskCtx {
  TaskId id = 0;
  bool in_run = false;
  bool started = false;
  bool finished = false;
  std::size_t pc = 0;
  std::int64_t regs[tg::kNumRegs] = {};
  std::vector<LoopFrame> loops;
  std::int64_t compute_left = 0;  // remaining busy cycles of a kCompute
  // Arbitration protocol state.
  int requesting = -1;  // resource whose Req line this task asserts (-1 none)
  // Resource whose request was auto-deasserted during send backpressure
  // (the sender re-arbitrates once the receiver register frees up).
  int dropped_request = -1;
  std::uint64_t request_since = 0;
  // Protocol-level retry: after retry_timeout granless cycles the task
  // deasserts Req and re-asserts once the bounded backoff expires.
  int retry_resource = -1;
  std::uint64_t retry_until = 0;
  int retry_backoff = 1;
  TaskStats stats;
};

SystemSimulator::SystemSimulator(tg::TaskGraph graph, core::Binding binding,
                                 core::ArbitrationPlan plan,
                                 SimOptions options)
    : graph_(std::move(graph)),
      binding_(std::move(binding)),
      plan_(std::move(plan)),
      options_(options) {
  graph_.validate();
  memory_.resize(graph_.num_segments());
  for (tg::SegmentId s = 0; s < graph_.num_segments(); ++s)
    memory_[s].assign(graph_.segment(s).words, 0);
}

void SystemSimulator::write_segment(tg::SegmentId s,
                                    const std::vector<std::int64_t>& words) {
  RCARB_CHECK(s < memory_.size(), "segment out of range");
  RCARB_CHECK(words.size() <= graph_.segment(s).words,
              "segment preload larger than the segment");
  memory_[s].assign(graph_.segment(s).words, 0);
  std::copy(words.begin(), words.end(), memory_[s].begin());
}

const std::vector<std::int64_t>& SystemSimulator::segment_data(
    tg::SegmentId s) const {
  RCARB_CHECK(s < memory_.size(), "segment out of range");
  return memory_[s];
}

obs::TraceMeta SystemSimulator::trace_meta() const {
  obs::TraceMeta m;
  m.task_names.reserve(graph_.num_tasks());
  for (TaskId t = 0; t < graph_.num_tasks(); ++t)
    m.task_names.push_back(graph_.task(t).name);
  m.arbiter_names.reserve(plan_.arbiters.size());
  for (const core::ArbiterInstance& a : plan_.arbiters)
    m.arbiter_names.push_back(a.resource_name);
  const int n_res = static_cast<int>(binding_.num_resources());
  m.resource_names.reserve(static_cast<std::size_t>(n_res));
  for (int r = 0; r < n_res; ++r)
    m.resource_names.push_back(binding_.resource_name(r));
  return m;
}

SimResult SystemSimulator::run(const std::vector<TaskId>& tasks) {
  SimResult result;
  result.tasks.resize(graph_.num_tasks());
  if (options_.record_request_trace)
    result.request_trace.resize(plan_.arbiters.size());

  // ---- Instantiate behavioral arbiters from the plan. ----
  std::vector<std::unique_ptr<core::Arbiter>> arbiters;
  std::vector<core::RoundRobinArbiter*> rr(plan_.arbiters.size(), nullptr);
  std::vector<int> grant_holder(plan_.arbiters.size(), -1);  // port index
  for (const core::ArbiterInstance& inst : plan_.arbiters) {
    const int n = static_cast<int>(inst.ports.size());
    if (inst.policy == core::Policy::kRoundRobin) {
      auto arb = std::make_unique<core::RoundRobinArbiter>(
          n, core::RoundRobinOptions{options_.rr_max_hold, options_.harden});
      rr[arbiters.size()] = arb.get();
      arbiters.push_back(std::move(arb));
    } else {
      arbiters.push_back(core::make_arbiter(inst.policy, n, options_.seed));
    }
    ArbiterStats st;
    st.resource_name = inst.resource_name;
    st.ports = n;
    result.arbiters.push_back(st);
  }

  // ---- Observability: metric probes and the trace sink. ----
  // arbiter_obs is sized once, before any probe borrows an element, so the
  // probes' pointers stay valid for the whole run.
  std::vector<std::unique_ptr<obs::ArbiterProbe>> probes;
  if (options_.arbiter_metrics) {
    result.arbiter_obs.resize(plan_.arbiters.size());
    probes.reserve(plan_.arbiters.size());
    for (std::size_t a = 0; a < arbiters.size(); ++a) {
      obs::ArbiterMetrics& m = result.arbiter_obs[a];
      m.name = plan_.arbiters[a].resource_name;
      m.ports = result.arbiters[a].ports;
      probes.push_back(std::make_unique<obs::ArbiterProbe>(&m));
      arbiters[a]->set_observer(probes.back().get());
    }
  }
  obs::TraceSink* const sink = options_.trace_sink;
  auto trace = [&](obs::TraceKind kind, std::uint64_t cyc, int task,
                   int arbiter, int resource, std::int64_t value) {
    if (sink != nullptr) sink->emit({cyc, kind, task, arbiter, resource, value});
  };

  // ---- Split the fault schedule by application point. ----
  std::vector<fault::FaultEvent> flips;  // kFsmBitFlip, cycle-sorted
  std::vector<StuckWindow> stucks;       // req/grant stuck-at windows
  // Per physical channel: armed corruption masks, cycle-sorted.
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      chan_corrupt(binding_.num_phys_channels);
  std::vector<std::size_t> chan_corrupt_next(binding_.num_phys_channels, 0);
  for (const fault::FaultEvent& e : options_.faults) {
    switch (e.kind) {
      case fault::FaultKind::kFsmBitFlip:
        if (e.arbiter >= 0 &&
            static_cast<std::size_t>(e.arbiter) < arbiters.size())
          flips.push_back(e);
        break;
      case fault::FaultKind::kReqStuck0:
      case fault::FaultKind::kReqStuck1:
      case fault::FaultKind::kGrantStuck0:
      case fault::FaultKind::kGrantDrop:
        if (e.arbiter >= 0 &&
            static_cast<std::size_t>(e.arbiter) < arbiters.size() &&
            e.port >= 0 && e.port < result.arbiters[static_cast<std::size_t>(
                                        e.arbiter)].ports)
          stucks.push_back({e.kind, static_cast<std::size_t>(e.arbiter),
                            e.port, e.cycle, e.cycle + e.duration});
        break;
      case fault::FaultKind::kChannelCorrupt:
        if (e.channel >= 0 &&
            static_cast<std::size_t>(e.channel) < chan_corrupt.size())
          chan_corrupt[static_cast<std::size_t>(e.channel)].push_back(
              {e.cycle, e.xor_mask});
        break;
    }
  }
  std::stable_sort(flips.begin(), flips.end(),
                   [](const fault::FaultEvent& a, const fault::FaultEvent& b) {
                     return a.cycle < b.cycle;
                   });
  for (auto& q : chan_corrupt) std::stable_sort(q.begin(), q.end());
  std::size_t flip_next = 0;

  // ---- Task contexts. ----
  std::vector<TaskCtx> ctx(graph_.num_tasks());
  for (TaskId t = 0; t < graph_.num_tasks(); ++t) ctx[t].id = t;
  for (TaskId t : tasks) {
    RCARB_CHECK(t < graph_.num_tasks(), "task out of range");
    ctx[t].in_run = true;
  }

  // ---- Channel registers. ----
  std::vector<ChannelReg> chan_reg(graph_.num_channels());
  std::vector<NaiveReg> naive_reg(binding_.num_phys_channels);

  // Request lines per arbiter port, rebuilt each cycle from task state.
  std::vector<std::uint64_t> requests(plan_.arbiters.size(), 0);

  // Diagnostic emission.  `make_detail` is a lazy builder: the detail
  // string is only formatted when someone will read it (diag_detail on, or
  // a strict run about to throw) — non-strict sweeps that merely count
  // diagnostic kinds never pay for string construction.
  const bool want_detail = options_.diag_detail || options_.strict;
  auto diagnose = [&](DiagKind kind, std::uint64_t cyc, int task, int resource,
                      auto&& make_detail) {
    result.diagnostics.push_back(
        {kind, cyc, task, resource,
         want_detail ? make_detail() : std::string()});
    trace(obs::TraceKind::kDiagnostic, cyc, task, -1, resource,
          static_cast<std::int64_t>(kind));
  };
  auto fail = [&](DiagKind kind, std::uint64_t cyc, int task, int resource,
                  auto&& make_detail) {
    diagnose(kind, cyc, task, resource, make_detail);
    if (options_.strict)
      RCARB_CHECK(false, result.diagnostics.back().detail);
  };

  // Maps a task+resource to the arbiter index and port, if arbitrated.
  auto arbiter_port = [&](TaskId t, int resource) -> std::pair<int, int> {
    return plan_.port_lookup(resource, t);
  };

  auto driven_resource = [&](const Op& op) -> int {
    switch (op.code) {
      case OpCode::kLoad:
      case OpCode::kStore: {
        const int bank =
            binding_.segment_to_bank[static_cast<std::size_t>(op.b)];
        return bank < 0 ? -1 : binding_.bank_resource(bank);
      }
      case OpCode::kSend: {
        const int phys =
            binding_.channel_to_phys[static_cast<std::size_t>(op.b)];
        return phys < 0 ? -1 : binding_.channel_resource(phys);
      }
      default:
        return -1;
    }
  };

  // ---- Watchdog / fault state per arbiter. ----
  std::vector<std::uint64_t> grant_mask_vis(plan_.arbiters.size(), 0);
  std::vector<int> hold_streak(plan_.arbiters.size(), 0);
  std::vector<char> hung_reported(plan_.arbiters.size(), 0);
  std::vector<char> was_illegal(plan_.arbiters.size(), 0);
  std::vector<char> holder_accessed(plan_.arbiters.size(), 0);
  std::vector<std::uint64_t> force_release(plan_.arbiters.size(), 0);
  std::vector<std::uint64_t> prev_recoveries(plan_.arbiters.size(), 0);
  std::vector<std::uint64_t> hold_since(plan_.arbiters.size(), 0);
  // Ports starved behind the holder, whether their Req is up (requests) or
  // temporarily dropped for a bounded retry backoff.  The watchdog counts
  // these; the wire-level `requests` alone would let every backoff zero the
  // hold streak and hide a hung holder.
  std::vector<std::uint64_t> pending(plan_.arbiters.size(), 0);

  // ---- Stall attribution: wait-for-graph over outstanding waits. ----
  // Returns true when a cycle was found (deadlock); otherwise reports the
  // stall as kNoProgress with the task-state dump.
  auto attribute_stall = [&](std::uint64_t cyc) {
    const auto num_tasks = graph_.num_tasks();
    std::vector<int> waits_on(num_tasks, -1);
    std::vector<std::string> why(num_tasks);
    for (TaskId t : tasks) {
      const TaskCtx& c = ctx[t];
      if (c.finished) continue;
      if (!c.started) {
        for (TaskId p : graph_.predecessors(t))
          if (ctx[p].in_run && !ctx[p].finished) {
            waits_on[t] = static_cast<int>(p);
            why[t] = "control dependence on " + graph_.task(p).name;
            break;
          }
        continue;
      }
      const auto& ops = graph_.task(t).program.ops();
      if (c.pc >= ops.size()) continue;
      const Op& op = ops[c.pc];
      int res = c.requesting;
      if (res < 0) res = c.retry_resource;
      if (res < 0) res = c.dropped_request;
      if (res >= 0 &&
          (op.code == OpCode::kLoad || op.code == OpCode::kStore ||
           op.code == OpCode::kSend)) {
        const auto [ai, port] = arbiter_port(t, res);
        if (ai >= 0 && port >= 0) {
          const int h = grant_holder[static_cast<std::size_t>(ai)];
          if (h >= 0 && h != port) {
            waits_on[t] = static_cast<int>(
                plan_.arbiters[static_cast<std::size_t>(ai)]
                    .ports[static_cast<std::size_t>(h)]);
            why[t] = "awaits grant of " + binding_.resource_name(res);
            continue;
          }
        }
      }
      if (op.code == OpCode::kRecv &&
          !chan_reg[static_cast<std::size_t>(op.b)].valid) {
        const tg::Channel& ch =
            graph_.channel(static_cast<std::size_t>(op.b));
        waits_on[t] = static_cast<int>(ch.source);
        why[t] = "awaits a word on " + ch.name;
        continue;
      }
      if (op.code == OpCode::kSend &&
          !options_.naive_shared_channel_register &&
          chan_reg[static_cast<std::size_t>(op.b)].valid) {
        const tg::Channel& ch =
            graph_.channel(static_cast<std::size_t>(op.b));
        waits_on[t] = static_cast<int>(ch.target);
        why[t] = "backpressured on " + ch.name;
        continue;
      }
    }

    // Walk every chain looking for a cycle (paths are functional: at most
    // one outgoing wait edge per task).
    std::vector<char> color(num_tasks, 0);  // 0 new, 1 on path, 2 done
    for (TaskId start : tasks) {
      std::vector<TaskId> path;
      TaskId u = start;
      while (true) {
        if (color[u] == 2) break;
        if (color[u] == 1) {
          // Cycle found: report it from u around.
          std::string detail = "wait-for cycle: ";
          const auto at = std::find(path.begin(), path.end(), u);
          for (auto it = at; it != path.end(); ++it)
            detail += graph_.task(*it).name + " (" + why[*it] + ") -> ";
          detail += graph_.task(u).name;
          diagnose(DiagKind::kDeadlock, cyc, static_cast<int>(u),
                   ctx[u].requesting, [&] { return detail; });
          for (TaskId v : path) color[v] = 2;
          return;
        }
        color[u] = 1;
        path.push_back(u);
        if (waits_on[u] < 0 ||
            ctx[static_cast<std::size_t>(waits_on[u])].finished)
          break;
        u = static_cast<TaskId>(waits_on[u]);
      }
      for (TaskId v : path) color[v] = 2;
    }

    // No cycle: a hang (dead arbiter, sender that never sends, ...).
    std::string detail = "no progress for " +
                         std::to_string(options_.no_progress_window) +
                         " cycles; task states:";
    for (TaskId t : tasks) {
      const TaskCtx& c = ctx[t];
      if (c.finished) continue;
      detail += "\n  " + graph_.task(t).name +
                (c.started ? "" : " (not started)") +
                " pc=" + std::to_string(c.pc);
      if (c.started && c.pc < graph_.task(t).program.ops().size())
        detail += std::string(" op=") +
                  tg::to_string(graph_.task(t).program.ops()[c.pc].code) +
                  " a=" +
                  std::to_string(graph_.task(t).program.ops()[c.pc].a) +
                  " b=" +
                  std::to_string(graph_.task(t).program.ops()[c.pc].b);
      detail += " requesting=" + std::to_string(c.requesting) +
                " dropped=" + std::to_string(c.dropped_request);
      if (!why[t].empty()) detail += " [" + why[t] + "]";
    }
    for (std::size_t a = 0; a < arbiters.size(); ++a)
      if (rr[a] != nullptr && !rr[a]->state_legal())
        detail += "\n  arbiter " + plan_.arbiters[a].resource_name +
                  " register illegal (state=0x" +
                  std::to_string(rr[a]->state_bits()) + ")";
    diagnose(DiagKind::kNoProgress, cyc, -1, -1, [&] { return detail; });
  };

  // ---- Main loop. ----
  std::uint64_t cycle = 0;
  std::uint64_t last_progress_cycle = 0;
  std::size_t finished_count = 0;
  std::size_t to_finish = tasks.size();

  // Per-cycle single-port usage: (bank or phys channel) -> first user task.
  std::vector<int> bank_user(binding_.num_banks);
  std::vector<int> chan_user(binding_.num_phys_channels);

  while (finished_count < to_finish) {
    if (cycle >= options_.max_cycles) {
      result.deadlocked = true;
      fail(DiagKind::kMaxCycles, cycle, -1, -1,
           [] { return std::string("simulation exceeded max_cycles"); });
      break;
    }
    if (cycle - last_progress_cycle >= options_.no_progress_window) {
      result.deadlocked = true;
      attribute_stall(cycle);
      if (options_.strict)
        RCARB_CHECK(false, result.diagnostics.back().format());
      break;
    }

    // Phase 0: inject the state-register upsets scheduled for this cycle.
    while (flip_next < flips.size() && flips[flip_next].cycle <= cycle) {
      const fault::FaultEvent& e = flips[flip_next++];
      const auto a = static_cast<std::size_t>(e.arbiter);
      if (rr[a] != nullptr) {
        const int bits = 2 * result.arbiters[a].ports;
        rr[a]->inject_bit_flip(e.bit >= 0 ? e.bit % bits : 0);
        trace(obs::TraceKind::kFault, cycle, -1, static_cast<int>(a),
              plan_.arbiters[a].resource,
              static_cast<std::int64_t>(e.kind));
      }
    }

    // Phase 1: arbiters sample the request lines asserted in prior cycles,
    // as seen through any active stuck-at faults.
    for (std::size_t a = 0; a < arbiters.size(); ++a) {
      std::uint64_t eff = requests[a];
      std::uint64_t grant_suppress = 0;
      for (const StuckWindow& w : stucks) {
        if (w.arbiter != a || !w.active(cycle)) continue;
        if (sink != nullptr && cycle == w.from)
          trace(obs::TraceKind::kFault, cycle,
                static_cast<int>(plan_.arbiters[a]
                                     .ports[static_cast<std::size_t>(w.port)]),
                static_cast<int>(a), plan_.arbiters[a].resource,
                static_cast<std::int64_t>(w.kind));
        const std::uint64_t bit = 1ull << w.port;
        switch (w.kind) {
          case fault::FaultKind::kReqStuck0: eff &= ~bit; break;
          case fault::FaultKind::kReqStuck1: eff |= bit; break;
          case fault::FaultKind::kGrantStuck0:
          case fault::FaultKind::kGrantDrop: grant_suppress |= bit; break;
          default: break;
        }
      }
      // The watchdog's force-release masks the request *inside* the
      // arbiter, downstream of any stuck-at fault on the physical Req line
      // — applied before the stuck-1 OR, a phantom stuck-1 holder could
      // never be evicted.
      eff &= ~force_release[a];
      force_release[a] = 0;

      if (options_.record_request_trace) result.request_trace[a].push_back(eff);

      // Unhardened illegal registers are reported when they appear.
      if (rr[a] != nullptr) {
        const bool illegal = !rr[a]->state_legal();
        if (illegal && !was_illegal[a]) {
          ++result.illegal_fsm_states;
          diagnose(DiagKind::kIllegalFsmState, cycle, -1,
                   plan_.arbiters[a].resource, [&] {
                     return "arbiter " + plan_.arbiters[a].resource_name +
                            " state register left the one-hot set (state=0x" +
                            std::to_string(rr[a]->state_bits()) + ")";
                   });
        }
        was_illegal[a] = illegal ? 1 : 0;
      }

      const int g = arbiters[a]->step(eff);
      std::uint64_t mask =
          rr[a] != nullptr ? rr[a]->last_grant_mask()
                           : (g >= 0 ? (1ull << g) : 0);

      if (rr[a] != nullptr) {
        const std::uint64_t rec = rr[a]->recoveries();
        if (rec != prev_recoveries[a]) {
          result.fsm_recoveries += rec - prev_recoveries[a];
          prev_recoveries[a] = rec;
          diagnose(DiagKind::kFsmRecovery, cycle, -1,
                   plan_.arbiters[a].resource, [&] {
                     return "hardened arbiter " +
                            plan_.arbiters[a].resource_name +
                            " recovered to the all-free reset state";
                   });
        }
        if (std::popcount(mask) > 1) {
          ++result.multi_grant_cycles;
          if (result.multi_grant_cycles == 1 ||
              result.diagnostics.empty() ||
              result.diagnostics.back().kind != DiagKind::kMultipleGrants)
            diagnose(DiagKind::kMultipleGrants, cycle, -1,
                     plan_.arbiters[a].resource, [&] {
                       return "arbiter " + plan_.arbiters[a].resource_name +
                              " asserted " +
                              std::to_string(std::popcount(mask)) +
                              " grants at once (mutual exclusion violated)";
                     });
        }
      }
      grant_mask_vis[a] = mask & ~grant_suppress;

      const int prev = grant_holder[a];
      if (sink != nullptr && g != prev && prev >= 0)
        trace(obs::TraceKind::kGrantEnd, cycle,
              static_cast<int>(
                  plan_.arbiters[a].ports[static_cast<std::size_t>(prev)]),
              static_cast<int>(a), plan_.arbiters[a].resource,
              static_cast<std::int64_t>(cycle - hold_since[a]));
      if (g >= 0) {
        ++result.arbiters[a].granted_cycles;
        if (g != prev) {
          ++result.arbiters[a].grants;
          hold_streak[a] = 0;
          hung_reported[a] = 0;
          hold_since[a] = cycle;
        }
        // Wait accounting: the granted task's wait ends now.
        const TaskId t = plan_.arbiters[a].ports[static_cast<std::size_t>(g)];
        std::uint64_t waited = 0;
        if (ctx[t].requesting >= 0) {
          waited = cycle - ctx[t].request_since;
          result.arbiters[a].max_wait =
              std::max(result.arbiters[a].max_wait, waited);
        }
        if (sink != nullptr && g != prev)
          trace(obs::TraceKind::kGrant, cycle, static_cast<int>(t),
                static_cast<int>(a), plan_.arbiters[a].resource,
                static_cast<std::int64_t>(waited));
      } else {
        hold_streak[a] = 0;
        hung_reported[a] = 0;
      }
      grant_holder[a] = g;
      holder_accessed[a] = 0;
    }

    auto has_grant = [&](TaskId t, int resource) {
      const auto [ai, port] = arbiter_port(t, resource);
      if (ai < 0) return true;  // unarbitrated resource
      if (port < 0) return true;  // task elided from the arbiter
      return ((grant_mask_vis[static_cast<std::size_t>(ai)] >> port) & 1u) !=
             0;
    };
    auto note_access = [&](TaskId t, int resource) {
      const auto [ai, port] = arbiter_port(t, resource);
      if (ai >= 0 && port >= 0 &&
          grant_holder[static_cast<std::size_t>(ai)] == port)
        holder_accessed[static_cast<std::size_t>(ai)] = 1;
    };

    // Phase 2: start tasks whose in-run predecessors have finished.
    for (TaskId t : tasks) {
      TaskCtx& c = ctx[t];
      if (c.started || c.finished) continue;
      bool ready = true;
      for (TaskId p : graph_.predecessors(t))
        if (ctx[p].in_run && !ctx[p].finished) ready = false;
      if (ready) {
        c.started = true;
        c.stats.ran = true;
        c.stats.start_cycle = cycle;
        trace(obs::TraceKind::kTaskStart, cycle, static_cast<int>(t), -1, -1,
              0);
      }
    }

    // Phase 3: execute one cycle of every running task.
    std::fill(bank_user.begin(), bank_user.end(), -1);
    std::fill(chan_user.begin(), chan_user.end(), -1);

    for (TaskId t : tasks) {
      TaskCtx& c = ctx[t];
      if (!c.started || c.finished) continue;
      const auto& ops = graph_.task(t).program.ops();

      bool spent_cycle = false;
      if (c.compute_left > 0) {
        --c.compute_left;
        last_progress_cycle = cycle;
        if (c.compute_left > 0) continue;
        ++c.pc;
        ++c.stats.ops_retired;
        spent_cycle = true;  // zero-cost ops may still drain below
      }

      // Protocol retry bookkeeping shared by the arbitrated access ops:
      // returns true when the access must wait this cycle (stall, backoff,
      // or the Req re-assertion cycle), false when it may proceed.
      auto await_grant = [&](int resource) -> bool {
        if (c.requesting != resource) {
          // Backing off, or re-asserting after the backoff expired.
          if (c.retry_resource == resource) {
            if (cycle >= c.retry_until) {
              c.requesting = resource;
              c.retry_resource = -1;
              c.request_since = cycle;
              ++result.retries;
              const auto [ai, port] = arbiter_port(t, resource);
              (void)port;
              if (ai >= 0) {
                if (!result.arbiter_obs.empty())
                  ++result.arbiter_obs[static_cast<std::size_t>(ai)].retries;
                trace(obs::TraceKind::kRetry, cycle, static_cast<int>(t), ai,
                      resource, 0);
              }
            }
            return true;
          }
          fail(DiagKind::kProtocolViolation, cycle, static_cast<int>(t),
               resource, [&] {
                 return "task " + graph_.task(t).name +
                        " accesses arbitrated " +
                        binding_.resource_name(resource) +
                        " without requesting it";
               });
          ++result.protocol_violations;
          return false;
        }
        if (has_grant(t, resource)) {
          c.retry_backoff = 1;
          return false;
        }
        // No grant.  With retry enabled, give the attempt up after the
        // timeout and back off boundedly (Req:=0 for backoff cycles).
        const int rt = plan_.retry_timeout;
        if (rt > 0 && cycle - c.request_since >=
                          static_cast<std::uint64_t>(rt)) {
          c.requesting = -1;
          c.retry_resource = resource;
          c.retry_until = cycle + static_cast<std::uint64_t>(c.retry_backoff);
          const auto [ai, port] = arbiter_port(t, resource);
          (void)port;
          if (ai >= 0) {
            if (!result.arbiter_obs.empty())
              ++result.arbiter_obs[static_cast<std::size_t>(ai)].backoffs;
            trace(obs::TraceKind::kBackoff, cycle, static_cast<int>(t), ai,
                  resource, c.retry_backoff);
          }
          c.retry_backoff =
              std::min(c.retry_backoff * 2, plan_.retry_backoff_limit);
          return true;
        }
        ++c.stats.grant_wait_cycles;  // stall, request stays up
        return true;
      };

      // Retire zero-cost control ops freely; execute at most one costed op
      // per cycle, then keep draining zero-cost ops (so a task whose last
      // costed op retires this cycle also finishes this cycle).
      int control_budget = 64;
      while (!c.finished) {
        if (c.pc >= ops.size()) {
          c.finished = true;
          c.stats.finish_cycle = cycle;
          ++finished_count;
          trace(obs::TraceKind::kTaskFinish, cycle, static_cast<int>(t), -1,
                -1, 0);
          if (c.requesting >= 0)
            fail(DiagKind::kProtocolViolation, cycle, static_cast<int>(t),
                 c.requesting, [&] {
                   return "task " + graph_.task(t).name +
                          " finished while still requesting " +
                          binding_.resource_name(c.requesting);
                 });
          break;
        }
        const Op& op = ops[c.pc];
        const bool zero_cost =
            op.code == OpCode::kLoopBegin ||
            op.code == OpCode::kLoopBeginVar ||
            op.code == OpCode::kLoopEnd || op.code == OpCode::kHalt ||
            (op.code == OpCode::kCompute && op.imm == 0);
        if (spent_cycle && !zero_cost) break;
        switch (op.code) {
          case OpCode::kLoopBegin:
          case OpCode::kLoopBeginVar: {
            RCARB_CHECK(--control_budget > 0, "zero-cost op runaway");
            const std::int64_t trip =
                op.code == OpCode::kLoopBegin
                    ? op.imm
                    : std::max<std::int64_t>(0, c.regs[op.a]);
            if (trip == 0) {
              // Skip to the matching end.
              int depth = 1;
              std::size_t pc = c.pc + 1;
              while (depth > 0) {
                if (ops[pc].code == OpCode::kLoopBegin ||
                    ops[pc].code == OpCode::kLoopBeginVar)
                  ++depth;
                if (ops[pc].code == OpCode::kLoopEnd) --depth;
                ++pc;
              }
              c.pc = pc;
            } else {
              c.loops.push_back({c.pc, trip});
              ++c.pc;
            }
            last_progress_cycle = cycle;
            break;
          }
          case OpCode::kLoopEnd: {
            RCARB_CHECK(--control_budget > 0, "zero-cost op runaway");
            RCARB_ASSERT(!c.loops.empty(), "loop_end without frame");
            LoopFrame& frame = c.loops.back();
            if (--frame.remaining > 0) {
              c.pc = frame.begin_pc + 1;
            } else {
              c.loops.pop_back();
              ++c.pc;
            }
            last_progress_cycle = cycle;
            break;
          }
          case OpCode::kHalt:
            c.pc = ops.size();
            break;
          case OpCode::kCompute:
            if (op.imm == 0) {
              RCARB_CHECK(--control_budget > 0, "zero-cost op runaway");
              ++c.pc;
              ++c.stats.ops_retired;
              break;
            }
            c.compute_left = op.imm - 1;  // this cycle is the first
            if (c.compute_left == 0) ++c.pc, ++c.stats.ops_retired;
            spent_cycle = true;
            last_progress_cycle = cycle;
            break;
          case OpCode::kAcquire: {
            if (c.requesting >= 0 && c.requesting != op.a) {
              fail(DiagKind::kProtocolViolation, cycle, static_cast<int>(t),
                   op.a, [&] {
                     return "task " + graph_.task(t).name +
                            " acquires a second resource while holding one";
                   });
              ++result.protocol_violations;
            }
            c.requesting = op.a;
            c.request_since = cycle;
            c.retry_resource = -1;
            ++c.stats.acquires;
            if (sink != nullptr) {
              const auto [ai, port] = arbiter_port(t, op.a);
              (void)port;
              trace(obs::TraceKind::kRequest, cycle, static_cast<int>(t), ai,
                    op.a, 0);
            }
            ++c.pc;
            ++c.stats.ops_retired;
            spent_cycle = true;  // the Req:=1 cycle of Fig. 8
            last_progress_cycle = cycle;
            break;
          }
          case OpCode::kRelease: {
            if (c.requesting != op.a) {
              fail(DiagKind::kProtocolViolation, cycle, static_cast<int>(t),
                   op.a, [&] {
                     return "task " + graph_.task(t).name +
                            " releases a resource it does not hold";
                   });
              ++result.protocol_violations;
            }
            c.requesting = -1;
            c.retry_resource = -1;
            if (sink != nullptr) {
              const auto [ai, port] = arbiter_port(t, op.a);
              (void)port;
              trace(obs::TraceKind::kRelease, cycle, static_cast<int>(t), ai,
                    op.a, 0);
            }
            ++c.pc;
            ++c.stats.ops_retired;
            spent_cycle = true;  // the Req:=0 cycle of Fig. 8
            last_progress_cycle = cycle;
            break;
          }
          case OpCode::kLoad:
          case OpCode::kStore: {
            const int resource = driven_resource(op);
            const auto [ai, port] = arbiter_port(t, resource);
            if (ai >= 0 && port >= 0) {
              if (await_grant(resource)) {
                spent_cycle = true;
                break;
              }
              note_access(t, resource);
            }
            // Single-port bank conflict detection.
            const int bank =
                binding_.segment_to_bank[static_cast<std::size_t>(op.b)];
            if (bank >= 0) {
              int& user = bank_user[static_cast<std::size_t>(bank)];
              if (user >= 0 && user != static_cast<int>(t)) {
                ++result.bank_conflicts;
                fail(DiagKind::kBankConflict, cycle, static_cast<int>(t),
                     binding_.bank_resource(bank), [&] {
                       return "bank conflict on " +
                              binding_
                                  .bank_names[static_cast<std::size_t>(bank)] +
                              " between " +
                              graph_.task(static_cast<TaskId>(user)).name +
                              " and " + graph_.task(t).name;
                     });
              }
              user = static_cast<int>(t);
            }
            auto& mem = memory_[static_cast<std::size_t>(op.b)];
            const std::int64_t addr = c.regs[op.c] + op.imm;
            if (addr < 0 || static_cast<std::size_t>(addr) >= mem.size()) {
              fail(DiagKind::kOutOfBounds, cycle, static_cast<int>(t),
                   resource, [&] {
                     return "task " + graph_.task(t).name + " address " +
                            std::to_string(addr) + " out of segment " +
                            graph_.segment(static_cast<std::size_t>(op.b))
                                .name;
                   });
              // Non-strict mode: drop the access.
            } else if (op.code == OpCode::kLoad) {
              c.regs[op.a] = mem[static_cast<std::size_t>(addr)];
            } else {
              mem[static_cast<std::size_t>(addr)] = c.regs[op.a];
            }
            ++c.stats.mem_accesses;
            ++c.pc;
            ++c.stats.ops_retired;
            spent_cycle = true;
            last_progress_cycle = cycle;
            break;
          }
          case OpCode::kSend: {
            const auto ch = static_cast<std::size_t>(op.b);
            if (ch < options_.tdm_slots.size() &&
                options_.tdm_slots[ch].second > 0) {
              const auto [slot, period] = options_.tdm_slots[ch];
              if (cycle % static_cast<std::uint64_t>(period) !=
                  static_cast<std::uint64_t>(slot)) {
                ++c.stats.grant_wait_cycles;  // waiting for the time slot
                spent_cycle = true;
                break;
              }
            }
            const int resource = driven_resource(op);
            const auto [ai, port] = arbiter_port(t, resource);
            const bool naive =
                options_.naive_shared_channel_register &&
                binding_.channel_to_phys[ch] >= 0;
            // Receiver-side backpressure comes first: the sender can see
            // its receiver's ready line regardless of the channel grant,
            // and — so no one starves behind a blocked holder — it
            // deasserts its own channel request while stalled.
            if (!naive && chan_reg[ch].valid) {
              if (c.requesting >= 0 && c.requesting == resource) {
                c.dropped_request = c.requesting;
                c.requesting = -1;
              }
              ++c.stats.backpressure_cycles;
              spent_cycle = true;
              break;
            }
            if (!naive && c.dropped_request == resource &&
                c.requesting != resource && ai >= 0 && port >= 0) {
              // Re-assert the request dropped during backpressure (one
              // cycle, like the Fig. 8 Req:=1 step).
              c.requesting = resource;
              c.dropped_request = -1;
              c.request_since = cycle;
              spent_cycle = true;
              break;
            }
            if (ai >= 0 && port >= 0) {
              if (await_grant(resource)) {
                spent_cycle = true;
                break;
              }
              note_access(t, resource);
            }
            const int phys = binding_.channel_to_phys[ch];
            std::int64_t value = c.regs[op.a];
            if (phys >= 0) {
              int& user = chan_user[static_cast<std::size_t>(phys)];
              if (user >= 0 && user != static_cast<int>(t)) {
                ++result.channel_conflicts;
                fail(DiagKind::kChannelConflict, cycle, static_cast<int>(t),
                     binding_.channel_resource(phys), [&] {
                       return "channel conflict on " +
                              binding_.phys_channel_names
                                  [static_cast<std::size_t>(phys)] +
                              " between " +
                              graph_.task(static_cast<TaskId>(user)).name +
                              " and " + graph_.task(t).name;
                     });
              }
              user = static_cast<int>(t);

              // Armed corruption faults hit the next word on the wire.
              auto& armed = chan_corrupt[static_cast<std::size_t>(phys)];
              std::size_t& next = chan_corrupt_next[static_cast<std::size_t>(phys)];
              if (next < armed.size() && armed[next].first <= cycle) {
                const std::uint64_t mask = armed[next].second;
                ++next;
                if (options_.harden && std::popcount(mask) == 1) {
                  // SECDED corrects the single-bit upset in place.
                  ++result.corrected_words;
                  diagnose(DiagKind::kDataCorruption, cycle,
                           static_cast<int>(t),
                           binding_.channel_resource(phys), [&] {
                             return "single-bit corruption on " +
                                    binding_.phys_channel_names
                                        [static_cast<std::size_t>(phys)] +
                                    " corrected by SECDED";
                           });
                } else {
                  value = static_cast<std::int64_t>(
                      static_cast<std::uint64_t>(value) ^ mask);
                  ++result.corrupted_words;
                  diagnose(DiagKind::kDataCorruption, cycle,
                           static_cast<int>(t),
                           binding_.channel_resource(phys), [&] {
                             return "corrupted word on " +
                                    binding_.phys_channel_names
                                        [static_cast<std::size_t>(phys)] +
                                    " delivered (parity detected, no ECC)";
                           });
                }
              }
            }
            if (naive) {
              // The broken baseline clobbers silently (that is its point).
              NaiveReg& reg = naive_reg[static_cast<std::size_t>(phys)];
              reg.valid = true;
              reg.value = value;
              reg.writer = op.b;
            } else {
              chan_reg[ch].valid = true;
              chan_reg[ch].value = value;
            }
            ++c.stats.channel_ops;
            ++c.pc;
            ++c.stats.ops_retired;
            spent_cycle = true;
            last_progress_cycle = cycle;
            break;
          }
          case OpCode::kRecv: {
            const auto ch = static_cast<std::size_t>(op.b);
            const int phys = binding_.channel_to_phys[ch];
            bool got = false;
            if (options_.naive_shared_channel_register && phys >= 0) {
              // The broken single-register baseline has no per-target valid
              // handshake: receivers sample whatever the register holds, so
              // a later transfer on a merged channel is read in place of an
              // earlier one (counted as a clobbered read).
              NaiveReg& reg = naive_reg[static_cast<std::size_t>(phys)];
              if (reg.valid) {
                if (reg.writer != op.b) ++result.clobbered_reads;
                c.regs[op.a] = reg.value;
                got = true;
              }
            } else if (chan_reg[ch].valid) {
              c.regs[op.a] = chan_reg[ch].value;
              chan_reg[ch].valid = false;
              got = true;
            }
            if (got) {
              ++c.stats.channel_ops;
              ++c.pc;
              ++c.stats.ops_retired;
              last_progress_cycle = cycle;
            }
            spent_cycle = true;  // waiting or consuming both take the cycle
            break;
          }
          default: {
            // Single-cycle register ops.
            switch (op.code) {
              case OpCode::kLoadImm: c.regs[op.a] = op.imm; break;
              case OpCode::kMov: c.regs[op.a] = c.regs[op.b]; break;
              case OpCode::kAdd: c.regs[op.a] = c.regs[op.b] + c.regs[op.c]; break;
              case OpCode::kSub: c.regs[op.a] = c.regs[op.b] - c.regs[op.c]; break;
              case OpCode::kMul: c.regs[op.a] = c.regs[op.b] * c.regs[op.c]; break;
              case OpCode::kMulQ:
                c.regs[op.a] = (c.regs[op.b] * c.regs[op.c]) >> op.imm;
                break;
              case OpCode::kShr: c.regs[op.a] = c.regs[op.b] >> op.imm; break;
              case OpCode::kShl:
                c.regs[op.a] = static_cast<std::int64_t>(
                    static_cast<std::uint64_t>(c.regs[op.b]) << op.imm);
                break;
              case OpCode::kAddImm: c.regs[op.a] = c.regs[op.b] + op.imm; break;
              default:
                RCARB_CHECK(false, "unhandled opcode in simulator");
            }
            ++c.pc;
            ++c.stats.ops_retired;
            spent_cycle = true;
            last_progress_cycle = cycle;
            break;
          }
        }
      }
    }

    // Phase 4: rebuild the request lines from the tasks' protocol state.
    // `pending` additionally counts waiters in a retry backoff: their Req
    // wire is down, but they are still starved behind the holder.  (Senders
    // that dropped their request under receiver backpressure are *not*
    // pending — they could not proceed even with the grant.)
    std::fill(requests.begin(), requests.end(), 0);
    std::fill(pending.begin(), pending.end(), 0);
    for (TaskId t : tasks) {
      const TaskCtx& c = ctx[t];
      if (c.finished) continue;
      if (c.requesting >= 0) {
        const auto [ai, port] = arbiter_port(t, c.requesting);
        if (ai >= 0 && port >= 0) {
          requests[static_cast<std::size_t>(ai)] |= 1ull << port;
          pending[static_cast<std::size_t>(ai)] |= 1ull << port;
        }
      } else if (c.retry_resource >= 0) {
        const auto [ai, port] = arbiter_port(t, c.retry_resource);
        if (ai >= 0 && port >= 0)
          pending[static_cast<std::size_t>(ai)] |= 1ull << port;
      }
    }

    // Phase 5: hung-grant watchdog.  A holder that keeps the grant without
    // retiring a single access while peers wait is hung (stuck grant line,
    // phantom stuck-1 requester, crashed holder...).
    if (options_.watchdog_timeout > 0) {
      for (std::size_t a = 0; a < arbiters.size(); ++a) {
        const int h = grant_holder[a];
        if (h < 0) continue;
        const bool others_waiting =
            (pending[a] & ~(1ull << h)) != 0;
        if (holder_accessed[a] || !others_waiting) {
          hold_streak[a] = 0;
          hung_reported[a] = 0;
          continue;
        }
        if (++hold_streak[a] < options_.watchdog_timeout) continue;
        const TaskId holder_task =
            plan_.arbiters[a].ports[static_cast<std::size_t>(h)];
        if (!hung_reported[a]) {
          hung_reported[a] = 1;
          ++result.hung_grants;
          if (!result.arbiter_obs.empty())
            ++result.arbiter_obs[a].watchdog_fires;
          diagnose(DiagKind::kHungGrant, cycle,
                   static_cast<int>(holder_task), plan_.arbiters[a].resource,
                   [&] {
                     return "grant on " + plan_.arbiters[a].resource_name +
                            " pinned on idle " +
                            graph_.task(holder_task).name + " for " +
                            std::to_string(hold_streak[a]) +
                            " cycles while peers wait";
                   });
        }
        if (options_.harden) {
          // Force-release: suppress the hung holder's request for one
          // sample so the round-robin scan moves past it.
          force_release[a] = 1ull << h;
          ++result.watchdog_releases;
          if (!result.arbiter_obs.empty())
            ++result.arbiter_obs[a].watchdog_releases;
          diagnose(DiagKind::kWatchdogRecovery, cycle,
                   static_cast<int>(holder_task), plan_.arbiters[a].resource,
                   [&] {
                     return "watchdog force-released " +
                            graph_.task(holder_task).name + " on " +
                            plan_.arbiters[a].resource_name;
                   });
          hold_streak[a] = 0;
          hung_reported[a] = 0;
        }
      }
    }

    ++cycle;
  }

  result.cycles = cycle;
  for (TaskId t = 0; t < graph_.num_tasks(); ++t)
    result.tasks[t] = ctx[t].stats;
  for (std::size_t a = 0; a < probes.size(); ++a) {
    probes[a]->finish();
    arbiters[a]->set_observer(nullptr);
  }
  return result;
}

}  // namespace rcarb::rcsim
