// Reduced ordered binary decision diagrams.
//
// A deliberately small ROBDD package (unique table + memoized ITE) used to
// formally check that synthesized arbiter netlists implement the behavioral
// FSM, and to verify the two-level minimizer.  Variable order is the natural
// index order; the functions we check (priority chains) are BDD-friendly, so
// no reordering is implemented.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "logic/cover.hpp"

namespace rcarb::bdd {

/// Handle to a BDD node owned by a Manager.  Value 0 is the FALSE terminal
/// and 1 the TRUE terminal.
using Ref = std::uint32_t;

inline constexpr Ref kFalse = 0;
inline constexpr Ref kTrue = 1;

/// Owns all nodes; all Refs are relative to one Manager.
class Manager {
 public:
  /// num_vars fixes the variable universe (order = index order).
  explicit Manager(int num_vars);

  [[nodiscard]] int num_vars() const { return num_vars_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// The projection function of variable v.
  [[nodiscard]] Ref var(int v);

  [[nodiscard]] Ref ite(Ref f, Ref g, Ref h);
  [[nodiscard]] Ref land(Ref a, Ref b) { return ite(a, b, kFalse); }
  [[nodiscard]] Ref lor(Ref a, Ref b) { return ite(a, kTrue, b); }
  [[nodiscard]] Ref lxor(Ref a, Ref b) { return ite(a, lnot(b), b); }
  [[nodiscard]] Ref lnot(Ref a) { return ite(a, kFalse, kTrue); }

  /// f with variable v fixed to `value`.
  [[nodiscard]] Ref restrict_var(Ref f, int v, bool value);

  /// Builds the BDD of a sum-of-products cover.
  [[nodiscard]] Ref from_cover(const logic::Cover& cover);

  /// Builds the BDD of a single cube.
  [[nodiscard]] Ref from_cube(const logic::Cube& cube);

  /// Number of satisfying assignments over the full variable universe.
  [[nodiscard]] double sat_count(Ref f);

  /// Evaluates f on a full assignment (bit v of `assignment` is variable v).
  [[nodiscard]] bool eval(Ref f, std::uint64_t assignment) const;

  /// One satisfying assignment; requires f != kFalse.
  [[nodiscard]] std::uint64_t any_sat(Ref f) const;

  /// Variables in the true support of f.
  [[nodiscard]] std::vector<int> support(Ref f) const;

 private:
  struct Node {
    int var;  // branching variable; terminals use num_vars_
    Ref lo;   // cofactor var=0
    Ref hi;   // cofactor var=1
  };

  struct NodeKey {
    int var;
    Ref lo;
    Ref hi;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const {
      std::uint64_t h =
          static_cast<std::uint64_t>(static_cast<unsigned>(k.var)) *
          UINT64_C(0x9e3779b97f4a7c15);
      h ^= (static_cast<std::uint64_t>(k.lo) << 32) | k.hi;
      h *= 0xbf58476d1ce4e5b9ull;
      return static_cast<std::size_t>(h ^ (h >> 29));
    }
  };
  struct IteKey {
    Ref f, g, h;
    bool operator==(const IteKey&) const = default;
  };
  struct IteKeyHash {
    std::size_t operator()(const IteKey& k) const {
      std::uint64_t h = k.f;
      h = h * 0x100000001b3ull ^ k.g;
      h = h * 0x100000001b3ull ^ k.h;
      return static_cast<std::size_t>(h);
    }
  };

  Ref make_node(int var, Ref lo, Ref hi);
  [[nodiscard]] int top_var(Ref f) const { return nodes_[f].var; }

  int num_vars_;
  std::vector<Node> nodes_;
  std::unordered_map<NodeKey, Ref, NodeKeyHash> unique_;
  std::unordered_map<IteKey, Ref, IteKeyHash> ite_cache_;
};

}  // namespace rcarb::bdd
