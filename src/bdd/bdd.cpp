#include "bdd/bdd.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace rcarb::bdd {

Manager::Manager(int num_vars) : num_vars_(num_vars) {
  RCARB_CHECK(num_vars >= 0 && num_vars <= logic::kMaxVars,
              "BDD variable count out of range");
  // Terminals branch on the sentinel level num_vars_.
  nodes_.push_back({num_vars_, kFalse, kFalse});  // 0 = FALSE
  nodes_.push_back({num_vars_, kTrue, kTrue});    // 1 = TRUE
}

Ref Manager::var(int v) {
  RCARB_CHECK(v >= 0 && v < num_vars_, "BDD variable out of range");
  return make_node(v, kFalse, kTrue);
}

Ref Manager::make_node(int var, Ref lo, Ref hi) {
  if (lo == hi) return lo;  // reduction rule
  const NodeKey key{var, lo, hi};
  auto [it, inserted] = unique_.try_emplace(key, 0);
  if (!inserted) return it->second;
  nodes_.push_back({var, lo, hi});
  const Ref ref = static_cast<Ref>(nodes_.size() - 1);
  it->second = ref;
  return ref;
}

Ref Manager::ite(Ref f, Ref g, Ref h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const IteKey key{f, g, h};
  if (auto it = ite_cache_.find(key); it != ite_cache_.end())
    return it->second;

  const int v =
      std::min({top_var(f), top_var(g), top_var(h)});
  auto cof = [&](Ref r, bool hi) {
    if (top_var(r) != v) return r;
    return hi ? nodes_[r].hi : nodes_[r].lo;
  };
  const Ref lo = ite(cof(f, false), cof(g, false), cof(h, false));
  const Ref hi = ite(cof(f, true), cof(g, true), cof(h, true));
  const Ref result = make_node(v, lo, hi);
  ite_cache_.emplace(key, result);
  return result;
}

Ref Manager::restrict_var(Ref f, int v, bool value) {
  RCARB_CHECK(v >= 0 && v < num_vars_, "BDD variable out of range");
  if (f <= kTrue) return f;
  const Node n = nodes_[f];
  if (n.var > v) return f;
  if (n.var == v) return value ? n.hi : n.lo;
  const Ref lo = restrict_var(n.lo, v, value);
  const Ref hi = restrict_var(n.hi, v, value);
  return make_node(n.var, lo, hi);
}

Ref Manager::from_cube(const logic::Cube& cube) {
  Ref acc = kTrue;
  // Build bottom-up (highest variable first) for linear node count.
  for (int v = num_vars_; v-- > 0;) {
    if (!cube.has_var(v)) continue;
    acc = cube.polarity(v) ? make_node(v, kFalse, acc)
                           : make_node(v, acc, kFalse);
  }
  return acc;
}

Ref Manager::from_cover(const logic::Cover& cover) {
  RCARB_CHECK(cover.num_vars() <= num_vars_,
              "cover wider than the BDD manager");
  Ref acc = kFalse;
  for (const logic::Cube& c : cover.cubes()) acc = lor(acc, from_cube(c));
  return acc;
}

double Manager::sat_count(Ref f) {
  std::unordered_map<Ref, double> memo;
  // counts assignments over variables >= node's var; scale at the end.
  auto rec = [&](auto&& self, Ref r) -> double {
    if (r == kFalse) return 0.0;
    if (r == kTrue) return 1.0;
    if (auto it = memo.find(r); it != memo.end()) return it->second;
    const Node& n = nodes_[r];
    const double lo = self(self, n.lo) *
                      std::exp2(nodes_[n.lo].var - n.var - 1);
    const double hi = self(self, n.hi) *
                      std::exp2(nodes_[n.hi].var - n.var - 1);
    const double total = lo + hi;
    memo.emplace(r, total);
    return total;
  };
  return rec(rec, f) * std::exp2(top_var(f));
}

bool Manager::eval(Ref f, std::uint64_t assignment) const {
  Ref r = f;
  while (r > kTrue) {
    const Node& n = nodes_[r];
    r = ((assignment >> n.var) & 1u) ? n.hi : n.lo;
  }
  return r == kTrue;
}

std::uint64_t Manager::any_sat(Ref f) const {
  RCARB_CHECK(f != kFalse, "any_sat of the empty function");
  std::uint64_t assignment = 0;
  Ref r = f;
  while (r > kTrue) {
    const Node& n = nodes_[r];
    if (n.hi != kFalse) {
      assignment |= 1ull << n.var;
      r = n.hi;
    } else {
      r = n.lo;
    }
  }
  return assignment;
}

std::vector<int> Manager::support(Ref f) const {
  std::vector<bool> seen_node(nodes_.size(), false);
  std::vector<bool> in_support(static_cast<std::size_t>(num_vars_), false);
  std::vector<Ref> stack{f};
  while (!stack.empty()) {
    const Ref r = stack.back();
    stack.pop_back();
    if (r <= kTrue || seen_node[r]) continue;
    seen_node[r] = true;
    const Node& n = nodes_[r];
    in_support[static_cast<std::size_t>(n.var)] = true;
    stack.push_back(n.lo);
    stack.push_back(n.hi);
  }
  std::vector<int> vars;
  for (int v = 0; v < num_vars_; ++v)
    if (in_support[static_cast<std::size_t>(v)]) vars.push_back(v);
  return vars;
}

}  // namespace rcarb::bdd
