#include "core/structural.hpp"

#include <vector>

#include "support/check.hpp"
#include "support/text.hpp"

namespace rcarb::core {

aig::Aig build_round_robin_aig(int n, const synth::StateCodes& codes) {
  RCARB_CHECK(n >= 2 && n <= 32, "structural arbiter supports n in [2, 32]");
  const auto un = static_cast<std::size_t>(n);
  RCARB_CHECK(codes.code.size() == 2 * un,
              "state codes must cover the 2N round-robin states");

  aig::Aig g;
  std::vector<aig::Lit> req(un);
  for (std::size_t i = 0; i < un; ++i)
    req[i] = g.add_input(signal_name("req", i));
  std::vector<aig::Lit> state_bit(static_cast<std::size_t>(codes.num_bits));
  for (std::size_t b = 0; b < state_bit.size(); ++b)
    state_bit[b] = g.add_input(signal_name("state", b));

  // present[s]: the machine is in state s (AND-decode of the state code;
  // a single literal under one-hot).
  auto decode = [&](std::size_t s) {
    std::vector<aig::Lit> lits;
    if (codes.encoding == synth::Encoding::kOneHot) {
      for (int b = 0; b < codes.num_bits; ++b)
        if ((codes.code[s] >> b) & 1u)
          lits.push_back(state_bit[static_cast<std::size_t>(b)]);
    } else {
      for (int b = 0; b < codes.num_bits; ++b) {
        const aig::Lit sb = state_bit[static_cast<std::size_t>(b)];
        lits.push_back(((codes.code[s] >> b) & 1u) ? sb : aig::lit_not(sb));
      }
    }
    return g.land_many(std::move(lits));
  };
  std::vector<aig::Lit> present(2 * un);
  for (std::size_t s = 0; s < 2 * un; ++s) present[s] = decode(s);

  // A[i]: the priority index is i (state Fi or Ci).
  std::vector<aig::Lit> at(un);
  for (std::size_t i = 0; i < un; ++i)
    at[i] = g.lor(present[i], present[un + i]);

  // Duplicated rotating priority chain: reach[t] means "the scan token has
  // reached position t mod n without meeting an asserted request".
  std::vector<aig::Lit> reach(2 * un);
  for (std::size_t t = 0; t < 2 * un; ++t) {
    const std::size_t p = t % un;
    aig::Lit carried = aig::kConstFalse;
    if (t > 0) {
      const std::size_t prev = (t - 1) % un;
      carried = g.land(reach[t - 1], aig::lit_not(req[prev]));
    }
    reach[t] = g.lor(at[p], carried);
  }

  // Grants: the first asserted request the token meets.
  std::vector<aig::Lit> grant(un);
  for (std::size_t j = 0; j < un; ++j)
    grant[j] = g.land(req[j], reach[j + un]);

  // Next state.  Grant j moves to Cj.  With no requests, Fi holds and Ci
  // retires to F(i+1).
  aig::Lit any_req = g.lor_many(req);
  std::vector<aig::Lit> next_state(2 * un);
  for (std::size_t j = 0; j < un; ++j) {
    const std::size_t c_prev = un + (j + un - 1) % un;
    next_state[j] = g.land(aig::lit_not(any_req),
                           g.lor(present[j], present[c_prev]));
    next_state[un + j] = grant[j];
  }

  // Encode next-state signals back into register bits.
  for (int b = 0; b < codes.num_bits; ++b) {
    std::vector<aig::Lit> hot;
    for (std::size_t s = 0; s < 2 * un; ++s)
      if ((codes.code[s] >> b) & 1u) hot.push_back(next_state[s]);
    g.add_output("ns" + std::to_string(b), g.lor_many(std::move(hot)));
  }
  for (std::size_t j = 0; j < un; ++j)
    g.add_output(signal_name("grant", j), grant[j]);
  return g;
}

}  // namespace rcarb::core
