// The Fig. 5 round-robin arbiter as a synthesizable FSM.
//
// For N tasks the machine has 2N states: Ci ("task i exclusively accesses
// the resource") and Fi ("no task accesses; task i has highest priority").
// From either Ci or Fi the request vector is scanned cyclically starting at
// i; the first requester j receives grant Gj and the machine moves to Cj.
// With no requests, Fi holds and Ci retires to F(i+1).  Grants are Mealy
// outputs, issued combinationally with the transition.
#pragma once

#include "synth/fsm.hpp"

namespace rcarb::core {

/// Builds the N-input round-robin arbiter FSM.  2 <= n <= 20: a one-hot
/// elaboration uses n request inputs plus 2n state bits, and all of them
/// must fit the 64-variable cube universe.
[[nodiscard]] synth::Fsm build_round_robin_fsm(int n);

}  // namespace rcarb::core
