#include "core/hier.hpp"

#include <algorithm>
#include <bit>

#include "support/check.hpp"
#include "support/text.hpp"

namespace rcarb::core {
namespace {

int ceil_log2(int m) {
  RCARB_ASSERT(m >= 1, "ceil_log2 of a non-positive count");
  return m <= 1 ? 0
               : static_cast<int>(std::bit_width(
                     static_cast<unsigned>(m) - 1u));
}

std::size_t word_count(int n) {
  return static_cast<std::size_t>((n + 63) / 64);
}

bool word_bit(const std::vector<std::uint64_t>& words, int i) {
  return ((words[static_cast<std::size_t>(i) >> 6] >>
           (static_cast<unsigned>(i) & 63u)) &
          1u) != 0;
}

/// Recursively builds the subtree over leaves [lo, hi); returns the child
/// encoding for the parent (leaf ~lo or a node index).
int build_subtree(HierShape& shape, int lo, int hi, int arity) {
  if (hi - lo == 1) return ~lo;
  const int index = static_cast<int>(shape.nodes.size());
  shape.nodes.emplace_back();
  const int span = hi - lo;
  const int groups = std::min(arity, span);
  std::vector<int> child;
  int at = lo;
  for (int c = 0; c < groups; ++c) {
    // Even split: the first (span % groups) groups get one extra leaf.
    const int size = span / groups + (c < span % groups ? 1 : 0);
    child.push_back(build_subtree(shape, at, at + size, arity));
    at += size;
  }
  RCARB_ASSERT(at == hi, "split must cover the span");
  shape.nodes[static_cast<std::size_t>(index)].child = std::move(child);
  shape.nodes[static_cast<std::size_t>(index)].ptr_bits =
      std::max(1, ceil_log2(groups));
  return index;
}

void fill_bounds(const HierShape& shape, int node, std::uint64_t product,
                 std::vector<std::uint64_t>& bound) {
  const HierShape::Node& nd = shape.nodes[static_cast<std::size_t>(node)];
  const std::uint64_t p = product * nd.child.size();
  for (const int c : nd.child) {
    if (c < 0)
      bound[static_cast<std::size_t>(~c)] = p - 1;
    else
      fill_bounds(shape, c, p, bound);
  }
}

}  // namespace

const char* to_string(ArbiterKind k) {
  switch (k) {
    case ArbiterKind::kFlatFsm:
      return "flat";
    case ArbiterKind::kHierarchical:
      return "hier";
    case ArbiterKind::kPrefix:
      return "prefix";
  }
  return "?";
}

HierShape make_hier_shape(int n, int arity) {
  RCARB_CHECK(n >= 1 && n <= kMaxWideInputs,
              "hierarchical arbiter size must be in [1, kMaxWideInputs]");
  RCARB_CHECK(arity >= 2 && arity <= 4, "node arity must be in [2, 4]");
  HierShape shape;
  shape.n = n;
  shape.arity = arity;
  shape.held_bits = ceil_log2(n);
  shape.bound.assign(static_cast<std::size_t>(n), 0);
  if (n > 1) {
    const int root = build_subtree(shape, 0, n, arity);
    RCARB_ASSERT(root == 0, "root must be the first pre-order node");
    int offset = 0;
    for (HierShape::Node& nd : shape.nodes) {
      nd.first_state_bit = offset;
      offset += nd.ptr_bits;
    }
    shape.ptr_bits_total = offset;
    fill_bounds(shape, 0, 1, shape.bound);
  }
  return shape;
}

// ---------------------------------------------------------- HierarchicalArbiter

HierarchicalArbiter::HierarchicalArbiter(int n, int arity)
    : Arbiter(WideTag{}, n), shape_(make_hier_shape(n, arity)) {
  ptr_.assign(shape_.nodes.size(), 0);
  grant_.assign(word_count(n), 0);
  req_scratch_.assign(word_count(n), 0);
  any_scratch_.assign(std::max<std::size_t>(shape_.nodes.size(), 1), 0);
}

void HierarchicalArbiter::reset() {
  std::fill(ptr_.begin(), ptr_.end(), 0);
  held_ = 0;
  valid_ = false;
  std::fill(grant_.begin(), grant_.end(), 0);
}

std::string HierarchicalArbiter::describe() const {
  return "hier-rr(n=" + std::to_string(n_) +
         ", arity=" + std::to_string(shape_.arity) + ")";
}

int HierarchicalArbiter::step_wide(const std::vector<std::uint64_t>& requests) {
  const int g = step_wide_impl(requests);
  notify_wide(requests, g);
  return g;
}

int HierarchicalArbiter::step_wide_impl(
    const std::vector<std::uint64_t>& requests) {
  RCARB_CHECK(requests.size() >= grant_.size(),
              "request vector narrower than the arbiter");
  std::fill(grant_.begin(), grant_.end(), 0);

  int g = -1;
  bool new_grant = false;
  // Hold path: the current holder keeps its grant while requesting.  An
  // SEU can point held_ past n-1 (held_bits covers a power of two); such a
  // code matches no port, exactly like the netlist's one-hot decode.
  if (valid_ && held_ < n_ && word_bit(requests, held_)) {
    g = held_;
  } else if (shape_.nodes.empty()) {
    if (word_bit(requests, 0)) {
      g = 0;
      new_grant = true;
    }
  } else {
    // Bottom-up any-request per node (children follow parents in
    // pre-order, so a reverse sweep sees children first).
    const auto& nodes = shape_.nodes;
    auto child_any = [&](int c) {
      return c < 0 ? word_bit(requests, ~c)
                   : any_scratch_[static_cast<std::size_t>(c)] != 0;
    };
    for (std::size_t k = nodes.size(); k-- > 0;) {
      bool any = false;
      for (const int c : nodes[k].child) any = any || child_any(c);
      any_scratch_[k] = any ? 1 : 0;
    }
    if (any_scratch_[0] != 0) {
      // Descend: each node scans its slots cyclically from its pointer
      // (padded slots >= the child count never request) and rotates the
      // pointer past the winning slot.
      int v = 0;
      while (g < 0) {
        const HierShape::Node& nd = nodes[static_cast<std::size_t>(v)];
        const int slots = 1 << nd.ptr_bits;
        const int m = static_cast<int>(nd.child.size());
        [[maybe_unused]] const int v_before = v;
        for (int k = 0; k < slots; ++k) {
          const int s = (ptr_[static_cast<std::size_t>(v)] + k) & (slots - 1);
          if (s >= m || !child_any(nd.child[static_cast<std::size_t>(s)]))
            continue;
          ptr_[static_cast<std::size_t>(v)] = (s + 1) & (slots - 1);
          const int c = nd.child[static_cast<std::size_t>(s)];
          if (c < 0)
            g = ~c;
          else
            v = c;
          break;
        }
        RCARB_ASSERT(g >= 0 || v != v_before,
                     "a node with any-request must pick a child");
      }
      new_grant = true;
    }
  }

  if (new_grant) held_ = g;
  valid_ = g >= 0;
  if (g >= 0)
    grant_[static_cast<std::size_t>(g) >> 6] |=
        1ull << (static_cast<unsigned>(g) & 63u);
  return g;
}

int HierarchicalArbiter::do_step(std::uint64_t requests) {
  // step() fires the word-based observer hook itself; going through the
  // impl avoids notifying twice.
  std::fill(req_scratch_.begin(), req_scratch_.end(), 0);
  req_scratch_[0] = requests;
  return step_wide_impl(req_scratch_);
}

std::uint64_t HierarchicalArbiter::state_bits() const {
  RCARB_CHECK(shape_.num_state_bits() <= 64,
              "packed state requires <= 64 state bits");
  std::uint64_t bits = 0;
  for (std::size_t k = 0; k < shape_.nodes.size(); ++k)
    bits |= static_cast<std::uint64_t>(ptr_[k])
            << shape_.nodes[k].first_state_bit;
  bits |= static_cast<std::uint64_t>(held_) << shape_.ptr_bits_total;
  if (valid_) bits |= 1ull << (shape_.num_state_bits() - 1);
  return bits;
}

void HierarchicalArbiter::inject_state_bit(int bit) {
  RCARB_CHECK(bit >= 0 && bit < shape_.num_state_bits(),
              "state bit out of range");
  if (bit < shape_.ptr_bits_total) {
    for (std::size_t k = 0; k < shape_.nodes.size(); ++k) {
      const HierShape::Node& nd = shape_.nodes[k];
      if (bit < nd.first_state_bit + nd.ptr_bits) {
        ptr_[k] ^= 1 << (bit - nd.first_state_bit);
        return;
      }
    }
  }
  bit -= shape_.ptr_bits_total;
  if (bit < shape_.held_bits)
    held_ ^= 1 << bit;
  else
    valid_ = !valid_;
}

// ----------------------------------------------------------- PrefixArbiter

PrefixArbiter::PrefixArbiter(int n) : Arbiter(WideTag{}, n) {
  ptr_.assign(word_count(n), 0);
  ptr_[0] = 1;
  grant_.assign(word_count(n), 0);
  req_scratch_.assign(word_count(n), 0);
}

void PrefixArbiter::reset() {
  std::fill(ptr_.begin(), ptr_.end(), 0);
  ptr_[0] = 1;
  std::fill(grant_.begin(), grant_.end(), 0);
}

std::string PrefixArbiter::describe() const {
  return "prefix-rr(n=" + std::to_string(n_) + ")";
}

int PrefixArbiter::step_wide(const std::vector<std::uint64_t>& requests) {
  const int g = step_wide_impl(requests);
  notify_wide(requests, g);
  return g;
}

int PrefixArbiter::step_wide_impl(const std::vector<std::uint64_t>& requests) {
  RCARB_CHECK(requests.size() >= grant_.size(),
              "request vector narrower than the arbiter");
  std::fill(grant_.begin(), grant_.end(), 0);

  // Thermometer mask from the lowest pointer bit (an SEU can leave the
  // register multi-hot — the mask still starts at the lowest hot bit, or
  // covers nothing when zero-hot, matching the prefix-OR netlist).
  int lowest = -1;
  for (std::size_t w = 0; w < ptr_.size() && lowest < 0; ++w)
    if (ptr_[w] != 0)
      lowest = static_cast<int>(w * 64) + std::countr_zero(ptr_[w]);

  int first_hi = -1;
  int first_req = -1;
  const std::size_t words = grant_.size();
  for (std::size_t w = 0; w < words && (first_hi < 0 || first_req < 0); ++w) {
    std::uint64_t r = requests[w];
    if (w + 1 == words && (n_ & 63) != 0) r &= (1ull << (n_ & 63)) - 1;
    if (first_req < 0 && r != 0)
      first_req = static_cast<int>(w * 64) + std::countr_zero(r);
    if (first_hi < 0 && lowest >= 0) {
      std::uint64_t mask = 0;
      const std::size_t lw = static_cast<std::size_t>(lowest) >> 6;
      if (w > lw)
        mask = ~0ull;
      else if (w == lw)
        mask = ~0ull << (static_cast<unsigned>(lowest) & 63u);
      const std::uint64_t h = r & mask;
      if (h != 0) first_hi = static_cast<int>(w * 64) + std::countr_zero(h);
    }
  }

  const int g = first_hi >= 0 ? first_hi : first_req;
  if (g >= 0) {
    // Any request: the pointer loads the (one-hot) grant.
    std::fill(ptr_.begin(), ptr_.end(), 0);
    ptr_[static_cast<std::size_t>(g) >> 6] =
        1ull << (static_cast<unsigned>(g) & 63u);
    grant_[static_cast<std::size_t>(g) >> 6] =
        1ull << (static_cast<unsigned>(g) & 63u);
  }
  return g;
}

int PrefixArbiter::do_step(std::uint64_t requests) {
  std::fill(req_scratch_.begin(), req_scratch_.end(), 0);
  req_scratch_[0] = requests;
  return step_wide_impl(req_scratch_);
}

std::uint64_t PrefixArbiter::state_bits() const {
  RCARB_CHECK(n_ <= 64, "packed state requires <= 64 state bits");
  return ptr_[0];
}

void PrefixArbiter::inject_state_bit(int bit) {
  RCARB_CHECK(bit >= 0 && bit < n_, "state bit out of range");
  ptr_[static_cast<std::size_t>(bit) >> 6] ^=
      1ull << (static_cast<unsigned>(bit) & 63u);
}

// ---------------------------------------------------------- FlatWideArbiter

FlatWideArbiter::FlatWideArbiter(int n) : Arbiter(WideTag{}, n) {
  grant_.assign(word_count(n), 0);
  req_scratch_.assign(word_count(n), 0);
}

void FlatWideArbiter::reset() {
  pos_ = 0;
  held_ = false;
  std::fill(grant_.begin(), grant_.end(), 0);
}

std::string FlatWideArbiter::describe() const {
  return "flat-rr-wide(n=" + std::to_string(n_) + ")";
}

int FlatWideArbiter::step_wide(const std::vector<std::uint64_t>& requests) {
  const int g = step_wide_impl(requests);
  notify_wide(requests, g);
  return g;
}

int FlatWideArbiter::step_wide_impl(
    const std::vector<std::uint64_t>& requests) {
  RCARB_CHECK(requests.size() >= grant_.size(),
              "request vector narrower than the arbiter");
  std::fill(grant_.begin(), grant_.end(), 0);

  // The Fig. 5 chain scans cyclically from the priority index; the holder
  // sits at pos_, so while it keeps requesting it is re-found first (the
  // Ci hold).  Scan words, masking bits below the start and past n.
  const std::size_t words = grant_.size();
  int g = -1;
  for (std::size_t k = 0; k <= words && g < 0; ++k) {
    // Pass 1 covers [pos_, n); pass 2 wraps to [0, pos_).
    const std::size_t w = (static_cast<std::size_t>(pos_) / 64 + k) % words;
    std::uint64_t r = requests[w];
    if (k == 0) r &= ~0ull << (static_cast<unsigned>(pos_) & 63u);
    if (w + 1 == words && (n_ & 63) != 0) r &= (1ull << (n_ & 63)) - 1;
    if (k == words)
      r &= (static_cast<unsigned>(pos_) & 63u) != 0
               ? (1ull << (static_cast<unsigned>(pos_) & 63u)) - 1
               : 0;
    if (r != 0) g = static_cast<int>(w * 64) + std::countr_zero(r);
  }

  if (g >= 0) {
    pos_ = g;
    held_ = true;
    grant_[static_cast<std::size_t>(g) >> 6] |=
        1ull << (static_cast<unsigned>(g) & 63u);
  } else if (held_) {
    // Release to idle: the chain retires Ci -> F(i+1), rotating priority
    // past the finished holder.
    pos_ = (pos_ + 1) % n_;
    held_ = false;
  }
  return g;
}

int FlatWideArbiter::do_step(std::uint64_t requests) {
  std::fill(req_scratch_.begin(), req_scratch_.end(), 0);
  req_scratch_[0] = requests;
  return step_wide_impl(req_scratch_);
}

std::unique_ptr<Arbiter> make_scalable_arbiter(ArbiterKind kind, int n,
                                               int arity) {
  switch (kind) {
    case ArbiterKind::kFlatFsm:
      if (n <= 64) return std::make_unique<RoundRobinArbiter>(n);
      return std::make_unique<FlatWideArbiter>(n);
    case ArbiterKind::kHierarchical:
      return std::make_unique<HierarchicalArbiter>(n, arity);
    case ArbiterKind::kPrefix:
      return std::make_unique<PrefixArbiter>(n);
  }
  RCARB_CHECK(false, "unknown arbiter kind");
  return nullptr;
}

// ---------------------------------------------------------- AIG generators

aig::Aig build_hierarchical_aig(int n, int arity) {
  const HierShape shape = make_hier_shape(n, arity);
  const auto un = static_cast<std::size_t>(n);
  aig::Aig g;
  std::vector<aig::Lit> req(un);
  for (std::size_t i = 0; i < un; ++i)
    req[i] = g.add_input(signal_name("req", i));
  const int nbits = shape.num_state_bits();
  std::vector<aig::Lit> state(static_cast<std::size_t>(nbits));
  for (std::size_t b = 0; b < state.size(); ++b)
    state[b] = g.add_input(signal_name("state", b));
  const int held_off = shape.ptr_bits_total;
  const aig::Lit valid = state[static_cast<std::size_t>(nbits - 1)];
  const auto& nodes = shape.nodes;

  // Bottom-up any-request per node (reverse pre-order sees children first).
  std::vector<aig::Lit> any(nodes.size(), aig::kConstFalse);
  auto child_any = [&](int c) {
    return c < 0 ? req[static_cast<std::size_t>(~c)]
                 : any[static_cast<std::size_t>(c)];
  };
  for (std::size_t k = nodes.size(); k-- > 0;) {
    std::vector<aig::Lit> lits;
    for (const int c : nodes[k].child) lits.push_back(child_any(c));
    any[k] = g.lor_many(std::move(lits));
  }

  // Hold path: heldv1h_i = valid & (held == i), folded left-to-right from
  // the MSB so structural hashing shares the decode as a binary trie —
  // every trie node feeds exactly its two extensions, keeping register
  // fanout constant instead of O(N) (which would poison the STA's
  // per-fanout net delay on this reg-to-reg path).
  std::vector<aig::Lit> hgr(un);
  for (std::size_t i = 0; i < un; ++i) {
    aig::Lit acc = valid;
    for (int b = shape.held_bits - 1; b >= 0; --b) {
      const aig::Lit hb = state[static_cast<std::size_t>(held_off + b)];
      acc = g.land(acc, ((i >> b) & 1u) != 0 ? hb : aig::lit_not(hb));
    }
    hgr[i] = g.land(acc, req[i]);
  }
  const aig::Lit hold_active = g.lor_many(hgr);

  // Top-down selection: the root arbitrates only when no hold is active;
  // each node picks the first requesting slot cyclically from its pointer
  // and forwards the select to that child.
  std::vector<aig::Lit> sel(nodes.size(), aig::kConstFalse);
  if (!nodes.empty()) sel[0] = aig::lit_not(hold_active);
  std::vector<aig::Lit> tree_grant(un, aig::kConstFalse);
  std::vector<aig::Lit> next_state(static_cast<std::size_t>(nbits));
  for (std::size_t k = 0; k < nodes.size(); ++k) {
    const HierShape::Node& nd = nodes[k];
    const int m = static_cast<int>(nd.child.size());
    const int slots = 1 << nd.ptr_bits;
    std::vector<aig::Lit> pv(static_cast<std::size_t>(slots));
    for (int s = 0; s < slots; ++s) {
      std::vector<aig::Lit> lits;
      for (int b = 0; b < nd.ptr_bits; ++b) {
        const aig::Lit pb =
            state[static_cast<std::size_t>(nd.first_state_bit + b)];
        lits.push_back(((s >> b) & 1) != 0 ? pb : aig::lit_not(pb));
      }
      pv[static_cast<std::size_t>(s)] = g.land_many(std::move(lits));
    }
    std::vector<aig::Lit> cs(static_cast<std::size_t>(m));
    for (int c = 0; c < m; ++c) {
      // pick(c) = OR over pointer values s of: pointer at s, and no real
      // slot cyclically strictly earlier than c (counting from s, where
      // slot s itself is earliest) has a request.  Padded slots (>= m)
      // never request, so every pointer code is legal.
      std::vector<aig::Lit> terms;
      for (int s = 0; s < slots; ++s) {
        std::vector<aig::Lit> chain{pv[static_cast<std::size_t>(s)]};
        const int dc = (c - s + slots) & (slots - 1);
        for (int t = 0; t < m; ++t)
          if (((t - s + slots) & (slots - 1)) < dc)
            chain.push_back(aig::lit_not(
                child_any(nd.child[static_cast<std::size_t>(t)])));
        terms.push_back(g.land_many(std::move(chain)));
      }
      const aig::Lit pick =
          g.land(child_any(nd.child[static_cast<std::size_t>(c)]),
                 g.lor_many(std::move(terms)));
      cs[static_cast<std::size_t>(c)] = g.land(sel[k], pick);
      const int child = nd.child[static_cast<std::size_t>(c)];
      if (child < 0)
        tree_grant[static_cast<std::size_t>(~child)] =
            cs[static_cast<std::size_t>(c)];
      else
        sel[static_cast<std::size_t>(child)] = cs[static_cast<std::size_t>(c)];
    }
    // Ping-pong rotation: a granted node's pointer loads (winning slot +
    // 1) mod slots; everyone else holds.
    const aig::Lit granted = g.lor_many(cs);
    for (int b = 0; b < nd.ptr_bits; ++b) {
      std::vector<aig::Lit> hot;
      for (int c = 0; c < m; ++c)
        if (((((c + 1) & (slots - 1)) >> b) & 1) != 0)
          hot.push_back(cs[static_cast<std::size_t>(c)]);
      const std::size_t bit = static_cast<std::size_t>(nd.first_state_bit + b);
      next_state[bit] = g.mux(granted, g.lor_many(std::move(hot)), state[bit]);
    }
  }

  aig::Lit new_grant;
  if (nodes.empty()) {
    // n == 1: no tree; the sole port wins whenever it requests.
    tree_grant[0] = g.land(aig::lit_not(hold_active), req[0]);
    new_grant = tree_grant[0];
  } else {
    new_grant = g.lor_many(tree_grant);
  }
  for (int b = 0; b < shape.held_bits; ++b) {
    std::vector<aig::Lit> hot;
    for (std::size_t i = 0; i < un; ++i)
      if (((i >> b) & 1u) != 0) hot.push_back(tree_grant[i]);
    const std::size_t bit = static_cast<std::size_t>(held_off + b);
    next_state[bit] =
        g.mux(new_grant, g.lor_many(std::move(hot)), state[bit]);
  }
  next_state[static_cast<std::size_t>(nbits - 1)] =
      g.lor(hold_active, new_grant);

  for (std::size_t b = 0; b < next_state.size(); ++b)
    g.add_output("ns" + std::to_string(b), next_state[b]);
  for (std::size_t i = 0; i < un; ++i)
    g.add_output(signal_name("grant", i), g.lor(hgr[i], tree_grant[i]));
  return g;
}

aig::Aig build_prefix_aig(int n) {
  RCARB_CHECK(n >= 1 && n <= kMaxWideInputs,
              "prefix arbiter size must be in [1, kMaxWideInputs]");
  const auto un = static_cast<std::size_t>(n);
  aig::Aig g;
  std::vector<aig::Lit> req(un);
  for (std::size_t i = 0; i < un; ++i)
    req[i] = g.add_input(signal_name("req", i));
  std::vector<aig::Lit> ptr(un);
  for (std::size_t b = 0; b < un; ++b)
    ptr[b] = g.add_input(signal_name("state", b));

  // Thermometer mask T_i = "some pointer bit at or below i", masked
  // requests hi = req & T, and Kogge-Stone prefix/suffix OR networks over
  // both vectors.  The per-index forms P[i-1] | x_i | S[i+1] decompose the
  // *global* any(x) so no single net fans out to all n sinks — every net
  // here has constant fanout, which is what keeps the STA's fanout-priced
  // wire delay (and hence fmax) logarithmic in N.
  const std::vector<aig::Lit> T = g.lor_prefix(ptr);
  std::vector<aig::Lit> hi(un);
  for (std::size_t i = 0; i < un; ++i) hi[i] = g.land(req[i], T[i]);
  const std::vector<aig::Lit> P = g.lor_prefix(hi);
  const std::vector<aig::Lit> Q = g.lor_prefix(req);
  const std::vector<aig::Lit> SR = g.lor_suffix(hi);
  const std::vector<aig::Lit> SQ = g.lor_suffix(req);

  std::vector<aig::Lit> grant(un);
  std::vector<aig::Lit> ns(un);
  for (std::size_t i = 0; i < un; ++i) {
    const aig::Lit first_hi =
        i == 0 ? hi[0] : g.land(hi[i], aig::lit_not(P[i - 1]));
    const aig::Lit first_req =
        i == 0 ? req[0] : g.land(req[i], aig::lit_not(Q[i - 1]));
    const aig::Lit any_hi =
        i + 1 < un ? g.lor(P[i], SR[i + 1]) : P[i];
    const aig::Lit any_req =
        i + 1 < un ? g.lor(Q[i], SQ[i + 1]) : Q[i];
    grant[i] = g.lor(first_hi, g.land(first_req, aig::lit_not(any_hi)));
    ns[i] = g.lor(grant[i], g.land(ptr[i], aig::lit_not(any_req)));
  }

  for (std::size_t b = 0; b < un; ++b)
    g.add_output("ns" + std::to_string(b), ns[b]);
  for (std::size_t i = 0; i < un; ++i)
    g.add_output(signal_name("grant", i), grant[i]);
  return g;
}

aig::Aig build_flat_onehot_aig(int n) {
  RCARB_CHECK(n >= 1 && n <= kMaxWideInputs,
              "flat one-hot arbiter size must be in [1, kMaxWideInputs]");
  const auto un = static_cast<std::size_t>(n);
  aig::Aig g;
  std::vector<aig::Lit> req(un);
  for (std::size_t i = 0; i < un; ++i)
    req[i] = g.add_input(signal_name("req", i));
  std::vector<aig::Lit> state(2 * un);
  for (std::size_t b = 0; b < 2 * un; ++b)
    state[b] = g.add_input(signal_name("state", b));

  // The same rotating-priority-chain structure core/structural.cpp builds
  // from explicit one-hot state codes, without its n <= 32 code-word cap:
  // present[s] is directly state bit s (bit i = Fi, bit n+i = Ci).
  std::vector<aig::Lit> at(un);
  for (std::size_t i = 0; i < un; ++i)
    at[i] = g.lor(state[i], state[un + i]);

  std::vector<aig::Lit> reach(2 * un);
  for (std::size_t t = 0; t < 2 * un; ++t) {
    const std::size_t p = t % un;
    aig::Lit carried = aig::kConstFalse;
    if (t > 0) {
      const std::size_t prev = (t - 1) % un;
      carried = g.land(reach[t - 1], aig::lit_not(req[prev]));
    }
    reach[t] = g.lor(at[p], carried);
  }

  std::vector<aig::Lit> grant(un);
  for (std::size_t j = 0; j < un; ++j)
    grant[j] = g.land(req[j], reach[j + un]);

  const aig::Lit any_req = g.lor_many(req);
  std::vector<aig::Lit> next_state(2 * un);
  for (std::size_t j = 0; j < un; ++j) {
    const std::size_t c_prev = un + (j + un - 1) % un;
    next_state[j] = g.land(aig::lit_not(any_req),
                           g.lor(state[j], state[c_prev]));
    next_state[un + j] = grant[j];
  }

  for (std::size_t b = 0; b < 2 * un; ++b)
    g.add_output("ns" + std::to_string(b), next_state[b]);
  for (std::size_t j = 0; j < un; ++j)
    g.add_output(signal_name("grant", j), grant[j]);
  return g;
}

std::vector<bool> scalable_reset_bits(ArbiterKind kind, int n, int arity) {
  switch (kind) {
    case ArbiterKind::kFlatFsm: {
      std::vector<bool> bits(2 * static_cast<std::size_t>(n), false);
      bits[0] = true;  // F0
      return bits;
    }
    case ArbiterKind::kHierarchical: {
      const HierShape shape = make_hier_shape(n, arity);
      return std::vector<bool>(
          static_cast<std::size_t>(shape.num_state_bits()), false);
    }
    case ArbiterKind::kPrefix: {
      std::vector<bool> bits(static_cast<std::size_t>(n), false);
      bits[0] = true;  // pointer at port 0
      return bits;
    }
  }
  RCARB_CHECK(false, "unknown arbiter kind");
  return {};
}

}  // namespace rcarb::core
