#include "core/insertion.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace rcarb::core {

const std::string& Binding::resource_name(int resource) const {
  RCARB_CHECK(resource >= 0 &&
                  static_cast<std::size_t>(resource) < num_resources(),
              "resource id out of range");
  if (resource_is_bank(resource))
    return bank_names[static_cast<std::size_t>(resource)];
  return phys_channel_names[static_cast<std::size_t>(resource) - num_banks];
}

int ArbiterInstance::port_of(tg::TaskId t) const {
  for (std::size_t i = 0; i < ports.size(); ++i)
    if (ports[i] == t) return static_cast<int>(i);
  return -1;
}

std::pair<int, int> ArbitrationPlan::port_lookup(int resource,
                                                 tg::TaskId t) const {
  if (resource < 0 ||
      static_cast<std::size_t>(resource) >= arbiters_of_resource.size())
    return {-1, -1};
  for (int ai : arbiters_of_resource[static_cast<std::size_t>(resource)]) {
    const int port = arbiters[static_cast<std::size_t>(ai)].port_of(t);
    if (port >= 0) return {ai, port};
  }
  return {-1, -1};
}

namespace {

using tg::Op;
using tg::OpCode;
using tg::TaskId;

/// Arbitrated resource an op drives, or -1.  Receives do not drive the
/// shared wires (the receiver register is local to the destination task).
int driven_resource(const Op& op, const Binding& binding) {
  switch (op.code) {
    case OpCode::kLoad:
    case OpCode::kStore: {
      const auto seg = static_cast<std::size_t>(op.b);
      RCARB_CHECK(seg < binding.segment_to_bank.size(),
                  "op references segment outside the binding");
      const int bank = binding.segment_to_bank[seg];
      return bank < 0 ? -1 : binding.bank_resource(bank);
    }
    case OpCode::kSend: {
      const auto ch = static_cast<std::size_t>(op.b);
      RCARB_CHECK(ch < binding.channel_to_phys.size(),
                  "op references channel outside the binding");
      const int phys = binding.channel_to_phys[ch];
      return phys < 0 ? -1 : binding.channel_resource(phys);
    }
    default:
      return -1;
  }
}

/// True if the op must terminate any held burst: control boundaries,
/// blocking receives, and long computations.
bool is_burst_boundary(const Op& op, const InsertionOptions& options) {
  switch (op.code) {
    case OpCode::kLoopBegin:
    case OpCode::kLoopBeginVar:
    case OpCode::kLoopEnd:
    case OpCode::kRecv:
    case OpCode::kHalt:
      return true;
    case OpCode::kCompute:
      return op.imm > options.hold_compute_limit;
    default:
      return false;
  }
}

/// Active tasks that drive `resource` anywhere in their programs, in
/// TaskId order.
std::vector<TaskId> accessors_of(const tg::TaskGraph& graph,
                                 const Binding& binding, int resource,
                                 const std::vector<bool>& active) {
  std::vector<TaskId> out;
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    if (!active[t]) continue;
    for (const Op& op : graph.task(t).program.ops()) {
      if (driven_resource(op, binding) == resource) {
        out.push_back(t);
        break;
      }
    }
  }
  return out;
}

}  // namespace

InsertionResult insert_arbitration(const tg::TaskGraph& graph,
                                   const Binding& binding,
                                   const InsertionOptions& options,
                                   const std::vector<tg::TaskId>* active_tasks) {
  graph.validate();
  std::vector<bool> active(graph.num_tasks(), active_tasks == nullptr);
  if (active_tasks != nullptr)
    for (TaskId t : *active_tasks) {
      RCARB_CHECK(t < graph.num_tasks(), "active task out of range");
      active[t] = true;
    }
  RCARB_CHECK(binding.segment_to_bank.size() == graph.num_segments(),
              "binding segment table does not match the graph");
  RCARB_CHECK(binding.channel_to_phys.size() == graph.num_channels(),
              "binding channel table does not match the graph");
  RCARB_CHECK(binding.bank_names.size() == binding.num_banks &&
                  binding.phys_channel_names.size() ==
                      binding.num_phys_channels,
              "binding resource names incomplete");
  RCARB_CHECK(options.batch_m >= 1, "batch_m must be at least 1");
  RCARB_CHECK(options.retry_timeout >= 0, "negative retry_timeout");
  RCARB_CHECK(options.retry_backoff_limit >= 1,
              "retry_backoff_limit must be at least 1");

  InsertionResult result{graph, {}};
  ArbitrationPlan& plan = result.plan;
  plan.arbiters_of_resource.assign(binding.num_resources(), {});
  plan.retry_timeout = options.retry_timeout;
  plan.retry_backoff_limit = options.retry_backoff_limit;

  // ---- Plan arbiters per shared resource. ----
  // needs_port[task][resource]: accesses must follow the req/grant protocol.
  std::vector<std::vector<bool>> needs_port(
      graph.num_tasks(), std::vector<bool>(binding.num_resources(), false));

  for (int r = 0; r < static_cast<int>(binding.num_resources()); ++r) {
    const std::vector<TaskId> accessors =
        accessors_of(graph, binding, r, active);
    if (accessors.size() < 2) continue;  // sole user: implicit arbitration

    // Line merges are required whenever wires are shared, arbiter or not.
    const auto merges =
        binding.resource_is_bank(r)
            ? plan_memory_lines(binding.resource_name(r), accessors.size())
            : plan_channel_lines(binding.resource_name(r), accessors.size());
    plan.line_merges.insert(plan.line_merges.end(), merges.begin(),
                            merges.end());

    // Group the accessors into concurrency components.  Without elision
    // everyone lands in one group ("assume all tasks execute in parallel",
    // Sec. 5); with it, control-serialized tasks never share an arbiter.
    std::vector<std::vector<TaskId>> groups;
    if (options.elide_serialized) {
      // Union-find over the may-overlap relation.
      std::vector<std::size_t> parent(accessors.size());
      for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
      auto find = [&](std::size_t x) {
        while (parent[x] != x) x = parent[x] = parent[parent[x]];
        return x;
      };
      for (std::size_t i = 0; i < accessors.size(); ++i)
        for (std::size_t j = i + 1; j < accessors.size(); ++j)
          if (!graph.serialized(accessors[i], accessors[j]))
            parent[find(i)] = find(j);
      std::vector<std::vector<TaskId>> by_root(accessors.size());
      for (std::size_t i = 0; i < accessors.size(); ++i)
        by_root[find(i)].push_back(accessors[i]);
      for (auto& g : by_root)
        if (!g.empty()) groups.push_back(std::move(g));
    } else {
      groups.push_back(accessors);
    }

    bool any_arbiter = false;
    for (std::vector<TaskId>& ports : groups) {
      if (ports.size() < 2) {
        plan.stats.elided_ports += ports.size();
        continue;
      }
      ArbiterInstance inst;
      inst.resource = r;
      inst.resource_name = binding.resource_name(r);
      inst.ports = std::move(ports);
      inst.policy = options.policy;
      inst.kind = resolve_arbiter_choice(options.arbiter_kind,
                                         static_cast<int>(inst.ports.size()),
                                         options.arbiter_fmax_budget_mhz,
                                         options.arbiter_arity);
      plan.arbiters_of_resource[static_cast<std::size_t>(r)].push_back(
          static_cast<int>(plan.arbiters.size()));
      ++plan.stats.arbiters;
      plan.stats.arbiter_ports += inst.ports.size();
      for (TaskId t : inst.ports)
        needs_port[t][static_cast<std::size_t>(r)] = true;
      plan.arbiters.push_back(std::move(inst));
      any_arbiter = true;
    }
    if (!any_arbiter) ++plan.stats.elided_resources;
  }

  // ---- Fig. 8 rewrite of every affected task. ----
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    if (!active[t]) continue;
    const tg::Program& in = graph.task(t).program;
    bool any_port = false;
    for (std::size_t r = 0; r < binding.num_resources(); ++r)
      any_port = any_port || needs_port[t][r];
    if (!any_port) continue;

    tg::Program out;
    int held = -1;       // resource currently acquired
    int run_count = 0;   // accesses since the acquire
    const auto release_held = [&] {
      if (held >= 0) {
        out.release(held);
        held = -1;
        run_count = 0;
      }
    };

    for (const Op& op : in.ops()) {
      const int r = driven_resource(op, binding);
      const bool arbitrated =
          r >= 0 && needs_port[t][static_cast<std::size_t>(r)];

      if (is_burst_boundary(op, options)) {
        release_held();
        out.append(op);
        continue;
      }
      // A send can block on receiver backpressure; it must never do so
      // while holding a grant on some other resource.
      if (op.code == OpCode::kSend && held >= 0 && held != r) release_held();
      if (!arbitrated) {
        out.append(op);
        continue;
      }
      if (held != r || run_count >= options.batch_m) {
        release_held();
        out.acquire(r);
        held = r;
        run_count = 0;
        ++plan.stats.wrapped_bursts;
      }
      out.append(op);
      ++run_count;
    }
    release_held();

    result.graph.task(t).program = std::move(out);
    ++plan.stats.modified_tasks;
  }

  result.graph.validate();
  return result;
}

}  // namespace rcarb::core
