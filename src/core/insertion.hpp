// Automatic arbiter insertion (paper Secs. 2, 4.3, 5).
//
// Input: a taskgraph plus a resource Binding (tasks->PEs, logical segments->
// physical banks, logical channels->physical channels) produced by the
// partitioners.  Output: a rewritten taskgraph whose programs follow the
// Fig. 8 protocol (acquire / accesses / release, re-requesting every M
// accesses) and an ArbitrationPlan listing the arbiter instances and the
// shared-line merges.
//
// The Sec. 5 optimization is implemented as elision: tasks that are
// serialized by control dependencies against every other accessor of a
// resource are excluded from that resource's arbiter — they only need safe
// line defaults.  If serialization covers all accessors, no arbiter is
// inserted at all.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/arbiter_factory.hpp"
#include "core/line_merge.hpp"
#include "core/policy.hpp"
#include "taskgraph/taskgraph.hpp"

namespace rcarb::core {

/// Where everything lives physically.  Produced by src/partition.
struct Binding {
  std::vector<int> task_to_pe;       // per TaskId
  std::vector<int> segment_to_bank;  // per SegmentId; -1 = unmapped
  std::vector<int> channel_to_phys;  // per ChannelId; -1 = direct/intra-PE
  std::size_t num_banks = 0;
  std::size_t num_phys_channels = 0;
  std::vector<std::string> bank_names;          // size num_banks
  std::vector<std::string> phys_channel_names;  // size num_phys_channels

  /// Unified shared-resource ids: banks first, then physical channels.
  [[nodiscard]] int bank_resource(int bank) const { return bank; }
  [[nodiscard]] int channel_resource(int phys) const {
    return static_cast<int>(num_banks) + phys;
  }
  [[nodiscard]] std::size_t num_resources() const {
    return num_banks + num_phys_channels;
  }
  [[nodiscard]] bool resource_is_bank(int resource) const {
    return resource >= 0 && resource < static_cast<int>(num_banks);
  }
  [[nodiscard]] const std::string& resource_name(int resource) const;
};

/// One arbiter instance guarding one physical resource.
struct ArbiterInstance {
  int resource = -1;
  std::string resource_name;
  std::vector<tg::TaskId> ports;  // request-line order
  Policy policy = Policy::kRoundRobin;
  /// Round-robin structure, resolved at insertion time (never kAuto) so
  /// the simulator instantiates — and the synthesis flow characterizes —
  /// the matching AIG generator.
  ArbiterKind kind = ArbiterKind::kFlatFsm;

  /// Request index of a task, or -1 if the task has no port.
  [[nodiscard]] int port_of(tg::TaskId t) const;
};

struct InsertionOptions {
  /// Fig. 8's M: a task re-requests after this many consecutive accesses so
  /// no peer waits unboundedly.
  int batch_m = 2;
  /// Sec. 5 optimization: tasks serialized by control dependences never
  /// contend, so a resource's accessors split into concurrency components
  /// — one (smaller) arbiter per component, none for singletons.  Off by
  /// default: the paper's main flow "assumed all tasks execute in
  /// parallel" and inserted one arbiter over all accessors.
  bool elide_serialized = false;
  Policy policy = Policy::kRoundRobin;
  /// A compute op longer than this many cycles ends a held burst (holding a
  /// grant across long computation starves peers).
  std::int64_t hold_compute_limit = 8;
  /// Protocol-level retry (robustness extension of Fig. 8): a task whose
  /// Req sees no Grant within this many cycles deasserts Req and re-asserts
  /// after a bounded exponential backoff, instead of waiting forever on a
  /// possibly-stuck line.  0 keeps the paper's wait-forever protocol.
  int retry_timeout = 0;
  /// Backoff cap in cycles (backoff doubles per consecutive retry of the
  /// same burst, starting at 1, and never exceeds this).
  int retry_backoff_limit = 64;
  /// Round-robin arbiter structure recorded on every instance.  kAuto
  /// resolves per instance from its port count and
  /// arbiter_fmax_budget_mhz (required > 0) via the pre-characterized
  /// area/fmax cache.
  ArbiterChoice arbiter_kind = ArbiterChoice::kFlatFsm;
  int arbiter_arity = 4;  // tree arity for kHierarchical
  double arbiter_fmax_budget_mhz = 0.0;
};

struct InsertionStats {
  std::size_t arbiters = 0;
  std::size_t arbiter_ports = 0;
  std::size_t elided_resources = 0;  // shared but fully serialized
  std::size_t elided_ports = 0;      // accessors excluded by serialization
  std::size_t wrapped_bursts = 0;    // acquire/release pairs inserted
  std::size_t modified_tasks = 0;
};

/// The complete arbitration plan for one binding.  A resource may carry
/// several arbiters after elision (one per concurrency component).
struct ArbitrationPlan {
  std::vector<ArbiterInstance> arbiters;
  std::vector<LineMergePlan> line_merges;
  std::vector<std::vector<int>> arbiters_of_resource;  // per resource id
  InsertionStats stats;
  /// Retry protocol parameters every rewritten task obeys (from
  /// InsertionOptions; the simulator enforces them).  0 = wait forever.
  int retry_timeout = 0;
  int retry_backoff_limit = 64;

  /// The arbiter index and request-port of task `t` on `resource`, or
  /// {-1, -1} when the task's accesses are unarbitrated there.
  [[nodiscard]] std::pair<int, int> port_lookup(int resource,
                                                tg::TaskId t) const;
};

struct InsertionResult {
  tg::TaskGraph graph;  // rewritten copy (acquire/release inserted)
  ArbitrationPlan plan;
};

/// Runs the full pass.  The input graph must validate; the binding must
/// cover every task/segment/channel the programs touch.  `active_tasks`
/// restricts contention analysis and rewriting to one temporal partition's
/// tasks; nullptr means the whole graph executes together.
[[nodiscard]] InsertionResult insert_arbitration(
    const tg::TaskGraph& graph, const Binding& binding,
    const InsertionOptions& options,
    const std::vector<tg::TaskId>* active_tasks = nullptr);

}  // namespace rcarb::core
