#include "core/policy.hpp"

#include <bit>

#include "support/check.hpp"

namespace rcarb::core {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::kRoundRobin: return "round-robin";
    case Policy::kFifo: return "fifo";
    case Policy::kPriority: return "priority";
    case Policy::kRandom: return "random";
  }
  return "?";
}

Arbiter::Arbiter(int n) : n_(n) {
  // N=1 is degenerate (the sole requester always wins) but well-defined;
  // the self-checking model checks cover it.
  RCARB_CHECK(n >= 1 && n <= 64, "arbiter size must be in [1, 64]");
}

Arbiter::Arbiter(WideTag, int n) : n_(n) {
  RCARB_CHECK(n >= 1 && n <= kMaxWideInputs,
              "wide arbiter size must be in [1, kMaxWideInputs]");
}

int Arbiter::step_wide(const std::vector<std::uint64_t>& requests) {
  RCARB_CHECK(n_ <= 64,
              "this arbiter kind is word-width; widths past 64 ports need a "
              "wide kind (core/hier.hpp)");
  return step(requests.empty() ? 0 : requests[0]);
}

// ---------------------------------------------------------------- RoundRobin

RoundRobinArbiter::RoundRobinArbiter(int n, RoundRobinOptions options)
    : Arbiter(n), options_(options) {
  RCARB_CHECK(options.max_hold_cycles >= 0, "negative max_hold_cycles");
}

RoundRobinArbiter::NextState RoundRobinArbiter::step_one_state(
    int i, bool in_c, std::uint64_t requests, int* granted) const {
  *granted = -1;
  // Fig. 5: no requests — Fi stays, Ci retires to F(i+1).
  if (requests == 0) return {in_c ? (i + 1) % n_ : i, false};
  // Cyclic scan from the priority index i (identical for Ci and Fi).
  for (int k = 0; k < n_; ++k) {
    const int j = (i + k) % n_;
    if ((requests >> j) & 1u) {
      *granted = j;
      return {j, true};
    }
  }
  RCARB_ASSERT(false, "unreachable: requests were nonzero");
  return {i, in_c};
}

int RoundRobinArbiter::do_step(std::uint64_t requests) {
  grant_mask_ = 0;

  if (!state_legal()) {
    if (options_.harden) {
      // Hardened register bank: any non-one-hot code loads the reset state
      // F0 — the safe all-free state — and arbitration resumes in the same
      // step (recovery within one cycle, matching the hardened netlist).
      f_bits_ = 1;
      c_bits_ = 0;
      held_cycles_ = 0;
      ++recoveries_;
    } else if (f_bits_ == 0 && c_bits_ == 0) {
      // Zero-hot: no state recognizer fires; the machine is dead.
      return -1;
    } else {
      // Multi-hot: every hot state's single-literal recognizer fires, so
      // the register ORs all their successors and every scan winner is
      // granted at once — mutual exclusion is gone.  Faithful to the
      // unhardened one-hot netlist.
      std::uint64_t next_f = 0, next_c = 0;
      for (int b = 0; b < 2 * n_; ++b) {
        const bool in_c = b >= n_;
        const int i = in_c ? b - n_ : b;
        if (!(((in_c ? c_bits_ : f_bits_) >> i) & 1u)) continue;
        int g = -1;
        const NextState ns = step_one_state(i, in_c, requests, &g);
        (ns.in_c ? next_c : next_f) |= 1ull << ns.index;
        if (g >= 0) grant_mask_ |= 1ull << g;
      }
      f_bits_ = next_f;
      c_bits_ = next_c;
      held_cycles_ = 0;
      return grant_mask_ == 0 ? -1 : std::countr_zero(grant_mask_);
    }
  }

  const bool in_c = c_bits_ != 0;
  const int index = std::countr_zero(in_c ? c_bits_ : f_bits_);

  // Future-work preemption: a saturated holder loses its turn when someone
  // else is waiting; the scan then starts past it.
  if (in_c && requests != 0 && options_.max_hold_cycles > 0 &&
      held_cycles_ >= options_.max_hold_cycles &&
      (requests & ~(1ull << index)) != 0) {
    const int start = (index + 1) % n_;
    for (int k = 0; k < n_; ++k) {
      const int j = (start + k) % n_;
      if (j != index && ((requests >> j) & 1u)) {
        f_bits_ = 0;
        c_bits_ = 1ull << j;
        held_cycles_ = 1;
        grant_mask_ = 1ull << j;
        return j;
      }
    }
  }

  int granted = -1;
  const NextState next = step_one_state(index, in_c, requests, &granted);
  if (granted < 0) {
    held_cycles_ = 0;
  } else {
    held_cycles_ = (in_c && granted == index) ? held_cycles_ + 1 : 1;
    grant_mask_ = 1ull << granted;
  }
  f_bits_ = next.in_c ? 0 : (1ull << next.index);
  c_bits_ = next.in_c ? (1ull << next.index) : 0;
  return granted;
}

void RoundRobinArbiter::reset() {
  f_bits_ = 1;
  c_bits_ = 0;
  grant_mask_ = 0;
  held_cycles_ = 0;
}

std::string RoundRobinArbiter::describe() const {
  return "round-robin(" + std::to_string(n_) + ")";
}

std::string RoundRobinArbiter::state_name() const {
  RCARB_CHECK(state_legal(), "state_name on an illegal register");
  const bool in_c = c_bits_ != 0;
  return (in_c ? "C" : "F") +
         std::to_string(std::countr_zero(in_c ? c_bits_ : f_bits_));
}

std::uint64_t RoundRobinArbiter::state_bits() const {
  RCARB_CHECK(n_ <= 32, "state_bits requires 2n <= 64");
  return f_bits_ | (c_bits_ << n_);
}

bool RoundRobinArbiter::state_legal() const {
  return std::popcount(f_bits_) + std::popcount(c_bits_) == 1;
}

void RoundRobinArbiter::inject_bit_flip(int bit) {
  RCARB_CHECK(bit >= 0 && bit < 2 * n_, "state bit out of range");
  if (bit < n_)
    f_bits_ ^= 1ull << bit;
  else
    c_bits_ ^= 1ull << (bit - n_);
}

// ---------------------------------------------------------------------- FIFO

FifoArbiter::FifoArbiter(int n) : Arbiter(n) {}

int FifoArbiter::do_step(std::uint64_t requests) {
  // Newly asserted requests join the queue in index order (simultaneous
  // arrivals tie-break by index, as a hardware FIFO arbiter would).
  for (int t = 0; t < n_; ++t) {
    const std::uint64_t bit = 1ull << t;
    if ((requests & bit) && !(enqueued_ & bit) && holder_ != t) {
      queue_.push_back(t);
      enqueued_ |= bit;
    }
  }

  // Holder keeps the grant while it requests.
  if (holder_ >= 0 && ((requests >> holder_) & 1u)) return holder_;
  holder_ = -1;

  // Otherwise serve the oldest still-live request.
  while (!queue_.empty()) {
    const int t = queue_.front();
    queue_.pop_front();
    enqueued_ &= ~(1ull << t);
    if ((requests >> t) & 1u) {
      holder_ = t;
      return t;
    }
  }
  return -1;
}

void FifoArbiter::reset() {
  queue_.clear();
  enqueued_ = 0;
  holder_ = -1;
}

std::string FifoArbiter::describe() const {
  return "fifo(" + std::to_string(n_) + ")";
}

// ------------------------------------------------------------------ Priority

PriorityArbiter::PriorityArbiter(int n) : Arbiter(n) {}

int PriorityArbiter::do_step(std::uint64_t requests) {
  if (holder_ >= 0 && ((requests >> holder_) & 1u)) return holder_;
  holder_ = -1;
  if (requests == 0) return -1;
  holder_ = std::countr_zero(requests);  // lowest index = highest priority
  return holder_;
}

void PriorityArbiter::reset() { holder_ = -1; }

std::string PriorityArbiter::describe() const {
  return "priority(" + std::to_string(n_) + ")";
}

// -------------------------------------------------------------------- Random

RandomArbiter::RandomArbiter(int n, std::uint64_t seed)
    : Arbiter(n), seed_(seed), rng_(seed) {}

int RandomArbiter::do_step(std::uint64_t requests) {
  if (holder_ >= 0 && ((requests >> holder_) & 1u)) return holder_;
  holder_ = -1;
  const int waiting = std::popcount(requests);
  if (waiting == 0) return -1;
  auto pick = static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(waiting)));
  for (int t = 0; t < n_; ++t) {
    if (!((requests >> t) & 1u)) continue;
    if (pick-- == 0) {
      holder_ = t;
      return t;
    }
  }
  RCARB_ASSERT(false, "unreachable: requests were nonzero");
  return -1;
}

void RandomArbiter::reset() {
  rng_ = Rng(seed_);
  holder_ = -1;
}

std::string RandomArbiter::describe() const {
  return "random(" + std::to_string(n_) + ")";
}

// ------------------------------------------------------------------- Factory

std::unique_ptr<Arbiter> make_arbiter(Policy policy, int n,
                                      std::uint64_t seed) {
  switch (policy) {
    case Policy::kRoundRobin:
      return std::make_unique<RoundRobinArbiter>(n);
    case Policy::kFifo:
      return std::make_unique<FifoArbiter>(n);
    case Policy::kPriority:
      return std::make_unique<PriorityArbiter>(n);
    case Policy::kRandom:
      return std::make_unique<RandomArbiter>(n, seed);
  }
  RCARB_CHECK(false, "unknown policy");
  return nullptr;
}

}  // namespace rcarb::core
