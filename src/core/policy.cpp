#include "core/policy.hpp"

#include <bit>

#include "support/check.hpp"

namespace rcarb::core {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::kRoundRobin: return "round-robin";
    case Policy::kFifo: return "fifo";
    case Policy::kPriority: return "priority";
    case Policy::kRandom: return "random";
  }
  return "?";
}

Arbiter::Arbiter(int n) : n_(n) {
  RCARB_CHECK(n >= 2 && n <= 64, "arbiter size must be in [2, 64]");
}

// ---------------------------------------------------------------- RoundRobin

RoundRobinArbiter::RoundRobinArbiter(int n, RoundRobinOptions options)
    : Arbiter(n), options_(options) {
  RCARB_CHECK(options.max_hold_cycles >= 0, "negative max_hold_cycles");
}

int RoundRobinArbiter::step(std::uint64_t requests) {
  requests &= (n_ == 64) ? ~0ull : ((1ull << n_) - 1);

  // Fig. 5: no requests — Fi stays, Ci retires to F(i+1).
  if (requests == 0) {
    if (in_c_) {
      index_ = (index_ + 1) % n_;
      in_c_ = false;
    }
    held_cycles_ = 0;
    return -1;
  }

  // Future-work preemption: a saturated holder loses its turn when someone
  // else is waiting; the scan then starts past it.
  if (in_c_ && options_.max_hold_cycles > 0 &&
      held_cycles_ >= options_.max_hold_cycles &&
      (requests & ~(1ull << index_)) != 0) {
    const int start = (index_ + 1) % n_;
    for (int k = 0; k < n_; ++k) {
      const int j = (start + k) % n_;
      if (j != index_ && ((requests >> j) & 1u)) {
        index_ = j;
        in_c_ = true;
        held_cycles_ = 1;
        return j;
      }
    }
  }

  // Cyclic scan from the priority index i (identical for Ci and Fi).
  for (int k = 0; k < n_; ++k) {
    const int j = (index_ + k) % n_;
    if ((requests >> j) & 1u) {
      held_cycles_ = (in_c_ && j == index_) ? held_cycles_ + 1 : 1;
      index_ = j;
      in_c_ = true;
      return j;
    }
  }
  RCARB_ASSERT(false, "unreachable: requests were nonzero");
  return -1;
}

void RoundRobinArbiter::reset() {
  index_ = 0;
  in_c_ = false;
  held_cycles_ = 0;
}

std::string RoundRobinArbiter::describe() const {
  return "round-robin(" + std::to_string(n_) + ")";
}

std::string RoundRobinArbiter::state_name() const {
  return (in_c_ ? "C" : "F") + std::to_string(index_);
}

// ---------------------------------------------------------------------- FIFO

FifoArbiter::FifoArbiter(int n) : Arbiter(n) {}

int FifoArbiter::step(std::uint64_t requests) {
  requests &= (n_ == 64) ? ~0ull : ((1ull << n_) - 1);

  // Newly asserted requests join the queue in index order (simultaneous
  // arrivals tie-break by index, as a hardware FIFO arbiter would).
  for (int t = 0; t < n_; ++t) {
    const std::uint64_t bit = 1ull << t;
    if ((requests & bit) && !(enqueued_ & bit) && holder_ != t) {
      queue_.push_back(t);
      enqueued_ |= bit;
    }
  }

  // Holder keeps the grant while it requests.
  if (holder_ >= 0 && ((requests >> holder_) & 1u)) return holder_;
  holder_ = -1;

  // Otherwise serve the oldest still-live request.
  while (!queue_.empty()) {
    const int t = queue_.front();
    queue_.pop_front();
    enqueued_ &= ~(1ull << t);
    if ((requests >> t) & 1u) {
      holder_ = t;
      return t;
    }
  }
  return -1;
}

void FifoArbiter::reset() {
  queue_.clear();
  enqueued_ = 0;
  holder_ = -1;
}

std::string FifoArbiter::describe() const {
  return "fifo(" + std::to_string(n_) + ")";
}

// ------------------------------------------------------------------ Priority

PriorityArbiter::PriorityArbiter(int n) : Arbiter(n) {}

int PriorityArbiter::step(std::uint64_t requests) {
  requests &= (n_ == 64) ? ~0ull : ((1ull << n_) - 1);
  if (holder_ >= 0 && ((requests >> holder_) & 1u)) return holder_;
  holder_ = -1;
  if (requests == 0) return -1;
  holder_ = std::countr_zero(requests);  // lowest index = highest priority
  return holder_;
}

void PriorityArbiter::reset() { holder_ = -1; }

std::string PriorityArbiter::describe() const {
  return "priority(" + std::to_string(n_) + ")";
}

// -------------------------------------------------------------------- Random

RandomArbiter::RandomArbiter(int n, std::uint64_t seed)
    : Arbiter(n), seed_(seed), rng_(seed) {}

int RandomArbiter::step(std::uint64_t requests) {
  requests &= (n_ == 64) ? ~0ull : ((1ull << n_) - 1);
  if (holder_ >= 0 && ((requests >> holder_) & 1u)) return holder_;
  holder_ = -1;
  const int waiting = std::popcount(requests);
  if (waiting == 0) return -1;
  auto pick = static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(waiting)));
  for (int t = 0; t < n_; ++t) {
    if (!((requests >> t) & 1u)) continue;
    if (pick-- == 0) {
      holder_ = t;
      return t;
    }
  }
  RCARB_ASSERT(false, "unreachable: requests were nonzero");
  return -1;
}

void RandomArbiter::reset() {
  rng_ = Rng(seed_);
  holder_ = -1;
}

std::string RandomArbiter::describe() const {
  return "random(" + std::to_string(n_) + ")";
}

// ------------------------------------------------------------------- Factory

std::unique_ptr<Arbiter> make_arbiter(Policy policy, int n,
                                      std::uint64_t seed) {
  switch (policy) {
    case Policy::kRoundRobin:
      return std::make_unique<RoundRobinArbiter>(n);
    case Policy::kFifo:
      return std::make_unique<FifoArbiter>(n);
    case Policy::kPriority:
      return std::make_unique<PriorityArbiter>(n);
    case Policy::kRandom:
      return std::make_unique<RandomArbiter>(n, seed);
  }
  RCARB_CHECK(false, "unknown policy");
  return nullptr;
}

}  // namespace rcarb::core
