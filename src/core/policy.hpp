// Behavioral arbitration policies.
//
// The paper examines random, FIFO, round-robin and priority-based
// contention resolution (Sec. 4) and selects round-robin.  Every policy is
// available here as a cycle-level behavioral model with a common interface:
// present the request vector, receive at most one grant.  A grant persists
// while its task keeps requesting (the Fig. 8 protocol releases by
// deasserting Req); the policies differ in whom they pick next.
//
// The round-robin model implements Fig. 5 *exactly* (states Ci/Fi, cyclic
// scan from the priority index), and is proven equivalent to the
// synthesized FSM netlist in the test suite.  The paper's future-work
// preemption appears as RoundRobinOptions::max_hold_cycles.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace rcarb::core {

/// Contention-resolution technique (paper Sec. 4).
enum class Policy : std::uint8_t {
  kRoundRobin,  // cyclic order (the paper's choice)
  kFifo,        // order of request arrival
  kPriority,    // statically-determined weighed order (index = priority)
  kRandom,      // uniformly random among requesters
};

[[nodiscard]] const char* to_string(Policy p);

/// Fixed protocol cost of one arbitered burst (Fig. 8: assert Req, ...,
/// deassert Req) when the grant is immediate.
inline constexpr int kProtocolOverheadCycles = 2;

/// Largest request-vector width of the wide (vector-request) arbiters in
/// core/hier.hpp.  Ordinary word-request arbiters stay capped at 64.
inline constexpr int kMaxWideInputs = 4096;

/// Observation hook over the request/grant wire traffic of one arbiter.
/// Implementations (src/obs) derive wait/hold/fairness metrics from the raw
/// stream without the arbiter knowing what is measured.
class ArbiterObserver {
 public:
  virtual ~ArbiterObserver() = default;
  /// Called once per step() with the sampled request vector (masked to the
  /// arbiter's width) and the resulting grant (-1 = none).
  virtual void on_step(std::uint64_t requests, int grant) = 0;
  /// Called once per step_wide() on a wide (vector-request) arbiter with
  /// the words-encoded request vector (bit i of word i/64 = port i; bits
  /// past the arbiter's width may carry garbage and must be ignored).  The
  /// default narrows to the first word, exact for widths <= 64.
  virtual void on_step_wide(const std::vector<std::uint64_t>& requests,
                            int grant) {
    on_step(requests.empty() ? 0 : requests[0], grant);
  }
};

/// Cycle-level behavioral arbiter.
class Arbiter {
 public:
  virtual ~Arbiter() = default;

  /// One clock cycle: presents the request vector (bit i = task i) and
  /// returns the granted task index, or -1 when no grant is issued.  At
  /// most one task is ever granted (mutual exclusion).  With no observer
  /// attached the hook costs one pointer test.
  int step(std::uint64_t requests) {
    // Wide arbiters (n > 64) accept every bit of the word; the rest are
    // masked to their width (the >= keeps the shift in range for both).
    requests &= (n_ >= 64) ? ~0ull : ((1ull << n_) - 1);
    const int granted = do_step(requests);
    if (observer_ != nullptr) observer_->on_step(requests, granted);
    return granted;
  }

  /// One clock cycle over a words-encoded request vector (bit i of word
  /// i/64 = port i).  The base implementation serves word-width arbiters
  /// by forwarding to step() (and CHECK-fails past 64 ports); the wide
  /// arbiters in core/hier.hpp override it, notify observers through
  /// on_step_wide, and accept up to kMaxWideInputs.
  virtual int step_wide(const std::vector<std::uint64_t>& requests);

  /// Attaches (or detaches, with nullptr) a borrowed observer.
  void set_observer(ArbiterObserver* observer) { observer_ = observer; }

  /// Returns to the reset state.
  virtual void reset() = 0;

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] virtual std::string describe() const = 0;

 protected:
  explicit Arbiter(int n);
  /// Wide-arbiter constructor tag: lifts the 64-input cap to
  /// kMaxWideInputs.  Word-request step() only addresses the first 64
  /// ports of a wide arbiter; subclasses expose a vector-request entry.
  struct WideTag {};
  Arbiter(WideTag, int n);
  /// Policy-specific transition; `requests` is already width-masked.
  virtual int do_step(std::uint64_t requests) = 0;
  /// For step_wide overrides: fires the observer's wide hook.
  void notify_wide(const std::vector<std::uint64_t>& requests, int granted) {
    if (observer_ != nullptr) observer_->on_step_wide(requests, granted);
  }
  int n_;

 private:
  ArbiterObserver* observer_ = nullptr;
};

/// Options for the round-robin model.
struct RoundRobinOptions {
  /// 0 disables preemption (the paper's presented form).  Otherwise a
  /// holder that keeps its request beyond this many consecutive granted
  /// cycles is preempted while other requests are pending (the paper's
  /// future-work extension, ensuring no task "never relinquishes").
  int max_hold_cycles = 0;
  /// Illegal-state recovery.  The one-hot Fig. 5 register is SEU-exposed: a
  /// single flip leaves it zero-hot (dead — no grants ever again) or
  /// multi-hot (several states active at once — mutual exclusion breaks).
  /// Hardened, step() detects a non-one-hot register and recovers to the
  /// safe all-free reset state F0 within that same step.
  bool harden = false;
};

/// Fig. 5 round-robin arbiter.  The 2N states Ci/Fi live in an explicit
/// one-hot register (bit i = Fi, bit n+i = Ci) so single-event upsets can
/// be injected and the hardened recovery modeled bit-exactly against the
/// synthesized netlist.
class RoundRobinArbiter final : public Arbiter {
 public:
  explicit RoundRobinArbiter(int n, RoundRobinOptions options = {});
  void reset() override;
  [[nodiscard]] std::string describe() const override;

  /// Exposed for FSM-equivalence tests: current state as "Ci"/"Fi" text.
  /// Requires a legal (exactly one-hot) register.
  [[nodiscard]] std::string state_name() const;

  /// The one-hot state register: bit i = Fi, bit n+i = Ci.  Requires
  /// n <= 32 (2n bits must fit one word).
  [[nodiscard]] std::uint64_t state_bits() const;

  /// The state register as separate words (f = Fi one-hots, c = Ci
  /// one-hots) — the full-width form of state_bits(), valid for every
  /// n <= 64.  The self-checking wrapper compares/votes these so its
  /// replicas are not capped at 32 ports.
  struct StateWords {
    std::uint64_t f = 0;
    std::uint64_t c = 0;
    [[nodiscard]] bool operator==(const StateWords&) const = default;
  };
  [[nodiscard]] StateWords state_words() const { return {f_bits_, c_bits_}; }

  /// True when the register holds exactly one hot bit.
  [[nodiscard]] bool state_legal() const;

  /// SEU injection: XOR one bit of the state register (0 <= bit < 2n).
  void inject_bit_flip(int bit);

  /// Every grant asserted by the last step().  Legal states assert at most
  /// one; an unhardened multi-hot register can assert several (the
  /// mutual-exclusion violation a fault campaign must surface).
  [[nodiscard]] std::uint64_t last_grant_mask() const { return grant_mask_; }

  /// Illegal-state recoveries performed so far (hardened mode only).
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }

 protected:
  int do_step(std::uint64_t requests) override;

 private:
  /// Fig. 5 transition from the single state (i, in_c): returns the
  /// successor state and sets `granted` (-1 = none).
  struct NextState {
    int index;
    bool in_c;
  };
  [[nodiscard]] NextState step_one_state(int i, bool in_c,
                                         std::uint64_t requests,
                                         int* granted) const;

  RoundRobinOptions options_;
  std::uint64_t f_bits_ = 1;   // one-hot among F0..F(n-1); reset = F0
  std::uint64_t c_bits_ = 0;   // one-hot among C0..C(n-1)
  std::uint64_t grant_mask_ = 0;
  std::uint64_t recoveries_ = 0;
  int held_cycles_ = 0;
};

/// FIFO arbiter: requests are served in arrival order.
class FifoArbiter final : public Arbiter {
 public:
  explicit FifoArbiter(int n);
  void reset() override;
  [[nodiscard]] std::string describe() const override;

 protected:
  int do_step(std::uint64_t requests) override;

 private:
  std::deque<int> queue_;
  std::uint64_t enqueued_ = 0;  // bitmask of tasks currently in the queue
  int holder_ = -1;
};

/// Static-priority arbiter: lowest index wins among waiters.
class PriorityArbiter final : public Arbiter {
 public:
  explicit PriorityArbiter(int n);
  void reset() override;
  [[nodiscard]] std::string describe() const override;

 protected:
  int do_step(std::uint64_t requests) override;

 private:
  int holder_ = -1;
};

/// Random arbiter: uniform among requesters (deterministic given the seed).
class RandomArbiter final : public Arbiter {
 public:
  RandomArbiter(int n, std::uint64_t seed);
  void reset() override;
  [[nodiscard]] std::string describe() const override;

 protected:
  int do_step(std::uint64_t requests) override;

 private:
  std::uint64_t seed_;
  Rng rng_;
  int holder_ = -1;
};

/// Factory over the Policy enum.  `seed` is only used by kRandom.
[[nodiscard]] std::unique_ptr<Arbiter> make_arbiter(Policy policy, int n,
                                                    std::uint64_t seed = 1);

}  // namespace rcarb::core
