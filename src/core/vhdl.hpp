// VHDL emission for generated arbiters.
//
// The paper's arbiter generator "takes the number of tasks to be arbitrated
// (N) as input and generates a corresponding VHDL file", with a choice of
// FSM encoding scheme.  This emitter reproduces that artifact: synthesizable
// VHDL-93 with one case alternative per Fig. 5 scan step.  (Our own flow
// synthesizes from the Fsm object directly; the VHDL is the user-facing
// deliverable for external tools.)
#pragma once

#include <string>

#include "synth/encoding.hpp"
#include "synth/fsm.hpp"

namespace rcarb::core {

/// Emits VHDL for an N-input round-robin arbiter.  The encoding request is
/// carried as an enum_encoding attribute, mirroring how the paper's
/// generator parameterized the schemes.
[[nodiscard]] std::string emit_round_robin_vhdl(int n,
                                                synth::Encoding encoding);

/// Emits VHDL for an arbitrary validated Mealy FSM with the same structure
/// (clk/rst, inputs, outputs, one process).
[[nodiscard]] std::string emit_fsm_vhdl(const synth::Fsm& fsm,
                                        synth::Encoding encoding);

}  // namespace rcarb::core
