#include "core/rr_fsm.hpp"

#include "support/check.hpp"
#include "support/text.hpp"

namespace rcarb::core {

synth::Fsm build_round_robin_fsm(int n) {
  // One-hot elaboration needs n inputs + 2n state bits <= 64 variables.
  RCARB_CHECK(n >= 2 && n <= 20, "round-robin FSM supports n in [2, 20]");

  synth::Fsm fsm("rr_arbiter" + std::to_string(n));
  const auto un = static_cast<std::size_t>(n);

  std::vector<synth::StateId> f_state(un), c_state(un);
  // State order F0..F(n-1), C0..C(n-1); reset state is F0.
  for (std::size_t i = 0; i < un; ++i)
    f_state[i] = fsm.add_state(signal_name("F", i));
  for (std::size_t i = 0; i < un; ++i)
    c_state[i] = fsm.add_state(signal_name("C", i));
  fsm.set_reset_state(f_state[0]);

  for (int i = 0; i < n; ++i) fsm.add_input(signal_name("req", static_cast<std::size_t>(i)));
  for (int i = 0; i < n; ++i) fsm.add_output(signal_name("grant", static_cast<std::size_t>(i)));

  // The transition structure is identical from Fi and Ci — only the
  // zero-request successor differs (Fig. 5).
  for (int i = 0; i < n; ++i) {
    const auto add_scan = [&](synth::StateId from, synth::StateId idle_to) {
      // No requests at all.
      logic::Cube all_zero;
      for (int v = 0; v < n; ++v) all_zero = all_zero.with_literal(v, false);
      fsm.add_transition(from, all_zero, idle_to, 0);
      // First requester in cyclic order starting at i wins.
      for (int k = 0; k < n; ++k) {
        const int j = (i + k) % n;
        logic::Cube guard = logic::Cube::literal(j, true);
        for (int p = 0; p < k; ++p)
          guard = guard.with_literal((i + p) % n, false);
        fsm.add_transition(from, guard,
                           c_state[static_cast<std::size_t>(j)],
                           1ull << j);
      }
    };
    add_scan(f_state[static_cast<std::size_t>(i)],
             f_state[static_cast<std::size_t>(i)]);
    add_scan(c_state[static_cast<std::size_t>(i)],
             f_state[static_cast<std::size_t>((i + 1) % n)]);
  }
  return fsm;
}

}  // namespace rcarb::core
