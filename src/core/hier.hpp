// Scalable round-robin arbiters beyond the flat 2N-state FSM.
//
// The paper's Fig. 5 arbiter rotates priority with a chain whose scan
// depth is O(N): fine at N = 10, hopeless at N = 1024.  This module adds
// the two standard large-N round-robin structures, each as a behavioral
// `core::Arbiter` *and* as an AIG generator that runs through the same
// synthesis -> LUT-map -> CLB-pack -> STA flow as the flat FSM:
//
//  * Hierarchical tree-of-arbiters ("Reconfigurable Parallel Architecture
//    of High Speed Round Robin Arbiter", PAPERS.md): 2- or 4-way
//    round-robin cells arranged in a tree.  Each node keeps a small
//    rotating pointer; a grant percolates root -> leaf in O(log N) levels
//    and the pointers along the winning path advance (ping-pong rotation),
//    so the subtree that just won drops to lowest priority.  A held-index
//    register pins the current holder while its request stays up (Fig. 8
//    release-by-deassert semantics, same as the flat FSM's Ci states).
//
//  * Parallel-prefix (Kogge-Stone thermometer-mask) arbiter: an N-bit
//    one-hot pointer marks the last grant; prefix/suffix OR networks mask
//    requests at-or-after the pointer and pick the first one in O(log N)
//    depth with every internal net at constant fanout.
//
// Both grant the same Fig. 8 contract as the flat FSM — at most one grant
// per cycle, a holder keeps its grant while requesting, rotation on
// release — but their rotation orders legitimately differ, so cross-kind
// tests pin each kind's sequence rather than expecting identity.
//
// Fairness: under continuous contention the flat FSM and the prefix
// arbiter bound the wait at N-1 other grants between two grants of the
// same port.  The tree composes per-level bounds: the exact bound for a
// leaf is (product of the child counts of the nodes on its root->leaf
// path) - 1, which equals N-1 when N is a power of the arity and can
// exceed it on ragged trees.  HierShape::waiting_bound reports the exact
// per-leaf value and the model checker asserts it (tests/test_hier.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "core/policy.hpp"

namespace rcarb::core {

/// The three synthesizable round-robin structures.
enum class ArbiterKind : std::uint8_t {
  kFlatFsm,       // Fig. 5 rotating-chain FSM (2N one-hot state bits)
  kHierarchical,  // tree-of-arbiters, ping-pong pointers
  kPrefix,        // Kogge-Stone thermometer-mask
};

[[nodiscard]] const char* to_string(ArbiterKind k);

/// Tree shape shared by the behavioral model and the AIG generator, so the
/// state-bit layout is bit-exact between them (SEU lockstep tests rely on
/// it).  Nodes are stored in pre-order; children of a node are either
/// another node (child >= 0: node index) or a leaf (child < 0: input
/// ~child).  State-bit order: each node's pointer bits LSB-first in node
/// order, then the held-index bits LSB-first, then the valid bit.
struct HierShape {
  struct Node {
    std::vector<int> child;   // >= 0: node index; < 0: leaf input ~child
    int ptr_bits = 0;         // ceil(log2(child count))
    int first_state_bit = 0;  // offset of this node's ptr bits
  };

  int n = 0;
  int arity = 0;
  std::vector<Node> nodes;  // pre-order; nodes[0] is the root (empty: n==1)
  int ptr_bits_total = 0;
  int held_bits = 0;  // ceil(log2(n)); 0 when n == 1
  /// Exact bounded-waiting bound per leaf under continuous contention:
  /// (product of real child counts on the root->leaf path) - 1.
  std::vector<std::uint64_t> bound;

  [[nodiscard]] int num_state_bits() const {
    return ptr_bits_total + held_bits + 1;  // +1: the holder-valid bit
  }
  [[nodiscard]] std::uint64_t waiting_bound(int input) const {
    return bound[static_cast<std::size_t>(input)];
  }
};

/// Builds the tree over n leaves with `arity`-way nodes (arity in [2, 4]);
/// ragged sizes split as evenly as possible and single-leaf groups attach
/// directly to the parent.
[[nodiscard]] HierShape make_hier_shape(int n, int arity);

/// Behavioral tree-of-arbiters.  Widths above 64 use step_wide(); the
/// word-based Arbiter::step() addresses ports 0..63 of a wider instance.
class HierarchicalArbiter final : public Arbiter {
 public:
  explicit HierarchicalArbiter(int n, int arity = 4);
  void reset() override;
  [[nodiscard]] std::string describe() const override;

  /// One cycle over a words-encoded request vector (bit i of word i/64 =
  /// port i).  Returns the granted port or -1.
  int step_wide(const std::vector<std::uint64_t>& requests) override;

  /// Grants asserted by the last step, words-encoded (one-hot or empty).
  [[nodiscard]] const std::vector<std::uint64_t>& last_grant_words() const {
    return grant_;
  }

  [[nodiscard]] const HierShape& shape() const { return shape_; }
  [[nodiscard]] int num_state_bits() const { return shape_.num_state_bits(); }
  /// Packed state register in the canonical HierShape bit order.  Requires
  /// num_state_bits() <= 64 (the exhaustive model checker's sizes).
  [[nodiscard]] std::uint64_t state_bits() const;
  /// SEU injection: XOR one bit of the packed state register.
  void inject_state_bit(int bit);
  [[nodiscard]] std::uint64_t waiting_bound(int input) const {
    return shape_.waiting_bound(input);
  }

 protected:
  int do_step(std::uint64_t requests) override;

 private:
  int step_wide_impl(const std::vector<std::uint64_t>& requests);
  HierShape shape_;
  std::vector<int> ptr_;  // per node, in [0, 1 << ptr_bits)
  int held_ = 0;          // holder index, meaningful while valid_
  bool valid_ = false;
  std::vector<std::uint64_t> grant_;
  std::vector<std::uint64_t> req_scratch_;
  std::vector<char> any_scratch_;
};

/// Behavioral Kogge-Stone thermometer-mask arbiter.  The state is an
/// N-bit one-hot pointer at the last granted port (reset: port 0); grants
/// scan from the pointer, so a requesting holder is re-granted and the
/// pointer advances only when the grant moves.
class PrefixArbiter final : public Arbiter {
 public:
  explicit PrefixArbiter(int n);
  void reset() override;
  [[nodiscard]] std::string describe() const override;

  int step_wide(const std::vector<std::uint64_t>& requests) override;
  [[nodiscard]] const std::vector<std::uint64_t>& last_grant_words() const {
    return grant_;
  }

  [[nodiscard]] int num_state_bits() const { return n_; }
  /// Packed pointer register (bit i = ptr_i).  Requires n <= 64.
  [[nodiscard]] std::uint64_t state_bits() const;
  void inject_state_bit(int bit);
  [[nodiscard]] std::uint64_t waiting_bound(int) const {
    return static_cast<std::uint64_t>(n_ - 1);
  }

 protected:
  int do_step(std::uint64_t requests) override;

 private:
  int step_wide_impl(const std::vector<std::uint64_t>& requests);
  std::vector<std::uint64_t> ptr_;
  std::vector<std::uint64_t> grant_;
  std::vector<std::uint64_t> req_scratch_;
};

/// Behavioral width-unlimited flat Fig. 5 chain: the same grant sequence
/// as RoundRobinArbiter (scan cyclically from the priority index, hold
/// while the holder requests, rotate past the holder on an idle release)
/// without the one-hot state register and its SEU/preemption machinery.
/// Exists so the wide service layers can run the flat baseline at
/// N > 64; its netlist twin is build_flat_onehot_aig.
class FlatWideArbiter final : public Arbiter {
 public:
  explicit FlatWideArbiter(int n);
  void reset() override;
  [[nodiscard]] std::string describe() const override;

  int step_wide(const std::vector<std::uint64_t>& requests) override;
  [[nodiscard]] const std::vector<std::uint64_t>& last_grant_words() const {
    return grant_;
  }

 protected:
  int do_step(std::uint64_t requests) override;

 private:
  int step_wide_impl(const std::vector<std::uint64_t>& requests);
  int pos_ = 0;        // priority index (the Fi/Ci chain position)
  bool held_ = false;  // in a Ci state: pos_ granted last cycle
  std::vector<std::uint64_t> grant_;
  std::vector<std::uint64_t> req_scratch_;
};

/// Behavioral factory over the kind.  kFlatFsm returns the Fig. 5
/// RoundRobinArbiter up to 64 ports and the FlatWideArbiter chain past
/// that; every kind accepts up to kMaxWideInputs.  `arity` only affects
/// kHierarchical.
[[nodiscard]] std::unique_ptr<Arbiter> make_scalable_arbiter(ArbiterKind kind,
                                                             int n,
                                                             int arity = 4);

// ---- AIG generators -------------------------------------------------------
//
// All three build the combinational next-state/grant cloud of a Mealy
// machine with inputs [req0..req(n-1), state0..state(b-1)] and outputs
// [ns0..ns(b-1), grant0..grant(n-1)], ready for
// synth::finish_machine_synthesis with the matching reset bits.  State-bit
// orders match the behavioral models bit-for-bit.

/// Tree-of-arbiters netlist for make_hier_shape(n, arity).  Reset: all
/// state bits zero (pointers at slot 0, no holder).
[[nodiscard]] aig::Aig build_hierarchical_aig(int n, int arity = 4);

/// Kogge-Stone prefix arbiter.  Reset: pointer one-hot at bit 0.
[[nodiscard]] aig::Aig build_prefix_aig(int n);

/// Width-unlimited flat Fig. 5 chain (one-hot, 2n state bits: bit i = Fi,
/// bit n+i = Ci), the same structure core/structural.cpp builds for
/// n <= 32 from explicit state codes.  Reset: F0 (bit 0).
[[nodiscard]] aig::Aig build_flat_onehot_aig(int n);

/// Reset vector matching the kind's AIG state-bit layout.
[[nodiscard]] std::vector<bool> scalable_reset_bits(ArbiterKind kind, int n,
                                                    int arity = 4);

}  // namespace rcarb::core
