#include "core/line_merge.hpp"

#include "support/check.hpp"

namespace rcarb::core {

const char* to_string(LineClass c) {
  switch (c) {
    case LineClass::kAddress: return "address";
    case LineClass::kData: return "data";
    case LineClass::kActiveHighControl: return "active-high-control";
    case LineClass::kActiveLowControl: return "active-low-control";
  }
  return "?";
}

const char* to_string(MergeStrategy s) {
  switch (s) {
    case MergeStrategy::kTristate: return "tristate";
    case MergeStrategy::kOrMerge: return "or-merge";
    case MergeStrategy::kAndMerge: return "and-merge";
  }
  return "?";
}

MergeStrategy strategy_for(LineClass c) {
  switch (c) {
    case LineClass::kAddress:
    case LineClass::kData:
      return MergeStrategy::kTristate;
    case LineClass::kActiveHighControl:
      return MergeStrategy::kOrMerge;
    case LineClass::kActiveLowControl:
      return MergeStrategy::kAndMerge;
  }
  return MergeStrategy::kTristate;
}

Resolved resolve_line(MergeStrategy strategy,
                      const std::vector<std::optional<bool>>& drivers) {
  Resolved r;
  switch (strategy) {
    case MergeStrategy::kTristate: {
      std::size_t driving = 0;
      for (const auto& d : drivers) {
        if (!d.has_value()) continue;
        ++driving;
        r.value = *d;
      }
      r.is_z = driving == 0;
      r.conflict = driving > 1;
      return r;
    }
    case MergeStrategy::kOrMerge: {
      // Idle drivers contribute 0; the line is never floating.
      r.value = false;
      for (const auto& d : drivers)
        if (d.has_value() && *d) r.value = true;
      return r;
    }
    case MergeStrategy::kAndMerge: {
      // Idle drivers contribute 1.
      r.value = true;
      for (const auto& d : drivers)
        if (d.has_value() && !*d) r.value = false;
      return r;
    }
  }
  RCARB_CHECK(false, "unknown merge strategy");
  return r;
}

std::vector<LineMergePlan> plan_memory_lines(const std::string& bank_name,
                                             std::size_t num_tasks) {
  RCARB_CHECK(num_tasks >= 2, "line merging needs at least two drivers");
  return {
      {bank_name, LineClass::kAddress, strategy_for(LineClass::kAddress),
       num_tasks},
      {bank_name, LineClass::kData, strategy_for(LineClass::kData), num_tasks},
      {bank_name, LineClass::kActiveHighControl,
       strategy_for(LineClass::kActiveHighControl), num_tasks},
  };
}

std::vector<LineMergePlan> plan_channel_lines(const std::string& channel_name,
                                              std::size_t num_sources) {
  RCARB_CHECK(num_sources >= 1, "channel needs at least one source");
  return {
      {channel_name, LineClass::kData, strategy_for(LineClass::kData),
       num_sources},
      // Receiver register enables: active-high, one per receiving end.
      {channel_name, LineClass::kActiveHighControl,
       strategy_for(LineClass::kActiveHighControl), num_sources},
  };
}

}  // namespace rcarb::core
