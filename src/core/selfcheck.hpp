// Self-checking round-robin arbiter variants.
//
// A permanent fault inside an arbiter (latch-up, stuck register) is
// invisible to the rest of the system until grants misbehave — too late
// for clean quarantine.  The classic fix is concurrent error detection:
// replicate the FSM and compare.  Two variants are provided, both as
// cycle-level behavioral models (wrapping the proven Fig. 5 model of
// core/policy) and as synthesizable structures (copies of the structural
// round-robin AIG stitched together with a comparator):
//
//   * kDuplicate — duplicate-and-compare (DMR).  Two unhardened copies
//     share the request inputs but keep separate state registers.  The
//     `error` net is the OR of the state-bit XORs; while it is high the
//     grant outputs are gated off (fail-safe: a suspect arbiter grants
//     nobody) and both registers reload the reset code, so a transient
//     mismatch resyncs in one clock at the cost of a one-cycle grant gap.
//   * kTmr — triple modular redundancy.  Three copies; grants are the
//     bitwise majority of the three grant vectors, and all three registers
//     load the bitwise-majority next state, so a single corrupted copy is
//     outvoted and rewritten in one clock with *no* grant gap.  `error`
//     still reports any pairwise mismatch so supervisors see the upset.
//
// Either way a *persistent* `error` (one copy latched up, refusing the
// resync) is the signature the rcsim recovery controller classifies as a
// permanent arbiter fault.
#pragma once

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "core/policy.hpp"
#include "synth/encoding.hpp"

namespace rcarb::core {

/// Concurrent-error-detection scheme wrapped around an arbiter.
enum class CheckMode : std::uint8_t {
  kNone,       // plain (no replication)
  kDuplicate,  // duplicate-and-compare, fail-safe gated grants
  kTmr,        // triple modular redundancy, voted grants
};

[[nodiscard]] const char* to_string(CheckMode m);

/// Behavioral self-checking round-robin arbiter.  Clock-accurate against
/// the synthesized structure from build_self_checking_aig: the comparator
/// samples the *current* state registers, so a single-bit upset raises
/// `error()` on the very next step, and the resync (DMR reset reload / TMR
/// majority rewrite) happens at that step's clock edge.  Requires
/// n <= 64: the per-copy registers are compared and voted as separate
/// F/C words (RoundRobinArbiter::StateWords), so the model covers the
/// full word-width service arbiters even where the replicated *netlist*
/// (copies x 2n register bits in one bank) cannot be synthesized.
class SelfCheckingArbiter final : public Arbiter {
 public:
  SelfCheckingArbiter(int n, CheckMode mode, RoundRobinOptions options = {});

  void reset() override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] CheckMode mode() const { return mode_; }
  [[nodiscard]] int num_copies() const {
    return static_cast<int>(copies_.size());
  }

  /// Comparator output of the last step(): any pairwise state mismatch.
  [[nodiscard]] bool error() const { return error_; }

  /// Cycles (steps) on which the comparator fired, cumulatively.
  [[nodiscard]] std::uint64_t error_cycles() const { return error_cycles_; }

  /// Resync events: DMR reset reloads / TMR minority rewrites.
  [[nodiscard]] std::uint64_t resyncs() const { return resyncs_; }

  /// Every grant asserted by the last step() (DMR: gated off while the
  /// comparator fires; TMR: bitwise majority of the copies).
  [[nodiscard]] std::uint64_t last_grant_mask() const { return grant_mask_; }

  /// One copy's state register (bit i = Fi, bit n+i = Ci).  Requires
  /// n <= 32 (the packed form); state_words covers the full width.
  [[nodiscard]] std::uint64_t state_bits(int copy) const;

  /// One copy's state register as separate F/C words, valid for n <= 64.
  [[nodiscard]] RoundRobinArbiter::StateWords state_words(int copy) const;

  /// SEU injection into one copy's state register (0 <= bit < 2n).
  void inject_bit_flip(int copy, int bit);

  /// Permanent-fault injection: freezes `copy`'s register at its current
  /// value — every later load (step, resync, reset) is ignored, so the
  /// comparator fires persistently.  Cleared only by clear_latch_up()
  /// (modeling reconfiguration of the arbiter's region).
  void latch_up(int copy);
  void clear_latch_up();
  [[nodiscard]] bool latched() const;

 protected:
  int do_step(std::uint64_t requests) override;

 private:
  void force_state(int copy, RoundRobinArbiter::StateWords want);

  CheckMode mode_;
  std::vector<RoundRobinArbiter> copies_;
  // Per copy; valid when latched.
  std::vector<RoundRobinArbiter::StateWords> latched_state_;
  std::vector<bool> latched_;
  bool error_ = false;
  std::uint64_t grant_mask_ = 0;
  std::uint64_t error_cycles_ = 0;
  std::uint64_t resyncs_ = 0;
};

/// Combinational AIG of the self-checking arbiter: `copies` instantiations
/// of the structural round-robin AIG over per-copy state inputs, plus the
/// comparator, grant gating/voting and next-state mux/vote.
///   Inputs:  req0..req{n-1}, then copy 0 state bits "state<b>", then
///            copy c >= 1 state bits "c<c>_state<b>".
///   Outputs: per-copy next-state bits (copy-major), then
///            grant0..grant{n-1}, then "error".
/// `reset_code` is the *single-copy* reset code.  Feed the result to
/// synth::finish_machine_synthesis with num_state_bits = copies *
/// codes.num_bits and the per-copy reset codes concatenated copy-major;
/// the DFF bank then carries one register per copy bit and "error"
/// becomes a primary output net of the netlist.
[[nodiscard]] aig::Aig build_self_checking_aig(int n,
                                               const synth::StateCodes& codes,
                                               CheckMode mode,
                                               std::uint64_t reset_code);

}  // namespace rcarb::core
