#include "core/selfcheck.hpp"

#include <bit>
#include <string>

#include "core/structural.hpp"
#include "support/check.hpp"

namespace rcarb::core {

const char* to_string(CheckMode m) {
  switch (m) {
    case CheckMode::kNone: return "plain";
    case CheckMode::kDuplicate: return "dmr";
    case CheckMode::kTmr: return "tmr";
  }
  return "?";
}

SelfCheckingArbiter::SelfCheckingArbiter(int n, CheckMode mode,
                                         RoundRobinOptions options)
    : Arbiter(n), mode_(mode) {
  RCARB_CHECK(mode != CheckMode::kNone,
              "SelfCheckingArbiter needs kDuplicate or kTmr");
  RCARB_CHECK(n <= 64, "self-checking model requires n <= 64");
  // The copies stay unhardened: the replication layer *is* the hardening,
  // and per-copy recovery logic would let the copies resync to different
  // legal states, pinning the comparator high forever.
  options.harden = false;
  const int copies = mode == CheckMode::kDuplicate ? 2 : 3;
  for (int c = 0; c < copies; ++c) copies_.emplace_back(n, options);
  latched_state_.assign(copies_.size(), {});
  latched_.assign(copies_.size(), false);
}

void SelfCheckingArbiter::force_state(int copy,
                                      RoundRobinArbiter::StateWords want) {
  auto& a = copies_[static_cast<std::size_t>(copy)];
  std::uint64_t diff = a.state_words().f ^ want.f;
  while (diff != 0) {
    a.inject_bit_flip(std::countr_zero(diff));
    diff &= diff - 1;
  }
  diff = a.state_words().c ^ want.c;
  while (diff != 0) {
    a.inject_bit_flip(n_ + std::countr_zero(diff));
    diff &= diff - 1;
  }
}

int SelfCheckingArbiter::do_step(std::uint64_t requests) {
  grant_mask_ = 0;
  // A latched-up register refuses every load: re-assert the frozen value
  // before the comparator samples.
  for (std::size_t c = 0; c < copies_.size(); ++c)
    if (latched_[c]) force_state(static_cast<int>(c), latched_state_[c]);

  const RoundRobinArbiter::StateWords s0 = copies_[0].state_words();
  error_ = false;
  for (std::size_t c = 1; c < copies_.size(); ++c)
    error_ = error_ || !(copies_[c].state_words() == s0);
  if (error_) ++error_cycles_;

  if (mode_ == CheckMode::kDuplicate) {
    if (error_) {
      // Fail-safe: grants gated off; both registers reload the reset code
      // at this clock edge (one-cycle grant gap, then clean resync).
      ++resyncs_;
      force_state(0, {1, 0});
      force_state(1, {1, 0});
      return -1;
    }
    const int g = copies_[0].step(requests);
    copies_[1].step(requests);
    grant_mask_ = copies_[0].last_grant_mask();
    return g;
  }

  // TMR: step all copies, vote grants and next states bitwise, rewrite
  // every copy with the voted words — the minority is outvoted in 1 clock
  // and the voted grants never gap.
  RoundRobinArbiter::StateWords next[3];
  std::uint64_t mask[3] = {0, 0, 0};
  for (std::size_t c = 0; c < copies_.size(); ++c) {
    copies_[c].step(requests);
    next[c] = copies_[c].state_words();
    mask[c] = copies_[c].last_grant_mask();
  }
  const RoundRobinArbiter::StateWords voted = {
      (next[0].f & next[1].f) | (next[0].f & next[2].f) |
          (next[1].f & next[2].f),
      (next[0].c & next[1].c) | (next[0].c & next[2].c) |
          (next[1].c & next[2].c)};
  grant_mask_ =
      (mask[0] & mask[1]) | (mask[0] & mask[2]) | (mask[1] & mask[2]);
  bool rewrote = false;
  for (std::size_t c = 0; c < copies_.size(); ++c) {
    if (next[c] == voted) continue;
    force_state(static_cast<int>(c), voted);
    rewrote = true;
  }
  if (rewrote) ++resyncs_;
  return grant_mask_ == 0 ? -1 : std::countr_zero(grant_mask_);
}

void SelfCheckingArbiter::reset() {
  for (RoundRobinArbiter& a : copies_) a.reset();
  error_ = false;
  grant_mask_ = 0;
}

std::string SelfCheckingArbiter::describe() const {
  return std::string(to_string(mode_)) + "(round-robin(" +
         std::to_string(n_) + "))";
}

std::uint64_t SelfCheckingArbiter::state_bits(int copy) const {
  RCARB_CHECK(copy >= 0 && copy < num_copies(), "copy out of range");
  return copies_[static_cast<std::size_t>(copy)].state_bits();
}

RoundRobinArbiter::StateWords SelfCheckingArbiter::state_words(
    int copy) const {
  RCARB_CHECK(copy >= 0 && copy < num_copies(), "copy out of range");
  return copies_[static_cast<std::size_t>(copy)].state_words();
}

void SelfCheckingArbiter::inject_bit_flip(int copy, int bit) {
  RCARB_CHECK(copy >= 0 && copy < num_copies(), "copy out of range");
  copies_[static_cast<std::size_t>(copy)].inject_bit_flip(bit);
}

void SelfCheckingArbiter::latch_up(int copy) {
  RCARB_CHECK(copy >= 0 && copy < num_copies(), "copy out of range");
  latched_[static_cast<std::size_t>(copy)] = true;
  latched_state_[static_cast<std::size_t>(copy)] =
      copies_[static_cast<std::size_t>(copy)].state_words();
}

void SelfCheckingArbiter::clear_latch_up() {
  latched_.assign(copies_.size(), false);
}

bool SelfCheckingArbiter::latched() const {
  for (const bool l : latched_)
    if (l) return true;
  return false;
}

aig::Aig build_self_checking_aig(int n, const synth::StateCodes& codes,
                                 CheckMode mode, std::uint64_t reset_code) {
  RCARB_CHECK(mode != CheckMode::kNone,
              "build_self_checking_aig needs kDuplicate or kTmr");
  const int copies = mode == CheckMode::kDuplicate ? 2 : 3;
  const int nb = codes.num_bits;
  RCARB_CHECK(copies * nb <= 64, "replicated state must fit 64 bits");
  const aig::Aig plain = build_round_robin_aig(n, codes);

  aig::Aig g;
  std::vector<aig::Lit> req(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    req[static_cast<std::size_t>(i)] = g.add_input("req" + std::to_string(i));
  std::vector<std::vector<aig::Lit>> state(
      static_cast<std::size_t>(copies));
  for (int c = 0; c < copies; ++c) {
    auto& bits = state[static_cast<std::size_t>(c)];
    bits.resize(static_cast<std::size_t>(nb));
    for (int b = 0; b < nb; ++b)
      bits[static_cast<std::size_t>(b)] = g.add_input(
          c == 0 ? "state" + std::to_string(b)
                 : "c" + std::to_string(c) + "_state" + std::to_string(b));
  }

  // One instantiation of the plain combinational core per copy; the strash
  // table shares whatever the request-only subtrees have in common.
  std::vector<std::vector<aig::Lit>> out(static_cast<std::size_t>(copies));
  for (int c = 0; c < copies; ++c) {
    std::vector<aig::Lit> input_map = req;
    const auto& bits = state[static_cast<std::size_t>(c)];
    input_map.insert(input_map.end(), bits.begin(), bits.end());
    out[static_cast<std::size_t>(c)] = g.append(plain, input_map);
  }
  auto ns_of = [&](int c, int b) {
    return out[static_cast<std::size_t>(c)][static_cast<std::size_t>(b)];
  };
  auto grant_of = [&](int c, int j) {
    return out[static_cast<std::size_t>(c)][static_cast<std::size_t>(nb + j)];
  };

  // Comparator: any pairwise mismatch of the *current* state registers.
  std::vector<aig::Lit> mismatches;
  for (int c1 = 0; c1 < copies; ++c1)
    for (int c2 = c1 + 1; c2 < copies; ++c2)
      for (int b = 0; b < nb; ++b)
        mismatches.push_back(
            g.lxor(state[static_cast<std::size_t>(c1)]
                        [static_cast<std::size_t>(b)],
                   state[static_cast<std::size_t>(c2)]
                        [static_cast<std::size_t>(b)]));
  const aig::Lit error = g.lor_many(std::move(mismatches));

  auto maj = [&g](aig::Lit a, aig::Lit b, aig::Lit c) {
    return g.lor(g.land(a, b), g.lor(g.land(a, c), g.land(b, c)));
  };

  // Next-state bits, copy-major (the register-bank order expected by
  // finish_machine_synthesis).
  for (int c = 0; c < copies; ++c) {
    for (int b = 0; b < nb; ++b) {
      aig::Lit ns;
      if (mode == CheckMode::kDuplicate) {
        const aig::Lit reset_bit =
            ((reset_code >> b) & 1u) ? aig::kConstTrue : aig::kConstFalse;
        ns = g.mux(error, reset_bit, ns_of(c, b));
      } else {
        ns = maj(ns_of(0, b), ns_of(1, b), ns_of(2, b));
      }
      g.add_output(c == 0 ? "ns" + std::to_string(b)
                          : "c" + std::to_string(c) + "_ns" +
                                std::to_string(b),
                   ns);
    }
  }

  // Grants: DMR gates with ~error (fail-safe), TMR votes.
  for (int j = 0; j < n; ++j) {
    const aig::Lit gj =
        mode == CheckMode::kDuplicate
            ? g.land(grant_of(0, j), aig::lit_not(error))
            : maj(grant_of(0, j), grant_of(1, j), grant_of(2, j));
    g.add_output("grant" + std::to_string(j), gj);
  }
  g.add_output("error", error);
  return g;
}

}  // namespace rcarb::core
