#include "core/policy_fsms.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <sstream>
#include <tuple>

#include "support/check.hpp"
#include "support/text.hpp"

namespace rcarb::core {

namespace {

/// Adds the cyclic-scan transitions shared by the priority and LFSR
/// machines: from `from`, scanning request indices in `order`, the first
/// asserted request j wins (-> holder_state(j), grant j); if `keep` >= 0
/// that index is checked first (grant-hold); no requests -> idle_to.
void add_scan_transitions(synth::Fsm& fsm, synth::StateId from,
                          const std::vector<int>& order, int keep,
                          const std::function<synth::StateId(int)>& holder_state,
                          synth::StateId idle_to, int n) {
  std::vector<int> scan;
  if (keep >= 0) scan.push_back(keep);
  for (int j : order)
    if (j != keep) scan.push_back(j);

  logic::Cube all_zero;
  for (int v = 0; v < n; ++v) all_zero = all_zero.with_literal(v, false);
  fsm.add_transition(from, all_zero, idle_to, 0);

  logic::Cube prefix;  // conjunction of ~R over already-scanned indices
  for (int j : scan) {
    fsm.add_transition(from, prefix.with_literal(j, true), holder_state(j),
                       1ull << j);
    prefix = prefix.with_literal(j, false);
  }
}

}  // namespace

// ------------------------------------------------------------------ priority

synth::Fsm build_priority_fsm(int n) {
  RCARB_CHECK(n >= 2 && n <= 20, "priority FSM supports n in [2, 20]");
  synth::Fsm fsm("prio_arbiter" + std::to_string(n));
  const synth::StateId idle = fsm.add_state("IDLE");
  std::vector<synth::StateId> hold;
  for (int i = 0; i < n; ++i)
    hold.push_back(fsm.add_state(signal_name("H", static_cast<std::size_t>(i))));
  for (int i = 0; i < n; ++i)
    fsm.add_input(signal_name("req", static_cast<std::size_t>(i)));
  for (int i = 0; i < n; ++i)
    fsm.add_output(signal_name("grant", static_cast<std::size_t>(i)));

  std::vector<int> descending;  // index order = priority order
  for (int j = 0; j < n; ++j) descending.push_back(j);

  auto holder_state = [&](int j) { return hold[static_cast<std::size_t>(j)]; };
  add_scan_transitions(fsm, idle, descending, /*keep=*/-1, holder_state, idle,
                       n);
  for (int i = 0; i < n; ++i)
    add_scan_transitions(fsm, hold[static_cast<std::size_t>(i)], descending,
                         /*keep=*/i, holder_state, idle, n);
  return fsm;
}

// ----------------------------------------------------------------- LFSR/rand

int lfsr3_next(int state) {
  RCARB_CHECK(state >= 1 && state <= 7, "LFSR state out of range");
  const int fb = ((state >> 2) ^ (state >> 1)) & 1;  // taps x2, x1
  return ((state << 1) & 0b110) | fb;
}

synth::Fsm build_lfsr_random_fsm(int n) {
  RCARB_CHECK(n >= 2 && n <= 6,
              "LFSR-random FSM supports n in [2, 6] (one-hot variable budget)");
  synth::Fsm fsm("rand_arbiter" + std::to_string(n));

  // State (h, l): h in {-1 (idle), 0..n-1}, l in {1..7}.
  std::map<std::pair<int, int>, synth::StateId> id;
  for (int l = 1; l <= 7; ++l)
    for (int h = -1; h < n; ++h) {
      std::ostringstream name;
      name << (h < 0 ? "I" : "H" + std::to_string(h)) << "L" << l;
      id[{h, l}] = fsm.add_state(name.str());
    }
  fsm.set_reset_state(id[{-1, 1}]);

  for (int i = 0; i < n; ++i)
    fsm.add_input(signal_name("req", static_cast<std::size_t>(i)));
  for (int i = 0; i < n; ++i)
    fsm.add_output(signal_name("grant", static_cast<std::size_t>(i)));

  for (int l = 1; l <= 7; ++l) {
    const int next_l = lfsr3_next(l);
    const int offset = l % n;
    std::vector<int> order;
    for (int k = 0; k < n; ++k) order.push_back((offset + k) % n);
    auto holder_state = [&](int j) { return id[{j, next_l}]; };
    for (int h = -1; h < n; ++h)
      add_scan_transitions(fsm, id[{h, l}], order, /*keep=*/h, holder_state,
                           id[{-1, next_l}], n);
  }
  return fsm;
}

LfsrRandomArbiter::LfsrRandomArbiter(int n) : Arbiter(n) {}

int LfsrRandomArbiter::do_step(std::uint64_t requests) {
  const int next_l = lfsr3_next(lfsr_);
  const int offset = lfsr_ % n_;
  int granted = -1;
  if (holder_ >= 0 && ((requests >> holder_) & 1u)) {
    granted = holder_;
  } else if (requests != 0) {
    for (int k = 0; k < n_; ++k) {
      const int j = (offset + k) % n_;
      if ((requests >> j) & 1u) {
        granted = j;
        break;
      }
    }
  }
  holder_ = granted;
  lfsr_ = next_l;
  return granted;
}

void LfsrRandomArbiter::reset() {
  holder_ = -1;
  lfsr_ = 1;
}

std::string LfsrRandomArbiter::describe() const {
  return "lfsr-random(" + std::to_string(n_) + ")";
}

// ---------------------------------------------------------------------- FIFO

namespace {

/// Pure-function mirror of FifoArbiter's transition (kept in lockstep by
/// the equivalence tests).
struct FifoState {
  int holder = -1;
  std::deque<int> queue;  // waiting tasks, oldest first (may contain stale)

  bool operator<(const FifoState& o) const {
    if (holder != o.holder) return holder < o.holder;
    return std::lexicographical_compare(queue.begin(), queue.end(),
                                        o.queue.begin(), o.queue.end());
  }
};

std::pair<FifoState, int> fifo_step(const FifoState& s, std::uint64_t req,
                                    int n) {
  FifoState next = s;
  auto in_queue = [&](int t) {
    for (int q : next.queue)
      if (q == t) return true;
    return false;
  };
  for (int t = 0; t < n; ++t)
    if (((req >> t) & 1u) && !in_queue(t) && next.holder != t)
      next.queue.push_back(t);

  int granted = -1;
  if (next.holder >= 0 && ((req >> next.holder) & 1u)) {
    granted = next.holder;
  } else {
    next.holder = -1;
    while (!next.queue.empty()) {
      const int t = next.queue.front();
      next.queue.pop_front();
      if ((req >> t) & 1u) {
        next.holder = t;
        granted = t;
        break;
      }
    }
  }
  return {next, granted};
}

std::string fifo_state_name(const FifoState& s) {
  std::string name = s.holder < 0 ? "I" : "H" + std::to_string(s.holder);
  name += "q";
  for (int t : s.queue) name += std::to_string(t);
  return name;
}

}  // namespace

synth::Fsm build_fifo_fsm(int n) {
  RCARB_CHECK(n >= 2 && n <= 4,
              "FIFO FSM supports n in [2, 4] (state space is O(sum k-perms))");
  synth::Fsm fsm("fifo_arbiter" + std::to_string(n));
  for (int i = 0; i < n; ++i)
    fsm.add_input(signal_name("req", static_cast<std::size_t>(i)));
  for (int i = 0; i < n; ++i)
    fsm.add_output(signal_name("grant", static_cast<std::size_t>(i)));

  // Reachability exploration from the empty state; every (state, input
  // minterm) pair becomes one transition.
  std::map<FifoState, synth::StateId> ids;
  std::deque<FifoState> frontier;
  const FifoState start{};
  ids.emplace(start, fsm.add_state(fifo_state_name(start)));
  frontier.push_back(start);
  constexpr std::size_t kStateLimit = 512;

  std::vector<std::tuple<FifoState, std::uint64_t, FifoState, int>> edges;
  while (!frontier.empty()) {
    const FifoState s = frontier.front();
    frontier.pop_front();
    for (std::uint64_t req = 0; req < (1ull << n); ++req) {
      auto [next, granted] = fifo_step(s, req, n);
      if (!ids.contains(next)) {
        RCARB_CHECK(ids.size() < kStateLimit, "FIFO state space exploded");
        ids.emplace(next, fsm.add_state(fifo_state_name(next)));
        frontier.push_back(next);
      }
      edges.emplace_back(s, req, next, granted);
    }
  }
  for (const auto& [from, req, to, granted] : edges) {
    logic::Cube minterm;
    for (int v = 0; v < n; ++v)
      minterm = minterm.with_literal(v, ((req >> v) & 1u) != 0);
    fsm.add_transition(ids.at(from), minterm, ids.at(to),
                       granted < 0 ? 0 : (1ull << granted));
  }
  return fsm;
}

}  // namespace rcarb::core
