// Arbiter generation and pre-characterization.
//
// Reproduces the paper's Sec. 4.2/4.3 methodology: for each N the round-
// robin FSM is generated, synthesized under a chosen flow and encoding, and
// characterized for area (CLBs) and maximum clock speed (MHz).  The
// partitioners rely on the PrecharCache — "arbiters are pre-characterized
// for area and speed thus making the partitioners' estimation accurate."
#pragma once

#include <cstdint>

#include "core/hier.hpp"
#include "core/selfcheck.hpp"
#include "synth/flow.hpp"
#include "timing/delay_model.hpp"
#include "timing/sta.hpp"

namespace rcarb::core {

/// Pre-characterized metrics of one generated arbiter.
struct ArbiterCharacteristics {
  int n = 0;
  synth::Encoding encoding = synth::Encoding::kOneHot;
  synth::FlowKind flow = synth::FlowKind::kExpressLike;
  std::size_t clbs = 0;
  std::size_t luts = 0;
  std::size_t ffs = 0;
  int lut_depth = 0;
  double fmax_mhz = 0.0;
  std::size_t aig_ands = 0;
  /// Fixed per-burst protocol cost (Fig. 8): known before synthesis.
  int overhead_cycles = 0;
};

/// A fully generated arbiter: netlist plus its characterization.
struct GeneratedArbiter {
  synth::SynthResult synth;
  timing::TimingReport timing;
  ArbiterCharacteristics chars;
};

/// How the arbiter RTL is produced before mapping.
enum class GeneratorMode : std::uint8_t {
  /// Factored rotating-priority-chain structure (the generator's default;
  /// what a multi-level-optimizing tool derives from the Fig. 5 FSM).
  kStructural,
  /// Generic two-level FSM synthesis of the Fig. 5 case statement
  /// (exercises the full espresso/AIG/mapping substrate; larger results).
  kBehavioral,
};

[[nodiscard]] const char* to_string(GeneratorMode m);

/// Generates and characterizes an N-input round-robin arbiter.
[[nodiscard]] GeneratedArbiter generate_round_robin(
    int n, synth::FlowKind flow, synth::Encoding encoding,
    const timing::DelayModel& model = timing::xc4000e_speed3(),
    GeneratorMode mode = GeneratorMode::kStructural);

/// Generates and characterizes a self-checking (duplicate-and-compare or
/// TMR-voted) round-robin arbiter.  The copies are instantiated from the
/// structural AIG and stitched with the comparator / voter, so the `error`
/// net is a first-class primary output of the netlist; area/speed land in
/// `chars` exactly like the plain variants (the Fig. 6/7 benches put them
/// side by side to price the redundancy).
[[nodiscard]] GeneratedArbiter generate_self_checking(
    int n, CheckMode mode, synth::Encoding encoding,
    const timing::DelayModel& model = timing::xc4000e_speed3());

/// Generates and characterizes a scalable arbiter (core/hier.hpp) of the
/// given kind at any N in [1, kMaxWideInputs] — the large-N extension of
/// generate_round_robin.  kFlatFsm builds the width-unlimited one-hot
/// Fig. 5 chain; kHierarchical uses `arity`-way tree nodes; kPrefix is the
/// Kogge-Stone variant (arity ignored).  Always one-hot / depth-oriented,
/// so area/fmax crossovers compare structures, not flows.
[[nodiscard]] GeneratedArbiter generate_scalable(
    ArbiterKind kind, int n, int arity = 4,
    const timing::DelayModel& model = timing::xc4000e_speed3());

/// Memoized generate_scalable, same locking discipline as
/// generate_round_robin_cached.
[[nodiscard]] const GeneratedArbiter& generate_scalable_cached(
    ArbiterKind kind, int n, int arity = 4,
    const timing::DelayModel& model = timing::xc4000e_speed3());

/// Synthesizes and characterizes an arbitrary arbiter FSM (used for the
/// Sec. 4 policy comparison; the FSM's inputs are its request lines).
[[nodiscard]] GeneratedArbiter characterize_fsm(
    const synth::Fsm& fsm, int n, synth::FlowKind flow,
    synth::Encoding encoding,
    const timing::DelayModel& model = timing::xc4000e_speed3());

/// Hit/miss counters of the process-wide synthesis memo.
struct SynthMemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

[[nodiscard]] SynthMemoStats synth_memo_stats();

/// Memoized generate_round_robin: identical configurations (same N, flow,
/// encoding, delay model, and generator mode) synthesize once per process
/// and every later caller gets a reference to the same immutable result.
/// Sweep cells — ablation grids, fault-campaign cells, partitioner
/// estimation — hit this instead of re-running synthesis.  Thread-safe
/// under RCARB_JOBS: a mutex guards the key map and a per-entry
/// std::once_flag runs each synthesis exactly once, so distinct keys still
/// synthesize concurrently.  The returned reference lives for the process.
[[nodiscard]] const GeneratedArbiter& generate_round_robin_cached(
    int n, synth::FlowKind flow, synth::Encoding encoding,
    const timing::DelayModel& model = timing::xc4000e_speed3(),
    GeneratorMode mode = GeneratorMode::kStructural);

/// Memoized generate_self_checking, same locking discipline as
/// generate_round_robin_cached.  The degradation supervisor prices its
/// reconfiguration stalls off these characteristics, and the degradation
/// bench sweeps hit this instead of re-synthesizing per cell.
[[nodiscard]] const GeneratedArbiter& generate_self_checking_cached(
    int n, CheckMode mode, synth::Encoding encoding,
    const timing::DelayModel& model = timing::xc4000e_speed3());

/// Memoized behavioral synthesis of the N-input round-robin FSM under the
/// Express-like flow, keyed by (N, encoding, hardening).  This is the
/// netlist-producing twin of generate_round_robin_cached for callers that
/// need the hardened (SEU-recovering) variant, which only synthesize_fsm
/// supports.  Same locking discipline; the reference lives for the process.
[[nodiscard]] const synth::SynthResult& synthesize_round_robin_cached(
    int n, synth::Encoding encoding, bool harden);

/// Memoizing cache over (n, flow, encoding) used by partitioning/estimation.
class PrecharCache {
 public:
  explicit PrecharCache(
      synth::FlowKind flow = synth::FlowKind::kExpressLike,
      synth::Encoding encoding = synth::Encoding::kOneHot,
      timing::DelayModel model = timing::xc4000e_speed3())
      : flow_(flow), encoding_(encoding), model_(model) {}

  /// Characteristics of the N-input arbiter (synthesizes on first use).
  const ArbiterCharacteristics& get(int n);

 private:
  synth::FlowKind flow_;
  synth::Encoding encoding_;
  timing::DelayModel model_;
};

}  // namespace rcarb::core
