// Arbiter generation and pre-characterization.
//
// Reproduces the paper's Sec. 4.2/4.3 methodology: for each N the round-
// robin FSM is generated, synthesized under a chosen flow and encoding, and
// characterized for area (CLBs) and maximum clock speed (MHz).  The
// partitioners rely on the PrecharCache — "arbiters are pre-characterized
// for area and speed thus making the partitioners' estimation accurate."
#pragma once

#include <cstdint>
#include <map>
#include <tuple>

#include "synth/flow.hpp"
#include "timing/delay_model.hpp"
#include "timing/sta.hpp"

namespace rcarb::core {

/// Pre-characterized metrics of one generated arbiter.
struct ArbiterCharacteristics {
  int n = 0;
  synth::Encoding encoding = synth::Encoding::kOneHot;
  synth::FlowKind flow = synth::FlowKind::kExpressLike;
  std::size_t clbs = 0;
  std::size_t luts = 0;
  std::size_t ffs = 0;
  int lut_depth = 0;
  double fmax_mhz = 0.0;
  std::size_t aig_ands = 0;
  /// Fixed per-burst protocol cost (Fig. 8): known before synthesis.
  int overhead_cycles = 0;
};

/// A fully generated arbiter: netlist plus its characterization.
struct GeneratedArbiter {
  synth::SynthResult synth;
  timing::TimingReport timing;
  ArbiterCharacteristics chars;
};

/// How the arbiter RTL is produced before mapping.
enum class GeneratorMode : std::uint8_t {
  /// Factored rotating-priority-chain structure (the generator's default;
  /// what a multi-level-optimizing tool derives from the Fig. 5 FSM).
  kStructural,
  /// Generic two-level FSM synthesis of the Fig. 5 case statement
  /// (exercises the full espresso/AIG/mapping substrate; larger results).
  kBehavioral,
};

[[nodiscard]] const char* to_string(GeneratorMode m);

/// Generates and characterizes an N-input round-robin arbiter.
[[nodiscard]] GeneratedArbiter generate_round_robin(
    int n, synth::FlowKind flow, synth::Encoding encoding,
    const timing::DelayModel& model = timing::xc4000e_speed3(),
    GeneratorMode mode = GeneratorMode::kStructural);

/// Synthesizes and characterizes an arbitrary arbiter FSM (used for the
/// Sec. 4 policy comparison; the FSM's inputs are its request lines).
[[nodiscard]] GeneratedArbiter characterize_fsm(
    const synth::Fsm& fsm, int n, synth::FlowKind flow,
    synth::Encoding encoding,
    const timing::DelayModel& model = timing::xc4000e_speed3());

/// Memoizing cache over (n, flow, encoding) used by partitioning/estimation.
class PrecharCache {
 public:
  explicit PrecharCache(
      synth::FlowKind flow = synth::FlowKind::kExpressLike,
      synth::Encoding encoding = synth::Encoding::kOneHot,
      timing::DelayModel model = timing::xc4000e_speed3())
      : flow_(flow), encoding_(encoding), model_(model) {}

  /// Characteristics of the N-input arbiter (synthesizes on first use).
  const ArbiterCharacteristics& get(int n);

 private:
  synth::FlowKind flow_;
  synth::Encoding encoding_;
  timing::DelayModel model_;
  std::map<int, ArbiterCharacteristics> cache_;
};

}  // namespace rcarb::core
