// Shared-line merge planning and resolution (paper Fig. 4).
//
// When several tasks drive the lines of one physical resource, each line is
// shared by one of three schemes: tristate buffers (address/data lines,
// where a floating value is harmless), OR-merging for active-high control
// inputs (a memory's write select must read 0 when idle — a floating line
// could commit phantom writes), and AND-merging for active-low inputs.
// This module plans the scheme per line class and provides the behavioral
// resolution function used by the system simulator and the tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rcarb::core {

/// What a shared line is, electrically.
enum class LineClass : std::uint8_t {
  kAddress,          // bus; high-impedance when idle is fine
  kData,             // bus; high-impedance when idle is fine
  kActiveHighControl,  // e.g. write select (write on 1)
  kActiveLowControl,   // e.g. chip enable (active on 0)
};

/// How the line is merged across drivers.
enum class MergeStrategy : std::uint8_t {
  kTristate,  // Fig. 4a: grant enables the driver, idle = Z
  kOrMerge,   // Fig. 4b: idle drivers emit 0, lines OR-ed
  kAndMerge,  // Fig. 4c: idle drivers emit 1, lines AND-ed
};

[[nodiscard]] const char* to_string(LineClass c);
[[nodiscard]] const char* to_string(MergeStrategy s);

/// The paper's rule: buses tristate, active-high controls OR, active-low
/// controls AND.
[[nodiscard]] MergeStrategy strategy_for(LineClass c);

/// Resolution result of one shared line in one cycle.
struct Resolved {
  bool is_z = false;        // nobody drives a tristated line
  bool conflict = false;    // >1 simultaneous tristate drivers (design bug)
  bool value = false;       // resolved value when !is_z && !conflict
};

/// Resolves one cycle of a shared line.  drivers[i] is task i's contribution:
/// nullopt = not driving (tristated / emitting the idle value), a bool =
/// actively driving that value.
[[nodiscard]] Resolved resolve_line(MergeStrategy strategy,
                                    const std::vector<std::optional<bool>>& drivers);

/// A planned merge for one line of one shared resource.
struct LineMergePlan {
  std::string resource_name;
  LineClass line_class = LineClass::kAddress;
  MergeStrategy strategy = MergeStrategy::kTristate;
  std::size_t num_drivers = 0;
};

/// Plans the merges for one shared memory bank accessed by `num_tasks`.
[[nodiscard]] std::vector<LineMergePlan> plan_memory_lines(
    const std::string& bank_name, std::size_t num_tasks);

/// Plans the merges for one shared channel driven by `num_sources` tasks.
[[nodiscard]] std::vector<LineMergePlan> plan_channel_lines(
    const std::string& channel_name, std::size_t num_sources);

}  // namespace rcarb::core
