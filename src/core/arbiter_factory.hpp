// Arbiter kind selection and the single system-layer arbiter factory.
//
// PR 7 left three synthesizable round-robin structures (core/hier.hpp)
// with pre-characterized area/fmax (generate_scalable_cached); the system
// layers (src/service, src/rcsim) each hand-rolled flat-only construction.
// This module is the one audited construction path both layers share:
//
//  * ArbiterChoice: what an options struct asks for — an explicit kind or
//    kAuto, which resolves from the port count and an fmax budget using
//    the pre-characterized cache (select_arbiter_kind).
//  * make_system_arbiter: builds the behavioral arbiter for a resolved
//    kind plus the policy/self-check/hardening switches the simulators
//    need, and hands back typed side pointers so callers keep their fast
//    paths (last_grant_mask, SEU injection) without downcasting at every
//    construction site.
#pragma once

#include <cstdint>
#include <memory>

#include "core/hier.hpp"
#include "core/policy.hpp"
#include "core/selfcheck.hpp"
#include "timing/delay_model.hpp"

namespace rcarb::core {

/// What an options struct requests: a concrete structure, or kAuto to let
/// select_arbiter_kind pick from the port count and a timing budget.
enum class ArbiterChoice : std::uint8_t {
  kAuto,          // resolve from (n, fmax budget) via the prechar cache
  kFlatFsm,       // Fig. 5 chain (RoundRobinArbiter; FlatWideArbiter > 64)
  kHierarchical,  // tree-of-arbiters
  kPrefix,        // Kogge-Stone thermometer-mask
};

[[nodiscard]] const char* to_string(ArbiterChoice c);

/// Picks the cheapest structure whose pre-characterized fmax meets
/// `timing_budget_mhz` (> 0 required), consulting generate_scalable_cached
/// in area order: flat, then hierarchical, then prefix.  Flat candidates
/// are only considered up to 64 ports — past that the chain's fmax decays
/// ~1/N and synthesizing it just to rule it out would dominate the caller.
/// When nothing meets the budget the fastest structure wins.
[[nodiscard]] ArbiterKind select_arbiter_kind(
    int n, double timing_budget_mhz, int arity = 4,
    const timing::DelayModel& model = timing::xc4000e_speed3());

/// Maps a choice to a concrete kind: explicit choices pass through (the
/// budget is ignored); kAuto runs select_arbiter_kind and therefore
/// requires timing_budget_mhz > 0.
[[nodiscard]] ArbiterKind resolve_arbiter_choice(
    ArbiterChoice choice, int n, double timing_budget_mhz, int arity = 4,
    const timing::DelayModel& model = timing::xc4000e_speed3());

/// Everything a system layer configures about one arbiter instance.  The
/// kind must already be resolved (no kAuto here): resolution happens once
/// at the options boundary, construction is pure.
struct SystemArbiterSpec {
  Policy policy = Policy::kRoundRobin;
  /// Round-robin structure; ignored for non-round-robin policies.
  ArbiterKind kind = ArbiterKind::kFlatFsm;
  int arity = 4;  // tree arity, kHierarchical only
  /// Preemption/hardening; flat-only — the scalable kinds have no one-hot
  /// register to harden and no hold counter, so these are ignored there.
  RoundRobinOptions rr;
  /// Replication; flat-only (the self-checking netlists duplicate the
  /// Fig. 5 core) and capped at 64 ports (the behavioral model compares
  /// per-copy F/C state words).  Combining it with a non-flat kind or a
  /// wider resource CHECK-fails.
  CheckMode self_check = CheckMode::kNone;
  std::uint64_t seed = 1;  // kRandom policy only
};

/// A constructed arbiter plus typed views into it.  Exactly one of the
/// side pointers is set when the matching subclass was built; all alias
/// `arbiter` and share its lifetime.
struct SystemArbiter {
  std::unique_ptr<Arbiter> arbiter;
  ArbiterKind kind = ArbiterKind::kFlatFsm;
  RoundRobinArbiter* rr = nullptr;
  SelfCheckingArbiter* sc = nullptr;
  HierarchicalArbiter* hier = nullptr;
  PrefixArbiter* prefix = nullptr;
  FlatWideArbiter* flat_wide = nullptr;
};

/// The single construction path for system-layer arbiters (service engine
/// and rcsim, both first-build and post-quarantine regeneration).
[[nodiscard]] SystemArbiter make_system_arbiter(int n,
                                                const SystemArbiterSpec& spec);

}  // namespace rcarb::core
