// Synthesizable FSMs for the alternative arbitration policies.
//
// Sec. 4 of the paper reports that random, FIFO and priority resolution
// were *examined* and rejected: "the required hardware made the arbiter
// either too slow or too large".  These builders make that claim
// measurable: each policy becomes a Mealy FSM that runs through the same
// synthesis flow as the round-robin arbiter, so the policy ablation bench
// can put CLB counts and Fmax next to each other.
//
//   * priority  — states IDLE, H0..H(N-1); fixed descending priority with
//     grant-hold; scan-structured guards like the round-robin machine.
//   * random    — a 3-bit maximal LFSR supplies a rotating scan offset;
//     states are (holder|idle) x LFSR phase.  A behavioral twin
//     (LfsrRandomArbiter) exists for equivalence testing (the Policy::
//     kRandom simulation model uses an ideal RNG instead).
//   * fifo      — true arrival-order service.  The queue *is* the state, so
//     the machine is built by reachability exploration from the empty
//     queue; state count explodes combinatorially with N — which is
//     exactly the paper's point.  Supported for n in [2, 4].
#pragma once

#include <cstdint>
#include <functional>

#include "core/policy.hpp"
#include "synth/fsm.hpp"

namespace rcarb::core {

/// Static-priority arbiter FSM (lowest index wins; holder keeps).
[[nodiscard]] synth::Fsm build_priority_fsm(int n);

/// LFSR-randomized arbiter FSM.  2 <= n <= 6 keeps one-hot elaboration
/// within the 64-variable cube universe.
[[nodiscard]] synth::Fsm build_lfsr_random_fsm(int n);

/// FIFO arbiter FSM via reachable-state exploration.  2 <= n <= 4.
[[nodiscard]] synth::Fsm build_fifo_fsm(int n);

/// Behavioral twin of build_lfsr_random_fsm (same LFSR, same scan).
class LfsrRandomArbiter final : public Arbiter {
 public:
  explicit LfsrRandomArbiter(int n);
  void reset() override;
  [[nodiscard]] std::string describe() const override;

 protected:
  int do_step(std::uint64_t requests) override;

 private:
  int holder_ = -1;  // -1: idle
  int lfsr_ = 1;     // 3-bit maximal LFSR, never 0
};

/// Advances the 3-bit maximal LFSR (x^3 + x^2 + 1); period 7, never 0.
[[nodiscard]] int lfsr3_next(int state);

}  // namespace rcarb::core
