#include "core/generator.hpp"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "core/policy.hpp"
#include "core/rr_fsm.hpp"
#include "core/structural.hpp"
#include "support/check.hpp"

namespace rcarb::core {

const char* to_string(GeneratorMode m) {
  switch (m) {
    case GeneratorMode::kStructural:
      return "structural";
    case GeneratorMode::kBehavioral:
      return "behavioral";
  }
  return "?";
}

GeneratedArbiter generate_round_robin(int n, synth::FlowKind flow,
                                      synth::Encoding encoding,
                                      const timing::DelayModel& model,
                                      GeneratorMode mode) {
  GeneratedArbiter out;
  // The paper notes Synplify applied one-hot no matter what the VHDL asked.
  const synth::Encoding used = flow == synth::FlowKind::kSynplifyLike
                                   ? synth::Encoding::kOneHot
                                   : encoding;
  if (mode == GeneratorMode::kStructural) {
    const synth::Fsm fsm = build_round_robin_fsm(n);
    const synth::StateCodes codes = synth::encode_states(fsm, used);
    const aig::Aig comb = build_round_robin_aig(n, codes);
    synth::MapOptions map_options;
    map_options.objective = flow == synth::FlowKind::kSynplifyLike
                                ? synth::MapObjective::kArea
                                : synth::MapObjective::kDepth;
    out.synth = synth::finish_machine_synthesis(
        comb, /*num_inputs=*/n, codes.num_bits,
        codes.code[fsm.reset_state()], map_options);
    out.synth.used_encoding = used;
  } else {
    synth::FlowOptions options;
    options.kind = flow;
    options.encoding = encoding;
    out.synth = synth::synthesize_fsm(build_round_robin_fsm(n), options);
  }
  out.timing = timing::analyze(out.synth.netlist, model);

  out.chars.n = n;
  out.chars.encoding = out.synth.used_encoding;
  out.chars.flow = flow;
  out.chars.clbs = out.synth.clb.clbs;
  out.chars.luts = out.synth.clb.luts;
  out.chars.ffs = out.synth.clb.ffs;
  out.chars.lut_depth = out.synth.map.depth;
  out.chars.fmax_mhz = out.timing.fmax_mhz;
  out.chars.aig_ands = out.synth.aig_ands;
  out.chars.overhead_cycles = kProtocolOverheadCycles;
  return out;
}

GeneratedArbiter generate_self_checking(int n, CheckMode mode,
                                        synth::Encoding encoding,
                                        const timing::DelayModel& model) {
  RCARB_CHECK(mode != CheckMode::kNone,
              "generate_self_checking needs kDuplicate or kTmr");
  const synth::Fsm fsm = build_round_robin_fsm(n);
  const synth::StateCodes codes = synth::encode_states(fsm, encoding);
  const std::uint64_t reset = codes.code[fsm.reset_state()];
  const int copies = mode == CheckMode::kDuplicate ? 2 : 3;
  const aig::Aig comb = build_self_checking_aig(n, codes, mode, reset);

  // Every copy's register bank resets to the same per-copy code,
  // concatenated copy-major to match the AIG's state-input order.
  std::uint64_t full_reset = 0;
  for (int c = 0; c < copies; ++c)
    full_reset |= reset << (c * codes.num_bits);

  synth::MapOptions map_options;
  map_options.objective = synth::MapObjective::kDepth;

  GeneratedArbiter out;
  out.synth = synth::finish_machine_synthesis(
      comb, /*num_inputs=*/n, copies * codes.num_bits, full_reset,
      map_options);
  out.synth.used_encoding = encoding;
  out.timing = timing::analyze(out.synth.netlist, model);

  out.chars.n = n;
  out.chars.encoding = encoding;
  out.chars.flow = synth::FlowKind::kExpressLike;
  out.chars.clbs = out.synth.clb.clbs;
  out.chars.luts = out.synth.clb.luts;
  out.chars.ffs = out.synth.clb.ffs;
  out.chars.lut_depth = out.synth.map.depth;
  out.chars.fmax_mhz = out.timing.fmax_mhz;
  out.chars.aig_ands = out.synth.aig_ands;
  out.chars.overhead_cycles = kProtocolOverheadCycles;
  return out;
}

GeneratedArbiter generate_scalable(ArbiterKind kind, int n, int arity,
                                   const timing::DelayModel& model) {
  aig::Aig comb;
  int num_state_bits = 0;
  switch (kind) {
    case ArbiterKind::kFlatFsm:
      comb = build_flat_onehot_aig(n);
      num_state_bits = 2 * n;
      break;
    case ArbiterKind::kHierarchical:
      comb = build_hierarchical_aig(n, arity);
      num_state_bits = make_hier_shape(n, arity).num_state_bits();
      break;
    case ArbiterKind::kPrefix:
      comb = build_prefix_aig(n);
      num_state_bits = n;
      break;
  }
  synth::MapOptions map_options;
  map_options.objective = synth::MapObjective::kDepth;

  GeneratedArbiter out;
  out.synth = synth::finish_machine_synthesis(
      comb, /*num_inputs=*/n, num_state_bits,
      scalable_reset_bits(kind, n, arity), map_options);
  out.synth.used_encoding = synth::Encoding::kOneHot;
  out.timing = timing::analyze(out.synth.netlist, model);

  out.chars.n = n;
  out.chars.encoding = synth::Encoding::kOneHot;
  out.chars.flow = synth::FlowKind::kExpressLike;
  out.chars.clbs = out.synth.clb.clbs;
  out.chars.luts = out.synth.clb.luts;
  out.chars.ffs = out.synth.clb.ffs;
  out.chars.lut_depth = out.synth.map.depth;
  out.chars.fmax_mhz = out.timing.fmax_mhz;
  out.chars.aig_ands = out.synth.aig_ands;
  out.chars.overhead_cycles = kProtocolOverheadCycles;
  return out;
}

GeneratedArbiter characterize_fsm(const synth::Fsm& fsm, int n,
                                  synth::FlowKind flow,
                                  synth::Encoding encoding,
                                  const timing::DelayModel& model) {
  GeneratedArbiter out;
  synth::FlowOptions options;
  options.kind = flow;
  options.encoding = encoding;
  out.synth = synth::synthesize_fsm(fsm, options);
  out.timing = timing::analyze(out.synth.netlist, model);
  out.chars.n = n;
  out.chars.encoding = out.synth.used_encoding;
  out.chars.flow = flow;
  out.chars.clbs = out.synth.clb.clbs;
  out.chars.luts = out.synth.clb.luts;
  out.chars.ffs = out.synth.clb.ffs;
  out.chars.lut_depth = out.synth.map.depth;
  out.chars.fmax_mhz = out.timing.fmax_mhz;
  out.chars.aig_ands = out.synth.aig_ands;
  out.chars.overhead_cycles = kProtocolOverheadCycles;
  return out;
}

namespace {

// Process-wide synthesis memo.  The mutex only guards the key->entry maps;
// each entry's synthesis runs under its own std::once_flag, so two sweep
// workers asking for *different* configurations synthesize concurrently
// while two workers asking for the *same* one share a single run (the
// second blocks in call_once until the first finishes).  Entries are
// heap-allocated so references stay stable as the maps rehash/rebalance.
struct MemoCounters {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
};

MemoCounters& memo_counters() {
  static MemoCounters counters;
  return counters;
}

template <typename Key, typename Value>
class SynthMemo {
 public:
  template <typename MakeFn>
  const Value& get_or_synthesize(const Key& key, MakeFn&& make) {
    Entry* entry = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto [it, inserted] = entries_.try_emplace(key);
      if (inserted) {
        it->second = std::make_unique<Entry>();
        memo_counters().misses.fetch_add(1, std::memory_order_relaxed);
      } else {
        memo_counters().hits.fetch_add(1, std::memory_order_relaxed);
      }
      entry = it->second.get();
    }
    std::call_once(entry->once, [&] { entry->value = make(); });
    return entry->value;
  }

 private:
  struct Entry {
    std::once_flag once;
    Value value;
  };
  std::mutex mutex_;
  std::map<Key, std::unique_ptr<Entry>> entries_;
};

// The delay model participates in the key as its six raw parameters so two
// distinct models never alias to one characterization.
using ModelKey = std::tuple<double, double, double, double, double, double>;

ModelKey model_key(const timing::DelayModel& m) {
  return {m.lut_delay,       m.clk_to_q,         m.setup,
          m.net_base,        m.net_per_fanout,   m.clock_uncertainty};
}

using GenerateKey = std::tuple<int, synth::FlowKind, synth::Encoding,
                               GeneratorMode, ModelKey>;
using BehavioralKey = std::tuple<int, synth::Encoding, bool>;
using SelfCheckKey = std::tuple<int, CheckMode, synth::Encoding, ModelKey>;
using ScalableKey = std::tuple<ArbiterKind, int, int, ModelKey>;

SynthMemo<GenerateKey, GeneratedArbiter>& generate_memo() {
  static auto* memo = new SynthMemo<GenerateKey, GeneratedArbiter>();
  return *memo;
}

SynthMemo<BehavioralKey, synth::SynthResult>& behavioral_memo() {
  static auto* memo = new SynthMemo<BehavioralKey, synth::SynthResult>();
  return *memo;
}

SynthMemo<SelfCheckKey, GeneratedArbiter>& self_check_memo() {
  static auto* memo = new SynthMemo<SelfCheckKey, GeneratedArbiter>();
  return *memo;
}

SynthMemo<ScalableKey, GeneratedArbiter>& scalable_memo() {
  static auto* memo = new SynthMemo<ScalableKey, GeneratedArbiter>();
  return *memo;
}

}  // namespace

SynthMemoStats synth_memo_stats() {
  SynthMemoStats stats;
  stats.hits = memo_counters().hits.load(std::memory_order_relaxed);
  stats.misses = memo_counters().misses.load(std::memory_order_relaxed);
  return stats;
}

const GeneratedArbiter& generate_round_robin_cached(
    int n, synth::FlowKind flow, synth::Encoding encoding,
    const timing::DelayModel& model, GeneratorMode mode) {
  // Synplify forces one-hot, so fold the requested encoding into the one
  // actually used — otherwise the same netlist would be synthesized once
  // per requested-encoding value.
  const synth::Encoding used = flow == synth::FlowKind::kSynplifyLike
                                   ? synth::Encoding::kOneHot
                                   : encoding;
  const GenerateKey key{n, flow, used, mode, model_key(model)};
  return generate_memo().get_or_synthesize(
      key, [&] { return generate_round_robin(n, flow, used, model, mode); });
}

const GeneratedArbiter& generate_self_checking_cached(
    int n, CheckMode mode, synth::Encoding encoding,
    const timing::DelayModel& model) {
  const SelfCheckKey key{n, mode, encoding, model_key(model)};
  return self_check_memo().get_or_synthesize(
      key, [&] { return generate_self_checking(n, mode, encoding, model); });
}

const synth::SynthResult& synthesize_round_robin_cached(int n,
                                                        synth::Encoding
                                                            encoding,
                                                        bool harden) {
  const BehavioralKey key{n, encoding, harden};
  return behavioral_memo().get_or_synthesize(key, [&] {
    synth::FlowOptions options;
    options.kind = synth::FlowKind::kExpressLike;
    options.encoding = encoding;
    options.harden = harden;
    return synth::synthesize_fsm(build_round_robin_fsm(n), options);
  });
}

const GeneratedArbiter& generate_scalable_cached(
    ArbiterKind kind, int n, int arity, const timing::DelayModel& model) {
  // The arity only shapes the hierarchical tree; normalize it for the
  // other kinds so they don't synthesize once per requested arity.
  const int used_arity = kind == ArbiterKind::kHierarchical ? arity : 0;
  const ScalableKey key{kind, n, used_arity, model_key(model)};
  return scalable_memo().get_or_synthesize(
      key, [&] { return generate_scalable(kind, n, arity, model); });
}

const ArbiterCharacteristics& PrecharCache::get(int n) {
  // Delegates to the process-wide memo: every PrecharCache instance with
  // the same flow/encoding/model shares one synthesis per N.
  return generate_round_robin_cached(n, flow_, encoding_, model_).chars;
}

}  // namespace rcarb::core
