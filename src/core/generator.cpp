#include "core/generator.hpp"

#include "core/policy.hpp"
#include "core/rr_fsm.hpp"
#include "core/structural.hpp"
#include "support/check.hpp"

namespace rcarb::core {

const char* to_string(GeneratorMode m) {
  switch (m) {
    case GeneratorMode::kStructural:
      return "structural";
    case GeneratorMode::kBehavioral:
      return "behavioral";
  }
  return "?";
}

GeneratedArbiter generate_round_robin(int n, synth::FlowKind flow,
                                      synth::Encoding encoding,
                                      const timing::DelayModel& model,
                                      GeneratorMode mode) {
  GeneratedArbiter out;
  // The paper notes Synplify applied one-hot no matter what the VHDL asked.
  const synth::Encoding used = flow == synth::FlowKind::kSynplifyLike
                                   ? synth::Encoding::kOneHot
                                   : encoding;
  if (mode == GeneratorMode::kStructural) {
    const synth::Fsm fsm = build_round_robin_fsm(n);
    const synth::StateCodes codes = synth::encode_states(fsm, used);
    const aig::Aig comb = build_round_robin_aig(n, codes);
    synth::MapOptions map_options;
    map_options.objective = flow == synth::FlowKind::kSynplifyLike
                                ? synth::MapObjective::kArea
                                : synth::MapObjective::kDepth;
    out.synth = synth::finish_machine_synthesis(
        comb, /*num_inputs=*/n, codes.num_bits,
        codes.code[fsm.reset_state()], map_options);
    out.synth.used_encoding = used;
  } else {
    synth::FlowOptions options;
    options.kind = flow;
    options.encoding = encoding;
    out.synth = synth::synthesize_fsm(build_round_robin_fsm(n), options);
  }
  out.timing = timing::analyze(out.synth.netlist, model);

  out.chars.n = n;
  out.chars.encoding = out.synth.used_encoding;
  out.chars.flow = flow;
  out.chars.clbs = out.synth.clb.clbs;
  out.chars.luts = out.synth.clb.luts;
  out.chars.ffs = out.synth.clb.ffs;
  out.chars.lut_depth = out.synth.map.depth;
  out.chars.fmax_mhz = out.timing.fmax_mhz;
  out.chars.aig_ands = out.synth.aig_ands;
  out.chars.overhead_cycles = kProtocolOverheadCycles;
  return out;
}

GeneratedArbiter characterize_fsm(const synth::Fsm& fsm, int n,
                                  synth::FlowKind flow,
                                  synth::Encoding encoding,
                                  const timing::DelayModel& model) {
  GeneratedArbiter out;
  synth::FlowOptions options;
  options.kind = flow;
  options.encoding = encoding;
  out.synth = synth::synthesize_fsm(fsm, options);
  out.timing = timing::analyze(out.synth.netlist, model);
  out.chars.n = n;
  out.chars.encoding = out.synth.used_encoding;
  out.chars.flow = flow;
  out.chars.clbs = out.synth.clb.clbs;
  out.chars.luts = out.synth.clb.luts;
  out.chars.ffs = out.synth.clb.ffs;
  out.chars.lut_depth = out.synth.map.depth;
  out.chars.fmax_mhz = out.timing.fmax_mhz;
  out.chars.aig_ands = out.synth.aig_ands;
  out.chars.overhead_cycles = kProtocolOverheadCycles;
  return out;
}

const ArbiterCharacteristics& PrecharCache::get(int n) {
  if (auto it = cache_.find(n); it != cache_.end()) return it->second;
  GeneratedArbiter g = generate_round_robin(n, flow_, encoding_, model_);
  auto [it, inserted] = cache_.emplace(n, g.chars);
  return it->second;
}

}  // namespace rcarb::core
