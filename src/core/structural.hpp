// Structural round-robin arbiter generation.
//
// The behavioral route (core/rr_fsm + synth::synthesize_fsm) feeds the
// Fig. 5 case statement through generic two-level FSM synthesis.  1998-era
// commercial tools additionally performed multi-level factoring, which on
// this FSM discovers the classic *rotating priority chain*: a token
// propagates from the state's priority position past deasserted requests to
// the first requester.  This module emits that factored structure directly
// (as a production arbiter generator would), with the cyclic chain broken
// by the standard duplicated-chain trick.  It is proven equivalent to the
// Fig. 5 behavioral model in the test suite; the behavioral-vs-structural
// gap is quantified by bench_encoding_ablation.
#pragma once

#include "aig/aig.hpp"
#include "synth/encoding.hpp"

namespace rcarb::core {

/// Builds the combinational AIG of the N-input round-robin arbiter under
/// `encoding`.  AIG inputs: req0..req{n-1}, then state bits state0..; AIG
/// outputs: next-state bits ns0.., then grant0..grant{n-1}.  State id
/// convention matches build_round_robin_fsm: F0..F{n-1}, C0..C{n-1}.
[[nodiscard]] aig::Aig build_round_robin_aig(int n,
                                             const synth::StateCodes& codes);

}  // namespace rcarb::core
