#include "core/arbiter_factory.hpp"

#include <array>

#include "core/generator.hpp"
#include "support/check.hpp"

namespace rcarb::core {

const char* to_string(ArbiterChoice c) {
  switch (c) {
    case ArbiterChoice::kAuto:
      return "auto";
    case ArbiterChoice::kFlatFsm:
      return "flat";
    case ArbiterChoice::kHierarchical:
      return "hier";
    case ArbiterChoice::kPrefix:
      return "prefix";
  }
  return "?";
}

ArbiterKind select_arbiter_kind(int n, double timing_budget_mhz, int arity,
                                const timing::DelayModel& model) {
  RCARB_CHECK(n >= 1 && n <= kMaxWideInputs,
              "arbiter size must be in [1, kMaxWideInputs]");
  RCARB_CHECK(timing_budget_mhz > 0.0,
              "kind selection needs a timing budget (fmax floor, MHz > 0)");
  std::array<ArbiterKind, 3> candidates = {ArbiterKind::kFlatFsm,
                                           ArbiterKind::kHierarchical,
                                           ArbiterKind::kPrefix};
  const std::size_t first = n <= 64 ? 0 : 1;  // no flat synthesis past 64
  ArbiterKind fastest = candidates[first];
  double fastest_fmax = -1.0;
  for (std::size_t k = first; k < candidates.size(); ++k) {
    const double fmax =
        generate_scalable_cached(candidates[k], n, arity, model).chars.fmax_mhz;
    if (fmax >= timing_budget_mhz) return candidates[k];
    if (fmax > fastest_fmax) {
      fastest_fmax = fmax;
      fastest = candidates[k];
    }
  }
  return fastest;
}

ArbiterKind resolve_arbiter_choice(ArbiterChoice choice, int n,
                                   double timing_budget_mhz, int arity,
                                   const timing::DelayModel& model) {
  switch (choice) {
    case ArbiterChoice::kAuto:
      return select_arbiter_kind(n, timing_budget_mhz, arity, model);
    case ArbiterChoice::kFlatFsm:
      return ArbiterKind::kFlatFsm;
    case ArbiterChoice::kHierarchical:
      return ArbiterKind::kHierarchical;
    case ArbiterChoice::kPrefix:
      return ArbiterKind::kPrefix;
  }
  RCARB_CHECK(false, "unknown arbiter choice");
  return ArbiterKind::kFlatFsm;
}

SystemArbiter make_system_arbiter(int n, const SystemArbiterSpec& spec) {
  SystemArbiter out;
  if (spec.policy != Policy::kRoundRobin) {
    // Kind is a round-robin concept; the other policies have one
    // behavioral model each.
    out.kind = ArbiterKind::kFlatFsm;
    out.arbiter = make_arbiter(spec.policy, n, spec.seed);
    return out;
  }
  out.kind = spec.kind;
  if (spec.self_check != CheckMode::kNone) {
    RCARB_CHECK(spec.kind == ArbiterKind::kFlatFsm,
                "self-checking arbiters are flat-only (the DMR/TMR netlists "
                "replicate the Fig. 5 core)");
    RCARB_CHECK(n <= 64,
                "self-checking arbiters top out at 64 ports (per-copy F/C "
                "state words); shard wider resources or drop self_check");
    auto sc = std::make_unique<SelfCheckingArbiter>(n, spec.self_check,
                                                    spec.rr);
    out.sc = sc.get();
    out.arbiter = std::move(sc);
    return out;
  }
  switch (spec.kind) {
    case ArbiterKind::kFlatFsm:
      if (n <= 64) {
        auto rr = std::make_unique<RoundRobinArbiter>(n, spec.rr);
        out.rr = rr.get();
        out.arbiter = std::move(rr);
      } else {
        RCARB_CHECK(spec.rr.max_hold_cycles == 0 && !spec.rr.harden,
                    "the wide flat chain models neither preemption nor "
                    "one-hot hardening; use <= 64 ports or a scalable kind");
        auto fw = std::make_unique<FlatWideArbiter>(n);
        out.flat_wide = fw.get();
        out.arbiter = std::move(fw);
      }
      break;
    case ArbiterKind::kHierarchical: {
      auto h = std::make_unique<HierarchicalArbiter>(n, spec.arity);
      out.hier = h.get();
      out.arbiter = std::move(h);
      break;
    }
    case ArbiterKind::kPrefix: {
      auto p = std::make_unique<PrefixArbiter>(n);
      out.prefix = p.get();
      out.arbiter = std::move(p);
      break;
    }
  }
  RCARB_CHECK(out.arbiter != nullptr, "unknown arbiter kind");
  return out;
}

}  // namespace rcarb::core
