// Reconfigurable-computer board models.
//
// SPARCS's view of an RC (paper Sec. 5): multiple FPGAs and memory modules
// connected through static links and/or a programmable crossbar.  A Board is
// pure data — processing elements with CLB capacity and pin budgets,
// physical memory banks attached to PEs, and physical channels (fixed
// neighbor links plus crossbar ports).  The partitioners consume this model;
// retargeting a design is just passing a different Board (the paper's
// portability claim).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rcarb::board {

using PeId = std::size_t;
using BankId = std::size_t;
using LinkId = std::size_t;

/// A processing element (one FPGA).
struct Pe {
  std::string name;
  std::size_t clb_capacity = 0;  // logic capacity in CLBs
  int crossbar_pins = 0;         // width of this PE's crossbar port (0: none)
};

/// A physical memory bank.
struct Bank {
  std::string name;
  std::size_t bytes = 0;
  PeId attached_pe = 0;  // the PE whose pins reach this bank directly
};

/// A fixed inter-PE link (set of dedicated pins between two PEs).
struct Link {
  std::string name;
  PeId pe_a = 0;
  PeId pe_b = 0;
  int width_bits = 0;
};

/// An RC board.
class Board {
 public:
  explicit Board(std::string name) : name_(std::move(name)) {}

  PeId add_pe(std::string name, std::size_t clb_capacity, int crossbar_pins);
  BankId add_bank(std::string name, std::size_t bytes, PeId attached_pe);
  LinkId add_link(std::string name, PeId a, PeId b, int width_bits);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_pes() const { return pes_.size(); }
  [[nodiscard]] std::size_t num_banks() const { return banks_.size(); }
  [[nodiscard]] std::size_t num_links() const { return links_.size(); }

  [[nodiscard]] const Pe& pe(PeId p) const;
  [[nodiscard]] const Bank& bank(BankId b) const;
  [[nodiscard]] const Link& link(LinkId l) const;
  [[nodiscard]] const std::vector<Bank>& banks() const { return banks_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  /// Banks attached to a PE.
  [[nodiscard]] std::vector<BankId> banks_of(PeId p) const;
  /// Links touching a PE.
  [[nodiscard]] std::vector<LinkId> links_of(PeId p) const;
  /// Direct links between two PEs.
  [[nodiscard]] std::vector<LinkId> links_between(PeId a, PeId b) const;

  [[nodiscard]] std::size_t total_clb_capacity() const;
  [[nodiscard]] std::size_t total_memory_bytes() const;
  /// True if any crossbar port pair can connect the two PEs.
  [[nodiscard]] bool crossbar_reachable(PeId a, PeId b) const;

 private:
  std::string name_;
  std::vector<Pe> pes_;
  std::vector<Bank> banks_;
  std::vector<Link> links_;
};

/// The Annapolis Wildforce-like board of the paper's Sec. 5: four XC4013e-3
/// PEs (576 CLBs each), one 32-KByte local SRAM per PE, 36-pin neighbor
/// links in a chain, and a 36-bit programmable-crossbar port per PE.
[[nodiscard]] Board wildforce();

/// A 2-PE starter board with a single shared link (used by examples/tests).
[[nodiscard]] Board mini2();

/// An 8-PE mesh-ish board with larger FPGAs (retargeting demonstrations).
[[nodiscard]] Board mesh8();

}  // namespace rcarb::board
