#include "board/board.hpp"

#include "support/check.hpp"
#include "support/text.hpp"

namespace rcarb::board {

PeId Board::add_pe(std::string name, std::size_t clb_capacity,
                   int crossbar_pins) {
  RCARB_CHECK(clb_capacity > 0, "PE must have CLB capacity");
  RCARB_CHECK(crossbar_pins >= 0, "negative crossbar pins");
  pes_.push_back({std::move(name), clb_capacity, crossbar_pins});
  return pes_.size() - 1;
}

BankId Board::add_bank(std::string name, std::size_t bytes, PeId attached_pe) {
  RCARB_CHECK(attached_pe < pes_.size(), "bank attached to unknown PE");
  RCARB_CHECK(bytes > 0, "bank must have capacity");
  banks_.push_back({std::move(name), bytes, attached_pe});
  return banks_.size() - 1;
}

LinkId Board::add_link(std::string name, PeId a, PeId b, int width_bits) {
  RCARB_CHECK(a < pes_.size() && b < pes_.size(), "link endpoint unknown");
  RCARB_CHECK(a != b, "self link");
  RCARB_CHECK(width_bits > 0, "link width must be positive");
  links_.push_back({std::move(name), a, b, width_bits});
  return links_.size() - 1;
}

const Pe& Board::pe(PeId p) const {
  RCARB_CHECK(p < pes_.size(), "PE out of range");
  return pes_[p];
}

const Bank& Board::bank(BankId b) const {
  RCARB_CHECK(b < banks_.size(), "bank out of range");
  return banks_[b];
}

const Link& Board::link(LinkId l) const {
  RCARB_CHECK(l < links_.size(), "link out of range");
  return links_[l];
}

std::vector<BankId> Board::banks_of(PeId p) const {
  std::vector<BankId> out;
  for (BankId b = 0; b < banks_.size(); ++b)
    if (banks_[b].attached_pe == p) out.push_back(b);
  return out;
}

std::vector<LinkId> Board::links_of(PeId p) const {
  std::vector<LinkId> out;
  for (LinkId l = 0; l < links_.size(); ++l)
    if (links_[l].pe_a == p || links_[l].pe_b == p) out.push_back(l);
  return out;
}

std::vector<LinkId> Board::links_between(PeId a, PeId b) const {
  std::vector<LinkId> out;
  for (LinkId l = 0; l < links_.size(); ++l)
    if ((links_[l].pe_a == a && links_[l].pe_b == b) ||
        (links_[l].pe_a == b && links_[l].pe_b == a))
      out.push_back(l);
  return out;
}

std::size_t Board::total_clb_capacity() const {
  std::size_t total = 0;
  for (const Pe& p : pes_) total += p.clb_capacity;
  return total;
}

std::size_t Board::total_memory_bytes() const {
  std::size_t total = 0;
  for (const Bank& b : banks_) total += b.bytes;
  return total;
}

bool Board::crossbar_reachable(PeId a, PeId b) const {
  RCARB_CHECK(a < pes_.size() && b < pes_.size(), "PE out of range");
  return a != b && pes_[a].crossbar_pins > 0 && pes_[b].crossbar_pins > 0;
}

Board wildforce() {
  Board b("wildforce");
  // Four Xilinx XC4013E-3 PEs; the XC4013 has a 24x24 CLB array = 576 CLBs.
  for (std::size_t i = 0; i < 4; ++i)
    b.add_pe(signal_name("PE", i + 1), 576, 36);
  // One 32-KByte local SRAM per PE.
  for (PeId p = 0; p < 4; ++p)
    b.add_bank(signal_name("MEM", p + 1), 32 * 1024, p);
  // 36-pin fixed links between neighbors.
  b.add_link("L12", 0, 1, 36);
  b.add_link("L23", 1, 2, 36);
  b.add_link("L34", 2, 3, 36);
  return b;
}

Board mini2() {
  Board b("mini2");
  b.add_pe("PE1", 400, 0);
  b.add_pe("PE2", 400, 0);
  b.add_bank("MEM1", 16 * 1024, 0);
  b.add_bank("MEM2", 16 * 1024, 1);
  b.add_link("L12", 0, 1, 16);
  return b;
}

Board mesh8() {
  Board b("mesh8");
  for (std::size_t i = 0; i < 8; ++i)
    b.add_pe(signal_name("PE", i + 1), 1296, 48);  // XC4025-class PEs
  for (PeId p = 0; p < 8; ++p)
    b.add_bank(signal_name("MEM", p + 1), 128 * 1024, p);
  // 2x4 mesh links.
  for (PeId r = 0; r < 2; ++r)
    for (PeId c = 0; c + 1 < 4; ++c)
      b.add_link("H" + std::to_string(r) + std::to_string(c), r * 4 + c,
                 r * 4 + c + 1, 32);
  for (PeId c = 0; c < 4; ++c)
    b.add_link("V" + std::to_string(c), c, 4 + c, 32);
  return b;
}

}  // namespace rcarb::board
