# Empty compiler generated dependencies file for bench_fft_section5.
# This may be replaced when dependencies are built.
