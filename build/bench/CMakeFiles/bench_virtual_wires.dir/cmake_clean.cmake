file(REMOVE_RECURSE
  "CMakeFiles/bench_virtual_wires.dir/bench_virtual_wires.cpp.o"
  "CMakeFiles/bench_virtual_wires.dir/bench_virtual_wires.cpp.o.d"
  "bench_virtual_wires"
  "bench_virtual_wires.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_virtual_wires.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
