# Empty dependencies file for bench_virtual_wires.
# This may be replaced when dependencies are built.
