
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_global_schedule.cpp" "bench/CMakeFiles/bench_global_schedule.dir/bench_global_schedule.cpp.o" "gcc" "bench/CMakeFiles/bench_global_schedule.dir/bench_global_schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/rcarb_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/rcarb_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/rcsim/CMakeFiles/rcarb_rcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/rcarb_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rcarb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/board/CMakeFiles/rcarb_board.dir/DependInfo.cmake"
  "/root/repo/build/src/taskgraph/CMakeFiles/rcarb_taskgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/rcarb_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/rcarb_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/rcarb_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/aig/CMakeFiles/rcarb_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/rcarb_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/rcarb_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rcarb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
