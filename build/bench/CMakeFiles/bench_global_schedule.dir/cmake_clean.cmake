file(REMOVE_RECURSE
  "CMakeFiles/bench_global_schedule.dir/bench_global_schedule.cpp.o"
  "CMakeFiles/bench_global_schedule.dir/bench_global_schedule.cpp.o.d"
  "bench_global_schedule"
  "bench_global_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_global_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
