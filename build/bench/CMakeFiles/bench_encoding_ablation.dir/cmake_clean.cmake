file(REMOVE_RECURSE
  "CMakeFiles/bench_encoding_ablation.dir/bench_encoding_ablation.cpp.o"
  "CMakeFiles/bench_encoding_ablation.dir/bench_encoding_ablation.cpp.o.d"
  "bench_encoding_ablation"
  "bench_encoding_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_encoding_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
