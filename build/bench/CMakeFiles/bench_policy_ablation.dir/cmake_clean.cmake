file(REMOVE_RECURSE
  "CMakeFiles/bench_policy_ablation.dir/bench_policy_ablation.cpp.o"
  "CMakeFiles/bench_policy_ablation.dir/bench_policy_ablation.cpp.o.d"
  "bench_policy_ablation"
  "bench_policy_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_policy_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
