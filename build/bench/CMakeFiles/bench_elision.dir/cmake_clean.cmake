file(REMOVE_RECURSE
  "CMakeFiles/bench_elision.dir/bench_elision.cpp.o"
  "CMakeFiles/bench_elision.dir/bench_elision.cpp.o.d"
  "bench_elision"
  "bench_elision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_elision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
