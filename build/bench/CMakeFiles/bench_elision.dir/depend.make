# Empty dependencies file for bench_elision.
# This may be replaced when dependencies are built.
