# Empty compiler generated dependencies file for test_clb_pack.
# This may be replaced when dependencies are built.
