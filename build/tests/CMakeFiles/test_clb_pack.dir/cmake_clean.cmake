file(REMOVE_RECURSE
  "CMakeFiles/test_clb_pack.dir/test_clb_pack.cpp.o"
  "CMakeFiles/test_clb_pack.dir/test_clb_pack.cpp.o.d"
  "test_clb_pack"
  "test_clb_pack.pdb"
  "test_clb_pack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clb_pack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
