file(REMOVE_RECURSE
  "CMakeFiles/test_rcsim_extras.dir/test_rcsim_extras.cpp.o"
  "CMakeFiles/test_rcsim_extras.dir/test_rcsim_extras.cpp.o.d"
  "test_rcsim_extras"
  "test_rcsim_extras.pdb"
  "test_rcsim_extras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rcsim_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
