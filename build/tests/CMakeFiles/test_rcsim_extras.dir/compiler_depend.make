# Empty compiler generated dependencies file for test_rcsim_extras.
# This may be replaced when dependencies are built.
