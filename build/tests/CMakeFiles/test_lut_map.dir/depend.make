# Empty dependencies file for test_lut_map.
# This may be replaced when dependencies are built.
