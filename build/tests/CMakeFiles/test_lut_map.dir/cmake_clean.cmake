file(REMOVE_RECURSE
  "CMakeFiles/test_lut_map.dir/test_lut_map.cpp.o"
  "CMakeFiles/test_lut_map.dir/test_lut_map.cpp.o.d"
  "test_lut_map"
  "test_lut_map.pdb"
  "test_lut_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lut_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
