# Empty dependencies file for test_rcsim.
# This may be replaced when dependencies are built.
