file(REMOVE_RECURSE
  "CMakeFiles/test_rcsim.dir/test_rcsim.cpp.o"
  "CMakeFiles/test_rcsim.dir/test_rcsim.cpp.o.d"
  "test_rcsim"
  "test_rcsim.pdb"
  "test_rcsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
