file(REMOVE_RECURSE
  "CMakeFiles/test_policy_fsms.dir/test_policy_fsms.cpp.o"
  "CMakeFiles/test_policy_fsms.dir/test_policy_fsms.cpp.o.d"
  "test_policy_fsms"
  "test_policy_fsms.pdb"
  "test_policy_fsms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_fsms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
