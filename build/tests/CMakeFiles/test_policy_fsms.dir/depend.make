# Empty dependencies file for test_policy_fsms.
# This may be replaced when dependencies are built.
