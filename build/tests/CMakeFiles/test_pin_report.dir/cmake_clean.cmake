file(REMOVE_RECURSE
  "CMakeFiles/test_pin_report.dir/test_pin_report.cpp.o"
  "CMakeFiles/test_pin_report.dir/test_pin_report.cpp.o.d"
  "test_pin_report"
  "test_pin_report.pdb"
  "test_pin_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pin_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
