file(REMOVE_RECURSE
  "CMakeFiles/test_line_merge.dir/test_line_merge.cpp.o"
  "CMakeFiles/test_line_merge.dir/test_line_merge.cpp.o.d"
  "test_line_merge"
  "test_line_merge.pdb"
  "test_line_merge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_line_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
