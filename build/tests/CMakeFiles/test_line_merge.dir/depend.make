# Empty dependencies file for test_line_merge.
# This may be replaced when dependencies are built.
