# Empty dependencies file for test_synth_flow.
# This may be replaced when dependencies are built.
