file(REMOVE_RECURSE
  "CMakeFiles/test_synth_flow.dir/test_synth_flow.cpp.o"
  "CMakeFiles/test_synth_flow.dir/test_synth_flow.cpp.o.d"
  "test_synth_flow"
  "test_synth_flow.pdb"
  "test_synth_flow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
