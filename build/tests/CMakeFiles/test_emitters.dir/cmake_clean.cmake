file(REMOVE_RECURSE
  "CMakeFiles/test_emitters.dir/test_emitters.cpp.o"
  "CMakeFiles/test_emitters.dir/test_emitters.cpp.o.d"
  "test_emitters"
  "test_emitters.pdb"
  "test_emitters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emitters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
