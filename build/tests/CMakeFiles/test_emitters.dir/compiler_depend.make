# Empty compiler generated dependencies file for test_emitters.
# This may be replaced when dependencies are built.
