file(REMOVE_RECURSE
  "CMakeFiles/test_rr_fsm.dir/test_rr_fsm.cpp.o"
  "CMakeFiles/test_rr_fsm.dir/test_rr_fsm.cpp.o.d"
  "test_rr_fsm"
  "test_rr_fsm.pdb"
  "test_rr_fsm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rr_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
