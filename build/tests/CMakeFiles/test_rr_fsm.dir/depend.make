# Empty dependencies file for test_rr_fsm.
# This may be replaced when dependencies are built.
