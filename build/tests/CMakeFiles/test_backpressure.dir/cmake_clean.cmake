file(REMOVE_RECURSE
  "CMakeFiles/test_backpressure.dir/test_backpressure.cpp.o"
  "CMakeFiles/test_backpressure.dir/test_backpressure.cpp.o.d"
  "test_backpressure"
  "test_backpressure.pdb"
  "test_backpressure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backpressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
