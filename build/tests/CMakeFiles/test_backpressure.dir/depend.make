# Empty dependencies file for test_backpressure.
# This may be replaced when dependencies are built.
