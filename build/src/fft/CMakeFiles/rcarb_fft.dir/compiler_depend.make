# Empty compiler generated dependencies file for rcarb_fft.
# This may be replaced when dependencies are built.
