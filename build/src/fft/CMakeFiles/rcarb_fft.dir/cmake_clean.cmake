file(REMOVE_RECURSE
  "CMakeFiles/rcarb_fft.dir/fft_design.cpp.o"
  "CMakeFiles/rcarb_fft.dir/fft_design.cpp.o.d"
  "CMakeFiles/rcarb_fft.dir/reference.cpp.o"
  "CMakeFiles/rcarb_fft.dir/reference.cpp.o.d"
  "CMakeFiles/rcarb_fft.dir/workload.cpp.o"
  "CMakeFiles/rcarb_fft.dir/workload.cpp.o.d"
  "librcarb_fft.a"
  "librcarb_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcarb_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
