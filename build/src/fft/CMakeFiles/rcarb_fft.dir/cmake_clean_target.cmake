file(REMOVE_RECURSE
  "librcarb_fft.a"
)
