# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("logic")
subdirs("bdd")
subdirs("aig")
subdirs("netlist")
subdirs("synth")
subdirs("timing")
subdirs("taskgraph")
subdirs("board")
subdirs("core")
subdirs("partition")
subdirs("rcsim")
subdirs("fft")
subdirs("flow")
