file(REMOVE_RECURSE
  "librcarb_logic.a"
)
