# Empty compiler generated dependencies file for rcarb_logic.
# This may be replaced when dependencies are built.
