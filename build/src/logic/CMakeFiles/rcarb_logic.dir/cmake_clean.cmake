file(REMOVE_RECURSE
  "CMakeFiles/rcarb_logic.dir/cover.cpp.o"
  "CMakeFiles/rcarb_logic.dir/cover.cpp.o.d"
  "CMakeFiles/rcarb_logic.dir/cube.cpp.o"
  "CMakeFiles/rcarb_logic.dir/cube.cpp.o.d"
  "CMakeFiles/rcarb_logic.dir/truth_table.cpp.o"
  "CMakeFiles/rcarb_logic.dir/truth_table.cpp.o.d"
  "librcarb_logic.a"
  "librcarb_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcarb_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
