file(REMOVE_RECURSE
  "CMakeFiles/rcarb_partition.dir/binding.cpp.o"
  "CMakeFiles/rcarb_partition.dir/binding.cpp.o.d"
  "CMakeFiles/rcarb_partition.dir/channel_map.cpp.o"
  "CMakeFiles/rcarb_partition.dir/channel_map.cpp.o.d"
  "CMakeFiles/rcarb_partition.dir/estimate.cpp.o"
  "CMakeFiles/rcarb_partition.dir/estimate.cpp.o.d"
  "CMakeFiles/rcarb_partition.dir/memory_map.cpp.o"
  "CMakeFiles/rcarb_partition.dir/memory_map.cpp.o.d"
  "CMakeFiles/rcarb_partition.dir/spatial.cpp.o"
  "CMakeFiles/rcarb_partition.dir/spatial.cpp.o.d"
  "CMakeFiles/rcarb_partition.dir/temporal.cpp.o"
  "CMakeFiles/rcarb_partition.dir/temporal.cpp.o.d"
  "librcarb_partition.a"
  "librcarb_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcarb_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
