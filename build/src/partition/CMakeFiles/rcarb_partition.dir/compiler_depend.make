# Empty compiler generated dependencies file for rcarb_partition.
# This may be replaced when dependencies are built.
