file(REMOVE_RECURSE
  "librcarb_partition.a"
)
