# Empty compiler generated dependencies file for rcarb_board.
# This may be replaced when dependencies are built.
