file(REMOVE_RECURSE
  "librcarb_board.a"
)
