file(REMOVE_RECURSE
  "CMakeFiles/rcarb_board.dir/board.cpp.o"
  "CMakeFiles/rcarb_board.dir/board.cpp.o.d"
  "librcarb_board.a"
  "librcarb_board.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcarb_board.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
