# Empty compiler generated dependencies file for rcarb_aig.
# This may be replaced when dependencies are built.
