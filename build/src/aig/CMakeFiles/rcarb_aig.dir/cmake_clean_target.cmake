file(REMOVE_RECURSE
  "librcarb_aig.a"
)
