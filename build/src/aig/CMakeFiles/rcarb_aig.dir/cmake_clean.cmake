file(REMOVE_RECURSE
  "CMakeFiles/rcarb_aig.dir/aig.cpp.o"
  "CMakeFiles/rcarb_aig.dir/aig.cpp.o.d"
  "librcarb_aig.a"
  "librcarb_aig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcarb_aig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
