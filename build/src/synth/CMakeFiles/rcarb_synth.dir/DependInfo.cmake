
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/clb_pack.cpp" "src/synth/CMakeFiles/rcarb_synth.dir/clb_pack.cpp.o" "gcc" "src/synth/CMakeFiles/rcarb_synth.dir/clb_pack.cpp.o.d"
  "/root/repo/src/synth/elaborate.cpp" "src/synth/CMakeFiles/rcarb_synth.dir/elaborate.cpp.o" "gcc" "src/synth/CMakeFiles/rcarb_synth.dir/elaborate.cpp.o.d"
  "/root/repo/src/synth/encoding.cpp" "src/synth/CMakeFiles/rcarb_synth.dir/encoding.cpp.o" "gcc" "src/synth/CMakeFiles/rcarb_synth.dir/encoding.cpp.o.d"
  "/root/repo/src/synth/flow.cpp" "src/synth/CMakeFiles/rcarb_synth.dir/flow.cpp.o" "gcc" "src/synth/CMakeFiles/rcarb_synth.dir/flow.cpp.o.d"
  "/root/repo/src/synth/fsm.cpp" "src/synth/CMakeFiles/rcarb_synth.dir/fsm.cpp.o" "gcc" "src/synth/CMakeFiles/rcarb_synth.dir/fsm.cpp.o.d"
  "/root/repo/src/synth/lut_map.cpp" "src/synth/CMakeFiles/rcarb_synth.dir/lut_map.cpp.o" "gcc" "src/synth/CMakeFiles/rcarb_synth.dir/lut_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/rcarb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/rcarb_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/aig/CMakeFiles/rcarb_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/rcarb_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
