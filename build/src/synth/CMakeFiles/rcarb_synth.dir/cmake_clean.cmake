file(REMOVE_RECURSE
  "CMakeFiles/rcarb_synth.dir/clb_pack.cpp.o"
  "CMakeFiles/rcarb_synth.dir/clb_pack.cpp.o.d"
  "CMakeFiles/rcarb_synth.dir/elaborate.cpp.o"
  "CMakeFiles/rcarb_synth.dir/elaborate.cpp.o.d"
  "CMakeFiles/rcarb_synth.dir/encoding.cpp.o"
  "CMakeFiles/rcarb_synth.dir/encoding.cpp.o.d"
  "CMakeFiles/rcarb_synth.dir/flow.cpp.o"
  "CMakeFiles/rcarb_synth.dir/flow.cpp.o.d"
  "CMakeFiles/rcarb_synth.dir/fsm.cpp.o"
  "CMakeFiles/rcarb_synth.dir/fsm.cpp.o.d"
  "CMakeFiles/rcarb_synth.dir/lut_map.cpp.o"
  "CMakeFiles/rcarb_synth.dir/lut_map.cpp.o.d"
  "librcarb_synth.a"
  "librcarb_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcarb_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
