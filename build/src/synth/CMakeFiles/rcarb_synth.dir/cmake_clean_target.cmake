file(REMOVE_RECURSE
  "librcarb_synth.a"
)
