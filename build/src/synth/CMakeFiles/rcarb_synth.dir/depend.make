# Empty dependencies file for rcarb_synth.
# This may be replaced when dependencies are built.
