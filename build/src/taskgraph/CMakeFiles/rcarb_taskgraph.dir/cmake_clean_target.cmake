file(REMOVE_RECURSE
  "librcarb_taskgraph.a"
)
