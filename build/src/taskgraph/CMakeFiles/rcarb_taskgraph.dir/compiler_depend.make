# Empty compiler generated dependencies file for rcarb_taskgraph.
# This may be replaced when dependencies are built.
