file(REMOVE_RECURSE
  "CMakeFiles/rcarb_taskgraph.dir/dot_export.cpp.o"
  "CMakeFiles/rcarb_taskgraph.dir/dot_export.cpp.o.d"
  "CMakeFiles/rcarb_taskgraph.dir/program.cpp.o"
  "CMakeFiles/rcarb_taskgraph.dir/program.cpp.o.d"
  "CMakeFiles/rcarb_taskgraph.dir/taskgraph.cpp.o"
  "CMakeFiles/rcarb_taskgraph.dir/taskgraph.cpp.o.d"
  "librcarb_taskgraph.a"
  "librcarb_taskgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcarb_taskgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
