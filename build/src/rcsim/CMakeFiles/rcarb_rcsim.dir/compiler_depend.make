# Empty compiler generated dependencies file for rcarb_rcsim.
# This may be replaced when dependencies are built.
