file(REMOVE_RECURSE
  "librcarb_rcsim.a"
)
