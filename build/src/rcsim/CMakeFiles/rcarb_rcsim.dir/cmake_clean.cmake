file(REMOVE_RECURSE
  "CMakeFiles/rcarb_rcsim.dir/system_sim.cpp.o"
  "CMakeFiles/rcarb_rcsim.dir/system_sim.cpp.o.d"
  "librcarb_rcsim.a"
  "librcarb_rcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcarb_rcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
