# Empty compiler generated dependencies file for rcarb_flow.
# This may be replaced when dependencies are built.
