file(REMOVE_RECURSE
  "CMakeFiles/rcarb_flow.dir/pin_report.cpp.o"
  "CMakeFiles/rcarb_flow.dir/pin_report.cpp.o.d"
  "CMakeFiles/rcarb_flow.dir/sparcs_flow.cpp.o"
  "CMakeFiles/rcarb_flow.dir/sparcs_flow.cpp.o.d"
  "librcarb_flow.a"
  "librcarb_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcarb_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
