file(REMOVE_RECURSE
  "librcarb_flow.a"
)
