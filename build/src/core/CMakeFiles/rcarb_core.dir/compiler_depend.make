# Empty compiler generated dependencies file for rcarb_core.
# This may be replaced when dependencies are built.
