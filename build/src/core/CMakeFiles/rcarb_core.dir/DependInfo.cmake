
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/generator.cpp" "src/core/CMakeFiles/rcarb_core.dir/generator.cpp.o" "gcc" "src/core/CMakeFiles/rcarb_core.dir/generator.cpp.o.d"
  "/root/repo/src/core/insertion.cpp" "src/core/CMakeFiles/rcarb_core.dir/insertion.cpp.o" "gcc" "src/core/CMakeFiles/rcarb_core.dir/insertion.cpp.o.d"
  "/root/repo/src/core/line_merge.cpp" "src/core/CMakeFiles/rcarb_core.dir/line_merge.cpp.o" "gcc" "src/core/CMakeFiles/rcarb_core.dir/line_merge.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/rcarb_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/rcarb_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/policy_fsms.cpp" "src/core/CMakeFiles/rcarb_core.dir/policy_fsms.cpp.o" "gcc" "src/core/CMakeFiles/rcarb_core.dir/policy_fsms.cpp.o.d"
  "/root/repo/src/core/rr_fsm.cpp" "src/core/CMakeFiles/rcarb_core.dir/rr_fsm.cpp.o" "gcc" "src/core/CMakeFiles/rcarb_core.dir/rr_fsm.cpp.o.d"
  "/root/repo/src/core/structural.cpp" "src/core/CMakeFiles/rcarb_core.dir/structural.cpp.o" "gcc" "src/core/CMakeFiles/rcarb_core.dir/structural.cpp.o.d"
  "/root/repo/src/core/vhdl.cpp" "src/core/CMakeFiles/rcarb_core.dir/vhdl.cpp.o" "gcc" "src/core/CMakeFiles/rcarb_core.dir/vhdl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/rcarb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/rcarb_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/rcarb_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/rcarb_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/taskgraph/CMakeFiles/rcarb_taskgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/aig/CMakeFiles/rcarb_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/rcarb_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
