file(REMOVE_RECURSE
  "librcarb_core.a"
)
