file(REMOVE_RECURSE
  "CMakeFiles/rcarb_core.dir/generator.cpp.o"
  "CMakeFiles/rcarb_core.dir/generator.cpp.o.d"
  "CMakeFiles/rcarb_core.dir/insertion.cpp.o"
  "CMakeFiles/rcarb_core.dir/insertion.cpp.o.d"
  "CMakeFiles/rcarb_core.dir/line_merge.cpp.o"
  "CMakeFiles/rcarb_core.dir/line_merge.cpp.o.d"
  "CMakeFiles/rcarb_core.dir/policy.cpp.o"
  "CMakeFiles/rcarb_core.dir/policy.cpp.o.d"
  "CMakeFiles/rcarb_core.dir/policy_fsms.cpp.o"
  "CMakeFiles/rcarb_core.dir/policy_fsms.cpp.o.d"
  "CMakeFiles/rcarb_core.dir/rr_fsm.cpp.o"
  "CMakeFiles/rcarb_core.dir/rr_fsm.cpp.o.d"
  "CMakeFiles/rcarb_core.dir/structural.cpp.o"
  "CMakeFiles/rcarb_core.dir/structural.cpp.o.d"
  "CMakeFiles/rcarb_core.dir/vhdl.cpp.o"
  "CMakeFiles/rcarb_core.dir/vhdl.cpp.o.d"
  "librcarb_core.a"
  "librcarb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcarb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
