# Empty compiler generated dependencies file for rcarb_netlist.
# This may be replaced when dependencies are built.
