file(REMOVE_RECURSE
  "librcarb_netlist.a"
)
