
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/rcarb_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/rcarb_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/simulator.cpp" "src/netlist/CMakeFiles/rcarb_netlist.dir/simulator.cpp.o" "gcc" "src/netlist/CMakeFiles/rcarb_netlist.dir/simulator.cpp.o.d"
  "/root/repo/src/netlist/vhdl_emit.cpp" "src/netlist/CMakeFiles/rcarb_netlist.dir/vhdl_emit.cpp.o" "gcc" "src/netlist/CMakeFiles/rcarb_netlist.dir/vhdl_emit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/rcarb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/rcarb_logic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
