file(REMOVE_RECURSE
  "CMakeFiles/rcarb_netlist.dir/netlist.cpp.o"
  "CMakeFiles/rcarb_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/rcarb_netlist.dir/simulator.cpp.o"
  "CMakeFiles/rcarb_netlist.dir/simulator.cpp.o.d"
  "CMakeFiles/rcarb_netlist.dir/vhdl_emit.cpp.o"
  "CMakeFiles/rcarb_netlist.dir/vhdl_emit.cpp.o.d"
  "librcarb_netlist.a"
  "librcarb_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcarb_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
