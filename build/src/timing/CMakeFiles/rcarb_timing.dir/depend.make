# Empty dependencies file for rcarb_timing.
# This may be replaced when dependencies are built.
