file(REMOVE_RECURSE
  "librcarb_timing.a"
)
