file(REMOVE_RECURSE
  "CMakeFiles/rcarb_timing.dir/sta.cpp.o"
  "CMakeFiles/rcarb_timing.dir/sta.cpp.o.d"
  "librcarb_timing.a"
  "librcarb_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcarb_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
