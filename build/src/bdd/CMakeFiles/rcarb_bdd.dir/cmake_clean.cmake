file(REMOVE_RECURSE
  "CMakeFiles/rcarb_bdd.dir/bdd.cpp.o"
  "CMakeFiles/rcarb_bdd.dir/bdd.cpp.o.d"
  "librcarb_bdd.a"
  "librcarb_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcarb_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
