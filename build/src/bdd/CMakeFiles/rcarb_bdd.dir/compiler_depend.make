# Empty compiler generated dependencies file for rcarb_bdd.
# This may be replaced when dependencies are built.
