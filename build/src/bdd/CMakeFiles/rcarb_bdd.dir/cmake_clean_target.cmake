file(REMOVE_RECURSE
  "librcarb_bdd.a"
)
