file(REMOVE_RECURSE
  "CMakeFiles/rcarb_support.dir/check.cpp.o"
  "CMakeFiles/rcarb_support.dir/check.cpp.o.d"
  "CMakeFiles/rcarb_support.dir/rng.cpp.o"
  "CMakeFiles/rcarb_support.dir/rng.cpp.o.d"
  "CMakeFiles/rcarb_support.dir/table.cpp.o"
  "CMakeFiles/rcarb_support.dir/table.cpp.o.d"
  "CMakeFiles/rcarb_support.dir/text.cpp.o"
  "CMakeFiles/rcarb_support.dir/text.cpp.o.d"
  "librcarb_support.a"
  "librcarb_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcarb_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
