# Empty dependencies file for rcarb_support.
# This may be replaced when dependencies are built.
