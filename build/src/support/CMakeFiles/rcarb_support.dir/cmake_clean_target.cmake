file(REMOVE_RECURSE
  "librcarb_support.a"
)
