# Empty compiler generated dependencies file for channel_sharing.
# This may be replaced when dependencies are built.
