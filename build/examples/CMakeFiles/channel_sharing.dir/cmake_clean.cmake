file(REMOVE_RECURSE
  "CMakeFiles/channel_sharing.dir/channel_sharing.cpp.o"
  "CMakeFiles/channel_sharing.dir/channel_sharing.cpp.o.d"
  "channel_sharing"
  "channel_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
