file(REMOVE_RECURSE
  "CMakeFiles/fft_flow.dir/fft_flow.cpp.o"
  "CMakeFiles/fft_flow.dir/fft_flow.cpp.o.d"
  "fft_flow"
  "fft_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
