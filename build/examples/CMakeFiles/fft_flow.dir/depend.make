# Empty dependencies file for fft_flow.
# This may be replaced when dependencies are built.
