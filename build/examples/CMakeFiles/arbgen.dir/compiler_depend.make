# Empty compiler generated dependencies file for arbgen.
# This may be replaced when dependencies are built.
