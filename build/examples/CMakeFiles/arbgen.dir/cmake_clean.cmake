file(REMOVE_RECURSE
  "CMakeFiles/arbgen.dir/arbgen.cpp.o"
  "CMakeFiles/arbgen.dir/arbgen.cpp.o.d"
  "arbgen"
  "arbgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
