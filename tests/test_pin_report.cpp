#include <gtest/gtest.h>

#include "board/board.hpp"
#include "core/insertion.hpp"
#include "fft/fft_design.hpp"
#include "flow/pin_report.hpp"

namespace rcarb::flow {
namespace {

TEST(PinReport, BankBusWidthTracksLargestSegment) {
  tg::TaskGraph g("w");
  g.add_segment("small", 16, 8);    // 3 address bits
  g.add_segment("large", 512, 256); // 8 address bits
  tg::Program p;
  p.load_imm(0, 0).store(0, 0, 0).store(1, 0, 0).halt();
  g.add_task("t", p, 1);
  core::Binding b;
  b.task_to_pe = {0};
  b.segment_to_bank = {0, 1};
  b.num_banks = 2;
  b.bank_names = {"B0", "B1"};
  EXPECT_EQ(bank_bus_width(g, b, 0), 16 + 3 + 1);
  EXPECT_EQ(bank_bus_width(g, b, 1), 16 + 8 + 1);
}

TEST(PinReport, LocalAccessCostsNoPins) {
  tg::TaskGraph g("local");
  g.add_segment("s", 16, 8);
  tg::Program p;
  p.load_imm(0, 0).store(0, 0, 0).halt();
  g.add_task("t", p, 1);
  core::Binding b;
  b.task_to_pe = {0};  // task on PE0, bank attached to PE0
  b.segment_to_bank = {0};
  b.num_banks = 1;
  b.bank_names = {"MEM1"};
  core::ArbitrationPlan plan;
  plan.arbiters_of_resource.assign(1, {});
  const PinReport r =
      compute_pin_report(g, board::wildforce(), b, plan, {0});
  EXPECT_EQ(r.per_pe[0].total(), 0);
  EXPECT_EQ(r.total_handshake, 0);
}

TEST(PinReport, RemoteAccessChargesBothSides) {
  tg::TaskGraph g("remote");
  g.add_segment("s", 16, 8);
  tg::Program p;
  p.load_imm(0, 0).store(0, 0, 0).halt();
  g.add_task("t", p, 1);
  core::Binding b;
  b.task_to_pe = {1};  // task on PE1, bank on PE0
  b.segment_to_bank = {0};
  b.num_banks = 1;
  b.bank_names = {"MEM1"};
  core::ArbitrationPlan plan;
  plan.arbiters_of_resource.assign(1, {});
  const PinReport r =
      compute_pin_report(g, board::wildforce(), b, plan, {0});
  const int width = bank_bus_width(g, b, 0);
  EXPECT_EQ(r.per_pe[0].memory_bus, width);
  EXPECT_EQ(r.per_pe[1].memory_bus, width);
}

TEST(PinReport, HandshakeIsTwoWiresPerRemotePort) {
  // Fig. 11: every remotely arbitrated task adds a "+2" to the boundary.
  const fft::FftDesign d = fft::build_fft_design();
  const core::Binding binding = fft::paper_binding(d, 0);
  const auto tasks = fft::paper_partitions(d)[0];
  const auto ins =
      core::insert_arbitration(d.graph, binding, {}, &tasks);
  const PinReport r = compute_pin_report(d.graph, board::wildforce(),
                                         binding, ins.plan, tasks);
  // Arb6 on MEM2 (PE2's bank): ports F1,F3 local; F2, F4, g1r, g2r remote
  // -> 8 wires.  Arb2 on MEM4 (PE4's bank): g2r local, g1r remote -> 2.
  EXPECT_EQ(r.total_handshake, 10);
  // The paper's observation: the handshake is tiny next to the buses.
  int total_bus = 0;
  for (const auto& pe : r.per_pe) total_bus += pe.memory_bus;
  EXPECT_LT(r.total_handshake, total_bus / 4);
}

TEST(PinReport, ToStringListsBusyPes) {
  const fft::FftDesign d = fft::build_fft_design();
  const core::Binding binding = fft::paper_binding(d, 0);
  const auto tasks = fft::paper_partitions(d)[0];
  const auto ins = core::insert_arbitration(d.graph, binding, {}, &tasks);
  const board::Board wf = board::wildforce();
  const PinReport r =
      compute_pin_report(d.graph, wf, binding, ins.plan, tasks);
  const std::string s = r.to_string(wf);
  EXPECT_NE(s.find("req/grant"), std::string::npos);
  EXPECT_NE(s.find("PE2"), std::string::npos);
}

}  // namespace
}  // namespace rcarb::flow
