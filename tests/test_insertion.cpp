#include <gtest/gtest.h>

#include "core/insertion.hpp"
#include "support/check.hpp"

namespace rcarb::core {
namespace {

using tg::OpCode;
using tg::Program;
using tg::TaskGraph;
using tg::TaskId;

/// Two parallel tasks, two segments on one shared bank.
struct SharedBankFixture {
  TaskGraph graph{"shared"};
  Binding binding;
  TaskId t0, t1;

  explicit SharedBankFixture(int accesses_per_task = 3) {
    graph.add_segment("s0", 16, 8);
    graph.add_segment("s1", 16, 8);
    Program p0;
    p0.load_imm(0, 0);
    for (int i = 0; i < accesses_per_task; ++i) p0.store(0, 0, 0, i);
    p0.halt();
    Program p1;
    p1.load_imm(0, 0);
    for (int i = 0; i < accesses_per_task; ++i) p1.store(1, 0, 0, i);
    p1.halt();
    t0 = graph.add_task("t0", p0, 10);
    t1 = graph.add_task("t1", p1, 10);

    binding.task_to_pe = {0, 1};
    binding.segment_to_bank = {0, 0};  // both segments share bank 0
    binding.channel_to_phys = {};
    binding.num_banks = 1;
    binding.bank_names = {"BANK"};
    binding.num_phys_channels = 0;
  }
};

int count_ops(const Program& p, OpCode code) {
  int n = 0;
  for (const auto& op : p.ops())
    if (op.code == code) ++n;
  return n;
}

TEST(Insertion, SharedBankGetsOneArbiter) {
  SharedBankFixture fx;
  const InsertionResult r = insert_arbitration(fx.graph, fx.binding, {});
  ASSERT_EQ(r.plan.arbiters.size(), 1u);
  EXPECT_EQ(r.plan.arbiters[0].ports, (std::vector<TaskId>{fx.t0, fx.t1}));
  EXPECT_EQ(r.plan.arbiters[0].resource_name, "BANK");
  EXPECT_EQ(r.plan.stats.arbiters, 1u);
  EXPECT_EQ(r.plan.stats.modified_tasks, 2u);
}

TEST(Insertion, PortLookupFindsPorts) {
  SharedBankFixture fx;
  const InsertionResult r = insert_arbitration(fx.graph, fx.binding, {});
  EXPECT_EQ(r.plan.port_lookup(0, fx.t0), (std::pair<int, int>{0, 0}));
  EXPECT_EQ(r.plan.port_lookup(0, fx.t1), (std::pair<int, int>{0, 1}));
  EXPECT_EQ(r.plan.port_lookup(0, 99), (std::pair<int, int>{-1, -1}));
  EXPECT_EQ(r.plan.port_lookup(5, fx.t0), (std::pair<int, int>{-1, -1}));
}

TEST(Insertion, Fig8RewriteWrapsBursts) {
  SharedBankFixture fx(/*accesses_per_task=*/4);
  InsertionOptions options;
  options.batch_m = 2;
  const InsertionResult r = insert_arbitration(fx.graph, fx.binding, options);
  const Program& p = r.graph.task(fx.t0).program;
  // 4 accesses at M=2: two bursts -> 2 acquires + 2 releases.
  EXPECT_EQ(count_ops(p, OpCode::kAcquire), 2);
  EXPECT_EQ(count_ops(p, OpCode::kRelease), 2);
  EXPECT_EQ(count_ops(p, OpCode::kStore), 4);
  // Shape: acquire precedes the first store; release follows the last.
  EXPECT_EQ(p.ops()[1].code, OpCode::kAcquire);
}

TEST(Insertion, BatchM1ReleasesBetweenEveryAccess) {
  SharedBankFixture fx(3);
  InsertionOptions options;
  options.batch_m = 1;
  const InsertionResult r = insert_arbitration(fx.graph, fx.binding, options);
  EXPECT_EQ(count_ops(r.graph.task(fx.t0).program, OpCode::kAcquire), 3);
}

TEST(Insertion, LargeMKeepsSingleBurst) {
  SharedBankFixture fx(5);
  InsertionOptions options;
  options.batch_m = 100;
  const InsertionResult r = insert_arbitration(fx.graph, fx.binding, options);
  EXPECT_EQ(count_ops(r.graph.task(fx.t0).program, OpCode::kAcquire), 1);
}

TEST(Insertion, UnsharedBankNeedsNoArbiter) {
  SharedBankFixture fx;
  fx.binding.segment_to_bank = {0, 1};  // separate banks
  fx.binding.num_banks = 2;
  fx.binding.bank_names = {"B0", "B1"};
  const InsertionResult r = insert_arbitration(fx.graph, fx.binding, {});
  EXPECT_TRUE(r.plan.arbiters.empty());
  EXPECT_EQ(count_ops(r.graph.task(fx.t0).program, OpCode::kAcquire), 0);
}

TEST(Insertion, SerializedTasksElideTheArbiter) {
  SharedBankFixture fx;
  fx.graph.add_control_dep(fx.t0, fx.t1);
  InsertionOptions options;
  options.elide_serialized = true;
  const InsertionResult r = insert_arbitration(fx.graph, fx.binding, options);
  EXPECT_TRUE(r.plan.arbiters.empty());
  EXPECT_EQ(r.plan.stats.elided_resources, 1u);
  EXPECT_EQ(r.plan.stats.elided_ports, 2u);
  // Line merges are still planned: the wires are still shared.
  EXPECT_FALSE(r.plan.line_merges.empty());
}

TEST(Insertion, WithoutElisionSerializedTasksStillArbitrated) {
  SharedBankFixture fx;
  fx.graph.add_control_dep(fx.t0, fx.t1);
  const InsertionResult r = insert_arbitration(fx.graph, fx.binding, {});
  EXPECT_EQ(r.plan.arbiters.size(), 1u)
      << "the paper's base flow assumes all tasks run in parallel";
}

TEST(Insertion, ElisionSplitsConcurrencyComponents) {
  // 4 tasks on one bank: {a, b} parallel, {c, d} parallel, a,b before c,d.
  TaskGraph g("split");
  g.add_segment("s", 16, 8);
  Program p;
  p.load_imm(0, 0).store(0, 0, 0).halt();
  const TaskId a = g.add_task("a", p, 1);
  const TaskId b = g.add_task("b", p, 1);
  const TaskId c = g.add_task("c", p, 1);
  const TaskId d = g.add_task("d", p, 1);
  for (TaskId pre : {a, b})
    for (TaskId post : {c, d}) g.add_control_dep(pre, post);

  Binding binding;
  binding.task_to_pe = {0, 0, 0, 0};
  binding.segment_to_bank = {0};
  binding.num_banks = 1;
  binding.bank_names = {"B"};

  InsertionOptions options;
  options.elide_serialized = true;
  const InsertionResult r = insert_arbitration(g, binding, options);
  ASSERT_EQ(r.plan.arbiters.size(), 2u) << "Arb{a,b} and Arb{c,d}";
  EXPECT_EQ(r.plan.arbiters[0].ports.size(), 2u);
  EXPECT_EQ(r.plan.arbiters[1].ports.size(), 2u);
  // Both arbiters guard the same resource; lookup resolves per task.
  EXPECT_EQ(r.plan.port_lookup(0, a).first,
            r.plan.port_lookup(0, b).first);
  EXPECT_NE(r.plan.port_lookup(0, a).first,
            r.plan.port_lookup(0, c).first);
}

TEST(Insertion, ActiveTaskFilterRestrictsContention) {
  SharedBankFixture fx;
  const std::vector<TaskId> only{fx.t0};
  const InsertionResult r =
      insert_arbitration(fx.graph, fx.binding, {}, &only);
  EXPECT_TRUE(r.plan.arbiters.empty())
      << "a sole active accessor needs no arbiter";
  EXPECT_EQ(count_ops(r.graph.task(fx.t0).program, OpCode::kAcquire), 0);
}

TEST(Insertion, ChannelArbitrationOnlyForDistinctSources) {
  // Two logical channels merged on one physical channel.
  TaskGraph g("chan");
  Program send0;
  send0.load_imm(0, 1).send(0, 0).halt();
  Program send1;
  send1.load_imm(0, 2).send(1, 0).halt();
  Program recv0;
  recv0.recv(0, 0).halt();
  Program recv1;
  recv1.recv(0, 1).halt();
  const TaskId s0 = g.add_task("s0", send0, 1);
  const TaskId s1 = g.add_task("s1", send1, 1);
  const TaskId r0 = g.add_task("r0", recv0, 1);
  const TaskId r1 = g.add_task("r1", recv1, 1);
  g.add_channel("c0", 16, s0, r0);
  g.add_channel("c1", 16, s1, r1);

  Binding binding;
  binding.task_to_pe = {0, 0, 1, 1};
  binding.segment_to_bank = {};
  binding.channel_to_phys = {0, 0};  // merged
  binding.num_banks = 0;
  binding.num_phys_channels = 1;
  binding.phys_channel_names = {"shared_c0_c1"};

  const InsertionResult r = insert_arbitration(g, binding, {});
  ASSERT_EQ(r.plan.arbiters.size(), 1u);
  EXPECT_EQ(r.plan.arbiters[0].ports, (std::vector<TaskId>{s0, s1}));
  // Receivers are not ports: they do not drive the shared wires.
  EXPECT_EQ(r.plan.port_lookup(0, r0), (std::pair<int, int>{-1, -1}));
}

TEST(Insertion, SameSourceMergedChannelsNeedNoArbiter) {
  // Paper Sec. 4.3: "If all sources belong to the same task, there is no
  // need to introduce an arbiter".
  TaskGraph g("samesrc");
  Program sender;
  sender.load_imm(0, 1).send(0, 0).send(1, 0).halt();
  Program recv0;
  recv0.recv(0, 0).halt();
  Program recv1;
  recv1.recv(0, 1).halt();
  const TaskId s = g.add_task("s", sender, 1);
  const TaskId r0 = g.add_task("r0", recv0, 1);
  const TaskId r1 = g.add_task("r1", recv1, 1);
  g.add_channel("c0", 16, s, r0);
  g.add_channel("c1", 16, s, r1);

  Binding binding;
  binding.task_to_pe = {0, 1, 1};
  binding.segment_to_bank = {};
  binding.channel_to_phys = {0, 0};
  binding.num_banks = 0;
  binding.num_phys_channels = 1;
  binding.phys_channel_names = {"shared"};

  const InsertionResult r = insert_arbitration(g, binding, {});
  EXPECT_TRUE(r.plan.arbiters.empty());
}

TEST(Insertion, BoundaryOpsSplitBursts) {
  // A recv between accesses forces release before blocking.
  TaskGraph g("bound");
  g.add_segment("s", 16, 8);
  Program sender;
  sender.load_imm(0, 0).send(0, 0).halt();
  Program worker;
  worker.load_imm(0, 0).store(0, 0, 0).recv(1, 0).store(0, 0, 0).halt();
  Program other;
  other.load_imm(0, 0).store(0, 0, 0).halt();
  const TaskId s = g.add_task("s", sender, 1);
  const TaskId w = g.add_task("w", worker, 1);
  const TaskId o = g.add_task("o", other, 1);
  g.add_channel("c", 16, s, w);

  Binding binding;
  binding.task_to_pe = {0, 1, 2};
  binding.segment_to_bank = {0};
  binding.channel_to_phys = {-1};
  binding.num_banks = 1;
  binding.bank_names = {"B"};

  const InsertionResult r = insert_arbitration(g, binding, {});
  const Program& p = r.graph.task(w).program;
  EXPECT_EQ(count_ops(p, OpCode::kAcquire), 2)
      << "burst must not span the blocking recv";
  // Verify release precedes the recv.
  for (std::size_t i = 0; i < p.ops().size(); ++i)
    if (p.ops()[i].code == OpCode::kRecv)
      EXPECT_EQ(p.ops()[i - 1].code, OpCode::kRelease);
  (void)o;
}

TEST(Insertion, LongComputeBreaksBurst) {
  TaskGraph g("compute");
  g.add_segment("s", 16, 8);
  Program busy;
  busy.load_imm(0, 0).store(0, 0, 0).compute(100).store(0, 0, 0).halt();
  Program other;
  other.load_imm(0, 0).store(0, 0, 0).halt();
  g.add_task("busy", busy, 1);
  g.add_task("other", other, 1);

  Binding binding;
  binding.task_to_pe = {0, 1};
  binding.segment_to_bank = {0};
  binding.num_banks = 1;
  binding.bank_names = {"B"};

  InsertionOptions options;
  options.hold_compute_limit = 8;
  const InsertionResult r = insert_arbitration(g, binding, options);
  EXPECT_EQ(count_ops(r.graph.task(0).program, OpCode::kAcquire), 2)
      << "a 100-cycle compute must not be covered by a held grant";
}

TEST(Insertion, ArbiterKindResolvesAtPlanTime) {
  // Instances carry a concrete kind (never kAuto): explicit choices pass
  // through, kAuto resolves from the port count and the fmax budget so
  // downstream consumers (rcsim, flow characterization) never re-decide.
  SharedBankFixture fx;
  const InsertionResult def = insert_arbitration(fx.graph, fx.binding, {});
  ASSERT_EQ(def.plan.arbiters.size(), 1u);
  EXPECT_EQ(def.plan.arbiters[0].kind, ArbiterKind::kFlatFsm);

  InsertionOptions options;
  options.arbiter_kind = ArbiterChoice::kPrefix;
  const InsertionResult pre =
      insert_arbitration(fx.graph, fx.binding, options);
  EXPECT_EQ(pre.plan.arbiters[0].kind, ArbiterKind::kPrefix);

  options.arbiter_kind = ArbiterChoice::kAuto;
  options.arbiter_fmax_budget_mhz = 1.0;  // any structure meets this
  const InsertionResult car =
      insert_arbitration(fx.graph, fx.binding, options);
  EXPECT_EQ(car.plan.arbiters[0].kind, ArbiterKind::kFlatFsm);

  options.arbiter_fmax_budget_mhz = 0.0;
  EXPECT_THROW(insert_arbitration(fx.graph, fx.binding, options), CheckError);
}

TEST(Insertion, RejectsMalformedBinding) {
  SharedBankFixture fx;
  Binding bad = fx.binding;
  bad.segment_to_bank.pop_back();
  EXPECT_THROW(insert_arbitration(fx.graph, bad, {}), CheckError);
  InsertionOptions options;
  options.batch_m = 0;
  EXPECT_THROW(insert_arbitration(fx.graph, fx.binding, options), CheckError);
}

}  // namespace
}  // namespace rcarb::core
