#include <gtest/gtest.h>

#include "board/board.hpp"
#include "support/check.hpp"

namespace rcarb::board {
namespace {

TEST(Board, WildforceMatchesPaperDescription) {
  const Board b = wildforce();
  EXPECT_EQ(b.name(), "wildforce");
  ASSERT_EQ(b.num_pes(), 4u);
  for (PeId p = 0; p < 4; ++p) {
    EXPECT_EQ(b.pe(p).clb_capacity, 576u) << "XC4013 is a 24x24 CLB array";
    EXPECT_EQ(b.pe(p).crossbar_pins, 36);
  }
  ASSERT_EQ(b.num_banks(), 4u);
  for (BankId bank = 0; bank < 4; ++bank) {
    EXPECT_EQ(b.bank(bank).bytes, 32u * 1024u);
    EXPECT_EQ(b.bank(bank).attached_pe, bank);
  }
  // Chain of 36-pin neighbor links.
  ASSERT_EQ(b.num_links(), 3u);
  for (LinkId l = 0; l < 3; ++l) EXPECT_EQ(b.link(l).width_bits, 36);
}

TEST(Board, QueriesWork) {
  const Board b = wildforce();
  EXPECT_EQ(b.banks_of(2), (std::vector<BankId>{2}));
  EXPECT_EQ(b.links_between(0, 1).size(), 1u);
  EXPECT_EQ(b.links_between(1, 0).size(), 1u) << "links are undirected";
  EXPECT_TRUE(b.links_between(0, 3).empty());
  EXPECT_EQ(b.links_of(1).size(), 2u);
  EXPECT_EQ(b.total_clb_capacity(), 4u * 576u);
  EXPECT_EQ(b.total_memory_bytes(), 4u * 32u * 1024u);
}

TEST(Board, CrossbarReachability) {
  const Board wf = wildforce();
  EXPECT_TRUE(wf.crossbar_reachable(0, 3));
  EXPECT_FALSE(wf.crossbar_reachable(2, 2)) << "self connection meaningless";
  const Board m2 = mini2();
  EXPECT_FALSE(m2.crossbar_reachable(0, 1)) << "mini2 has no crossbar";
}

TEST(Board, Mini2AndMesh8Shapes) {
  const Board m2 = mini2();
  EXPECT_EQ(m2.num_pes(), 2u);
  EXPECT_EQ(m2.num_links(), 1u);
  const Board m8 = mesh8();
  EXPECT_EQ(m8.num_pes(), 8u);
  EXPECT_EQ(m8.num_banks(), 8u);
  EXPECT_EQ(m8.num_links(), 10u);  // 6 horizontal + 4 vertical
  EXPECT_GT(m8.total_clb_capacity(), wildforce().total_clb_capacity());
}

TEST(Board, RejectsBadConstruction) {
  Board b("bad");
  EXPECT_THROW(b.add_pe("p", 0, 0), CheckError);
  const PeId p = b.add_pe("p", 100, 0);
  EXPECT_THROW(b.add_bank("m", 0, p), CheckError);
  EXPECT_THROW(b.add_bank("m", 16, 9), CheckError);
  EXPECT_THROW(b.add_link("l", p, p, 8), CheckError);
  EXPECT_THROW(b.pe(5), CheckError);
}

}  // namespace
}  // namespace rcarb::board
