// Cross-width equivalence of the wide-lane engine: scalar Simulator vs
// WideLaneSimulator at 64/256/512 lanes, across SIMD kernel tiers, across
// full-topo and event-driven settling, under SEU pokes and mid-run
// reset() — all bit-identical.  Plus the threaded replica-batch entry
// point (fault::run_replica_batch): byte-identical checksums at 1/2/8
// jobs and across lane widths, and the support/cpu tier-resolution rules.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/generator.hpp"
#include "fault/replica_batch.hpp"
#include "netlist/lane_simulator.hpp"
#include "netlist/netlist.hpp"
#include "netlist/simulator.hpp"
#include "netlist/wide_simulator.hpp"
#include "support/cpu.hpp"
#include "support/rng.hpp"
#include "synth/flow.hpp"

namespace rcarb::netlist {
namespace {

/// Nets every engine drives/observes: primary inputs, and the q nets +
/// marked outputs folded into the per-lane checksum.
struct Ports {
  std::vector<NetId> in;
  std::vector<NetId> observed;
  std::vector<NetId> state;  // q nets (poke targets)
};

Ports collect_ports(const Netlist& nl) {
  Ports p;
  p.in = nl.inputs();
  for (const Dff& dff : nl.dffs()) {
    p.state.push_back(dff.q);
    p.observed.push_back(dff.q);
  }
  for (const auto& [net, name] : nl.outputs()) p.observed.push_back(net);
  return p;
}

/// A random synchronous LUT/DFF netlist: LUT inputs only reference
/// earlier-created nets (primary inputs, q nets, earlier LUT outputs), so
/// the combinational graph is acyclic by construction; DFF d inputs may
/// close sequential loops over anything.
Netlist random_netlist(std::uint64_t seed, int num_inputs, int num_dffs,
                       int num_luts) {
  Rng rng(seed);
  Netlist nl;
  std::vector<NetId> pool;
  for (int i = 0; i < num_inputs; ++i)
    pool.push_back(nl.add_input("in" + std::to_string(i)));
  for (int i = 0; i < num_dffs; ++i)
    pool.push_back(nl.add_dff(pool[0], rng.next_below(2) == 1,
                              "state" + std::to_string(i)));
  for (int i = 0; i < num_luts; ++i) {
    const std::size_t arity = 1 + rng.next_below(kMaxLutInputs);
    std::vector<NetId> inputs;
    for (std::size_t k = 0; k < arity; ++k)
      inputs.push_back(pool[rng.next_below(pool.size())]);
    const auto mask = static_cast<std::uint16_t>(
        rng.next_below(std::uint64_t{1} << (std::uint64_t{1} << arity)));
    pool.push_back(nl.add_lut(std::move(inputs), mask,
                              "lut" + std::to_string(i)));
  }
  for (int i = 0; i < num_dffs; ++i)
    nl.connect_dff_d(static_cast<std::size_t>(i),
                     pool[rng.next_below(pool.size())]);
  nl.mark_output(pool.back(), "out");
  return nl;
}

/// Per-lane input bit for (seed, lane, cycle, input) — width-independent,
/// so lane l sees the same stimulus no matter how many lanes ride along.
bool lane_input_bit(std::uint64_t seed, std::size_t lane, int cycle,
                    std::size_t input) {
  Rng rng(derive_seed(seed, lane * 1000003u + static_cast<std::size_t>(cycle) *
                                                  131u +
                                              input));
  return rng.next_below(2) == 1;
}

struct LaneRunConfig {
  std::size_t lanes = 64;
  SettleMode mode = SettleMode::kEventDriven;
  std::optional<SimdTier> tier;
  int cycles = 120;
  int reset_at = -1;       // mid-run reset() cycle, -1 = never
  int poke_every = 13;     // SEU cadence, 0 = no pokes
};

/// Drives a WideLaneSimulator with the (seed, lane)-derived stimulus and
/// returns one checksum per lane over the observed nets.
std::vector<std::uint64_t> run_wide(const Netlist& nl, const Ports& p,
                                    std::uint64_t seed,
                                    const LaneRunConfig& cfg) {
  WideLaneSimulator sim(nl, cfg.lanes, cfg.mode, cfg.tier);
  std::vector<std::uint64_t> checksum(cfg.lanes, 0);
  std::vector<std::uint64_t> row(sim.words());
  for (int cyc = 0; cyc < cfg.cycles; ++cyc) {
    if (cyc == cfg.reset_at) sim.reset();
    for (std::size_t i = 0; i < p.in.size(); ++i) {
      for (std::size_t w = 0; w < sim.words(); ++w) {
        std::uint64_t word = 0;
        for (std::size_t b = 0; b < 64; ++b)
          if (lane_input_bit(seed, w * 64 + b, cyc, i))
            word |= std::uint64_t{1} << b;
        row[w] = word;
      }
      sim.set_input(p.in[i], row.data());
    }
    sim.settle();
    for (std::size_t o = 0; o < p.observed.size(); ++o) {
      sim.get(p.observed[o], row.data());
      for (std::size_t l = 0; l < cfg.lanes; ++l)
        checksum[l] =
            checksum[l] * 31 + (((row[l / 64] >> (l % 64)) & 1u) ? o + 1 : 0);
    }
    if (cfg.poke_every > 0 && !p.state.empty() &&
        cyc % cfg.poke_every == cfg.poke_every - 1) {
      // Each lane pokes its own register: lane l flips state[l % S].
      for (std::size_t l = 0; l < cfg.lanes; ++l) {
        const NetId reg = p.state[l % p.state.size()];
        sim.poke_register_lane(reg, l, !sim.get_lane(reg, l));
      }
    }
    sim.clock();
  }
  return checksum;
}

/// The same run on the scalar Simulator for one lane.
std::uint64_t run_scalar_lane(const Netlist& nl, const Ports& p,
                              std::uint64_t seed, std::size_t lane,
                              const LaneRunConfig& cfg) {
  Simulator sim(nl, cfg.mode);
  std::uint64_t checksum = 0;
  for (int cyc = 0; cyc < cfg.cycles; ++cyc) {
    if (cyc == cfg.reset_at) sim.reset();
    for (std::size_t i = 0; i < p.in.size(); ++i)
      sim.set_input(p.in[i], lane_input_bit(seed, lane, cyc, i));
    sim.settle();
    for (std::size_t o = 0; o < p.observed.size(); ++o)
      checksum = checksum * 31 + (sim.get(p.observed[o]) ? o + 1 : 0);
    if (cfg.poke_every > 0 && !p.state.empty() &&
        cyc % cfg.poke_every == cfg.poke_every - 1) {
      const NetId reg = p.state[lane % p.state.size()];
      sim.poke_register(reg, !sim.get(reg));
    }
    sim.clock();
  }
  return checksum;
}

/// Asserts scalar-vs-wide and wide-vs-wide checksum equality for one
/// netlist: widths 64/256/512 (auto tier + forced-portable), full-topo +
/// event-driven, with SEU pokes and a mid-run reset.
void check_cross_width(const Netlist& nl, std::uint64_t seed) {
  const Ports p = collect_ports(nl);
  ASSERT_FALSE(p.observed.empty());

  LaneRunConfig cfg;
  cfg.reset_at = 57;
  for (const SettleMode mode :
       {SettleMode::kEventDriven, SettleMode::kFullTopo}) {
    cfg.mode = mode;
    std::vector<std::vector<std::uint64_t>> by_width;
    for (const std::size_t lanes : {std::size_t{64}, std::size_t{256},
                                    std::size_t{512}}) {
      cfg.lanes = lanes;
      cfg.tier = std::nullopt;  // auto: widest kernel this machine has
      const std::vector<std::uint64_t> auto_tier = run_wide(nl, p, seed, cfg);
      cfg.tier = SimdTier::kScalar;  // forced-portable kernel
      const std::vector<std::uint64_t> portable = run_wide(nl, p, seed, cfg);
      ASSERT_EQ(auto_tier, portable)
          << "SIMD kernel diverged from the portable kernel at " << lanes
          << " lanes";
      by_width.push_back(auto_tier);
    }
    // Lane l must agree across widths (the stimulus is lane-derived).
    for (std::size_t l = 0; l < 64; ++l) {
      ASSERT_EQ(by_width[0][l], by_width[1][l]) << "64 vs 256, lane " << l;
      ASSERT_EQ(by_width[0][l], by_width[2][l]) << "64 vs 512, lane " << l;
    }
    for (std::size_t l = 64; l < 256; ++l)
      ASSERT_EQ(by_width[1][l], by_width[2][l]) << "256 vs 512, lane " << l;
    // Scalar reference for sampled lanes, including high ones only the
    // wider runs carry.
    for (const std::size_t lane : {std::size_t{0}, std::size_t{63}}) {
      ASSERT_EQ(run_scalar_lane(nl, p, seed, lane, cfg), by_width[0][lane])
          << "scalar vs 64-lane, lane " << lane;
    }
    for (const std::size_t lane : {std::size_t{64}, std::size_t{200}})
      ASSERT_EQ(run_scalar_lane(nl, p, seed, lane, cfg), by_width[1][lane])
          << "scalar vs 256-lane, lane " << lane;
    ASSERT_EQ(run_scalar_lane(nl, p, seed, 511, cfg), by_width[2][511])
        << "scalar vs 512-lane, lane 511";
  }
}

TEST(WideCrossWidth, RandomNetlistsAgreeAcrossWidthsTiersAndModes) {
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const Netlist nl =
        random_netlist(seed, /*num_inputs=*/5, /*num_dffs=*/6,
                       /*num_luts=*/40);
    check_cross_width(nl, seed * 17);
  }
}

TEST(WideCrossWidth, HardenedArbiterAgreesAcrossWidths) {
  const auto& s = core::synthesize_round_robin_cached(
      3, synth::Encoding::kOneHot, /*harden=*/true);
  check_cross_width(s.netlist, 4242);
}

TEST(WideCrossWidth, StructuralArbiterAgreesAcrossWidths) {
  const auto& g = core::generate_round_robin_cached(
      8, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  check_cross_width(g.synth.netlist, 9001);
}

TEST(WideKernel, DispatchReportsAtMostTheMachineTier) {
  const auto& s = core::synthesize_round_robin_cached(
      3, synth::Encoding::kOneHot, /*harden=*/true);
  for (const std::size_t lanes : {std::size_t{64}, std::size_t{256},
                                  std::size_t{512}}) {
    WideLaneSimulator sim(s.netlist, lanes);
    EXPECT_LE(sim.kernel_tier(), simd_tier());
    EXPECT_EQ(sim.lanes(), lanes);
    EXPECT_EQ(sim.words(), lanes / 64);
    // 64-lane rows have no SIMD kernel: always the portable engine.
    if (lanes == 64) {
      EXPECT_EQ(sim.kernel_tier(), SimdTier::kScalar);
    }
    // A SIMD kernel only dispatches when the machine has it.
    if (lanes == 256 && simd_tier() >= SimdTier::kAvx2) {
      EXPECT_EQ(sim.kernel_tier(), SimdTier::kAvx2);
    }
    if (lanes == 512 && simd_tier() >= SimdTier::kAvx512) {
      EXPECT_EQ(sim.kernel_tier(), SimdTier::kAvx512);
    }
    // Forcing the portable kernel always sticks.
    WideLaneSimulator forced(s.netlist, lanes, SettleMode::kEventDriven,
                             SimdTier::kScalar);
    EXPECT_EQ(forced.kernel_tier(), SimdTier::kScalar);
  }
}

TEST(WideEventDriven, SkipsCleanLutsAndPokesStayIncremental) {
  const auto& g = core::generate_round_robin_cached(
      8, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  const Netlist& nl = g.synth.netlist;
  const Ports p = collect_ports(nl);

  WideLaneSimulator full(nl, 256, SettleMode::kFullTopo);
  WideLaneSimulator event(nl, 256, SettleMode::kEventDriven);
  for (WideLaneSimulator* sim : {&full, &event}) {
    sim->set_input_all(nl.inputs()[2], true);
    for (int cyc = 0; cyc < 100; ++cyc) {
      sim->settle();
      sim->clock();
    }
  }
  EXPECT_LT(event.luts_evaluated(), full.luts_evaluated());
  EXPECT_GT(event.event_settles(), 0u);

  // A poke seeds the fanout cone — no full-resettle fallback.
  const std::uint64_t full_passes = event.full_settles();
  const std::uint64_t evals = event.luts_evaluated();
  event.poke_register_lane(p.state[0], 137, !event.get_lane(p.state[0], 137));
  EXPECT_EQ(event.full_settles(), full_passes);
  EXPECT_LT(event.luts_evaluated() - evals, nl.num_luts());
}

TEST(WideNameLookups, ResolvedIdLoopsDoNoStringHashing) {
  const auto& g = core::generate_round_robin_cached(
      4, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  const Netlist& nl = g.synth.netlist;
  const Ports p = collect_ports(nl);
  WideLaneSimulator sim(nl, 256);
  for (int cyc = 0; cyc < 50; ++cyc) {
    sim.set_input_all(p.in[static_cast<std::size_t>(cyc) % p.in.size()],
                      (cyc & 1) != 0);
    sim.settle();
    for (const NetId net : p.observed) (void)sim.get_lane(net, 200);
    sim.clock();
  }
  EXPECT_EQ(sim.name_lookups(), 0u);
  (void)sim.get_lane("grant0", 0);
  EXPECT_EQ(sim.name_lookups(), 1u);
}

// ---- Threaded replica batches. ----

fault::ReplicaBatchSpec campaign_spec(const Netlist& nl, int n,
                                      std::size_t replicas,
                                      std::uint64_t seed,
                                      std::size_t cycles) {
  fault::ReplicaBatchSpec spec;
  spec.netlist = &nl;
  for (int i = 0; i < n; ++i) {
    spec.req.push_back(*nl.find_net("req" + std::to_string(i)));
    spec.grant.push_back(*nl.find_net("grant" + std::to_string(i)));
  }
  for (std::size_t s = 0;; ++s) {
    const auto net = nl.find_net("state" + std::to_string(s));
    if (!net.has_value()) break;
    spec.state.push_back(*net);
  }
  Rng rng(seed);
  for (std::size_t c = 0; c < cycles; ++c)
    spec.requests.push_back(rng.next_below(std::uint64_t{1} << n));
  for (std::size_t r = 0; r < replicas; ++r)
    spec.seu.push_back(
        {static_cast<std::uint32_t>(rng.next_below(cycles)),
         static_cast<std::uint32_t>(rng.next_below(spec.state.size()))});
  return spec;
}

TEST(ReplicaBatch, ByteIdenticalAcrossJobsWidthsAndTiers) {
  const auto& s = core::synthesize_round_robin_cached(
      3, synth::Encoding::kOneHot, /*harden=*/true);
  // 300 replicas: not a multiple of any lane width, so every width
  // exercises a partial final batch.
  const fault::ReplicaBatchSpec spec =
      campaign_spec(s.netlist, 3, /*replicas=*/300, /*seed=*/777,
                    /*cycles=*/96);

  fault::ReplicaBatchOptions base;
  base.lanes = 256;
  base.jobs = 1;
  const fault::ReplicaBatchResult serial = fault::run_replica_batch(spec, base);
  ASSERT_EQ(serial.checksums.size(), 300u);
  EXPECT_EQ(serial.batches, 2u);

  for (const int jobs : {2, 8}) {
    fault::ReplicaBatchOptions opt = base;
    opt.jobs = jobs;
    const fault::ReplicaBatchResult r = fault::run_replica_batch(spec, opt);
    EXPECT_EQ(r.checksums, serial.checksums) << jobs << " jobs";
    EXPECT_EQ(r.folded, serial.folded) << jobs << " jobs";
  }
  for (const std::size_t lanes : {std::size_t{64}, std::size_t{512}}) {
    fault::ReplicaBatchOptions opt = base;
    opt.lanes = lanes;
    opt.jobs = 2;
    const fault::ReplicaBatchResult r = fault::run_replica_batch(spec, opt);
    EXPECT_EQ(r.checksums, serial.checksums) << lanes << " lanes";
    EXPECT_EQ(r.folded, serial.folded) << lanes << " lanes";
  }
  {
    fault::ReplicaBatchOptions opt = base;
    opt.tier = SimdTier::kScalar;
    opt.jobs = 2;
    const fault::ReplicaBatchResult r = fault::run_replica_batch(spec, opt);
    EXPECT_EQ(r.checksums, serial.checksums) << "portable tier";
    EXPECT_EQ(r.folded, serial.folded) << "portable tier";
  }
  {
    fault::ReplicaBatchOptions opt = base;
    opt.mode = SettleMode::kFullTopo;
    const fault::ReplicaBatchResult r = fault::run_replica_batch(spec, opt);
    EXPECT_EQ(r.checksums, serial.checksums) << "full-topo settle";
  }
}

TEST(ReplicaBatch, MatchesScalarSimulatorReplicas) {
  const auto& s = core::synthesize_round_robin_cached(
      3, synth::Encoding::kOneHot, /*harden=*/true);
  const std::size_t cycles = 80;
  const fault::ReplicaBatchSpec spec =
      campaign_spec(s.netlist, 3, /*replicas=*/70, /*seed=*/31337, cycles);
  fault::ReplicaBatchOptions opt;
  opt.lanes = 64;
  const fault::ReplicaBatchResult wide = fault::run_replica_batch(spec, opt);

  for (const std::size_t r : {std::size_t{0}, std::size_t{33},
                              std::size_t{69}}) {
    Simulator sim(s.netlist);
    std::uint64_t checksum = 0;
    for (std::size_t c = 0; c < cycles; ++c) {
      for (std::size_t i = 0; i < spec.req.size(); ++i)
        sim.set_input(spec.req[i], (spec.requests[c] >> i) & 1);
      sim.settle();
      for (std::size_t i = 0; i < spec.grant.size(); ++i)
        checksum = checksum * 31 + (sim.get(spec.grant[i]) ? i + 1 : 0);
      if (spec.seu[r].cycle == c) {
        const NetId net = spec.state[spec.seu[r].state_bit];
        sim.poke_register(net, !sim.get(net));
      }
      sim.clock();
    }
    EXPECT_EQ(wide.checksums[r], checksum) << "replica " << r;
  }
}

// ---- support/cpu tier resolution. ----

std::string g_last_warning;
void capture_warning(const std::string& msg) { g_last_warning = msg; }

TEST(SimdTierResolution, ParsesExactlyTheThreeTierNames) {
  EXPECT_EQ(parse_simd_tier("scalar"), SimdTier::kScalar);
  EXPECT_EQ(parse_simd_tier("avx2"), SimdTier::kAvx2);
  EXPECT_EQ(parse_simd_tier("avx512"), SimdTier::kAvx512);
  EXPECT_EQ(parse_simd_tier(""), std::nullopt);
  EXPECT_EQ(parse_simd_tier("AVX2"), std::nullopt);
  EXPECT_EQ(parse_simd_tier("sse"), std::nullopt);
  EXPECT_EQ(parse_simd_tier("avx512bw"), std::nullopt);
}

TEST(SimdTierResolution, OverridesClampAndWarn) {
  // No override: detected tier passes through, no warning.
  g_last_warning.clear();
  EXPECT_EQ(resolve_simd_tier(SimdTier::kAvx2, nullptr, capture_warning),
            SimdTier::kAvx2);
  EXPECT_EQ(resolve_simd_tier(SimdTier::kAvx2, "", capture_warning),
            SimdTier::kAvx2);
  EXPECT_TRUE(g_last_warning.empty());

  // Downgrades apply silently.
  EXPECT_EQ(resolve_simd_tier(SimdTier::kAvx512, "scalar", capture_warning),
            SimdTier::kScalar);
  EXPECT_EQ(resolve_simd_tier(SimdTier::kAvx512, "avx2", capture_warning),
            SimdTier::kAvx2);
  EXPECT_TRUE(g_last_warning.empty());

  // Requesting beyond the machine clamps with a warning.
  EXPECT_EQ(resolve_simd_tier(SimdTier::kAvx2, "avx512", capture_warning),
            SimdTier::kAvx2);
  EXPECT_NE(g_last_warning.find("clamping"), std::string::npos);

  // Malformed values warn and keep the detected tier.
  g_last_warning.clear();
  EXPECT_EQ(resolve_simd_tier(SimdTier::kAvx512, "wide", capture_warning),
            SimdTier::kAvx512);
  EXPECT_NE(g_last_warning.find("malformed"), std::string::npos);

  // The cached process-wide tier can never exceed detection.
  EXPECT_LE(simd_tier(), detected_simd_tier());
}

}  // namespace
}  // namespace rcarb::netlist
