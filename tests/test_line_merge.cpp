#include <gtest/gtest.h>

#include "core/line_merge.hpp"
#include "support/check.hpp"

namespace rcarb::core {
namespace {

TEST(LineMerge, StrategyRuleFollowsFig4) {
  EXPECT_EQ(strategy_for(LineClass::kAddress), MergeStrategy::kTristate);
  EXPECT_EQ(strategy_for(LineClass::kData), MergeStrategy::kTristate);
  EXPECT_EQ(strategy_for(LineClass::kActiveHighControl),
            MergeStrategy::kOrMerge);
  EXPECT_EQ(strategy_for(LineClass::kActiveLowControl),
            MergeStrategy::kAndMerge);
}

TEST(LineMerge, TristateSingleDriverWins) {
  const Resolved r =
      resolve_line(MergeStrategy::kTristate, {std::nullopt, true, std::nullopt});
  EXPECT_FALSE(r.is_z);
  EXPECT_FALSE(r.conflict);
  EXPECT_TRUE(r.value);
}

TEST(LineMerge, TristateFloatsWhenNobodyDrives) {
  // The Fig. 4a hazard: all drivers tristated leaves the line at Z.
  const Resolved r =
      resolve_line(MergeStrategy::kTristate, {std::nullopt, std::nullopt});
  EXPECT_TRUE(r.is_z);
}

TEST(LineMerge, TristateDoubleDriveIsConflict) {
  const Resolved r = resolve_line(MergeStrategy::kTristate, {true, false});
  EXPECT_TRUE(r.conflict);
}

TEST(LineMerge, OrMergeIdleReadsZero) {
  // The Fig. 4b fix: a memory's write-select is driven 0 by idle tasks, so
  // no phantom write can occur while everyone is idle.
  const Resolved r =
      resolve_line(MergeStrategy::kOrMerge, {std::nullopt, std::nullopt});
  EXPECT_FALSE(r.is_z);
  EXPECT_FALSE(r.value);
}

TEST(LineMerge, OrMergeActiveDriverWins) {
  EXPECT_TRUE(resolve_line(MergeStrategy::kOrMerge,
                           {std::nullopt, true, std::nullopt})
                  .value);
  EXPECT_FALSE(
      resolve_line(MergeStrategy::kOrMerge, {false, std::nullopt}).value);
}

TEST(LineMerge, AndMergeIdleReadsOne) {
  // Fig. 4c: active-low enables idle at 1 (inactive).
  const Resolved r =
      resolve_line(MergeStrategy::kAndMerge, {std::nullopt, std::nullopt});
  EXPECT_FALSE(r.is_z);
  EXPECT_TRUE(r.value);
}

TEST(LineMerge, AndMergeActiveLowDriverWins) {
  EXPECT_FALSE(
      resolve_line(MergeStrategy::kAndMerge, {std::nullopt, false}).value);
}

TEST(LineMerge, MemoryPlanHasBusAndSelectLines) {
  const auto plans = plan_memory_lines("MEM2", 6);
  ASSERT_EQ(plans.size(), 3u);
  EXPECT_EQ(plans[0].line_class, LineClass::kAddress);
  EXPECT_EQ(plans[0].strategy, MergeStrategy::kTristate);
  EXPECT_EQ(plans[2].line_class, LineClass::kActiveHighControl);
  EXPECT_EQ(plans[2].strategy, MergeStrategy::kOrMerge);
  for (const auto& p : plans) {
    EXPECT_EQ(p.resource_name, "MEM2");
    EXPECT_EQ(p.num_drivers, 6u);
  }
}

TEST(LineMerge, ChannelPlanHasDataAndEnable) {
  const auto plans = plan_channel_lines("c1_4", 2);
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_EQ(plans[0].line_class, LineClass::kData);
  EXPECT_EQ(plans[1].strategy, MergeStrategy::kOrMerge);
}

TEST(LineMerge, PlansRejectDegenerateDriverCounts) {
  EXPECT_THROW(plan_memory_lines("m", 1), CheckError);
  EXPECT_THROW(plan_channel_lines("c", 0), CheckError);
}

TEST(LineMerge, ToStringNames) {
  EXPECT_STREQ(to_string(LineClass::kAddress), "address");
  EXPECT_STREQ(to_string(MergeStrategy::kOrMerge), "or-merge");
}

}  // namespace
}  // namespace rcarb::core
