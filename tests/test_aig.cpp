#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "logic/truth_table.hpp"
#include "support/rng.hpp"

namespace rcarb::aig {
namespace {

TEST(Aig, ConstantFolding) {
  Aig g;
  const Lit a = g.add_input("a");
  EXPECT_EQ(g.land(a, kConstFalse), kConstFalse);
  EXPECT_EQ(g.land(a, kConstTrue), a);
  EXPECT_EQ(g.land(a, a), a);
  EXPECT_EQ(g.land(a, lit_not(a)), kConstFalse);
  EXPECT_EQ(g.num_ands(), 0u);
}

TEST(Aig, StructuralHashingSharesNodes) {
  Aig g;
  const Lit a = g.add_input("a");
  const Lit b = g.add_input("b");
  const Lit ab1 = g.land(a, b);
  const Lit ab2 = g.land(b, a);  // commuted
  EXPECT_EQ(ab1, ab2);
  EXPECT_EQ(g.num_ands(), 1u);
}

TEST(Aig, OrAndXorAndMuxSemantics) {
  Aig g;
  const Lit a = g.add_input("a");
  const Lit b = g.add_input("b");
  const Lit s = g.add_input("s");
  g.add_output("or", g.lor(a, b));
  g.add_output("xor", g.lxor(a, b));
  g.add_output("mux", g.mux(s, a, b));
  for (std::uint64_t p = 0; p < 8; ++p) {
    const bool av = p & 1, bv = (p >> 1) & 1, sv = (p >> 2) & 1;
    EXPECT_EQ(g.eval_output(0, p), av || bv);
    EXPECT_EQ(g.eval_output(1, p), av != bv);
    EXPECT_EQ(g.eval_output(2, p), sv ? av : bv);
  }
}

TEST(Aig, LandManyAndLorMany) {
  Aig g;
  std::vector<Lit> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(g.add_input("i" + std::to_string(i)));
  g.add_output("and", g.land_many(ins));
  g.add_output("or", g.lor_many(ins));
  for (std::uint64_t p = 0; p < 32; ++p) {
    EXPECT_EQ(g.eval_output(0, p), p == 31);
    EXPECT_EQ(g.eval_output(1, p), p != 0);
  }
  Aig h;
  EXPECT_EQ(h.land_many({}), kConstTrue);
  EXPECT_EQ(h.lor_many({}), kConstFalse);
}

TEST(Aig, DepthOfBalancedTree) {
  Aig g;
  std::vector<Lit> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(g.add_input("i" + std::to_string(i)));
  g.add_output("and", g.land_many(ins));
  EXPECT_EQ(g.depth(), 3);  // balanced 8-input AND
}

TEST(Aig, SimulateRunsPatternsInParallel) {
  Aig g;
  const Lit a = g.add_input("a");
  const Lit b = g.add_input("b");
  const Lit f = g.land(a, lit_not(b));
  g.add_output("f", f);
  // Pattern bit k: a = k&1, b = k&2.
  const std::vector<std::uint64_t> patterns{0b1010, 0b1100};
  const auto values = g.simulate(patterns);
  const std::uint64_t fv = values[lit_node(f)];
  for (int k = 0; k < 4; ++k) {
    const auto uk = static_cast<unsigned>(k);
    const bool av = (patterns[0] >> uk) & 1, bv = (patterns[1] >> uk) & 1;
    EXPECT_EQ(((fv >> uk) & 1) != 0, av && !bv) << "pattern " << k;
  }
}

TEST(AigProperty, FromCoverMatchesCover) {
  Rng rng(71);
  for (int trial = 0; trial < 150; ++trial) {
    const int nvars = 2 + static_cast<int>(rng.next_below(6));
    logic::Cover f(nvars);
    const int ncubes = 1 + static_cast<int>(rng.next_below(7));
    for (int i = 0; i < ncubes; ++i) {
      const std::uint64_t mask = rng.next_below(1ull << nvars);
      f.add(logic::Cube(mask, rng.next_below(1ull << nvars) & mask));
    }
    Aig g;
    std::vector<Lit> ins;
    for (int v = 0; v < nvars; ++v)
      ins.push_back(g.add_input("x" + std::to_string(v)));
    g.add_output("f", g.from_cover(f, ins));
    for (std::uint64_t p = 0; p < (1ull << nvars); ++p)
      EXPECT_EQ(g.eval_output(0, p), f.eval(p));
  }
}

TEST(AigProperty, SharedPrefixesReduceNodeCount) {
  // Priority-scan covers share ~R prefixes; strashing must exploit that:
  // building N chains of length N must cost far fewer than N^2 ANDs twice.
  Aig g;
  std::vector<Lit> r;
  const int n = 10;
  for (int i = 0; i < n; ++i) r.push_back(g.add_input("r" + std::to_string(i)));
  std::size_t first_count = 0;
  for (int rep = 0; rep < 2; ++rep) {
    for (int j = 0; j < n; ++j) {
      Lit chain = kConstTrue;
      for (std::size_t k = 0; k < static_cast<std::size_t>(j); ++k)
        chain = g.land(chain, lit_not(r[k]));
      (void)g.land(chain, r[static_cast<std::size_t>(j)]);
    }
    if (rep == 0) first_count = g.num_ands();
  }
  EXPECT_EQ(g.num_ands(), first_count) << "second round must be fully shared";
}

TEST(Aig, InputOrdinalAndNames) {
  Aig g;
  const Lit a = g.add_input("alpha");
  const Lit b = g.add_input("beta");
  EXPECT_EQ(g.input_ordinal(lit_node(a)), 0u);
  EXPECT_EQ(g.input_ordinal(lit_node(b)), 1u);
  EXPECT_EQ(g.input_name(1), "beta");
  g.add_output("out", b);
  EXPECT_EQ(g.output_name(0), "out");
  EXPECT_EQ(g.output_driver(0), b);
}

}  // namespace
}  // namespace rcarb::aig
