#include <gtest/gtest.h>

#include "synth/clb_pack.hpp"

namespace rcarb::synth {
namespace {

netlist::NetId add_and(netlist::Netlist& nl, netlist::NetId a,
                       netlist::NetId b, const std::string& name) {
  return nl.add_lut({a, b}, 0b1000, name);
}

TEST(ClbPack, EmptyNetlistUsesNoClbs) {
  netlist::Netlist nl;
  nl.add_input("a");
  const ClbReport report = pack_xc4000e(nl);
  EXPECT_EQ(report.clbs, 0u);
}

TEST(ClbPack, TwoLutsShareOneClb) {
  netlist::Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto f = add_and(nl, a, b, "f");
  const auto g = add_and(nl, a, b, "g2");
  nl.mark_output(f, "of");
  nl.mark_output(g, "og");
  const ClbReport report = pack_xc4000e(nl);
  EXPECT_EQ(report.luts, 2u);
  EXPECT_EQ(report.clbs, 1u);
}

TEST(ClbPack, ThreeIndependentLutsNeedTwoClbs) {
  netlist::Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  for (int i = 0; i < 3; ++i) {
    const auto f = add_and(nl, a, b, "f" + std::to_string(i));
    nl.mark_output(f, "o" + std::to_string(i));
  }
  EXPECT_EQ(pack_xc4000e(nl).clbs, 2u);
}

TEST(ClbPack, HPatternAbsorbsThreeLutsIntoOneClb) {
  // f and g feed h (2-input) and fan out nowhere else: the classic F-G-H
  // triple occupies a single CLB.
  netlist::Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto c = nl.add_input("c");
  const auto d = nl.add_input("d");
  const auto f = add_and(nl, a, b, "f");
  const auto g = add_and(nl, c, d, "g2");
  const auto h = nl.add_lut({f, g}, 0b0110, "h");
  nl.mark_output(h, "out");
  const ClbReport report = pack_xc4000e(nl);
  EXPECT_EQ(report.luts, 3u);
  EXPECT_EQ(report.h_luts, 1u);
  EXPECT_EQ(report.clbs, 1u);
}

TEST(ClbPack, HPatternNotUsedWhenFeedersFanOut) {
  // When f also feeds another consumer its output must leave the CLB, so
  // the H absorption is illegal.
  netlist::Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto c = nl.add_input("c");
  const auto d = nl.add_input("d");
  const auto f = add_and(nl, a, b, "f");
  const auto g = add_and(nl, c, d, "g2");
  const auto h = nl.add_lut({f, g}, 0b0110, "h");
  const auto k = add_and(nl, f, c, "k");  // second consumer of f
  nl.mark_output(h, "oh");
  nl.mark_output(k, "ok");
  const ClbReport report = pack_xc4000e(nl);
  EXPECT_EQ(report.h_luts, 0u);
  EXPECT_EQ(report.clbs, 2u);  // 4 LUTs -> 2 CLBs
}

TEST(ClbPack, FlipFlopsRideAlongInLogicClbs) {
  netlist::Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto f = add_and(nl, a, b, "f");
  nl.add_dff(f, false, "q0");
  nl.add_dff(f, false, "q1");
  const ClbReport report = pack_xc4000e(nl);
  EXPECT_EQ(report.clbs, 1u) << "1 LUT + 2 FFs fit one CLB";
  EXPECT_EQ(report.ff_only_clbs, 0u);
}

TEST(ClbPack, OverflowFlipFlopsGetTheirOwnClbs) {
  netlist::Netlist nl;
  const auto a = nl.add_input("a");
  for (int i = 0; i < 6; ++i) nl.add_dff(a, false, "q" + std::to_string(i));
  const ClbReport report = pack_xc4000e(nl);
  EXPECT_EQ(report.ffs, 6u);
  EXPECT_EQ(report.clbs, 3u);  // 6 FFs, 2 per CLB, no logic CLBs
  EXPECT_EQ(report.ff_only_clbs, 3u);
}

TEST(ClbPack, MixedDesignAccounting) {
  netlist::Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  std::vector<netlist::NetId> luts;
  for (int i = 0; i < 5; ++i)
    luts.push_back(add_and(nl, a, b, "f" + std::to_string(i)));
  for (int i = 0; i < 8; ++i)
    nl.add_dff(luts[static_cast<std::size_t>(i) % 5], false,
               "q" + std::to_string(i));
  const ClbReport report = pack_xc4000e(nl);
  // 5 LUTs -> 3 logic CLBs (no H patterns: all feed DFFs and nothing else
  // ... feeders are inputs); 3 CLBs hold 6 FFs, 2 overflow -> 1 more CLB.
  EXPECT_EQ(report.clbs, 4u);
  EXPECT_EQ(report.ff_only_clbs, 1u);
}

}  // namespace
}  // namespace rcarb::synth
