#include <gtest/gtest.h>

#include "logic/cover.hpp"
#include "logic/truth_table.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace rcarb::logic {
namespace {

Cover random_cover(Rng& rng, int nvars, int ncubes) {
  Cover f(nvars);
  for (int i = 0; i < ncubes; ++i) {
    const std::uint64_t mask = rng.next_below(1ull << nvars);
    const std::uint64_t value = rng.next_below(1ull << nvars) & mask;
    f.add(Cube(mask, value));
  }
  return f;
}

TEST(Cover, EmptyCoverIsFalse) {
  Cover f(4);
  EXPECT_TRUE(f.empty());
  EXPECT_FALSE(f.eval(0));
  EXPECT_FALSE(f.is_tautology());
}

TEST(Cover, UniversalCubeIsTautology) {
  Cover f(4);
  f.add(Cube());
  EXPECT_TRUE(f.is_tautology());
}

TEST(Cover, XPlusNotXIsTautology) {
  Cover f(3);
  f.add(Cube::literal(1, true));
  f.add(Cube::literal(1, false));
  EXPECT_TRUE(f.is_tautology());
}

TEST(Cover, SingleLiteralIsNotTautology) {
  Cover f(3);
  f.add(Cube::literal(0, true));
  EXPECT_FALSE(f.is_tautology());
}

TEST(Cover, CofactorRemovesVariable) {
  Cover f(3);
  f.add(Cube::literal(0, true).with_literal(1, true));   // x0 x1
  f.add(Cube::literal(0, false).with_literal(2, true));  // ~x0 x2
  const Cover pos = f.cofactor(0, true);
  EXPECT_EQ(pos.size(), 1u);                 // x1 remains
  EXPECT_TRUE(pos.eval(0b010));
  const Cover neg = f.cofactor(0, false);
  EXPECT_EQ(neg.size(), 1u);                 // x2 remains
  EXPECT_TRUE(neg.eval(0b100));
}

TEST(Cover, CoversCubeDetectsMultiCubeContainment) {
  // x1 is covered by (x1 & x0) + (x1 & ~x0) even though neither cube alone
  // contains it.
  Cover f(2);
  f.add(Cube::literal(1, true).with_literal(0, true));
  f.add(Cube::literal(1, true).with_literal(0, false));
  EXPECT_TRUE(f.covers_cube(Cube::literal(1, true)));
  EXPECT_FALSE(f.covers_cube(Cube()));
}

TEST(Cover, RemoveSingleCubeContainedKeepsOneCopy) {
  Cover f(3);
  f.add(Cube::literal(0, true));
  f.add(Cube::literal(0, true));                          // duplicate
  f.add(Cube::literal(0, true).with_literal(1, true));    // contained
  f.remove_single_cube_contained();
  EXPECT_EQ(f.size(), 1u);
}

TEST(CoverProperty, TautologyMatchesTruthTable) {
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    const int nvars = 1 + static_cast<int>(rng.next_below(6));
    const Cover f = random_cover(rng, nvars, 1 + static_cast<int>(rng.next_below(6)));
    const TruthTable tt = TruthTable::from_cover(f);
    EXPECT_EQ(f.is_tautology(), tt == TruthTable::constant(nvars, true))
        << "nvars=" << nvars << "\n" << f.to_string();
  }
}

TEST(CoverProperty, CofactorMatchesSemantics) {
  Rng rng(37);
  for (int trial = 0; trial < 100; ++trial) {
    const int nvars = 3 + static_cast<int>(rng.next_below(4));
    const Cover f = random_cover(rng, nvars, 5);
    const int var = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nvars)));
    const bool val = rng.chance(1, 2);
    const Cover cf = f.cofactor(var, val);
    for (std::uint64_t p = 0; p < (1ull << nvars); ++p) {
      std::uint64_t q = p;
      if (val)
        q |= 1ull << var;
      else
        q &= ~(1ull << var);
      EXPECT_EQ(cf.eval(p & ~(1ull << var)) || cf.eval(p | (1ull << var)),
                cf.eval(p))  // cofactor is independent of var
          << "cofactor result must not depend on the removed variable";
      EXPECT_EQ(cf.eval(p), f.eval(q));
    }
  }
}

TEST(Minimize, MergesDistanceOneCubes) {
  Cover f(2);
  f.add(Cube::literal(0, true).with_literal(1, true));
  f.add(Cube::literal(0, true).with_literal(1, false));
  minimize(f);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f.cubes()[0], Cube::literal(0, true));
}

TEST(Minimize, DropsRedundantCube) {
  Cover f(2);
  f.add(Cube::literal(0, true));
  f.add(Cube::literal(1, true));
  f.add(Cube::literal(0, true).with_literal(1, true));  // redundant
  minimize(f);
  EXPECT_EQ(f.size(), 2u);
}

TEST(Minimize, UsesDontCaresToExpand) {
  // ON = x0&x1; DC = x0&~x1  =>  the cube may expand to x0.
  Cover on(2);
  on.add(Cube::literal(0, true).with_literal(1, true));
  Cover dc(2);
  dc.add(Cube::literal(0, true).with_literal(1, false));
  minimize(on, &dc);
  ASSERT_EQ(on.size(), 1u);
  EXPECT_EQ(on.cubes()[0], Cube::literal(0, true));
}

TEST(Minimize, ReportsStats) {
  Cover f(2);
  f.add(Cube::literal(0, true).with_literal(1, true));
  f.add(Cube::literal(0, true).with_literal(1, false));
  const MinimizeStats stats = minimize(f);
  EXPECT_EQ(stats.cubes_before, 2u);
  EXPECT_EQ(stats.cubes_after, 1u);
  EXPECT_GT(stats.iterations, 0);
}

TEST(MinimizeProperty, PreservesFunctionExactly) {
  Rng rng(41);
  for (int trial = 0; trial < 150; ++trial) {
    const int nvars = 2 + static_cast<int>(rng.next_below(5));
    Cover f = random_cover(rng, nvars, 2 + static_cast<int>(rng.next_below(8)));
    const TruthTable before = TruthTable::from_cover(f);
    minimize(f);
    const TruthTable after = TruthTable::from_cover(f);
    EXPECT_EQ(before, after) << "minimization changed the function";
  }
}

TEST(MinimizeProperty, WithDcStaysWithinOnPlusDc) {
  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    const int nvars = 2 + static_cast<int>(rng.next_below(4));
    Cover on = random_cover(rng, nvars, 3);
    Cover dc = random_cover(rng, nvars, 2);
    const TruthTable on_before = TruthTable::from_cover(on);
    const TruthTable dc_tt = TruthTable::from_cover(dc);
    minimize(on, &dc);
    const TruthTable after = TruthTable::from_cover(on);
    // Still covers every ON point that is not also a don't-care...
    const TruthTable hard_on = on_before & ~dc_tt;
    EXPECT_EQ(hard_on & after, hard_on);
    // ...and never leaves ON ∪ DC.
    EXPECT_EQ(after & ~(on_before | dc_tt), TruthTable::constant(nvars, false));
  }
}

TEST(Cover, LiteralCountSums) {
  Cover f(4);
  f.add(Cube::literal(0, true).with_literal(1, false));
  f.add(Cube::literal(2, true));
  EXPECT_EQ(f.literal_count(), 3u);
}

TEST(Cover, CoversWholeCover) {
  Cover f(2);
  f.add(Cube::literal(0, true));
  f.add(Cube::literal(0, false));
  Cover g(2);
  g.add(Cube::literal(1, true));
  EXPECT_TRUE(f.covers(g));
  EXPECT_FALSE(g.covers(f));
}

}  // namespace
}  // namespace rcarb::logic
