#include <gtest/gtest.h>

#include "core/policy.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace rcarb::core {
namespace {

TEST(RoundRobin, Fig5HandTrace) {
  // Follow the Fig. 5 algorithm by hand for N=3.
  RoundRobinArbiter arb(3);
  EXPECT_EQ(arb.state_name(), "F0");
  EXPECT_EQ(arb.step(0b000), -1);  // F0 stays
  EXPECT_EQ(arb.state_name(), "F0");
  EXPECT_EQ(arb.step(0b010), 1);  // not(R0) and R1 -> C1, G1
  EXPECT_EQ(arb.state_name(), "C1");
  EXPECT_EQ(arb.step(0b111), 1);  // holder keeps while requesting
  EXPECT_EQ(arb.step(0b101), 2);  // R1 dropped; scan from 1 -> grants 2
  EXPECT_EQ(arb.state_name(), "C2");
  EXPECT_EQ(arb.step(0b000), -1);  // C2 retires to F0 (wrap)
  EXPECT_EQ(arb.state_name(), "F0");
}

TEST(RoundRobin, CyclicPriorityRotatesAfterIdleRetire) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.step(0b0001), 0);   // C0
  EXPECT_EQ(arb.step(0b0000), -1);  // -> F1
  EXPECT_EQ(arb.state_name(), "F1");
  // Now 0 and 1 request together: 1 has priority.
  EXPECT_EQ(arb.step(0b0011), 1);
}

TEST(RoundRobin, SimultaneousRequestsServedCyclically) {
  RoundRobinArbiter arb(4);
  std::vector<int> order;
  std::uint64_t req = 0b1111;
  int granted = arb.step(req);
  for (int i = 0; i < 4; ++i) {
    order.push_back(granted);
    req &= ~(1ull << granted);  // winner releases
    granted = arb.step(req);
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

struct PolicyCase {
  Policy policy;
  int n;
};

class AllPolicies : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(AllPolicies, GrantOnlyGoesToRequesters) {
  auto arb = make_arbiter(GetParam().policy, GetParam().n, 5);
  Rng rng(101);
  for (int cyc = 0; cyc < 2000; ++cyc) {
    const std::uint64_t req = rng.next_below(1ull << GetParam().n);
    const int g = arb->step(req);
    if (g >= 0) {
      EXPECT_TRUE((req >> g) & 1) << arb->describe();
    }
    if (req == 0) {
      EXPECT_EQ(g, -1);
    }
  }
}

TEST_P(AllPolicies, GrantIssuedWheneverSomeoneRequests) {
  // Deadlock freedom: a nonzero request vector always yields a grant.
  auto arb = make_arbiter(GetParam().policy, GetParam().n, 6);
  Rng rng(103);
  for (int cyc = 0; cyc < 2000; ++cyc) {
    const std::uint64_t req =
        1 + rng.next_below((1ull << GetParam().n) - 1);
    EXPECT_GE(arb->step(req), 0) << arb->describe();
  }
}

TEST_P(AllPolicies, HolderKeepsGrantWhileRequesting) {
  // The Fig. 8 protocol relies on the grant being stable until release.
  auto arb = make_arbiter(GetParam().policy, GetParam().n, 7);
  Rng rng(107);
  int holder = -1;
  for (int cyc = 0; cyc < 2000; ++cyc) {
    std::uint64_t req = rng.next_below(1ull << GetParam().n);
    if (holder >= 0) req |= 1ull << holder;  // holder never releases here
    const int g = arb->step(req);
    if (holder >= 0) {
      EXPECT_EQ(g, holder) << arb->describe();
    }
    holder = g;
    if (holder >= 0 && rng.chance(1, 4)) {
      // release: drop the request next cycle
      req &= ~(1ull << holder);
      holder = -1;
      (void)req;
    }
  }
}

TEST_P(AllPolicies, ResetRestoresInitialBehavior) {
  auto a = make_arbiter(GetParam().policy, GetParam().n, 11);
  auto b = make_arbiter(GetParam().policy, GetParam().n, 11);
  Rng rng(113);
  for (int cyc = 0; cyc < 100; ++cyc)
    (void)a->step(rng.next_below(1ull << GetParam().n));
  a->reset();
  Rng replay(127);
  Rng replay2(127);
  for (int cyc = 0; cyc < 200; ++cyc) {
    const std::uint64_t req = replay.next_below(1ull << GetParam().n);
    const std::uint64_t req2 = replay2.next_below(1ull << GetParam().n);
    EXPECT_EQ(a->step(req), b->step(req2)) << a->describe();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllPolicies,
    ::testing::Values(PolicyCase{Policy::kRoundRobin, 2},
                      PolicyCase{Policy::kRoundRobin, 5},
                      PolicyCase{Policy::kRoundRobin, 10},
                      PolicyCase{Policy::kFifo, 2}, PolicyCase{Policy::kFifo, 5},
                      PolicyCase{Policy::kFifo, 10},
                      PolicyCase{Policy::kPriority, 2},
                      PolicyCase{Policy::kPriority, 5},
                      PolicyCase{Policy::kPriority, 10},
                      PolicyCase{Policy::kRandom, 2},
                      PolicyCase{Policy::kRandom, 5},
                      PolicyCase{Policy::kRandom, 10}));

/// Simulates N greedy clients that always re-request and hold for
/// `hold` cycles; returns the maximum number of grants to others between
/// consecutive grants to any one client.
int max_intervening_grants(Arbiter& arb, int n, int hold, int cycles) {
  std::vector<int> since_grant(static_cast<std::size_t>(n), 0);
  int holder = -1;
  int held = 0;
  int worst = 0;
  for (int cyc = 0; cyc < cycles; ++cyc) {
    std::uint64_t req = (n == 64) ? ~0ull : ((1ull << n) - 1);
    if (holder >= 0 && held >= hold) req &= ~(1ull << holder);  // release
    const int g = arb.step(req);
    if (g != holder) {
      // A new grant: everyone else waited one more grant period.
      for (int t = 0; t < n; ++t) {
        if (t == g) {
          since_grant[static_cast<std::size_t>(t)] = 0;
        } else {
          ++since_grant[static_cast<std::size_t>(t)];
          worst = std::max(worst, since_grant[static_cast<std::size_t>(t)]);
        }
      }
      holder = g;
      held = 1;
    } else {
      ++held;
    }
  }
  return worst;
}

TEST(RoundRobin, StarvationBoundIsNMinusOne) {
  // Sec. 4.1: "a task requesting at a certain instant will have its grant
  // at most after (N-1) tasks".
  for (int n : {2, 3, 5, 8, 10}) {
    RoundRobinArbiter arb(n);
    EXPECT_LE(max_intervening_grants(arb, n, 3, 5000), n - 1) << "n=" << n;
  }
}

TEST(Fifo, AlsoStarvationFreeUnderContinuousLoad) {
  FifoArbiter arb(6);
  EXPECT_LE(max_intervening_grants(arb, 6, 3, 5000), 6);
}

TEST(Priority, StarvesLowPriorityTasks) {
  // The negative result that motivated round-robin: under continuous load
  // from task 0, a static-priority arbiter never serves task 1.
  PriorityArbiter arb(2);
  int grants_to_1 = 0;
  for (int cyc = 0; cyc < 1000; ++cyc) {
    // Task 0 re-requests instantly after its 2-cycle bursts; task 1 waits.
    const std::uint64_t req = 0b11;
    if (arb.step(req) == 1) ++grants_to_1;
  }
  EXPECT_EQ(grants_to_1, 0);
}

TEST(Random, EventuallyServesEveryoneUnderChurn) {
  RandomArbiter arb(4, 99);
  std::vector<int> grants(4, 0);
  int holder = -1;
  int held = 0;
  for (int cyc = 0; cyc < 4000; ++cyc) {
    std::uint64_t req = 0b1111;
    if (holder >= 0 && held >= 2) req &= ~(1ull << holder);
    const int g = arb.step(req);
    if (g >= 0 && g != holder) {
      ++grants[static_cast<std::size_t>(g)];
      held = 1;
    } else {
      ++held;
    }
    holder = g;
  }
  for (int t = 0; t < 4; ++t) EXPECT_GT(grants[static_cast<std::size_t>(t)], 0);
}

TEST(RoundRobinPreemption, HogIsPreemptedAfterWindow) {
  RoundRobinArbiter arb(3, RoundRobinOptions{/*max_hold_cycles=*/4});
  // Task 0 requests forever; task 1 joins at cycle 2 and never gives up.
  EXPECT_EQ(arb.step(0b001), 0);
  EXPECT_EQ(arb.step(0b001), 0);
  EXPECT_EQ(arb.step(0b011), 0);
  EXPECT_EQ(arb.step(0b011), 0);  // 4th granted cycle for task 0
  EXPECT_EQ(arb.step(0b011), 1) << "holder must be preempted";
  // Preemption only triggers when someone else waits.
  RoundRobinArbiter solo(3, RoundRobinOptions{2});
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(solo.step(0b001), 0) << "no waiter, no preemption";
}

TEST(RoundRobinPreemption, DisabledByDefault) {
  RoundRobinArbiter arb(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(arb.step(0b11), 0);
}

TEST(Arbiter, RejectsBadSizes) {
  EXPECT_THROW(RoundRobinArbiter(0), CheckError);
  EXPECT_THROW(RoundRobinArbiter(65), CheckError);
  // n = 1 is a degenerate but legal arbiter (a remap can merge every
  // contender away but one); n = 64 is the lane-sim word width.
  EXPECT_NO_THROW(RoundRobinArbiter(1));
  EXPECT_NO_THROW(RoundRobinArbiter(64));
}

TEST(Arbiter, FactoryAndDescribe) {
  EXPECT_EQ(make_arbiter(Policy::kRoundRobin, 4)->describe(), "round-robin(4)");
  EXPECT_EQ(make_arbiter(Policy::kFifo, 4)->describe(), "fifo(4)");
  EXPECT_EQ(make_arbiter(Policy::kPriority, 4)->describe(), "priority(4)");
  EXPECT_EQ(make_arbiter(Policy::kRandom, 4)->describe(), "random(4)");
  EXPECT_STREQ(to_string(Policy::kRoundRobin), "round-robin");
}

TEST(Fifo, ServesInArrivalOrder) {
  FifoArbiter arb(4);
  EXPECT_EQ(arb.step(0b0100), 2);  // 2 arrives first and is granted
  // 1 and 3 arrive while 2 holds; 1 enqueues before 3 (same-cycle index
  // tie-break), then 0 arrives a cycle later.
  EXPECT_EQ(arb.step(0b1110), 2);
  EXPECT_EQ(arb.step(0b1111), 2);
  EXPECT_EQ(arb.step(0b1011), 1);  // 2 released: oldest waiter is 1
  EXPECT_EQ(arb.step(0b1001), 3);  // then 3
  EXPECT_EQ(arb.step(0b0001), 0);  // then 0
}

}  // namespace
}  // namespace rcarb::core
