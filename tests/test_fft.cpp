#include <gtest/gtest.h>

#include "core/insertion.hpp"
#include "fft/fft_design.hpp"
#include "fft/reference.hpp"
#include "fft/workload.hpp"
#include "rcsim/system_sim.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace rcarb::fft {
namespace {

// ----------------------------------------------------------- reference DFT

TEST(Reference, ImpulseHasFlatSpectrum) {
  // DFT of a delta is constant.
  const auto spectrum = dft4(std::array<std::int64_t, 4>{1, 0, 0, 0});
  for (const Complex64& x : spectrum) EXPECT_EQ(x, (Complex64{1, 0}));
}

TEST(Reference, ConstantHasDcOnly) {
  const auto spectrum = dft4(std::array<std::int64_t, 4>{3, 3, 3, 3});
  EXPECT_EQ(spectrum[0], (Complex64{12, 0}));
  for (int k = 1; k < 4; ++k) EXPECT_EQ(spectrum[k], (Complex64{0, 0}));
}

TEST(Reference, KnownVector) {
  // x = [0 1 2 3]: X0 = 6, X1 = -2+2j, X2 = -2, X3 = -2-2j.
  const auto s = dft4(std::array<std::int64_t, 4>{0, 1, 2, 3});
  EXPECT_EQ(s[0], (Complex64{6, 0}));
  EXPECT_EQ(s[1], (Complex64{-2, 2}));
  EXPECT_EQ(s[2], (Complex64{-2, 0}));
  EXPECT_EQ(s[3], (Complex64{-2, -2}));
}

TEST(Reference, LinearityOfRealDft) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::array<std::int64_t, 4> a, b, sum;
    for (int i = 0; i < 4; ++i) {
      a[i] = rng.next_in(-100, 100);
      b[i] = rng.next_in(-100, 100);
      sum[i] = a[i] + b[i];
    }
    const auto sa = dft4(a), sb = dft4(b), ss = dft4(sum);
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(ss[k].re, sa[k].re + sb[k].re);
      EXPECT_EQ(ss[k].im, sa[k].im + sb[k].im);
    }
  }
}

TEST(Reference, ComplexDftMatchesDirectSummation) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::array<Complex64, 4> x;
    for (auto& v : x) v = {rng.next_in(-50, 50), rng.next_in(-50, 50)};
    const auto got = dft4(x);
    // Direct O(N^2) DFT with exact twiddles (1, -j, -1, j powers).
    for (int k = 0; k < 4; ++k) {
      std::int64_t re = 0, im = 0;
      for (int n = 0; n < 4; ++n) {
        switch ((n * k) % 4) {
          case 0: re += x[n].re; im += x[n].im; break;          // *1
          case 1: re += x[n].im; im -= x[n].re; break;          // *-j
          case 2: re -= x[n].re; im -= x[n].im; break;          // *-1
          case 3: re -= x[n].im; im += x[n].re; break;          // *j
        }
      }
      EXPECT_EQ(got[k].re, re) << "k=" << k;
      EXPECT_EQ(got[k].im, im) << "k=" << k;
    }
  }
}

TEST(Reference, ParsevalHoldsFor2d) {
  // Sum |x|^2 * 16 == sum |X|^2 for the 4x4 2-D DFT (exact integers).
  Rng rng(11);
  Block block{};
  std::int64_t input_energy = 0;
  for (auto& row : block)
    for (auto& v : row) {
      v = rng.next_in(-20, 20);
      input_energy += v * v;
    }
  const BlockSpectrum spec = fft2d_4x4(block);
  std::int64_t output_energy = 0;
  for (const auto& col : spec)
    for (const Complex64& v : col) output_energy += v.re * v.re + v.im * v.im;
  EXPECT_EQ(output_energy, 16 * input_energy);
}

// -------------------------------------------------------------- the design

TEST(FftDesign, GraphShapeMatchesFig10) {
  const FftDesign d = build_fft_design();
  EXPECT_EQ(d.graph.num_tasks(), 12u);    // 4 F + 8 g
  EXPECT_EQ(d.graph.num_segments(), 12u); // MI, ML, MO x 4
  EXPECT_EQ(d.graph.num_channels(), 0u);  // all communication via memory
  // Every F precedes every g.
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_TRUE(d.graph.precedes(d.f[i], d.gr[j]));
      EXPECT_TRUE(d.graph.precedes(d.f[i], d.gi[j]));
    }
  // F tasks are mutually concurrent, as are g tasks.
  EXPECT_FALSE(d.graph.serialized(d.f[0], d.f[3]));
  EXPECT_FALSE(d.graph.serialized(d.gr[0], d.gi[2]));
}

TEST(FftDesign, FTasksScatterToEveryMl) {
  const FftDesign d = build_fft_design();
  for (std::size_t i = 0; i < 4; ++i) {
    const auto segs = d.graph.task(d.f[i]).program.accessed_segments();
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_NE(std::find(segs.begin(), segs.end(),
                          static_cast<int>(d.ml[j])),
                segs.end())
          << "F" << i << " must write ML" << j;
  }
}

TEST(FftDesign, GTasksReadExactlyTheirColumn) {
  const FftDesign d = build_fft_design();
  for (std::size_t j = 0; j < 4; ++j) {
    for (const tg::TaskId t : {d.gr[j], d.gi[j]}) {
      const auto segs = d.graph.task(t).program.accessed_segments();
      EXPECT_EQ(segs.size(), 2u) << "one ML and one MO";
      EXPECT_NE(std::find(segs.begin(), segs.end(),
                          static_cast<int>(d.ml[j])),
                segs.end());
      EXPECT_NE(std::find(segs.begin(), segs.end(),
                          static_cast<int>(d.mo[j])),
                segs.end());
    }
  }
}

/// Runs the whole design in one pass with one bank per segment.  The four
/// F tasks still contend (each scatters into every ML bank), so the design
/// goes through arbiter insertion like any other.
TEST(FftDesign, ComputesTheExactSpectrum) {
  const FftDesign d = build_fft_design({200, 380, 0, 0});
  core::Binding binding;
  binding.task_to_pe.assign(d.graph.num_tasks(), 0);
  binding.segment_to_bank.resize(12);
  for (int s = 0; s < 12; ++s) binding.segment_to_bank[static_cast<std::size_t>(s)] = s;
  binding.num_banks = 12;
  for (int b = 0; b < 12; ++b) binding.bank_names.push_back("B" + std::to_string(b));
  const core::InsertionResult ins =
      core::insert_arbitration(d.graph, binding, {});

  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    Block block{};
    for (auto& row : block)
      for (auto& v : row) v = rng.next_in(-128, 127);
    rcsim::SystemSimulator sim(ins.graph, binding, ins.plan);
    load_block(sim, d, block);
    std::vector<tg::TaskId> all;
    for (tg::TaskId t = 0; t < 12; ++t) all.push_back(t);
    sim.run(all);
    const BlockSpectrum got = read_spectrum(sim, d);
    const BlockSpectrum want = fft2d_4x4(block);
    for (std::size_t j = 0; j < 4; ++j)
      for (std::size_t k = 0; k < 4; ++k)
        EXPECT_EQ(got[j][k], want[j][k]) << "MO" << j << "[" << k << "]";
  }
}

// ----------------------------------------------------- paper (Fig. 11) pins

TEST(FftPaperPins, PartitionsMatchSec5Membership) {
  const FftDesign d = build_fft_design();
  const auto parts = paper_partitions(d);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].size(), 6u);
  EXPECT_EQ(parts[1].size(), 4u);
  EXPECT_EQ(parts[2].size(), 2u);
}

TEST(FftPaperPins, Tp0MemoryMapPutsAllMlOnOneBank) {
  const FftDesign d = build_fft_design();
  const auto bank = paper_memory_map(d, 0);
  const int ml_bank = bank[d.ml[0]];
  for (std::size_t j = 1; j < 4; ++j) EXPECT_EQ(bank[d.ml[j]], ml_bank);
  EXPECT_EQ(bank[d.mo[0]], bank[d.mo[1]]);
  EXPECT_NE(bank[d.mo[0]], ml_bank);
}

TEST(FftPaperPins, BindingsCoverOnlyActiveSegments) {
  const FftDesign d = build_fft_design();
  for (std::size_t tp = 0; tp < 3; ++tp) {
    const core::Binding b = paper_binding(d, tp);
    EXPECT_EQ(b.segment_to_bank.size(), 12u);
    EXPECT_EQ(b.num_banks, 4u);
  }
  EXPECT_THROW(paper_binding(d, 3), rcarb::CheckError);
}

// ------------------------------------------------------------- cost models

TEST(Workload, BlockCount) {
  EXPECT_EQ(ImageWorkload{}.blocks(), 128u * 128u);
  EXPECT_EQ((ImageWorkload{256, 128}).blocks(), 64u * 32u);
}

TEST(Workload, HardwareSecondsScaleWithCyclesAndClock) {
  const ImageWorkload w{};
  const HardwareModel hw{6.0};
  EXPECT_NEAR(hw.seconds(w, 1600), 4.37, 0.05);
  EXPECT_GT(hw.seconds(w, 3200), 2 * hw.seconds(w, 1600) - 0.01);
  const HardwareModel faster{12.0};
  EXPECT_NEAR(faster.seconds(w, 1600), hw.seconds(w, 1600) / 2, 1e-9);
}

TEST(Workload, PentiumModelReproducesPaperBallpark) {
  // The paper measured 6.8 s on the Pentium-150; the calibrated model must
  // stay in that band.
  const PentiumModel cpu;
  EXPECT_NEAR(cpu.seconds(ImageWorkload{}), 6.8, 0.4);
}

TEST(Workload, SwOpCountsAreNaiveDftSized) {
  const SwOpCounts counts = sw_op_counts_per_block();
  EXPECT_EQ(counts.trig_calls, 256u);  // 2 per term, 128 terms
  EXPECT_EQ(counts.fmuls, 512u);
  EXPECT_GT(counts.loop_iters, 128u);
}

}  // namespace
}  // namespace rcarb::fft
