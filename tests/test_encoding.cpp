#include <gtest/gtest.h>

#include <set>

#include "core/rr_fsm.hpp"
#include "support/check.hpp"
#include "synth/encoding.hpp"

namespace rcarb::synth {
namespace {

Fsm three_state_fsm() {
  Fsm fsm("m3");
  const auto s0 = fsm.add_state("s0");
  const auto s1 = fsm.add_state("s1");
  const auto s2 = fsm.add_state("s2");
  fsm.add_input("in");
  fsm.add_transition(s0, logic::Cube::literal(0, true), s1, 0);
  fsm.add_transition(s0, logic::Cube::literal(0, false), s0, 0);
  fsm.add_transition(s1, logic::Cube(), s2, 0);
  fsm.add_transition(s2, logic::Cube(), s0, 0);
  return fsm;
}

TEST(Encoding, OneHotCodes) {
  const StateCodes codes = encode_states(three_state_fsm(), Encoding::kOneHot);
  EXPECT_EQ(codes.num_bits, 3);
  EXPECT_EQ(codes.code[0], 0b001u);
  EXPECT_EQ(codes.code[1], 0b010u);
  EXPECT_EQ(codes.code[2], 0b100u);
}

TEST(Encoding, CompactCodes) {
  const StateCodes codes = encode_states(three_state_fsm(), Encoding::kCompact);
  EXPECT_EQ(codes.num_bits, 2);
  EXPECT_EQ(codes.code[0], 0u);
  EXPECT_EQ(codes.code[1], 1u);
  EXPECT_EQ(codes.code[2], 2u);
}

TEST(Encoding, GrayCodesDifferInOneBit) {
  Fsm fsm("m8");
  for (int i = 0; i < 8; ++i) fsm.add_state("s" + std::to_string(i));
  fsm.add_input("in");
  for (StateId s = 0; s < 8; ++s)
    fsm.add_transition(s, logic::Cube(), (s + 1) % 8, 0);
  const StateCodes codes = encode_states(fsm, Encoding::kGray);
  EXPECT_EQ(codes.num_bits, 3);
  for (std::size_t s = 0; s + 1 < 8; ++s) {
    const std::uint64_t diff = codes.code[s] ^ codes.code[s + 1];
    EXPECT_EQ(__builtin_popcountll(diff), 1)
        << "adjacent gray codes must differ in exactly one bit";
  }
}

TEST(Encoding, CodesAreUniqueAcrossSchemes) {
  for (const Encoding e :
       {Encoding::kOneHot, Encoding::kCompact, Encoding::kGray}) {
    const StateCodes codes = encode_states(three_state_fsm(), e);
    std::set<std::uint64_t> seen(codes.code.begin(), codes.code.end());
    EXPECT_EQ(seen.size(), codes.code.size()) << to_string(e);
  }
}

TEST(Encoding, StateCubeRecognizesExactlyTheState) {
  for (const Encoding e :
       {Encoding::kOneHot, Encoding::kCompact, Encoding::kGray}) {
    const StateCodes codes = encode_states(three_state_fsm(), e);
    for (std::size_t s = 0; s < codes.code.size(); ++s) {
      const logic::Cube cube = codes.state_cube(s, 0);
      for (std::size_t u = 0; u < codes.code.size(); ++u) {
        if (e == Encoding::kOneHot) {
          // One-hot recognizers are single-literal: they accept the state
          // itself and reject every other *valid* code.
          EXPECT_EQ(cube.eval(codes.code[u]), s == u) << to_string(e);
        } else {
          EXPECT_EQ(cube.eval(codes.code[u]), s == u) << to_string(e);
        }
      }
    }
  }
}

TEST(Encoding, OneHotRecognizerIsSingleLiteral) {
  const StateCodes codes = encode_states(three_state_fsm(), Encoding::kOneHot);
  for (std::size_t s = 0; s < 3; ++s)
    EXPECT_EQ(codes.state_cube(s, 0).literal_count(), 1);
}

TEST(Encoding, DenseRecognizerUsesAllBits) {
  const StateCodes codes = encode_states(three_state_fsm(), Encoding::kCompact);
  for (std::size_t s = 0; s < 3; ++s)
    EXPECT_EQ(codes.state_cube(s, 0).literal_count(), codes.num_bits);
}

TEST(Encoding, DecodeRoundTrips) {
  for (const Encoding e :
       {Encoding::kOneHot, Encoding::kCompact, Encoding::kGray}) {
    const StateCodes codes = encode_states(three_state_fsm(), e);
    for (std::size_t s = 0; s < codes.code.size(); ++s)
      EXPECT_EQ(codes.decode(codes.code[s]), s);
    EXPECT_EQ(codes.decode(0b111), StateCodes::npos);
  }
}

TEST(Encoding, StateCubeUsesFirstVarOffset) {
  const StateCodes codes = encode_states(three_state_fsm(), Encoding::kCompact);
  const logic::Cube cube = codes.state_cube(1, 5);
  EXPECT_TRUE(cube.has_var(5));
  EXPECT_TRUE(cube.has_var(6));
  EXPECT_FALSE(cube.has_var(0));
}

TEST(Encoding, SingleStateMachineHasOneBit) {
  Fsm fsm("m1");
  fsm.add_state("only");
  fsm.add_input("in");
  fsm.add_transition(0, logic::Cube(), 0, 0);
  for (const Encoding e : {Encoding::kCompact, Encoding::kGray}) {
    const StateCodes codes = encode_states(fsm, e);
    EXPECT_EQ(codes.num_bits, 1) << to_string(e);
  }
}

TEST(Encoding, ToStringNames) {
  EXPECT_STREQ(to_string(Encoding::kOneHot), "one-hot");
  EXPECT_STREQ(to_string(Encoding::kCompact), "compact");
  EXPECT_STREQ(to_string(Encoding::kGray), "gray");
}

}  // namespace
}  // namespace rcarb::synth
