#include <gtest/gtest.h>

#include "core/policy.hpp"
#include "core/rr_fsm.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace rcarb::core {
namespace {

TEST(RrFsm, StructureMatchesFig5) {
  const synth::Fsm fsm = build_round_robin_fsm(3);
  EXPECT_EQ(fsm.num_states(), 6u);  // F0..F2, C0..C2
  EXPECT_EQ(fsm.num_inputs(), 3);
  EXPECT_EQ(fsm.num_outputs(), 3);
  EXPECT_EQ(fsm.state_name(fsm.reset_state()), "F0");
  // Each state has N+1 transitions (zero case + N scan cases).
  EXPECT_EQ(fsm.transitions().size(), 6u * 4u);
  EXPECT_NO_THROW(fsm.validate());
}

TEST(RrFsm, ValidatesForAllSupportedSizes) {
  for (int n = 2; n <= 20; n += 3)
    EXPECT_NO_THROW(build_round_robin_fsm(n).validate()) << "n=" << n;
  EXPECT_THROW(build_round_robin_fsm(1), CheckError);
  EXPECT_THROW(build_round_robin_fsm(21), CheckError);
}

TEST(RrFsm, GrantIsMealyOnTransitionIntoC) {
  const synth::Fsm fsm = build_round_robin_fsm(2);
  // From F0 with R0: -> C0 with G0.
  const auto r = fsm.step(fsm.reset_state(), 0b01);
  EXPECT_EQ(fsm.state_name(r.next_state), "C0");
  EXPECT_EQ(r.outputs, 0b01u);
  // From F0 with only R1: -> C1 with G1.
  const auto r2 = fsm.step(fsm.reset_state(), 0b10);
  EXPECT_EQ(fsm.state_name(r2.next_state), "C1");
  EXPECT_EQ(r2.outputs, 0b10u);
}

TEST(RrFsm, IdleRetirementRules) {
  const synth::Fsm fsm = build_round_robin_fsm(3);
  // Find C2 and F2 by name.
  synth::StateId c2 = 0, f2 = 0;
  for (synth::StateId s = 0; s < fsm.num_states(); ++s) {
    if (fsm.state_name(s) == "C2") c2 = s;
    if (fsm.state_name(s) == "F2") f2 = s;
  }
  // C2 with no requests -> F0 (wraps); F2 with no requests stays F2.
  EXPECT_EQ(fsm.state_name(fsm.step(c2, 0).next_state), "F0");
  EXPECT_EQ(fsm.step(f2, 0).next_state, f2);
}

class RrFsmEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RrFsmEquivalence, MatchesBehavioralModelOnRandomTraces) {
  const int n = GetParam();
  const synth::Fsm fsm = build_round_robin_fsm(n);
  RoundRobinArbiter beh(n);
  synth::StateId state = fsm.reset_state();
  Rng rng(1000 + static_cast<std::uint64_t>(n));
  for (int cyc = 0; cyc < 3000; ++cyc) {
    const std::uint64_t req = rng.next_below(1ull << n);
    const auto r = fsm.step(state, req);
    const int granted = beh.step(req);
    if (granted < 0) {
      EXPECT_EQ(r.outputs, 0u);
    } else {
      EXPECT_EQ(r.outputs, 1ull << granted) << "n=" << n << " cyc=" << cyc;
    }
    EXPECT_EQ(fsm.state_name(r.next_state), beh.state_name());
    state = r.next_state;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RrFsmEquivalence,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 10, 13, 16, 20));

TEST(RrFsm, ExhaustiveEquivalenceSmallN) {
  // For n=3, check every (state, input) pair, not just random traces.
  const int n = 3;
  const synth::Fsm fsm = build_round_robin_fsm(n);
  for (synth::StateId s = 0; s < fsm.num_states(); ++s) {
    for (std::uint64_t req = 0; req < 8; ++req) {
      // Drive the behavioral model into state s first.
      RoundRobinArbiter beh(n);
      // State s reachable by: grant i then release (Fi+...) — replay from
      // the FSM structure instead: craft the behavioral state by a short
      // driving sequence.
      const std::string name = fsm.state_name(s);
      const int idx = name[1] - '0';
      if (name[0] == 'C') {
        (void)beh.step(1ull << idx);  // grant idx -> C(idx)
      } else if (idx > 0) {
        (void)beh.step(1ull << (idx - 1));  // C(idx-1)
        (void)beh.step(0);                  // retire -> F(idx)
      }
      ASSERT_EQ(beh.state_name(), name);
      const auto r = fsm.step(s, req);
      const int granted = beh.step(req);
      EXPECT_EQ(r.outputs, granted < 0 ? 0ull : (1ull << granted));
      EXPECT_EQ(fsm.state_name(r.next_state), beh.state_name());
    }
  }
}

}  // namespace
}  // namespace rcarb::core
