#include <gtest/gtest.h>

#include "support/check.hpp"
#include "synth/elaborate.hpp"
#include "synth/fsm.hpp"

namespace rcarb::synth {
namespace {

/// A 2-input toggle machine with a Mealy output.
Fsm toggler() {
  Fsm fsm("toggler");
  const auto off = fsm.add_state("off");
  const auto on = fsm.add_state("on");
  fsm.add_input("go");
  fsm.add_output("pulse");
  fsm.add_transition(off, logic::Cube::literal(0, true), on, 0b1);
  fsm.add_transition(off, logic::Cube::literal(0, false), off, 0);
  fsm.add_transition(on, logic::Cube::literal(0, true), off, 0);
  fsm.add_transition(on, logic::Cube::literal(0, false), on, 0);
  return fsm;
}

TEST(Fsm, ValidatesCompleteDeterministicMachine) {
  EXPECT_NO_THROW(toggler().validate());
}

TEST(Fsm, DetectsIncompleteGuards) {
  Fsm fsm("partial");
  const auto s = fsm.add_state("s");
  fsm.add_input("a");
  fsm.add_transition(s, logic::Cube::literal(0, true), s, 0);
  EXPECT_THROW(fsm.validate(), CheckError);
}

TEST(Fsm, DetectsOverlappingGuards) {
  Fsm fsm("overlap");
  const auto s = fsm.add_state("s");
  fsm.add_input("a");
  fsm.add_transition(s, logic::Cube(), s, 0);
  fsm.add_transition(s, logic::Cube::literal(0, true), s, 0);
  EXPECT_THROW(fsm.validate(), CheckError);
}

TEST(Fsm, DetectsDeadStates) {
  Fsm fsm("dead");
  fsm.add_state("s0");
  fsm.add_state("unreachable_but_also_no_out");
  fsm.add_input("a");
  fsm.add_transition(0, logic::Cube(), 0, 0);
  EXPECT_THROW(fsm.validate(), CheckError);
}

TEST(Fsm, StepFollowsGuards) {
  const Fsm fsm = toggler();
  auto r = fsm.step(0, 0b1);
  EXPECT_EQ(r.next_state, 1u);
  EXPECT_EQ(r.outputs, 0b1u);
  r = fsm.step(0, 0);
  EXPECT_EQ(r.next_state, 0u);
  EXPECT_EQ(r.outputs, 0u);
  r = fsm.step(1, 0b1);
  EXPECT_EQ(r.next_state, 0u);
}

TEST(Fsm, ResetStateDefaultsToFirstAdded) {
  const Fsm fsm = toggler();
  EXPECT_EQ(fsm.reset_state(), 0u);
}

TEST(Fsm, SetResetState) {
  Fsm fsm = toggler();
  fsm.set_reset_state(1);
  EXPECT_EQ(fsm.reset_state(), 1u);
  EXPECT_THROW(fsm.set_reset_state(9), CheckError);
}

TEST(Fsm, RejectsBadTransitions) {
  Fsm fsm("bad");
  fsm.add_state("s");
  fsm.add_input("a");
  EXPECT_THROW(fsm.add_transition(5, logic::Cube(), 0, 0), CheckError);
  EXPECT_THROW(fsm.add_transition(0, logic::Cube::literal(3, true), 0, 0),
               CheckError);
  fsm.add_output("o");
  EXPECT_THROW(fsm.add_transition(0, logic::Cube(), 0, 0b10), CheckError);
}

TEST(Elaborate, NextStateCoversMatchStepExhaustively) {
  const Fsm fsm = toggler();
  for (const Encoding e :
       {Encoding::kOneHot, Encoding::kCompact, Encoding::kGray}) {
    const StateCodes codes = encode_states(fsm, e);
    const ElaboratedFsm elab = elaborate(fsm, codes);
    ASSERT_EQ(elab.next_state.size(), static_cast<std::size_t>(codes.num_bits));
    ASSERT_EQ(elab.outputs.size(), 1u);
    for (StateId s = 0; s < fsm.num_states(); ++s) {
      for (std::uint64_t in = 0; in < 2; ++in) {
        const auto want = fsm.step(s, in);
        // Assignment: inputs at [0, I), state bits at [I, I+B).
        const std::uint64_t assignment =
            in | (codes.code[s] << fsm.num_inputs());
        std::uint64_t got_code = 0;
        for (int b = 0; b < codes.num_bits; ++b)
          if (elab.next_state[static_cast<std::size_t>(b)].eval(assignment))
            got_code |= 1ull << b;
        EXPECT_EQ(got_code, codes.code[want.next_state]) << to_string(e);
        EXPECT_EQ(elab.outputs[0].eval(assignment), (want.outputs & 1) != 0)
            << to_string(e);
      }
    }
  }
}

TEST(Elaborate, DcCoverListsUnusedCodes) {
  const Fsm fsm = toggler();  // 2 states
  // Force a 3-state machine so compact leaves unused codes.
  Fsm fsm3("three");
  fsm3.add_state("a");
  fsm3.add_state("b");
  fsm3.add_state("c");
  fsm3.add_input("x");
  for (StateId s = 0; s < 3; ++s)
    fsm3.add_transition(s, logic::Cube(), (s + 1) % 3, 0);
  const StateCodes codes = encode_states(fsm3, Encoding::kCompact);
  const ElaboratedFsm elab = elaborate(fsm3, codes);
  ASSERT_TRUE(elab.dc.has_value());
  EXPECT_EQ(elab.dc->size(), 1u);  // code 3 unused
  // The DC cube matches exactly the unused code.
  const std::uint64_t unused = 3ull << fsm3.num_inputs();
  EXPECT_TRUE(elab.dc->eval(unused));
  for (std::size_t s = 0; s < 3; ++s)
    EXPECT_FALSE(elab.dc->eval(codes.code[s] << fsm3.num_inputs()));
  // One-hot produces no DC cover (single-literal recognizers instead).
  const ElaboratedFsm oh = elaborate(fsm3, encode_states(fsm3, Encoding::kOneHot));
  EXPECT_FALSE(oh.dc.has_value());
  (void)fsm;
}

TEST(Elaborate, ResetCodeMatchesEncoding) {
  Fsm fsm = toggler();
  fsm.set_reset_state(1);
  const StateCodes codes = encode_states(fsm, Encoding::kOneHot);
  const ElaboratedFsm elab = elaborate(fsm, codes);
  EXPECT_EQ(elab.reset_code, codes.code[1]);
}

}  // namespace
}  // namespace rcarb::synth
