#include <gtest/gtest.h>

#include <atomic>

#include "core/generator.hpp"
#include "core/policy.hpp"
#include "support/parallel.hpp"

namespace rcarb::core {
namespace {

TEST(Generator, CharacteristicsArePopulated) {
  const GeneratedArbiter g = generate_round_robin(
      4, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  EXPECT_EQ(g.chars.n, 4);
  EXPECT_GT(g.chars.clbs, 0u);
  EXPECT_GT(g.chars.luts, 0u);
  EXPECT_EQ(g.chars.ffs, 8u);  // one-hot: 2N registers
  EXPECT_GT(g.chars.fmax_mhz, 0.0);
  EXPECT_EQ(g.chars.overhead_cycles, kProtocolOverheadCycles);
  EXPECT_EQ(g.chars.encoding, synth::Encoding::kOneHot);
}

TEST(Generator, SynplifyForcesOneHotEvenWhenCompactRequested) {
  const GeneratedArbiter g = generate_round_robin(
      4, synth::FlowKind::kSynplifyLike, synth::Encoding::kCompact);
  EXPECT_EQ(g.chars.encoding, synth::Encoding::kOneHot);
}

TEST(Generator, CompactUsesFewerRegisters) {
  const GeneratedArbiter oh = generate_round_robin(
      6, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  const GeneratedArbiter cp = generate_round_robin(
      6, synth::FlowKind::kExpressLike, synth::Encoding::kCompact);
  EXPECT_EQ(oh.chars.ffs, 12u);
  EXPECT_EQ(cp.chars.ffs, 4u);  // ceil(log2(12))
}

TEST(Generator, AreaGrowsMonotonicallyWithN) {
  std::size_t prev = 0;
  for (int n = 2; n <= 10; n += 2) {
    const GeneratedArbiter g = generate_round_robin(
        n, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
    EXPECT_GE(g.chars.clbs + 2, prev) << "n=" << n;  // small tolerance
    prev = g.chars.clbs;
  }
}

TEST(Generator, FmaxDecaysWithN) {
  const GeneratedArbiter small = generate_round_robin(
      2, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  const GeneratedArbiter big = generate_round_robin(
      10, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  EXPECT_GT(small.chars.fmax_mhz, big.chars.fmax_mhz);
  // The paper's band: a 10-input arbiter still clocks above a ~6 MHz
  // design clock by a wide margin.
  EXPECT_GT(big.chars.fmax_mhz, 10.0);
}

TEST(Generator, BehavioralModeIsLargerThanStructural) {
  // The ablation the benches report: generic two-level synthesis of the
  // Fig. 5 case statement costs more area than the factored chain.
  const GeneratedArbiter s =
      generate_round_robin(6, synth::FlowKind::kExpressLike,
                           synth::Encoding::kOneHot, timing::xc4000e_speed3(),
                           GeneratorMode::kStructural);
  const GeneratedArbiter b =
      generate_round_robin(6, synth::FlowKind::kExpressLike,
                           synth::Encoding::kOneHot, timing::xc4000e_speed3(),
                           GeneratorMode::kBehavioral);
  EXPECT_LT(s.chars.clbs, b.chars.clbs);
}

TEST(PrecharCache, MemoizesBySize) {
  PrecharCache cache;
  const ArbiterCharacteristics& a = cache.get(4);
  const ArbiterCharacteristics& b = cache.get(4);
  EXPECT_EQ(&a, &b) << "same object must be returned from cache";
  EXPECT_EQ(cache.get(6).n, 6);
}

TEST(PrecharCache, MatchesDirectGeneration) {
  PrecharCache cache(synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  const GeneratedArbiter direct = generate_round_robin(
      5, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  EXPECT_EQ(cache.get(5).clbs, direct.chars.clbs);
  EXPECT_DOUBLE_EQ(cache.get(5).fmax_mhz, direct.chars.fmax_mhz);
}

TEST(Generator, ToStringNames) {
  EXPECT_STREQ(to_string(GeneratorMode::kStructural), "structural");
  EXPECT_STREQ(to_string(GeneratorMode::kBehavioral), "behavioral");
}

TEST(SynthMemo, CachedResultMatchesFreshSynthesis) {
  // The memo must be transparent: every characterization field of a cached
  // arbiter equals a fresh (uncached) run of the same configuration.
  const GeneratedArbiter& cached = generate_round_robin_cached(
      7, synth::FlowKind::kExpressLike, synth::Encoding::kCompact);
  const GeneratedArbiter fresh = generate_round_robin(
      7, synth::FlowKind::kExpressLike, synth::Encoding::kCompact);
  EXPECT_EQ(cached.chars.n, fresh.chars.n);
  EXPECT_EQ(cached.chars.encoding, fresh.chars.encoding);
  EXPECT_EQ(cached.chars.clbs, fresh.chars.clbs);
  EXPECT_EQ(cached.chars.luts, fresh.chars.luts);
  EXPECT_EQ(cached.chars.ffs, fresh.chars.ffs);
  EXPECT_EQ(cached.chars.lut_depth, fresh.chars.lut_depth);
  EXPECT_DOUBLE_EQ(cached.chars.fmax_mhz, fresh.chars.fmax_mhz);
  EXPECT_EQ(cached.chars.aig_ands, fresh.chars.aig_ands);
  EXPECT_EQ(cached.synth.netlist.num_luts(), fresh.synth.netlist.num_luts());
  EXPECT_EQ(cached.synth.netlist.num_dffs(), fresh.synth.netlist.num_dffs());
}

TEST(SynthMemo, SameKeyReturnsSameObjectAndCountsHits) {
  const SynthMemoStats before = synth_memo_stats();
  const GeneratedArbiter& a = generate_round_robin_cached(
      9, synth::FlowKind::kExpressLike, synth::Encoding::kGray);
  const GeneratedArbiter& b = generate_round_robin_cached(
      9, synth::FlowKind::kExpressLike, synth::Encoding::kGray);
  EXPECT_EQ(&a, &b) << "one synthesis per configuration per process";
  const SynthMemoStats after = synth_memo_stats();
  EXPECT_GE(after.hits, before.hits + 1);
  // Exactly-one-miss can't be asserted (another test may have primed the
  // key), but misses never move by more than the one candidate key here.
  EXPECT_LE(after.misses, before.misses + 1);
}

TEST(SynthMemo, SynplifyEncodingRequestsAliasToOneHot) {
  // Synplify-like flows force one-hot, so requesting compact or gray under
  // them must share the one-hot entry instead of synthesizing three times.
  const GeneratedArbiter& oh = generate_round_robin_cached(
      5, synth::FlowKind::kSynplifyLike, synth::Encoding::kOneHot);
  const GeneratedArbiter& cp = generate_round_robin_cached(
      5, synth::FlowKind::kSynplifyLike, synth::Encoding::kCompact);
  const GeneratedArbiter& gr = generate_round_robin_cached(
      5, synth::FlowKind::kSynplifyLike, synth::Encoding::kGray);
  EXPECT_EQ(&oh, &cp);
  EXPECT_EQ(&oh, &gr);
}

TEST(SynthMemo, BehavioralCacheKeyIncludesHardening) {
  const synth::SynthResult& plain = synthesize_round_robin_cached(
      3, synth::Encoding::kOneHot, /*harden=*/false);
  const synth::SynthResult& hard = synthesize_round_robin_cached(
      3, synth::Encoding::kOneHot, /*harden=*/true);
  EXPECT_NE(&plain, &hard);
  // Recovery logic costs area: the hardened netlist is strictly larger.
  EXPECT_GT(hard.netlist.num_luts(), plain.netlist.num_luts());
  EXPECT_EQ(&plain, &synthesize_round_robin_cached(
                        3, synth::Encoding::kOneHot, false));
}

TEST(SynthMemo, ConcurrentRequestsShareOneSynthesis) {
  // Hammer one cold key plus a few warm ones from 4 workers; every caller
  // must observe the same entry address (the mutex + once_flag discipline),
  // and the run must be clean under TSan.
  std::atomic<const GeneratedArbiter*> seen{nullptr};
  std::atomic<int> mismatches{0};
  parallel_for_each(
      16,
      [&](std::size_t i) {
        const GeneratedArbiter& g = generate_round_robin_cached(
            11, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot,
            timing::xc4000e_speed3(),
            i % 2 == 0 ? GeneratorMode::kStructural
                       : GeneratorMode::kBehavioral);
        if (i % 2 == 0) {
          const GeneratedArbiter* expected = nullptr;
          if (!seen.compare_exchange_strong(expected, &g) && expected != &g)
            mismatches.fetch_add(1);
        }
      },
      /*jobs=*/4);
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace rcarb::core
