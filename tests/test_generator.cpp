#include <gtest/gtest.h>

#include "core/generator.hpp"
#include "core/policy.hpp"

namespace rcarb::core {
namespace {

TEST(Generator, CharacteristicsArePopulated) {
  const GeneratedArbiter g = generate_round_robin(
      4, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  EXPECT_EQ(g.chars.n, 4);
  EXPECT_GT(g.chars.clbs, 0u);
  EXPECT_GT(g.chars.luts, 0u);
  EXPECT_EQ(g.chars.ffs, 8u);  // one-hot: 2N registers
  EXPECT_GT(g.chars.fmax_mhz, 0.0);
  EXPECT_EQ(g.chars.overhead_cycles, kProtocolOverheadCycles);
  EXPECT_EQ(g.chars.encoding, synth::Encoding::kOneHot);
}

TEST(Generator, SynplifyForcesOneHotEvenWhenCompactRequested) {
  const GeneratedArbiter g = generate_round_robin(
      4, synth::FlowKind::kSynplifyLike, synth::Encoding::kCompact);
  EXPECT_EQ(g.chars.encoding, synth::Encoding::kOneHot);
}

TEST(Generator, CompactUsesFewerRegisters) {
  const GeneratedArbiter oh = generate_round_robin(
      6, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  const GeneratedArbiter cp = generate_round_robin(
      6, synth::FlowKind::kExpressLike, synth::Encoding::kCompact);
  EXPECT_EQ(oh.chars.ffs, 12u);
  EXPECT_EQ(cp.chars.ffs, 4u);  // ceil(log2(12))
}

TEST(Generator, AreaGrowsMonotonicallyWithN) {
  std::size_t prev = 0;
  for (int n = 2; n <= 10; n += 2) {
    const GeneratedArbiter g = generate_round_robin(
        n, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
    EXPECT_GE(g.chars.clbs + 2, prev) << "n=" << n;  // small tolerance
    prev = g.chars.clbs;
  }
}

TEST(Generator, FmaxDecaysWithN) {
  const GeneratedArbiter small = generate_round_robin(
      2, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  const GeneratedArbiter big = generate_round_robin(
      10, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  EXPECT_GT(small.chars.fmax_mhz, big.chars.fmax_mhz);
  // The paper's band: a 10-input arbiter still clocks above a ~6 MHz
  // design clock by a wide margin.
  EXPECT_GT(big.chars.fmax_mhz, 10.0);
}

TEST(Generator, BehavioralModeIsLargerThanStructural) {
  // The ablation the benches report: generic two-level synthesis of the
  // Fig. 5 case statement costs more area than the factored chain.
  const GeneratedArbiter s =
      generate_round_robin(6, synth::FlowKind::kExpressLike,
                           synth::Encoding::kOneHot, timing::xc4000e_speed3(),
                           GeneratorMode::kStructural);
  const GeneratedArbiter b =
      generate_round_robin(6, synth::FlowKind::kExpressLike,
                           synth::Encoding::kOneHot, timing::xc4000e_speed3(),
                           GeneratorMode::kBehavioral);
  EXPECT_LT(s.chars.clbs, b.chars.clbs);
}

TEST(PrecharCache, MemoizesBySize) {
  PrecharCache cache;
  const ArbiterCharacteristics& a = cache.get(4);
  const ArbiterCharacteristics& b = cache.get(4);
  EXPECT_EQ(&a, &b) << "same object must be returned from cache";
  EXPECT_EQ(cache.get(6).n, 6);
}

TEST(PrecharCache, MatchesDirectGeneration) {
  PrecharCache cache(synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  const GeneratedArbiter direct = generate_round_robin(
      5, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  EXPECT_EQ(cache.get(5).clbs, direct.chars.clbs);
  EXPECT_DOUBLE_EQ(cache.get(5).fmax_mhz, direct.chars.fmax_mhz);
}

TEST(Generator, ToStringNames) {
  EXPECT_STREQ(to_string(GeneratorMode::kStructural), "structural");
  EXPECT_STREQ(to_string(GeneratorMode::kBehavioral), "behavioral");
}

}  // namespace
}  // namespace rcarb::core
