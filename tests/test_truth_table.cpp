#include <gtest/gtest.h>

#include "logic/truth_table.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace rcarb::logic {
namespace {

TEST(TruthTable, ConstantsAndRows) {
  const TruthTable f = TruthTable::constant(3, false);
  const TruthTable t = TruthTable::constant(3, true);
  EXPECT_EQ(f.num_rows(), 8u);
  for (std::uint64_t r = 0; r < 8; ++r) {
    EXPECT_FALSE(f.get(r));
    EXPECT_TRUE(t.get(r));
  }
  EXPECT_TRUE(f.is_constant());
  EXPECT_FALSE(f.constant_value());
  EXPECT_TRUE(t.constant_value());
}

TEST(TruthTable, VariableProjection) {
  const TruthTable v1 = TruthTable::variable(3, 1);
  for (std::uint64_t r = 0; r < 8; ++r)
    EXPECT_EQ(v1.get(r), ((r >> 1) & 1) != 0);
}

TEST(TruthTable, OperatorsMatchBitwiseSemantics) {
  const TruthTable a = TruthTable::variable(2, 0);
  const TruthTable b = TruthTable::variable(2, 1);
  const TruthTable and_ = a & b;
  const TruthTable or_ = a | b;
  const TruthTable xor_ = a ^ b;
  const TruthTable not_a = ~a;
  for (std::uint64_t r = 0; r < 4; ++r) {
    const bool av = (r >> 0) & 1, bv = (r >> 1) & 1;
    EXPECT_EQ(and_.get(r), av && bv);
    EXPECT_EQ(or_.get(r), av || bv);
    EXPECT_EQ(xor_.get(r), av != bv);
    EXPECT_EQ(not_a.get(r), !av);
  }
}

TEST(TruthTable, NotIsInvolutionEvenWithPartialLastWord) {
  // 3 vars -> 8 rows, well under one word: masking of the tail matters.
  const TruthTable v = TruthTable::variable(3, 2);
  EXPECT_EQ(~~v, v);
}

TEST(TruthTable, SupportAndDependsOn) {
  const TruthTable a = TruthTable::variable(4, 0);
  const TruthTable c = TruthTable::variable(4, 2);
  const TruthTable f = a ^ c;
  EXPECT_TRUE(f.depends_on(0));
  EXPECT_FALSE(f.depends_on(1));
  EXPECT_TRUE(f.depends_on(2));
  EXPECT_FALSE(f.depends_on(3));
  EXPECT_EQ(f.support(), (std::vector<int>{0, 2}));
}

TEST(TruthTable, FromCoverMatchesEval) {
  Rng rng(53);
  for (int trial = 0; trial < 100; ++trial) {
    const int nvars = 1 + static_cast<int>(rng.next_below(6));
    Cover f(nvars);
    for (int i = 0; i < 4; ++i) {
      const std::uint64_t mask = rng.next_below(1ull << nvars);
      f.add(Cube(mask, rng.next_below(1ull << nvars) & mask));
    }
    const TruthTable tt = TruthTable::from_cover(f);
    for (std::uint64_t r = 0; r < tt.num_rows(); ++r)
      EXPECT_EQ(tt.get(r), f.eval(r));
  }
}

TEST(TruthTable, Lut4Mask) {
  // AND of two variables: rows 3 only (of 4) -> mask 0b1000.
  const TruthTable a = TruthTable::variable(2, 0);
  const TruthTable b = TruthTable::variable(2, 1);
  EXPECT_EQ((a & b).lut4_mask(), 0b1000);
  EXPECT_EQ((a | b).lut4_mask(), 0b1110);
}

TEST(TruthTable, ToHex) {
  const TruthTable a = TruthTable::variable(3, 0);
  EXPECT_EQ(a.to_hex(), "aa");
}

TEST(TruthTable, RejectsBadUsage) {
  EXPECT_THROW(TruthTable(21), CheckError);
  EXPECT_THROW(TruthTable::variable(3, 3), CheckError);
  const TruthTable a = TruthTable::variable(5, 0);
  EXPECT_THROW((void)a.lut4_mask(), CheckError);
  EXPECT_THROW((void)a.get(32), CheckError);
  const TruthTable b = TruthTable::variable(4, 0);
  EXPECT_THROW((void)(a & b), CheckError);
  EXPECT_THROW((void)a.constant_value(), CheckError);
}

}  // namespace
}  // namespace rcarb::logic
