// End-to-end property test: for ANY task graph and ANY binding, running
// the arbiter-insertion pass and then the cycle simulator must produce an
// execution with zero bank conflicts, zero channel conflicts and zero
// protocol violations — the paper's "ensure proper execution of the
// design" guarantee.  Random graphs exercise the corner cases no
// hand-written scenario covers: deep loops, mixed shared/private segments,
// merged channels, elision components, every policy.
#include <gtest/gtest.h>

#include "core/insertion.hpp"
#include "rcsim/system_sim.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace rcarb {
namespace {

struct FuzzCase {
  tg::TaskGraph graph{"fuzz"};
  core::Binding binding;
  std::vector<tg::TaskId> tasks;
};

/// Builds a random but well-formed design:
///  * acyclic control deps (edges only from lower to higher task id);
///  * channels only from lower to higher id (no receive cycles), with the
///    producer sending exactly as many values as the consumer receives;
///  * each task writes only into its own window of any shared segment, so
///    executions are race-free by construction (the arbiter's job is
///    ordering, not value arbitration).
FuzzCase make_case(Rng& rng) {
  FuzzCase fc;
  const int num_tasks = 3 + static_cast<int>(rng.next_below(6));
  const int num_segments = 2 + static_cast<int>(rng.next_below(5));
  const std::size_t window = 8;  // words per task per segment

  for (int s = 0; s < num_segments; ++s)
    fc.graph.add_segment("s" + std::to_string(s), 1024,
                         window * static_cast<std::size_t>(num_tasks));

  // Channel plan first (so programs can match send/recv counts).
  struct Chan {
    int id;
    tg::TaskId src, dst;
    int messages;
  };
  std::vector<Chan> chans;
  std::vector<std::vector<int>> sends_of(static_cast<std::size_t>(num_tasks));
  std::vector<std::vector<int>> recvs_of(static_cast<std::size_t>(num_tasks));
  // Control deps decided up front (channels must know who is serialized).
  std::vector<std::pair<int, int>> deps;
  for (int a = 0; a < num_tasks; ++a)
    for (int b = a + 1; b < num_tasks; ++b)
      if (rng.chance(1, 5)) deps.emplace_back(a, b);

  // Programs: a random mix of ops.
  for (int t = 0; t < num_tasks; ++t) {
    tg::Program p;
    p.load_imm(0, 0);
    const int items = 3 + static_cast<int>(rng.next_below(10));
    for (int i = 0; i < items; ++i) {
      switch (rng.next_below(6)) {
        case 0: {  // store into own window
          const int seg = static_cast<int>(rng.next_below(
              static_cast<std::uint64_t>(num_segments)));
          const auto off = static_cast<std::int64_t>(
              window * static_cast<std::size_t>(t) + rng.next_below(window));
          p.load_imm(1, static_cast<std::int64_t>(rng.next_below(100)));
          p.store(seg, 0, 1, off);
          break;
        }
        case 1: {  // load from anywhere
          const int seg = static_cast<int>(rng.next_below(
              static_cast<std::uint64_t>(num_segments)));
          const auto off = static_cast<std::int64_t>(rng.next_below(
              window * static_cast<std::size_t>(num_tasks)));
          p.load(2, seg, 0, off);
          break;
        }
        case 2:
          p.compute(static_cast<std::int64_t>(rng.next_below(14)));
          break;
        case 3:
          p.add_imm(3, 3, 1);
          break;
        case 4: {  // fixed loop with a store body
          const int seg = static_cast<int>(rng.next_below(
              static_cast<std::uint64_t>(num_segments)));
          const auto off = static_cast<std::int64_t>(
              window * static_cast<std::size_t>(t));
          p.loop_begin(static_cast<std::int64_t>(1 + rng.next_below(4)));
          p.store(seg, 0, 3, off);
          p.loop_end();
          break;
        }
        case 5: {  // var loop over a small register value
          p.load_imm(4, static_cast<std::int64_t>(rng.next_below(4)));
          p.loop_begin_var(4);
          p.add_imm(3, 3, 1);
          p.loop_end();
          break;
        }
      }
    }
    p.halt();
    fc.graph.add_task("t" + std::to_string(t), p, 10);
  }
  for (const auto& [a, b] : deps)
    fc.graph.add_control_dep(static_cast<tg::TaskId>(a),
                             static_cast<tg::TaskId>(b));

  // Channels: lower -> higher id only.
  const int num_chans = static_cast<int>(rng.next_below(4));
  for (int c = 0; c < num_chans && num_tasks >= 2; ++c) {
    const auto src = static_cast<tg::TaskId>(
        rng.next_below(static_cast<std::uint64_t>(num_tasks - 1)));
    const auto dst = src + 1 +
                     rng.next_below(static_cast<std::uint64_t>(
                         num_tasks - 1 - static_cast<int>(src)));
    const int id = static_cast<int>(
        fc.graph.add_channel("c" + std::to_string(c), 8, src, dst));
    // One message per channel: with 1-deep receiver registers, multi-
    // message streams interact with recv ordering and control dependences
    // in ways that can deadlock *by design* (the generator would have to
    // solve a scheduling problem to stay safe).  Single transfers match
    // the Table 1 usage; streaming is exercised by the dedicated rcsim
    // tests and the virtual-wires bench.
    const int messages = 1;
    chans.push_back({id, src, dst, messages});
    for (int m = 0; m < messages; ++m) {
      sends_of[src].push_back(id);
      recvs_of[dst].push_back(id);
    }
  }
  // Append the channel traffic to the programs (sends before halt).
  for (int t = 0; t < num_tasks; ++t) {
    if (sends_of[static_cast<std::size_t>(t)].empty() &&
        recvs_of[static_cast<std::size_t>(t)].empty())
      continue;
    tg::Program p = fc.graph.task(static_cast<tg::TaskId>(t)).program;
    tg::Program out;
    for (const tg::Op& op : p.ops()) {
      if (op.code == tg::OpCode::kHalt) break;
      out.append(op);
    }
    for (int ch : recvs_of[static_cast<std::size_t>(t)]) out.recv(5, ch);
    for (int ch : sends_of[static_cast<std::size_t>(t)]) {
      out.load_imm(6, 7);
      out.send(ch, 6);
    }
    out.halt();
    fc.graph.task(static_cast<tg::TaskId>(t)).program = out;
  }

  fc.graph.validate();

  // Random binding onto a 4-PE / 4-bank board shape.
  fc.binding.task_to_pe.resize(static_cast<std::size_t>(num_tasks));
  for (auto& pe : fc.binding.task_to_pe)
    pe = static_cast<int>(rng.next_below(4));
  fc.binding.segment_to_bank.resize(static_cast<std::size_t>(num_segments));
  const int num_banks = 1 + static_cast<int>(rng.next_below(4));
  for (auto& bank : fc.binding.segment_to_bank)
    bank = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(num_banks)));
  fc.binding.num_banks = static_cast<std::size_t>(num_banks);
  for (int b = 0; b < num_banks; ++b)
    fc.binding.bank_names.push_back("B" + std::to_string(b));
  const int num_phys = fc.graph.num_channels() == 0
                           ? 0
                           : 1 + static_cast<int>(rng.next_below(2));
  fc.binding.channel_to_phys.resize(fc.graph.num_channels());
  for (auto& phys : fc.binding.channel_to_phys)
    phys = static_cast<int>(rng.next_below(
               static_cast<std::uint64_t>(num_phys + 1))) -
           1;  // -1 = direct
  fc.binding.num_phys_channels = static_cast<std::size_t>(num_phys);
  for (int p = 0; p < num_phys; ++p)
    fc.binding.phys_channel_names.push_back("P" + std::to_string(p));

  for (int t = 0; t < num_tasks; ++t)
    fc.tasks.push_back(static_cast<tg::TaskId>(t));
  return fc;
}

class FlowFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowFuzz, ArbitratedExecutionIsAlwaysClean) {
  // The heaviest sweep of the suite: 8 full insertion+simulation cases per
  // seed.  Cases run on the parallel engine, each built from a seed
  // derived from (test seed, iteration) — never from one Rng threaded
  // through the loop — so the generated cases are identical at any
  // RCARB_JOBS.  All gtest assertions happen in the ordered reducer on
  // this thread (gtest failure recording is not thread-safe).
  struct CaseOut {
    rcsim::SimResult result;
    std::size_t num_tasks = 0;
    bool threw = false;
    std::string what;
  };
  ordered_map_reduce<CaseOut>(
      8,
      [&](std::size_t iteration) {
        Rng rng(derive_seed(GetParam(), iteration));
        FuzzCase fc = make_case(rng);

        core::InsertionOptions io;
        io.batch_m = 1 + static_cast<int>(rng.next_below(4));
        io.elide_serialized = rng.chance(1, 2);
        io.policy = static_cast<core::Policy>(rng.next_below(4));
        const auto ins = core::insert_arbitration(fc.graph, fc.binding, io);

        rcsim::SimOptions so;
        so.strict = true;  // any conflict or violation throws
        so.rr_max_hold = rng.chance(1, 3) ? 4 : 0;
        rcsim::SystemSimulator sim(ins.graph, fc.binding, ins.plan, so);
        CaseOut out;
        out.num_tasks = fc.tasks.size();
        try {
          out.result = sim.run(fc.tasks);
        } catch (const std::exception& e) {
          out.threw = true;
          out.what = e.what();
        }
        return out;
      },
      [&](std::size_t iteration, CaseOut out) {
        ASSERT_FALSE(out.threw)
            << "seed=" << GetParam() << " iteration=" << iteration << ": "
            << out.what;
        EXPECT_EQ(out.result.bank_conflicts, 0u);
        EXPECT_EQ(out.result.channel_conflicts, 0u);
        EXPECT_EQ(out.result.protocol_violations, 0u);
        for (std::size_t t = 0; t < out.num_tasks; ++t)
          EXPECT_TRUE(out.result.tasks[t].ran);
      });
}

TEST_P(FlowFuzz, UnarbitratedContendedExecutionIsDetected) {
  // The dual property: if the plan is dropped but real contention exists,
  // the simulator's detector must notice (silence would mean the detector
  // — and therefore the clean runs above — proves nothing).
  int detected = 0, contended = 0;
  struct CaseOut {
    bool contended = false;
    bool detected = false;
  };
  ordered_map_reduce<CaseOut>(
      8,
      [&](std::size_t iteration) {
        Rng rng(derive_seed(GetParam() ^ 0xabcdef, iteration));
        FuzzCase fc = make_case(rng);
        const auto ins = core::insert_arbitration(fc.graph, fc.binding, {});
        CaseOut out;
        if (ins.plan.arbiters.empty()) return out;  // no contention built
        out.contended = true;
        core::ArbitrationPlan empty;
        empty.arbiters_of_resource.assign(fc.binding.num_resources(), {});
        rcsim::SimOptions so;
        so.strict = false;
        rcsim::SystemSimulator sim(fc.graph, fc.binding, empty, so);
        const auto result = sim.run(fc.tasks);
        out.detected =
            result.bank_conflicts + result.channel_conflicts > 0;
        return out;
      },
      [&](std::size_t, CaseOut out) {
        contended += out.contended ? 1 : 0;
        detected += out.detected ? 1 : 0;
      });
  if (contended > 2) {
    EXPECT_GT(detected, 0) << "seed=" << GetParam();
  }
}

TEST_P(FlowFuzz, SimulationIsDeterministic) {
  Rng rng(GetParam() ^ 0x5eed);
  FuzzCase fc = make_case(rng);
  const auto ins = core::insert_arbitration(fc.graph, fc.binding, {});
  rcsim::SystemSimulator sim1(ins.graph, fc.binding, ins.plan);
  rcsim::SystemSimulator sim2(ins.graph, fc.binding, ins.plan);
  const auto r1 = sim1.run(fc.tasks);
  const auto r2 = sim2.run(fc.tasks);
  EXPECT_EQ(r1.cycles, r2.cycles);
  for (tg::SegmentId s = 0; s < fc.graph.num_segments(); ++s)
    EXPECT_EQ(sim1.segment_data(s), sim2.segment_data(s));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           144, 233));

}  // namespace
}  // namespace rcarb
