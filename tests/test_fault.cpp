// Fault injection & resilience: the planner, the hardened behavioral and
// synthesized arbiters, watchdog recovery, protocol retry, channel ECC and
// the simulator's wait-for-graph stall attribution.
#include <gtest/gtest.h>

#include <bit>

#include "core/insertion.hpp"
#include "core/policy.hpp"
#include "core/rr_fsm.hpp"
#include "fault/fault.hpp"
#include "netlist/simulator.hpp"
#include "rcsim/system_sim.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "synth/flow.hpp"

namespace rcarb {
namespace {

using core::Binding;
using core::InsertionOptions;
using core::InsertionResult;
using core::RoundRobinArbiter;
using core::RoundRobinOptions;
using rcsim::DiagKind;
using rcsim::SimOptions;
using rcsim::SimResult;
using rcsim::SystemSimulator;
using tg::Program;
using tg::TaskGraph;
using tg::TaskId;

// ------------------------------------------------------------- fault planner

TEST(FaultPlan, DeterministicFromSeed) {
  fault::FaultTargets targets;
  targets.arbiter_ports = {3, 4};
  targets.arbiter_state_bits = {6, 8};
  targets.num_phys_channels = 2;
  fault::FaultPlanOptions options;
  options.seed = 7;
  options.rate = 2e-3;
  const auto a = fault::plan_faults(targets, options);
  const auto b = fault::plan_faults(targets, options);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.size(), 40u);  // round(rate * horizon)
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cycle, b[i].cycle);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].arbiter, b[i].arbiter);
    EXPECT_EQ(a[i].port, b[i].port);
    EXPECT_EQ(a[i].bit, b[i].bit);
    EXPECT_EQ(a[i].channel, b[i].channel);
    EXPECT_EQ(a[i].xor_mask, b[i].xor_mask);
    if (i > 0) {
      EXPECT_GE(a[i].cycle, a[i - 1].cycle) << "must be cycle-sorted";
    }
  }
  options.seed = 8;
  const auto c = fault::plan_faults(targets, options);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = c[i].cycle != a[i].cycle || c[i].kind != a[i].kind;
  EXPECT_TRUE(differs) << "different seeds must give different schedules";
}

TEST(FaultPlan, FiltersKindsByTargetShape) {
  fault::FaultTargets channels_only;
  channels_only.num_phys_channels = 1;
  fault::FaultPlanOptions options;
  options.rate = 1e-2;
  for (const auto& e : fault::plan_faults(channels_only, options)) {
    EXPECT_EQ(e.kind, fault::FaultKind::kChannelCorrupt);
    EXPECT_EQ(std::popcount(e.xor_mask), 1) << "channel SEUs are single-bit";
  }
  fault::FaultTargets nothing;
  EXPECT_TRUE(fault::plan_faults(nothing, options).empty());
}

// ------------------------------------------------- behavioral SEU semantics

TEST(FaultArbiter, HardenedRecoversWithinOneCycle) {
  RoundRobinArbiter arb(4, RoundRobinOptions{0, true});
  (void)arb.step(0b0100);  // -> C2
  ASSERT_EQ(arb.state_name(), "C2");
  arb.inject_bit_flip(0);  // F0 also hot: two-hot illegal
  EXPECT_FALSE(arb.state_legal());
  const int g = arb.step(0b0010);
  EXPECT_TRUE(arb.state_legal()) << "recovery must complete within one cycle";
  EXPECT_EQ(arb.recoveries(), 1u);
  EXPECT_EQ(g, 1) << "arbitration resumes from the safe all-free state";
  EXPECT_EQ(arb.state_name(), "C1");
}

TEST(FaultArbiter, UnhardenedZeroHotIsDead) {
  RoundRobinArbiter arb(3);
  arb.inject_bit_flip(0);  // reset state F0 cleared: zero-hot
  EXPECT_FALSE(arb.state_legal());
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(arb.step(0b111), -1) << "no recognizer fires in a dead machine";
  EXPECT_FALSE(arb.state_legal());
  EXPECT_EQ(arb.recoveries(), 0u);
}

TEST(FaultArbiter, UnhardenedMultiHotViolatesMutualExclusion) {
  RoundRobinArbiter arb(3);
  arb.inject_bit_flip(1);  // F0 and F1 both hot
  EXPECT_FALSE(arb.state_legal());
  (void)arb.step(0b011);  // F0 grants 0, F1 grants 1 — both fire
  EXPECT_EQ(arb.last_grant_mask(), 0b011u);
  EXPECT_EQ(std::popcount(arb.last_grant_mask()), 2);
}

TEST(FaultArbiter, UnhardenedMultiHotCanReconverge) {
  // When every hot state's scan picks the same winner the register
  // collapses back to one-hot on its own.
  RoundRobinArbiter arb(3);
  arb.inject_bit_flip(1);
  (void)arb.step(0b100);  // all hot states grant 2 -> C2 only
  EXPECT_TRUE(arb.state_legal());
  EXPECT_EQ(arb.state_name(), "C2");
}

// --------------------------------------------- synthesized netlist SEU path

/// State-register nets resolved once per netlist (simulation loops must not
/// hash net names per cycle).
std::vector<netlist::NetId> state_nets(const netlist::Netlist& nl,
                                       std::size_t bits) {
  std::vector<netlist::NetId> nets;
  for (std::size_t b = 0; b < bits; ++b)
    nets.push_back(*nl.find_net("state" + std::to_string(b)));
  return nets;
}

int hot_state_bits(const netlist::Simulator& sim,
                   const std::vector<netlist::NetId>& state) {
  int hot = 0;
  for (const netlist::NetId net : state)
    if (sim.get(net)) ++hot;
  return hot;
}

TEST(FaultNetlist, HardenedOneHotRecoversFromSeuInOneCycle) {
  const synth::Fsm fsm = core::build_round_robin_fsm(3);
  synth::FlowOptions fo;
  fo.encoding = synth::Encoding::kOneHot;
  fo.harden = true;
  const auto res = synth::synthesize_fsm(fsm, fo);
  netlist::Simulator sim(res.netlist);
  const std::size_t bits = fsm.num_states();
  const std::vector<netlist::NetId> state = state_nets(res.netlist, bits);
  for (int i = 0; i < 3; ++i) sim.set_input("req" + std::to_string(i), false);
  sim.settle();
  ASSERT_EQ(hot_state_bits(sim, state), 1);

  // SEU #1: a second bit goes hot (two-hot).  No grant may fire from the
  // illegal state, and one clock returns the register to the reset code.
  sim.poke_register(state[1], true);
  ASSERT_EQ(hot_state_bits(sim, state), 2);
  for (int i = 0; i < 3; ++i)
    EXPECT_FALSE(sim.get("grant" + std::to_string(i)))
        << "full-code recognizers must not fire from an illegal state";
  sim.clock();
  EXPECT_EQ(hot_state_bits(sim, state), 1) << "recovery within one cycle";
  EXPECT_TRUE(sim.get(state[0])) << "recovery lands on the reset state F0";

  // SEU #2: the hot bit clears (zero-hot).
  for (std::size_t b = 0; b < bits; ++b)
    sim.poke_register(state[b], false);
  ASSERT_EQ(hot_state_bits(sim, state), 0);
  sim.clock();
  EXPECT_EQ(hot_state_bits(sim, state), 1);
  EXPECT_TRUE(sim.get(state[0]));

  // The machine still arbitrates correctly after both upsets.
  sim.set_input("req2", true);
  sim.settle();
  EXPECT_TRUE(sim.get("grant2"));
}

TEST(FaultNetlist, UnhardenedOneHotStaysBrokenAfterSeu) {
  const synth::Fsm fsm = core::build_round_robin_fsm(3);
  synth::FlowOptions fo;
  fo.encoding = synth::Encoding::kOneHot;
  fo.harden = false;
  const auto res = synth::synthesize_fsm(fsm, fo);
  netlist::Simulator sim(res.netlist);
  const std::size_t bits = fsm.num_states();
  const std::vector<netlist::NetId> state = state_nets(res.netlist, bits);

  // Zero-hot: the machine is dead — no grants, ever.
  sim.set_input("req0", true);
  sim.set_input("req1", true);
  sim.set_input("req2", false);
  sim.poke_register(state[0], false);
  for (int cyc = 0; cyc < 5; ++cyc) {
    EXPECT_EQ(hot_state_bits(sim, state), 0);
    for (int i = 0; i < 3; ++i)
      EXPECT_FALSE(sim.get("grant" + std::to_string(i)));
    sim.clock();
  }

  // Two-hot (F0 and F1): both single-literal recognizers fire and two
  // grants assert at once — the detectable mutual-exclusion violation.
  sim.poke_register(state[0], true);
  sim.poke_register(state[1], true);
  EXPECT_TRUE(sim.get("grant0"));
  EXPECT_TRUE(sim.get("grant1"));
}

// -------------------------------------- Sec. 4.1 starvation bound (property)

TEST(FaultProperty, RoundRobinWaitBoundedByNMinusOneGrantedBursts) {
  // Sec. 4.1: between a request and its grant, at most N-1 other granted
  // bursts can pass (the cyclic scan reaches every requester once per lap).
  for (int n : {2, 3, 4, 6, 8}) {
    RoundRobinArbiter arb(n);
    Rng rng(4242 + static_cast<std::uint64_t>(n));
    std::vector<int> hold_left(static_cast<std::size_t>(n), 0);
    std::vector<int> cooldown(static_cast<std::size_t>(n), 0);
    std::vector<bool> waiting(static_cast<std::size_t>(n), true);
    std::vector<std::uint64_t> grants_at_request(static_cast<std::size_t>(n),
                                                 0);
    std::uint64_t grant_events = 0;
    int prev = -1;
    for (int cyc = 0; cyc < 20000; ++cyc) {
      std::uint64_t req = 0;
      for (int i = 0; i < n; ++i)
        if (waiting[static_cast<std::size_t>(i)] ||
            hold_left[static_cast<std::size_t>(i)] > 0)
          req |= 1ull << i;
      const int g = arb.step(req);
      if (g >= 0 && g != prev) {
        ++grant_events;
        const auto gi = static_cast<std::size_t>(g);
        if (waiting[gi]) {
          ASSERT_LE(grant_events - 1 - grants_at_request[gi],
                    static_cast<std::uint64_t>(n - 1))
              << "n=" << n << " cyc=" << cyc << " port=" << g;
          waiting[gi] = false;
          hold_left[gi] = 1 + static_cast<int>(rng.next_below(4));
        }
      }
      prev = g;
      for (int i = 0; i < n; ++i) {
        const auto ii = static_cast<std::size_t>(i);
        if (hold_left[ii] > 0) {
          if (g == i && --hold_left[ii] == 0)
            cooldown[ii] = 1 + static_cast<int>(rng.next_below(3));
        } else if (!waiting[ii] && cooldown[ii] > 0 && --cooldown[ii] == 0) {
          waiting[ii] = true;
          grants_at_request[ii] = grant_events;
        }
      }
    }
  }
}

// ------------------------------------------------------ system-level faults

/// Two tasks hammering segments bound to one bank (from test_rcsim).
struct ContentionFixture {
  TaskGraph g{"contend"};
  Binding binding;

  explicit ContentionFixture(int accesses) {
    g.add_segment("s0", 64, 16);
    g.add_segment("s1", 64, 16);
    for (int t = 0; t < 2; ++t) {
      Program p;
      p.load_imm(0, 0);
      for (int i = 0; i < accesses; ++i) p.store(t, 0, 0, i % 16);
      p.halt();
      g.add_task("t" + std::to_string(t), p, 1);
    }
    binding.task_to_pe.assign(2, 0);
    binding.segment_to_bank.assign(g.num_segments(), 0);
    binding.channel_to_phys.assign(g.num_channels(), -1);
    binding.num_banks = 1;
    binding.bank_names = {"BANK"};
  }
};

TEST(FaultSim, SeuDeadlocksUnhardenedButHardenedRecovers) {
  ContentionFixture fx(6);
  const InsertionResult ins = core::insert_arbitration(fx.g, fx.binding, {});
  fault::FaultEvent seu;
  seu.kind = fault::FaultKind::kFsmBitFlip;
  seu.cycle = 0;
  seu.arbiter = 0;
  seu.bit = 0;  // clears F0 at reset: zero-hot, machine dead

  SimOptions soft;
  soft.strict = false;
  soft.harden = false;
  soft.no_progress_window = 500;
  soft.faults = {seu};
  SystemSimulator sim_soft(ins.graph, fx.binding, ins.plan, soft);
  const SimResult r_soft = sim_soft.run({0, 1});
  EXPECT_TRUE(r_soft.deadlocked);
  EXPECT_EQ(r_soft.illegal_fsm_states, 1u);
  EXPECT_EQ(r_soft.count(DiagKind::kIllegalFsmState), 1u);
  EXPECT_GE(r_soft.count(DiagKind::kNoProgress) +
                r_soft.count(DiagKind::kDeadlock),
            1u)
      << "the stall must be attributed, never a silent hang";

  SimOptions hard = soft;
  hard.harden = true;
  SystemSimulator sim_hard(ins.graph, fx.binding, ins.plan, hard);
  const SimResult r_hard = sim_hard.run({0, 1});
  EXPECT_FALSE(r_hard.deadlocked);
  EXPECT_GE(r_hard.fsm_recoveries, 1u);
  EXPECT_GE(r_hard.count(DiagKind::kFsmRecovery), 1u);
  EXPECT_EQ(r_hard.bank_conflicts, 0u);
  EXPECT_TRUE(r_hard.tasks[0].ran && r_hard.tasks[1].ran);
}

TEST(FaultSim, WatchdogDetectsAndHardenedReleasesHungGrant) {
  ContentionFixture fx(8);
  const InsertionResult ins = core::insert_arbitration(fx.g, fx.binding, {});
  // The holder's grant line reads 0 for a long window: the task stalls
  // holding the arbiter's grant while its peer waits behind it.
  fault::FaultEvent stuck;
  stuck.kind = fault::FaultKind::kGrantStuck0;
  stuck.cycle = 2;
  stuck.arbiter = 0;
  stuck.port = 0;
  stuck.duration = 300;

  SimOptions soft;
  soft.strict = false;
  soft.watchdog_timeout = 16;
  soft.faults = {stuck};
  SystemSimulator sim_soft(ins.graph, fx.binding, ins.plan, soft);
  const SimResult r_soft = sim_soft.run({0, 1});
  EXPECT_GE(r_soft.hung_grants, 1u);
  EXPECT_GE(r_soft.count(DiagKind::kHungGrant), 1u);
  EXPECT_EQ(r_soft.watchdog_releases, 0u) << "detection only when unhardened";
  EXPECT_FALSE(r_soft.deadlocked) << "the stuck window ends, the run finishes";

  SimOptions hard = soft;
  hard.harden = true;
  SystemSimulator sim_hard(ins.graph, fx.binding, ins.plan, hard);
  const SimResult r_hard = sim_hard.run({0, 1});
  EXPECT_GE(r_hard.watchdog_releases, 1u);
  EXPECT_GE(r_hard.count(DiagKind::kWatchdogRecovery), 1u);
  EXPECT_FALSE(r_hard.deadlocked);
  // Force-release lets the waiting peer finish well before the window ends.
  EXPECT_LT(r_hard.tasks[1].finish_cycle, r_soft.tasks[1].finish_cycle);
}

TEST(FaultSim, RetryRecoversFromStuckRequestLine) {
  ContentionFixture fx(8);
  InsertionOptions io;
  io.retry_timeout = 6;
  io.retry_backoff_limit = 16;
  const InsertionResult ins = core::insert_arbitration(fx.g, fx.binding, io);
  EXPECT_EQ(ins.plan.retry_timeout, 6);
  // A phantom requester (req stuck at 1 on port 0's line while that task is
  // between bursts) pins the grant; port 1's task must retry through it.
  fault::FaultEvent stuck;
  stuck.kind = fault::FaultKind::kReqStuck1;
  stuck.cycle = 1;
  stuck.arbiter = 0;
  stuck.port = 0;
  stuck.duration = 60;

  SimOptions options;
  options.strict = false;
  options.watchdog_timeout = 8;
  options.faults = {stuck};
  SystemSimulator sim(ins.graph, fx.binding, ins.plan, options);
  const SimResult r = sim.run({0, 1});
  EXPECT_FALSE(r.deadlocked);
  EXPECT_GT(r.retries, 0u) << "grantless waits past the timeout must retry";
  EXPECT_EQ(r.bank_conflicts, 0u);
  EXPECT_EQ(r.protocol_violations, 0u);
}

TEST(FaultSim, ChannelCorruptionCorrectedOnlyWhenHardened) {
  TaskGraph g("ecc");
  Program snd;
  snd.load_imm(0, 10).send(0, 0).halt();
  Program rcv;
  rcv.recv(1, 0).load_imm(0, 0).store(0, 0, 1).halt();
  const TaskId s = g.add_task("s", snd, 1);
  const TaskId r = g.add_task("r", rcv, 1);
  g.add_channel("c", 32, s, r);
  g.add_segment("out", 64, 16);
  Binding b;
  b.task_to_pe.assign(2, 0);
  b.segment_to_bank.assign(g.num_segments(), 0);
  b.channel_to_phys = {0};
  b.num_banks = 1;
  b.bank_names = {"BANK"};
  b.num_phys_channels = 1;
  b.phys_channel_names = {"CH"};
  core::ArbitrationPlan plan;
  plan.arbiters_of_resource.assign(b.num_resources(), {});

  fault::FaultEvent seu;
  seu.kind = fault::FaultKind::kChannelCorrupt;
  seu.cycle = 0;
  seu.channel = 0;
  seu.xor_mask = 1ull << 3;

  SimOptions soft;
  soft.strict = false;
  soft.faults = {seu};
  SystemSimulator sim_soft(g, b, plan, soft);
  sim_soft.write_segment(0, {});
  const SimResult r_soft = sim_soft.run({s, r});
  EXPECT_EQ(r_soft.corrupted_words, 1u);
  EXPECT_EQ(r_soft.corrected_words, 0u);
  EXPECT_EQ(r_soft.count(DiagKind::kDataCorruption), 1u);
  EXPECT_EQ(sim_soft.segment_data(0)[0], 10 ^ 8)
      << "parity detects but cannot repair without ECC";

  SimOptions hard = soft;
  hard.harden = true;
  SystemSimulator sim_hard(g, b, plan, hard);
  const SimResult r_hard = sim_hard.run({s, r});
  EXPECT_EQ(r_hard.corrupted_words, 0u);
  EXPECT_EQ(r_hard.corrected_words, 1u);
  EXPECT_EQ(sim_hard.segment_data(0)[0], 10) << "SECDED repairs the word";
}

// ------------------------------------------------------- stall attribution

TEST(FaultSim, DeadlockAttributedViaWaitForGraphCycle) {
  // Classic cross-recv deadlock: each task receives before it sends.
  TaskGraph g("cross");
  Program p0;
  p0.recv(1, 1).load_imm(0, 1).send(0, 0).halt();
  Program p1;
  p1.recv(1, 0).load_imm(0, 2).send(1, 0).halt();
  const TaskId a = g.add_task("A", p0, 1);
  const TaskId b = g.add_task("B", p1, 1);
  g.add_channel("ab", 32, a, b);
  g.add_channel("ba", 32, b, a);
  Binding bind;
  bind.task_to_pe.assign(2, 0);
  bind.segment_to_bank.assign(g.num_segments(), 0);
  bind.channel_to_phys.assign(g.num_channels(), -1);
  core::ArbitrationPlan plan;
  plan.arbiters_of_resource.assign(bind.num_resources(), {});

  SimOptions options;
  options.strict = false;
  options.no_progress_window = 200;
  SystemSimulator sim(g, bind, plan, options);
  const SimResult r = sim.run({a, b});
  EXPECT_TRUE(r.deadlocked);
  ASSERT_EQ(r.count(DiagKind::kDeadlock), 1u);
  EXPECT_EQ(r.count(DiagKind::kNoProgress), 0u);
  std::string detail;
  for (const auto& d : r.diagnostics)
    if (d.kind == DiagKind::kDeadlock) detail = d.detail;
  EXPECT_NE(detail.find("wait-for cycle"), std::string::npos) << detail;
  EXPECT_NE(detail.find("A"), std::string::npos);
  EXPECT_NE(detail.find("B"), std::string::npos);
}

TEST(FaultSim, AcyclicStallReportedAsNoProgress) {
  // A receiver whose sender never sends: a hang, not a deadlock cycle.
  TaskGraph g("hang");
  Program rcv;
  rcv.recv(0, 0).halt();
  Program snd;
  snd.compute(1).halt();  // never sends
  const TaskId r = g.add_task("r", rcv, 1);
  const TaskId s = g.add_task("s", snd, 1);
  g.add_channel("c", 16, s, r);
  Binding b;
  b.task_to_pe.assign(2, 0);
  b.segment_to_bank.assign(g.num_segments(), 0);
  b.channel_to_phys.assign(g.num_channels(), -1);
  core::ArbitrationPlan plan;
  plan.arbiters_of_resource.assign(b.num_resources(), {});

  SimOptions options;
  options.strict = false;
  options.no_progress_window = 300;
  SystemSimulator sim(g, b, plan, options);
  const SimResult result = sim.run({r, s});
  EXPECT_TRUE(result.deadlocked);
  EXPECT_EQ(result.count(DiagKind::kDeadlock), 0u);
  ASSERT_EQ(result.count(DiagKind::kNoProgress), 1u);
  EXPECT_LE(result.cycles, 400u) << "the window option must be honored";
}

TEST(FaultSim, StrictStallStillThrowsWithAttribution) {
  TaskGraph g("strict");
  Program rcv;
  rcv.recv(0, 0).halt();
  Program snd;
  snd.compute(1).halt();
  const TaskId r = g.add_task("r", rcv, 1);
  const TaskId s = g.add_task("s", snd, 1);
  g.add_channel("c", 16, s, r);
  Binding b;
  b.task_to_pe.assign(2, 0);
  b.segment_to_bank.assign(g.num_segments(), 0);
  b.channel_to_phys.assign(g.num_channels(), -1);
  core::ArbitrationPlan plan;
  plan.arbiters_of_resource.assign(b.num_resources(), {});
  SimOptions options;
  options.no_progress_window = 200;  // strict stays default-on
  SystemSimulator sim(g, b, plan, options);
  EXPECT_THROW(sim.run({r, s}), CheckError);
}

TEST(FaultSim, NonStrictMaxCyclesStopsCleanly) {
  TaskGraph g("cap");
  Program p;
  p.loop_begin(1000).compute(1).loop_end().halt();  // progresses every cycle
  const TaskId t = g.add_task("t", p, 1);
  Binding b;
  b.task_to_pe.assign(1, 0);
  b.segment_to_bank.assign(g.num_segments(), 0);
  b.channel_to_phys.assign(g.num_channels(), -1);
  core::ArbitrationPlan plan;
  plan.arbiters_of_resource.assign(b.num_resources(), {});
  SimOptions options;
  options.strict = false;
  options.max_cycles = 100;
  SystemSimulator sim(g, b, plan, options);
  const SimResult result = sim.run({t});
  EXPECT_TRUE(result.deadlocked);
  EXPECT_EQ(result.count(DiagKind::kMaxCycles), 1u);
}

}  // namespace
}  // namespace rcarb
