#include <gtest/gtest.h>

#include "netlist/netlist.hpp"
#include "netlist/simulator.hpp"
#include "support/check.hpp"

namespace rcarb::netlist {
namespace {

TEST(Netlist, BuildAndQuery) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId f = nl.add_lut({a, b}, 0b1000, "and_ab");  // AND
  nl.mark_output(f, "f");
  EXPECT_EQ(nl.num_inputs(), 2u);
  EXPECT_EQ(nl.num_luts(), 1u);
  EXPECT_EQ(nl.driver_kind(a), DriverKind::kPrimaryInput);
  EXPECT_EQ(nl.driver_kind(f), DriverKind::kLut);
  EXPECT_EQ(nl.net_name(f), "and_ab");
  EXPECT_EQ(nl.find_net("and_ab"), f);
  EXPECT_EQ(nl.find_net("f"), f);  // output alias
  EXPECT_EQ(nl.find_net("nope"), std::nullopt);
}

TEST(Netlist, RejectsDuplicateNames) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(nl.add_input("a"), CheckError);
}

TEST(Netlist, RejectsWideLut) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  EXPECT_THROW(nl.add_lut({a, a, a, a, a}, 0, "bad"), CheckError);
}

TEST(Netlist, FanoutCounts) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId f = nl.add_lut({a}, 0b01, "inv1");
  const NetId g = nl.add_lut({a, f}, 0b1000, "and1");
  nl.mark_output(g, "g");
  const auto fanout = nl.fanout_counts();
  EXPECT_EQ(fanout[a], 2u);
  EXPECT_EQ(fanout[f], 1u);
  EXPECT_EQ(fanout[g], 1u);  // the output marking
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId f1 = nl.add_lut({a}, 0b01, "n1");
  const NetId f2 = nl.add_lut({f1}, 0b01, "n2");
  (void)f2;
  const auto order = nl.lut_topo_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
}

TEST(Netlist, DetectsCombinationalLoop) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  // Create two LUTs, then wire a loop through DFF-free paths by building
  // lut2 before lut1's net exists is impossible — so emulate a loop via a
  // LUT that feeds itself (netlist allows construction, topo must throw).
  const NetId f = nl.add_lut({a}, 0b01, "n1");
  const NetId g = nl.add_lut({f}, 0b01, "n2");
  // Rewire n1 to depend on n2 is not exposed; instead build self-loop LUT.
  (void)g;
  Netlist loop;
  const NetId x = loop.add_input("x");
  (void)x;
  // A LUT cannot reference its own output at construction (the net id does
  // not exist yet), so loops can only arise through DFF-less cycles created
  // by connect_dff_d misuse; verify the straight case is loop-free instead.
  EXPECT_NO_THROW(nl.lut_topo_order());
}

TEST(Simulator, CombinationalSettle) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId f = nl.add_lut({a, b}, 0b0110, "xor_ab");  // XOR
  nl.mark_output(f, "f");
  Simulator sim(nl);
  for (int p = 0; p < 4; ++p) {
    sim.set_input("a", p & 1);
    sim.set_input("b", (p >> 1) & 1);
    sim.settle();
    EXPECT_EQ(sim.get("f"), ((p & 1) != ((p >> 1) & 1)));
  }
}

TEST(Simulator, DffCapturesOnClockOnly) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId q = nl.add_dff(d, false, "q");
  nl.mark_output(q, "out");
  Simulator sim(nl);
  sim.set_input("d", true);
  sim.settle();
  EXPECT_FALSE(sim.get("out")) << "q must not change before the clock edge";
  sim.clock();
  EXPECT_TRUE(sim.get("out"));
  sim.set_input("d", false);
  sim.settle();
  EXPECT_TRUE(sim.get("out"));
  sim.clock();
  EXPECT_FALSE(sim.get("out"));
}

TEST(Simulator, DffInitValueAndReset) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId q = nl.add_dff(d, true, "q");
  nl.mark_output(q, "out");
  Simulator sim(nl);
  EXPECT_TRUE(sim.get("out"));
  sim.set_input("d", false);
  sim.clock();
  EXPECT_FALSE(sim.get("out"));
  sim.reset();
  EXPECT_TRUE(sim.get("out"));
}

TEST(Simulator, SimultaneousDffUpdate) {
  // Two DFFs swapping values must exchange, not chain, on one edge.
  Netlist nl;
  std::size_t dff_a = nl.num_dffs();
  const NetId qa = nl.add_dff(0, true, "qa");
  std::size_t dff_b = nl.num_dffs();
  const NetId qb = nl.add_dff(0, false, "qb");
  nl.connect_dff_d(dff_a, qb);
  nl.connect_dff_d(dff_b, qa);
  Simulator sim(nl);
  EXPECT_TRUE(sim.get(qa));
  EXPECT_FALSE(sim.get(qb));
  sim.clock();
  EXPECT_FALSE(sim.get(qa));
  EXPECT_TRUE(sim.get(qb));
  sim.clock();
  EXPECT_TRUE(sim.get(qa));
  EXPECT_FALSE(sim.get(qb));
}

TEST(Simulator, ZeroInputLutIsConstant) {
  Netlist nl;
  const NetId c1 = nl.add_lut({}, 0b1, "const1");
  const NetId c0 = nl.add_lut({}, 0b0, "const0");
  nl.mark_output(c1, "one");
  nl.mark_output(c0, "zero");
  Simulator sim(nl);
  EXPECT_TRUE(sim.get("one"));
  EXPECT_FALSE(sim.get("zero"));
}

TEST(Simulator, RejectsSettingNonInput) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId f = nl.add_lut({a}, 0b01, "f");
  Simulator sim(nl);
  EXPECT_THROW(sim.set_input(f, true), CheckError);
  EXPECT_THROW(sim.set_input("missing", true), CheckError);
}

}  // namespace
}  // namespace rcarb::netlist
