#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

namespace rcarb {
namespace {

TEST(Check, ThrowsCheckErrorWithContext) {
  try {
    RCARB_CHECK(1 == 2, "math is broken");
    FAIL() << "expected a throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
  }
}

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(RCARB_CHECK(true, "fine"));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInIsInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 300; ++i) {
    const std::int64_t v = rng.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceZeroAndCertain) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0, 10));
    EXPECT_TRUE(rng.chance(10, 10));
  }
}

TEST(Rng, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), CheckError);
  EXPECT_THROW(rng.next_in(3, 2), CheckError);
  EXPECT_THROW(rng.chance(3, 2), CheckError);
}

// 64x64 -> 128 multiply decomposed into 32-bit limbs — an independent
// reference for the __int128 path inside Rng::next_below.
void mul_64x64(std::uint64_t a, std::uint64_t b, std::uint64_t& hi,
               std::uint64_t& lo) {
  const std::uint64_t a_lo = a & 0xffffffffull, a_hi = a >> 32;
  const std::uint64_t b_lo = b & 0xffffffffull, b_hi = b >> 32;
  const std::uint64_t p0 = a_lo * b_lo;
  const std::uint64_t p1 = a_lo * b_hi;
  const std::uint64_t p2 = a_hi * b_lo;
  const std::uint64_t p3 = a_hi * b_hi;
  const std::uint64_t mid = p1 + (p0 >> 32) + (p2 & 0xffffffffull);
  lo = (p0 & 0xffffffffull) | (mid << 32);
  hi = p3 + (p2 >> 32) + (mid >> 32);
}

/// Lemire's bounded rejection written out by hand, drawing from `rng`.
std::uint64_t reference_bounded(Rng& rng, std::uint64_t bound) {
  std::uint64_t hi = 0, lo = 0;
  mul_64x64(rng.next_u64(), bound, hi, lo);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
    while (lo < threshold) mul_64x64(rng.next_u64(), bound, hi, lo);
  }
  return hi;
}

TEST(Rng, NextBelowMatchesIndependentReference) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  const std::uint64_t bounds[] = {1,
                                  2,
                                  3,
                                  7,
                                  1000,
                                  (1ull << 32) - 1,
                                  1ull << 32,
                                  (1ull << 63) - 1,
                                  1ull << 63,
                                  (1ull << 63) + 1,
                                  kMax - 1,
                                  kMax};
  for (const std::uint64_t bound : bounds) {
    Rng impl(2026), ref(2026);
    for (int i = 0; i < 500; ++i) {
      ASSERT_EQ(impl.next_below(bound), reference_bounded(ref, bound))
          << "bound=" << bound << " draw " << i;
    }
    // Same number of raw draws consumed: the streams are still in sync.
    EXPECT_EQ(impl.next_u64(), ref.next_u64()) << "bound=" << bound;
  }
}

TEST(Rng, NextBelowBoundOneReturnsZeroAndConsumesOneDraw) {
  Rng a(9), b(9);
  EXPECT_EQ(a.next_below(1), 0u);
  (void)b.next_u64();
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, NextBelowHugeBoundsStayInRangeAndReachUpperHalf) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  const std::uint64_t huge[] = {1ull << 63, (1ull << 63) + 1, kMax - 1,
                                kMax};
  for (const std::uint64_t bound : huge) {
    Rng rng(17);
    bool upper_half = false;
    for (int i = 0; i < 400; ++i) {
      const std::uint64_t v = rng.next_below(bound);
      ASSERT_LT(v, bound);
      if (v >= (1ull << 62)) upper_half = true;
    }
    EXPECT_TRUE(upper_half) << "bound=" << bound;
  }
}

TEST(Rng, NextInFullSignedRangeIsPassThrough) {
  constexpr std::int64_t kLo = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kHi = std::numeric_limits<std::int64_t>::max();
  Rng a(21), b(21);
  // span == 2^64 degenerates to a raw draw; no bias, no UB.
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(a.next_in(kLo, kHi), static_cast<std::int64_t>(b.next_u64()));
}

TEST(Rng, NextInSpanCrossingSignBoundary) {
  constexpr std::int64_t kLo = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kHi = std::numeric_limits<std::int64_t>::max();
  Rng rng(23);
  bool negative = false, positive = false;
  // span == 2^64 - 1: the old `lo + (int64)offset` form was signed
  // overflow for any offset past 2^63 - 1.
  for (int i = 0; i < 400; ++i) {
    const std::int64_t v = rng.next_in(kLo, kHi - 1);
    ASSERT_GE(v, kLo);
    ASSERT_LE(v, kHi - 1);
    if (v < 0) negative = true;
    if (v > 0) positive = true;
  }
  EXPECT_TRUE(negative);
  EXPECT_TRUE(positive);
  // Degenerate one-value ranges at both extremes.
  EXPECT_EQ(rng.next_in(kLo, kLo), kLo);
  EXPECT_EQ(rng.next_in(kHi, kHi), kHi);
  for (int i = 0; i < 50; ++i) {
    const std::int64_t v = rng.next_in(kLo, kLo + 1);
    ASSERT_TRUE(v == kLo || v == kLo + 1);
    const std::int64_t w = rng.next_in(kHi - 1, kHi);
    ASSERT_TRUE(w == kHi - 1 || w == kHi);
  }
}

TEST(Rng, DeriveSeedDeterministicAndDistinct) {
  EXPECT_EQ(derive_seed(42, 7), derive_seed(42, 7));
  std::set<std::uint64_t> seen;
  for (const std::uint64_t master : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
    for (std::uint64_t i = 0; i < 1000; ++i)
      seen.insert(derive_seed(master, i));
  }
  // 4 masters x 1000 indices, no collisions — cells get distinct streams.
  EXPECT_EQ(seen.size(), 4000u);
  // The derived seed is not the master itself (index 0 included).
  EXPECT_NE(derive_seed(42, 0), 42u);
}

TEST(Table, RendersAlignedColumns) {
  Table t("demo");
  t.set_header({"N", "value"});
  t.add_row({"2", "10"});
  t.add_row({"10", "3"});
  const std::string s = t.render();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("| N  | value |"), std::string::npos);
  EXPECT_NE(s.find("| 10 | 3     |"), std::string::npos);
}

TEST(Table, RejectsMismatchedRowArity) {
  Table t("demo");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), CheckError);
}

TEST(Table, FmtFixedFormatsDecimals) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(2.0, 1), "2.0");
}

TEST(Text, JoinEmptyAndNonEmpty) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(Text, IsIdentifier) {
  EXPECT_TRUE(is_identifier("req0"));
  EXPECT_TRUE(is_identifier("Grant_1"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("1abc"));
  EXPECT_FALSE(is_identifier("a-b"));
}

TEST(Text, IndentPreservesEmptyLines) {
  EXPECT_EQ(indent("a\n\nb\n", 2), "  a\n\n  b\n");
}

TEST(Text, SignalName) {
  EXPECT_EQ(signal_name("req", 3), "req3");
}

}  // namespace
}  // namespace rcarb
