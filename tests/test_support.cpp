#include <gtest/gtest.h>

#include <set>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

namespace rcarb {
namespace {

TEST(Check, ThrowsCheckErrorWithContext) {
  try {
    RCARB_CHECK(1 == 2, "math is broken");
    FAIL() << "expected a throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
  }
}

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(RCARB_CHECK(true, "fine"));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInIsInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 300; ++i) {
    const std::int64_t v = rng.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceZeroAndCertain) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0, 10));
    EXPECT_TRUE(rng.chance(10, 10));
  }
}

TEST(Rng, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), CheckError);
  EXPECT_THROW(rng.next_in(3, 2), CheckError);
  EXPECT_THROW(rng.chance(3, 2), CheckError);
}

TEST(Table, RendersAlignedColumns) {
  Table t("demo");
  t.set_header({"N", "value"});
  t.add_row({"2", "10"});
  t.add_row({"10", "3"});
  const std::string s = t.render();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("| N  | value |"), std::string::npos);
  EXPECT_NE(s.find("| 10 | 3     |"), std::string::npos);
}

TEST(Table, RejectsMismatchedRowArity) {
  Table t("demo");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), CheckError);
}

TEST(Table, FmtFixedFormatsDecimals) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(2.0, 1), "2.0");
}

TEST(Text, JoinEmptyAndNonEmpty) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(Text, IsIdentifier) {
  EXPECT_TRUE(is_identifier("req0"));
  EXPECT_TRUE(is_identifier("Grant_1"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("1abc"));
  EXPECT_FALSE(is_identifier("a-b"));
}

TEST(Text, IndentPreservesEmptyLines) {
  EXPECT_EQ(indent("a\n\nb\n", 2), "  a\n\n  b\n");
}

TEST(Text, SignalName) {
  EXPECT_EQ(signal_name("req", 3), "req3");
}

}  // namespace
}  // namespace rcarb
