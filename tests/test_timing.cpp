#include <gtest/gtest.h>

#include "timing/sta.hpp"

namespace rcarb::timing {
namespace {

netlist::NetId add_buf(netlist::Netlist& nl, netlist::NetId in,
                       const std::string& name) {
  return nl.add_lut({in}, 0b10, name);
}

TEST(DelayModel, NetDelayGrowsWithFanout) {
  const DelayModel model;
  EXPECT_DOUBLE_EQ(model.net_delay(1), model.net_base);
  EXPECT_GT(model.net_delay(4), model.net_delay(2));
  EXPECT_DOUBLE_EQ(model.net_delay(0), model.net_base);
}

TEST(Sta, PureRegisterLoopPath) {
  // q -> LUT -> d: one LUT level.
  netlist::Netlist nl;
  const auto dff = nl.num_dffs();
  const auto q = nl.add_dff(0, false, "q");
  const auto f = add_buf(nl, q, "buf");
  nl.connect_dff_d(dff, f);
  const DelayModel model;
  const TimingReport report = analyze(nl, model);
  const double expected = model.clk_to_q + model.net_delay(1) +
                          model.lut_delay + model.net_delay(1) + model.setup;
  EXPECT_DOUBLE_EQ(report.reg_to_reg_ns, expected);
  EXPECT_GT(report.fmax_mhz, 0.0);
  EXPECT_DOUBLE_EQ(report.fmax_mhz,
                   1000.0 / (expected + model.clock_uncertainty));
}

TEST(Sta, DeeperLogicIsSlower) {
  auto build = [](int depth) {
    netlist::Netlist nl;
    const auto dff = nl.num_dffs();
    netlist::NetId n = nl.add_dff(0, false, "q");
    for (int i = 0; i < depth; ++i)
      n = add_buf(nl, n, "b" + std::to_string(i));
    nl.connect_dff_d(dff, n);
    return analyze(nl, DelayModel{}).fmax_mhz;
  };
  EXPECT_GT(build(1), build(2));
  EXPECT_GT(build(2), build(5));
}

TEST(Sta, HigherFanoutIsSlower) {
  auto build = [](int fanout) {
    netlist::Netlist nl;
    const auto dff = nl.num_dffs();
    netlist::NetId q = nl.add_dff(0, false, "q");
    netlist::NetId f = add_buf(nl, q, "main");
    for (int i = 1; i < fanout; ++i) (void)add_buf(nl, q, "l" + std::to_string(i));
    nl.connect_dff_d(dff, f);
    return analyze(nl, DelayModel{}).reg_to_reg_ns;
  };
  EXPECT_LT(build(1), build(4));
}

TEST(Sta, InputToRegisterPathTracked) {
  netlist::Netlist nl;
  const auto in = nl.add_input("in");
  const auto f = add_buf(nl, in, "buf");
  nl.add_dff(f, false, "q");
  const TimingReport report = analyze(nl, DelayModel{});
  EXPECT_GT(report.input_to_reg_ns, 0.0);
  EXPECT_DOUBLE_EQ(report.reg_to_reg_ns, 0.0);
  EXPECT_GT(report.fmax_mhz, 0.0);
}

TEST(Sta, RegisterToOutputPathTracked) {
  netlist::Netlist nl;
  const auto dff = nl.num_dffs();
  const auto q = nl.add_dff(0, false, "q");
  nl.connect_dff_d(dff, q);  // self loop, no logic
  const auto f = add_buf(nl, q, "obuf");
  nl.mark_output(f, "out");
  const TimingReport report = analyze(nl, DelayModel{});
  EXPECT_GT(report.reg_to_out_ns, 0.0);
}

TEST(Sta, CriticalPathNetsReported) {
  netlist::Netlist nl;
  const auto dff = nl.num_dffs();
  netlist::NetId n = nl.add_dff(0, false, "q");
  n = add_buf(nl, n, "stage0");
  n = add_buf(nl, n, "stage1");
  nl.connect_dff_d(dff, n);
  const TimingReport report = analyze(nl, DelayModel{});
  ASSERT_GE(report.critical_nets.size(), 2u);
  EXPECT_EQ(report.critical_nets.back(), "stage1");
}

TEST(Sta, CombinationalOnlyNetlistHasNoRegPath) {
  netlist::Netlist nl;
  const auto a = nl.add_input("a");
  const auto f = add_buf(nl, a, "buf");
  nl.mark_output(f, "out");
  const TimingReport report = analyze(nl, DelayModel{});
  EXPECT_DOUBLE_EQ(report.reg_to_reg_ns, 0.0);
  EXPECT_DOUBLE_EQ(report.input_to_reg_ns, 0.0);
}

}  // namespace
}  // namespace rcarb::timing
