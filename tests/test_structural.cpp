#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "core/policy.hpp"
#include "core/rr_fsm.hpp"
#include "core/structural.hpp"
#include "netlist/simulator.hpp"
#include "support/rng.hpp"
#include "synth/flow.hpp"

namespace rcarb::core {
namespace {

struct StructParam {
  int n;
  synth::Encoding encoding;
};

class StructuralEquivalence : public ::testing::TestWithParam<StructParam> {};

TEST_P(StructuralEquivalence, MappedNetlistMatchesBehavioralModel) {
  const auto [n, encoding] = GetParam();
  const synth::Fsm fsm = build_round_robin_fsm(n);
  const synth::StateCodes codes = synth::encode_states(fsm, encoding);
  const aig::Aig comb = build_round_robin_aig(n, codes);
  const synth::SynthResult result = synth::finish_machine_synthesis(
      comb, n, codes.num_bits, codes.code[fsm.reset_state()], {});

  netlist::Simulator sim(result.netlist);
  RoundRobinArbiter beh(n);
  // Resolve port names once — the cycle loop must not hash strings.
  std::vector<netlist::NetId> req_net, grant_net;
  for (int i = 0; i < n; ++i) {
    req_net.push_back(*result.netlist.find_net("req" + std::to_string(i)));
    grant_net.push_back(
        *result.netlist.find_net("grant" + std::to_string(i)));
  }
  Rng rng(31337 + static_cast<std::uint64_t>(n));
  for (int cyc = 0; cyc < 2000; ++cyc) {
    const std::uint64_t req = rng.next_below(1ull << n);
    for (int i = 0; i < n; ++i)
      sim.set_input(req_net[static_cast<std::size_t>(i)], (req >> i) & 1);
    sim.settle();
    int got = -1;
    for (int i = 0; i < n; ++i) {
      if (sim.get(grant_net[static_cast<std::size_t>(i)])) {
        ASSERT_EQ(got, -1) << "double grant (mutual exclusion violated)";
        got = i;
      }
    }
    EXPECT_EQ(got, beh.step(req)) << "cycle " << cyc;
    sim.clock();
  }
  EXPECT_EQ(sim.name_lookups(), 0u)
      << "a name lookup slipped into the cycle loop";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StructuralEquivalence,
    ::testing::Values(StructParam{2, synth::Encoding::kOneHot},
                      StructParam{3, synth::Encoding::kOneHot},
                      StructParam{4, synth::Encoding::kOneHot},
                      StructParam{6, synth::Encoding::kOneHot},
                      StructParam{10, synth::Encoding::kOneHot},
                      StructParam{2, synth::Encoding::kCompact},
                      StructParam{3, synth::Encoding::kCompact},
                      StructParam{5, synth::Encoding::kCompact},
                      StructParam{8, synth::Encoding::kCompact},
                      StructParam{3, synth::Encoding::kGray},
                      StructParam{6, synth::Encoding::kGray}));

TEST(Structural, FormallyEquivalentToTwoLevelSynthesisOneHot) {
  // BDD equivalence of the structural AIG against the elaborated covers
  // for every grant output (same encoding, same variable order).
  const int n = 4;
  const synth::Fsm fsm = build_round_robin_fsm(n);
  const synth::StateCodes codes =
      synth::encode_states(fsm, synth::Encoding::kOneHot);
  const aig::Aig comb = build_round_robin_aig(n, codes);
  const synth::ElaboratedFsm elab = synth::elaborate(fsm, codes);

  const int nvars = elab.num_vars();
  bdd::Manager m(nvars);

  // Structural AIG outputs as BDDs: inputs and state bits share var order.
  std::vector<bdd::Ref> node_bdd(comb.num_nodes(), bdd::kFalse);
  for (std::uint32_t node = 1; node < comb.num_nodes(); ++node) {
    if (comb.is_input(node)) {
      node_bdd[node] = m.var(static_cast<int>(comb.input_ordinal(node)));
    } else {
      const auto f0 = comb.fanin0(node);
      const auto f1 = comb.fanin1(node);
      bdd::Ref a = node_bdd[aig::lit_node(f0)];
      if (aig::lit_compl(f0)) a = m.lnot(a);
      bdd::Ref b = node_bdd[aig::lit_node(f1)];
      if (aig::lit_compl(f1)) b = m.lnot(b);
      node_bdd[node] = m.land(a, b);
    }
  }
  auto output_bdd = [&](std::size_t o) {
    const auto d = comb.output_driver(o);
    bdd::Ref r = node_bdd[aig::lit_node(d)];
    return aig::lit_compl(d) ? m.lnot(r) : r;
  };

  // Valid-state constraint: exactly one of the 2n one-hot bits set.
  bdd::Ref valid = bdd::kFalse;
  for (std::size_t s = 0; s < 2 * static_cast<std::size_t>(n); ++s) {
    bdd::Ref exactly = bdd::kTrue;
    for (std::size_t u = 0; u < 2 * static_cast<std::size_t>(n); ++u) {
      const bdd::Ref bit = m.var(n + static_cast<int>(u));
      exactly = m.land(exactly, u == s ? bit : m.lnot(bit));
    }
    valid = m.lor(valid, exactly);
  }

  // Under valid states, grants must match the two-level covers.
  for (int o = 0; o < n; ++o) {
    const bdd::Ref structural =
        output_bdd(static_cast<std::size_t>(codes.num_bits) +
                   static_cast<std::size_t>(o));
    const bdd::Ref two_level =
        m.from_cover(elab.outputs[static_cast<std::size_t>(o)]);
    const bdd::Ref diff = m.land(valid, m.lxor(structural, two_level));
    EXPECT_EQ(diff, bdd::kFalse) << "grant" << o << " differs on a valid state";
  }
}

TEST(Structural, AigSizeIsLinearInN) {
  const synth::Fsm f4 = build_round_robin_fsm(4);
  const synth::Fsm f16 = build_round_robin_fsm(16);
  const auto a4 = build_round_robin_aig(
      4, synth::encode_states(f4, synth::Encoding::kOneHot));
  const auto a16 = build_round_robin_aig(
      16, synth::encode_states(f16, synth::Encoding::kOneHot));
  // Linear growth: 4x the ports must cost clearly less than 8x the ANDs.
  EXPECT_LT(a16.num_ands(), 8 * a4.num_ands());
}

}  // namespace
}  // namespace rcarb::core
