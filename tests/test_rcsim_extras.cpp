#include <gtest/gtest.h>

#include "core/insertion.hpp"
#include "rcsim/system_sim.hpp"
#include "support/check.hpp"

namespace rcarb::rcsim {
namespace {

using core::Binding;
using tg::Program;
using tg::TaskGraph;
using tg::TaskId;

Binding bare_binding(const TaskGraph& g, std::size_t num_tasks,
                     std::size_t num_banks = 1) {
  Binding b;
  b.task_to_pe.assign(num_tasks, 0);
  b.segment_to_bank.assign(g.num_segments(), 0);
  b.channel_to_phys.assign(g.num_channels(), -1);
  b.num_banks = num_banks;
  for (std::size_t i = 0; i < num_banks; ++i)
    b.bank_names.push_back("B" + std::to_string(i));
  return b;
}

core::ArbitrationPlan no_plan(const Binding& b) {
  core::ArbitrationPlan plan;
  plan.arbiters_of_resource.assign(b.num_resources(), {});
  return plan;
}

// ------------------------------------------------------------ var loops

TEST(VarLoop, TripCountComesFromRegister) {
  TaskGraph g("var");
  g.add_segment("s", 64, 16);
  Program p;
  p.load_imm(0, 0)
      .load(1, 0, 0, 0)  // trip count from memory
      .load_imm(2, 0)
      .loop_begin_var(1)
      .add_imm(2, 2, 1)
      .loop_end()
      .store(0, 0, 2, 1)
      .halt();
  g.add_task("t", p, 1);
  const Binding b = bare_binding(g, 1);
  for (std::int64_t trips : {0, 1, 5, 13}) {
    SystemSimulator sim(g, b, no_plan(b));
    sim.write_segment(0, {trips});
    sim.run({0});
    EXPECT_EQ(sim.segment_data(0)[1], trips) << "trips=" << trips;
  }
}

TEST(VarLoop, NegativeCountClampsToZero) {
  TaskGraph g("neg");
  g.add_segment("s", 64, 16);
  Program p;
  p.load_imm(0, 0)
      .load_imm(1, -5)
      .load_imm(2, 7)
      .loop_begin_var(1)
      .load_imm(2, 99)
      .loop_end()
      .store(0, 0, 2)
      .halt();
  g.add_task("t", p, 1);
  const Binding b = bare_binding(g, 1);
  SystemSimulator sim(g, b, no_plan(b));
  sim.run({0});
  EXPECT_EQ(sim.segment_data(0)[0], 7) << "body must be skipped";
}

TEST(VarLoop, RuntimeMattersNotWorstCase) {
  // The Sec. 2.2 argument in miniature: execution time follows the data.
  TaskGraph g("runtime");
  g.add_segment("s", 64, 16);
  Program p;
  p.load_imm(0, 0)
      .load(1, 0, 0, 0)
      .loop_begin_var(1)
      .compute(3)
      .loop_end()
      .halt();
  g.add_task("t", p, 1);
  const Binding b = bare_binding(g, 1);
  auto run_with = [&](std::int64_t trips) {
    SystemSimulator sim(g, b, no_plan(b));
    sim.write_segment(0, {trips});
    return sim.run({0}).cycles;
  };
  EXPECT_LT(run_with(2), run_with(10));
  EXPECT_EQ(run_with(10) - run_with(2), 8u * 3u);
}

TEST(VarLoop, ValidateCountsVarLoopsLikeLoops) {
  Program open_loop;
  open_loop.loop_begin_var(0);
  EXPECT_THROW(open_loop.validate(), CheckError);
}

TEST(VarLoop, NestsWithFixedLoops) {
  TaskGraph g("nest");
  g.add_segment("s", 64, 16);
  Program p;
  p.load_imm(0, 0)
      .load_imm(1, 3)   // inner trips
      .load_imm(2, 0)   // accumulator
      .loop_begin(4)
      .loop_begin_var(1)
      .add_imm(2, 2, 1)
      .loop_end()
      .loop_end()
      .store(0, 0, 2)
      .halt();
  g.add_task("t", p, 1);
  const Binding b = bare_binding(g, 1);
  SystemSimulator sim(g, b, no_plan(b));
  sim.run({0});
  EXPECT_EQ(sim.segment_data(0)[0], 12);
}

// ------------------------------------------------------------------- TDM

struct TdmFixture {
  TaskGraph g{"tdm"};
  Binding binding;
  tg::SegmentId out;

  TdmFixture() {
    out = g.add_segment("out", 64, 8);
    for (int i = 0; i < 2; ++i) {
      Program producer;
      producer.load_imm(0, 10 + i).send(i, 0).halt();
      Program consumer;
      consumer.recv(1, i).load_imm(0, 0).store(static_cast<int>(out), 0, 1, i).halt();
      const auto p = g.add_task("p" + std::to_string(i), producer, 1);
      const auto c = g.add_task("c" + std::to_string(i), consumer, 1);
      g.add_channel("ch" + std::to_string(i), 8, p, c);
    }
    binding = bare_binding(g, 4);
    binding.channel_to_phys = {0, 0};
    binding.num_phys_channels = 1;
    binding.phys_channel_names = {"shared"};
  }
};

TEST(Tdm, SlotsSerializeWithoutArbiterOrConflicts) {
  TdmFixture fx;
  SimOptions options;
  options.tdm_slots = {{0, 2}, {1, 2}};
  SystemSimulator sim(fx.g, fx.binding, no_plan(fx.binding), options);
  const SimResult r = sim.run({0, 1, 2, 3});
  EXPECT_EQ(r.channel_conflicts, 0u);
  EXPECT_EQ(sim.segment_data(fx.out)[0], 10);
  EXPECT_EQ(sim.segment_data(fx.out)[1], 11);
}

TEST(Tdm, SenderWaitsForItsSlot) {
  TdmFixture fx;
  // Both producers ready at cycle 1; producer 1's slot only comes at
  // cycle % 8 == 7, so it stalls.
  SimOptions options;
  options.tdm_slots = {{0, 8}, {7, 8}};
  SystemSimulator sim(fx.g, fx.binding, no_plan(fx.binding), options);
  const SimResult r = sim.run({0, 1, 2, 3});
  EXPECT_GT(r.tasks[2].grant_wait_cycles, 3u)
      << "producer 1 must idle until its slot";
}

TEST(Tdm, WithoutSlotsSimultaneousSendsConflict) {
  TdmFixture fx;
  SimOptions options;
  options.strict = false;
  SystemSimulator sim(fx.g, fx.binding, no_plan(fx.binding), options);
  const SimResult r = sim.run({0, 1, 2, 3});
  EXPECT_GT(r.channel_conflicts, 0u)
      << "no arbitration and no slots: the wires collide";
}

}  // namespace
}  // namespace rcarb::rcsim
