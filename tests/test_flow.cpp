#include <gtest/gtest.h>

#include <algorithm>

#include "board/board.hpp"
#include "fft/fft_design.hpp"
#include "fft/workload.hpp"
#include "flow/sparcs_flow.hpp"
#include "support/rng.hpp"

namespace rcarb::flow {
namespace {

fft::Block test_block(std::uint64_t seed) {
  Rng rng(seed);
  fft::Block block{};
  for (auto& row : block)
    for (auto& v : row) v = rng.next_in(-128, 127);
  return block;
}

FlowOptions with_preload(const fft::FftDesign& d, const fft::Block& block) {
  FlowOptions o;
  for (std::size_t r = 0; r < 4; ++r)
    o.preload.emplace_back(
        d.mi[r], std::vector<std::int64_t>(block[r].begin(), block[r].end()));
  return o;
}

void expect_spectrum_ok(const FlowReport& report, const fft::FftDesign& d,
                        const fft::Block& block) {
  const fft::BlockSpectrum want = fft::fft2d_4x4(block);
  for (std::size_t j = 0; j < 4; ++j) {
    const auto& words = report.final_memory[d.mo[j]];
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_EQ(words[k], want[j][k].re) << "MO" << j << ".re[" << k << "]";
      EXPECT_EQ(words[4 + k], want[j][k].im) << "MO" << j << ".im[" << k << "]";
    }
  }
}

std::vector<std::size_t> arbiter_sizes(const PartitionReport& pr) {
  std::vector<std::size_t> sizes;
  for (const auto& inst : pr.plan.arbiters) sizes.push_back(inst.ports.size());
  std::sort(sizes.rbegin(), sizes.rend());
  return sizes;
}

TEST(SparcsFlow, PinnedPaperFlowReproducesSec5) {
  const fft::FftDesign d = fft::build_fft_design();
  const fft::Block block = test_block(1);
  FlowOptions o = with_preload(d, block);
  const auto pinned = fft::paper_partitions(d);
  o.pinned_partitions = &pinned;
  o.pinned_binding = [&](std::size_t tp) { return fft::paper_binding(d, tp); };

  const FlowReport report = run_flow(d.graph, board::wildforce(), o);

  // The paper's headline: three temporal partitions with arbiters
  // {6-input, 2-input}, {4-input}, {none}.
  ASSERT_EQ(report.partitions.size(), 3u);
  EXPECT_EQ(arbiter_sizes(report.partitions[0]),
            (std::vector<std::size_t>{6, 2}));
  EXPECT_EQ(arbiter_sizes(report.partitions[1]),
            (std::vector<std::size_t>{4}));
  EXPECT_TRUE(report.partitions[2].plan.arbiters.empty());

  // Design clock: the arbiters must never be the bottleneck (Sec. 5:
  // "10-bit arbiters clocked at 26 MHz, they did not introduce any
  // overhead on the clock speed" of the ~6 MHz design).
  EXPECT_DOUBLE_EQ(report.design_clock_mhz, 6.0);
  EXPECT_GT(report.min_arbiter_fmax_mhz, 6.0);

  // The FFT must still be bit-exact through all three partitions.
  expect_spectrum_ok(report, d, block);

  // No conflicts or protocol violations anywhere.
  for (const auto& pr : report.partitions) {
    EXPECT_EQ(pr.sim.bank_conflicts, 0u);
    EXPECT_EQ(pr.sim.protocol_violations, 0u);
  }
}

TEST(SparcsFlow, PinnedFlowLandsOnPaperCycleBudget) {
  const fft::FftDesign d = fft::build_fft_design();
  const fft::Block block = test_block(2);
  FlowOptions o = with_preload(d, block);
  const auto pinned = fft::paper_partitions(d);
  o.pinned_partitions = &pinned;
  o.pinned_binding = [&](std::size_t tp) { return fft::paper_binding(d, tp); };
  const FlowReport report = run_flow(d.graph, board::wildforce(), o);
  // ~1600 cycles/block -> 4.4 s for 512x512 at 6 MHz (the calibration the
  // models were fixed at; see fft/workload.hpp).
  EXPECT_GT(report.total_cycles, 1450u);
  EXPECT_LT(report.total_cycles, 1800u);
  const fft::HardwareModel hw{report.design_clock_mhz};
  const double seconds = hw.seconds(fft::ImageWorkload{}, report.total_cycles);
  EXPECT_NEAR(seconds, 4.4, 0.4);
}

TEST(SparcsFlow, AutomaticFlowAlsoProducesThreePartitions) {
  const fft::FftDesign d = fft::build_fft_design();
  const fft::Block block = test_block(3);
  const FlowOptions o = with_preload(d, block);
  const FlowReport report = run_flow(d.graph, board::wildforce(), o);
  EXPECT_EQ(report.partitions.size(), 3u);
  expect_spectrum_ok(report, d, block);
  // The conflict-aware mapper may beat the paper's hand mapping, but the
  // first partition (6 concurrent tasks, 10 active segments on 4 banks)
  // always needs some arbitration.
  EXPECT_FALSE(report.partitions[0].plan.arbiters.empty());
}

TEST(SparcsFlow, ElisionSplitsTheBigArbiter) {
  const fft::FftDesign d = fft::build_fft_design();
  const fft::Block block = test_block(4);
  FlowOptions o = with_preload(d, block);
  const auto pinned = fft::paper_partitions(d);
  o.pinned_partitions = &pinned;
  o.pinned_binding = [&](std::size_t tp) { return fft::paper_binding(d, tp); };
  o.insertion.elide_serialized = true;
  const FlowReport report = run_flow(d.graph, board::wildforce(), o);
  // Sec. 5's suggested optimization: the ML bank's Arb6 splits into Arb4
  // (the F tasks) + Arb2 (g1r, g2r) because F and g never overlap.
  EXPECT_EQ(arbiter_sizes(report.partitions[0]),
            (std::vector<std::size_t>{4, 2, 2}));
  expect_spectrum_ok(report, d, block);
}

TEST(SparcsFlow, ElisionNeverIncreasesArbiterArea) {
  const fft::FftDesign d = fft::build_fft_design();
  const fft::Block block = test_block(5);
  FlowOptions base = with_preload(d, block);
  const auto pinned = fft::paper_partitions(d);
  base.pinned_partitions = &pinned;
  base.pinned_binding = [&](std::size_t tp) {
    return fft::paper_binding(d, tp);
  };
  FlowOptions elide = base;
  elide.insertion.elide_serialized = true;
  const FlowReport a = run_flow(d.graph, board::wildforce(), base);
  const FlowReport b = run_flow(d.graph, board::wildforce(), elide);
  EXPECT_LE(b.total_arbiter_clbs, a.total_arbiter_clbs);
  EXPECT_EQ(a.total_cycles, b.total_cycles)
      << "elision changes structure, not this workload's schedule";
}

TEST(SparcsFlow, RetargetsToOtherBoardsUnchanged) {
  // The paper's portability claim: the same taskgraph maps to different
  // boards with zero design changes.
  const fft::FftDesign d = fft::build_fft_design();
  const fft::Block block = test_block(6);
  const FlowOptions o = with_preload(d, block);

  const FlowReport mesh = run_flow(d.graph, board::mesh8(), o);
  expect_spectrum_ok(mesh, d, block);
  // mesh8's bigger FPGAs need fewer reconfigurations.
  EXPECT_LT(mesh.partitions.size(), 3u);
}

TEST(SparcsFlow, PolicyIsConfigurable) {
  const fft::FftDesign d = fft::build_fft_design();
  const fft::Block block = test_block(7);
  FlowOptions o = with_preload(d, block);
  const auto pinned = fft::paper_partitions(d);
  o.pinned_partitions = &pinned;
  o.pinned_binding = [&](std::size_t tp) { return fft::paper_binding(d, tp); };
  for (const core::Policy policy :
       {core::Policy::kFifo, core::Policy::kPriority, core::Policy::kRandom}) {
    o.insertion.policy = policy;
    const FlowReport report = run_flow(d.graph, board::wildforce(), o);
    expect_spectrum_ok(report, d, block);
    for (const auto& pr : report.partitions)
      EXPECT_EQ(pr.sim.bank_conflicts, 0u) << core::to_string(policy);
  }
}

TEST(SparcsFlow, SummaryMentionsPartitionsAndArbiters) {
  const fft::FftDesign d = fft::build_fft_design();
  FlowOptions o;
  o.simulate = false;
  const auto pinned = fft::paper_partitions(d);
  o.pinned_partitions = &pinned;
  o.pinned_binding = [&](std::size_t tp) { return fft::paper_binding(d, tp); };
  const FlowReport report = run_flow(d.graph, board::wildforce(), o);
  const std::string s = report.summary();
  EXPECT_NE(s.find("temporal partitions: 3"), std::string::npos);
  EXPECT_NE(s.find("6-input"), std::string::npos);
  EXPECT_NE(s.find("design clock"), std::string::npos);
}

TEST(SparcsFlow, ArbiterCharacteristicsAttached) {
  const fft::FftDesign d = fft::build_fft_design();
  FlowOptions o;
  o.simulate = false;
  const auto pinned = fft::paper_partitions(d);
  o.pinned_partitions = &pinned;
  o.pinned_binding = [&](std::size_t tp) { return fft::paper_binding(d, tp); };
  const FlowReport report = run_flow(d.graph, board::wildforce(), o);
  ASSERT_EQ(report.partitions[0].arbiter_chars.size(), 2u);
  EXPECT_EQ(report.partitions[0].arbiter_chars[0].n, 6);
  EXPECT_GT(report.total_arbiter_clbs, 0u);
}

}  // namespace
}  // namespace rcarb::flow
