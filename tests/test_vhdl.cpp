#include <gtest/gtest.h>

#include "core/vhdl.hpp"

namespace rcarb::core {
namespace {

TEST(Vhdl, EntityAndPortsEmitted) {
  const std::string v = emit_round_robin_vhdl(3, synth::Encoding::kOneHot);
  EXPECT_NE(v.find("entity rr_arbiter3 is"), std::string::npos);
  EXPECT_NE(v.find("clk : in std_logic"), std::string::npos);
  EXPECT_NE(v.find("rst : in std_logic"), std::string::npos);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(v.find("req" + std::to_string(i) + " : in std_logic"),
              std::string::npos);
    EXPECT_NE(v.find("grant" + std::to_string(i) + " : out std_logic"),
              std::string::npos);
  }
  EXPECT_NE(v.find("end architecture rtl;"), std::string::npos);
}

TEST(Vhdl, StateTypeListsAllStates) {
  const std::string v = emit_round_robin_vhdl(2, synth::Encoding::kOneHot);
  EXPECT_NE(v.find("type state_t is (F0, F1, C0, C1);"), std::string::npos);
  EXPECT_NE(v.find("signal state : state_t := F0;"), std::string::npos);
}

TEST(Vhdl, EncodingAttributeFollowsRequest) {
  EXPECT_NE(emit_round_robin_vhdl(2, synth::Encoding::kOneHot).find("\"one-hot\""),
            std::string::npos);
  EXPECT_NE(
      emit_round_robin_vhdl(2, synth::Encoding::kCompact).find("\"sequential\""),
      std::string::npos);
  EXPECT_NE(emit_round_robin_vhdl(2, synth::Encoding::kGray).find("\"gray\""),
            std::string::npos);
}

TEST(Vhdl, Fig5ScanStructurePresent) {
  const std::string v = emit_round_robin_vhdl(2, synth::Encoding::kOneHot);
  // From F0: R0 wins, else not(R0) and R1.
  EXPECT_NE(v.find("when F0 =>"), std::string::npos);
  EXPECT_NE(v.find("if req0 = '0' and req1 = '0' then"), std::string::npos);
  EXPECT_NE(v.find("elsif req0 = '1' then"), std::string::npos);
  EXPECT_NE(v.find("elsif req0 = '0' and req1 = '1' then"), std::string::npos);
  // Idle retirement from C0 goes to F1.
  EXPECT_NE(v.find("when C0 =>"), std::string::npos);
}

TEST(Vhdl, MealyOutputEquations) {
  const std::string v = emit_round_robin_vhdl(2, synth::Encoding::kOneHot);
  EXPECT_NE(v.find("grant0 <= '1' when"), std::string::npos);
  EXPECT_NE(v.find("grant1 <= '1' when"), std::string::npos);
  EXPECT_NE(v.find("else '0';"), std::string::npos);
}

TEST(Vhdl, EveryStateHasCaseAlternative) {
  const std::string v = emit_round_robin_vhdl(4, synth::Encoding::kOneHot);
  for (const char* s : {"F0", "F1", "F2", "F3", "C0", "C1", "C2", "C3"})
    EXPECT_NE(v.find(std::string("when ") + s + " =>"), std::string::npos);
}

TEST(Vhdl, GrowsWithN) {
  EXPECT_LT(emit_round_robin_vhdl(2, synth::Encoding::kOneHot).size(),
            emit_round_robin_vhdl(8, synth::Encoding::kOneHot).size());
}

}  // namespace
}  // namespace rcarb::core
