#include <gtest/gtest.h>

#include "logic/cube.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace rcarb::logic {
namespace {

TEST(Cube, UniversalCubeCoversEverything) {
  Cube u;
  EXPECT_TRUE(u.is_universal());
  EXPECT_EQ(u.literal_count(), 0);
  for (std::uint64_t a : {0ull, 5ull, ~0ull}) EXPECT_TRUE(u.eval(a));
}

TEST(Cube, LiteralConstruction) {
  const Cube pos = Cube::literal(3, true);
  const Cube neg = Cube::literal(3, false);
  EXPECT_TRUE(pos.has_var(3));
  EXPECT_TRUE(pos.polarity(3));
  EXPECT_FALSE(neg.polarity(3));
  EXPECT_TRUE(pos.eval(0b1000));
  EXPECT_FALSE(pos.eval(0));
  EXPECT_TRUE(neg.eval(0));
}

TEST(Cube, WithAndWithoutLiteral) {
  Cube c = Cube().with_literal(0, true).with_literal(2, false);
  EXPECT_EQ(c.literal_count(), 2);
  EXPECT_TRUE(c.eval(0b001));
  EXPECT_FALSE(c.eval(0b101));
  c = c.without_var(2);
  EXPECT_EQ(c.literal_count(), 1);
  EXPECT_TRUE(c.eval(0b101));
}

TEST(Cube, WithLiteralOverwritesPolarity) {
  const Cube c = Cube::literal(1, true).with_literal(1, false);
  EXPECT_FALSE(c.polarity(1));
  EXPECT_EQ(c.literal_count(), 1);
}

TEST(Cube, ContainsIsSetContainment) {
  const Cube big = Cube::literal(0, true);                // x0
  const Cube small = big.with_literal(1, false);          // x0 & ~x1
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(big.contains(big));
  EXPECT_TRUE(Cube().contains(big));
}

TEST(Cube, IntersectionAndConflicts) {
  const Cube a = Cube::literal(0, true);
  const Cube b = Cube::literal(0, false);
  const Cube c = Cube::literal(1, true);
  EXPECT_FALSE(a.intersects(b));
  EXPECT_EQ(a.conflict_count(b), 1);
  EXPECT_TRUE(a.intersects(c));
  const Cube ac = a.intersect(c);
  EXPECT_EQ(ac.literal_count(), 2);
  EXPECT_TRUE(ac.eval(0b11));
  EXPECT_THROW((void)a.intersect(b), CheckError);
}

TEST(Cube, EvalMatchesLiteralSemantics) {
  Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    Cube c;
    const int nvars = 10;
    std::uint64_t mask = rng.next_below(1u << nvars);
    std::uint64_t value = rng.next_below(1u << nvars) & mask;
    c = Cube(mask, value);
    const std::uint64_t assignment = rng.next_below(1u << nvars);
    bool expect = true;
    for (int v = 0; v < nvars; ++v) {
      if (!((mask >> v) & 1)) continue;
      if (((assignment >> v) & 1) != ((value >> v) & 1)) expect = false;
    }
    EXPECT_EQ(c.eval(assignment), expect);
  }
}

TEST(Cube, ToStringShowsPolarity) {
  const Cube c = Cube::literal(0, true).with_literal(2, false);
  EXPECT_EQ(c.to_string(3), "1-0");
}

TEST(Cube, RejectsBadConstruction) {
  EXPECT_THROW(Cube(0b01, 0b10), CheckError);  // value outside mask
  EXPECT_THROW(Cube::literal(-1, true), CheckError);
  EXPECT_THROW(Cube::literal(64, true), CheckError);
  EXPECT_THROW((void)Cube().polarity(0), CheckError);
}

TEST(CubeProperty, ContainmentIsConsistentWithEval) {
  // If a.contains(b), every point of b satisfies a.
  Rng rng(17);
  const int nvars = 6;
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t mask_a = rng.next_below(1u << nvars);
    const Cube a(mask_a, rng.next_below(1u << nvars) & mask_a);
    const std::uint64_t mask_b = rng.next_below(1u << nvars);
    const Cube b(mask_b, rng.next_below(1u << nvars) & mask_b);
    if (!a.contains(b)) continue;
    for (std::uint64_t p = 0; p < (1u << nvars); ++p) {
      if (b.eval(p)) {
        EXPECT_TRUE(a.eval(p));
      }
    }
  }
}

TEST(CubeProperty, IntersectionEvalIsConjunction) {
  Rng rng(23);
  const int nvars = 6;
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t mask_a = rng.next_below(1u << nvars);
    const Cube a(mask_a, rng.next_below(1u << nvars) & mask_a);
    const std::uint64_t mask_b = rng.next_below(1u << nvars);
    const Cube b(mask_b, rng.next_below(1u << nvars) & mask_b);
    if (!a.intersects(b)) {
      for (std::uint64_t p = 0; p < (1u << nvars); ++p)
        EXPECT_FALSE(a.eval(p) && b.eval(p));
      continue;
    }
    const Cube ab = a.intersect(b);
    for (std::uint64_t p = 0; p < (1u << nvars); ++p)
      EXPECT_EQ(ab.eval(p), a.eval(p) && b.eval(p));
  }
}

}  // namespace
}  // namespace rcarb::logic
