// Deterministic parallel sweep engine: index coverage, strict reduction
// order on the calling thread, the jobs==1 serial path, exception
// propagation, RCARB_JOBS parsing — and the end-to-end determinism
// contract: a mini fault-campaign sweep whose bench report (wall-time
// fields excluded) and merged JSONL trace are byte-identical at 1, 2 and
// 8 jobs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/insertion.hpp"
#include "fault/fault.hpp"
#include "obs/bench_report.hpp"
#include "obs/trace.hpp"
#include "rcsim/system_sim.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace rcarb {
namespace {

using core::Binding;
using tg::Program;
using tg::TaskGraph;

// ------------------------------------------------------------- engine unit

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for_each(
      kN, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Parallel, ReducesInIndexOrderOnCallingThread) {
  constexpr std::size_t kN = 200;
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  ordered_map_reduce<std::size_t>(
      kN, [](std::size_t i) { return i * i; },
      [&](std::size_t i, std::size_t v) {
        // Side effects happen exactly where the serial loop would put
        // them: on the calling thread, in index order, with the mapped
        // value intact.
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ASSERT_EQ(v, i * i);
        order.push_back(i);
      },
      8);
  ASSERT_EQ(order.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(order[i], i);
}

TEST(Parallel, JobsOneRunsEntirelyOnCallingThread) {
  const std::thread::id caller = std::this_thread::get_id();
  int mapped = 0;
  ordered_map_reduce<int>(
      4,
      [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ++mapped;
        return static_cast<int>(i);
      },
      [&](std::size_t i, int v) { EXPECT_EQ(v, static_cast<int>(i)); }, 1);
  EXPECT_EQ(mapped, 4);
  // n <= 1 also short-circuits to the serial path regardless of jobs.
  ordered_map_reduce<int>(
      1,
      [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        return 7;
      },
      [](std::size_t, int v) { EXPECT_EQ(v, 7); }, 8);
}

TEST(Parallel, MapExceptionRethrownAtLowestIndex) {
  // Several indices fail; index order decides which exception the caller
  // sees, not worker scheduling.
  for (const int jobs : {2, 8}) {
    try {
      ordered_map_reduce<int>(
          64,
          [](std::size_t i) {
            if (i == 5 || i == 9 || i == 40)
              throw std::runtime_error("boom " + std::to_string(i));
            return 0;
          },
          [](std::size_t, int) {}, jobs);
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 5") << "jobs=" << jobs;
    }
  }
}

TEST(Parallel, ReduceExceptionPropagatesAndPoolDrains) {
  std::vector<std::size_t> reduced;
  try {
    ordered_map_reduce<int>(
        32, [](std::size_t i) { return static_cast<int>(i); },
        [&](std::size_t i, int) {
          if (i == 3) throw std::runtime_error("reduce boom");
          reduced.push_back(i);
        },
        8);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "reduce boom");
  }
  // Everything before the throwing index was reduced, nothing after.
  ASSERT_EQ(reduced.size(), 3u);
  for (std::size_t i = 0; i < reduced.size(); ++i) EXPECT_EQ(reduced[i], i);
}

TEST(Parallel, JobsFromEnvironment) {
  const char* saved = std::getenv("RCARB_JOBS");
  const std::string saved_copy = saved ? saved : "";

  ::setenv("RCARB_JOBS", "3", 1);
  EXPECT_EQ(parallel_jobs(), 3);
  ::setenv("RCARB_JOBS", "1", 1);
  EXPECT_EQ(parallel_jobs(), 1);
  ::setenv("RCARB_JOBS", "99999", 1);
  EXPECT_EQ(parallel_jobs(), 1024);  // capped
  // Malformed values fall back to hardware_concurrency (>= 1).
  for (const char* bad : {"0", "-2", "abc", "4x", ""}) {
    ::setenv("RCARB_JOBS", bad, 1);
    EXPECT_GE(parallel_jobs(), 1) << "RCARB_JOBS=" << bad;
  }
  ::unsetenv("RCARB_JOBS");
  EXPECT_GE(parallel_jobs(), 1);

  if (saved)
    ::setenv("RCARB_JOBS", saved_copy.c_str(), 1);
  else
    ::unsetenv("RCARB_JOBS");
}

// ------------------------------------------------- determinism, end to end

Binding single_bank_binding(const TaskGraph& g, std::size_t num_tasks) {
  Binding b;
  b.task_to_pe.assign(num_tasks, 0);
  b.segment_to_bank.assign(g.num_segments(), 0);
  b.channel_to_phys.assign(g.num_channels(), -1);
  b.num_banks = 1;
  b.bank_names = {"BANK"};
  return b;
}

TaskGraph contention_graph(int num_tasks, int accesses) {
  TaskGraph g{"psweep"};
  g.add_segment("s0", 64, 16);
  for (int t = 0; t < num_tasks; ++t) {
    Program p;
    p.load_imm(0, 0);
    for (int i = 0; i < accesses; ++i)
      p.store(0, 0, 0, (t * accesses + i) % 16);
    p.halt();
    std::string name = "t";  // built piecewise: GCC 12's -Wrestrict trips
    name += std::to_string(t);  // on `const char* + std::string&&` at -O3
    g.add_task(name, p, 1);
  }
  return g;
}

/// One mini fault-campaign sweep (6 kinds x 2 rates, round-robin, faults
/// planned from derive_seed(master, cell)), reduced into a BenchReporter
/// and one merged JSONL trace stream — the same shape as the real
/// campaign, small enough for a unit test.
struct SweepOutput {
  std::string report;  // BENCH json, wall-time lines stripped
  std::string trace;   // merged JSONL, cells in index order
};

SweepOutput run_mini_sweep(int jobs, const std::string& dir) {
  struct CellOut {
    std::vector<obs::TraceEvent> events;
    obs::TraceMeta meta;
    std::size_t diags = 0;
    bool deadlocked = false;
  };
  const std::vector<fault::FaultKind>& kinds = fault::all_fault_kinds();
  const std::vector<double> rates = {2e-3, 8e-3};
  const std::size_t n = kinds.size() * rates.size();

  obs::BenchReporter rep("parallel_mini");
  std::ostringstream trace;
  ordered_map_reduce<CellOut>(
      n,
      [&](std::size_t i) {
        const fault::FaultKind kind = kinds[i % kinds.size()];
        const double rate = rates[i / kinds.size()];
        TaskGraph g = contention_graph(3, 40);
        Binding b = single_bank_binding(g, 3);
        core::InsertionOptions io;
        io.policy = core::Policy::kRoundRobin;
        io.retry_timeout = 12;
        const core::InsertionResult ins = core::insert_arbitration(g, b, io);

        fault::FaultTargets targets;
        for (const core::ArbiterInstance& inst : ins.plan.arbiters) {
          targets.arbiter_ports.push_back(
              static_cast<int>(inst.ports.size()));
          targets.arbiter_state_bits.push_back(
              2 * static_cast<int>(inst.ports.size()));
        }
        targets.num_phys_channels = static_cast<int>(b.num_phys_channels);

        fault::FaultPlanOptions fo;
        fo.seed = derive_seed(99, i);
        fo.horizon = 1000;
        fo.rate = rate;
        fo.stuck_duration = 32;
        fo.kinds = {kind};

        obs::TraceBuffer buf;
        rcsim::SimOptions so;
        so.strict = false;
        so.diag_detail = false;
        so.watchdog_timeout = 32;
        so.no_progress_window = 2000;
        so.faults = fault::plan_faults(targets, fo);
        so.trace_sink = &buf;

        rcsim::SystemSimulator sim(ins.graph, b, ins.plan, so);
        const rcsim::SimResult r = sim.run({0, 1, 2});
        CellOut out;
        out.events = buf.events();
        out.meta = sim.trace_meta();
        out.diags = r.diagnostics.size();
        out.deadlocked = r.deadlocked;
        return out;
      },
      [&](std::size_t i, CellOut out) {
        const std::string cell = "cell" + std::to_string(i);
        rep.metric(cell + "_diags", static_cast<double>(out.diags));
        rep.metric(cell + "_deadlocked", out.deadlocked ? 1.0 : 0.0);
        obs::write_jsonl(trace, out.events, out.meta);
      },
      jobs);

  const std::string path = rep.write(dir);
  SweepOutput sw;
  sw.trace = trace.str();
  std::ifstream is(path);
  std::string line;
  while (std::getline(is, line)) {
    if (line.find("\"wall_ms\"") != std::string::npos) continue;
    if (line.find("\"timestamp_utc\"") != std::string::npos) continue;
    sw.report += line;
    sw.report += '\n';
  }
  return sw;
}

TEST(Parallel, MiniFaultSweepByteIdenticalAcrossJobCounts) {
  const std::string base = ::testing::TempDir() + "/rcarb_parallel_sweep";
  const SweepOutput serial = run_mini_sweep(1, base + "/j1");
  ASSERT_FALSE(serial.report.empty());
  ASSERT_FALSE(serial.trace.empty());
  for (const int jobs : {2, 8}) {
    const SweepOutput out =
        run_mini_sweep(jobs, base + "/j" + std::to_string(jobs));
    EXPECT_EQ(out.report, serial.report) << "jobs=" << jobs;
    EXPECT_EQ(out.trace, serial.trace) << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace rcarb
