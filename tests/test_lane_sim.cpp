// Lockstep equivalence of the three simulation engines (scalar full-topo,
// scalar event-driven, 64-lane full-topo, 64-lane event-driven) plus the
// instrumentation contracts the perf work relies on: event-driven settles
// skip clean LUTs, fault pokes fall back to the proven full pass, and no
// name lookup happens inside a cycle loop that resolved its NetIds up
// front.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/generator.hpp"
#include "core/insertion.hpp"
#include "core/policy.hpp"
#include "netlist/lane_simulator.hpp"
#include "netlist/netlist.hpp"
#include "netlist/simulator.hpp"
#include "rcsim/system_sim.hpp"
#include "support/rng.hpp"
#include "synth/flow.hpp"
#include "taskgraph/taskgraph.hpp"

namespace rcarb::netlist {
namespace {

constexpr std::size_t kLanes = LaneSimulator::kLanes;

/// Net ids every engine needs: requests, grants, and the state registers.
struct Ports {
  std::vector<NetId> req, grant, state;
};

Ports resolve_ports(const Netlist& nl, int n) {
  Ports p;
  for (int i = 0; i < n; ++i) {
    const auto r = nl.find_net("req" + std::to_string(i));
    const auto g = nl.find_net("grant" + std::to_string(i));
    EXPECT_TRUE(r.has_value() && g.has_value());
    p.req.push_back(*r);
    p.grant.push_back(*g);
  }
  for (std::size_t s = 0;; ++s) {
    const auto net = nl.find_net("state" + std::to_string(s));
    if (!net.has_value()) break;
    p.state.push_back(*net);
  }
  return p;
}

/// Drives all four engines with 64 distinct request streams and per-lane
/// SEU pokes, asserting bit-identical outputs and state every cycle.
/// Scalar engines are only run for a few sampled lanes (64 scalar replicas
/// of every config would dominate suite runtime); the lane engines are
/// compared across all 64 lanes.
void lockstep(const Netlist& nl, int n, std::uint64_t seed, int cycles) {
  const Ports p = resolve_ports(nl, n);
  const std::vector<std::size_t> sampled = {0, 5, 31, 63};

  LaneSimulator lane_event(nl, SettleMode::kEventDriven);
  LaneSimulator lane_full(nl, SettleMode::kFullTopo);
  std::vector<Simulator> scalar_full, scalar_event;
  for (std::size_t s = 0; s < sampled.size(); ++s) {
    scalar_full.emplace_back(nl, SettleMode::kFullTopo);
    scalar_event.emplace_back(nl, SettleMode::kEventDriven);
  }

  Rng rng(seed);
  // Per-lane request streams; regenerate per cycle.
  std::vector<std::uint64_t> lane_req(kLanes);
  for (int cyc = 0; cyc < cycles; ++cyc) {
    for (std::size_t l = 0; l < kLanes; ++l)
      lane_req[l] = rng.next_below(std::uint64_t{1} << n);

    for (int i = 0; i < n; ++i) {
      std::uint64_t word = 0;
      for (std::size_t l = 0; l < kLanes; ++l)
        word |= ((lane_req[l] >> i) & 1) << l;
      lane_event.set_input(p.req[static_cast<std::size_t>(i)], word);
      lane_full.set_input(p.req[static_cast<std::size_t>(i)], word);
    }
    for (std::size_t s = 0; s < sampled.size(); ++s)
      for (int i = 0; i < n; ++i) {
        scalar_full[s].set_input(p.req[static_cast<std::size_t>(i)],
                                 (lane_req[sampled[s]] >> i) & 1);
        scalar_event[s].set_input(p.req[static_cast<std::size_t>(i)],
                                  (lane_req[sampled[s]] >> i) & 1);
      }
    lane_event.settle();
    lane_full.settle();
    for (std::size_t s = 0; s < sampled.size(); ++s) {
      scalar_full[s].settle();
      scalar_event[s].settle();
    }

    // Outputs and registers must agree across every engine pair.
    for (NetId net : p.grant) {
      ASSERT_EQ(lane_event.get(net), lane_full.get(net))
          << "lane event vs full diverged on " << nl.net_name(net)
          << " at cycle " << cyc;
      for (std::size_t s = 0; s < sampled.size(); ++s) {
        ASSERT_EQ(scalar_full[s].get(net), scalar_event[s].get(net))
            << "scalar event diverged, cycle " << cyc;
        ASSERT_EQ(lane_event.get_lane(net, sampled[s]),
                  scalar_full[s].get(net))
            << "lane " << sampled[s] << " vs scalar diverged on "
            << nl.net_name(net) << " at cycle " << cyc;
      }
    }

    // Every ~13 cycles, flip a random state bit in a random lane (and in
    // the matching scalar replica when that lane is sampled).
    if (!p.state.empty() && cyc % 13 == 7) {
      const std::size_t lane = rng.next_below(kLanes);
      const NetId reg = p.state[rng.next_below(p.state.size())];
      lane_event.poke_register_lane(reg, lane,
                                    !lane_event.get_lane(reg, lane));
      lane_full.poke_register_lane(reg, lane,
                                   !lane_full.get_lane(reg, lane));
      for (std::size_t s = 0; s < sampled.size(); ++s)
        if (sampled[s] == lane) {
          scalar_full[s].poke_register(reg, !scalar_full[s].get(reg));
          scalar_event[s].poke_register(reg, !scalar_event[s].get(reg));
        }
    }

    lane_event.clock();
    lane_full.clock();
    for (std::size_t s = 0; s < sampled.size(); ++s) {
      scalar_full[s].clock();
      scalar_event[s].clock();
    }
    for (NetId net : p.state) {
      ASSERT_EQ(lane_event.get(net), lane_full.get(net))
          << "state diverged after clock, cycle " << cyc;
      for (std::size_t s = 0; s < sampled.size(); ++s)
        ASSERT_EQ(lane_event.get_lane(net, sampled[s]),
                  scalar_full[s].get(net))
            << "lane state vs scalar, cycle " << cyc;
    }
  }
}

struct LockstepParam {
  int n;
  synth::Encoding encoding;
};

class LaneLockstep : public ::testing::TestWithParam<LockstepParam> {};

TEST_P(LaneLockstep, AllEnginesAgreeUnderRandomRequestsAndSeus) {
  const auto [n, encoding] = GetParam();
  // The memo cache feeds every parametrization; repeated suite runs in one
  // process synthesize each config once.
  const auto& g = core::generate_round_robin_cached(
      n, synth::FlowKind::kExpressLike, encoding);
  lockstep(g.synth.netlist, n, 7001 + static_cast<std::uint64_t>(n), 260);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LaneLockstep,
    ::testing::Values(LockstepParam{2, synth::Encoding::kOneHot},
                      LockstepParam{3, synth::Encoding::kOneHot},
                      LockstepParam{8, synth::Encoding::kOneHot},
                      LockstepParam{16, synth::Encoding::kOneHot},
                      LockstepParam{2, synth::Encoding::kCompact},
                      LockstepParam{3, synth::Encoding::kCompact},
                      LockstepParam{8, synth::Encoding::kCompact},
                      LockstepParam{16, synth::Encoding::kCompact},
                      LockstepParam{2, synth::Encoding::kGray},
                      LockstepParam{3, synth::Encoding::kGray},
                      LockstepParam{8, synth::Encoding::kGray},
                      LockstepParam{16, synth::Encoding::kGray}));

TEST(LaneLockstep, HardenedArbiterAgrees) {
  const auto& s = core::synthesize_round_robin_cached(
      3, synth::Encoding::kOneHot, /*harden=*/true);
  lockstep(s.netlist, 3, 99, 260);
}

TEST(LaneLockstep, HandBuiltSinglePortNetlist) {
  // The generators reject N=1 by contract, so the 1-port case is covered
  // with a hand-built machine: grant0 = req0 AND NOT busy, where `busy`
  // toggles whenever a grant was given (a 1-port arbiter with a 1-cycle
  // recovery slot).
  Netlist nl;
  const NetId req = nl.add_input("req0");
  const NetId busy = nl.add_dff(0, false, "state0");
  const NetId grant =
      nl.add_lut({req, busy}, 0b0010, "grant0_lut");  // req & !busy
  nl.connect_dff_d(0, grant);
  nl.mark_output(grant, "grant0");
  lockstep(nl, 1, 4242, 200);
}

TEST(EventDriven, SkipsCleanLutsOnQuietInputs) {
  const auto& g = core::generate_round_robin_cached(
      8, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  const Netlist& nl = g.synth.netlist;
  const Ports p = resolve_ports(nl, 8);

  Simulator full(nl, SettleMode::kFullTopo);
  Simulator event(nl, SettleMode::kEventDriven);
  // Hold one constant request pattern for many cycles: after the FSM
  // reaches its steady orbit, most LUT inputs stop changing and the
  // event-driven engine must evaluate strictly fewer LUTs.
  for (Simulator* sim : {&full, &event}) {
    sim->set_input(p.req[2], true);
    for (int cyc = 0; cyc < 100; ++cyc) {
      sim->settle();
      sim->clock();
    }
  }
  EXPECT_LT(event.luts_evaluated(), full.luts_evaluated());
  EXPECT_GT(event.event_settles(), 0u);

  // Same contract for the lane engine.
  LaneSimulator lane_full(nl, SettleMode::kFullTopo);
  LaneSimulator lane_event(nl, SettleMode::kEventDriven);
  for (LaneSimulator* sim : {&lane_full, &lane_event}) {
    sim->set_input(p.req[2], ~std::uint64_t{0});
    for (int cyc = 0; cyc < 100; ++cyc) {
      sim->settle();
      sim->clock();
    }
  }
  EXPECT_LT(lane_event.luts_evaluated(), lane_full.luts_evaluated());
}

TEST(EventDriven, PokeSeedsTheFanoutConeNotAFullResettle) {
  // Regression for the SEU-batch slowdown: poke_register used to schedule
  // a full topo resettle even in kEventDriven mode, so a 64-replica SEU
  // batch (one poke per lane per stream) re-evaluated every LUT per poke.
  // The poked DFF's fanout cone is all a poke can dirty — exactly what
  // clock() marks when that register changes — so the incremental path
  // must survive fault injection, with unchanged values.
  const auto& g = core::generate_round_robin_cached(
      4, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  const Netlist& nl = g.synth.netlist;
  const Ports p = resolve_ports(nl, 4);
  ASSERT_FALSE(p.state.empty());

  Simulator event(nl, SettleMode::kEventDriven);
  Simulator full(nl, SettleMode::kFullTopo);
  // Warm both engines onto the incremental path.
  for (Simulator* sim : {&event, &full}) {
    sim->set_input(p.req[1], true);
    sim->settle();
    sim->clock();
  }
  const std::uint64_t full_passes_before = event.full_settles();
  const std::uint64_t evals_before = event.luts_evaluated();
  event.poke_register(p.state[0], !event.get(p.state[0]));
  full.poke_register(p.state[0], !full.get(p.state[0]));
  EXPECT_EQ(event.full_settles(), full_passes_before)
      << "an event-driven poke must not schedule a full topo resettle";
  EXPECT_LT(event.luts_evaluated() - evals_before, nl.num_luts())
      << "a poke should evaluate only the poked register's fanout cone";
  // The poke produced the same fixed point as the proven full pass.
  for (NetId net : p.grant) EXPECT_EQ(event.get(net), full.get(net));
  for (NetId net : p.state) EXPECT_EQ(event.get(net), full.get(net));

  LaneSimulator lane(nl, SettleMode::kEventDriven);
  const std::uint64_t lane_full_before = lane.full_settles();
  const std::uint64_t lane_evals_before = lane.luts_evaluated();
  lane.poke_register_lane(p.state[0], 17, !lane.get_lane(p.state[0], 17));
  EXPECT_EQ(lane.full_settles(), lane_full_before);
  EXPECT_LT(lane.luts_evaluated() - lane_evals_before, nl.num_luts());
  LaneSimulator lane_full(nl, SettleMode::kFullTopo);
  lane_full.poke_register_lane(p.state[0], 17,
                               !lane_full.get_lane(p.state[0], 17));
  for (NetId net : p.grant) EXPECT_EQ(lane.get(net), lane_full.get(net));
  for (NetId net : p.state) EXPECT_EQ(lane.get(net), lane_full.get(net));

  // Incremental settling continues after the poke.
  const std::uint64_t event_before = event.event_settles();
  event.set_input(p.req[0], true);
  event.settle();
  EXPECT_EQ(event.event_settles(), event_before + 1);
}

TEST(NameLookups, CycleLoopsWithResolvedIdsDoNoStringHashing) {
  const auto& g = core::generate_round_robin_cached(
      4, synth::FlowKind::kExpressLike, synth::Encoding::kOneHot);
  const Netlist& nl = g.synth.netlist;
  // Resolve every name once, before the loop — the pattern all simulator
  // call sites follow.
  const Ports p = resolve_ports(nl, 4);

  Simulator sim(nl);
  LaneSimulator lane(nl);
  Rng rng(55);
  for (int cyc = 0; cyc < 200; ++cyc) {
    const std::uint64_t req = rng.next_below(16);
    for (std::size_t i = 0; i < 4; ++i) {
      sim.set_input(p.req[i], (req >> i) & 1);
      lane.set_input(p.req[i], ((req >> i) & 1) ? ~std::uint64_t{0} : 0);
    }
    sim.settle();
    lane.settle();
    for (NetId net : p.grant) {
      (void)sim.get(net);
      (void)lane.get(net);
    }
    sim.clock();
    lane.clock();
  }
  EXPECT_EQ(sim.name_lookups(), 0u)
      << "a string-keyed lookup slipped into the NetId cycle loop";
  EXPECT_EQ(lane.name_lookups(), 0u);

  // The string overloads do count — the counter is live, not stubbed.
  (void)sim.get("grant0");
  lane.set_input("req0", 0);
  EXPECT_EQ(sim.name_lookups(), 1u);
  EXPECT_EQ(lane.name_lookups(), 1u);
}

TEST(RequestTrace, RecordedStreamReplaysAgainstSynthesizedNetlist) {
  // Two tasks hammer one bank -> a 2-port arbiter.  Record the effective
  // request words the behavioral arbiter stepped on, then replay them
  // against the synthesized netlist and the behavioral model side by side.
  tg::TaskGraph g("trace");
  g.add_segment("s0", 32, 16);
  tg::Program t0;
  t0.load_imm(0, 0).load_imm(1, 3);
  t0.loop_begin(20);
  t0.store(0, 0, 1, 0);
  t0.loop_end();
  t0.halt();
  tg::Program t1;
  t1.load_imm(0, 0).load_imm(1, 5);
  t1.loop_begin(20);
  t1.store(0, 0, 1, 1);
  t1.loop_end();
  t1.halt();
  g.add_task("a", t0, 1);
  g.add_task("b", t1, 1);

  core::Binding binding;
  binding.task_to_pe = {0, 1};
  binding.segment_to_bank = {0};
  binding.num_banks = 1;
  binding.bank_names = {"BANK"};

  const core::InsertionResult ins = core::insert_arbitration(g, binding, {});
  ASSERT_EQ(ins.plan.arbiters.size(), 1u);

  rcsim::SimOptions so;
  so.record_request_trace = true;
  rcsim::SystemSimulator sim(ins.graph, binding, ins.plan, so);
  const rcsim::SimResult res = sim.run({0, 1});
  ASSERT_EQ(res.request_trace.size(), 1u);
  const std::vector<std::uint64_t>& trace = res.request_trace[0];
  ASSERT_FALSE(trace.empty());
  ASSERT_EQ(trace.size(), res.cycles);

  // Replay: netlist grants must match the behavioral arbiter cycle for
  // cycle on the recorded stream.
  const auto& rr = core::synthesize_round_robin_cached(
      2, synth::Encoding::kOneHot, /*harden=*/false);
  const Ports p = resolve_ports(rr.netlist, 2);
  Simulator replay(rr.netlist);
  core::RoundRobinArbiter beh(2);
  for (std::size_t c = 0; c < trace.size(); ++c) {
    for (std::size_t i = 0; i < 2; ++i)
      replay.set_input(p.req[i], (trace[c] >> i) & 1);
    replay.settle();
    int got = -1;
    for (std::size_t i = 0; i < 2; ++i)
      if (replay.get(p.grant[i])) got = static_cast<int>(i);
    EXPECT_EQ(got, beh.step(trace[c])) << "cycle " << c;
    replay.clock();
  }

  // Off by default: no per-cycle storage.
  rcsim::SystemSimulator plain(ins.graph, binding, ins.plan, {});
  EXPECT_TRUE(plain.run({0, 1}).request_trace.empty());
}

}  // namespace
}  // namespace rcarb::netlist
